#!/usr/bin/env bash
# Loadgen + /metrics smoke: boots the real binaries as processes over
# loopback (authority → training server → one encrypted submission →
# prediction endpoint), then drives cryptonn-loadgen at two connection
# counts and asserts non-zero throughput and a clean Prometheus scrape.
#
# This is the CI guard for the operational surface the Go tests cannot
# see: flag wiring, codec negotiation across process boundaries, and the
# /metrics endpoint's counter names — dashboards and alerts key on those
# names, so a rename must fail CI, not a production scrape.
#
# Usage: scripts/loadgen-smoke.sh   (from the repo root; Go toolchain on PATH)
set -euo pipefail

PORT_BASE=${PORT_BASE:-17000}
AUTH=127.0.0.1:$((PORT_BASE + 1))
TRAIN=127.0.0.1:$((PORT_BASE + 2))
PREDICT=127.0.0.1:$((PORT_BASE + 3))
METRICS=127.0.0.1:$((PORT_BASE + 4))

workdir=$(mktemp -d)
pids=()
cleanup() {
    local pid
    for pid in "${pids[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

# wait_listening <host:port> <attempts>: polls until the port accepts.
wait_listening() {
    local hp=$1 tries=$2 i
    for ((i = 0; i < tries; i++)); do
        if (exec 3<>"/dev/tcp/${hp%:*}/${hp#*:}") 2>/dev/null; then
            exec 3>&- || true
            return 0
        fi
        sleep 0.2
    done
    echo "loadgen-smoke: nothing listening on $hp" >&2
    return 1
}

echo "== building binaries"
for bin in cryptonn-authority cryptonn-server cryptonn-client cryptonn-loadgen; do
    go build -o "$workdir/$bin" "./cmd/$bin"
done

echo "== starting authority on $AUTH"
"$workdir/cryptonn-authority" -listen "$AUTH" -bits 64 2>"$workdir/authority.log" &
pids+=($!)
wait_listening "$AUTH" 150

echo "== starting training server on $TRAIN (predictions on $PREDICT, metrics on $METRICS)"
"$workdir/cryptonn-server" \
    -listen "$TRAIN" -authority "$AUTH" \
    -features 784 -classes 10 -hidden 2 \
    -epochs 1 -expect 1 -par 2 -seed 3 \
    -predict-listen "$PREDICT" -metrics-addr "$METRICS" \
    2>"$workdir/server.log" &
pids+=($!)
wait_listening "$TRAIN" 150

echo "== submitting one encrypted batch"
"$workdir/cryptonn-client" \
    -authority "$AUTH" -server "$TRAIN" \
    -samples 16 -batch 16 -seed 5

echo "== waiting for training to finish and the prediction endpoint to come up"
wait_listening "$PREDICT" 1500

echo "== driving loadgen at two connection counts"
"$workdir/cryptonn-loadgen" \
    -authority "$AUTH" -server "$PREDICT" \
    -features 784 -classes 10 \
    -sweep 4,32 -requests 3 -samples 1 \
    | tee "$workdir/loadgen.txt"

# Both sweep points must report a non-zero samples/sec figure.
for n in 4 32; do
    if ! grep -E "^clients=$n served [1-9][0-9]* samples .* [1-9][0-9.]* samples/sec" "$workdir/loadgen.txt" >/dev/null; then
        echo "loadgen-smoke: no non-zero throughput line for clients=$n" >&2
        exit 1
    fi
done

echo "== scraping $METRICS/metrics"
curl -fsS "http://$METRICS/metrics" | tee "$workdir/metrics.txt" >/dev/null

# The counter names are operational API: a rename breaks dashboards, so
# it must break this script first. The connection counter also proves
# the loadgen connections really negotiated the binary codec.
for metric in \
    'cryptonn_predict_requests_total [1-9]' \
    'cryptonn_predict_samples_total [1-9]' \
    'cryptonn_predict_connections_total{codec="binary"} [1-9]' \
    'cryptonn_predict_connections_total{codec="gob"} ' \
    'cryptonn_predict_rejected_total ' \
    'cryptonn_predict_panics_total 0' \
    'cryptonn_predict_queue_depth ' \
    'cryptonn_predict_latency_seconds{quantile="0.99"} '; do
    if ! grep -E "^$metric" "$workdir/metrics.txt" >/dev/null; then
        echo "loadgen-smoke: /metrics missing or zero: $metric" >&2
        echo "--- scrape ---" >&2
        cat "$workdir/metrics.txt" >&2
        exit 1
    fi
done

echo "== sparse leg: linear server with support padding, top-k loadgen"
# A second server in the bias-free linear configuration (-hidden 0)
# with the support-hiding padding policy on: the loadgen drives
# coordinate-form top-k requests, and the scrape must show the top-k
# request counters and the padding counters advancing — those names are
# the operational API for the sparse serving path.
SPTRAIN=127.0.0.1:$((PORT_BASE + 6))
SPPREDICT=127.0.0.1:$((PORT_BASE + 7))
SPMETRICS=127.0.0.1:$((PORT_BASE + 8))
"$workdir/cryptonn-server" \
    -listen "$SPTRAIN" -authority "$AUTH" \
    -features 784 -classes 10 -hidden 0 \
    -epochs 1 -expect 1 -par 2 -seed 3 \
    -sparse-buckets 8,16 \
    -predict-listen "$SPPREDICT" -metrics-addr "$SPMETRICS" \
    2>"$workdir/sparse-server.log" &
pids+=($!)
wait_listening "$SPTRAIN" 150

"$workdir/cryptonn-client" \
    -authority "$AUTH" -server "$SPTRAIN" \
    -samples 16 -batch 16 -seed 5
wait_listening "$SPPREDICT" 1500

"$workdir/cryptonn-loadgen" \
    -authority "$AUTH" -server "$SPPREDICT" \
    -features 784 -classes 10 \
    -topk 3 -sparse-density 0.01 \
    -clients 4 -requests 3 -samples 1 \
    | tee "$workdir/sparse-loadgen.txt"
if ! grep -E "^clients=4 served [1-9][0-9]* samples .* [1-9][0-9.]* samples/sec" "$workdir/sparse-loadgen.txt" >/dev/null; then
    echo "loadgen-smoke: no non-zero throughput line for the sparse leg" >&2
    exit 1
fi

echo "== scraping $SPMETRICS/metrics for sparse counters"
curl -fsS "http://$SPMETRICS/metrics" | tee "$workdir/sparse-metrics.txt" >/dev/null
for metric in \
    'cryptonn_predict_topk_requests_total [1-9]' \
    'cryptonn_predict_topk_samples_total [1-9]' \
    'cryptonn_securemat_padded_supports_total [1-9]' \
    'cryptonn_securemat_pad_coords_total [1-9]' \
    'cryptonn_predict_panics_total 0'; do
    if ! grep -E "^$metric" "$workdir/sparse-metrics.txt" >/dev/null; then
        echo "loadgen-smoke: sparse /metrics missing or zero: $metric" >&2
        echo "--- scrape ---" >&2
        cat "$workdir/sparse-metrics.txt" >&2
        exit 1
    fi
done

echo "== cold-start: two server boots against one -table-cache directory"
# The first boot derives every precomputed group table and writes the
# cache; the second must boot from disk — its stats line has to show
# hits and zero misses, proving the flag wiring and the on-disk format
# survive a real process boundary (not just the in-process Go tests).
COLDTRAIN=127.0.0.1:$((PORT_BASE + 5))
tblcache="$workdir/tblcache"
boot_ms=()
for boot in 1 2; do
    start_ns=$(date +%s%N)
    "$workdir/cryptonn-server" \
        -listen "$COLDTRAIN" -authority "$AUTH" \
        -features 784 -classes 10 -hidden 2 \
        -epochs 1 -expect 1 -par 2 -seed 3 \
        -table-cache "$tblcache" \
        2>"$workdir/coldstart-$boot.log" &
    srv_pid=$!
    wait_listening "$COLDTRAIN" 150
    "$workdir/cryptonn-client" \
        -authority "$AUTH" -server "$COLDTRAIN" \
        -samples 16 -batch 16 -seed 5
    if ! wait "$srv_pid"; then
        echo "loadgen-smoke: cold-start boot $boot failed" >&2
        cat "$workdir/coldstart-$boot.log" >&2
        exit 1
    fi
    boot_ms+=($(( ($(date +%s%N) - start_ns) / 1000000 )))
    stats=$(grep -Eo 'table cache: hits=[0-9]+ misses=[0-9]+ writes=[0-9]+ rejects=[0-9]+' \
        "$workdir/coldstart-$boot.log" | tail -1)
    echo "boot $boot: ${boot_ms[-1]}ms, $stats"
    case "$boot:$stats" in
    1:*" writes="[1-9]*) ;;
    2:*"hits="[1-9]*" misses=0 "*) ;;
    *)
        echo "loadgen-smoke: boot $boot cache stats wrong: '$stats'" >&2
        cat "$workdir/coldstart-$boot.log" >&2
        exit 1
        ;;
    esac
done
# Lenient timing guard: training noise dwarfs table derivation at the
# smoke's 64-bit group, so only a gross warm-boot slowdown (cache
# loading costing more than the 50% slack) fails here; the precise
# derive-vs-load numbers are BenchmarkColdStart's job.
if (( boot_ms[1] > boot_ms[0] + boot_ms[0] / 2 )); then
    echo "loadgen-smoke: warm boot (${boot_ms[1]}ms) much slower than cold (${boot_ms[0]}ms)" >&2
    exit 1
fi

echo "loadgen-smoke: OK"
