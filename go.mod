module cryptonn

go 1.24
