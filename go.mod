module cryptonn

go 1.23
