package cryptonn

// CLI integration test: builds the real binaries and runs the full
// distributed pipeline of Fig. 1 — authority, training server, data-owner
// client, prediction client — as separate processes over loopback TCP.

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"cryptonn/internal/nn"
)

// buildBinaries compiles every cmd into dir and returns their paths.
func buildBinaries(t *testing.T, dir string, names ...string) map[string]string {
	t.Helper()
	bins := make(map[string]string, len(names))
	for _, name := range names {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Env = os.Environ()
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, msg)
		}
		bins[name] = out
	}
	return bins
}

// freePort reserves and releases a loopback port. A racing process could
// steal it between release and reuse, but on a CI loopback this is
// reliable, and the test fails loudly if not.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return addr
}

// waitListening polls until addr accepts connections.
func waitListening(t *testing.T, addr string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			_ = conn.Close()
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("nothing listening on %s after %s", addr, timeout)
}

func TestCLIPipelineEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binaries; skipped in -short")
	}
	dir := t.TempDir()
	bins := buildBinaries(t, dir,
		"cryptonn-authority", "cryptonn-server", "cryptonn-client", "cryptonn-predict",
		"cryptonn-loadgen")

	authAddr := freePort(t)
	trainAddr := freePort(t)
	predictAddr := freePort(t)
	modelPath := filepath.Join(dir, "model.gob")

	// --- Authority. ---
	authority := exec.Command(bins["cryptonn-authority"],
		"-listen", authAddr, "-bits", "64")
	var authLog bytes.Buffer
	authority.Stderr = &authLog
	if err := authority.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = authority.Process.Signal(syscall.SIGINT)
		_ = authority.Wait()
	}()
	waitListening(t, authAddr, 30*time.Second)

	// --- Training server (trains, saves, then serves predictions). ---
	server := exec.Command(bins["cryptonn-server"],
		"-listen", trainAddr,
		"-authority", authAddr,
		"-features", "784", "-classes", "10", "-hidden", "2",
		"-epochs", "1", "-expect", "1", "-par", "1", "-seed", "3",
		"-save", modelPath,
		"-predict-listen", predictAddr,
	)
	var serverLog bytes.Buffer
	server.Stderr = &serverLog
	if err := server.Start(); err != nil {
		t.Fatal(err)
	}
	serverDone := make(chan error, 1)
	go func() { serverDone <- server.Wait() }()
	defer func() {
		_ = server.Process.Signal(syscall.SIGINT)
		<-serverDone
	}()
	waitListening(t, trainAddr, 30*time.Second)

	// --- Data-owner client submits one encrypted batch. ---
	client := exec.Command(bins["cryptonn-client"],
		"-authority", authAddr,
		"-server", trainAddr,
		"-samples", "16", "-batch", "16", "-seed", "5",
	)
	if msg, err := client.CombinedOutput(); err != nil {
		t.Fatalf("client: %v\n%s", err, msg)
	}

	// --- Server trains, then the prediction endpoint comes up. ---
	waitListening(t, predictAddr, 5*time.Minute)

	// --- Prediction client asks for encrypted predictions. ---
	predict := exec.Command(bins["cryptonn-predict"],
		"-authority", authAddr,
		"-server", predictAddr,
		"-features", "784", "-classes", "10", "-samples", "3", "-seed", "11",
	)
	predOut, err := predict.CombinedOutput()
	if err != nil {
		t.Fatalf("predict: %v\n%s\nserver log:\n%s", err, predOut, serverLog.String())
	}
	if !strings.Contains(string(predOut), "3 encrypted samples predicted") {
		t.Errorf("unexpected predict output:\n%s", predOut)
	}

	// --- Load generator drives concurrent clients at the same endpoint
	// (the coalescing dispatcher's cross-client path). ---
	loadgen := exec.Command(bins["cryptonn-loadgen"],
		"-authority", authAddr,
		"-server", predictAddr,
		"-features", "784", "-classes", "10",
		"-clients", "2", "-requests", "2", "-samples", "1",
	)
	loadOut, err := loadgen.CombinedOutput()
	if err != nil {
		t.Fatalf("loadgen: %v\n%s\nserver log:\n%s", err, loadOut, serverLog.String())
	}
	if !strings.Contains(string(loadOut), "samples/sec") {
		t.Errorf("loadgen output missing throughput line:\n%s", loadOut)
	}

	// --- The checkpoint the server saved loads and has the right shape. ---
	f, err := os.Open(modelPath)
	if err != nil {
		t.Fatalf("server did not save a model: %v", err)
	}
	defer f.Close()
	model, err := nn.Load(f)
	if err != nil {
		t.Fatalf("loading saved model: %v", err)
	}
	first, ok := model.Layers[0].(*nn.DenseLayer)
	if !ok || first.In != 784 || first.Out != 2 {
		t.Errorf("saved model first layer = %s", model.Layers[0].Name())
	}

	// --- Server log shows the training actually happened. ---
	if !strings.Contains(serverLog.String(), "trained on 1 batches") {
		t.Errorf("server log missing training line:\n%s", serverLog.String())
	}
	_ = fmt.Sprintf("auth log: %s", authLog.String()) // kept for failure diagnosis
}

// TestCLIFlagAndHelpPaths smoke-runs the entry points whose main paths the
// e2e pipeline does not reach: flag parsing, -h usage output, and the
// bad-flag exit code of cryptonn-bench and cryptonn-predict. This keeps
// CI exercising the binaries, not just internal/.
func TestCLIFlagAndHelpPaths(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the real binaries; skipped in -short")
	}
	dir := t.TempDir()
	bins := buildBinaries(t, dir, "cryptonn-bench", "cryptonn-predict", "cryptonn-loadgen")

	// runBin returns combined output and the exit code (-1 on start failure).
	runBin := func(bin string, args ...string) (string, int) {
		t.Helper()
		cmd := exec.Command(bins[bin], args...)
		out, err := cmd.CombinedOutput()
		if err == nil {
			return string(out), 0
		}
		var exitErr *exec.ExitError
		if !errors.As(err, &exitErr) {
			t.Fatalf("%s %v: %v", bin, args, err)
		}
		return string(out), exitErr.ExitCode()
	}

	t.Run("bench help lists experiments", func(t *testing.T) {
		out, code := runBin("cryptonn-bench", "-h")
		if code == 0 {
			t.Errorf("-h exited 0, want non-zero (flag.ErrHelp path)")
		}
		for _, flag := range []string{"-exp", "-paper", "-par", "-seed"} {
			if !strings.Contains(out, flag) {
				t.Errorf("-h usage missing %s:\n%s", flag, out)
			}
		}
	})
	t.Run("bench rejects unknown flag", func(t *testing.T) {
		out, code := runBin("cryptonn-bench", "-no-such-flag")
		if code == 0 {
			t.Errorf("unknown flag exited 0\n%s", out)
		}
		if !strings.Contains(out, "Usage") && !strings.Contains(out, "flag provided") {
			t.Errorf("unknown flag produced no usage text:\n%s", out)
		}
	})
	t.Run("bench unmatched experiment is a clean no-op", func(t *testing.T) {
		out, code := runBin("cryptonn-bench", "-exp", "does-not-exist")
		if code != 0 {
			t.Errorf("unmatched -exp exited %d:\n%s", code, out)
		}
	})
	t.Run("predict help lists connection flags", func(t *testing.T) {
		out, code := runBin("cryptonn-predict", "-h")
		if code == 0 {
			t.Errorf("-h exited 0, want non-zero (flag.ErrHelp path)")
		}
		for _, flag := range []string{"-authority", "-server", "-features", "-samples", "-label-key"} {
			if !strings.Contains(out, flag) {
				t.Errorf("-h usage missing %s:\n%s", flag, out)
			}
		}
	})
	t.Run("predict rejects unknown flag", func(t *testing.T) {
		out, code := runBin("cryptonn-predict", "-bogus")
		if code == 0 {
			t.Errorf("unknown flag exited 0\n%s", out)
		}
	})
	t.Run("loadgen help lists load shape flags", func(t *testing.T) {
		out, code := runBin("cryptonn-loadgen", "-h")
		if code == 0 {
			t.Errorf("-h exited 0, want non-zero (flag.ErrHelp path)")
		}
		for _, flag := range []string{"-clients", "-requests", "-samples", "-server", "-authority"} {
			if !strings.Contains(out, flag) {
				t.Errorf("-h usage missing %s:\n%s", flag, out)
			}
		}
	})
	t.Run("loadgen rejects unknown flag", func(t *testing.T) {
		out, code := runBin("cryptonn-loadgen", "-bogus")
		if code == 0 {
			t.Errorf("unknown flag exited 0\n%s", out)
		}
	})
	t.Run("loadgen fails fast on unreachable authority", func(t *testing.T) {
		out, code := runBin("cryptonn-loadgen", "-authority", freePort(t), "-clients", "1", "-requests", "1")
		if code == 0 {
			t.Errorf("unreachable authority exited 0:\n%s", out)
		}
	})
	t.Run("predict fails fast on unreachable authority", func(t *testing.T) {
		// A reserved-then-released port: nothing listens, so the dial path
		// must error out with a non-zero exit instead of hanging.
		out, code := runBin("cryptonn-predict", "-authority", freePort(t), "-samples", "1")
		if code == 0 {
			t.Errorf("unreachable authority exited 0:\n%s", out)
		}
	})
}
