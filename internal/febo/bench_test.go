package febo_test

import (
	"testing"

	"cryptonn/internal/dlog"
	"cryptonn/internal/febo"
	"cryptonn/internal/group"
)

// FEBO primitive costs: these dominate the paper's Fig. 3/4 panels (one
// Encrypt + one KeyDerive + one Decrypt per matrix element). The per-op
// decrypt benchmarks show multiplication's larger dlog window.

func benchSetup(b *testing.B) (*febo.PublicKey, *febo.SecretKey, *group.Params) {
	b.Helper()
	params := group.TestParams()
	pk, sk, err := febo.Setup(params, nil)
	if err != nil {
		b.Fatal(err)
	}
	return pk, sk, params
}

func BenchmarkEncrypt(b *testing.B) {
	pk, _, _ := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := febo.Encrypt(pk, 123, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKeyDerive(b *testing.B) {
	pk, sk, params := benchSetup(b)
	ct, err := febo.Encrypt(pk, 123, nil)
	if err != nil {
		b.Fatal(err)
	}
	for _, op := range []febo.Op{febo.OpAdd, febo.OpSub, febo.OpMul, febo.OpDiv} {
		b.Run(op.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := febo.KeyDerive(params, sk, ct.Cmt, op, 45); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDecrypt(b *testing.B) {
	pk, sk, params := benchSetup(b)
	ct, err := febo.Encrypt(pk, 120, nil)
	if err != nil {
		b.Fatal(err)
	}
	// Multiplication needs the larger window (|x·y| ≤ 120×45); the same
	// solver serves all ops so the benchmark isolates the algebra.
	solver, err := dlog.NewSolver(params, 120*45+1)
	if err != nil {
		b.Fatal(err)
	}
	for _, op := range []febo.Op{febo.OpAdd, febo.OpSub, febo.OpMul} {
		fk, err := febo.KeyDerive(params, sk, ct.Cmt, op, 45)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(op.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := febo.Decrypt(pk, fk, ct, op, 45, solver); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
