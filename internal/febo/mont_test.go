package febo

// Property pins for the in-domain decryption path: DecryptPartsMont must
// agree with the big.Int DecryptParts for every op, operand sign and group
// size — the two paths share nothing but the scheme, so agreement pins the
// Montgomery ladders (small-multiplier uint64 ladder, negative-multiplier
// denominator folding, windowed ÷ ladder) to the reference arithmetic.

import (
	"math"
	"math/big"
	"math/rand"
	"testing"

	"cryptonn/internal/group"
)

// partsMontAgree checks num/den equality between the two paths for one
// (op, x, y) case. The Montgomery path may shuffle factors between
// numerator and denominator (the y < 0 multiplication fold), so the pin
// compares the quotient num·den⁻¹, which both paths must agree on.
func partsMontAgree(t *testing.T, params *group.Params, pk *PublicKey, sk *SecretKey, op Op, x, y int64, sc *DecryptScratch) {
	t.Helper()
	ct, err := Encrypt(pk, x, nil)
	if err != nil {
		t.Fatalf("Encrypt(%d): %v", x, err)
	}
	fk, err := KeyDerive(params, sk, ct.Cmt, op, y)
	if err != nil {
		t.Fatalf("KeyDerive(%s, %d): %v", op, y, err)
	}
	num, den, err := DecryptParts(pk, fk, ct, op, y)
	if err != nil {
		t.Fatalf("DecryptParts(%s, %d, %d): %v", op, x, y, err)
	}
	want := params.Div(num, den)

	mc := params.Mont()
	k := mc.Limbs()
	numM, denM := make([]uint64, k), make([]uint64, k)
	if err := DecryptPartsMont(pk, fk, ct, op, y, numM, denM, sc); err != nil {
		t.Fatalf("DecryptPartsMont(%s, %d, %d): %v", op, x, y, err)
	}
	if err := mc.InvMont(denM, denM); err != nil {
		t.Fatalf("InvMont: %v", err)
	}
	mc.MulMont(numM, numM, denM)
	if got := mc.FromMont(numM); got.Cmp(want) != 0 {
		t.Errorf("%s x=%d y=%d: mont quotient %v, big.Int quotient %v", op, x, y, got, want)
	}
}

func TestDecryptPartsMontMatchesBigInt(t *testing.T) {
	for _, bits := range []int{64, 256} {
		params, err := group.Embedded(bits)
		if err != nil {
			t.Fatal(err)
		}
		pk, sk, err := Setup(params, nil)
		if err != nil {
			t.Fatal(err)
		}
		sc := &DecryptScratch{}
		rng := rand.New(rand.NewSource(int64(bits)))
		cases := []struct {
			op   Op
			x, y int64
		}{
			{OpAdd, 17, 25}, {OpAdd, -300, 1}, {OpAdd, 0, 0},
			{OpSub, 5, 900}, {OpSub, -1, -1},
			{OpMul, 12, 34}, {OpMul, 12, -34}, {OpMul, -12, 34},
			{OpMul, 7, 0}, {OpMul, 0, 9}, {OpMul, 3, math.MinInt64},
			{OpDiv, 84, 7}, {OpDiv, -84, 7}, {OpDiv, 84, -7}, {OpDiv, 85, 7},
		}
		for _, c := range cases {
			partsMontAgree(t, params, pk, sk, c.op, c.x, c.y, sc)
		}
		for i := 0; i < 12; i++ {
			op := Op(rng.Intn(4) + 1)
			x := rng.Int63n(2001) - 1000
			y := rng.Int63n(2001) - 1000
			if op == OpDiv && y == 0 {
				y = 3
			}
			partsMontAgree(t, params, pk, sk, op, x, y, sc)
		}
	}
}

func TestDecryptPartsMontValidation(t *testing.T) {
	params := group.TestParams()
	pk, sk, err := Setup(params, nil)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := Encrypt(pk, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	fk, err := KeyDerive(params, sk, ct.Cmt, OpAdd, 1)
	if err != nil {
		t.Fatal(err)
	}
	k := params.Mont().Limbs()
	num, den := make([]uint64, k), make([]uint64, k)
	if err := DecryptPartsMont(nil, fk, ct, OpAdd, 1, num, den, nil); err == nil {
		t.Error("nil public key accepted")
	}
	if err := DecryptPartsMont(pk, nil, ct, OpAdd, 1, num, den, nil); err == nil {
		t.Error("nil function key accepted")
	}
	if err := DecryptPartsMont(pk, fk, nil, OpAdd, 1, num, den, nil); err == nil {
		t.Error("nil ciphertext accepted")
	}
	if err := DecryptPartsMont(pk, fk, ct, Op(99), 1, num, den, nil); err == nil {
		t.Error("invalid op accepted")
	}
	if err := DecryptPartsMont(pk, fk, ct, OpDiv, 0, num, den, nil); err == nil {
		t.Error("zero divisor accepted")
	}
	// nil scratch must work (one-shot allocation path).
	if err := DecryptPartsMont(pk, fk, ct, OpMul, -3, num, den, nil); err != nil {
		t.Errorf("nil scratch: %v", err)
	}
}

// The decryption result of the in-domain path must also round-trip through
// the group Exp reference: g^{x Δ y} = num/den.
func TestDecryptPartsMontRecoversFunctionality(t *testing.T) {
	params := group.TestParams()
	pk, sk, err := Setup(params, nil)
	if err != nil {
		t.Fatal(err)
	}
	mc := params.Mont()
	k := mc.Limbs()
	num, den := make([]uint64, k), make([]uint64, k)
	sc := &DecryptScratch{}
	for _, c := range []struct {
		op         Op
		x, y, want int64
	}{
		{OpAdd, 40, 2, 42}, {OpSub, 40, 2, 38}, {OpMul, -6, 7, -42}, {OpDiv, 84, -2, -42},
	} {
		ct, err := Encrypt(pk, c.x, nil)
		if err != nil {
			t.Fatal(err)
		}
		fk, err := KeyDerive(params, sk, ct.Cmt, c.op, c.y)
		if err != nil {
			t.Fatal(err)
		}
		if err := DecryptPartsMont(pk, fk, ct, c.op, c.y, num, den, sc); err != nil {
			t.Fatal(err)
		}
		if err := mc.InvMont(den, den); err != nil {
			t.Fatal(err)
		}
		mc.MulMont(num, num, den)
		want := params.PowG(big.NewInt(c.want))
		if got := mc.FromMont(num); got.Cmp(want) != 0 {
			t.Errorf("%s: recovered element is not g^%d", c.op, c.want)
		}
	}
}
