package febo

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"cryptonn/internal/dlog"
	"cryptonn/internal/group"
)

// Op enumerates the four arithmetic functionalities of FEBO.
type Op int

// The four basic operations, in the paper's Δ ∈ [+, −, ∗, /] order.
const (
	OpAdd Op = iota + 1
	OpSub
	OpMul
	OpDiv
)

// String returns the operator symbol.
func (o Op) String() string {
	switch o {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Valid reports whether o is one of the four defined operations.
func (o Op) Valid() bool { return o >= OpAdd && o <= OpDiv }

// Apply computes the plaintext functionality x Δ y; the reference
// implementation used by tests. Division follows the scheme's semantics:
// exact integer division only.
func (o Op) Apply(x, y int64) (int64, error) {
	switch o {
	case OpAdd:
		return x + y, nil
	case OpSub:
		return x - y, nil
	case OpMul:
		return x * y, nil
	case OpDiv:
		if y == 0 {
			return 0, errors.New("febo: division by zero")
		}
		if x%y != 0 {
			return 0, fmt.Errorf("febo: %d/%d is not an exact integer division", x, y)
		}
		return x / y, nil
	default:
		return 0, fmt.Errorf("febo: invalid op %d", int(o))
	}
}

var (
	// ErrMalformed reports a structurally invalid key or ciphertext.
	ErrMalformed = errors.New("febo: malformed input")
	// ErrInvalidOp reports an operation outside {+, −, ×, ÷}.
	ErrInvalidOp = errors.New("febo: invalid operation")
)

// PublicKey is mpk = (group, h = g^s).
//
// The key lazily caches a fixed-base exponentiation table for h — FEBO
// encrypts one matrix element per call, so h is the hottest base in the
// element-wise workload. See group.LazyTable for the sharing contract.
type PublicKey struct {
	Params *group.Params
	H      *big.Int

	hTab group.LazyTable
}

// Precompute builds the fixed-base table for h now instead of on the first
// Encrypt; idempotent and concurrency-safe.
func (k *PublicKey) Precompute() { k.table() }

func (k *PublicKey) table() *group.FixedBaseTable {
	// No dense cache: h only sees full-size nonces.
	return k.hTab.Get(k.Params, k.H, 0)
}

// Validate checks that h is a group element; applied to keys received over
// the network.
func (k *PublicKey) Validate() error {
	if k == nil || k.Params == nil || k.H == nil {
		return fmt.Errorf("%w: empty public key", ErrMalformed)
	}
	if err := k.Params.Validate(); err != nil {
		return err
	}
	if !k.Params.IsElement(k.H) {
		return fmt.Errorf("%w: h not a group element", ErrMalformed)
	}
	return nil
}

// SecretKey is msk = s; held only by the authority.
type SecretKey struct {
	S *big.Int
}

// Ciphertext is the pair (cmt = g^r, ct = h^r·g^x). The commitment travels
// with the ciphertext because KeyDerive needs it.
type Ciphertext struct {
	Cmt *big.Int
	Ct  *big.Int
}

// Validate checks group membership of both components.
func (c *Ciphertext) Validate(params *group.Params) error {
	if c == nil || c.Cmt == nil || c.Ct == nil {
		return fmt.Errorf("%w: empty ciphertext", ErrMalformed)
	}
	if !params.IsElement(c.Cmt) || !params.IsElement(c.Ct) {
		return fmt.Errorf("%w: component not a group element", ErrMalformed)
	}
	return nil
}

// FunctionKey is sk_{f_Δ} for one (ciphertext, Δ, y) triple.
type FunctionKey struct {
	K *big.Int
}

// Setup generates (mpk, msk) over the given group, drawing randomness from
// r (crypto/rand when nil).
func Setup(params *group.Params, r io.Reader) (*PublicKey, *SecretKey, error) {
	if params == nil {
		return nil, nil, errors.New("febo: nil group parameters")
	}
	s, err := params.RandScalar(r)
	if err != nil {
		return nil, nil, fmt.Errorf("febo: setup: %w", err)
	}
	return &PublicKey{Params: params, H: params.PowG(s)}, &SecretKey{S: s}, nil
}

// Encrypt encrypts the signed integer x, returning (cmt, ct).
//
// Both components are computed in the Montgomery domain: g^r and h^r come
// off the fixed-base tables as raw limb chains, g^x from the generator
// table's dense Montgomery cache (x is a fixed-point plaintext), and each
// component converts out of the domain exactly once.
func Encrypt(pk *PublicKey, x int64, r io.Reader) (*Ciphertext, error) {
	if pk == nil || pk.H == nil {
		return nil, fmt.Errorf("%w: empty public key", ErrMalformed)
	}
	p := pk.Params
	nonce, err := p.RandScalar(r)
	if err != nil {
		return nil, fmt.Errorf("febo: encrypt: %w", err)
	}
	gt := p.GTable()
	mc := p.Mont()
	k := mc.Limbs()
	buf := make([]uint64, 3*k)
	cmt, ct, gx := buf[:k], buf[k:2*k], buf[2*k:]
	gt.PowMont(cmt, nonce)
	pk.table().PowMont(ct, nonce)
	gt.PowInt64Mont(gx, x)
	mc.MulMont(ct, ct, gx)
	return &Ciphertext{
		Cmt: mc.FromMont(cmt),
		Ct:  mc.FromMont(ct),
	}, nil
}

// KeyDerive issues the function key for computing x Δ y against the
// ciphertext whose commitment is cmt. Division requires y to be invertible
// mod q (in particular y ≠ 0).
//
// The key is assembled in the Montgomery domain: cmt converts in once, the
// cmt^{s·…} ladder is windowed limb multiplication (ExpMont), and for the
// multiplicative ops the two ladders of (cmt^s)^y collapse into one with
// the exponent product s·y (respectively s·y⁻¹) reduced mod Q — valid
// because a validated commitment lies in the order-Q subgroup.
func KeyDerive(params *group.Params, sk *SecretKey, cmt *big.Int, op Op, y int64) (*FunctionKey, error) {
	if sk == nil || sk.S == nil {
		return nil, fmt.Errorf("%w: empty secret key", ErrMalformed)
	}
	if cmt == nil || !params.IsElement(cmt) {
		return nil, fmt.Errorf("%w: commitment not a group element", ErrMalformed)
	}
	mc := params.Mont()
	k := mc.Limbs()
	buf := make([]uint64, 2*k)
	cmtM, gy := buf[:k], buf[k:]
	mc.ToMont(cmtM, cmt)
	var yb big.Int
	switch op {
	case OpAdd, OpSub:
		mc.ExpMont(cmtM, cmtM, sk.S) // g^{rs}
		// Negate via big.Int: -y overflows for y = math.MinInt64.
		yb.SetInt64(y)
		if op == OpAdd {
			yb.Neg(&yb)
		}
		params.GTable().PowMont(gy, &yb)
		mc.MulMont(cmtM, cmtM, gy)
		return &FunctionKey{K: mc.FromMont(cmtM)}, nil
	case OpMul:
		// cmt^{s·y mod Q} = (cmt^s)^y for an order-Q commitment.
		e := yb.SetInt64(y)
		e.Mul(e, sk.S)
		mc.ExpMont(cmtM, cmtM, params.ReduceScalar(e))
		return &FunctionKey{K: mc.FromMont(cmtM)}, nil
	case OpDiv:
		yInv, err := params.InvScalar(yb.SetInt64(y))
		if err != nil {
			return nil, fmt.Errorf("febo: division key: %w", err)
		}
		yInv.Mul(yInv, sk.S)
		mc.ExpMont(cmtM, cmtM, params.ReduceScalar(yInv))
		return &FunctionKey{K: mc.FromMont(cmtM)}, nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrInvalidOp, int(op))
	}
}

// Decrypt recovers x Δ y from the ciphertext and the matching function key,
// using solver for the final bounded discrete log.
//
// For Δ = ÷, the recovered exponent is x·y⁻¹ mod q, which equals the
// integer x/y only for exact divisions; otherwise the exponent is a
// pseudo-random ring element and Decrypt reports the solver's ErrNotFound.
func Decrypt(pk *PublicKey, fk *FunctionKey, ct *Ciphertext, op Op, y int64, solver *dlog.Solver) (int64, error) {
	g, err := DecryptGroupElement(pk, fk, ct, op, y)
	if err != nil {
		return 0, err
	}
	v, err := solver.Lookup(g)
	if err != nil {
		return 0, fmt.Errorf("febo: recovering x%sy: %w", op, err)
	}
	return v, nil
}

// ErrInexactDivision reports a ÷ decryption whose quotient is not an
// integer: x·y⁻¹ mod q then lands on a pseudo-random ring element far
// outside any reasonable solver bound.
var ErrInexactDivision = errors.New("febo: inexact division (x not divisible by y)")

// DecryptDiv recovers x / y for the division functionality, translating
// the solver's not-found into ErrInexactDivision: in the exponent ring
// Z_q, x·y⁻¹ equals the integer quotient exactly when y | x, and is a
// pseudo-random ring element otherwise.
func DecryptDiv(pk *PublicKey, fk *FunctionKey, ct *Ciphertext, y int64, solver *dlog.Solver) (int64, error) {
	g, err := DecryptGroupElement(pk, fk, ct, OpDiv, y)
	if err != nil {
		return 0, err
	}
	v, err := solver.Lookup(g)
	if err != nil {
		if errors.Is(err, dlog.ErrNotFound) {
			return 0, ErrInexactDivision
		}
		return 0, fmt.Errorf("febo: recovering x/y: %w", err)
	}
	return v, nil
}

// DecryptGroupElement computes g^{x Δ y} without the final discrete log.
func DecryptGroupElement(pk *PublicKey, fk *FunctionKey, ct *Ciphertext, op Op, y int64) (*big.Int, error) {
	num, den, err := DecryptParts(pk, fk, ct, op, y)
	if err != nil {
		return nil, err
	}
	return pk.Params.Div(num, den), nil
}

// DecryptParts splits DecryptGroupElement into its numerator (the
// ciphertext term) and denominator (the function key), so batch callers
// can invert many denominators with one modular inversion (Montgomery's
// trick in securemat's chunked decryption pipeline). den is always freshly
// allocated and safe to invert in place; num may alias ciphertext state
// and must be treated as read-only.
func DecryptParts(pk *PublicKey, fk *FunctionKey, ct *Ciphertext, op Op, y int64) (num, den *big.Int, err error) {
	if pk == nil {
		return nil, nil, fmt.Errorf("%w: nil public key", ErrMalformed)
	}
	if fk == nil || fk.K == nil {
		return nil, nil, fmt.Errorf("%w: empty function key", ErrMalformed)
	}
	if ct == nil || ct.Ct == nil {
		return nil, nil, fmt.Errorf("%w: empty ciphertext", ErrMalformed)
	}
	p := pk.Params
	den = new(big.Int).Set(fk.K)
	var yb big.Int
	switch op {
	case OpAdd, OpSub:
		return ct.Ct, den, nil
	case OpMul:
		return p.Exp(ct.Ct, yb.SetInt64(y)), den, nil
	case OpDiv:
		yInv, err := p.InvScalar(yb.SetInt64(y))
		if err != nil {
			return nil, nil, fmt.Errorf("febo: decrypt: %w", err)
		}
		return p.Exp(ct.Ct, yInv), den, nil
	default:
		return nil, nil, fmt.Errorf("%w: %d", ErrInvalidOp, int(op))
	}
}

// DecryptScratch carries the per-call working buffers of DecryptPartsMont
// so a worker decrypting many cells reuses one set of allocations. The
// zero value is ready to use; a DecryptScratch must not be shared between
// concurrent decryptions.
type DecryptScratch struct {
	ct, tab []uint64
}

func (sc *DecryptScratch) ensure(k int) {
	if cap(sc.ct) < k {
		sc.ct = make([]uint64, k)
	} else {
		sc.ct = sc.ct[:k]
	}
}

// DecryptPartsMont is DecryptParts entirely in the Montgomery domain: it
// writes the numerator and denominator of g^{x Δ y} = num/den as raw limb
// elements (length Limbs()) into the caller's num and den slices, so the
// batched element-wise pipeline can fold a whole chunk's denominators into
// one inversion (BatchInvMont) and feed the quotients straight to
// dlog.LookupMont — no big.Int round-trip per cell.
//
// For Δ = × with y < 0 the inversion-free ladder computes ct^{|y|} and
// folds it into the denominator (num becomes 1), preserving num/den; for
// Δ = ÷ the exponent y⁻¹ mod q is full-size and runs the windowed ExpMont
// ladder on sc's reusable table. den is written last-multiplied and safe to
// invert in place; sc may be nil (one-shot allocations).
func DecryptPartsMont(pk *PublicKey, fk *FunctionKey, ct *Ciphertext, op Op, y int64, num, den []uint64, sc *DecryptScratch) error {
	if pk == nil {
		return fmt.Errorf("%w: nil public key", ErrMalformed)
	}
	if fk == nil || fk.K == nil {
		return fmt.Errorf("%w: empty function key", ErrMalformed)
	}
	if ct == nil || ct.Ct == nil {
		return fmt.Errorf("%w: empty ciphertext", ErrMalformed)
	}
	p := pk.Params
	mc := p.Mont()
	if sc == nil {
		sc = &DecryptScratch{}
	}
	sc.ensure(mc.Limbs())
	mc.ToMont(den, fk.K)
	switch op {
	case OpAdd, OpSub:
		mc.ToMont(num, ct.Ct)
		return nil
	case OpMul:
		mc.ToMont(sc.ct, ct.Ct)
		// uint64(-y) is the correct magnitude even for math.MinInt64: the
		// int64 negation wraps to itself and converts to 2^63.
		mag := uint64(y)
		if y < 0 {
			mag = uint64(-y)
		}
		mc.ExpMontUint64(num, sc.ct, mag)
		if y < 0 {
			// ct^y = (ct^{|y|})^{-1}: move the factor below the bar and let
			// the chunk's batch inversion pay for it.
			mc.MulMont(den, den, num)
			mc.SetOne(num)
		}
		return nil
	case OpDiv:
		var yb big.Int
		yInv, err := p.InvScalar(yb.SetInt64(y))
		if err != nil {
			return fmt.Errorf("febo: decrypt: %w", err)
		}
		mc.ToMont(sc.ct, ct.Ct)
		sc.tab = mc.ExpMontScratch(num, sc.ct, yInv, sc.tab)
		return nil
	default:
		return fmt.Errorf("%w: %d", ErrInvalidOp, int(op))
	}
}
