package febo

import (
	"errors"
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"cryptonn/internal/dlog"
	"cryptonn/internal/group"
)

func setupTest(t testing.TB, bound int64) (*PublicKey, *SecretKey, *dlog.Solver) {
	t.Helper()
	params := group.TestParams()
	pk, sk, err := Setup(params, nil)
	if err != nil {
		t.Fatalf("Setup: %v", err)
	}
	solver, err := dlog.NewSolver(params, bound)
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	return pk, sk, solver
}

func roundTrip(t *testing.T, pk *PublicKey, sk *SecretKey, solver *dlog.Solver, op Op, x, y int64) (int64, error) {
	t.Helper()
	ct, err := Encrypt(pk, x, nil)
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	fk, err := KeyDerive(pk.Params, sk, ct.Cmt, op, y)
	if err != nil {
		return 0, err
	}
	return Decrypt(pk, fk, ct, op, y, solver)
}

func TestAllOpsTable(t *testing.T) {
	pk, sk, solver := setupTest(t, 100_000)
	tests := []struct {
		name string
		op   Op
		x, y int64
		want int64
	}{
		{"add", OpAdd, 17, 25, 42},
		{"add negative y", OpAdd, 10, -3, 7},
		{"add negative x", OpAdd, -10, 3, -7},
		{"add both negative", OpAdd, -10, -3, -13},
		{"sub", OpSub, 50, 8, 42},
		{"sub negative result", OpSub, 5, 9, -4},
		{"sub negative operands", OpSub, -5, -9, 4},
		{"mul", OpMul, 6, 7, 42},
		{"mul negative y", OpMul, 6, -7, -42},
		{"mul negative x", OpMul, -6, 7, -42},
		{"mul both negative", OpMul, -6, -7, 42},
		{"mul by zero y", OpMul, 123, 0, 0},
		{"mul zero x", OpMul, 0, 55, 0},
		{"div exact", OpDiv, 84, 2, 42},
		{"div negative", OpDiv, -84, 2, -42},
		{"div by negative", OpDiv, 84, -2, -42},
		{"div by one", OpDiv, 42, 1, 42},
		{"add zero", OpAdd, 0, 0, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := roundTrip(t, pk, sk, solver, tt.op, tt.x, tt.y)
			if err != nil {
				t.Fatalf("round trip: %v", err)
			}
			if got != tt.want {
				t.Errorf("%d %s %d = %d, want %d", tt.x, tt.op, tt.y, got, tt.want)
			}
		})
	}
}

func TestDivByZeroKeyFails(t *testing.T) {
	pk, sk, _ := setupTest(t, 100)
	ct, _ := Encrypt(pk, 10, nil)
	if _, err := KeyDerive(pk.Params, sk, ct.Cmt, OpDiv, 0); err == nil {
		t.Error("division key for y=0 should fail")
	}
}

func TestInexactDivisionIsUnrecoverable(t *testing.T) {
	// 7/2 = 7·2⁻¹ mod q, a huge ring element: solver must report not-found.
	pk, sk, solver := setupTest(t, 1000)
	_, err := roundTrip(t, pk, sk, solver, OpDiv, 7, 2)
	if !errors.Is(err, dlog.ErrNotFound) {
		t.Errorf("expected dlog.ErrNotFound for inexact division, got %v", err)
	}
}

func TestRandomizedAllOps(t *testing.T) {
	pk, sk, solver := setupTest(t, 1_100_000)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 30; i++ {
		x := rng.Int63n(2001) - 1000
		y := rng.Int63n(2001) - 1000
		for _, op := range []Op{OpAdd, OpSub, OpMul} {
			want, err := op.Apply(x, y)
			if err != nil {
				t.Fatal(err)
			}
			got, err := roundTrip(t, pk, sk, solver, op, x, y)
			if err != nil {
				t.Fatalf("%d %s %d: %v", x, op, y, err)
			}
			if got != want {
				t.Fatalf("%d %s %d = %d, want %d", x, op, y, got, want)
			}
		}
	}
}

// Property: FEBO decryption equals plaintext arithmetic for add/sub/mul.
func TestQuickFunctionality(t *testing.T) {
	pk, sk, solver := setupTest(t, 1<<22)
	f := func(xr, yr int16, opSel uint8) bool {
		x, y := int64(xr%1000), int64(yr%1000)
		op := []Op{OpAdd, OpSub, OpMul}[int(opSel)%3]
		want, err := op.Apply(x, y)
		if err != nil {
			return true // skip (cannot happen for these ops)
		}
		ct, err := Encrypt(pk, x, nil)
		if err != nil {
			return false
		}
		fk, err := KeyDerive(pk.Params, sk, ct.Cmt, op, y)
		if err != nil {
			return false
		}
		got, err := Decrypt(pk, fk, ct, op, y, solver)
		return err == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestKeyIsCiphertextBound(t *testing.T) {
	// A key derived for ciphertext A must not decrypt ciphertext B:
	// this is the per-ciphertext commitment binding of §III-B.
	pk, sk, solver := setupTest(t, 10_000)
	ctA, _ := Encrypt(pk, 11, nil)
	ctB, _ := Encrypt(pk, 11, nil) // same plaintext, fresh nonce
	fkA, err := KeyDerive(pk.Params, sk, ctA.Cmt, OpAdd, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decrypt(pk, fkA, ctB, OpAdd, 5, solver)
	if err == nil && got == 16 {
		t.Error("key for ciphertext A decrypted ciphertext B")
	}
}

func TestCiphertextRandomized(t *testing.T) {
	pk, _, _ := setupTest(t, 10)
	ct1, _ := Encrypt(pk, 1, nil)
	ct2, _ := Encrypt(pk, 1, nil)
	if ct1.Cmt.Cmp(ct2.Cmt) == 0 || ct1.Ct.Cmp(ct2.Ct) == 0 {
		t.Error("two encryptions of the same value are identical")
	}
}

func TestOpHelpers(t *testing.T) {
	if OpAdd.String() != "+" || OpSub.String() != "-" || OpMul.String() != "*" || OpDiv.String() != "/" {
		t.Error("Op.String mismatch")
	}
	if Op(0).Valid() || Op(5).Valid() {
		t.Error("invalid ops reported valid")
	}
	if !OpAdd.Valid() || !OpDiv.Valid() {
		t.Error("valid ops reported invalid")
	}
	if _, err := Op(99).Apply(1, 1); err == nil {
		t.Error("Apply on invalid op should fail")
	}
	if _, err := OpDiv.Apply(1, 0); err == nil {
		t.Error("Apply div-by-zero should fail")
	}
	if _, err := OpDiv.Apply(7, 2); err == nil {
		t.Error("Apply inexact division should fail")
	}
}

func TestMalformedInputs(t *testing.T) {
	pk, sk, solver := setupTest(t, 100)
	ct, _ := Encrypt(pk, 1, nil)
	fk, _ := KeyDerive(pk.Params, sk, ct.Cmt, OpAdd, 1)

	if _, err := Encrypt(nil, 1, nil); err == nil {
		t.Error("nil pk should fail")
	}
	if _, err := KeyDerive(pk.Params, nil, ct.Cmt, OpAdd, 1); err == nil {
		t.Error("nil sk should fail")
	}
	if _, err := KeyDerive(pk.Params, sk, big.NewInt(0), OpAdd, 1); err == nil {
		t.Error("non-element commitment should fail")
	}
	if _, err := KeyDerive(pk.Params, sk, ct.Cmt, Op(9), 1); !errors.Is(err, ErrInvalidOp) {
		t.Error("invalid op should fail KeyDerive")
	}
	if _, err := Decrypt(pk, nil, ct, OpAdd, 1, solver); err == nil {
		t.Error("nil fk should fail")
	}
	if _, err := Decrypt(pk, fk, nil, OpAdd, 1, solver); err == nil {
		t.Error("nil ct should fail")
	}
	if _, err := Decrypt(pk, fk, ct, Op(9), 1, solver); !errors.Is(err, ErrInvalidOp) {
		t.Error("invalid op should fail Decrypt")
	}
	if err := (&PublicKey{}).Validate(); err == nil {
		t.Error("empty pk accepted")
	}
	if err := (&Ciphertext{}).Validate(pk.Params); err == nil {
		t.Error("empty ciphertext accepted")
	}
	if err := ct.Validate(pk.Params); err != nil {
		t.Errorf("valid ciphertext rejected: %v", err)
	}
	if err := pk.Validate(); err != nil {
		t.Errorf("valid pk rejected: %v", err)
	}
}

func TestSetupRejectsNilParams(t *testing.T) {
	if _, _, err := Setup(nil, nil); err == nil {
		t.Error("nil params should fail")
	}
}

func TestDecryptDivExactAndInexact(t *testing.T) {
	params := group.TestParams()
	pk, sk, err := Setup(params, nil)
	if err != nil {
		t.Fatal(err)
	}
	solver, err := dlog.NewSolver(params, 1000)
	if err != nil {
		t.Fatal(err)
	}

	// Exact: 84 / 7 = 12.
	ct, err := Encrypt(pk, 84, nil)
	if err != nil {
		t.Fatal(err)
	}
	fk, err := KeyDerive(params, sk, ct.Cmt, OpDiv, 7)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecryptDiv(pk, fk, ct, 7, solver)
	if err != nil {
		t.Fatalf("exact division: %v", err)
	}
	if got != 12 {
		t.Errorf("84/7 = %d, want 12", got)
	}

	// Inexact: 85 / 7 → ErrInexactDivision.
	ct2, err := Encrypt(pk, 85, nil)
	if err != nil {
		t.Fatal(err)
	}
	fk2, err := KeyDerive(params, sk, ct2.Cmt, OpDiv, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecryptDiv(pk, fk2, ct2, 7, solver); !errors.Is(err, ErrInexactDivision) {
		t.Errorf("85/7 error = %v, want ErrInexactDivision", err)
	}
}

// TestKeyDeriveExtremeOperands pins the OpAdd/OpSub key formula at the
// int64 boundaries, where a naive -y negation overflows (math.MinInt64).
func TestKeyDeriveExtremeOperands(t *testing.T) {
	params := group.TestParams()
	pk, sk, _ := setupTest(t, 100)
	ct, err := Encrypt(pk, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, y := range []int64{math.MinInt64, math.MaxInt64, -1, 0} {
		yb := big.NewInt(y)
		cmtS := params.Exp(ct.Cmt, sk.S)
		wantAdd := params.Mul(cmtS, params.PowG(new(big.Int).Neg(yb)))
		fk, err := KeyDerive(params, sk, ct.Cmt, OpAdd, y)
		if err != nil {
			t.Fatalf("OpAdd y=%d: %v", y, err)
		}
		if fk.K.Cmp(wantAdd) != 0 {
			t.Errorf("OpAdd y=%d: key mismatch", y)
		}
		wantSub := params.Mul(cmtS, params.PowG(yb))
		fk, err = KeyDerive(params, sk, ct.Cmt, OpSub, y)
		if err != nil {
			t.Fatalf("OpSub y=%d: %v", y, err)
		}
		if fk.K.Cmp(wantSub) != 0 {
			t.Errorf("OpSub y=%d: key mismatch", y)
		}
	}
}
