// Package febo implements the paper's functional encryption scheme for
// basic arithmetic operations (§III-B): FEBO = (Setup, KeyDerive, Encrypt,
// Decrypt) for f_Δ(x, y) = x Δ y with Δ ∈ {+, −, ×, ÷}. It is the
// element-wise arm of Algorithm 1: every matrix element is one FEBO
// ciphertext, and a secure X Δ Y recovers one basic operation per cell.
//
// The construction is derived from ElGamal encryption:
//
//	Setup:      s ←$ Z_q, msk = s, mpk = (g, h = g^s)
//	Encrypt:    r ←$ Z_q, cmt = g^r, ct = h^r · g^x
//	KeyDerive:  sk_{f_Δ} =  cmt^s·g^{−y}   (Δ = +)
//	                        cmt^s·g^{y}    (Δ = −)
//	                        (cmt^s)^y      (Δ = ×)
//	                        (cmt^s)^{y⁻¹}  (Δ = ÷)
//	Decrypt:    g^{x Δ y} = ct/sk  |  ct^y/sk  |  ct^{y⁻¹}/sk
//
// Note the per-ciphertext commitment: unlike FEIP, the function key is
// bound to one specific ciphertext via cmt = g^r, so the authority issues
// one key per (ciphertext, op, y) triple. That design choice is faithful to
// the paper and is exactly why the paper's Fig. 3b/4b key-derivation curves
// grow linearly with matrix size — and why the wire protocol batches
// whole matrices of FEBO key requests into single frames.
//
// Division recovers x·y⁻¹ in the exponent ring Z_q, which equals the
// integer quotient only when y divides x exactly; see DecryptDiv.
//
// # Session and concurrency contract
//
// Keys and ciphertexts are immutable once created and safe to share
// across goroutines. PublicKey.Precompute builds the h fixed-base table
// exactly once (idempotent, guarded); callers that fan encryption out
// call it first, as with feip. DecryptPartsMont returns the in-domain
// numerator/denominator halves of a decryption so the securemat cell
// pipeline can fold each chunk's denominators into one batched inversion;
// the scratch values it takes (group.ExpMontScratch) are single-goroutine
// and owned by the calling worker.
package febo
