package group

import (
	"math/big"
	"math/rand"
	"testing"
)

// randOdd returns a random odd modulus of exactly bits bits.
func randOdd(rng *rand.Rand, bits int) *big.Int {
	m := new(big.Int).Lsh(big.NewInt(1), uint(bits-1))
	r := new(big.Int).Rand(rng, m)
	m.Or(m, r)
	m.SetBit(m, 0, 1)
	return m
}

// TestMontMulMatchesBigInt pins MulMont against (a·b) mod p for random odd
// moduli across limb counts, including the >montStackLimbs allocation path.
func TestMontMulMatchesBigInt(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, bits := range []int{8, 63, 64, 65, 127, 128, 256, 257, 512, 1024, 1100} {
		c, err := NewMontCtx(randOdd(rng, bits))
		if err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		p := c.Modulus()
		for trial := 0; trial < 50; trial++ {
			a := new(big.Int).Rand(rng, p)
			b := new(big.Int).Rand(rng, p)
			am, bm, rm := c.Elem(), c.Elem(), c.Elem()
			c.ToMont(am, a)
			c.ToMont(bm, b)
			c.MulMont(rm, am, bm)
			got := c.FromMont(rm)
			want := new(big.Int).Mul(a, b)
			want.Mod(want, p)
			if got.Cmp(want) != 0 {
				t.Fatalf("bits=%d: MulMont(%v, %v) = %v, want %v", bits, a, b, got, want)
			}
		}
	}
}

func TestMontRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, bits := range []int{64, 256} {
		c, err := NewMontCtx(randOdd(rng, bits))
		if err != nil {
			t.Fatal(err)
		}
		p := c.Modulus()
		for trial := 0; trial < 100; trial++ {
			x := new(big.Int).Rand(rng, p)
			xm := c.Elem()
			c.ToMont(xm, x)
			if got := c.FromMont(xm); got.Cmp(x) != 0 {
				t.Fatalf("bits=%d: round trip of %v = %v", bits, x, got)
			}
		}
	}
}

// ToMont must accept negative and ≥p inputs (it reduces them first).
func TestMontToMontReducesInput(t *testing.T) {
	c, err := NewMontCtx(big.NewInt(1000003))
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []int64{-1, -1000003, 1000003, 2000007, 0} {
		xm := c.Elem()
		xb := big.NewInt(x)
		c.ToMont(xm, xb)
		want := new(big.Int).Mod(xb, c.Modulus())
		if got := c.FromMont(xm); got.Cmp(want) != 0 {
			t.Errorf("ToMont(%d) round-trips to %v, want %v", x, got, want)
		}
	}
}

func TestMontOne(t *testing.T) {
	c, err := NewMontCtx(big.NewInt(1_000_000_007))
	if err != nil {
		t.Fatal(err)
	}
	one := c.Elem()
	c.SetOne(one)
	if got := c.FromMont(one); got.Cmp(big.NewInt(1)) != 0 {
		t.Errorf("FromMont(SetOne) = %v", got)
	}
	// 1 is the multiplicative identity in the Montgomery domain.
	x := big.NewInt(123456789)
	xm, rm := c.Elem(), c.Elem()
	c.ToMont(xm, x)
	c.MulMont(rm, xm, one)
	if got := c.FromMont(rm); got.Cmp(x) != 0 {
		t.Errorf("x·1 = %v, want %v", got, x)
	}
}

// MulMont's aliasing contract: dst may be a and/or b.
func TestMontMulAliasing(t *testing.T) {
	c, err := NewMontCtx(TestParams().P)
	if err != nil {
		t.Fatal(err)
	}
	x := big.NewInt(987654321)
	want := new(big.Int).Mul(x, x)
	want.Mod(want, c.Modulus())
	xm := c.Elem()
	c.ToMont(xm, x)
	c.MulMont(xm, xm, xm) // square in place
	if got := c.FromMont(xm); got.Cmp(want) != 0 {
		t.Errorf("in-place square = %v, want %v", got, want)
	}
}

func TestNewMontCtxRejectsBadModuli(t *testing.T) {
	for _, m := range []*big.Int{nil, big.NewInt(0), big.NewInt(-7), big.NewInt(10)} {
		if _, err := NewMontCtx(m); err == nil {
			t.Errorf("NewMontCtx(%v) accepted", m)
		}
	}
}

// The per-Params context is built once and shared; its arithmetic must
// agree with Params.Mul for both the test and the paper group.
func TestParamsMontMatchesMul(t *testing.T) {
	for _, params := range []*Params{TestParams(), PaperParams()} {
		c := params.Mont()
		if c != params.Mont() {
			t.Fatal("Mont() rebuilt the context")
		}
		rng := rand.New(rand.NewSource(3))
		for trial := 0; trial < 30; trial++ {
			a := new(big.Int).Rand(rng, params.P)
			b := new(big.Int).Rand(rng, params.P)
			am, bm := c.Elem(), c.Elem()
			c.ToMont(am, a)
			c.ToMont(bm, b)
			c.MulMont(am, am, bm)
			if got := c.FromMont(am); got.Cmp(params.Mul(a, b)) != 0 {
				t.Fatalf("%s: MulMont disagrees with Mul", params)
			}
		}
	}
}

func BenchmarkMulMont(b *testing.B) {
	for _, params := range []*Params{TestParams(), PaperParams()} {
		b.Run(params.String(), func(b *testing.B) {
			c := params.Mont()
			x, _ := params.RandScalar(rand.New(rand.NewSource(4)))
			xm := c.Elem()
			c.ToMont(xm, params.PowG(x))
			dst := c.Elem()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.MulMont(dst, xm, xm)
			}
		})
	}
}

// BenchmarkModMulBig is the displaced competitor: one big.Int Mul + QuoRem.
func BenchmarkModMulBig(b *testing.B) {
	for _, params := range []*Params{TestParams(), PaperParams()} {
		b.Run(params.String(), func(b *testing.B) {
			x, _ := params.RandScalar(rand.New(rand.NewSource(4)))
			g := params.PowG(x)
			var tmp, q, r big.Int
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tmp.Mul(g, g)
				q.QuoRem(&tmp, params.P, &r)
			}
		})
	}
}

// TestMulMont4MatchesGeneric pins the unrolled 4-limb kernel against the
// generic CIOS loop over random odd moduli spanning the whole 4-limb range
// (193–256 bits), including in-place aliasing on either operand.
func TestMulMont4MatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, bits := range []int{193, 200, 224, 255, 256} {
		c, err := NewMontCtx(randOdd(rng, bits))
		if err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		if c.Limbs() != 4 {
			t.Fatalf("bits=%d: limbs = %d, want 4", bits, c.Limbs())
		}
		p := c.Modulus()
		for trial := 0; trial < 200; trial++ {
			a := new(big.Int).Rand(rng, p)
			b := new(big.Int).Rand(rng, p)
			am, bm, want, got := c.Elem(), c.Elem(), c.Elem(), c.Elem()
			c.ToMont(am, a)
			c.ToMont(bm, b)
			c.mulMontGeneric(want, am, bm)
			mulMont4(got, am, bm, &c.p4, c.n0)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("bits=%d: mulMont4(%v,%v) = %v, want %v", bits, a, b, got, want)
				}
			}
			// dst aliasing a, then both operands.
			copy(got, am)
			mulMont4(got, got, bm, &c.p4, c.n0)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("bits=%d: aliased mulMont4 mismatch", bits)
				}
			}
			c.mulMontGeneric(want, am, am)
			copy(got, am)
			mulMont4(got, got, got, &c.p4, c.n0)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("bits=%d: in-place square via mulMont4 mismatch", bits)
				}
			}
		}
	}
}

// TestSquareMont4MatchesMul pins the dedicated squaring kernel against the
// generic loop's a·a across the 4-limb modulus range, plus edge values
// (0, 1, p−1) where the doubled cross products and the final subtraction
// are most likely to go wrong.
func TestSquareMont4MatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, bits := range []int{193, 224, 256} {
		c, err := NewMontCtx(randOdd(rng, bits))
		if err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		p := c.Modulus()
		vals := []*big.Int{
			big.NewInt(0), big.NewInt(1), big.NewInt(2),
			new(big.Int).Sub(p, big.NewInt(1)),
		}
		for trial := 0; trial < 200; trial++ {
			vals = append(vals, new(big.Int).Rand(rng, p))
		}
		for _, a := range vals {
			am, want, got := c.Elem(), c.Elem(), c.Elem()
			c.ToMont(am, a)
			c.mulMontGeneric(want, am, am)
			squareMont4(got, am, &c.p4, c.n0)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("bits=%d: squareMont4(%v) = %v, want %v", bits, a, got, want)
				}
			}
			// SquareMont must allow dst to alias a (ExpMont squares in place).
			c.SquareMont(am, am)
			for i := range want {
				if am[i] != want[i] {
					t.Fatalf("bits=%d: in-place SquareMont mismatch", bits)
				}
			}
		}
	}
}

// TestSquareMontGenericWidths pins SquareMont at non-4-limb widths (where
// it routes through MulMont) so the dispatch itself is covered.
func TestSquareMontGenericWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, bits := range []int{64, 128, 512} {
		c, err := NewMontCtx(randOdd(rng, bits))
		if err != nil {
			t.Fatal(err)
		}
		p := c.Modulus()
		for trial := 0; trial < 50; trial++ {
			a := new(big.Int).Rand(rng, p)
			am := c.Elem()
			c.ToMont(am, a)
			c.SquareMont(am, am)
			want := new(big.Int).Mul(a, a)
			want.Mod(want, p)
			if got := c.FromMont(am); got.Cmp(want) != 0 {
				t.Fatalf("bits=%d: SquareMont(%v) = %v, want %v", bits, a, got, want)
			}
		}
	}
}

// BenchmarkMulMont4 measures the unrolled 256-bit kernels against the
// generic CIOS loop they displace — the ≥2× headline of the speed-floor
// work, and the gated evidence that the dispatch keeps paying.
func BenchmarkMulMont4(b *testing.B) {
	params := PaperParams()
	c := params.Mont()
	x, _ := params.RandScalar(rand.New(rand.NewSource(4)))
	xm := c.Elem()
	c.ToMont(xm, params.PowG(x))
	dst := c.Elem()
	b.Run("unrolled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mulMont4(dst, xm, xm, &c.p4, c.n0)
		}
	})
	b.Run("generic", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.mulMontGeneric(dst, xm, xm)
		}
	})
	b.Run("square", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			squareMont4(dst, xm, &c.p4, c.n0)
		}
	})
}

// TestBatchInvMontMatchesInv pins the Montgomery-domain batch inversion
// against per-element ModInverse across batch sizes (including the
// single-element batch) and both group sizes.
func TestBatchInvMontMatchesInv(t *testing.T) {
	for _, params := range []*Params{TestParams(), PaperParams()} {
		c := params.Mont()
		k := c.Limbs()
		rng := rand.New(rand.NewSource(11))
		var scratch []uint64
		for _, n := range []int{1, 2, 3, 17, 64} {
			vals := make([]*big.Int, n)
			xs := make([]uint64, n*k)
			for i := range vals {
				e := new(big.Int).Rand(rng, params.Q)
				vals[i] = params.PowG(e)
				c.ToMont(xs[i*k:(i+1)*k], vals[i])
			}
			var err error
			if scratch, err = c.BatchInvMont(xs, scratch); err != nil {
				t.Fatalf("%s n=%d: %v", params, n, err)
			}
			for i := range vals {
				got := c.FromMont(xs[i*k : (i+1)*k])
				if want := params.Inv(vals[i]); got.Cmp(want) != 0 {
					t.Fatalf("%s n=%d: element %d inverse mismatch", params, n, i)
				}
			}
		}
	}
}

// TestBatchInvMontZeroFailsUntouched checks the error path: a zero element
// must report ErrNotInvertible and leave the slab unmodified.
func TestBatchInvMontZeroFailsUntouched(t *testing.T) {
	params := TestParams()
	c := params.Mont()
	k := c.Limbs()
	xs := make([]uint64, 3*k)
	c.ToMont(xs[:k], big.NewInt(7))
	// xs[k:2k] stays zero — not invertible.
	c.ToMont(xs[2*k:], big.NewInt(9))
	before := append([]uint64(nil), xs...)
	if _, err := c.BatchInvMont(xs, nil); err != ErrNotInvertible {
		t.Fatalf("err = %v, want ErrNotInvertible", err)
	}
	for i := range xs {
		if xs[i] != before[i] {
			t.Fatal("slab modified on error")
		}
	}
}

// TestInvMont pins the single-element Montgomery inversion.
func TestInvMont(t *testing.T) {
	params := TestParams()
	c := params.Mont()
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 20; trial++ {
		v := params.PowG(new(big.Int).Rand(rng, params.Q))
		vm := c.Elem()
		c.ToMont(vm, v)
		if err := c.InvMont(vm, vm); err != nil {
			t.Fatal(err)
		}
		if got := c.FromMont(vm); got.Cmp(params.Inv(v)) != 0 {
			t.Fatal("InvMont mismatch")
		}
	}
}

// TestExpMontMatchesExp pins the variable-base Montgomery ladder against
// big.Int Exp for zero, one, boundary and random exponents.
func TestExpMontMatchesExp(t *testing.T) {
	for _, params := range []*Params{TestParams(), PaperParams()} {
		c := params.Mont()
		rng := rand.New(rand.NewSource(13))
		base := params.PowG(big.NewInt(987654321))
		bm := c.Elem()
		c.ToMont(bm, base)
		exps := []*big.Int{
			big.NewInt(0), big.NewInt(1), big.NewInt(2), big.NewInt(15), big.NewInt(16),
			new(big.Int).Sub(params.Q, big.NewInt(1)), new(big.Int).Set(params.Q),
		}
		for i := 0; i < 30; i++ {
			exps = append(exps, new(big.Int).Rand(rng, params.Q))
		}
		dst := c.Elem()
		for _, e := range exps {
			c.ExpMont(dst, bm, e)
			want := new(big.Int).Exp(base, e, params.P)
			if got := c.FromMont(dst); got.Cmp(want) != 0 {
				t.Fatalf("%s: ExpMont(%v) mismatch", params, e)
			}
		}
		// dst may alias base.
		c.ExpMont(bm, bm, big.NewInt(5))
		want := new(big.Int).Exp(base, big.NewInt(5), params.P)
		if got := c.FromMont(bm); got.Cmp(want) != 0 {
			t.Fatal("aliased ExpMont mismatch")
		}
	}
}
