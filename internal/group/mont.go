package group

import (
	"fmt"
	"math/big"
	"math/bits"
)

// Montgomery-domain modular multiplication.
//
// The exponentiation engine's remaining floor is the per-multiplication
// QuoRem reduction: math/big's division is several times more expensive
// than its multiplication at the 64–256-bit operand sizes of this
// codebase, and the giant-step loop of the discrete-log solver plus the
// Straus ladder of MultiExp are nothing but long chains of dependent
// modular multiplications. MontCtx removes the division entirely by
// mapping elements into the Montgomery domain — x·R mod P with R = 2^{64k}
// for a k-limb modulus — where a multiplication reduces with shifts and
// multiplications only (CIOS, Koç et al., "Analyzing and Comparing
// Montgomery Multiplication Algorithms").
//
// Elements in the Montgomery domain are raw little-endian uint64 limb
// slices of fixed length Limbs(), not big.Ints: the hot loops stay free of
// math/big's per-operation normalization and allocation, and the low limb
// doubles as the hash key of the discrete-log solver's baby-step table.
// A MontCtx is immutable after construction and safe for concurrent use;
// MulMont writes only through dst.

// montStackLimbs is the largest modulus (in 64-bit limbs) for which
// MulMont's accumulator lives on the stack. Larger moduli — far beyond the
// paper's 256-bit group — still work but allocate per call.
const montStackLimbs = 16

// MontCtx holds the precomputed constants for Montgomery arithmetic
// modulo one fixed odd modulus.
type MontCtx struct {
	p  *big.Int  // the modulus
	k  int       // limb count of p
	pw []uint64  // little-endian limbs of p
	p4 [4]uint64 // pw as a fixed-size array when k == 4 (mulMont4's view)
	n0 uint64    // -p^{-1} mod 2^64
	r2 []uint64  // R^2 mod p, the ToMont multiplier
	r1 []uint64  // R mod p, i.e. 1 in the Montgomery domain
}

// NewMontCtx builds a Montgomery context for the odd modulus p. Group
// moduli are safe primes, so oddness is no restriction; even moduli are
// rejected because p must be invertible mod 2^64.
func NewMontCtx(p *big.Int) (*MontCtx, error) {
	if p == nil || p.Sign() <= 0 || p.Bit(0) == 0 {
		return nil, fmt.Errorf("group: Montgomery context requires a positive odd modulus, got %v", p)
	}
	k := (p.BitLen() + 63) / 64
	c := &MontCtx{p: new(big.Int).Set(p), k: k, pw: make([]uint64, k)}
	packLimbs(c.pw, p)
	if k == 4 {
		copy(c.p4[:], c.pw)
	}
	// n0 = -p^{-1} mod 2^64 by Newton iteration: inv ≡ p0^{-1} mod 8 holds
	// for inv = p0 (odd squares are 1 mod 8), and every step doubles the
	// number of correct low bits: 3 → 6 → 12 → 24 → 48 → 96 ≥ 64.
	p0 := c.pw[0]
	inv := p0
	for i := 0; i < 5; i++ {
		inv *= 2 - p0*inv
	}
	c.n0 = -inv
	// R mod p and R^2 mod p with one-time big.Int divisions.
	r := new(big.Int).Lsh(one, uint(64*k))
	c.r1 = make([]uint64, k)
	packLimbs(c.r1, new(big.Int).Mod(r, p))
	c.r2 = make([]uint64, k)
	packLimbs(c.r2, new(big.Int).Mod(new(big.Int).Mul(r, r), p))
	return c, nil
}

// Modulus returns (a copy of) the context's modulus.
func (c *MontCtx) Modulus() *big.Int { return new(big.Int).Set(c.p) }

// Limbs returns the number of 64-bit limbs of every Montgomery-domain
// element handled by this context.
func (c *MontCtx) Limbs() int { return c.k }

// Elem allocates a zeroed Montgomery-domain element.
func (c *MontCtx) Elem() []uint64 { return make([]uint64, c.k) }

// SetOne writes the Montgomery form of 1 (R mod p) into dst.
func (c *MontCtx) SetOne(dst []uint64) { copy(dst, c.r1) }

// ToMont converts x into the Montgomery domain: dst = x·R mod p. Negative
// or unreduced inputs are reduced first, so any big.Int is accepted.
func (c *MontCtx) ToMont(dst []uint64, x *big.Int) {
	if x.Sign() < 0 || x.Cmp(c.p) >= 0 {
		x = new(big.Int).Mod(x, c.p)
	}
	var stack [montStackLimbs]uint64
	var xs []uint64
	if c.k <= montStackLimbs {
		xs = stack[:c.k]
	} else {
		xs = make([]uint64, c.k)
	}
	packLimbs(xs, x)
	c.MulMont(dst, xs, c.r2)
}

// FromMont converts x out of the Montgomery domain, returning the standard
// representative x·R^{-1} mod p as a freshly allocated big.Int.
func (c *MontCtx) FromMont(x []uint64) *big.Int {
	// REDC(x) = MulMont(x, 1): the plain 1, not R mod p.
	var stack, oneStack [montStackLimbs]uint64
	var out, oneL []uint64
	if c.k <= montStackLimbs {
		out, oneL = stack[:c.k], oneStack[:c.k]
	} else {
		out, oneL = make([]uint64, c.k), make([]uint64, c.k)
	}
	oneL[0] = 1
	c.MulMont(out, x, oneL)
	return unpackLimbs(out)
}

// MulMont computes dst = a·b·R^{-1} mod p (CIOS). a and b must be
// Montgomery-domain elements of length Limbs() with value < p; dst may
// alias a and/or b. One MulMont of Montgomery forms yields the Montgomery
// form of the product, so chains of multiplications never touch a
// division.
//
// Two widths get specialized kernels: the 1-limb fast path below (the
// 64-bit test group) and the fully unrolled 4-limb CIOS of mulMont4 (the
// paper's 256-bit group). Every other width runs the generic k-limb loop.
func (c *MontCtx) MulMont(dst, a, b []uint64) {
	k := c.k
	if k == 4 {
		mulMont4(dst, a, b, &c.p4, c.n0)
		return
	}
	if k == 1 {
		// Single-limb REDC: t = (a·b + m·p) / 2^64 with m chosen so the
		// low word cancels; t < 2p, so one conditional subtraction (the
		// carry c2 marks t ≥ 2^64, where the wrapping subtraction is
		// still correct mod 2^64).
		p0 := c.pw[0]
		hi, lo := bits.Mul64(a[0], b[0])
		m := lo * c.n0
		mhi, mlo := bits.Mul64(m, p0)
		_, carry := bits.Add64(lo, mlo, 0)
		t, c2 := bits.Add64(hi, mhi, carry)
		if c2 != 0 || t >= p0 {
			t -= p0
		}
		dst[0] = t
		return
	}
	c.mulMontGeneric(dst, a, b)
}

// mulMontGeneric is the generic k-limb CIOS loop, the fallback for widths
// without a specialized kernel (and the reference the unrolled kernels are
// benchmarked and property-tested against).
func (c *MontCtx) mulMontGeneric(dst, a, b []uint64) {
	k := c.k
	var stack [montStackLimbs + 2]uint64
	var t []uint64
	if k+2 <= len(stack) {
		t = stack[:k+2]
	} else {
		t = make([]uint64, k+2)
	}
	p := c.pw
	for i := 0; i < k; i++ {
		// t += a[i]·b. Each inner step computes t[j] + a[i]·b[j] + carry,
		// which fits 128 bits: (2^64−1)² + 2(2^64−1) = 2^128 − 1.
		var carry uint64
		ai := a[i]
		for j := 0; j < k; j++ {
			hi, lo := bits.Mul64(ai, b[j])
			var c1, c2 uint64
			lo, c1 = bits.Add64(lo, t[j], 0)
			lo, c2 = bits.Add64(lo, carry, 0)
			t[j] = lo
			carry = hi + c1 + c2
		}
		var c1 uint64
		t[k], c1 = bits.Add64(t[k], carry, 0)
		t[k+1] = c1
		// Reduce: add m·p with m chosen so the low limb cancels, then
		// shift one limb right (the t[j-1] writes).
		m := t[0] * c.n0
		hi, lo := bits.Mul64(m, p[0])
		_, c2 := bits.Add64(lo, t[0], 0)
		carry = hi + c2
		for j := 1; j < k; j++ {
			hi, lo := bits.Mul64(m, p[j])
			var c3, c4 uint64
			lo, c3 = bits.Add64(lo, t[j], 0)
			lo, c4 = bits.Add64(lo, carry, 0)
			t[j-1] = lo
			carry = hi + c3 + c4
		}
		var c3 uint64
		t[k-1], c3 = bits.Add64(t[k], carry, 0)
		t[k] = t[k+1] + c3
	}
	// t < 2p, so at most one conditional subtraction normalizes it.
	sub := t[k] != 0
	if !sub {
		sub = true
		for j := k - 1; j >= 0; j-- {
			if t[j] != p[j] {
				sub = t[j] > p[j]
				break
			}
		}
	}
	if sub {
		var borrow uint64
		for j := 0; j < k; j++ {
			dst[j], borrow = bits.Sub64(t[j], p[j], borrow)
		}
	} else {
		copy(dst, t[:k])
	}
}

// mulMont4 is the fully unrolled 4-limb CIOS: the same algorithm as
// mulMontGeneric with every limb in a register, restructured per round as
// four independent Mul64s followed by two plain carry chains (lows, then
// highs shifted one limb) — the compiler turns each chain into an ADC
// sequence and the four products issue in parallel, which is where the
// speedup over the serial generic loop comes from. For the 256-bit group
// the paper's evaluation runs on. a and b must hold values < p; dst may
// alias either (both are read into locals before dst is written).
func mulMont4(dst, a, b []uint64, p *[4]uint64, n0 uint64) {
	a0, a1, a2, a3 := a[0], a[1], a[2], a[3]
	b0, b1, b2, b3 := b[0], b[1], b[2], b[3]
	p0, p1, p2, p3 := p[0], p[1], p[2], p[3]
	var t0, t1, t2, t3, t4, t5, c uint64

	// Round 1: T = a0·b (no prior accumulator), then T = (T + m·p)/2^64.
	h0, l0 := bits.Mul64(a0, b0)
	h1, l1 := bits.Mul64(a0, b1)
	h2, l2 := bits.Mul64(a0, b2)
	h3, l3 := bits.Mul64(a0, b3)
	t0 = l0
	t1, c = bits.Add64(l1, h0, 0)
	t2, c = bits.Add64(l2, h1, c)
	t3, c = bits.Add64(l3, h2, c)
	t4 = h3 + c
	m := t0 * n0
	h0, l0 = bits.Mul64(m, p0)
	h1, l1 = bits.Mul64(m, p1)
	h2, l2 = bits.Mul64(m, p2)
	h3, l3 = bits.Mul64(m, p3)
	_, c = bits.Add64(t0, l0, 0) // t0 + l0 ≡ 0 mod 2^64 by choice of m
	t1, c = bits.Add64(t1, l1, c)
	t2, c = bits.Add64(t2, l2, c)
	t3, c = bits.Add64(t3, l3, c)
	t4, t5 = bits.Add64(t4, 0, c)
	t0, c = bits.Add64(t1, h0, 0) // shift down one limb while adding highs
	t1, c = bits.Add64(t2, h1, c)
	t2, c = bits.Add64(t3, h2, c)
	t3, c = bits.Add64(t4, h3, c)
	t4 = t5 + c

	// Rounds 2–4: T += a_i·b, then T = (T + m·p)/2^64. Kept as three
	// literal copies so every accumulator stays in a register (an array
	// loop here spills t0..t5 and costs ~40%).

	// Round 2.
	h0, l0 = bits.Mul64(a1, b0)
	h1, l1 = bits.Mul64(a1, b1)
	h2, l2 = bits.Mul64(a1, b2)
	h3, l3 = bits.Mul64(a1, b3)
	t0, c = bits.Add64(t0, l0, 0)
	t1, c = bits.Add64(t1, l1, c)
	t2, c = bits.Add64(t2, l2, c)
	t3, c = bits.Add64(t3, l3, c)
	t4 += c // t4 ≤ 1 entering the round, so this cannot overflow
	t1, c = bits.Add64(t1, h0, 0)
	t2, c = bits.Add64(t2, h1, c)
	t3, c = bits.Add64(t3, h2, c)
	t4, t5 = bits.Add64(t4, h3, c)
	m = t0 * n0
	h0, l0 = bits.Mul64(m, p0)
	h1, l1 = bits.Mul64(m, p1)
	h2, l2 = bits.Mul64(m, p2)
	h3, l3 = bits.Mul64(m, p3)
	_, c = bits.Add64(t0, l0, 0)
	t1, c = bits.Add64(t1, l1, c)
	t2, c = bits.Add64(t2, l2, c)
	t3, c = bits.Add64(t3, l3, c)
	t4, c = bits.Add64(t4, 0, c)
	t5 += c
	t0, c = bits.Add64(t1, h0, 0)
	t1, c = bits.Add64(t2, h1, c)
	t2, c = bits.Add64(t3, h2, c)
	t3, c = bits.Add64(t4, h3, c)
	t4 = t5 + c

	// Round 3.
	h0, l0 = bits.Mul64(a2, b0)
	h1, l1 = bits.Mul64(a2, b1)
	h2, l2 = bits.Mul64(a2, b2)
	h3, l3 = bits.Mul64(a2, b3)
	t0, c = bits.Add64(t0, l0, 0)
	t1, c = bits.Add64(t1, l1, c)
	t2, c = bits.Add64(t2, l2, c)
	t3, c = bits.Add64(t3, l3, c)
	t4 += c
	t1, c = bits.Add64(t1, h0, 0)
	t2, c = bits.Add64(t2, h1, c)
	t3, c = bits.Add64(t3, h2, c)
	t4, t5 = bits.Add64(t4, h3, c)
	m = t0 * n0
	h0, l0 = bits.Mul64(m, p0)
	h1, l1 = bits.Mul64(m, p1)
	h2, l2 = bits.Mul64(m, p2)
	h3, l3 = bits.Mul64(m, p3)
	_, c = bits.Add64(t0, l0, 0)
	t1, c = bits.Add64(t1, l1, c)
	t2, c = bits.Add64(t2, l2, c)
	t3, c = bits.Add64(t3, l3, c)
	t4, c = bits.Add64(t4, 0, c)
	t5 += c
	t0, c = bits.Add64(t1, h0, 0)
	t1, c = bits.Add64(t2, h1, c)
	t2, c = bits.Add64(t3, h2, c)
	t3, c = bits.Add64(t4, h3, c)
	t4 = t5 + c

	// Round 4.
	h0, l0 = bits.Mul64(a3, b0)
	h1, l1 = bits.Mul64(a3, b1)
	h2, l2 = bits.Mul64(a3, b2)
	h3, l3 = bits.Mul64(a3, b3)
	t0, c = bits.Add64(t0, l0, 0)
	t1, c = bits.Add64(t1, l1, c)
	t2, c = bits.Add64(t2, l2, c)
	t3, c = bits.Add64(t3, l3, c)
	t4 += c
	t1, c = bits.Add64(t1, h0, 0)
	t2, c = bits.Add64(t2, h1, c)
	t3, c = bits.Add64(t3, h2, c)
	t4, t5 = bits.Add64(t4, h3, c)
	m = t0 * n0
	h0, l0 = bits.Mul64(m, p0)
	h1, l1 = bits.Mul64(m, p1)
	h2, l2 = bits.Mul64(m, p2)
	h3, l3 = bits.Mul64(m, p3)
	_, c = bits.Add64(t0, l0, 0)
	t1, c = bits.Add64(t1, l1, c)
	t2, c = bits.Add64(t2, l2, c)
	t3, c = bits.Add64(t3, l3, c)
	t4, c = bits.Add64(t4, 0, c)
	t5 += c
	t0, c = bits.Add64(t1, h0, 0)
	t1, c = bits.Add64(t2, h1, c)
	t2, c = bits.Add64(t3, h2, c)
	t3, c = bits.Add64(t4, h3, c)
	t4 = t5 + c

	montReduce4Final(dst, t0, t1, t2, t3, t4, p)
}

// montReduce4Final writes the normalized 4-limb result: t < 2p on entry
// (t4 is the 2^256 overflow bit), so one conditional subtraction suffices.
func montReduce4Final(dst []uint64, t0, t1, t2, t3, t4 uint64, p *[4]uint64) {
	d0, br := bits.Sub64(t0, p[0], 0)
	d1, br2 := bits.Sub64(t1, p[1], br)
	d2, br3 := bits.Sub64(t2, p[2], br2)
	d3, br4 := bits.Sub64(t3, p[3], br3)
	if t4 != 0 || br4 == 0 {
		dst[0], dst[1], dst[2], dst[3] = d0, d1, d2, d3
	} else {
		dst[0], dst[1], dst[2], dst[3] = t0, t1, t2, t3
	}
}

// squareMont4 is the 4-limb Montgomery squaring: the full 512-bit square
// computes only the upper-triangle products once (doubling them by shift),
// then reduces with four SOS steps. Squarings dominate the comb and
// variable-base ladders, where this saves the 6 duplicated cross products
// a general mulMont4 would recompute. dst may alias a.
func squareMont4(dst, a []uint64, p *[4]uint64, n0 uint64) {
	a0, a1, a2, a3 := a[0], a[1], a[2], a[3]
	p0, p1, p2, p3 := p[0], p[1], p[2], p[3]
	var z0, z1, z2, z3, z4, z5, z6, z7 uint64
	var hi, lo, c, cc, cc2 uint64

	// Upper triangle Σ_{i<j} a_i·a_j·2^{64(i+j)} into z1..z6.
	c, z1 = bits.Mul64(a0, a1)
	hi, lo = bits.Mul64(a0, a2)
	z2, cc = bits.Add64(lo, c, 0)
	c = hi + cc
	hi, lo = bits.Mul64(a0, a3)
	z3, cc = bits.Add64(lo, c, 0)
	z4 = hi + cc
	hi, lo = bits.Mul64(a1, a2)
	z3, cc = bits.Add64(z3, lo, 0)
	c = hi + cc
	hi, lo = bits.Mul64(a1, a3)
	lo, cc = bits.Add64(lo, c, 0)
	z4, cc2 = bits.Add64(z4, lo, 0)
	z5 = hi + cc + cc2
	hi, lo = bits.Mul64(a2, a3)
	z5, cc = bits.Add64(z5, lo, 0)
	z6 = hi + cc

	// Double the cross products and add the diagonal squares.
	z7 = z6 >> 63
	z6 = z6<<1 | z5>>63
	z5 = z5<<1 | z4>>63
	z4 = z4<<1 | z3>>63
	z3 = z3<<1 | z2>>63
	z2 = z2<<1 | z1>>63
	z1 = z1 << 1
	hi, z0 = bits.Mul64(a0, a0)
	z1, c = bits.Add64(z1, hi, 0)
	hi, lo = bits.Mul64(a1, a1)
	z2, c = bits.Add64(z2, lo, c)
	z3, c = bits.Add64(z3, hi, c)
	hi, lo = bits.Mul64(a2, a2)
	z4, c = bits.Add64(z4, lo, c)
	z5, c = bits.Add64(z5, hi, c)
	hi, lo = bits.Mul64(a3, a3)
	z6, c = bits.Add64(z6, lo, c)
	z7 = z7 + hi + c // cannot overflow: a² < 2^512

	// Four SOS reduction steps: step i adds m·p at limb i with m chosen to
	// zero z_i, then the carry ripples to the top. e collects the single
	// overflow bit past z7 (the running value stays < 2p·2^256).
	var e, cr uint64
	m := z0 * n0
	hi, lo = bits.Mul64(m, p0)
	_, c = bits.Add64(lo, z0, 0)
	cr = hi + c
	hi, lo = bits.Mul64(m, p1)
	lo, c = bits.Add64(lo, z1, 0)
	z1, cc = bits.Add64(lo, cr, 0)
	cr = hi + c + cc
	hi, lo = bits.Mul64(m, p2)
	lo, c = bits.Add64(lo, z2, 0)
	z2, cc = bits.Add64(lo, cr, 0)
	cr = hi + c + cc
	hi, lo = bits.Mul64(m, p3)
	lo, c = bits.Add64(lo, z3, 0)
	z3, cc = bits.Add64(lo, cr, 0)
	cr = hi + c + cc
	z4, c = bits.Add64(z4, cr, 0)
	z5, c = bits.Add64(z5, 0, c)
	z6, c = bits.Add64(z6, 0, c)
	z7, c = bits.Add64(z7, 0, c)
	e += c

	m = z1 * n0
	hi, lo = bits.Mul64(m, p0)
	_, c = bits.Add64(lo, z1, 0)
	cr = hi + c
	hi, lo = bits.Mul64(m, p1)
	lo, c = bits.Add64(lo, z2, 0)
	z2, cc = bits.Add64(lo, cr, 0)
	cr = hi + c + cc
	hi, lo = bits.Mul64(m, p2)
	lo, c = bits.Add64(lo, z3, 0)
	z3, cc = bits.Add64(lo, cr, 0)
	cr = hi + c + cc
	hi, lo = bits.Mul64(m, p3)
	lo, c = bits.Add64(lo, z4, 0)
	z4, cc = bits.Add64(lo, cr, 0)
	cr = hi + c + cc
	z5, c = bits.Add64(z5, cr, 0)
	z6, c = bits.Add64(z6, 0, c)
	z7, c = bits.Add64(z7, 0, c)
	e += c

	m = z2 * n0
	hi, lo = bits.Mul64(m, p0)
	_, c = bits.Add64(lo, z2, 0)
	cr = hi + c
	hi, lo = bits.Mul64(m, p1)
	lo, c = bits.Add64(lo, z3, 0)
	z3, cc = bits.Add64(lo, cr, 0)
	cr = hi + c + cc
	hi, lo = bits.Mul64(m, p2)
	lo, c = bits.Add64(lo, z4, 0)
	z4, cc = bits.Add64(lo, cr, 0)
	cr = hi + c + cc
	hi, lo = bits.Mul64(m, p3)
	lo, c = bits.Add64(lo, z5, 0)
	z5, cc = bits.Add64(lo, cr, 0)
	cr = hi + c + cc
	z6, c = bits.Add64(z6, cr, 0)
	z7, c = bits.Add64(z7, 0, c)
	e += c

	m = z3 * n0
	hi, lo = bits.Mul64(m, p0)
	_, c = bits.Add64(lo, z3, 0)
	cr = hi + c
	hi, lo = bits.Mul64(m, p1)
	lo, c = bits.Add64(lo, z4, 0)
	z4, cc = bits.Add64(lo, cr, 0)
	cr = hi + c + cc
	hi, lo = bits.Mul64(m, p2)
	lo, c = bits.Add64(lo, z5, 0)
	z5, cc = bits.Add64(lo, cr, 0)
	cr = hi + c + cc
	hi, lo = bits.Mul64(m, p3)
	lo, c = bits.Add64(lo, z6, 0)
	z6, cc = bits.Add64(lo, cr, 0)
	cr = hi + c + cc
	z7, c = bits.Add64(z7, cr, 0)
	e += c

	montReduce4Final(dst, z4, z5, z6, z7, e, p)
}

// SquareMont computes dst = a² in the Montgomery domain; dst may alias a.
// At 4 limbs it runs the dedicated squaring kernel; every other width
// squares via MulMont. The squaring chains of ExpMont, the Straus ladder
// and the comb evaluator route through here.
func (c *MontCtx) SquareMont(dst, a []uint64) {
	if c.k == 4 {
		squareMont4(dst, a, &c.p4, c.n0)
		return
	}
	c.MulMont(dst, a, a)
}

// InvMont computes dst = x^{-1} in the Montgomery domain (i.e. the
// Montgomery form of the standard inverse). dst may alias x. The one
// extended-GCD inversion is the price batch callers amortize with
// BatchInvMont; single callers (a lone PowRecoded combine) pay it here.
func (c *MontCtx) InvMont(dst, x []uint64) error {
	inv := new(big.Int).ModInverse(c.FromMont(x), c.p)
	if inv == nil {
		return ErrNotInvertible
	}
	c.ToMont(dst, inv)
	return nil
}

// BatchInvMont replaces every k-limb element of the flat slab xs (whose
// length must be a multiple of Limbs()) with its Montgomery-domain inverse,
// using Montgomery's trick: one extended-GCD inversion plus 3(n−1) limb
// multiplications for n elements. It is the in-domain counterpart of
// Params.BatchInv, used by the encryption engine to fold the signed-window
// negative-digit accumulators of a whole ciphertext (and by the securemat
// denominator cache) into a single inversion.
//
// scratch is optional caller scratch of at least len(xs) limbs; it is
// allocated when too small and returned either way so workers can reuse one
// slab across calls. On error no element of xs has been modified.
func (c *MontCtx) BatchInvMont(xs, scratch []uint64) ([]uint64, error) {
	k := c.k
	if len(xs)%k != 0 {
		panic("group: BatchInvMont slab length not a multiple of Limbs()")
	}
	n := len(xs) / k
	if n == 0 {
		return scratch, nil
	}
	if len(scratch) < n*k {
		scratch = make([]uint64, n*k)
	}
	pre := scratch
	copy(pre[:k], xs[:k])
	for i := 1; i < n; i++ {
		c.MulMont(pre[i*k:(i+1)*k], pre[(i-1)*k:i*k], xs[i*k:(i+1)*k])
	}
	invBig := new(big.Int).ModInverse(c.FromMont(pre[(n-1)*k:n*k]), c.p)
	if invBig == nil {
		return scratch, ErrNotInvertible
	}
	var invStack, tmpStack [montStackLimbs]uint64
	var inv, tmp []uint64
	if k <= montStackLimbs {
		inv, tmp = invStack[:k], tmpStack[:k]
	} else {
		inv, tmp = make([]uint64, k), make([]uint64, k)
	}
	c.ToMont(inv, invBig)
	for i := n - 1; i >= 1; i-- {
		xi := xs[i*k : (i+1)*k]
		// xi^{-1} = inv(x_0···x_i)·(x_0···x_{i-1}); fold the old xi into
		// the running inverse before overwriting it.
		copy(tmp, xi)
		c.MulMont(xi, inv, pre[(i-1)*k:i*k])
		c.MulMont(inv, inv, tmp)
	}
	copy(xs[:k], inv)
	return scratch, nil
}

// ExpMont computes dst = base^e in the Montgomery domain for a variable
// base (no precomputed table) and a non-negative exponent, by left-to-right
// radix-2^4 windowed square-and-multiply over MulMont. Callers with signed
// or unreduced exponents reduce them mod the group order first. dst may
// alias base.
func (c *MontCtx) ExpMont(dst, base []uint64, e *big.Int) {
	c.ExpMontScratch(dst, base, e, nil)
}

// ExpMontScratch is ExpMont with a caller-provided window-table slab, so
// loops that exponentiate many variable bases (the element-wise division
// pipeline) reuse one allocation. The slab is grown when too small and
// returned either way; pass nil on the first call and thread the result
// through subsequent ones.
func (c *MontCtx) ExpMontScratch(dst, base []uint64, e *big.Int, tab []uint64) []uint64 {
	if e.Sign() < 0 {
		panic("group: ExpMont requires a non-negative exponent")
	}
	k := c.k
	if e.Sign() == 0 {
		c.SetOne(dst)
		return tab
	}
	const w = 4
	if need := (1<<w - 1) * k; cap(tab) < need {
		tab = make([]uint64, need)
	} else {
		tab = tab[:need]
	}
	copy(tab[:k], base)
	for d := 2; d < 1<<w; d++ {
		c.MulMont(tab[(d-1)*k:d*k], tab[(d-2)*k:(d-1)*k], tab[:k])
	}
	started := false
	for i := (e.BitLen() + w - 1) / w; i >= 0; i-- {
		if started {
			for s := 0; s < w; s++ {
				c.SquareMont(dst, dst)
			}
		}
		if d := windowDigit(e, i, w); d != 0 {
			entry := tab[(int(d)-1)*k : int(d)*k]
			if !started {
				copy(dst, entry)
				started = true
			} else {
				c.MulMont(dst, dst, entry)
			}
		}
	}
	if !started {
		c.SetOne(dst)
	}
	return tab
}

// ExpMontUint64 computes dst = base^e in the Montgomery domain for a
// machine-integer exponent with a plain allocation-free square-and-multiply
// ladder — the right tool for the small fixed-point multipliers of the
// element-wise pipeline, where a window table would cost more to build than
// the ladder saves. dst must not alias base.
func (c *MontCtx) ExpMontUint64(dst, base []uint64, e uint64) {
	if e == 0 {
		c.SetOne(dst)
		return
	}
	k := c.k
	copy(dst[:k], base[:k])
	for i := bits.Len64(e) - 2; i >= 0; i-- {
		c.SquareMont(dst, dst)
		if e&(1<<uint(i)) != 0 {
			c.MulMont(dst, dst, base)
		}
	}
}

// Mont returns the lazily built Montgomery context for the group modulus
// P, shared by every goroutine like GTable. It panics when P is even —
// impossible for a validated Params (P is a safe prime).
func (p *Params) Mont() *MontCtx {
	p.montOnce.Do(func() {
		c, err := NewMontCtx(p.P)
		if err != nil {
			panic(err)
		}
		p.mont = c
	})
	return p.mont
}

// packLimbs writes the little-endian 64-bit limbs of the non-negative x
// into dst, zero-padding to len(dst). It is portable across big.Word
// sizes; the 32-bit branch is compile-time dead code on 64-bit platforms.
func packLimbs(dst []uint64, x *big.Int) {
	for i := range dst {
		dst[i] = 0
	}
	words := x.Bits()
	if bits.UintSize == 64 {
		for i, w := range words {
			dst[i] = uint64(w)
		}
	} else {
		for i, w := range words {
			dst[i/2] |= uint64(w) << (32 * uint(i%2))
		}
	}
}

// unpackLimbs converts little-endian 64-bit limbs into a freshly
// allocated big.Int.
func unpackLimbs(limbs []uint64) *big.Int {
	if bits.UintSize == 64 {
		words := make([]big.Word, len(limbs))
		for i, l := range limbs {
			words[i] = big.Word(l)
		}
		// SetBits is unchecked: normalize by trimming high zero words.
		n := len(words)
		for n > 0 && words[n-1] == 0 {
			n--
		}
		return new(big.Int).SetBits(words[:n])
	}
	buf := make([]byte, 8*len(limbs))
	for i, l := range limbs {
		off := len(buf) - 8*(i+1)
		for b := 0; b < 8; b++ {
			buf[off+7-b] = byte(l >> (8 * uint(b)))
		}
	}
	return new(big.Int).SetBytes(buf)
}
