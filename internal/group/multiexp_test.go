package group_test

import (
	"fmt"
	"math/big"
	"math/rand"
	"testing"

	"cryptonn/internal/group"
)

// naiveProduct is the reference: Π Exp(base_i, e_i) computed one
// exponentiation at a time, exactly as feip.DecryptGroupElement did before
// the multi-exponentiation engine.
func naiveProduct(p *group.Params, bases, exps []*big.Int) *big.Int {
	acc := big.NewInt(1)
	for i := range bases {
		acc = p.Mul(acc, p.Exp(bases[i], exps[i]))
	}
	return acc
}

func randomBases(p *group.Params, rng *rand.Rand, n int) []*big.Int {
	bases := make([]*big.Int, n)
	for i := range bases {
		bases[i] = p.PowG(new(big.Int).Rand(rng, p.Q))
	}
	return bases
}

func TestMultiExpMatchesNaiveProduct(t *testing.T) {
	for _, bits := range []int{64, 256} {
		t.Run(fmt.Sprintf("bits=%d", bits), func(t *testing.T) {
			params, err := group.Embedded(bits)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(bits)))
			for trial := 0; trial < 30; trial++ {
				n := 1 + rng.Intn(12)
				bases := randomBases(params, rng, n)
				exps := make([]*big.Int, n)
				for i := range exps {
					switch trial % 4 {
					case 0: // tiny signed (the FE weight-vector case)
						exps[i] = big.NewInt(rng.Int63n(21) - 10)
					case 1: // full-size
						exps[i] = new(big.Int).Rand(rng, params.Q)
					case 2: // signed full-size and ≥ Q
						e := new(big.Int).Rand(rng, params.Q)
						e.Add(e, params.Q)
						if rng.Intn(2) == 0 {
							e.Neg(e)
						}
						exps[i] = e
					default: // mixed with zeros
						if rng.Intn(3) == 0 {
							exps[i] = big.NewInt(0)
						} else {
							exps[i] = big.NewInt(rng.Int63n(2001) - 1000)
						}
					}
				}
				want := naiveProduct(params, bases, exps)
				if got := params.MultiExp(bases, exps); got.Cmp(want) != 0 {
					t.Fatalf("trial %d: MultiExp mismatch: got %v want %v", trial, got, want)
				}
			}
		})
	}
}

func TestMultiExpEdgeCases(t *testing.T) {
	params := group.TestParams()
	rng := rand.New(rand.NewSource(42))

	if got := params.MultiExp(nil, nil); got.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("empty product = %v, want 1", got)
	}
	bases := randomBases(params, rng, 3)
	zeros := []*big.Int{big.NewInt(0), big.NewInt(0), big.NewInt(0)}
	if got := params.MultiExp(bases, zeros); got.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("all-zero exponents = %v, want 1", got)
	}
	// Exponents that are multiples of Q reduce to the identity.
	qMults := []*big.Int{
		new(big.Int).Set(params.Q),
		new(big.Int).Neg(params.Q),
		new(big.Int).Lsh(params.Q, 2),
	}
	if got := params.MultiExp(bases, qMults); got.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("Q-multiple exponents = %v, want 1", got)
	}
	// Single pair degenerates to Exp.
	e := big.NewInt(-987654321)
	want := params.Exp(bases[0], e)
	if got := params.MultiExp(bases[:1], []*big.Int{e}); got.Cmp(want) != 0 {
		t.Fatalf("single-pair MultiExp = %v, want %v", got, want)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	params.MultiExp(bases, zeros[:2])
}

func TestMultiExpInt64MatchesMultiExp(t *testing.T) {
	params := group.TestParams()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(20)
		bases := randomBases(params, rng, n)
		exps64 := make([]int64, n)
		exps := make([]*big.Int, n)
		for i := range exps64 {
			exps64[i] = rng.Int63() - rng.Int63() // full signed int64 range
			if rng.Intn(4) == 0 {
				exps64[i] = rng.Int63n(21) - 10
			}
			exps[i] = big.NewInt(exps64[i])
		}
		want := naiveProduct(params, bases, exps)
		if got := params.MultiExpInt64(bases, exps64); got.Cmp(want) != 0 {
			t.Fatalf("trial %d: MultiExpInt64 mismatch", trial)
		}
	}
}

// sparseCase materializes a coordinate-form sparse vector plus its dense
// equivalent so sparse entry points can be pinned exactly against dense ones.
func sparseCase(rng *rand.Rand, n int, density float64) (idx []int, vals []int64, dense []int64) {
	dense = make([]int64, n)
	for i := 0; i < n; i++ {
		if rng.Float64() < density {
			v := rng.Int63n(2001) - 1000
			if v == 0 {
				v = 1
			}
			dense[i] = v
			idx = append(idx, i)
			vals = append(vals, v)
		}
	}
	return idx, vals, dense
}

// TestMultiExpSparseMatchesDense pins the sparse coordinate-form entry
// points value-exact (and, for the Mont variant, limb-exact) against the
// dense walk across the density spectrum on both embedded group widths.
func TestMultiExpSparseMatchesDense(t *testing.T) {
	for _, bits := range []int{64, 256} {
		t.Run(fmt.Sprintf("bits=%d", bits), func(t *testing.T) {
			params, err := group.Embedded(bits)
			if err != nil {
				t.Fatal(err)
			}
			mc := params.Mont()
			k := mc.Limbs()
			rng := rand.New(rand.NewSource(int64(bits) + 9))
			pos := make([]uint64, k)
			neg := make([]uint64, k)
			dPos := make([]uint64, k)
			dNeg := make([]uint64, k)
			var scratch []uint64
			for _, density := range []float64{0, 0.01, 0.5, 1} {
				for trial := 0; trial < 8; trial++ {
					n := 1 + rng.Intn(200)
					bases := randomBases(params, rng, n)
					idx, vals, dense := sparseCase(rng, n, density)
					want := params.MultiExpInt64(bases, dense)
					if got := params.MultiExpInt64Sparse(bases, idx, vals); got.Cmp(want) != 0 {
						t.Fatalf("density=%g trial %d: sparse %v want %v", density, trial, got, want)
					}
					scratch = params.MultiExpInt64SparseMontParts(pos, neg, bases, idx, vals, scratch)
					scratch = params.MultiExpInt64MontParts(dPos, dNeg, bases, dense, scratch)
					for i := 0; i < k; i++ {
						if pos[i] != dPos[i] || neg[i] != dNeg[i] {
							t.Fatalf("density=%g trial %d: Mont parts diverge at limb %d", density, trial, i)
						}
					}
				}
			}
			// Single nonzero degenerates to one Exp; negative entry takes
			// the sign-split inverse path.
			bases := randomBases(params, rng, 50)
			for _, v := range []int64{7, -7} {
				want := params.Exp(bases[31], big.NewInt(v))
				if got := params.MultiExpInt64Sparse(bases, []int{31}, []int64{v}); got.Cmp(want) != 0 {
					t.Fatalf("single nonzero %d: got %v want %v", v, got, want)
				}
			}
			// Explicit zeros inside the coordinate form are dropped.
			want := params.Exp(bases[3], big.NewInt(5))
			if got := params.MultiExpInt64Sparse(bases, []int{1, 3, 8}, []int64{0, 5, 0}); got.Cmp(want) != 0 {
				t.Fatalf("zero-valued coords: got %v want %v", got, want)
			}
			// Empty support is the empty product.
			if got := params.MultiExpInt64Sparse(bases, nil, nil); got.Cmp(big.NewInt(1)) != 0 {
				t.Fatalf("empty support = %v, want 1", got)
			}
			defer func() {
				if recover() == nil {
					t.Fatal("index/value length mismatch did not panic")
				}
			}()
			params.MultiExpInt64Sparse(bases, []int{1, 2}, []int64{1})
		})
	}
}

// TestMultiExpInt64MontPartsMatchesNaive pins the Montgomery-domain
// sign-split halves: pos/neg must equal the naive product, with the split
// exactly covering positive and negative exponents.
func TestMultiExpInt64MontPartsMatchesNaive(t *testing.T) {
	for _, bits := range []int{64, 256} {
		t.Run(fmt.Sprintf("bits=%d", bits), func(t *testing.T) {
			params, err := group.Embedded(bits)
			if err != nil {
				t.Fatal(err)
			}
			mc := params.Mont()
			k := mc.Limbs()
			rng := rand.New(rand.NewSource(int64(bits) + 42))
			pos := make([]uint64, k)
			neg := make([]uint64, k)
			var scratch []uint64
			for trial := 0; trial < 30; trial++ {
				n := 1 + rng.Intn(12)
				bases := randomBases(params, rng, n)
				exps := make([]int64, n)
				eBig := make([]*big.Int, n)
				for i := range exps {
					exps[i] = rng.Int63n(2001) - 1000
					if trial%4 == 1 && i == 0 {
						exps[i] = 0
					}
					eBig[i] = big.NewInt(exps[i])
				}
				scratch = params.MultiExpInt64MontParts(pos, neg, bases, exps, scratch)
				got := params.Div(mc.FromMont(pos), mc.FromMont(neg))
				if want := naiveProduct(params, bases, eBig); got.Cmp(want) != 0 {
					t.Fatalf("trial %d: pos/neg = %v, want %v", trial, got, want)
				}
			}
			// Empty and all-zero products are 1/1.
			params.MultiExpInt64MontParts(pos, neg, nil, nil, nil)
			if mc.FromMont(pos).Cmp(big.NewInt(1)) != 0 || mc.FromMont(neg).Cmp(big.NewInt(1)) != 0 {
				t.Fatal("empty product != 1")
			}
		})
	}
}
