package group

import (
	"errors"
	"math/big"
	"math/rand"
	"testing"
)

func TestBatchInvMatchesInv(t *testing.T) {
	for _, params := range []*Params{TestParams(), PaperParams()} {
		rng := rand.New(rand.NewSource(11))
		for _, n := range []int{1, 2, 3, 17, 100} {
			xs := make([]*big.Int, n)
			want := make([]*big.Int, n)
			for i := range xs {
				e, err := params.RandScalar(rng)
				if err != nil {
					t.Fatal(err)
				}
				xs[i] = params.PowG(e)
				want[i] = params.Inv(xs[i])
			}
			if err := params.BatchInv(xs, nil); err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			for i := range xs {
				if xs[i].Cmp(want[i]) != 0 {
					t.Fatalf("%s n=%d: BatchInv[%d] = %v, want %v", params, n, i, xs[i], want[i])
				}
			}
		}
	}
}

func TestBatchInvReusesScratch(t *testing.T) {
	params := TestParams()
	prefix := make([]big.Int, 8)
	for trial := 0; trial < 3; trial++ {
		xs := []*big.Int{big.NewInt(2), big.NewInt(3), big.NewInt(5)}
		want := []*big.Int{params.Inv(xs[0]), params.Inv(xs[1]), params.Inv(xs[2])}
		if err := params.BatchInv(xs, prefix); err != nil {
			t.Fatal(err)
		}
		for i := range xs {
			if xs[i].Cmp(want[i]) != 0 {
				t.Fatalf("trial %d: mismatch at %d", trial, i)
			}
		}
	}
}

func TestBatchInvEmpty(t *testing.T) {
	if err := TestParams().BatchInv(nil, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBatchInvZeroElement(t *testing.T) {
	params := TestParams()
	a, b := big.NewInt(7), big.NewInt(11)
	orig := []*big.Int{new(big.Int).Set(a), big.NewInt(0), new(big.Int).Set(b)}
	xs := []*big.Int{a, big.NewInt(0), b}
	if err := params.BatchInv(xs, nil); !errors.Is(err, ErrNotInvertible) {
		t.Fatalf("err = %v, want ErrNotInvertible", err)
	}
	// The contract: no element was modified on error.
	for i := range xs {
		if xs[i].Cmp(orig[i]) != 0 {
			t.Errorf("xs[%d] modified on error: %v -> %v", i, orig[i], xs[i])
		}
	}
}

func BenchmarkBatchInv(b *testing.B) {
	params := TestParams()
	rng := rand.New(rand.NewSource(12))
	const n = 64
	src := make([]*big.Int, n)
	for i := range src {
		e, _ := params.RandScalar(rng)
		src[i] = params.PowG(e)
	}
	xs := make([]*big.Int, n)
	vals := make([]big.Int, n)
	prefix := make([]big.Int, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range src {
			xs[j] = vals[j].Set(src[j])
		}
		if err := params.BatchInv(xs, prefix); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSeqInv is the displaced competitor: one ModInverse per element.
func BenchmarkSeqInv(b *testing.B) {
	params := TestParams()
	rng := rand.New(rand.NewSource(12))
	const n = 64
	src := make([]*big.Int, n)
	for i := range src {
		e, _ := params.RandScalar(rng)
		src[i] = params.PowG(e)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range src {
			params.Inv(src[j])
		}
	}
}
