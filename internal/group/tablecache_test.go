package group

import (
	"crypto/sha256"
	"encoding/binary"
	"math/big"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// openTestCache opens a cache in a fresh temp dir.
func openTestCache(t testing.TB) *TableCache {
	t.Helper()
	tc, err := OpenTableCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return tc
}

// TestTableCacheRoundTrip pins the low-level limb round trip and the
// counter semantics.
func TestTableCacheRoundTrip(t *testing.T) {
	tc := openTestCache(t)
	p := TestParams()
	payload := []uint64{1, 2, 3, 0xdeadbeef, ^uint64(0)}
	if _, ok := tc.LoadLimbs(p, "kind", []byte("key"), []int64{5}, len(payload)); ok {
		t.Fatal("load hit before store")
	}
	tc.StoreLimbs(p, "kind", []byte("key"), []int64{5}, payload)
	got, ok := tc.LoadLimbs(p, "kind", []byte("key"), []int64{5}, len(payload))
	if !ok {
		t.Fatal("load missed after store")
	}
	for i := range payload {
		if got[i] != payload[i] {
			t.Fatalf("limb %d: got %d, want %d", i, got[i], payload[i])
		}
	}
	// A different key, shape, kind or group must not alias the entry.
	if _, ok := tc.LoadLimbs(p, "kind", []byte("other"), []int64{5}, len(payload)); ok {
		t.Fatal("different key hit")
	}
	if _, ok := tc.LoadLimbs(p, "kind", []byte("key"), []int64{6}, len(payload)); ok {
		t.Fatal("different shape hit")
	}
	if _, ok := tc.LoadLimbs(p, "kind2", []byte("key"), []int64{5}, len(payload)); ok {
		t.Fatal("different kind hit")
	}
	if _, ok := tc.LoadLimbs(PaperParams(), "kind", []byte("key"), []int64{5}, len(payload)); ok {
		t.Fatal("different group hit")
	}
	st := tc.Stats()
	if st.Hits != 1 || st.Misses != 5 || st.Writes != 1 || st.Rejects != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// cacheFiles lists the cache's .tbl files.
func cacheFiles(t *testing.T, tc *TableCache) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(tc.Dir(), "*.tbl"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no cache files (%v)", err)
	}
	return files
}

// TestTableCacheFailureModes exercises every refuse-and-rebuild path the
// loader has: truncation, a flipped payload byte (checksum mismatch), a
// wrong params fingerprint and a wrong format version — the latter two
// with correctly recomputed trailers, so only the targeted check can
// catch them. Each must fall back to derivation (miss the load) without
// panicking, and count a reject.
func TestTableCacheFailureModes(t *testing.T) {
	p := TestParams()
	payload := []uint64{10, 20, 30, 40}
	key := []byte("k")
	shape := []int64{4}

	write := func(t *testing.T, tc *TableCache) string {
		t.Helper()
		tc.StoreLimbs(p, "fm", key, shape, payload)
		return cacheFiles(t, tc)[0]
	}
	reseal := func(raw []byte) []byte {
		sum := sha256.Sum256(raw[:len(raw)-sha256.Size])
		copy(raw[len(raw)-sha256.Size:], sum[:])
		return raw
	}
	cases := []struct {
		name   string
		tamper func([]byte) []byte
	}{
		{"truncated", func(raw []byte) []byte { return raw[:len(raw)/2] }},
		{"flipped_checksum_byte", func(raw []byte) []byte {
			raw[tableCacheHeader] ^= 0x01 // first payload byte no longer matches the trailer
			return raw
		}},
		{"wrong_fingerprint", func(raw []byte) []byte {
			raw[8] ^= 0xff // fingerprint field
			return reseal(raw)
		}},
		{"wrong_version", func(raw []byte) []byte {
			binary.LittleEndian.PutUint32(raw[4:8], tableCacheVersion+1)
			return reseal(raw)
		}},
		{"wrong_magic", func(raw []byte) []byte {
			raw[0] = 'X'
			return reseal(raw)
		}},
		{"wrong_length", func(raw []byte) []byte {
			binary.LittleEndian.PutUint64(raw[40:48], 3)
			return reseal(raw)
		}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			tc := openTestCache(t)
			file := write(t, tc)
			raw, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(file, tt.tamper(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := tc.LoadLimbs(p, "fm", key, shape, len(payload)); ok {
				t.Fatal("tampered file accepted")
			}
			if st := tc.Stats(); st.Rejects != 1 {
				t.Fatalf("rejects = %d, want 1", st.Rejects)
			}
			// The write-back path must overwrite the refused file in place
			// and make the next load clean again — no stale math survives.
			tc.StoreLimbs(p, "fm", key, shape, payload)
			got, ok := tc.LoadLimbs(p, "fm", key, shape, len(payload))
			if !ok {
				t.Fatal("rebuilt entry not loadable")
			}
			for i := range payload {
				if got[i] != payload[i] {
					t.Fatal("rebuilt entry corrupt")
				}
			}
		})
	}
}

// TestTableCacheWarmStartDerivesNothing is the cold-start acceptance
// test: after one process seeds the cache, a second process (fresh Params
// of the same constants, fresh TableCache handle) must build its
// generator table, generator comb and a LazyTable key table purely from
// disk — zero misses, zero derivations — and the loaded tables must agree
// with derived arithmetic.
func TestTableCacheWarmStartDerivesNothing(t *testing.T) {
	dir := t.TempDir()
	hExp := big.NewInt(987654321)

	boot := func() (*Params, *TableCache, *FixedBaseTable) {
		tc, err := OpenTableCache(dir)
		if err != nil {
			t.Fatal(err)
		}
		p := PaperParams()
		p.UseTableCache(tc)
		p.GTable()
		p.GComb()
		var lt LazyTable
		keyTab := lt.Get(p, p.Exp(p.G, hExp), 0)
		return p, tc, keyTab
	}

	_, tc1, _ := boot()
	st1 := tc1.Stats()
	if st1.Writes == 0 || st1.Hits != 0 {
		t.Fatalf("cold boot stats = %+v", st1)
	}

	p2, tc2, keyTab2 := boot()
	st2 := tc2.Stats()
	if st2.Misses != 0 || st2.Rejects != 0 {
		t.Fatalf("warm boot derived tables: stats = %+v", st2)
	}
	if st2.Hits != st1.Writes {
		t.Fatalf("warm boot hits = %d, want %d (one per seeded table)", st2.Hits, st1.Writes)
	}
	if st2.Writes != 0 {
		t.Fatalf("warm boot rewrote %d tables", st2.Writes)
	}

	// Loaded tables must compute exactly what derived ones do.
	ref := PaperParams()
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 10; i++ {
		e, err := ref.RandScalar(rng)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := p2.PowG(e), ref.Exp(ref.G, e); got.Cmp(want) != 0 {
			t.Fatalf("cached PowG(%v) = %v, want %v", e, got, want)
		}
		if got, want := keyTab2.Pow(e), ref.Exp(keyTab2.Base(), e); got.Cmp(want) != 0 {
			t.Fatalf("cached key table Pow(%v) mismatch", e)
		}
	}
	if got := p2.PowGInt64(-37); got.Cmp(ref.Exp(ref.G, big.NewInt(-37))) != 0 {
		t.Fatal("cached dense inverse lookup mismatch")
	}
}

// TestTableCacheGlobalFallback pins the SetTableCache/UseTableCache
// resolution order.
func TestTableCacheGlobalFallback(t *testing.T) {
	global := openTestCache(t)
	local := openTestCache(t)
	SetTableCache(global)
	defer SetTableCache(nil)
	p := TestParams()
	if p.TableCache() != global {
		t.Fatal("global cache not picked up")
	}
	p.UseTableCache(local)
	if p.TableCache() != local {
		t.Fatal("per-Params override not picked up")
	}
	if TestParams().TableCache() != global {
		t.Fatal("override leaked across Params")
	}
}

// BenchmarkColdStart measures process cold start of the generator tables
// (window + comb): derive is the no-cache baseline, load the warm-cache
// path the -table-cache flag buys. Fresh Params per iteration defeat the
// sync.Once memoization, exactly like a fresh process.
func BenchmarkColdStart(b *testing.B) {
	b.Run("derive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := PaperParams()
			p.GTable()
			p.GComb()
		}
	})
	b.Run("load", func(b *testing.B) {
		tc, err := OpenTableCache(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		seed := PaperParams()
		seed.UseTableCache(tc)
		seed.GTable()
		seed.GComb()
		seeded := tc.Stats() // the seed's own misses and writes
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := PaperParams()
			p.UseTableCache(tc)
			p.GTable()
			p.GComb()
		}
		b.StopTimer()
		if st := tc.Stats(); st.Misses != seeded.Misses || st.Rejects != 0 {
			b.Fatalf("warm loads derived tables: %+v", st)
		}
	})
}
