package group

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmbeddedAllValid(t *testing.T) {
	for _, bits := range EmbeddedSizes() {
		bits := bits
		t.Run(big.NewInt(int64(bits)).String()+"bit", func(t *testing.T) {
			p, err := Embedded(bits)
			if err != nil {
				t.Fatalf("Embedded(%d): %v", bits, err)
			}
			if err := p.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if got := p.P.BitLen(); got != bits {
				t.Errorf("modulus bit length = %d, want %d", got, bits)
			}
			if got := p.Bits(); got != bits-1 {
				t.Errorf("order bit length = %d, want %d", got, bits-1)
			}
		})
	}
}

func TestEmbeddedUnknownSize(t *testing.T) {
	if _, err := Embedded(97); err == nil {
		t.Fatal("Embedded(97) should fail")
	}
}

func TestTestParamsAndPaperParams(t *testing.T) {
	if TestParams().P.BitLen() != TestBits {
		t.Error("TestParams has wrong size")
	}
	if PaperParams().P.BitLen() != PaperBits {
		t.Error("PaperParams has wrong size")
	}
}

func TestGenerateSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("safe-prime generation is slow")
	}
	p, err := Generate(64, nil)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestGenerateRejectsTinyModulus(t *testing.T) {
	if _, err := Generate(16, nil); err == nil {
		t.Fatal("Generate(16) should fail")
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	good := TestParams()
	tests := []struct {
		name string
		p    *Params
	}{
		{"nil field", &Params{P: good.P, Q: good.Q}},
		{"composite P", &Params{P: big.NewInt(15), Q: big.NewInt(7), G: big.NewInt(2)}},
		{"P not 2Q+1", &Params{P: good.P, Q: new(big.Int).Add(good.Q, one), G: good.G}},
		{"generator 1", &Params{P: good.P, Q: good.Q, G: big.NewInt(1)}},
		{"generator outside subgroup", &Params{P: good.P, Q: good.Q, G: new(big.Int).Sub(good.P, one)}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.p.Validate(); err == nil {
				t.Error("Validate should fail")
			}
		})
	}
}

func TestExpNegativeExponent(t *testing.T) {
	p := TestParams()
	x := big.NewInt(42)
	ghx := p.PowG(x)
	ghxNeg := p.PowG(new(big.Int).Neg(x))
	if got := p.Mul(ghx, ghxNeg); got.Cmp(one) != 0 {
		t.Errorf("g^42 * g^-42 = %v, want 1", got)
	}
}

func TestExpLaws(t *testing.T) {
	p := TestParams()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		a := big.NewInt(rng.Int63n(1 << 30))
		b := big.NewInt(rng.Int63n(1 << 30))
		// g^a * g^b == g^{a+b}
		lhs := p.Mul(p.PowG(a), p.PowG(b))
		rhs := p.PowG(new(big.Int).Add(a, b))
		if lhs.Cmp(rhs) != 0 {
			t.Fatalf("homomorphism broken for a=%v b=%v", a, b)
		}
		// (g^a)^b == g^{ab}
		lhs = p.Exp(p.PowG(a), b)
		rhs = p.PowG(new(big.Int).Mul(a, b))
		if lhs.Cmp(rhs) != 0 {
			t.Fatalf("power law broken for a=%v b=%v", a, b)
		}
	}
}

func TestDivAndInv(t *testing.T) {
	p := TestParams()
	a := p.PowGInt64(123)
	b := p.PowGInt64(100)
	if got, want := p.Div(a, b), p.PowGInt64(23); got.Cmp(want) != 0 {
		t.Errorf("Div: got %v want %v", got, want)
	}
	if got := p.Mul(a, p.Inv(a)); got.Cmp(one) != 0 {
		t.Errorf("Inv: a * a^-1 = %v, want 1", got)
	}
}

func TestInvScalar(t *testing.T) {
	p := TestParams()
	y := big.NewInt(7)
	inv, err := p.InvScalar(y)
	if err != nil {
		t.Fatalf("InvScalar: %v", err)
	}
	var prod big.Int
	prod.Mul(y, inv)
	prod.Mod(&prod, p.Q)
	if prod.Cmp(one) != 0 {
		t.Errorf("7 * InvScalar(7) mod Q = %v, want 1", &prod)
	}
	if _, err := p.InvScalar(big.NewInt(0)); err == nil {
		t.Error("InvScalar(0) should fail")
	}
}

func TestIsElement(t *testing.T) {
	p := TestParams()
	if !p.IsElement(p.G) {
		t.Error("generator should be an element")
	}
	if !p.IsElement(p.PowGInt64(99)) {
		t.Error("g^99 should be an element")
	}
	if p.IsElement(nil) {
		t.Error("nil should not be an element")
	}
	if p.IsElement(big.NewInt(0)) {
		t.Error("0 should not be an element")
	}
	if p.IsElement(p.P) {
		t.Error("P should not be an element")
	}
	// A quadratic non-residue is not in the order-Q subgroup.
	nonRes := new(big.Int).Sub(p.P, one) // -1 has order 2
	if p.IsElement(nonRes) {
		t.Error("-1 should not be in the order-Q subgroup")
	}
}

func TestRandScalarRange(t *testing.T) {
	p := TestParams()
	for i := 0; i < 100; i++ {
		s, err := p.RandScalar(nil)
		if err != nil {
			t.Fatalf("RandScalar: %v", err)
		}
		if s.Sign() < 0 || s.Cmp(p.Q) >= 0 {
			t.Fatalf("scalar %v out of [0, Q)", s)
		}
	}
}

func TestReduceScalar(t *testing.T) {
	p := TestParams()
	neg := big.NewInt(-5)
	r := p.ReduceScalar(neg)
	if r.Sign() < 0 || r.Cmp(p.Q) >= 0 {
		t.Fatalf("reduced scalar %v out of range", r)
	}
	want := new(big.Int).Sub(p.Q, big.NewInt(5))
	if r.Cmp(want) != 0 {
		t.Errorf("ReduceScalar(-5) = %v, want Q-5 = %v", r, want)
	}
}

func TestCloneAndEqual(t *testing.T) {
	p := TestParams()
	c := p.Clone()
	if !p.Equal(c) {
		t.Error("clone should be equal")
	}
	c.P.Add(c.P, one)
	if p.Equal(c) {
		t.Error("mutated clone should not be equal (and must not alias)")
	}
	if p.Equal(nil) {
		t.Error("Equal(nil) should be false")
	}
}

// Property: exponentiation is a homomorphism from (Z, +) to the group for
// arbitrary signed inputs.
func TestQuickExpHomomorphism(t *testing.T) {
	p := TestParams()
	f := func(a, b int32) bool {
		ab := new(big.Int).Add(big.NewInt(int64(a)), big.NewInt(int64(b)))
		lhs := p.Mul(p.PowGInt64(int64(a)), p.PowGInt64(int64(b)))
		return lhs.Cmp(p.PowG(ab)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStringDoesNotDumpInts(t *testing.T) {
	s := TestParams().String()
	if len(s) > 80 {
		t.Errorf("String too verbose: %q", s)
	}
}
