package group

import (
	"encoding/binary"
	"fmt"
	"math/big"
	"math/bits"
)

// Lim–Lee comb exponentiation for fixed bases.
//
// The signed-window tables of fixedbase.go already remove the per-digit
// multiplications of a plain ladder, but an evaluation still pays either a
// recoding pass plus a deferred inversion (PowRecoded + BatchInvMont) or
// up to two multiplications per window (PowMont's unsigned split). The
// comb method (Lim & Lee, "More Flexible Exponentiation with
// Precomputation", CRYPTO '94) spends more precomputation to make the
// evaluation strictly cheaper AND inversion-free: the exponent's bits are
// read in fixed positions, so there is no recoding, no signed digits, and
// no negative accumulator to invert.
//
// Geometry: an exponent of L = Q.BitLen() bits is cut into h blocks of
// a = v·b bits, each block into v sub-blocks of b bits. One tooth pattern
// u ∈ [1, 2^h) selects a subset of the h blocks; the table stores, for
// each sub-block column t ∈ [0, v),
//
//	comb[t][u] = Π_{j: bit j of u set} base^{2^{j·a + t·b}}
//
// and an evaluation is b−1 squarings plus at most v·b table
// multiplications — against ~52 multiplications for the signed w=5
// window path on the 256-bit paper group, with the recoding and the
// batch inversion gone entirely. The right (h, v) depends on the regime:
// a hot, shared base (the generator) wants teeth — more precompute,
// fewer operations — while a batch encryptor walking hundreds of
// per-key slabs cache-cold wants the slab compact (see keyCombGeometry
// and the geometry constants below). All entries live in the Montgomery
// domain as one flat limb slab (the same layout the table cache
// serializes). A FixedBaseComb is immutable after construction and safe
// for concurrent use.

const (
	// combTeethKey/combSplitKey is the per-key geometry for narrow
	// groups (≤128-bit exponents): evaluation there is operation-bound
	// (1-limb multiplications cost single nanoseconds), so the shallow
	// b = ⌈⌈L/h⌉/v⌉ — one squaring and ≤8 multiplications at 64 bits —
	// wins despite the 2^h−1-entry columns.
	combTeethKey = 8
	combSplitKey = 4
	// combTeethKeyWide/combSplitKeyWide is the per-key geometry for wide
	// groups (the 256-bit paper group). A batch encryptor walks η≈784
	// per-key slabs once per ciphertext, so evaluation is cache-bound,
	// not operation-bound: the compact 2·63-entry slab (4 KiB per key at
	// 256 bits, against 32 KiB for h=8/v=4) keeps the whole key set near
	// L2 and measures ~30% faster at η=784 even though it spends 21
	// squarings + ≤44 multiplications per evaluation instead of 7 + ≤32.
	combTeethKeyWide = 6
	combSplitKeyWide = 2
	// combTeethGen/combSplitGen is the deeper generator geometry: g is
	// shared process-wide and its slab stays hot, so a 128 KiB slab
	// buying 6 squarings + ≤28 multiplications per full-width PowG is
	// the right trade.
	combTeethGen = 10
	combSplitGen = 4
	// maxCombTeeth bounds h so the 2^h−1 entries per column stay sane.
	maxCombTeeth = 16
)

// keyCombGeometry picks the per-key comb geometry for an L-bit exponent:
// narrow groups are operation-bound, wide groups cache-bound (see the
// geometry constants).
func keyCombGeometry(L int) (h, v int) {
	if L <= 128 {
		return combTeethKey, combSplitKey
	}
	return combTeethKeyWide, combSplitKeyWide
}

// FixedBaseComb holds Lim–Lee comb precomputation for one base. Build it
// for bases that see many full-width exponentiations (nonce paths); small
// exponents should keep using a FixedBaseTable's dense cache.
type FixedBaseComb struct {
	params *Params
	mc     *MontCtx
	base   *big.Int
	h      int // teeth: blocks combined per table entry
	v      int // column splits per block
	b      int // bits per sub-block: the squaring depth of an evaluation
	a      int // block stride in bits, = v·b
	k      int // limbs per Montgomery-domain element
	// slab[(t·(2^h−1) + u−1)·k : …+k] = comb[t][u] in Montgomery form,
	// for t in 0..v−1 and tooth pattern u in 1..2^h−1.
	slab []uint64
}

// NewFixedBaseComb precomputes a comb table for base with the default
// per-key geometry for the group's exponent width. base must be an
// element of the order-Q subgroup (the exponent reduction mod Q relies
// on base^Q = 1).
func (p *Params) NewFixedBaseComb(base *big.Int) *FixedBaseComb {
	h, v := keyCombGeometry(p.Q.BitLen())
	return p.newFixedBaseComb(base, h, v)
}

// NewFixedBaseCombGeometry is NewFixedBaseComb with explicit teeth h and
// column splits v.
func (p *Params) NewFixedBaseCombGeometry(base *big.Int, h, v int) (*FixedBaseComb, error) {
	if h < 2 || h > maxCombTeeth || v < 1 {
		return nil, fmt.Errorf("group: comb geometry h=%d v=%d outside h∈[2,%d], v≥1", h, v, maxCombTeeth)
	}
	return p.newFixedBaseComb(base, h, v), nil
}

func (p *Params) newFixedBaseComb(base *big.Int, h, v int) *FixedBaseComb {
	c := p.newCombShape(base, h, v)
	c.build()
	return c
}

// newCombShape sizes a comb without filling the slab, so the table cache
// can deserialize straight into it.
func (p *Params) newCombShape(base *big.Int, h, v int) *FixedBaseComb {
	mc := p.Mont()
	k := mc.Limbs()
	L := p.Q.BitLen()
	a := (L + h - 1) / h
	b := (a + v - 1) / v
	c := &FixedBaseComb{
		params: p,
		mc:     mc,
		base:   new(big.Int).Set(base),
		h:      h,
		v:      v,
		b:      b,
		a:      v * b, // blocks are padded to whole sub-blocks
		k:      k,
		slab:   make([]uint64, v*((1<<h)-1)*k),
	}
	return c
}

// build fills the slab: first the h·v tooth powers base^{2^{s·b}} by
// repeated squaring (s = j·v + t, so j·a + t·b = s·b), then each column's
// 2^h−1 subset products, each one multiplication off a previous entry.
func (c *FixedBaseComb) build() {
	mc, k, h, v := c.mc, c.k, c.h, c.v
	half := (1 << h) - 1
	teeth := make([]uint64, h*v*k)
	cur := teeth[:k]
	mc.ToMont(cur, c.base)
	for s := 1; s < h*v; s++ {
		next := teeth[s*k : (s+1)*k]
		copy(next, cur)
		for i := 0; i < c.b; i++ {
			mc.SquareMont(next, next)
		}
		cur = next
	}
	for t := 0; t < v; t++ {
		col := c.slab[t*half*k:]
		for u := 1; u <= half; u++ {
			j := bits.Len(uint(u)) - 1
			tooth := teeth[(j*v+t)*k : (j*v+t+1)*k]
			entry := col[(u-1)*k : u*k]
			if rest := u &^ (1 << j); rest == 0 {
				copy(entry, tooth)
			} else {
				mc.MulMont(entry, col[(rest-1)*k:rest*k], tooth)
			}
		}
	}
}

// NewFixedBaseCombs builds default-geometry combs for a batch of bases —
// the η h_i of one FEIP master public key. With a table cache configured
// the whole batch persists and restores as a single blob: one file per
// key, not η, and a warm serving process skips the η table builds that
// dominate its cold start.
func (p *Params) NewFixedBaseCombs(bases []*big.Int) []*FixedBaseComb {
	h, v := keyCombGeometry(p.Q.BitLen())
	return p.NewFixedBaseCombsGeometry(bases, h, v)
}

// NewFixedBaseCombsGeometry is NewFixedBaseCombs with explicit teeth h
// and column splits v (see NewFixedBaseCombGeometry for the bounds).
func (p *Params) NewFixedBaseCombsGeometry(bases []*big.Int, h, v int) []*FixedBaseComb {
	combs := make([]*FixedBaseComb, len(bases))
	tc := p.TableCache()
	if tc == nil || len(bases) == 0 {
		for i, b := range bases {
			combs[i] = p.newFixedBaseComb(b, h, v)
		}
		return combs
	}
	for i, b := range bases {
		combs[i] = p.newCombShape(b, h, v)
	}
	per := len(combs[0].slab)
	// The fingerprint key is the concatenation of every base,
	// length-prefixed so adjacent bases cannot alias.
	var key []byte
	for _, b := range bases {
		bb := b.Bytes()
		var lb [4]byte
		binary.LittleEndian.PutUint32(lb[:], uint32(len(bb)))
		key = append(key, lb[:]...)
		key = append(key, bb...)
	}
	shape := []int64{int64(h), int64(v), int64(len(bases))}
	if payload, ok := tc.LoadLimbs(p, "fbcombs", key, shape, per*len(bases)); ok {
		for i := range combs {
			combs[i].slab = payload[i*per : (i+1)*per]
		}
		return combs
	}
	payload := make([]uint64, 0, per*len(bases))
	for _, c := range combs {
		c.build()
		payload = append(payload, c.slab...)
	}
	tc.StoreLimbs(p, "fbcombs", key, shape, payload)
	return combs
}

// Base returns (a copy of) the base the comb was built for.
func (c *FixedBaseComb) Base() *big.Int { return new(big.Int).Set(c.base) }

// Geometry returns the comb's teeth h and column splits v.
func (c *FixedBaseComb) Geometry() (h, v int) { return c.h, c.v }

// maxCombColumns bounds b·v for the stack scratch of PowMontLimbs; every
// supported geometry is far below it (b·v ≈ padded exponent width / h).
const maxCombColumns = 512

// PowMontLimbs computes base^e into dst as a Montgomery-domain element,
// for an exponent packed little-endian into el (ScalarLimbs). This is the
// zero-allocation core. dst must be Limbs() long and must not alias el.
func (c *FixedBaseComb) PowMontLimbs(dst []uint64, el []uint64) {
	var stack [maxCombColumns]uint32
	var us []uint32
	if n := c.b * c.v; n <= len(stack) {
		us = stack[:n]
	}
	c.PowMontGathered(dst, c.Gather(el, us))
}

// Gather extracts the per-column tooth patterns the comb's evaluation
// reads from an exponent packed by ScalarLimbs, reusing buf when it has
// the capacity. The patterns depend only on the comb's geometry and the
// group's exponent width — not on its base — so batch encryptors gather
// the shared nonce once and evaluate the result against every per-key
// comb (PowMontGathered), instead of re-reading every exponent bit per
// key.
func (c *FixedBaseComb) Gather(el []uint64, buf []uint32) []uint32 {
	h, v, b, a := c.h, c.v, c.b, c.a
	n := b * v
	if cap(buf) < n {
		buf = make([]uint32, n)
	}
	buf = buf[:n]
	for i := 0; i < b; i++ {
		for t := 0; t < v; t++ {
			u := uint32(0)
			pos := t*b + i
			for j := 0; j < h; j++ {
				u |= uint32(limbBit(el, pos)) << j
				pos += a
			}
			buf[i*v+t] = u
		}
	}
	return buf
}

// PowMontGathered is PowMontLimbs for an exponent already gathered into
// column patterns by Gather — on this comb or any comb of identical
// geometry over the same group. dst must be Limbs() long.
func (c *FixedBaseComb) PowMontGathered(dst []uint64, us []uint32) {
	mc, k, v := c.mc, c.k, c.v
	half := (1 << c.h) - 1
	started := false
	for i := c.b - 1; i >= 0; i-- {
		if started {
			mc.SquareMont(dst, dst)
		}
		for t := v - 1; t >= 0; t-- {
			u := int(us[i*v+t])
			if u == 0 {
				continue
			}
			entry := c.slab[(t*half+u-1)*k:]
			if !started {
				copy(dst[:k], entry[:k])
				started = true
			} else {
				mc.MulMont(dst, dst, entry[:k])
			}
		}
	}
	if !started {
		mc.SetOne(dst) // e ≡ 0 mod Q
	}
}

// PowMont computes base^exp into dst as a Montgomery-domain element of
// Limbs() length. Exponents of any sign and size are accepted (reduced
// into [0, Q), relying on base^Q = 1); the evaluation is inversion-free.
func (c *FixedBaseComb) PowMont(dst []uint64, exp *big.Int) {
	var stack [montStackLimbs]uint64
	var el []uint64
	if n := c.params.scalarLimbCount(); n <= montStackLimbs {
		el = stack[:n]
	}
	el = c.params.ScalarLimbs(exp, el)
	c.PowMontLimbs(dst, el)
}

// Pow computes base^exp mod P; the result is freshly allocated. It agrees
// with Params.Exp on every input for subgroup bases.
func (c *FixedBaseComb) Pow(exp *big.Int) *big.Int {
	var stack [montStackLimbs]uint64
	var dst []uint64
	if c.k <= montStackLimbs {
		dst = stack[:c.k]
	} else {
		dst = make([]uint64, c.k)
	}
	c.PowMont(dst, exp)
	return c.mc.FromMont(dst)
}

// scalarLimbCount is the limb length of a ScalarLimbs packing.
func (p *Params) scalarLimbCount() int { return (p.Q.BitLen() + 63) / 64 }

// ScalarLimbs packs an exponent into canonical little-endian limbs for
// the comb evaluators, reducing it into [0, Q) first. buf is reused when
// its capacity suffices.
func (p *Params) ScalarLimbs(e *big.Int, buf []uint64) []uint64 {
	if e.Sign() < 0 || e.Cmp(p.Q) >= 0 {
		e = new(big.Int).Mod(e, p.Q)
	}
	n := p.scalarLimbCount()
	if cap(buf) < n {
		buf = make([]uint64, n)
	}
	buf = buf[:n]
	packLimbs(buf, e)
	return buf
}

// limbBit extracts bit pos of a little-endian limb vector; bits past the
// end read as zero (blocks are padded to whole sub-blocks).
func limbBit(el []uint64, pos int) uint64 {
	w := pos >> 6
	if w >= len(el) {
		return 0
	}
	return (el[w] >> (uint(pos) & 63)) & 1
}
