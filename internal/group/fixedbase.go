package group

import (
	"math/big"
	"sync"
)

// Fixed-base exponentiation.
//
// Almost every exponentiation in the CryptoNN pipeline reuses one of a
// handful of bases: the generator g (every g^{x_i}, g^r, the dlog shift),
// the master-public-key elements h_i (one h_i^r per coordinate of every
// Encrypt), and the ElGamal public key h. For a fixed base, the classic
// radix-2^w precomputation (Brauer; see HAC §14.6.3) replaces the
// square-and-multiply ladder with pure table multiplications:
//
//	base^e = Π_i base^{d_i·2^{w·i}}   where e = Σ d_i·2^{w·i}, 0 ≤ d_i < 2^w
//
// Each factor base^{d·2^{w·i}} is precomputed, so Pow costs at most
// ⌈bits(Q)/w⌉ modular multiplications and zero squarings, versus a full
// Montgomery ladder for the generic big.Int.Exp. Building a table costs
// ⌈bits(Q)/w⌉·(2^w−1) multiplications; at w=4 that is roughly three naive
// exponentiations, paying for itself after the third use of the base.
//
// Two window widths are used. Per-key tables (the h_i) use w=4 — ≈30 KiB
// per base for a 256-bit group, cheap enough to build lazily per master
// public key. The per-Params generator table uses w=8 — bigger to build
// (≈20 naive exponentiations) and ≈260 KiB for a 256-bit group, but g is
// the one base shared by every scheme, solver and benchmark in the
// process, so the deeper table's halved multiplication count wins.

const (
	// fixedBaseWindow is the default radix (bits per digit) for per-key
	// tables built with NewFixedBaseTable.
	fixedBaseWindow = 4
	// generatorWindow is the radix of the per-Params generator table.
	generatorWindow = 8
)

// DenseDefault is the dense-cache bound used for the generator table: the
// fixed-point-encoded plaintexts that appear as g^{x_i} during encryption
// are tiny signed integers, so a dense ±DenseDefault cache turns those
// exponentiations into a single lookup.
const DenseDefault = 1024

// FixedBaseTable holds windowed precomputation for one base, plus an
// optional dense cache of base^k for small |k|. Tables are immutable after
// construction and safe for concurrent use by any number of goroutines;
// Pow never writes shared state and always returns a freshly allocated
// result.
type FixedBaseTable struct {
	params *Params
	base   *big.Int
	w      int // window width in bits
	// win[i][d-1] = base^(d · 2^{w·i}) mod P for d in 1..2^w−1, covering
	// every exponent in [0, Q).
	win [][]*big.Int
	// dense[k] = base^k and denseInv[k] = base^{−k} for 0 ≤ k ≤ denseBound;
	// nil when the table was built without a dense cache.
	dense    []*big.Int
	denseInv []*big.Int
}

// NewFixedBaseTable precomputes a windowed exponentiation table for base,
// which must be an element of the order-Q subgroup (true of every group
// element in this codebase; Pow's exponent reduction mod Q relies on
// base^Q = 1). denseBound > 0 additionally caches base^k for every
// |k| ≤ denseBound, which callers with tiny plaintext exponents (g^{x_i})
// want; pass 0 for bases that only see full-size exponents (h_i^r).
func (p *Params) NewFixedBaseTable(base *big.Int, denseBound int) *FixedBaseTable {
	return p.newFixedBaseTable(base, denseBound, fixedBaseWindow)
}

func (p *Params) newFixedBaseTable(base *big.Int, denseBound, w int) *FixedBaseTable {
	nw := (p.Q.BitLen() + w - 1) / w
	win := make([][]*big.Int, nw)
	// winBase walks base^{2^{w·i}}; row d is built by repeated
	// multiplication, and the next winBase is row[2^w−1]·winBase =
	// base^{2^{w·(i+1)}} — no modular squarings anywhere.
	winBase := new(big.Int).Mod(base, p.P)
	var tmp, q big.Int
	for i := 0; i < nw; i++ {
		row := make([]*big.Int, (1<<w)-1)
		row[0] = winBase
		for d := 2; d < 1<<w; d++ {
			e := new(big.Int)
			tmp.Mul(row[d-2], winBase)
			q.QuoRem(&tmp, p.P, e)
			row[d-1] = e
		}
		win[i] = row
		if i+1 < nw {
			next := new(big.Int)
			tmp.Mul(row[len(row)-1], winBase)
			q.QuoRem(&tmp, p.P, next)
			winBase = next
		}
	}
	t := &FixedBaseTable{params: p, base: new(big.Int).Set(base), w: w, win: win}
	if denseBound > 0 {
		t.dense = make([]*big.Int, denseBound+1)
		t.dense[0] = big.NewInt(1)
		for k := 1; k <= denseBound; k++ {
			t.dense[k] = p.Mul(t.dense[k-1], base)
		}
		if inv := p.Inv(base); inv != nil {
			t.denseInv = make([]*big.Int, denseBound+1)
			t.denseInv[0] = big.NewInt(1)
			for k := 1; k <= denseBound; k++ {
				t.denseInv[k] = p.Mul(t.denseInv[k-1], inv)
			}
		}
	}
	return t
}

// Base returns (a copy of) the base the table was built for.
func (t *FixedBaseTable) Base() *big.Int { return new(big.Int).Set(t.base) }

// WindowBits returns the radix width w of the precomputed digit tables.
func (t *FixedBaseTable) WindowBits() int { return t.w }

// DenseBound returns the bound of the dense small-exponent cache, 0 when
// the table was built without one.
func (t *FixedBaseTable) DenseBound() int {
	if t.dense == nil {
		return 0
	}
	return len(t.dense) - 1
}

// Pow computes base^exp mod P. Exponents of any sign and size are
// accepted: they are reduced into [0, Q), so for the subgroup bases the
// table contract requires, Pow agrees with Params.Exp on every input.
// The result is freshly allocated.
func (t *FixedBaseTable) Pow(exp *big.Int) *big.Int {
	if r := t.denseLookup(exp); r != nil {
		return r
	}
	e := exp
	if e.Sign() < 0 || e.Cmp(t.params.Q) >= 0 {
		e = new(big.Int).Mod(exp, t.params.Q)
	}
	acc := new(big.Int)
	var tmp, q big.Int
	started := false
	nw := (e.BitLen() + t.w - 1) / t.w
	for i := 0; i < nw; i++ {
		d := windowDigit(e, i, t.w)
		if d == 0 {
			continue
		}
		if !started {
			acc.Set(t.win[i][d-1])
			started = true
			continue
		}
		tmp.Mul(acc, t.win[i][d-1])
		q.QuoRem(&tmp, t.params.P, acc)
	}
	if !started {
		return acc.SetInt64(1) // exp ≡ 0 mod Q
	}
	return acc
}

// PowInt64 computes base^x for a machine integer x; the hot path for
// plaintext exponents. Values within the dense cache are a single copy.
func (t *FixedBaseTable) PowInt64(x int64) *big.Int {
	if 0 <= x && x < int64(len(t.dense)) {
		return new(big.Int).Set(t.dense[x])
	}
	// x > -len (rather than -x < len) keeps math.MinInt64 off the cache
	// path, where -x overflows.
	if x < 0 && x > -int64(len(t.denseInv)) {
		return new(big.Int).Set(t.denseInv[-x])
	}
	var e big.Int
	e.SetInt64(x)
	return t.Pow(&e)
}

// denseLookup serves exp from the dense cache when it is a cached small
// integer, returning nil on a miss.
func (t *FixedBaseTable) denseLookup(exp *big.Int) *big.Int {
	if t.dense == nil || !exp.IsInt64() {
		return nil
	}
	x := exp.Int64()
	if 0 <= x && x < int64(len(t.dense)) {
		return new(big.Int).Set(t.dense[x])
	}
	if x < 0 && x > -int64(len(t.denseInv)) {
		return new(big.Int).Set(t.denseInv[-x])
	}
	return nil
}

// LazyTable is a once-guarded, concurrency-safe cache of one
// FixedBaseTable. Public-key types embed it (unexported, so gob/json wire
// encoding is unaffected) to build the table for their h on first use and
// then share it read-only across goroutines — the same contract as
// dlog.Solver. The zero value is ready to use.
type LazyTable struct {
	once sync.Once
	tab  *FixedBaseTable
}

// Get returns the cached table, building it for base on first call. Later
// calls ignore the arguments and return the original table, so a LazyTable
// must be tied to exactly one base (the key field it caches for).
func (l *LazyTable) Get(p *Params, base *big.Int, denseBound int) *FixedBaseTable {
	l.once.Do(func() {
		l.tab = p.NewFixedBaseTable(base, denseBound)
	})
	return l.tab
}

// windowDigit extracts the i-th w-bit digit of e.
func windowDigit(e *big.Int, i, w int) uint {
	var d uint
	for b := 0; b < w; b++ {
		d |= uint(e.Bit(i*w+b)) << b
	}
	return d
}
