package group

import (
	"fmt"
	"math/big"
	"sync"
)

// Fixed-base exponentiation.
//
// Almost every exponentiation in the CryptoNN pipeline reuses one of a
// handful of bases: the generator g (every g^{x_i}, g^r, the dlog shift),
// the master-public-key elements h_i (one h_i^r per coordinate of every
// Encrypt), and the ElGamal public key h. For a fixed base, the classic
// radix-2^w precomputation (Brauer; see HAC §14.6.3) replaces the
// square-and-multiply ladder with pure table multiplications:
//
//	base^e = Π_i base^{d_i·2^{w·i}}   where e = Σ d_i·2^{w·i}
//
// Two refinements keep both the table and the evaluation minimal:
//
//   - The precomputed points live in the Montgomery domain as one flat
//     uint64 limb slab (MontCtx), so every lookup-and-multiply is a raw
//     CIOS limb multiplication with no per-step QuoRem division and no
//     big.Int bookkeeping. Only the final conversion of a result touches
//     big.Int arithmetic.
//   - Exponents are recoded into signed digits d_i ∈ [−2^{w−1}+1, 2^{w−1}]
//     (RecodeSigned), so a window row needs only the 2^{w−1} positive
//     entries instead of 2^w−1 — half the storage, which is what lets the
//     per-key tables run w=5 instead of w=4 in the same memory. Negative
//     digits multiply into a separate accumulator whose single inversion
//     batch callers amortize across a whole ciphertext (BatchInvMont);
//     single-shot callers (Pow, PowMont) avoid the inversion entirely by
//     splitting an unsigned digit d > 2^{w−1} into the stored entries for
//     2^{w−1} and d−2^{w−1}, at most two multiplications per window.
//
// Two window widths are used. Per-key tables (the h_i) use w=5 — the same
// memory the previous unsigned w=4 tables took, one fewer multiplication
// per window. The per-Params generator table uses w=8: g is the one base
// shared by every scheme, solver and benchmark in the process, so the
// deeper table's halved multiplication count wins.

const (
	// fixedBaseWindow is the default radix (bits per digit) for per-key
	// tables built with NewFixedBaseTable. Signed digits store 2^{w-1}
	// entries per window, so w=5 fits the memory of an unsigned w=4 table.
	fixedBaseWindow = 5
	// generatorWindow is the radix of the per-Params generator table.
	generatorWindow = 8
	// maxRecodeWindow bounds window widths so signed digits (≤ 2^{w-1})
	// and the carry arithmetic fit comfortably in int16.
	maxRecodeWindow = 14
)

// DenseDefault is the dense-cache bound used for the generator table: the
// fixed-point-encoded plaintexts that appear as g^{x_i} during encryption
// are tiny signed integers, so a dense ±DenseDefault cache turns those
// exponentiations into a single lookup.
const DenseDefault = 1024

// FixedBaseTable holds windowed precomputation for one base, plus an
// optional dense cache of base^k for small |k|. Tables are immutable after
// construction and safe for concurrent use by any number of goroutines;
// no Pow variant writes shared state.
type FixedBaseTable struct {
	params *Params
	mc     *MontCtx
	base   *big.Int
	w      int // window width in bits
	half   int // 2^{w-1}: signed digits per window row
	k      int // limbs per Montgomery-domain element
	nw     int // window rows, including the signed-recoding carry row
	// slab[(i*half + d-1)*k : …+k] = base^{d·2^{w·i}} mod P in Montgomery
	// form, for d in 1..half.
	slab []uint64
	// denseM[x·k:(x+1)·k] = base^x and denseInvM likewise base^{−x} for
	// 0 ≤ x ≤ denseBound, as Montgomery limb slabs; big.Int results are
	// converted out on demand (the conversion is one REDC, cheaper than
	// the big.Int copy a lookup allocates anyway, which is why no
	// standard-domain mirror is kept — it would dominate a cache-warmed
	// cold start). Both nil when the table was built without a dense
	// cache; denseInvM additionally nil when the base is not invertible.
	denseM    []uint64
	denseInvM []uint64
}

// NewFixedBaseTable precomputes a windowed exponentiation table for base,
// which must be an element of the order-Q subgroup (true of every group
// element in this codebase; the exponent reduction mod Q relies on
// base^Q = 1). denseBound > 0 additionally caches base^k for every
// |k| ≤ denseBound, which callers with tiny plaintext exponents (g^{x_i})
// want; pass 0 for bases that only see full-size exponents (h_i^r).
func (p *Params) NewFixedBaseTable(base *big.Int, denseBound int) *FixedBaseTable {
	return p.newFixedBaseTable(base, denseBound, fixedBaseWindow)
}

// NewFixedBaseTableWindow is NewFixedBaseTable with an explicit window
// width in [2, 14]. Short-lived tables amortized over few exponentiations
// (securemat's per-column denominator tables) want a shallower window than
// the per-key default.
func (p *Params) NewFixedBaseTableWindow(base *big.Int, denseBound, w int) (*FixedBaseTable, error) {
	if w < 2 || w > maxRecodeWindow {
		return nil, fmt.Errorf("group: fixed-base window %d outside [2, %d]", w, maxRecodeWindow)
	}
	return p.newFixedBaseTable(base, denseBound, w), nil
}

func (p *Params) newFixedBaseTable(base *big.Int, denseBound, w int) *FixedBaseTable {
	mc := p.Mont()
	k := mc.Limbs()
	half := 1 << (w - 1)
	nw := p.recodeWindows(w)
	t := &FixedBaseTable{
		params: p,
		mc:     mc,
		base:   new(big.Int).Set(base),
		w:      w,
		half:   half,
		k:      k,
		nw:     nw,
		slab:   make([]uint64, nw*half*k),
	}
	// winBase walks base^{2^{w·i}}; row d is built by repeated
	// multiplication, and the next winBase is row[half]² =
	// (base^{2^{w-1}·2^{w·i}})² — one squaring, no divisions anywhere.
	winBase := mc.Elem()
	mc.ToMont(winBase, base)
	for i := 0; i < nw; i++ {
		row := t.slab[i*half*k:]
		copy(row[:k], winBase)
		for d := 2; d <= half; d++ {
			mc.MulMont(row[(d-1)*k:d*k], row[(d-2)*k:(d-1)*k], winBase)
		}
		if i+1 < nw {
			last := row[(half-1)*k : half*k]
			mc.SquareMont(winBase, last)
		}
	}
	if denseBound > 0 {
		t.denseM = make([]uint64, (denseBound+1)*k)
		baseM := t.slab[:k] // base^{2^0·1}
		mc.SetOne(t.denseM[:k])
		for x := 1; x <= denseBound; x++ {
			mc.MulMont(t.denseM[x*k:(x+1)*k], t.denseM[(x-1)*k:x*k], baseM)
		}
		if inv := p.Inv(base); inv != nil {
			t.denseInvM = make([]uint64, (denseBound+1)*k)
			invM := mc.Elem()
			mc.ToMont(invM, inv)
			mc.SetOne(t.denseInvM[:k])
			for x := 1; x <= denseBound; x++ {
				mc.MulMont(t.denseInvM[x*k:(x+1)*k], t.denseInvM[(x-1)*k:x*k], invM)
			}
		}
	}
	return t
}

// Base returns (a copy of) the base the table was built for.
func (t *FixedBaseTable) Base() *big.Int { return new(big.Int).Set(t.base) }

// WindowBits returns the radix width w of the precomputed digit tables.
func (t *FixedBaseTable) WindowBits() int { return t.w }

// DenseBound returns the bound of the dense small-exponent cache, 0 when
// the table was built without one.
func (t *FixedBaseTable) DenseBound() int {
	if t.denseM == nil {
		return 0
	}
	return len(t.denseM)/t.k - 1
}

// recodeWindows returns the signed-digit count for window width w: one
// digit per w bits of Q plus the recoding carry digit.
func (p *Params) recodeWindows(w int) int {
	return (p.Q.BitLen()+w-1)/w + 1
}

// RecodeSigned recodes an exponent into signed radix-2^w digits
// d_i ∈ [−2^{w−1}+1, 2^{w−1}] with e ≡ Σ d_i·2^{w·i} (mod Q). Exponents of
// any sign and size are accepted and reduced into [0, Q) first. The digit
// count depends only on (Q, w), so one recoding drives PowRecoded against
// every table of the same width — feip encryption recodes its nonce once
// for all η per-key tables. buf is reused when its capacity suffices.
func (p *Params) RecodeSigned(e *big.Int, w int, buf []int16) []int16 {
	if w < 1 || w > maxRecodeWindow {
		panic(fmt.Sprintf("group: recode window %d outside [1, %d]", w, maxRecodeWindow))
	}
	if e.Sign() < 0 || e.Cmp(p.Q) >= 0 {
		e = new(big.Int).Mod(e, p.Q)
	}
	nw := p.recodeWindows(w)
	if cap(buf) < nw {
		buf = make([]int16, nw)
	}
	buf = buf[:nw]
	half := 1 << (w - 1)
	carry := 0
	for i := 0; i < nw-1; i++ {
		d := int(windowDigit(e, i, w)) + carry
		if d > half {
			d -= 1 << w
			carry = 1
		} else {
			carry = 0
		}
		buf[i] = int16(d)
	}
	buf[nw-1] = int16(carry)
	return buf
}

// Recode recodes an exponent into signed digits for this table's window
// width; see Params.RecodeSigned.
func (t *FixedBaseTable) Recode(e *big.Int, buf []int16) []int16 {
	return t.params.RecodeSigned(e, t.w, buf)
}

// PowRecoded accumulates the signed-window factors of a recoded exponent
// into two Montgomery-domain products: pos collects the positive digits'
// table entries and neg the negative digits' (so the represented value is
// pos/neg; an empty product is written as 1). Both pos and neg must be
// caller slices of Limbs() length. digits must come from Recode/
// RecodeSigned with this table's window width.
//
// Splitting the sign instead of inverting per digit is what lets batch
// callers — every coordinate of an Encrypt, every denominator of a secure
// matrix product — collapse all their inversions into one BatchInvMont.
func (t *FixedBaseTable) PowRecoded(pos, neg []uint64, digits []int16) {
	mc, k, half := t.mc, t.k, t.half
	posStarted, negStarted := false, false
	for i, d := range digits {
		if d == 0 {
			continue
		}
		if d > 0 {
			entry := t.slab[(i*half+int(d)-1)*k:]
			if !posStarted {
				copy(pos[:k], entry[:k])
				posStarted = true
			} else {
				mc.MulMont(pos, pos, entry[:k])
			}
		} else {
			entry := t.slab[(i*half+int(-d)-1)*k:]
			if !negStarted {
				copy(neg[:k], entry[:k])
				negStarted = true
			} else {
				mc.MulMont(neg, neg, entry[:k])
			}
		}
	}
	if !posStarted {
		mc.SetOne(pos)
	}
	if !negStarted {
		mc.SetOne(neg)
	}
}

// PowMont computes base^exp into dst as a Montgomery-domain element of
// Limbs() length. Exponents of any sign and size are accepted (reduced
// into [0, Q), relying on the subgroup contract base^Q = 1). The
// evaluation is inversion-free: an unsigned digit d > 2^{w−1} is split
// into the stored entries for 2^{w−1} and d−2^{w−1}, so a single
// exponentiation costs at most two limb multiplications per window and
// never a division. Batch callers that can amortize one inversion across
// many exponentiations use Recode + PowRecoded + BatchInvMont instead.
func (t *FixedBaseTable) PowMont(dst []uint64, exp *big.Int) {
	if t.denseM != nil && exp.IsInt64() {
		if t.denseLookupMont(dst, exp.Int64()) {
			return
		}
	}
	e := exp
	if e.Sign() < 0 || e.Cmp(t.params.Q) >= 0 {
		e = new(big.Int).Mod(exp, t.params.Q)
	}
	mc, k, half := t.mc, t.k, t.half
	started := false
	nw := (e.BitLen() + t.w - 1) / t.w
	for i := 0; i < nw; i++ {
		d := int(windowDigit(e, i, t.w))
		for d > 0 {
			part := d
			if part > half {
				part = half
			}
			entry := t.slab[(i*half+part-1)*k:]
			if !started {
				copy(dst[:k], entry[:k])
				started = true
			} else {
				mc.MulMont(dst, dst, entry[:k])
			}
			d -= part
		}
	}
	if !started {
		mc.SetOne(dst) // exp ≡ 0 mod Q
	}
}

// PowInt64Mont is PowMont for a machine-integer exponent; values inside
// the dense cache are a single limb copy.
func (t *FixedBaseTable) PowInt64Mont(dst []uint64, x int64) {
	if t.denseLookupMont(dst, x) {
		return
	}
	var e big.Int
	e.SetInt64(x)
	t.PowMont(dst, &e)
}

// denseLookupMont serves x from the Montgomery dense cache, reporting
// whether it hit.
func (t *FixedBaseTable) denseLookupMont(dst []uint64, x int64) bool {
	k := t.k
	if x >= 0 && t.denseM != nil && x <= int64(t.DenseBound()) {
		copy(dst[:k], t.denseM[int(x)*k:])
		return true
	}
	// x > -bound (rather than -x < bound) keeps math.MinInt64 off the
	// cache path, where -x overflows.
	if x < 0 && t.denseInvM != nil && x > -int64(len(t.denseInvM)/k) {
		copy(dst[:k], t.denseInvM[int(-x)*k:])
		return true
	}
	return false
}

// Pow computes base^exp mod P. Exponents of any sign and size are
// accepted: they are reduced into [0, Q), so for the subgroup bases the
// table contract requires, Pow agrees with Params.Exp on every input.
// The result is freshly allocated.
func (t *FixedBaseTable) Pow(exp *big.Int) *big.Int {
	if r := t.denseLookup(exp); r != nil {
		return r
	}
	var stack [montStackLimbs]uint64
	var dst []uint64
	if t.k <= montStackLimbs {
		dst = stack[:t.k]
	} else {
		dst = make([]uint64, t.k)
	}
	t.PowMont(dst, exp)
	return t.mc.FromMont(dst)
}

// PowInt64 computes base^x for a machine integer x; the hot path for
// plaintext exponents. Values within the dense cache are one REDC plus
// the result allocation every lookup pays.
func (t *FixedBaseTable) PowInt64(x int64) *big.Int {
	var stack [montStackLimbs]uint64
	var dst []uint64
	if t.k <= montStackLimbs {
		dst = stack[:t.k]
	} else {
		dst = make([]uint64, t.k)
	}
	if t.denseLookupMont(dst, x) {
		return t.mc.FromMont(dst)
	}
	var e big.Int
	e.SetInt64(x)
	return t.Pow(&e)
}

// denseLookup serves exp from the dense cache when it is a cached small
// integer, returning nil on a miss.
func (t *FixedBaseTable) denseLookup(exp *big.Int) *big.Int {
	if t.denseM == nil || !exp.IsInt64() {
		return nil
	}
	var stack [montStackLimbs]uint64
	var dst []uint64
	if t.k <= montStackLimbs {
		dst = stack[:t.k]
	} else {
		dst = make([]uint64, t.k)
	}
	if t.denseLookupMont(dst, exp.Int64()) {
		return t.mc.FromMont(dst)
	}
	return nil
}

// LazyTable is a once-guarded, concurrency-safe cache of one
// FixedBaseTable. Public-key types embed it (unexported, so gob/json wire
// encoding is unaffected) to build the table for their h on first use and
// then share it read-only across goroutines — the same contract as
// dlog.Solver. The zero value is ready to use.
type LazyTable struct {
	once sync.Once
	tab  *FixedBaseTable
}

// Get returns the cached table, building it for base on first call. Later
// calls ignore the arguments and return the original table, so a LazyTable
// must be tied to exactly one base (the key field it caches for). LazyTable
// bases are long-lived public-key material, so the build goes through the
// persisted table cache when one is configured.
func (l *LazyTable) Get(p *Params, base *big.Int, denseBound int) *FixedBaseTable {
	l.once.Do(func() {
		l.tab = p.cachedFixedBaseTable(base, denseBound, fixedBaseWindow)
	})
	return l.tab
}

// windowDigit extracts the i-th w-bit digit of e.
func windowDigit(e *big.Int, i, w int) uint {
	var d uint
	for b := 0; b < w; b++ {
		d |= uint(e.Bit(i*w+b)) << b
	}
	return d
}
