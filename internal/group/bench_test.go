package group_test

import (
	"fmt"
	"math/big"
	"math/rand"
	"testing"

	"cryptonn/internal/group"
)

// Modular exponentiation is the atom every FE operation reduces to; the
// per-bits sweep is the security-parameter cost curve underlying the
// AblationGroupBits experiment.

func BenchmarkExp(b *testing.B) {
	for _, bits := range group.EmbeddedSizes() {
		b.Run(fmt.Sprintf("bits=%d", bits), func(b *testing.B) {
			params, err := group.Embedded(bits)
			if err != nil {
				b.Fatal(err)
			}
			exp, err := params.RandScalar(nil)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				params.PowG(exp)
			}
		})
	}
}

// BenchmarkFixedBasePow pits the windowed generator table against the
// generic square-and-multiply it replaces, on the same base and exponent
// distribution. The naive/table ratio is the engine's speedup.
func BenchmarkFixedBasePow(b *testing.B) {
	for _, bits := range group.EmbeddedSizes() {
		params, err := group.Embedded(bits)
		if err != nil {
			b.Fatal(err)
		}
		exp, err := params.RandScalar(nil)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("bits=%d/naive", bits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSink = params.Exp(params.G, exp)
			}
		})
		tab := params.GTable() // build outside the timed loop
		b.Run(fmt.Sprintf("bits=%d/table", bits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSink = tab.Pow(exp)
			}
		})
	}
}

// BenchmarkPowGInt64 exercises the dense small-exponent cache, the g^{x_i}
// path of every plaintext encoding.
func BenchmarkPowGInt64(b *testing.B) {
	params := group.TestParams()
	params.PowGInt64(0) // build the table outside the timed loop
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		params.PowGInt64(int64(i%2001 - 1000))
	}
}

// BenchmarkMultiExp compares Straus interleaving against the naive
// per-coordinate Exp product it replaces in FEIP decryption (η bases,
// small signed weight exponents).
func BenchmarkMultiExp(b *testing.B) {
	params := group.TestParams()
	const eta = 100
	bases := make([]*big.Int, eta)
	exps := make([]int64, eta)
	for i := range bases {
		bases[i] = params.PowGInt64(int64(3*i + 7))
		exps[i] = int64(i%21 - 10)
	}
	b.Run("straus", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink = params.MultiExpInt64(bases, exps)
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			acc := big.NewInt(1)
			for j := range bases {
				acc = params.Mul(acc, params.Exp(bases[j], big.NewInt(exps[j])))
			}
			benchSink = acc
		}
	})
}

// BenchmarkMultiExpSparse sweeps the density axis of the ICD workload: a
// wide exponent vector (η=10000 bag-of-words row) where only density·η
// coordinates are non-zero. The sparse coordinate-form walk should scale
// with nnz; the dense walk at the same density pays the η-wide zero scan
// plus big.Int slab allocation and is included as the reference.
func BenchmarkMultiExpSparse(b *testing.B) {
	params := group.TestParams()
	const eta = 10000
	bases := make([]*big.Int, eta)
	for i := range bases {
		bases[i] = params.PowGInt64(int64(3*i + 7))
	}
	rng := rand.New(rand.NewSource(99))
	for _, density := range []float64{0.001, 0.01, 0.1} {
		var idx []int
		var vals []int64
		dense := make([]int64, eta)
		for i := 0; i < eta; i++ {
			if rng.Float64() < density {
				v := rng.Int63n(21) - 10
				if v == 0 {
					v = 1
				}
				dense[i] = v
				idx = append(idx, i)
				vals = append(vals, v)
			}
		}
		b.Run(fmt.Sprintf("density=%g/sparse", density), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSink = params.MultiExpInt64Sparse(bases, idx, vals)
			}
		})
		b.Run(fmt.Sprintf("density=%g/dense", density), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSink = params.MultiExpInt64(bases, dense)
			}
		})
	}
}

func BenchmarkMul(b *testing.B) {
	params := group.TestParams()
	x := params.PowGInt64(12345)
	y := params.PowGInt64(67890)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		params.Mul(x, y)
	}
}

func BenchmarkInv(b *testing.B) {
	params := group.TestParams()
	x := params.PowGInt64(12345)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		params.Inv(x)
	}
}

func BenchmarkIsElement(b *testing.B) {
	params := group.TestParams()
	x := params.PowGInt64(424242)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !params.IsElement(x) {
			b.Fatal("element rejected")
		}
	}
}

func BenchmarkRandScalar(b *testing.B) {
	params := group.TestParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := params.RandScalar(nil); err != nil {
			b.Fatal(err)
		}
	}
}

var benchSink *big.Int

func BenchmarkReduceScalar(b *testing.B) {
	params := group.TestParams()
	v := new(big.Int).Lsh(big.NewInt(1), 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = params.ReduceScalar(v)
	}
}
