package group_test

import (
	"fmt"
	"math/big"
	"testing"

	"cryptonn/internal/group"
)

// Modular exponentiation is the atom every FE operation reduces to; the
// per-bits sweep is the security-parameter cost curve underlying the
// AblationGroupBits experiment.

func BenchmarkExp(b *testing.B) {
	for _, bits := range group.EmbeddedSizes() {
		b.Run(fmt.Sprintf("bits=%d", bits), func(b *testing.B) {
			params, err := group.Embedded(bits)
			if err != nil {
				b.Fatal(err)
			}
			exp, err := params.RandScalar(nil)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				params.PowG(exp)
			}
		})
	}
}

// BenchmarkFixedBasePow pits the windowed generator table against the
// generic square-and-multiply it replaces, on the same base and exponent
// distribution. The naive/table ratio is the engine's speedup.
func BenchmarkFixedBasePow(b *testing.B) {
	for _, bits := range group.EmbeddedSizes() {
		params, err := group.Embedded(bits)
		if err != nil {
			b.Fatal(err)
		}
		exp, err := params.RandScalar(nil)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("bits=%d/naive", bits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSink = params.Exp(params.G, exp)
			}
		})
		tab := params.GTable() // build outside the timed loop
		b.Run(fmt.Sprintf("bits=%d/table", bits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSink = tab.Pow(exp)
			}
		})
	}
}

// BenchmarkPowGInt64 exercises the dense small-exponent cache, the g^{x_i}
// path of every plaintext encoding.
func BenchmarkPowGInt64(b *testing.B) {
	params := group.TestParams()
	params.PowGInt64(0) // build the table outside the timed loop
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		params.PowGInt64(int64(i%2001 - 1000))
	}
}

// BenchmarkMultiExp compares Straus interleaving against the naive
// per-coordinate Exp product it replaces in FEIP decryption (η bases,
// small signed weight exponents).
func BenchmarkMultiExp(b *testing.B) {
	params := group.TestParams()
	const eta = 100
	bases := make([]*big.Int, eta)
	exps := make([]int64, eta)
	for i := range bases {
		bases[i] = params.PowGInt64(int64(3*i + 7))
		exps[i] = int64(i%21 - 10)
	}
	b.Run("straus", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink = params.MultiExpInt64(bases, exps)
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			acc := big.NewInt(1)
			for j := range bases {
				acc = params.Mul(acc, params.Exp(bases[j], big.NewInt(exps[j])))
			}
			benchSink = acc
		}
	})
}

func BenchmarkMul(b *testing.B) {
	params := group.TestParams()
	x := params.PowGInt64(12345)
	y := params.PowGInt64(67890)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		params.Mul(x, y)
	}
}

func BenchmarkInv(b *testing.B) {
	params := group.TestParams()
	x := params.PowGInt64(12345)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		params.Inv(x)
	}
}

func BenchmarkIsElement(b *testing.B) {
	params := group.TestParams()
	x := params.PowGInt64(424242)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !params.IsElement(x) {
			b.Fatal("element rejected")
		}
	}
}

func BenchmarkRandScalar(b *testing.B) {
	params := group.TestParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := params.RandScalar(nil); err != nil {
			b.Fatal(err)
		}
	}
}

var benchSink *big.Int

func BenchmarkReduceScalar(b *testing.B) {
	params := group.TestParams()
	v := new(big.Int).Lsh(big.NewInt(1), 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = params.ReduceScalar(v)
	}
}
