package group_test

import (
	"fmt"
	"math/big"
	"testing"

	"cryptonn/internal/group"
)

// Modular exponentiation is the atom every FE operation reduces to; the
// per-bits sweep is the security-parameter cost curve underlying the
// AblationGroupBits experiment.

func BenchmarkExp(b *testing.B) {
	for _, bits := range group.EmbeddedSizes() {
		b.Run(fmt.Sprintf("bits=%d", bits), func(b *testing.B) {
			params, err := group.Embedded(bits)
			if err != nil {
				b.Fatal(err)
			}
			exp, err := params.RandScalar(nil)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				params.PowG(exp)
			}
		})
	}
}

func BenchmarkMul(b *testing.B) {
	params := group.TestParams()
	x := params.PowGInt64(12345)
	y := params.PowGInt64(67890)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		params.Mul(x, y)
	}
}

func BenchmarkInv(b *testing.B) {
	params := group.TestParams()
	x := params.PowGInt64(12345)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		params.Inv(x)
	}
}

func BenchmarkIsElement(b *testing.B) {
	params := group.TestParams()
	x := params.PowGInt64(424242)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !params.IsElement(x) {
			b.Fatal("element rejected")
		}
	}
}

func BenchmarkRandScalar(b *testing.B) {
	params := group.TestParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := params.RandScalar(nil); err != nil {
			b.Fatal(err)
		}
	}
}

var benchSink *big.Int

func BenchmarkReduceScalar(b *testing.B) {
	params := group.TestParams()
	v := new(big.Int).Lsh(big.NewInt(1), 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = params.ReduceScalar(v)
	}
}
