package group

import (
	"errors"
	"math/big"
)

// ErrNotInvertible reports a batch inversion over a slice containing an
// element with no inverse mod P (only 0 for a prime modulus).
var ErrNotInvertible = errors.New("group: element not invertible")

// BatchInv replaces every xs[i] with xs[i]^{-1} mod P using Montgomery's
// trick: one modular inversion of the running product plus 3(n−1)
// multiplications, instead of n extended-GCD inversions. The secure-matrix
// decryption pipeline uses it to amortize the per-cell denominator
// inversions of FEIP/FEBO decryption across a whole chunk of output cells.
//
// prefix is optional caller scratch for the prefix products; it is used
// when len(prefix) ≥ len(xs) and allocated internally otherwise, so
// workers that invert many chunks can reuse one slab. On error no xs[i]
// has been modified.
func (p *Params) BatchInv(xs []*big.Int, prefix []big.Int) error {
	n := len(xs)
	if n == 0 {
		return nil
	}
	if len(prefix) < n {
		prefix = make([]big.Int, n)
	}
	var tmp, q, r big.Int
	prefix[0].Set(xs[0])
	for i := 1; i < n; i++ {
		tmp.Mul(&prefix[i-1], xs[i])
		q.QuoRem(&tmp, p.P, &prefix[i])
	}
	inv := new(big.Int).ModInverse(&prefix[n-1], p.P)
	if inv == nil {
		return ErrNotInvertible
	}
	for i := n - 1; i >= 1; i-- {
		// xs[i]^{-1} = inv(x_0···x_i) · (x_0···x_{i-1}); fold the old xs[i]
		// into the running inverse before overwriting it.
		tmp.Mul(inv, &prefix[i-1])
		q.QuoRem(&tmp, p.P, &r)
		tmp.Mul(inv, xs[i])
		q.QuoRem(&tmp, p.P, inv)
		xs[i].Set(&r)
	}
	xs[0].Set(inv)
	return nil
}
