package group

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math/big"
	"os"
	"path/filepath"
	"sync/atomic"
)

// Persisted precompute cache.
//
// Every precomputed structure in this package — window slabs, comb slabs,
// dense caches, and (via dlog) baby-step tables — is a flat little-endian
// uint64 limb slab in the Montgomery domain. Deriving them is pure compute
// that every process repeats identically: ~10^3 group multiplications per
// fixed-base table and O(√bound) for a dlog core, multiplied by η per-key
// tables for a serving fleet. A TableCache persists each slab to disk,
// keyed by a fingerprint of everything the contents depend on (group
// constants, base, table shape), so a warm process boots by reading limbs
// instead of deriving them — milliseconds instead of seconds at scale.
//
// Trust model: cache files are local state with the same integrity needs
// as the binary itself. The format still carries a SHA-256 of the payload
// plus the full fingerprint, so a truncated, corrupted, renamed or
// stale-format file is detected and *refused* — the caller falls back to
// in-process derivation and overwrites the bad file on the write-back.
// Loads never trust file contents into arithmetic without the checksum
// and fingerprint matching; there is no partial acceptance.
//
// File layout (all integers little-endian):
//
//	magic   [4]byte  "CNTC"
//	version uint32   tableCacheVersion
//	fprint  [32]byte SHA-256 over kind/params/key/shape (see fingerprint)
//	count   uint64   payload length in limbs
//	payload count × uint64
//	trailer [32]byte SHA-256 over everything above
//
// The version lives in the header, not the fingerprint: a format bump
// changes no file names, so outdated files are found, rejected, and
// overwritten in place rather than orphaned on disk. See
// docs/TABLE_CACHE.md for the bump procedure.

// tableCacheVersion is the on-disk format version; bump on any layout
// change (docs/TABLE_CACHE.md describes the procedure).
const tableCacheVersion = 1

var tableCacheMagic = [4]byte{'C', 'N', 'T', 'C'}

// TableCacheStats is a snapshot of a cache's load/store counters.
type TableCacheStats struct {
	// Hits counts loads served from a valid cache file.
	Hits uint64
	// Misses counts loads where no cache file existed.
	Misses uint64
	// Writes counts successful write-backs.
	Writes uint64
	// Rejects counts files that existed but were refused: bad magic,
	// wrong version, fingerprint mismatch, wrong length, bad checksum.
	Rejects uint64
}

// TableCache is a directory of persisted precompute slabs. The zero value
// is not usable; open one with OpenTableCache. All methods are safe for
// concurrent use.
type TableCache struct {
	dir                           string
	hits, misses, writes, rejects atomic.Uint64
}

// OpenTableCache opens (creating if needed) a precompute cache rooted at
// dir.
func OpenTableCache(dir string) (*TableCache, error) {
	if dir == "" {
		return nil, fmt.Errorf("group: table cache needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("group: opening table cache: %w", err)
	}
	return &TableCache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (tc *TableCache) Dir() string { return tc.dir }

// Stats returns a snapshot of the cache counters.
func (tc *TableCache) Stats() TableCacheStats {
	return TableCacheStats{
		Hits:    tc.hits.Load(),
		Misses:  tc.misses.Load(),
		Writes:  tc.writes.Load(),
		Rejects: tc.rejects.Load(),
	}
}

// String formats the counters the way the binaries log them.
func (s TableCacheStats) String() string {
	return fmt.Sprintf("hits=%d misses=%d writes=%d rejects=%d", s.Hits, s.Misses, s.Writes, s.Rejects)
}

// fingerprint hashes everything the cached limbs are a pure function of:
// the kind tag, the group constants, the caller's key material (e.g. the
// base, or a whole key's bases) and the table shape. Each segment is
// length-prefixed so distinct inputs cannot collide by concatenation.
func fingerprint(p *Params, kind string, key []byte, shape []int64) [32]byte {
	h := sha256.New()
	seg := func(b []byte) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(b)))
		h.Write(n[:])
		h.Write(b)
	}
	seg([]byte(kind))
	seg(p.P.Bytes())
	seg(p.Q.Bytes())
	seg(p.G.Bytes())
	seg(key)
	var sb []byte
	for _, s := range shape {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(s))
		sb = append(sb, n[:]...)
	}
	seg(sb)
	var fp [32]byte
	h.Sum(fp[:0])
	return fp
}

// path maps a fingerprint to its file: the kind tag for the human, the
// fingerprint prefix for uniqueness.
func (tc *TableCache) path(kind string, fp [32]byte) string {
	return filepath.Join(tc.dir, kind+"-"+hex.EncodeToString(fp[:12])+".tbl")
}

const tableCacheHeader = 4 + 4 + 32 + 8 // magic + version + fingerprint + count

// LoadLimbs loads the cached slab for (kind, key, shape) under p,
// requiring exactly want limbs. It returns (nil, false) on a miss or on
// any integrity failure — the caller derives instead, and a later
// StoreLimbs overwrites the refused file.
func (tc *TableCache) LoadLimbs(p *Params, kind string, key []byte, shape []int64, want int) ([]uint64, bool) {
	fp := fingerprint(p, kind, key, shape)
	raw, err := os.ReadFile(tc.path(kind, fp))
	if err != nil {
		tc.misses.Add(1)
		return nil, false
	}
	if len(raw) < tableCacheHeader+sha256.Size ||
		[4]byte(raw[:4]) != tableCacheMagic ||
		binary.LittleEndian.Uint32(raw[4:8]) != tableCacheVersion {
		tc.rejects.Add(1)
		return nil, false
	}
	body := raw[:len(raw)-sha256.Size]
	if sha256.Sum256(body) != [32]byte(raw[len(body):]) {
		tc.rejects.Add(1)
		return nil, false
	}
	if [32]byte(raw[8:40]) != fp {
		tc.rejects.Add(1)
		return nil, false
	}
	n := binary.LittleEndian.Uint64(raw[40:48])
	if n != uint64(want) || uint64(len(body)-tableCacheHeader) != 8*n {
		tc.rejects.Add(1)
		return nil, false
	}
	limbs := make([]uint64, want)
	for i := range limbs {
		limbs[i] = binary.LittleEndian.Uint64(body[tableCacheHeader+8*i:])
	}
	tc.hits.Add(1)
	return limbs, true
}

// StoreLimbs writes the slab for (kind, key, shape) under p, atomically
// replacing any existing file (including one LoadLimbs refused). Write
// failures are silent: the cache is an accelerator, not a dependency, and
// the caller already holds the derived table.
func (tc *TableCache) StoreLimbs(p *Params, kind string, key []byte, shape []int64, payload []uint64) {
	fp := fingerprint(p, kind, key, shape)
	buf := make([]byte, tableCacheHeader+8*len(payload)+sha256.Size)
	copy(buf, tableCacheMagic[:])
	binary.LittleEndian.PutUint32(buf[4:8], tableCacheVersion)
	copy(buf[8:40], fp[:])
	binary.LittleEndian.PutUint64(buf[40:48], uint64(len(payload)))
	for i, l := range payload {
		binary.LittleEndian.PutUint64(buf[tableCacheHeader+8*i:], l)
	}
	sum := sha256.Sum256(buf[:len(buf)-sha256.Size])
	copy(buf[len(buf)-sha256.Size:], sum[:])
	// Atomic publish: readers only ever see complete files.
	dst := tc.path(kind, fp)
	tmp, err := os.CreateTemp(tc.dir, "."+kind+"-*.tmp")
	if err != nil {
		return
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return
	}
	if err := tmp.Close(); err != nil {
		return
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		return
	}
	tc.writes.Add(1)
}

// globalTableCache is the process-wide cache installed by SetTableCache
// (the binaries' -table-cache flag).
var globalTableCache atomic.Pointer[TableCache]

// SetTableCache installs (or, with nil, removes) the process-wide
// precompute cache used by every Params without a per-Params override.
func SetTableCache(tc *TableCache) { globalTableCache.Store(tc) }

// UseTableCache attaches a precompute cache to this Params, overriding
// the process-wide cache for its tables.
func (p *Params) UseTableCache(tc *TableCache) { p.tblCache.Store(tc) }

// TableCache resolves the cache in effect for this Params: the per-Params
// override when set, else the process-wide cache, else nil (derive
// everything in-process).
func (p *Params) TableCache() *TableCache {
	if tc := p.tblCache.Load(); tc != nil {
		return tc
	}
	return globalTableCache.Load()
}

// cachedFixedBaseTable is newFixedBaseTable behind the table cache: the
// slab, dense cache and dense inverse cache round-trip as one payload.
// Only long-lived tables come through here (the generator, LazyTable
// public keys) — ephemeral per-column tables would churn the directory
// for bases never seen again.
func (p *Params) cachedFixedBaseTable(base *big.Int, denseBound, w int) *FixedBaseTable {
	tc := p.TableCache()
	if tc == nil {
		return p.newFixedBaseTable(base, denseBound, w)
	}
	mc := p.Mont()
	k := mc.Limbs()
	half := 1 << (w - 1)
	nw := p.recodeWindows(w)
	slabLen := nw * half * k
	denseLen := 0
	if denseBound > 0 {
		denseLen = (denseBound + 1) * k
	}
	want := slabLen + 2*denseLen
	key := base.Bytes()
	shape := []int64{int64(w), int64(denseBound)}
	if payload, ok := tc.LoadLimbs(p, "fbwin", key, shape, want); ok {
		t := &FixedBaseTable{
			params: p, mc: mc, base: new(big.Int).Set(base),
			w: w, half: half, k: k, nw: nw,
			slab: payload[:slabLen],
		}
		if denseBound > 0 {
			t.denseM = payload[slabLen : slabLen+denseLen]
			t.denseInvM = payload[slabLen+denseLen:]
		}
		return t
	}
	t := p.newFixedBaseTable(base, denseBound, w)
	if denseBound == 0 || t.denseInvM != nil {
		payload := make([]uint64, 0, want)
		payload = append(payload, t.slab...)
		payload = append(payload, t.denseM...)
		payload = append(payload, t.denseInvM...)
		tc.StoreLimbs(p, "fbwin", key, shape, payload)
	}
	return t
}

// cachedComb is newFixedBaseComb behind the table cache.
func (p *Params) cachedComb(base *big.Int, h, v int) *FixedBaseComb {
	tc := p.TableCache()
	if tc == nil {
		return p.newFixedBaseComb(base, h, v)
	}
	c := p.newCombShape(base, h, v)
	shape := []int64{int64(h), int64(v)}
	if payload, ok := tc.LoadLimbs(p, "fbcomb", base.Bytes(), shape, len(c.slab)); ok {
		c.slab = payload
		return c
	}
	c.build()
	tc.StoreLimbs(p, "fbcomb", base.Bytes(), shape, c.slab)
	return c
}
