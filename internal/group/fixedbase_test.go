package group_test

import (
	"fmt"
	"math/big"
	"math/rand"
	"sync"
	"testing"

	"cryptonn/internal/group"
)

// naiveExp is the reference the engine is pinned to: plain big.Int.Exp
// with the exponent reduced mod Q, bypassing every table.
func naiveExp(p *group.Params, base, exp *big.Int) *big.Int {
	e := new(big.Int).Mod(exp, p.Q)
	return new(big.Int).Exp(base, e, p.P)
}

// edgeExponents returns the adversarial exponents every accelerated path
// must agree with the naive path on: zero, ±1, the Q boundary, values far
// outside [0, Q), and dense-cache boundary values.
func edgeExponents(p *group.Params, denseBound int64) []*big.Int {
	q := p.Q
	edges := []*big.Int{
		big.NewInt(0),
		big.NewInt(1),
		big.NewInt(-1),
		big.NewInt(denseBound),
		big.NewInt(-denseBound),
		big.NewInt(denseBound + 1),
		big.NewInt(-denseBound - 1),
		new(big.Int).Sub(q, big.NewInt(1)),
		new(big.Int).Set(q),
		new(big.Int).Add(q, big.NewInt(1)),
		new(big.Int).Neg(q),
		new(big.Int).Sub(new(big.Int).Neg(q), big.NewInt(3)),
		new(big.Int).Add(new(big.Int).Lsh(q, 1), big.NewInt(5)), // > 2Q
	}
	return edges
}

func TestFixedBaseTableMatchesNaiveExp(t *testing.T) {
	for _, bits := range []int{64, 256} {
		t.Run(fmt.Sprintf("bits=%d", bits), func(t *testing.T) {
			params, err := group.Embedded(bits)
			if err != nil {
				t.Fatal(err)
			}
			const denseBound = 32
			tab := params.NewFixedBaseTable(params.G, denseBound)
			rng := rand.New(rand.NewSource(int64(bits)))
			exps := edgeExponents(params, denseBound)
			for i := 0; i < 200; i++ {
				e := new(big.Int).Rand(rng, params.Q)
				if i%3 == 1 {
					e.Neg(e)
				}
				if i%5 == 2 {
					e.Add(e, params.Q) // push past Q
				}
				exps = append(exps, e)
			}
			for _, e := range exps {
				want := naiveExp(params, params.G, e)
				if got := tab.Pow(e); got.Cmp(want) != 0 {
					t.Fatalf("Pow(%v) = %v, want %v", e, got, want)
				}
				if got := params.PowG(e); got.Cmp(want) != 0 {
					t.Fatalf("PowG(%v) = %v, want %v", e, got, want)
				}
				if e.IsInt64() {
					if got := tab.PowInt64(e.Int64()); got.Cmp(want) != 0 {
						t.Fatalf("PowInt64(%d) = %v, want %v", e.Int64(), got, want)
					}
				}
			}
		})
	}
}

func TestFixedBaseTableNonGeneratorBase(t *testing.T) {
	// Tables are built for arbitrary subgroup elements (the h_i of a
	// master public key), not just G.
	params := group.TestParams()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		s := new(big.Int).Rand(rng, params.Q)
		h := params.PowG(s)
		tab := params.NewFixedBaseTable(h, 0)
		for i := 0; i < 50; i++ {
			e := new(big.Int).Rand(rng, params.Q)
			if i%2 == 1 {
				e.Neg(e)
			}
			want := naiveExp(params, h, e)
			if got := tab.Pow(e); got.Cmp(want) != 0 {
				t.Fatalf("trial %d: Pow(%v) mismatch", trial, e)
			}
		}
	}
}

func TestFixedBaseTableResultIsFresh(t *testing.T) {
	// Mutating a returned result must not corrupt the table.
	params := group.TestParams()
	tab := params.NewFixedBaseTable(params.G, 8)
	r := tab.PowInt64(3)
	want := new(big.Int).Set(r)
	r.SetInt64(999)
	if got := tab.PowInt64(3); got.Cmp(want) != 0 {
		t.Fatalf("dense cache corrupted by caller mutation: got %v want %v", got, want)
	}
	e := big.NewInt(1 << 20)
	r = tab.Pow(e)
	want = new(big.Int).Set(r)
	r.SetInt64(999)
	if got := tab.Pow(e); got.Cmp(want) != 0 {
		t.Fatalf("windowed path corrupted by caller mutation")
	}
}

// TestRecodeSignedReconstructs pins the signed-window recoding: for every
// window width and both group sizes, Σ d_i·2^{w·i} must reconstruct the
// exponent reduced into [0, Q), with every digit inside (−2^{w−1}, 2^{w−1}]
// — the invariant that lets a window row store only 2^{w−1} entries.
func TestRecodeSignedReconstructs(t *testing.T) {
	for _, bits := range []int{64, 256} {
		t.Run(fmt.Sprintf("bits=%d", bits), func(t *testing.T) {
			params, err := group.Embedded(bits)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(bits)))
			exps := edgeExponents(params, 32)
			for i := 0; i < 100; i++ {
				e := new(big.Int).Rand(rng, params.Q)
				if i%3 == 1 {
					e.Neg(e)
				}
				if i%5 == 2 {
					e.Add(e, params.Q)
				}
				exps = append(exps, e)
			}
			var buf []int16
			for _, w := range []int{2, 4, 5, 8} {
				half := int16(1) << (w - 1)
				for _, e := range exps {
					buf = params.RecodeSigned(e, w, buf)
					acc := new(big.Int)
					term := new(big.Int)
					for i, d := range buf {
						if d > half || d <= -half {
							t.Fatalf("w=%d: digit %d of %v out of range", w, d, e)
						}
						term.SetInt64(int64(d))
						term.Lsh(term, uint(w*i))
						acc.Add(acc, term)
					}
					want := new(big.Int).Mod(e, params.Q)
					if acc.Cmp(want) != 0 {
						t.Fatalf("w=%d: recode(%v) reconstructs %v, want %v", w, e, acc, want)
					}
				}
			}
		})
	}
}

// TestPowMontFamilyMatchesNaiveExp pins every Montgomery-domain entry point
// of the table — PowMont, PowInt64Mont, and the signed Recode+PowRecoded
// batch path — against the naive Exp on negative, zero, ≥Q and dense-bound
// boundary exponents in both the 64- and 256-bit groups.
func TestPowMontFamilyMatchesNaiveExp(t *testing.T) {
	for _, bits := range []int{64, 256} {
		t.Run(fmt.Sprintf("bits=%d", bits), func(t *testing.T) {
			params, err := group.Embedded(bits)
			if err != nil {
				t.Fatal(err)
			}
			mc := params.Mont()
			k := mc.Limbs()
			const denseBound = 32
			tab := params.NewFixedBaseTable(params.G, denseBound)
			rng := rand.New(rand.NewSource(int64(bits) + 1))
			exps := edgeExponents(params, denseBound)
			for i := 0; i < 100; i++ {
				e := new(big.Int).Rand(rng, params.Q)
				if i%3 == 1 {
					e.Neg(e)
				}
				if i%4 == 2 {
					e.Add(e, params.Q)
				}
				exps = append(exps, e)
			}
			dst := make([]uint64, k)
			pos := make([]uint64, k)
			neg := make([]uint64, k)
			var digits []int16
			for _, e := range exps {
				want := naiveExp(params, params.G, e)
				tab.PowMont(dst, e)
				if got := mc.FromMont(dst); got.Cmp(want) != 0 {
					t.Fatalf("PowMont(%v) = %v, want %v", e, got, want)
				}
				if e.IsInt64() {
					tab.PowInt64Mont(dst, e.Int64())
					if got := mc.FromMont(dst); got.Cmp(want) != 0 {
						t.Fatalf("PowInt64Mont(%d) = %v, want %v", e.Int64(), got, want)
					}
				}
				digits = tab.Recode(e, digits)
				tab.PowRecoded(pos, neg, digits)
				got := params.Div(mc.FromMont(pos), mc.FromMont(neg))
				if got.Cmp(want) != 0 {
					t.Fatalf("PowRecoded(%v) = %v, want %v", e, got, want)
				}
			}
		})
	}
}

// TestNewFixedBaseTableWindowBounds checks the exported window-width
// validation and that every accepted width computes correctly.
func TestNewFixedBaseTableWindowBounds(t *testing.T) {
	params := group.TestParams()
	for _, w := range []int{1, 0, -3, 15, 99} {
		if _, err := params.NewFixedBaseTableWindow(params.G, 0, w); err == nil {
			t.Errorf("window %d accepted", w)
		}
	}
	e := big.NewInt(123456789)
	want := naiveExp(params, params.G, e)
	for _, w := range []int{2, 3, 7, 14} {
		tab, err := params.NewFixedBaseTableWindow(params.G, 0, w)
		if err != nil {
			t.Fatalf("window %d rejected: %v", w, err)
		}
		if got := tab.Pow(e); got.Cmp(want) != 0 {
			t.Fatalf("w=%d: Pow mismatch", w)
		}
	}
}

// TestGTableConcurrent hammers the lazily built generator table from many
// goroutines; run with -race to prove the sync.Once construction and the
// immutable-table reads are safe (the thread-safety contract the FE layers
// rely on when sharing one mpk across decryption workers).
func TestGTableConcurrent(t *testing.T) {
	params, err := group.Embedded(64)
	if err != nil {
		t.Fatal(err)
	}
	// Fresh Params so the table build itself races with lookups.
	fresh := params.Clone()
	exp := big.NewInt(123456789)
	want := naiveExp(fresh, fresh.G, exp)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				if got := fresh.PowG(exp); got.Cmp(want) != 0 {
					errs <- fmt.Errorf("PowG mismatch")
					return
				}
				e := new(big.Int).Rand(rng, fresh.Q)
				if got, wantE := fresh.PowG(e), naiveExp(fresh, fresh.G, e); got.Cmp(wantE) != 0 {
					errs <- fmt.Errorf("PowG(random) mismatch")
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
