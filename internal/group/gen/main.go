//go:build ignore

package main

import (
	"fmt"

	"cryptonn/internal/group"
)

func main() {
	for _, bits := range []int{64, 128, 192, 256, 512} {
		p, err := group.Generate(bits, nil)
		if err != nil {
			panic(err)
		}
		fmt.Printf("// %d-bit\nP: %q,\nQ: %q,\nG: %q,\n\n", bits, p.P.Text(16), p.Q.Text(16), p.G.Text(16))
	}
}
