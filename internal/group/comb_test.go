package group_test

import (
	"math/big"
	"math/rand"
	"testing"

	"cryptonn/internal/group"
)

// TestCombMatchesExp property-pins the comb evaluator against naive Exp
// for both group sizes, across the default and several explicit
// geometries, over edge and random exponents — the same contract every
// prior accelerated path in this package is held to.
func TestCombMatchesExp(t *testing.T) {
	for _, params := range []*group.Params{group.TestParams(), group.PaperParams()} {
		rng := rand.New(rand.NewSource(31))
		base := params.PowG(big.NewInt(1234567))
		exps := []*big.Int{
			big.NewInt(0), big.NewInt(1), big.NewInt(2), big.NewInt(255), big.NewInt(256),
			big.NewInt(-1), big.NewInt(-97),
			new(big.Int).Sub(params.Q, big.NewInt(1)),
			new(big.Int).Set(params.Q),
			new(big.Int).Add(params.Q, big.NewInt(5)),
		}
		for i := 0; i < 40; i++ {
			e, err := params.RandScalar(rng)
			if err != nil {
				t.Fatal(err)
			}
			exps = append(exps, e)
		}
		type geom struct{ h, v int }
		for _, g := range []geom{{0, 0}, {2, 1}, {4, 2}, {8, 4}, {10, 4}, {12, 2}} {
			var comb *group.FixedBaseComb
			var err error
			if g.h == 0 {
				comb = params.NewFixedBaseComb(base)
			} else if comb, err = params.NewFixedBaseCombGeometry(base, g.h, g.v); err != nil {
				t.Fatal(err)
			}
			for _, e := range exps {
				if got, want := comb.Pow(e), params.Exp(base, e); got.Cmp(want) != 0 {
					h, v := comb.Geometry()
					t.Fatalf("%s h=%d v=%d: comb.Pow(%v) = %v, want %v", params, h, v, e, got, want)
				}
			}
		}
	}
}

// TestCombGeometryValidation pins the constructor's bounds.
func TestCombGeometryValidation(t *testing.T) {
	params := group.TestParams()
	base := params.PowG(big.NewInt(7))
	for _, g := range []struct{ h, v int }{{1, 1}, {17, 1}, {4, 0}, {2, -1}} {
		if _, err := params.NewFixedBaseCombGeometry(base, g.h, g.v); err == nil {
			t.Errorf("h=%d v=%d accepted", g.h, g.v)
		}
	}
	if _, err := params.NewFixedBaseCombGeometry(base, 2, 1); err != nil {
		t.Errorf("h=2 v=1 rejected: %v", err)
	}
}

// TestCombPowMontLimbs pins the packed-limb fast path (the batch-encrypt
// entry point) against the big.Int path, and checks it does not allocate.
func TestCombPowMontLimbs(t *testing.T) {
	params := group.PaperParams()
	mc := params.Mont()
	base := params.PowG(big.NewInt(424242))
	comb := params.NewFixedBaseComb(base)
	rng := rand.New(rand.NewSource(32))
	dst := mc.Elem()
	var el []uint64
	for i := 0; i < 25; i++ {
		e, err := params.RandScalar(rng)
		if err != nil {
			t.Fatal(err)
		}
		el = params.ScalarLimbs(e, el)
		comb.PowMontLimbs(dst, el)
		if got, want := mc.FromMont(dst), params.Exp(base, e); got.Cmp(want) != 0 {
			t.Fatalf("PowMontLimbs(%v) = %v, want %v", e, got, want)
		}
	}
	e, _ := params.RandScalar(rng)
	el = params.ScalarLimbs(e, el)
	if n := testing.AllocsPerRun(20, func() { comb.PowMontLimbs(dst, el) }); n != 0 {
		t.Errorf("PowMontLimbs allocates %.1f times per call", n)
	}
}

// TestPowGUsesComb pins the rerouted PowG against Exp across the dense,
// small-integer and full-width regimes on both group sizes.
func TestPowGUsesComb(t *testing.T) {
	for _, params := range []*group.Params{group.TestParams(), group.PaperParams()} {
		rng := rand.New(rand.NewSource(33))
		exps := []*big.Int{
			big.NewInt(0), big.NewInt(1), big.NewInt(-1),
			big.NewInt(group.DenseDefault), big.NewInt(group.DenseDefault + 1),
			big.NewInt(-group.DenseDefault), big.NewInt(-group.DenseDefault - 1),
			big.NewInt(1 << 40), new(big.Int).Neg(big.NewInt(1 << 40)),
			new(big.Int).Sub(params.Q, big.NewInt(1)),
		}
		for i := 0; i < 20; i++ {
			e, err := params.RandScalar(rng)
			if err != nil {
				t.Fatal(err)
			}
			exps = append(exps, e)
		}
		for _, e := range exps {
			if got, want := params.PowG(e), params.Exp(params.G, e); got.Cmp(want) != 0 {
				t.Fatalf("%s: PowG(%v) = %v, want %v", params, e, got, want)
			}
		}
	}
}

// BenchmarkCombVsWindow races one full-width fixed-base exponentiation
// through the comb against the signed-window paths it displaces (PowMont's
// unsigned split and the generator comb vs the w=8 generator table) on the
// 256-bit paper group — the gated evidence for the comb layer.
func BenchmarkCombVsWindow(b *testing.B) {
	params := group.PaperParams()
	mc := params.Mont()
	base := params.PowG(big.NewInt(987654321))
	e, _ := params.RandScalar(rand.New(rand.NewSource(34)))
	dst := mc.Elem()
	el := params.ScalarLimbs(e, nil)

	b.Run("comb_h8v4", func(b *testing.B) {
		comb, err := params.NewFixedBaseCombGeometry(base, 8, 4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			comb.PowMontLimbs(dst, el)
		}
	})
	// The per-key default at this width: compact-slab h=6/v=2, tuned for
	// the cache-cold batch regime (see keyCombGeometry) — hot it spends
	// more squarings than h=8/v=4, so it sits between that and the window.
	b.Run("comb_h6v2", func(b *testing.B) {
		comb := params.NewFixedBaseComb(base)
		if h, v := comb.Geometry(); h != 6 || v != 2 {
			b.Fatalf("per-key default geometry = h=%d v=%d, want 6/2", h, v)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			comb.PowMontLimbs(dst, el)
		}
	})
	b.Run("window_w5", func(b *testing.B) {
		tab := params.NewFixedBaseTable(base, 0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tab.PowMont(dst, e)
		}
	})
	b.Run("gen_comb_h10v4", func(b *testing.B) {
		comb := params.GComb()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			comb.PowMontLimbs(dst, el)
		}
	})
	b.Run("gen_window_w8", func(b *testing.B) {
		tab := params.GTable()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tab.PowMont(dst, e)
		}
	})
}
