package group

import (
	"fmt"
	"math/big"
)

// Embedded parameter sets.
//
// Safe-prime generation is expensive and non-deterministic, so tests,
// benchmarks and the example programs use these pre-generated groups. They
// were produced once by Generate (see gen/main.go) and validated; Embedded
// panics only on programmer error (a corrupted constant), never on user
// input.
//
// Security guidance mirrors the paper: the evaluation in §IV-B uses a
// 256-bit security parameter, i.e. Embedded256. The 64- and 128-bit groups
// exist purely to keep unit tests fast and MUST NOT be used for real data.
const (
	// TestBits is the modulus size of the group returned by TestParams.
	TestBits = 64
	// PaperBits is the security parameter used throughout the paper's
	// evaluation (§IV-B1: "the security parameter is set to 256-bit").
	PaperBits = 256
)

type embeddedHex struct{ p, q, g string }

var embedded = map[int]embeddedHex{
	64: {
		p: "f3957f0c4b481847",
		q: "79cabf8625a40c23",
		g: "14003753eeba198c",
	},
	128: {
		p: "e8f151ccadc3f8fc405f6bebb542e947",
		q: "7478a8e656e1fc7e202fb5f5daa174a3",
		g: "8f05cbc45865f437a893c0e8aa5be6b0",
	},
	192: {
		p: "db82ad5d0c84b7a70aed1906c0e31a23636e4842d669cd63",
		q: "6dc156ae86425bd385768c8360718d11b1b724216b34e6b1",
		g: "c7de42dd2bdb64d335fe82614a1f928f72ad91b2b29c74f5",
	},
	256: {
		p: "dac37913ac3d44a585886159df77d24c1f471cfa277039564858b407ee5d0ebf",
		q: "6d61bc89d61ea252c2c430acefbbe9260fa38e7d13b81cab242c5a03f72e875f",
		g: "59bf9cfe605375711b8538ec7fc03e6d8cb3c7b0580da02756a08fdd4d507dcd",
	},
	512: {
		p: "f03e1afe7bfae30044c11e9d148a1ef83041742814d93fc52609c4860466c93ec4a75954c9d748b5b65a2458ea807a21c92bdc01540ced06dae296d18d8081a7",
		q: "781f0d7f3dfd718022608f4e8a450f7c1820ba140a6c9fe29304e2430233649f6253acaa64eba45adb2d122c75403d10e495ee00aa0676836d714b68c6c040d3",
		g: "cb0a82b561d6f382d7aafc9fc8b4eade609ab5e8066af323d6ca098f3eca109ec8e1beca5fe99cc05b274cc3c952997363e20b26ea266bf4b5989d4f2ce3e29",
	},
}

// EmbeddedSizes lists the modulus bit lengths with pre-generated groups,
// in ascending order.
func EmbeddedSizes() []int { return []int{64, 128, 192, 256, 512} }

// Embedded returns the pre-generated group with the given modulus bit
// length. Available sizes are listed by EmbeddedSizes.
func Embedded(bits int) (*Params, error) {
	h, ok := embedded[bits]
	if !ok {
		return nil, fmt.Errorf("%w: no embedded group with %d-bit modulus (have %v)",
			ErrInvalidParams, bits, EmbeddedSizes())
	}
	return parseHex(h)
}

// TestParams returns the small embedded group used by fast unit tests.
// It must never protect real data.
func TestParams() *Params {
	p, err := Embedded(TestBits)
	if err != nil {
		panic(err) // unreachable: constant is known-good
	}
	return p
}

// PaperParams returns the 256-bit group matching the paper's evaluation
// setting.
func PaperParams() *Params {
	p, err := Embedded(PaperBits)
	if err != nil {
		panic(err) // unreachable: constant is known-good
	}
	return p
}

func parseHex(h embeddedHex) (*Params, error) {
	p, ok1 := new(big.Int).SetString(h.p, 16)
	q, ok2 := new(big.Int).SetString(h.q, 16)
	g, ok3 := new(big.Int).SetString(h.g, 16)
	if !ok1 || !ok2 || !ok3 {
		return nil, fmt.Errorf("%w: corrupted embedded constant", ErrInvalidParams)
	}
	return &Params{P: p, Q: q, G: g}, nil
}
