// Package group implements the prime-order DDH group underlying both
// functional encryption schemes used by CryptoNN (FEIP and FEBO) — every
// exponentiation Algorithm 1 performs, on either side of the protocol,
// bottoms out here.
//
// The concrete instantiation is a Schnorr group: the subgroup of prime
// order Q of the multiplicative group Z*_P, where P = 2Q + 1 is a safe
// prime. The DDH assumption is believed to hold in this subgroup, which is
// exactly the setting required by Abdalla et al.'s inner-product scheme
// (PKC 2015) and by the paper's FEBO construction (§III-B).
//
// All arithmetic is big-integer modular arithmetic from math/big; no
// external libraries are used. Exponents are always reduced modulo the
// group order Q, and negative exponents are supported via modular
// inversion, which the neural-network workload needs (weights and
// activations are signed fixed-point integers).
//
// # Exponentiation engine
//
// Beyond the generic Exp, the package provides two accelerated paths that
// together cover nearly every exponentiation in the CryptoNN pipeline:
//
//   - FixedBaseTable (fixedbase.go): signed-window precomputation for a
//     base that is reused — the generator g, the h_i of an FEIP master
//     public key, the FEBO/ElGamal public key h — stored as flat
//     Montgomery limb slabs, so every table multiplication is a raw CIOS
//     limb product with no division. Pow costs about ⌈bits(Q)/w⌉
//     multiplications and no squarings; a dense ±k cache serves the tiny
//     plaintext exponents g^{x_i} with a single lookup; PowMont,
//     PowInt64Mont and Recode/PowRecoded keep whole call chains in the
//     Montgomery domain. Params lazily caches a table for its own
//     generator (GTable), built once under a sync.Once and shared by
//     every goroutine; PowG and PowGInt64 use it transparently.
//   - MultiExp / MultiExpInt64 (multiexp.go): Straus interleaved windowed
//     multi-exponentiation for Π bases[i]^{e_i} with one shared squaring
//     ladder, used by FEIP decryption where the naive path pays a full
//     ladder per coordinate; MultiExpInt64MontParts exposes the
//     sign-split halves in-domain for the batched decryption pipeline.
//
// # Concurrency contract
//
// Tables are immutable once built, results are freshly allocated, and
// the lazy per-Params generator table and Montgomery context are built
// exactly once — Params remains safe for concurrent use, exactly like
// dlog.Solver. The mutable scratch types (ExpMontScratch, the QuoRem
// scratch in dlog) are single-goroutine and owned by their calling
// worker. Every accelerated path is property-tested against the naive
// Exp (fixedbase_test.go, multiexp_test.go).
package group
