package group

import (
	"math/big"
)

// Simultaneous multi-exponentiation (Straus' interleaved windowed method,
// HAC algorithm 14.88).
//
// FEIP decryption evaluates Π ct_i^{y_i}: η exponentiations sharing one
// running product. Computed naively that costs η full square-and-multiply
// ladders; interleaving shares the squarings across all bases, so the cost
// drops to max-bits squarings + one table multiplication per non-zero
// digit. The weight vectors of the CryptoNN workload make this dramatic:
// the y_i are tiny signed integers, so the shared ladder is only a few
// bits tall, while the naive path pays a full-size ladder per coordinate
// the moment a y_i is negative (negative exponents reduce mod Q into
// ~bits(Q)-bit values).
//
// Signs are handled by splitting the product: Π over positive exponents
// times the inverse of Π over |negative| exponents, which costs a single
// modular inversion instead of per-coordinate full-size exponents. The
// Montgomery-domain entry point returns the two halves unreduced so batch
// callers (securemat's decryption pipeline) can fold even that inversion
// into their per-chunk BatchInvMont.

// MultiExp computes Π bases[i]^exps[i] mod P. Exponents may be negative,
// zero, or ≥ Q; each factor agrees with Params.Exp on the same inputs
// provided the bases lie in the order-Q subgroup (true of every group
// element in this codebase — the sign split relies on base^Q = 1).
// bases and exps must have equal length (MultiExp panics otherwise, the
// same contract as a mismatched index). An empty product is 1.
func (p *Params) MultiExp(bases, exps []*big.Int) *big.Int {
	posB, posE, negB, negE := p.splitSigned(bases, exps)
	mc := p.Mont()
	pos := mc.Elem()
	p.strausProdMont(pos, posB, posE, nil)
	if len(negB) == 0 {
		return mc.FromMont(pos)
	}
	neg := mc.Elem()
	p.strausProdMont(neg, negB, negE, nil)
	return p.Div(mc.FromMont(pos), mc.FromMont(neg))
}

// MultiExpInt64 is MultiExp for machine-integer exponents; it converts via
// one backing slab instead of a big.NewInt per coordinate, which matters
// because FEIP decryption calls it once per output matrix cell. Zero
// exponents are filtered before any big.Int is materialized, so a mostly-
// zero exps (a sparse weight row against a dense ciphertext) only pays for
// its non-zero coordinates.
func (p *Params) MultiExpInt64(bases []*big.Int, exps []int64) *big.Int {
	if len(bases) != len(exps) {
		panic("group: MultiExp length mismatch")
	}
	bs, ptrs := packInt64Nonzero(bases, exps)
	return p.MultiExp(bs, ptrs)
}

// packInt64Nonzero gathers the non-zero (base, exponent) pairs into compact
// slices, backing all exponents with one slab. The order of surviving pairs
// is preserved, which keeps products bit-identical with the unfiltered walk.
func packInt64Nonzero(bases []*big.Int, exps []int64) ([]*big.Int, []*big.Int) {
	nnz := 0
	for _, e := range exps {
		if e != 0 {
			nnz++
		}
	}
	vals := make([]big.Int, nnz)
	bs := make([]*big.Int, nnz)
	ptrs := make([]*big.Int, nnz)
	t := 0
	for i, e := range exps {
		if e == 0 {
			continue
		}
		bs[t] = bases[i]
		ptrs[t] = vals[t].SetInt64(e)
		t++
	}
	return bs, ptrs
}

// MultiExpInt64MontParts computes the sign-split halves of Π bases[i]^exps[i]
// in the Montgomery domain: pos receives Π over positive exponents, neg the
// Π over |negative| exponents (each 1 when its partition is empty), so the
// full product is pos/neg. Both must be caller slices of Mont().Limbs()
// length. scratch is optional table scratch, grown as needed and returned
// for reuse — the securemat decryption workers call this once per output
// cell and keep one slab per worker. bases and exps must have equal length
// (panics otherwise, like MultiExp).
func (p *Params) MultiExpInt64MontParts(pos, neg []uint64, bases []*big.Int, exps []int64, scratch []uint64) []uint64 {
	if len(bases) != len(exps) {
		panic("group: MultiExp length mismatch")
	}
	bs, ptrs := packInt64Nonzero(bases, exps)
	posB, posE, negB, negE := p.splitSigned(bs, ptrs)
	scratch = p.strausProdMont(pos, posB, posE, scratch)
	scratch = p.strausProdMont(neg, negB, negE, scratch)
	return scratch
}

// MultiExpInt64Sparse computes Π bases[idx[t]]^vals[t] mod P for a sparse
// exponent vector given in coordinate form: idx holds the indices of the
// non-zero entries and vals the matching exponents. The dense equivalent is
// MultiExpInt64(bases, e) with e[idx[t]] = vals[t] and zeros elsewhere —
// the two agree exactly, but the sparse walk never touches the η−nnz zero
// coordinates, so its cost scales with nnz alone. idx and vals must have
// equal length (panics otherwise, like MultiExp); an out-of-range index
// panics like any slice access. Duplicate indices multiply both factors in,
// same as the dense path summing can't express — callers pass canonical
// (strictly increasing) supports.
func (p *Params) MultiExpInt64Sparse(bases []*big.Int, idx []int, vals []int64) *big.Int {
	bs, ptrs := gatherSparse(bases, idx, vals)
	return p.MultiExp(bs, ptrs)
}

// MultiExpInt64SparseMontParts is the Montgomery-domain sign-split variant
// of MultiExpInt64Sparse, the sparse analogue of MultiExpInt64MontParts:
// pos/neg receive the positive and |negative| partial products and scratch
// is grown and returned for reuse.
func (p *Params) MultiExpInt64SparseMontParts(pos, neg []uint64, bases []*big.Int, idx []int, vals []int64, scratch []uint64) []uint64 {
	bs, ptrs := gatherSparse(bases, idx, vals)
	posB, posE, negB, negE := p.splitSigned(bs, ptrs)
	scratch = p.strausProdMont(pos, posB, posE, scratch)
	scratch = p.strausProdMont(neg, negB, negE, scratch)
	return scratch
}

func gatherSparse(bases []*big.Int, idx []int, vals []int64) ([]*big.Int, []*big.Int) {
	if len(idx) != len(vals) {
		panic("group: MultiExpSparse index/value length mismatch")
	}
	slab := make([]big.Int, len(idx))
	bs := make([]*big.Int, 0, len(idx))
	ptrs := make([]*big.Int, 0, len(idx))
	for t, i := range idx {
		if vals[t] == 0 {
			continue
		}
		bs = append(bs, bases[i])
		ptrs = append(ptrs, slab[t].SetInt64(vals[t]))
	}
	return bs, ptrs
}

// splitSigned partitions (base, exponent) pairs into a positive and a
// negative product, keeping exponent magnitudes small: a small negative y
// must become (base^{-1})^{|y|} via the split, not a full-size y mod Q.
// The scratch slab keeps normalization from allocating per element. Zero
// (mod Q) exponents are dropped. bases and exps must have equal length.
func (p *Params) splitSigned(bases, exps []*big.Int) (posB, posE, negB, negE []*big.Int) {
	if len(bases) != len(exps) {
		panic("group: MultiExp length mismatch")
	}
	posB = make([]*big.Int, 0, len(bases))
	posE = make([]*big.Int, 0, len(bases))
	scratch := make([]big.Int, len(exps))
	for i, e := range exps {
		if e.Sign() == 0 {
			continue
		}
		abs := e
		neg := e.Sign() < 0
		if neg {
			abs = scratch[i].Neg(e)
		}
		if abs.Cmp(p.Q) >= 0 {
			abs = scratch[i].Mod(abs, p.Q)
			if abs.Sign() == 0 {
				continue
			}
		}
		if neg {
			negB = append(negB, bases[i])
			negE = append(negE, abs)
		} else {
			posB = append(posB, bases[i])
			posE = append(posE, abs)
		}
	}
	return posB, posE, negB, negE
}

// strausProdMont computes Π bases[i]^exps[i] for non-negative exponents
// < Q into dst as a Montgomery-domain element (1 for an empty product), by
// interleaved windowed exponentiation: one shared squaring ladder of
// max-bits height, with per-base digit tables of 2^w−1 entries.
//
// The whole ladder runs in the Montgomery domain: the digit tables are one
// flat limb slab built with MulMont, and every squaring and digit
// multiplication reduces without a division. Only the initial per-base
// ToMont touches big.Int arithmetic. scratch backs the digit tables; it is
// grown when too small and returned for reuse.
func (p *Params) strausProdMont(dst []uint64, bases, exps []*big.Int, scratch []uint64) []uint64 {
	mc := p.Mont()
	if len(bases) == 0 {
		mc.SetOne(dst)
		return scratch
	}
	maxBits := 0
	for _, e := range exps {
		if b := e.BitLen(); b > maxBits {
			maxBits = b
		}
	}
	// Window width by ladder height: short ladders (tiny plaintext
	// exponents) want small tables, full-size exponents amortize w=4.
	w := 4
	switch {
	case maxBits <= 8:
		w = 2
	case maxBits <= 32:
		w = 3
	}
	k := mc.Limbs()
	rows := (1 << w) - 1
	// tab[(j·rows + d−1)·k : …+k] = bases[j]^d in Montgomery form.
	if need := len(bases) * rows * k; len(scratch) < need {
		scratch = make([]uint64, need)
	}
	tab := scratch
	for j, b := range bases {
		row := tab[j*rows*k:]
		mc.ToMont(row[:k], b)
		for d := 2; d <= rows; d++ {
			mc.MulMont(row[(d-1)*k:d*k], row[(d-2)*k:(d-1)*k], row[:k])
		}
	}
	started := false
	for i := (maxBits - 1) / w; i >= 0; i-- {
		if started {
			for s := 0; s < w; s++ {
				mc.SquareMont(dst, dst)
			}
		}
		for j, e := range exps {
			if d := windowDigit(e, i, w); d != 0 {
				entry := tab[(j*rows+int(d)-1)*k:]
				if !started {
					copy(dst[:k], entry[:k])
					started = true
				} else {
					mc.MulMont(dst, dst, entry[:k])
				}
			}
		}
	}
	if !started {
		mc.SetOne(dst) // every digit zero: exponents were all 0 mod Q
	}
	return scratch
}
