package group

import (
	"crypto/rand"
	"fmt"
	"io"
	"math/big"
)

// MinModulusBits is the smallest modulus size Generate accepts. Smaller
// groups are provided as embedded test parameters only.
const MinModulusBits = 64

// Generate creates a fresh Schnorr group whose modulus P has the given bit
// length, searching for a safe prime P = 2Q+1 and a generator of the
// order-Q subgroup. The paper's evaluation uses a 256-bit security
// parameter; Generate(256, nil) reproduces that setting.
//
// Safe-prime search is probabilistic and can take seconds for large sizes;
// the embedded parameter sets (Embedded*, TestParams) should be preferred
// when reproducibility or startup time matters.
func Generate(bits int, r io.Reader) (*Params, error) {
	if bits < MinModulusBits {
		return nil, fmt.Errorf("%w: modulus must be at least %d bits, got %d",
			ErrInvalidParams, MinModulusBits, bits)
	}
	if r == nil {
		r = rand.Reader
	}
	for {
		q, err := rand.Prime(r, bits-1)
		if err != nil {
			return nil, fmt.Errorf("group: sampling prime: %w", err)
		}
		var p big.Int
		p.Mul(q, two)
		p.Add(&p, one)
		if !p.ProbablyPrime(32) {
			continue
		}
		g, err := findGenerator(&p, q, r)
		if err != nil {
			return nil, err
		}
		params := &Params{P: &p, Q: q, G: g}
		if err := params.Validate(); err != nil {
			// Should be unreachable: the construction guarantees validity.
			return nil, err
		}
		return params, nil
	}
}

// findGenerator picks a generator of the order-q subgroup of Z*_p by
// squaring a random element: for safe primes, h^2 has order q unless
// h^2 = 1.
func findGenerator(p, q *big.Int, r io.Reader) (*big.Int, error) {
	pMinus1 := new(big.Int).Sub(p, one)
	for {
		h, err := rand.Int(r, pMinus1)
		if err != nil {
			return nil, fmt.Errorf("group: sampling generator candidate: %w", err)
		}
		h.Add(h, one) // h in [1, p-1]
		g := new(big.Int).Exp(h, two, p)
		if g.Cmp(one) != 0 {
			return g, nil
		}
	}
}
