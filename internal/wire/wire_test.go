package wire_test

import (
	"context"
	"errors"
	"math/big"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"cryptonn/internal/authority"
	"cryptonn/internal/core"
	"cryptonn/internal/dlog"
	"cryptonn/internal/febo"
	"cryptonn/internal/group"
	"cryptonn/internal/nn"
	"cryptonn/internal/securemat"
	"cryptonn/internal/tensor"
	"cryptonn/internal/wire"
)

// startAuthority spins up an authority server on loopback and returns its
// address plus a cleanup-registered shutdown.
func startAuthority(t *testing.T, policy authority.Policy) (string, *authority.Authority) {
	t.Helper()
	auth, err := authority.New(group.TestParams(), policy)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := wire.NewAuthorityServer(auth, nil)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ctx, l)
	}()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("authority server did not shut down")
		}
	})
	return l.Addr().String(), auth
}

func TestRemoteKeyServiceEndToEnd(t *testing.T) {
	addr, _ := startAuthority(t, authority.AllowAll())
	ks, err := wire.DialKeyService(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := ks.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	// The remote key service must behave exactly like the local authority:
	// run a full secure dot-product through it.
	solver, err := dlog.NewSolver(group.TestParams(), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := securemat.NewEngine(ks, securemat.EngineOptions{Solver: solver})
	if err != nil {
		t.Fatal(err)
	}
	x := [][]int64{{1, 2}, {3, 4}}
	w := [][]int64{{5, 6}}
	enc, err := eng.Encrypt(x, securemat.EncryptOptions{})
	if err != nil {
		t.Fatal(err)
	}
	z, err := eng.Dot(enc, w, securemat.ComputeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if z[0][0] != 5+18 || z[0][1] != 10+24 {
		t.Errorf("secure dot over TCP = %v", z)
	}

	// Element-wise path exercises BOKey + FEBOPublic.
	z2, err := eng.Elementwise(enc, securemat.ElementwiseAdd, x, securemat.ComputeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if z2[1][1] != 8 {
		t.Errorf("secure add over TCP = %v", z2)
	}
}

func TestRemoteKeyServiceCachesPublicKeys(t *testing.T) {
	addr, _ := startAuthority(t, authority.AllowAll())
	ks, err := wire.DialKeyService(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ks.Close() }()
	a, err := ks.FEIPPublic(3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ks.FEIPPublic(3)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("second fetch should hit the cache")
	}
	pa, err := ks.FEBOPublic()
	if err != nil {
		t.Fatal(err)
	}
	pb, err := ks.FEBOPublic()
	if err != nil {
		t.Fatal(err)
	}
	if pa != pb {
		t.Error("FEBO key should be cached")
	}
}

func TestPolicyErrorsCrossTheWire(t *testing.T) {
	addr, _ := startAuthority(t, authority.Policy{ // nothing permitted
		BasicOps: map[febo.Op]bool{},
	})
	ks, err := wire.DialKeyService(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ks.Close() }()
	if _, err := ks.IPKey([]int64{1}); err == nil {
		t.Error("policy rejection must propagate")
	}
	if _, err := ks.BOKey(big.NewInt(2), febo.OpAdd, 1); err == nil {
		t.Error("policy rejection must propagate for BO keys")
	}
}

func TestBOKeyOverWire(t *testing.T) {
	addr, _ := startAuthority(t, authority.AllowAll())
	ks, err := wire.DialKeyService(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ks.Close() }()
	solver, err := dlog.NewSolver(group.TestParams(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	pk, err := ks.FEBOPublic()
	if err != nil {
		t.Fatal(err)
	}
	ct, err := febo.Encrypt(pk, 17, nil)
	if err != nil {
		t.Fatal(err)
	}
	fk, err := ks.BOKey(ct.Cmt, febo.OpMul, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := febo.Decrypt(pk, fk, ct, febo.OpMul, 3, solver)
	if err != nil {
		t.Fatal(err)
	}
	if got != 51 {
		t.Errorf("remote-keyed FEBO decrypt = %d, want 51", got)
	}
}

func TestKeyServicePoolConcurrent(t *testing.T) {
	addr, _ := startAuthority(t, authority.AllowAll())
	pool, err := wire.NewKeyServicePool(addr, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = pool.Close() }()
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 10; i++ {
				y := []int64{rng.Int63n(100), rng.Int63n(100)}
				if _, err := pool.IPKey(y); err != nil {
					errCh <- err
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if _, err := wire.NewKeyServicePool(addr, 0); err == nil {
		t.Error("zero-size pool should fail")
	}
}

func TestWriteReadMsgRoundTrip(t *testing.T) {
	c1, c2 := net.Pipe()
	defer func() { _ = c1.Close(); _ = c2.Close() }()
	go func() {
		_ = wire.WriteMsg(c1, &wire.Request{Kind: wire.KindIPKey, Y: []int64{1, -2, 3}})
	}()
	var req wire.Request
	if err := wire.ReadMsg(c2, &req); err != nil {
		t.Fatal(err)
	}
	if req.Kind != wire.KindIPKey || len(req.Y) != 3 || req.Y[1] != -2 {
		t.Errorf("round trip mangled request: %+v", req)
	}
}

func TestTrainingServerCollectsBatchesFromDistributedClients(t *testing.T) {
	// Distributed data sources (§III-A): two clients submit encrypted
	// batches under the same authority; the server trains on the union.
	addr, auth := startAuthority(t, authority.AllowAll())
	_ = addr

	ts := wire.NewTrainingServer(nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = ts.Serve(ctx, l)
	}()
	defer func() {
		cancel()
		<-done
	}()

	eng, err := securemat.NewEngine(auth, securemat.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	client, err := core.NewClient(eng, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	makeBatch := func(seed int64) *core.EncryptedBatch {
		rng := rand.New(rand.NewSource(seed))
		x := tensor.NewDense(4, 3)
		x.RandInit(rng, 1)
		y := tensor.NewDense(3, 3)
		for j := 0; j < 3; j++ {
			y.Set(rng.Intn(3), j, 1)
		}
		enc, err := client.EncryptBatch(x, y)
		if err != nil {
			t.Fatal(err)
		}
		return enc
	}

	for clientID := 0; clientID < 2; clientID++ {
		conn, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		if err := wire.SubmitBatches(conn, []*core.EncryptedBatch{makeBatch(int64(clientID))}); err != nil {
			t.Fatal(err)
		}
		if err := conn.Close(); err != nil {
			t.Fatal(err)
		}
	}

	batches := ts.Batches()
	if len(batches) != 2 {
		t.Fatalf("collected %d batches, want 2", len(batches))
	}
	// The received ciphertext batches must actually train a model.
	solver, err := dlog.NewSolver(group.TestParams(), 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	model, err := nn.NewMLP(4, 3, []int{5}, nn.SoftmaxCrossEntropy{}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	trainer, err := core.NewTrainer(model, eng.WithSolver(solver), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	opt, _ := nn.NewSGD(0.1, 0)
	for _, b := range batches {
		if _, err := trainer.TrainBatch(b, opt); err != nil {
			t.Fatalf("training on received batch: %v", err)
		}
	}
}

func TestTrainingServerRejectsGarbage(t *testing.T) {
	ts := wire.NewTrainingServer(nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = ts.Serve(ctx, l)
	}()
	defer func() {
		cancel()
		<-done
	}()
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	if err := wire.WriteMsg(conn, &wire.Request{Kind: wire.KindSubmitBatch, Payload: []byte("garbage")}); err != nil {
		t.Fatal(err)
	}
	var resp wire.Response
	if err := wire.ReadMsg(conn, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Err == "" {
		t.Error("garbage payload must be rejected")
	}
	// Wrong kind for this server.
	if err := wire.WriteMsg(conn, &wire.Request{Kind: wire.KindIPKey}); err != nil {
		t.Fatal(err)
	}
	if err := wire.ReadMsg(conn, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Err == "" {
		t.Error("key request to training server must be rejected")
	}
}

func TestAuthorityServerRejectsUnknownKind(t *testing.T) {
	addr, _ := startAuthority(t, authority.AllowAll())
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	if err := wire.WriteMsg(conn, &wire.Request{Kind: wire.KindSubmitBatch}); err != nil {
		t.Fatal(err)
	}
	var resp wire.Response
	if err := wire.ReadMsg(conn, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Err == "" {
		t.Error("authority must reject submissions")
	}
}

func TestServerShutdownUnblocksClients(t *testing.T) {
	addr, _ := startAuthority(t, authority.AllowAll())
	ks, err := wire.DialKeyService(addr)
	if err != nil {
		t.Fatal(err)
	}
	// Fetch once to prove liveness, then the cleanup-registered shutdown
	// must not hang (verified by startAuthority's cleanup timeout).
	if _, err := ks.FEIPPublic(2); err != nil {
		t.Fatal(err)
	}
	if err := ks.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ks.IPKey([]int64{1, 2}); err == nil {
		t.Error("request on closed connection should fail")
	}
}

func TestConvBatchSubmission(t *testing.T) {
	_, auth := startAuthority(t, authority.AllowAll())
	ts := wire.NewTrainingServer(nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = ts.Serve(ctx, l)
	}()
	defer func() {
		cancel()
		<-done
	}()

	eng, err := securemat.NewEngine(auth, securemat.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	client, err := core.NewClient(eng, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	x := tensor.NewDense(36, 2)
	x.RandInit(rng, 0.5)
	y := tensor.NewDense(3, 2)
	y.Set(0, 0, 1)
	y.Set(1, 1, 1)
	enc, err := client.EncryptConvBatch(x, y, 1, 6, 6, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.SubmitConvBatches(conn, []*core.EncryptedConvBatch{enc}); err != nil {
		t.Fatal(err)
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	got := ts.ConvBatches()
	if len(got) != 1 {
		t.Fatalf("collected %d conv batches", len(got))
	}
	if got[0].NumWindows() != 36 || got[0].WindowLen() != 9 {
		t.Error("conv batch geometry mangled in transit")
	}
}

func TestReadMsgRejectsOversizedFrame(t *testing.T) {
	c1, c2 := net.Pipe()
	defer func() { _ = c1.Close(); _ = c2.Close() }()
	go func() {
		hdr := make([]byte, 8)
		hdr[0] = 0xFF // absurd length
		_, _ = c1.Write(hdr)
	}()
	var req wire.Request
	if err := wire.ReadMsg(c2, &req); !errors.Is(err, wire.ErrFrameTooLarge) {
		t.Errorf("err = %v, want ErrFrameTooLarge", err)
	}
}
