package wire

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	"math/big"
	"math/bits"
)

// wordScalars is the quorum client's word-sized fast path for scalar
// arithmetic over Z_Q: the RLC folds, verification exponents, and
// Lagrange key materialization are all multiply-accumulate loops over
// O(batch·η) reduced scalars, and running them through math/big costs
// more than the partial-key derivation being verified. When Q fits in 63
// bits (the embedded sub-256-bit groups) every operand is one word;
// callers fall back to the equivalent big.Int arithmetic for wider
// groups.
type wordScalars struct {
	q uint64
}

// newWordScalars returns the fast path for q, or nil when q needs more
// than 63 bits (the one spare bit keeps modular addition overflow-free).
func newWordScalars(q *big.Int) *wordScalars {
	if q == nil || q.Sign() <= 0 || q.BitLen() > 63 {
		return nil
	}
	return &wordScalars{q: q.Uint64()}
}

// mulAdd returns acc + a·b mod q for reduced a, b, acc.
func (w *wordScalars) mulAdd(acc, a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// hi < q²/2⁶⁴ < q, so Div64 cannot panic.
	_, r := bits.Div64(hi, lo, w.q)
	s := acc + r // both < q < 2⁶³: no overflow
	if s >= w.q {
		s -= w.q
	}
	return s
}

// acc192 accumulates Σ aᵥ·bᵥ over reduced words without per-term modular
// division: each product is below 2¹²⁶ and 2⁶⁶ terms fit in 192 bits, so
// the (hardware-division) reduction is deferred to one wordScalars.reduce
// per accumulated output — the difference between the fold costing more
// than the key derivation it verifies and costing a fraction of it.
type acc192 struct {
	s0, s1, s2 uint64
}

func (a *acc192) mulAdd(x, y uint64) {
	hi, lo := bits.Mul64(x, y)
	var c uint64
	a.s0, c = bits.Add64(a.s0, lo, 0)
	a.s1, c = bits.Add64(a.s1, hi, c)
	a.s2 += c
}

// reduce maps the accumulated 192-bit value into [0, q).
func (w *wordScalars) reduce(a acc192) uint64 {
	r := a.s2 % w.q
	_, r = bits.Div64(r, a.s1, w.q) // r < q keeps Div64 in range
	_, r = bits.Div64(r, a.s0, w.q)
	return r
}

// fromInt64 maps a possibly-negative int64 into [0, q). The common case
// (|v| already reduced, as every fixed-point-encoded weight is) costs a
// compare, not a division.
func (w *wordScalars) fromInt64(v int64) uint64 {
	if v >= 0 {
		u := uint64(v)
		if u >= w.q {
			u %= w.q
		}
		return u
	}
	m := -uint64(v) // two's complement magnitude; exact for MinInt64 too
	if m >= w.q {
		m %= w.q
	}
	if m == 0 {
		return 0
	}
	return w.q - m
}

// reduceAll maps already-reduced scalars (each in [0, Q)) to words.
func (w *wordScalars) reduceAll(vs []*big.Int) []uint64 {
	out := make([]uint64, len(vs))
	for i, v := range vs {
		out[i] = v.Uint64()
	}
	return out
}

// verifierCoeffWords draws n random-linear-combination coefficients
// straight into reduced words: 128 bits of entropy each (so the mod-q
// distribution is uniform to ~2⁻⁶⁵) from one batched read, reduced with
// two word divisions instead of a big.Int Mod.
func verifierCoeffWords(n int, w *wordScalars) ([]uint64, error) {
	buf := make([]byte, 16*n)
	if _, err := io.ReadFull(rand.Reader, buf); err != nil {
		return nil, fmt.Errorf("wire: drawing verifier coefficients: %w", err)
	}
	out := make([]uint64, n)
	for i := range out {
		hi := binary.BigEndian.Uint64(buf[16*i:])
		lo := binary.BigEndian.Uint64(buf[16*i+8:])
		r := hi % w.q
		_, r = bits.Div64(r, lo, w.q)
		out[i] = r
	}
	return out, nil
}
