package wire

// Regression tests for the server and client hardening added alongside the
// threshold authority cluster: request-size limits, per-request panic
// containment, and bounded/cancellable client exchanges.

import (
	"context"
	"io"
	"log"
	"math/big"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"cryptonn/internal/authority"
	"cryptonn/internal/group"
)

func TestServerRejectsOversizedRequests(t *testing.T) {
	auth, err := authority.New(group.TestParams(), authority.AllowAll())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewAuthorityServerOpts(auth, nil, AuthorityServerOptions{MaxEta: 4})
	if err != nil {
		t.Fatal(err)
	}
	wide := make([]int64, 5)
	cmts := make([]*big.Int, 5)
	for i := range cmts {
		cmts[i] = big.NewInt(1)
	}
	for _, req := range []*Request{
		{Kind: KindFEIPPublic, Eta: 5},
		{Kind: KindIPKey, Y: wide},
		{Kind: KindIPKeyBatch, YBatch: [][]int64{wide}},
		{Kind: KindIPKeyBatch, YBatch: [][]int64{{1}, {1}, {1}, {1}, {1}}},
		{Kind: KindPartialIPKeyBatch, YBatch: [][]int64{wide}},
		{Kind: KindBOKeyBatch, Cmts: cmts, Scalars: wide},
		{Kind: KindPartialBOKeyBatch, Cmts: cmts, Scalars: wide},
	} {
		resp := srv.safeDispatch(req)
		if resp.Err == "" || !strings.Contains(resp.Err, "exceeds server limits") {
			t.Errorf("%s: oversized request not rejected (err %q)", req.Kind, resp.Err)
		}
	}
	if got := srv.Stats().Rejected; got != 7 {
		t.Errorf("Rejected = %d, want 7", got)
	}
	// At the limit is fine.
	if resp := srv.safeDispatch(&Request{Kind: KindFEIPPublic, Eta: 4}); resp.Err != "" {
		t.Errorf("η at the cap rejected: %s", resp.Err)
	}
}

func TestSafeDispatchContainsPanics(t *testing.T) {
	// A server with neither authority nor node: any dispatch panics on a
	// nil dereference, standing in for an unexpected bug in a key path.
	srv := &AuthorityServer{log: log.New(io.Discard, "", 0), maxEta: 16}
	resp := srv.safeDispatch(&Request{Kind: KindFEIPPublic, Eta: 2})
	if resp == nil || !strings.Contains(resp.Err, "internal error") {
		t.Fatalf("panicking dispatch answered %+v", resp)
	}
	if got := srv.Stats().Panics; got != 1 {
		t.Fatalf("Panics = %d, want 1", got)
	}
}

// wedgedServer accepts connections and reads requests but never answers.
func wedgedServer(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				for {
					var req Request
					if err := ReadMsg(conn, &req); err != nil {
						return
					}
				}
			}()
		}
	}()
	return l.Addr().String()
}

func TestRemoteKeyServiceTimeout(t *testing.T) {
	addr := wedgedServer(t)
	svc, err := DialKeyServiceOpts(addr, KeyClientOptions{Timeout: 80 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	start := time.Now()
	if _, err := svc.IPKey([]int64{1, 2}); !IsTimeout(err) {
		t.Fatalf("want timeout against wedged authority, got %v", err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("timeout took %v", d)
	}
}

func TestRemoteKeyServiceContextCancel(t *testing.T) {
	addr := wedgedServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	svc, err := DialKeyServiceOpts(addr, KeyClientOptions{Context: ctx})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	errc := make(chan error, 1)
	go func() {
		defer wg.Done()
		_, err := svc.IPKey([]int64{3})
		errc <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if err == nil || !strings.Contains(err.Error(), context.Canceled.Error()) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("cancellation did not unblock the exchange")
	}
	wg.Wait()

	// Future exchanges fail fast on the dead context.
	if _, err := svc.IPKey([]int64{3}); err == nil {
		t.Fatal("exchange succeeded on a cancelled context")
	}
}
