package wire

// Cross-client batch coalescing for prediction serving.
//
// Every layer below the socket is batch-friendly — securemat evaluates a
// whole encrypted matrix per call, amortizing the per-evaluation fixed
// costs (weight encoding, per-row key recodings, the per-matrix batched
// modular inversion, the model's plaintext forward pass) over its columns
// — but a connection handler that answers one request at a time re-pays
// those costs per request. The Dispatcher closes that gap the way
// production inference servers do: requests from any number of
// connections land in one bounded queue, the dispatch loop merges
// compatible pending batches into a single core.EncryptedBatch (their
// column ciphertexts simply concatenate), evaluates the merged batch
// once, and demultiplexes the per-sample results back to each caller.
//
// Coalescing is adaptive: while one merged batch is being evaluated, new
// arrivals accumulate in the queue and form the next merge, so batch
// sizes grow with load and collapse to single requests when the server
// is idle. MaxDelay > 0 additionally holds the first request of a round
// back for a bounded window to let stragglers join; the default (0) is
// the greedy policy — merge exactly what has already queued, never
// stall an idle server.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"cryptonn/internal/core"
	"cryptonn/internal/dlog"
	"cryptonn/internal/feip"
	"cryptonn/internal/securemat"
)

// ErrBusy reports a prediction request rejected because the dispatcher
// queue is full. It is the protocol's typed retryable error: the server
// marks the response retryable, RequestPrediction re-wraps it on the
// client, and callers back off and retry (errors.Is(err, ErrBusy)).
var ErrBusy = errors.New("wire: prediction queue full")

// Dispatcher defaults, selected by zero-valued DispatcherOptions fields.
const (
	// DefaultMaxCoalescedSamples caps merged batch width.
	DefaultMaxCoalescedSamples = 64
	// DefaultMaxQueue bounds the number of requests awaiting dispatch.
	DefaultMaxQueue = 256
)

// DispatcherOptions tunes a coalescing dispatcher. The zero value selects
// the defaults above with the greedy (zero-delay) merge policy.
type DispatcherOptions struct {
	// MaxCoalescedSamples caps the total sample count of one merged
	// batch; a request whose batch alone exceeds it is still served, as
	// its own evaluation. 0 selects DefaultMaxCoalescedSamples.
	MaxCoalescedSamples int
	// MaxDelay bounds how long the first request of a merge round waits
	// for company. 0 (the default) is greedy: a round merges exactly the
	// requests already queued — under load batches form while the
	// previous evaluation runs, and an idle server never stalls.
	MaxDelay time.Duration
	// MaxQueue bounds the dispatch queue (in requests); when it is full,
	// Do fails fast with ErrBusy instead of adding unbounded latency.
	// 0 selects DefaultMaxQueue.
	MaxQueue int
	// TopK, when non-nil, additionally serves coordinate-form top-k
	// requests (Dispatcher.DoTopK). Sparse requests coalesce with each
	// other — same geometry and same k — never with dense batches.
	TopK PredictTopKFunc
}

// PredictTopKFunc evaluates one coordinate-form sparse batch and returns
// each sample's k largest logits as descending (label, value) pairs;
// service.Server.PredictTopK satisfies it.
type PredictTopKFunc func(*core.SparseBatch, int) ([][]dlog.TopKHit, error)

func (o *DispatcherOptions) fillDefaults() {
	if o.MaxCoalescedSamples <= 0 {
		o.MaxCoalescedSamples = DefaultMaxCoalescedSamples
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = DefaultMaxQueue
	}
	if o.MaxDelay < 0 {
		o.MaxDelay = 0
	}
}

// DispatcherStats is a point-in-time snapshot of a dispatcher's counters.
type DispatcherStats struct {
	// Requests counts accepted requests; Rejected counts queue-full
	// rejections (not included in Requests).
	Requests, Rejected uint64
	// Samples counts samples across accepted requests.
	Samples uint64
	// Evals counts evaluation rounds; Samples/Evals is the mean
	// coalesced batch width. MaxCoalesced is the widest merged batch.
	Evals        uint64
	MaxCoalesced int
	// Panics counts evaluations that panicked and were recovered (each
	// cost its requests an error, not the dispatch loop).
	Panics uint64
	// TopKRequests counts accepted top-k requests (also included in
	// Requests); TopKSamples counts their samples.
	TopKRequests, TopKSamples uint64
	// QueueDepth is the instantaneous number of queued requests.
	QueueDepth int
	// P50 and P99 are request latency percentiles (enqueue → result
	// delivery) over a sliding window of recent served requests.
	P50, P99 time.Duration
}

// latWindow is the sliding-window size of the latency reservoir.
const latWindow = 1024

// pendingPredict is one enqueued request: its batch (dense enc or sparse
// sp+k — exactly one is set), the caller's context, and the channel the
// result is delivered on (buffered, so the dispatch loop never blocks on
// a departed caller).
type pendingPredict struct {
	ctx   context.Context
	enc   *core.EncryptedBatch
	sp    *core.SparseBatch
	k     int
	start time.Time
	res   chan predictResult
}

// n returns the request's sample count.
func (p *pendingPredict) n() int {
	if p.sp != nil {
		return p.sp.N
	}
	return p.enc.N
}

type predictResult struct {
	preds []int
	hits  [][]dlog.TopKHit
	err   error
}

// Dispatcher is the coalescing prediction dispatcher. One background
// loop owns all evaluation: it merges queued batches and runs them
// through the PredictFunc one merged batch at a time, which both
// amortizes per-evaluation fixed costs across clients and serializes
// access to the underlying model (service.Server.Predict is not
// concurrency-hungry: the plaintext forward pass caches activations on
// the layers).
type Dispatcher struct {
	predict PredictFunc
	topk    PredictTopKFunc
	opts    DispatcherOptions

	queue chan *pendingPredict
	done  chan struct{}
	wg    sync.WaitGroup

	mu           sync.Mutex
	closed       bool
	requests     uint64
	rejected     uint64
	samples      uint64
	topkRequests uint64
	topkSamples  uint64
	evals        uint64
	panics       uint64
	maxCoalesced int
	lats         [latWindow]time.Duration
	latN         uint64
}

// NewDispatcher starts a coalescing dispatcher around a prediction
// function. Close releases its background loop.
func NewDispatcher(predict PredictFunc, opts DispatcherOptions) (*Dispatcher, error) {
	if predict == nil {
		return nil, errors.New("wire: nil predict function")
	}
	opts.fillDefaults()
	d := &Dispatcher{
		predict: predict,
		topk:    opts.TopK,
		opts:    opts,
		queue:   make(chan *pendingPredict, opts.MaxQueue),
		done:    make(chan struct{}),
	}
	d.wg.Add(1)
	go d.run()
	return d, nil
}

// Close stops the dispatch loop. Requests already queued fail with
// net.ErrClosed; a merge round already being evaluated completes and its
// callers receive their results.
func (d *Dispatcher) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.mu.Unlock()
	close(d.done)
	d.wg.Wait()
	return nil
}

// Do submits one encrypted batch for prediction and blocks until its
// per-sample results are demultiplexed back, the context is cancelled, or
// the dispatcher shuts down. It fails fast with ErrBusy when the queue is
// full — the caller should back off and retry.
func (d *Dispatcher) Do(ctx context.Context, enc *core.EncryptedBatch) ([]int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := validatePredictBatch(enc); err != nil {
		return nil, err
	}
	p := &pendingPredict{ctx: ctx, enc: enc, start: time.Now(), res: make(chan predictResult, 1)}
	r, err := d.submit(ctx, p)
	if err != nil {
		return nil, err
	}
	return r.preds, r.err
}

// DoTopK submits one coordinate-form sparse batch and blocks until each
// sample's k largest (label, value) pairs come back. It shares the queue,
// backpressure and cancellation semantics of Do; sparse requests coalesce
// with geometry- and k-compatible sparse peers.
func (d *Dispatcher) DoTopK(ctx context.Context, sp *core.SparseBatch, k int) ([][]dlog.TopKHit, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if d.topk == nil {
		return nil, errors.New("wire: dispatcher has no top-k evaluator")
	}
	if k <= 0 {
		return nil, fmt.Errorf("wire: top-k count must be positive, got %d", k)
	}
	if err := validateSparseBatch(sp); err != nil {
		return nil, err
	}
	p := &pendingPredict{ctx: ctx, sp: sp, k: k, start: time.Now(), res: make(chan predictResult, 1)}
	r, err := d.submit(ctx, p)
	if err != nil {
		return nil, err
	}
	return r.hits, r.err
}

// submit enqueues one request and waits for its result or cancellation.
func (d *Dispatcher) submit(ctx context.Context, p *pendingPredict) (predictResult, error) {
	// Enqueue under the lock that Close takes before closing done: every
	// request that makes it into the queue is therefore guaranteed a
	// result — served, or failed with net.ErrClosed by the loop's
	// shutdown drain.
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return predictResult{}, net.ErrClosed
	}
	select {
	case d.queue <- p:
		d.requests++
		d.samples += uint64(p.n())
		if p.sp != nil {
			d.topkRequests++
			d.topkSamples += uint64(p.n())
		}
		d.mu.Unlock()
	default:
		d.rejected++
		d.mu.Unlock()
		return predictResult{}, fmt.Errorf("%w (%d requests pending)", ErrBusy, d.opts.MaxQueue)
	}
	select {
	case r := <-p.res:
		return r, nil
	case <-ctx.Done():
		// The dispatch loop drops cancelled requests at merge time; if
		// this one was already merged, its result lands in the buffered
		// channel and is discarded.
		return predictResult{}, ctx.Err()
	}
}

// Stats snapshots the dispatcher's counters.
func (d *Dispatcher) Stats() DispatcherStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := DispatcherStats{
		Requests:     d.requests,
		Rejected:     d.rejected,
		Samples:      d.samples,
		TopKRequests: d.topkRequests,
		TopKSamples:  d.topkSamples,
		Evals:        d.evals,
		Panics:       d.panics,
		MaxCoalesced: d.maxCoalesced,
		QueueDepth:   len(d.queue),
	}
	n := min(d.latN, latWindow)
	if n > 0 {
		window := make([]time.Duration, n)
		copy(window, d.lats[:n])
		sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
		st.P50 = window[n/2]
		st.P99 = window[n*99/100]
	}
	return st
}

// validatePredictBatch checks the invariants merging relies on.
func validatePredictBatch(enc *core.EncryptedBatch) error {
	switch {
	case enc == nil || enc.N <= 0 || enc.X == nil:
		return errors.New("wire: empty prediction batch")
	case enc.X.Cols != enc.N || len(enc.X.ColCts) != enc.N:
		return fmt.Errorf("wire: batch claims %d samples but carries %d column ciphertexts", enc.N, len(enc.X.ColCts))
	case enc.X.Rows != enc.Features:
		return fmt.Errorf("wire: batch claims %d features but ciphertext matrix has %d rows", enc.Features, enc.X.Rows)
	}
	return nil
}

// validateSparseBatch checks the invariants sparse merging relies on.
func validateSparseBatch(sp *core.SparseBatch) error {
	switch {
	case sp == nil || sp.N <= 0 || sp.X == nil:
		return errors.New("wire: empty sparse prediction batch")
	case sp.X.Cols != sp.N || len(sp.X.ColCts) != sp.N:
		return fmt.Errorf("wire: sparse batch claims %d samples but carries %d column ciphertexts", sp.N, len(sp.X.ColCts))
	case sp.X.Rows != sp.Features:
		return fmt.Errorf("wire: sparse batch claims %d features but ciphertext matrix has %d rows", sp.Features, sp.X.Rows)
	}
	return nil
}

// coalescable reports whether two requests can share an evaluation: same
// request kind and model input geometry (and, for top-k requests, the
// same k), so their column ciphertexts concatenate into one well-formed
// encrypted matrix whose per-sample results demultiplex cleanly.
func coalescable(a, b *pendingPredict) bool {
	if (a.sp != nil) != (b.sp != nil) {
		return false
	}
	if a.sp != nil {
		return a.sp.Features == b.sp.Features && a.sp.Classes == b.sp.Classes &&
			a.sp.X.Rows == b.sp.X.Rows && a.k == b.k
	}
	return a.enc.Features == b.enc.Features && a.enc.Classes == b.enc.Classes && a.enc.X.Rows == b.enc.X.Rows
}

// run is the dispatch loop: collect a merge round, evaluate it, repeat.
// Evaluation happens inline, so under load the next round's batches
// accumulate in the queue while the current one computes — the adaptive
// coalescing described at the top of the file.
func (d *Dispatcher) run() {
	defer d.wg.Done()
	var held *pendingPredict // first incompatible/overflow request of the next round
	for {
		var first *pendingPredict
		if held != nil {
			first, held = held, nil
		} else {
			select {
			case first = <-d.queue:
			case <-d.done:
				d.failPending(nil)
				return
			}
		}
		group := []*pendingPredict{first}
		samples := first.n()
		var timerC <-chan time.Time
		var timer *time.Timer
		if d.opts.MaxDelay > 0 {
			timer = time.NewTimer(d.opts.MaxDelay)
			timerC = timer.C
		}
	collect:
		for samples < d.opts.MaxCoalescedSamples {
			if timerC == nil {
				select {
				case q := <-d.queue:
					if q2, ok := d.admit(&group, &samples, q); !ok {
						held = q2
						break collect
					}
				default:
					break collect
				}
			} else {
				select {
				case q := <-d.queue:
					if q2, ok := d.admit(&group, &samples, q); !ok {
						held = q2
						break collect
					}
				case <-timerC:
					break collect
				case <-d.done:
					break collect
				}
			}
		}
		if timer != nil {
			timer.Stop()
		}
		d.evaluate(group)
		select {
		case <-d.done:
			d.failPending(held)
			return
		default:
		}
	}
}

// admit adds q to the round unless it is incompatible or would overflow
// the sample cap; then it is returned to be held for the next round.
func (d *Dispatcher) admit(group *[]*pendingPredict, samples *int, q *pendingPredict) (*pendingPredict, bool) {
	if !coalescable((*group)[0], q) || *samples+q.n() > d.opts.MaxCoalescedSamples {
		return q, false
	}
	*group = append(*group, q)
	*samples += q.n()
	return nil, true
}

// failPending fails the held request and everything still queued with
// net.ErrClosed. Called only from run on shutdown.
func (d *Dispatcher) failPending(held *pendingPredict) {
	if held != nil {
		held.res <- predictResult{err: net.ErrClosed}
	}
	for {
		select {
		case p := <-d.queue:
			p.res <- predictResult{err: net.ErrClosed}
		default:
			return
		}
	}
}

// evaluate runs one merge round: drop requests whose context is already
// cancelled, merge the survivors, predict once, demultiplex. If a merged
// evaluation fails, each request is retried alone — coalescing must not
// cost peers the failure isolation they had on the serial path (one bad
// batch fails only its own caller).
func (d *Dispatcher) evaluate(group []*pendingPredict) {
	live := group[:0]
	total := 0
	for _, p := range group {
		if err := p.ctx.Err(); err != nil {
			p.res <- predictResult{err: err}
			continue
		}
		live = append(live, p)
		total += p.n()
	}
	if len(live) == 0 {
		return
	}
	if live[0].sp != nil {
		d.evaluateTopK(live, total)
		return
	}
	enc := live[0].enc
	if len(live) > 1 {
		enc = mergeBatches(live, total)
	}
	preds, err := d.safePredict(enc)
	if err == nil && len(preds) != total {
		err = fmt.Errorf("wire: %d predictions for %d coalesced samples", len(preds), total)
	}
	d.mu.Lock()
	d.evals++
	d.maxCoalesced = max(d.maxCoalesced, total)
	d.mu.Unlock()
	if err != nil && len(live) > 1 {
		for _, p := range live {
			d.deliver(p, d.predictOne(p))
		}
		return
	}
	off := 0
	for _, p := range live {
		if err != nil {
			p.res <- predictResult{err: err}
			continue
		}
		d.deliver(p, predictResult{preds: preds[off : off+p.enc.N : off+p.enc.N]})
		off += p.enc.N
	}
}

// evaluateTopK runs one sparse merge round: merge, evaluate once through
// the top-k function, demultiplex hit lists. As on the dense path, a
// failed merged evaluation retries each request alone so one bad batch
// fails only its own caller.
func (d *Dispatcher) evaluateTopK(live []*pendingPredict, total int) {
	sp := live[0].sp
	if len(live) > 1 {
		sp = mergeSparseBatches(live, total)
	}
	hits, err := d.safeTopK(sp, live[0].k)
	if err == nil && len(hits) != total {
		err = fmt.Errorf("wire: %d top-k hit lists for %d coalesced samples", len(hits), total)
	}
	d.mu.Lock()
	d.evals++
	d.maxCoalesced = max(d.maxCoalesced, total)
	d.mu.Unlock()
	if err != nil && len(live) > 1 {
		for _, p := range live {
			d.deliver(p, d.topkOne(p))
		}
		return
	}
	off := 0
	for _, p := range live {
		if err != nil {
			p.res <- predictResult{err: err}
			continue
		}
		d.deliver(p, predictResult{hits: hits[off : off+p.sp.N : off+p.sp.N]})
		off += p.sp.N
	}
}

// safePredict calls the prediction function with a panic barrier: the
// dispatch loop runs evaluations on its own goroutine, so an unrecovered
// panic would kill prediction serving for every client, not just the
// request that tripped it.
func (d *Dispatcher) safePredict(enc *core.EncryptedBatch) (preds []int, err error) {
	defer func() {
		if r := recover(); r != nil {
			d.mu.Lock()
			d.panics++
			d.mu.Unlock()
			preds, err = nil, fmt.Errorf("wire: prediction panicked: %v", r)
		}
	}()
	return d.predict(enc)
}

// safeTopK calls the top-k function under the same panic barrier as
// safePredict.
func (d *Dispatcher) safeTopK(sp *core.SparseBatch, k int) (hits [][]dlog.TopKHit, err error) {
	defer func() {
		if r := recover(); r != nil {
			d.mu.Lock()
			d.panics++
			d.mu.Unlock()
			hits, err = nil, fmt.Errorf("wire: top-k prediction panicked: %v", r)
		}
	}()
	return d.topk(sp, k)
}

// predictOne evaluates a single request (the failed-merge fallback path).
func (d *Dispatcher) predictOne(p *pendingPredict) predictResult {
	preds, err := d.safePredict(p.enc)
	if err == nil && len(preds) != p.enc.N {
		err = fmt.Errorf("wire: %d predictions for %d samples", len(preds), p.enc.N)
	}
	d.mu.Lock()
	d.evals++
	d.mu.Unlock()
	if err != nil {
		return predictResult{err: err}
	}
	return predictResult{preds: preds}
}

// topkOne evaluates a single sparse request (the failed-merge fallback
// path).
func (d *Dispatcher) topkOne(p *pendingPredict) predictResult {
	hits, err := d.safeTopK(p.sp, p.k)
	if err == nil && len(hits) != p.sp.N {
		err = fmt.Errorf("wire: %d top-k hit lists for %d samples", len(hits), p.sp.N)
	}
	d.mu.Lock()
	d.evals++
	d.mu.Unlock()
	if err != nil {
		return predictResult{err: err}
	}
	return predictResult{hits: hits}
}

// deliver hands a result to its caller, recording serve latency for
// successful requests.
func (d *Dispatcher) deliver(p *pendingPredict, r predictResult) {
	if r.err == nil {
		d.recordLatency(time.Since(p.start))
	}
	p.res <- r
}

func (d *Dispatcher) recordLatency(lat time.Duration) {
	d.mu.Lock()
	d.lats[d.latN%latWindow] = lat
	d.latN++
	d.mu.Unlock()
}

// mergeBatches concatenates the column ciphertexts of a merge round into
// one encrypted batch. Prediction touches only the column orientation of
// X (the secure feed-forward), so the merged batch carries no label
// matrix, row ciphertexts, or element ciphertexts.
func mergeBatches(group []*pendingPredict, total int) *core.EncryptedBatch {
	first := group[0].enc
	cols := make([]*feip.Ciphertext, 0, total)
	for _, p := range group {
		cols = append(cols, p.enc.X.ColCts...)
	}
	return &core.EncryptedBatch{
		X:        &securemat.EncryptedMatrix{Rows: first.X.Rows, Cols: total, ColCts: cols},
		Features: first.Features,
		Classes:  first.Classes,
		N:        total,
	}
}

// mergeSparseBatches concatenates the column ciphertexts of a sparse
// merge round; every column keeps its own support and ct0.
func mergeSparseBatches(group []*pendingPredict, total int) *core.SparseBatch {
	first := group[0].sp
	cols := make([]*feip.SparseCiphertext, 0, total)
	for _, p := range group {
		cols = append(cols, p.sp.X.ColCts...)
	}
	return &core.SparseBatch{
		X:        &securemat.SparseEncryptedMatrix{Rows: first.X.Rows, Cols: total, ColCts: cols},
		Features: first.Features,
		Classes:  first.Classes,
		N:        total,
	}
}
