package wire

// FE-based prediction over the network (§III-D): after training, the
// server can answer prediction requests over encrypted inputs. The
// client encrypts a batch exactly as for training (the labels may be
// all-zero placeholders — only the input ciphertexts are touched), sends
// one KindPredict frame, and receives per-sample classes. If the client
// used a label map, the returned classes are masked and only the client
// can translate them — the paper's "flexible privacy setting".

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"cryptonn/internal/core"
	"cryptonn/internal/dlog"
)

// PredictFunc evaluates one encrypted batch and returns per-sample
// (label-mapped) classes; service.Server.Predict satisfies it.
type PredictFunc func(*core.EncryptedBatch) ([]int, error)

// RequestPrediction submits one encrypted batch for prediction and
// returns the per-sample classes. It blocks without bound; use
// RequestPredictionOpts to bound or cancel the exchange.
func RequestPrediction(conn net.Conn, enc *core.EncryptedBatch) ([]int, error) {
	return RequestPredictionOpts(nil, conn, enc, 0)
}

// RequestPredictionOpts submits one encrypted batch for prediction with an
// exchange deadline (zero for none) and optional context cancellation
// (nil for none). Cancellation slams the connection deadline so blocked
// I/O returns immediately.
func RequestPredictionOpts(ctx context.Context, conn net.Conn, enc *core.EncryptedBatch, timeout time.Duration) ([]int, error) {
	payload, err := encodePayload(enc)
	if err != nil {
		return nil, fmt.Errorf("wire: encoding prediction batch: %w", err)
	}
	if timeout > 0 {
		if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
			return nil, fmt.Errorf("wire: arming prediction deadline: %w", err)
		}
		defer conn.SetDeadline(time.Time{}) //nolint:errcheck // disarm is best-effort
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("wire: prediction exchange: %w", err)
		}
		stop := context.AfterFunc(ctx, func() {
			_ = conn.SetDeadline(time.Unix(1, 0))
		})
		defer stop()
	}
	wrapIO := func(err error) error {
		if ctx != nil && ctx.Err() != nil {
			return fmt.Errorf("wire: prediction exchange: %w", ctx.Err())
		}
		return err
	}
	if err := WriteMsg(conn, &Request{Kind: KindPredict, Payload: payload}); err != nil {
		return nil, wrapIO(fmt.Errorf("wire: sending prediction request: %w", err))
	}
	var resp Response
	if err := ReadMsg(conn, &resp); err != nil {
		return nil, wrapIO(fmt.Errorf("wire: reading prediction response: %w", err))
	}
	if resp.Err != "" {
		if resp.Retryable {
			return nil, fmt.Errorf("%w: server rejected prediction: %s", ErrBusy, resp.Err)
		}
		return nil, fmt.Errorf("wire: server rejected prediction: %s", resp.Err)
	}
	if len(resp.Preds) != enc.N {
		return nil, fmt.Errorf("wire: %d predictions for %d samples", len(resp.Preds), enc.N)
	}
	return resp.Preds, nil
}

// RequestTopKOpts submits one coordinate-form sparse batch over the
// legacy gob protocol and returns each sample's k largest (label, value)
// pairs, with an exchange deadline (zero for none) and optional context
// cancellation (nil for none).
func RequestTopKOpts(ctx context.Context, conn net.Conn, sp *core.SparseBatch, k int, timeout time.Duration) ([][]dlog.TopKHit, error) {
	payload, err := encodePayload(sp)
	if err != nil {
		return nil, fmt.Errorf("wire: encoding sparse prediction batch: %w", err)
	}
	if timeout > 0 {
		if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
			return nil, fmt.Errorf("wire: arming prediction deadline: %w", err)
		}
		defer conn.SetDeadline(time.Time{}) //nolint:errcheck // disarm is best-effort
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("wire: top-k exchange: %w", err)
		}
		stop := context.AfterFunc(ctx, func() {
			_ = conn.SetDeadline(time.Unix(1, 0))
		})
		defer stop()
	}
	wrapIO := func(err error) error {
		if ctx != nil && ctx.Err() != nil {
			return fmt.Errorf("wire: top-k exchange: %w", ctx.Err())
		}
		return err
	}
	if err := WriteMsg(conn, &Request{Kind: KindPredictTopK, Payload: payload, TopK: k}); err != nil {
		return nil, wrapIO(fmt.Errorf("wire: sending top-k request: %w", err))
	}
	var resp Response
	if err := ReadMsg(conn, &resp); err != nil {
		return nil, wrapIO(fmt.Errorf("wire: reading top-k response: %w", err))
	}
	if resp.Err != "" {
		if resp.Retryable {
			return nil, fmt.Errorf("%w: server rejected top-k prediction: %s", ErrBusy, resp.Err)
		}
		return nil, fmt.Errorf("wire: server rejected top-k prediction: %s", resp.Err)
	}
	if len(resp.TopK) != sp.N {
		return nil, fmt.Errorf("wire: %d top-k hit lists for %d samples", len(resp.TopK), sp.N)
	}
	return resp.TopK, nil
}

// PredictionServer answers KindPredict requests with a PredictFunc.
type PredictionServer struct {
	predict    PredictFunc
	dispatcher *Dispatcher
	log        *log.Logger
	panics     atomic.Uint64
	// Connections accepted per negotiated codec, for /metrics.
	gobConns atomic.Uint64
	binConns atomic.Uint64

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	closed   bool
}

// NewPredictionServer wraps a prediction function; logger may be nil.
// Each request is evaluated as it arrives on its connection goroutine —
// use NewCoalescingPredictionServer for the throughput engine.
func NewPredictionServer(predict PredictFunc, logger *log.Logger) (*PredictionServer, error) {
	if predict == nil {
		return nil, errors.New("wire: nil predict function")
	}
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	return &PredictionServer{predict: predict, log: logger, conns: make(map[net.Conn]struct{})}, nil
}

// NewCoalescingPredictionServer wraps a prediction function in the
// cross-client coalescing dispatcher: concurrent requests from any number
// of connections merge into shared evaluations (see Dispatcher), with
// queue-full backpressure reported to clients as the retryable ErrBusy.
func NewCoalescingPredictionServer(predict PredictFunc, logger *log.Logger, opts DispatcherOptions) (*PredictionServer, error) {
	s, err := NewPredictionServer(predict, logger)
	if err != nil {
		return nil, err
	}
	if s.dispatcher, err = NewDispatcher(predict, opts); err != nil {
		return nil, err
	}
	return s, nil
}

// Stats snapshots the coalescing dispatcher's counters; it is zero for a
// server built without coalescing.
func (s *PredictionServer) Stats() DispatcherStats {
	var st DispatcherStats
	if s.dispatcher != nil {
		st = s.dispatcher.Stats()
	}
	st.Panics += s.panics.Load()
	return st
}

// Serve accepts prediction connections until the context is cancelled or
// Close is called. Each connection may carry any number of requests.
func (s *PredictionServer) Serve(ctx context.Context, l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.listener = l
	s.mu.Unlock()

	stop := context.AfterFunc(ctx, func() { _ = s.Close() })
	defer stop()

	for {
		conn, err := l.Accept()
		if err != nil {
			s.wg.Wait()
			// Serving is over (listener closed externally or broken);
			// release the dispatch loop too. Live connections have
			// drained above, so nothing can still be enqueuing.
			if s.dispatcher != nil {
				_ = s.dispatcher.Close()
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			closeLogged(conn, s.log)
			s.wg.Wait()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops accepting and closes live connections.
func (s *PredictionServer) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if s.listener != nil {
		err = s.listener.Close()
	}
	for c := range s.conns {
		closeLogged(c, s.log)
	}
	if s.dispatcher != nil {
		// Queued requests fail with net.ErrClosed; the round being
		// evaluated completes first (its callers are mid-write anyway).
		_ = s.dispatcher.Close()
	}
	return err
}

func (s *PredictionServer) handle(conn net.Conn) {
	defer func() {
		closeLogged(conn, s.log)
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	bin, hdr, err := sniffHello(conn)
	if err != nil {
		if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
			s.log.Printf("prediction server: negotiating with %s: %v", conn.RemoteAddr(), err)
		}
		return
	}
	if bin {
		s.binConns.Add(1)
		s.handleBinary(conn)
		return
	}
	s.gobConns.Add(1)
	first := true
	for {
		var req Request
		var err error
		if first {
			// The sniffed bytes are the first gob frame's length header.
			err, first = readMsgAfterHeader(conn, hdr, &req), false
		} else {
			err = ReadMsg(conn, &req)
		}
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.log.Printf("prediction server: read from %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		resp := s.answer(&req)
		if err := WriteMsg(conn, resp); err != nil {
			s.log.Printf("prediction server: write to %s: %v", conn.RemoteAddr(), err)
			return
		}
	}
}

// maxInflightPerConn bounds concurrent evaluations spawned by one binary
// connection, so a single aggressive client cannot monopolize the
// dispatch queue. Further frames simply wait for a slot — TCP backpressure
// does the rest.
const maxInflightPerConn = 32

// handleBinary serves one negotiated binary connection. Prediction
// frames are multiplexed: each runs on its own goroutine (bounded by
// maxInflightPerConn) and responses go out in completion order, matched
// by request id. Gob-wrapped frames serve cold kinds inline.
func (s *PredictionServer) handleBinary(conn net.Conn) {
	bc := newBinConn(conn)
	sem := make(chan struct{}, maxInflightPerConn)
	var wg sync.WaitGroup
	defer wg.Wait() // drain in-flight evaluations before the conn closes
	for {
		ftype, id, body, err := bc.readFrame()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.log.Printf("prediction server: read from %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		switch ftype {
		case bfPredict:
			enc, err := decodeEncryptedBatch(body)
			if err != nil {
				if werr := bc.writeErr(id, fmt.Sprintf("decoding prediction batch: %v", err), false); werr != nil {
					s.log.Printf("prediction server: write to %s: %v", conn.RemoteAddr(), werr)
					return
				}
				continue
			}
			sem <- struct{}{}
			wg.Add(1)
			go func(id uint64, enc *core.EncryptedBatch) {
				defer func() { <-sem; wg.Done() }()
				preds, err := s.evaluate(enc)
				var werr error
				if err != nil {
					werr = bc.writeErr(id, fmt.Sprintf("prediction failed: %v", err), errors.Is(err, ErrBusy))
				} else {
					werr = bc.writeFrame(bfPreds, id, func(b []byte) ([]byte, error) {
						return appendPreds(b, preds)
					})
				}
				if werr != nil && !errors.Is(werr, net.ErrClosed) {
					s.log.Printf("prediction server: write to %s: %v", conn.RemoteAddr(), werr)
				}
			}(id, enc)
		case bfPredictTopK:
			k, sp, err := decodeSparseBatch(body)
			if err != nil {
				if werr := bc.writeErr(id, fmt.Sprintf("decoding sparse prediction batch: %v", err), false); werr != nil {
					s.log.Printf("prediction server: write to %s: %v", conn.RemoteAddr(), werr)
					return
				}
				continue
			}
			sem <- struct{}{}
			wg.Add(1)
			go func(id uint64, k int, sp *core.SparseBatch) {
				defer func() { <-sem; wg.Done() }()
				hits, err := s.evaluateTopK(sp, k)
				var werr error
				if err != nil {
					werr = bc.writeErr(id, fmt.Sprintf("top-k prediction failed: %v", err), errors.Is(err, ErrBusy))
				} else {
					werr = bc.writeFrame(bfTopK, id, func(b []byte) ([]byte, error) {
						return appendTopKHits(b, hits)
					})
				}
				if werr != nil && !errors.Is(werr, net.ErrClosed) {
					s.log.Printf("prediction server: write to %s: %v", conn.RemoteAddr(), werr)
				}
			}(id, k, sp)
		case bfGobRequest:
			var req Request
			if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&req); err != nil {
				if werr := bc.writeErr(id, fmt.Sprintf("decoding request: %v", err), false); werr != nil {
					return
				}
				continue
			}
			resp := s.answer(&req)
			err := bc.writeFrame(bfGobResponse, id, func(b []byte) ([]byte, error) {
				fb := frameBuffer{buf: b}
				if err := gob.NewEncoder(&fb).Encode(resp); err != nil {
					return nil, fmt.Errorf("wire: encoding response: %w", err)
				}
				return fb.buf, nil
			})
			if err != nil {
				s.log.Printf("prediction server: write to %s: %v", conn.RemoteAddr(), err)
				return
			}
		default:
			if err := bc.writeErr(id, fmt.Sprintf("prediction server cannot serve frame type %#x", ftype), false); err != nil {
				return
			}
		}
	}
}

func (s *PredictionServer) answer(req *Request) (resp *Response) {
	// A panicking evaluation (a model/engine bug tripped by one request)
	// must cost that request an error response, not the whole serving
	// process: recover, count, log, keep the connection alive.
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			s.log.Printf("prediction server: panic serving %s: %v\n%s", req.Kind, r, debug.Stack())
			resp = &Response{Err: "prediction failed: internal error"}
		}
	}()
	switch req.Kind {
	case KindPredict:
		var enc core.EncryptedBatch
		if err := gob.NewDecoder(bytes.NewReader(req.Payload)).Decode(&enc); err != nil {
			return &Response{Err: fmt.Sprintf("decoding prediction batch: %v", err)}
		}
		if enc.N <= 0 || enc.X == nil {
			return &Response{Err: "empty prediction batch"}
		}
		preds, err := s.evaluate(&enc)
		if err != nil {
			return &Response{Err: fmt.Sprintf("prediction failed: %v", err), Retryable: errors.Is(err, ErrBusy)}
		}
		return &Response{Preds: preds}
	case KindPredictTopK:
		var sp core.SparseBatch
		if err := gob.NewDecoder(bytes.NewReader(req.Payload)).Decode(&sp); err != nil {
			return &Response{Err: fmt.Sprintf("decoding sparse prediction batch: %v", err)}
		}
		hits, err := s.evaluateTopK(&sp, req.TopK)
		if err != nil {
			return &Response{Err: fmt.Sprintf("top-k prediction failed: %v", err), Retryable: errors.Is(err, ErrBusy)}
		}
		return &Response{TopK: hits}
	default:
		return &Response{Err: fmt.Sprintf("prediction server cannot serve %s", req.Kind)}
	}
}

// evaluate runs one decoded batch through the dispatcher (or the direct
// predict function) with panic containment — shared by the gob and
// binary paths.
func (s *PredictionServer) evaluate(enc *core.EncryptedBatch) (preds []int, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			s.log.Printf("prediction server: panic evaluating batch: %v\n%s", r, debug.Stack())
			preds, err = nil, errors.New("internal error")
		}
	}()
	if enc.N <= 0 || enc.X == nil {
		return nil, errors.New("empty prediction batch")
	}
	if s.dispatcher != nil {
		// Background context: the framed request/response protocol gives
		// no way to observe a client disconnect while its request is in
		// flight, so a vanished client's request is evaluated and the
		// write error then tears the connection down. Dispatcher shutdown
		// is covered by its own done channel.
		return s.dispatcher.Do(context.Background(), enc)
	}
	return s.predict(enc)
}

// evaluateTopK runs one decoded sparse batch through the dispatcher with
// panic containment — shared by the gob and binary paths. Top-k serving
// requires the coalescing dispatcher (DispatcherOptions.TopK).
func (s *PredictionServer) evaluateTopK(sp *core.SparseBatch, k int) (hits [][]dlog.TopKHit, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			s.log.Printf("prediction server: panic evaluating sparse batch: %v\n%s", r, debug.Stack())
			hits, err = nil, errors.New("internal error")
		}
	}()
	if s.dispatcher == nil {
		return nil, errors.New("server does not serve top-k predictions")
	}
	return s.dispatcher.DoTopK(context.Background(), sp, k)
}
