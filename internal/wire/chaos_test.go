package wire_test

// Chaos test: a full CryptoNN training run backed by a 5-node threshold
// authority cluster over real TCP, with ⌊N−T⌋ = 2 nodes killed mid-run.
// The run must complete, and — because function keys are interchangeable
// regardless of which quorum derived them — the final model weights must
// be bit-identical to a run backed by a plain in-process authority with
// the same seeds.

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"cryptonn/internal/authority"
	"cryptonn/internal/core"
	"cryptonn/internal/dlog"
	"cryptonn/internal/group"
	"cryptonn/internal/nn"
	"cryptonn/internal/securemat"
	"cryptonn/internal/tensor"
	"cryptonn/internal/wire"
)

// trainToy runs the reference training loop against the given key service
// and returns the final model.
func trainToy(t *testing.T, keys securemat.KeyService, onIteration func(it int)) *nn.Model {
	t.Helper()
	solver, err := dlog.NewSolver(group.TestParams(), 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := securemat.NewEngine(keys, securemat.EngineOptions{Solver: solver})
	if err != nil {
		t.Fatal(err)
	}
	const seed = 42
	model, err := nn.NewMLP(4, 3, []int{6}, nn.SoftmaxCrossEntropy{}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	trainer, err := core.NewTrainer(model, eng, core.Config{ComputeLoss: true})
	if err != nil {
		t.Fatal(err)
	}
	client, err := core.NewClient(eng, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	x, y := chaosBlobs(rand.New(rand.NewSource(7)), 4, 12)
	enc, err := client.EncryptBatch(x, y)
	if err != nil {
		t.Fatal(err)
	}
	opt, _ := nn.NewSGD(0.5, 0)
	for it := 0; it < 8; it++ {
		res, err := trainer.TrainBatch(enc, opt)
		if err != nil {
			t.Fatalf("iteration %d: %v", it, err)
		}
		if math.IsNaN(res.Loss) {
			t.Fatalf("iteration %d: NaN loss", it)
		}
		if onIteration != nil {
			onIteration(it)
		}
	}
	return model
}

func chaosBlobs(rng *rand.Rand, features, n int) (*tensor.Dense, *tensor.Dense) {
	x := tensor.NewDense(features, n)
	y := tensor.NewDense(3, n)
	centers := [][]float64{{0.8, 0.1}, {0.1, 0.8}, {0.8, 0.8}}
	for j := 0; j < n; j++ {
		c := j % 3
		for i := 0; i < features; i++ {
			x.Set(i, j, centers[c][i%2]+rng.NormFloat64()*0.08)
		}
		y.Set(c, j, 1)
	}
	return x, y
}

func TestChaosTrainingSurvivesNodeKills(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos training run in -short mode")
	}
	before := runtime.NumGoroutine()

	// Baseline: in-process single authority, same seeds.
	auth, err := authority.New(group.TestParams(), authority.AllowAll())
	if err != nil {
		t.Fatal(err)
	}
	baseline := trainToy(t, auth, nil)

	// Cluster run: N=5, T=3, kill two node servers after the second
	// iteration; the remaining three must carry the rest of the run.
	tc := startCluster(t, 3, 5, 99)
	opts := quickOpts()
	opts.Timeout = time.Second
	q, err := wire.NewQuorumKeyService(tc.dialers(), opts)
	if err != nil {
		t.Fatalf("NewQuorumKeyService: %v", err)
	}
	killed := false
	secure := trainToy(t, q, func(it int) {
		if it == 1 && !killed {
			killed = true
			_ = tc.servers[1].Close()
			_ = tc.servers[4].Close()
		}
	})
	if !killed {
		t.Fatal("kill hook never ran")
	}

	// Function keys for the same function are identical whichever quorum
	// derives them, so both runs decrypt the same values and step the
	// same gradients: the weights must match bit for bit.
	if len(secure.Layers) != len(baseline.Layers) {
		t.Fatalf("layer count mismatch: %d vs %d", len(secure.Layers), len(baseline.Layers))
	}
	for li := range secure.Layers {
		sl, ok1 := secure.Layers[li].(*nn.DenseLayer)
		bl, ok2 := baseline.Layers[li].(*nn.DenseLayer)
		if !ok1 || !ok2 {
			continue
		}
		for name, pair := range map[string][2]*tensor.Dense{
			"W": {sl.W, bl.W},
			"B": {sl.B, bl.B},
		} {
			s, b := pair[0], pair[1]
			if s.Rows != b.Rows || s.Cols != b.Cols {
				t.Fatalf("layer %d %s: shape mismatch", li, name)
			}
			for i := 0; i < s.Rows; i++ {
				for j := 0; j < s.Cols; j++ {
					sv, bv := s.At(i, j), b.At(i, j)
					if sv != bv {
						t.Fatalf("layer %d %s[%d,%d]: quorum-trained %v != baseline %v", li, name, i, j, sv, bv)
					}
				}
			}
		}
	}

	if q.RoundTrips() == 0 {
		t.Error("quorum service recorded no round trips")
	}

	// Tear down and verify no goroutines leaked from the quorum client,
	// fault machinery, or node servers.
	if err := q.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	tc.stop()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d before, %d after\n%s", before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
