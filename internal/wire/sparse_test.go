package wire

// Tests for the sparse serving path: the bfPredictTopK/bfTopK binary
// codec (round trips plus a hostile-geometry matrix mirroring the conv
// batch one), dispatcher-level top-k coalescing with per-sample demux,
// and the over-the-wire contract that a hostile sparse frame costs one
// bfErr while the connection keeps serving.

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"math/big"
	"math/rand"
	"net"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"cryptonn/internal/core"
	"cryptonn/internal/dlog"
	"cryptonn/internal/feip"
	"cryptonn/internal/securemat"
)

// synthSparseCt fabricates a coordinate-form ciphertext with nnz sorted
// support indices drawn without replacement from [0, eta).
func synthSparseCt(rng *rand.Rand, eta, nnz int) *feip.SparseCiphertext {
	idx := append([]int(nil), rng.Perm(eta)[:nnz]...)
	sort.Ints(idx)
	ct := &feip.SparseCiphertext{
		Eta: eta,
		Ct0: new(big.Int).SetUint64(rng.Uint64()),
		Idx: idx,
		Ct:  make([]*big.Int, nnz),
	}
	for t := range ct.Ct {
		// Mix widths so the fixed-width slab actually pads.
		ct.Ct[t] = new(big.Int).SetUint64(rng.Uint64() >> (uint(rng.Intn(8)) * 8))
	}
	return ct
}

func synthSparseBatch(rng *rand.Rand, features, classes, n, nnz int) *core.SparseBatch {
	m := &securemat.SparseEncryptedMatrix{
		Rows: features, Cols: n,
		ColCts: make([]*feip.SparseCiphertext, n),
	}
	for j := range m.ColCts {
		m.ColCts[j] = synthSparseCt(rng, features, nnz)
	}
	return &core.SparseBatch{X: m, Features: features, Classes: classes, N: n}
}

func TestSparseBatchBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	sp := synthSparseBatch(rng, 9, 4, 3, 2)
	body, err := appendSparseBatch(nil, 3, sp)
	if err != nil {
		t.Fatal(err)
	}
	k, got, err := decodeSparseBatch(body)
	if err != nil {
		t.Fatal(err)
	}
	if k != 3 || got.Features != 9 || got.Classes != 4 || got.N != 3 {
		t.Fatalf("geometry mangled: k=%d %+v", k, got)
	}
	// Re-encoding the decoded batch must be byte-identical: the codec is
	// canonical, so this is a full deep-equality check.
	body2, err := appendSparseBatch(nil, k, got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, body2) {
		t.Fatal("round-trip is not byte-identical")
	}
}

func TestTopKHitsBinaryRoundTrip(t *testing.T) {
	hits := [][]dlog.TopKHit{
		{{Index: 5, Value: 123456}, {Index: 0, Value: -7}},
		{},
		{{Index: 2, Value: 1 << 40}},
	}
	body, err := appendTopKHits(nil, hits)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeTopKHits(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(hits) {
		t.Fatalf("got %d hit lists, want %d", len(got), len(hits))
	}
	for i := range hits {
		if len(got[i]) != len(hits[i]) {
			t.Fatalf("sample %d: %d hits, want %d", i, len(got[i]), len(hits[i]))
		}
		for j := range hits[i] {
			if got[i][j] != hits[i][j] {
				t.Fatalf("sample %d hit %d: %+v, want %+v", i, j, got[i][j], hits[i][j])
			}
		}
	}
	body2, err := appendTopKHits(nil, got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, body2) {
		t.Fatal("round-trip is not byte-identical")
	}
}

// sparseBody hand-assembles a bfPredictTopK body from raw words so tests
// can express frames today's encoder refuses to produce.
func sparseBody(k, features, classes, n uint32, vec []byte) []byte {
	var b []byte
	for _, v := range []uint32{k, features, classes, n} {
		b = binary.BigEndian.AppendUint32(b, v)
	}
	return append(b, vec...)
}

// spctvec hand-assembles a spctvec section with one-byte elements.
func spctvec(count, eta uint32, entries ...[]byte) []byte {
	b := binary.BigEndian.AppendUint32(nil, count)
	b = binary.BigEndian.AppendUint32(b, eta)
	b = binary.BigEndian.AppendUint16(b, 1) // element width 1
	for _, e := range entries {
		b = append(b, e...)
	}
	return b
}

// spEntry assembles one entry: the nnz word, a one-byte ct0, then one
// (idx, ct) pair per listed index — the declared nnz may disagree.
func spEntry(nnz uint32, idxs ...uint32) []byte {
	b := binary.BigEndian.AppendUint32(nil, nnz)
	b = append(b, 0x01) // ct0
	for _, idx := range idxs {
		b = binary.BigEndian.AppendUint32(b, idx)
		b = append(b, 0x02) // element
	}
	return b
}

// hostileSparseBodies is the named attack matrix for the sparse decoder:
// every body must fail with ErrBinaryEncoding, never a panic or a huge
// allocation.
func hostileSparseBodies() map[string][]byte {
	return map[string][]byte{
		"zero k":                sparseBody(0, 4, 2, 1, spctvec(1, 4, spEntry(1, 0))),
		"nnz exceeds dimension": sparseBody(1, 4, 2, 1, spctvec(1, 4, spEntry(5, 0, 1, 2, 3))),
		"duplicate index":       sparseBody(1, 4, 2, 1, spctvec(1, 4, spEntry(2, 1, 1))),
		"unsorted index":        sparseBody(1, 4, 2, 1, spctvec(1, 4, spEntry(2, 2, 1))),
		"index out of range":    sparseBody(1, 4, 2, 1, spctvec(1, 4, spEntry(1, 4))),
		"count mismatch":        sparseBody(1, 4, 2, 1, spctvec(2, 4, spEntry(1, 0), spEntry(1, 0))),
		"dimension mismatch":    sparseBody(1, 4, 2, 1, spctvec(1, 5, spEntry(1, 0))),
		"zero dimension":        sparseBody(1, 0, 2, 1, spctvec(1, 0, spEntry(0))),
		"truncated pair list":   sparseBody(1, 4, 2, 1, spctvec(1, 4, spEntry(3, 0))),
		"oversized count":       sparseBody(1, 4, 2, 1, spctvec(1<<23, 4)),
		"huge nnz word":         sparseBody(1, 4, 2, 1, spctvec(1, 4, spEntry(0xFFFFFF00))),
	}
}

func TestSparseDecodeRejectsHostileBodies(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	sp := synthSparseBatch(rng, 7, 3, 2, 3)
	body, err := appendSparseBatch(nil, 2, sp)
	if err != nil {
		t.Fatal(err)
	}
	// Every truncation must fail cleanly — no panic, no huge allocation.
	for n := 0; n < len(body); n++ {
		if _, _, err := decodeSparseBatch(body[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", n)
		}
	}
	if _, _, err := decodeSparseBatch(append(bytes.Clone(body), 0xFF)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	for name, hostile := range hostileSparseBodies() {
		if _, _, err := decodeSparseBatch(hostile); err == nil {
			t.Errorf("%s: hostile sparse body accepted", name)
		} else if !errors.Is(err, ErrBinaryEncoding) {
			t.Errorf("%s: want ErrBinaryEncoding, got %v", name, err)
		}
	}

	// Hit-list side: oversized counts must fail before allocating.
	if _, err := decodeTopKHits([]byte{0xFF, 0xFF, 0xFF, 0xFF}); err == nil {
		t.Fatal("oversized sample count accepted")
	}
	huge := binary.BigEndian.AppendUint32(nil, 1)
	huge = binary.BigEndian.AppendUint32(huge, 1<<23)
	if _, err := decodeTopKHits(huge); err == nil {
		t.Fatal("oversized hit count accepted")
	}
	hitBody, err := appendTopKHits(nil, [][]dlog.TopKHit{{{Index: 1, Value: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(hitBody); n++ {
		if _, err := decodeTopKHits(hitBody[:n]); err == nil {
			t.Fatalf("hit truncation to %d bytes decoded successfully", n)
		}
	}
	if _, err := decodeTopKHits(append(bytes.Clone(hitBody), 0xFF)); err == nil {
		t.Fatal("trailing hit bytes accepted")
	}
}

func TestSparseEncoderMatchesDecoderLimits(t *testing.T) {
	// The encoder must reject exactly what the decoder rejects, so a bad
	// batch fails fast locally instead of costing a round trip.
	rng := rand.New(rand.NewSource(23))
	good := synthSparseBatch(rng, 6, 3, 1, 2)
	if _, err := appendSparseBatch(nil, 0, good); err == nil {
		t.Error("zero k accepted")
	}
	if _, err := appendSparseBatch(nil, 1, nil); err == nil {
		t.Error("nil batch accepted")
	}
	bad := *good
	bad.Features = 7 // disagrees with X.Rows
	if _, err := appendSparseBatch(nil, 1, &bad); err == nil {
		t.Error("geometry mismatch accepted")
	}
	unsorted := synthSparseBatch(rng, 6, 3, 1, 2)
	unsorted.X.ColCts[0].Idx = []int{3, 1}
	if _, err := appendSparseBatch(nil, 1, unsorted); err == nil {
		t.Error("unsorted support accepted")
	}
	outOfRange := synthSparseBatch(rng, 6, 3, 1, 1)
	outOfRange.X.ColCts[0].Idx = []int{6}
	if _, err := appendSparseBatch(nil, 1, outOfRange); err == nil {
		t.Error("out-of-range support accepted")
	}
}

// fakeHits is the deterministic answer the fake top-k backend gives for
// the sample whose embedded id is id.
func fakeHits(id int64, k int) []dlog.TopKHit {
	hs := make([]dlog.TopKHit, k)
	for t := range hs {
		hs[t] = dlog.TopKHit{Index: int(id) + t, Value: id*1000 - int64(t)}
	}
	return hs
}

// newSparseBatch fabricates an n-sample coordinate-form batch and the
// per-sample hit lists topkEval will answer for it at the given k.
func (f *fakeBackend) newSparseBatch(features, classes, n, k int) (*core.SparseBatch, [][]dlog.TopKHit) {
	f.mu.Lock()
	defer f.mu.Unlock()
	cts := make([]*feip.SparseCiphertext, n)
	want := make([][]dlog.TopKHit, n)
	for j := range cts {
		cts[j] = &feip.SparseCiphertext{
			Eta: features,
			Ct0: big.NewInt(f.next),
			Idx: []int{0},
			Ct:  []*big.Int{big.NewInt(1)},
		}
		want[j] = fakeHits(f.next, k)
		f.next++
	}
	return &core.SparseBatch{
		X:        &securemat.SparseEncryptedMatrix{Rows: features, Cols: n, ColCts: cts},
		Features: features, Classes: classes, N: n,
	}, want
}

// poisonSparseBatch fabricates a batch topkEval rejects (negative ids).
func (f *fakeBackend) poisonSparseBatch(features, classes, n int) *core.SparseBatch {
	sp, _ := f.newSparseBatch(features, classes, n, 1)
	for _, ct := range sp.X.ColCts {
		ct.Ct0.Neg(ct.Ct0)
	}
	return sp
}

func (f *fakeBackend) topkEval(sp *core.SparseBatch, k int) ([][]dlog.TopKHit, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.evals = append(f.evals, evalRecord{rows: sp.X.Rows, n: sp.N, k: k})
	out := make([][]dlog.TopKHit, sp.N)
	for j, ct := range sp.X.ColCts {
		if ct == nil || ct.Ct0 == nil {
			return nil, errors.New("fake: sparse ciphertext without embedded id")
		}
		id := ct.Ct0.Int64()
		if id < 0 {
			return nil, errors.New("fake: poisoned sample")
		}
		out[j] = fakeHits(id, k)
	}
	return out, nil
}

func (g *gatedBackend) topkEval(sp *core.SparseBatch, k int) ([][]dlog.TopKHit, error) {
	g.entered <- struct{}{}
	<-g.release
	return g.fakeBackend.topkEval(sp, k)
}

func checkHits(t *testing.T, label string, got, want [][]dlog.TopKHit) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d hit lists, want %d", label, len(got), len(want))
	}
	for i := range got {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s: sample %d has %d hits, want %d", label, i, len(got[i]), len(want[i]))
			continue
		}
		for j := range got[i] {
			if got[i][j] != want[i][j] {
				t.Errorf("%s: sample %d hit %d = %+v, want %+v (cross-client demux leak)",
					label, i, j, got[i][j], want[i][j])
			}
		}
	}
}

// TestDispatcherTopKDemux holds one top-k evaluation open while more
// sparse clients pile up, then verifies every client got exactly its own
// hit lists back from the merged evaluation.
func TestDispatcherTopKDemux(t *testing.T) {
	g := newGatedBackend()
	d, err := NewDispatcher(g.predict, DispatcherOptions{TopK: g.topkEval})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	sp0, want0 := g.newSparseBatch(5, 3, 1, 2)
	type result struct {
		hits [][]dlog.TopKHit
		err  error
	}
	res0 := make(chan result, 1)
	go func() {
		h, err := d.DoTopK(context.Background(), sp0, 2)
		res0 <- result{h, err}
	}()
	<-g.entered

	var wg sync.WaitGroup
	clients := []int{1, 3, 2}
	results := make([]result, len(clients))
	wants := make([][][]dlog.TopKHit, len(clients))
	for i, n := range clients {
		sp, want := g.newSparseBatch(5, 3, n, 2)
		wants[i] = want
		wg.Add(1)
		go func() {
			defer wg.Done()
			h, err := d.DoTopK(context.Background(), sp, 2)
			results[i] = result{h, err}
		}()
	}
	waitFor(t, func() bool { return len(d.queue) == len(clients) })
	close(g.release)

	r0 := <-res0
	if r0.err != nil {
		t.Fatalf("first request: %v", r0.err)
	}
	checkHits(t, "first", r0.hits, want0)
	wg.Wait()
	for i := range clients {
		if results[i].err != nil {
			t.Fatalf("client %d: %v", i, results[i].err)
		}
		checkHits(t, "queued client", results[i].hits, wants[i])
	}

	// The three queued clients must have shared one evaluation.
	if got := g.evalCount(); got != 2 {
		t.Errorf("evaluations = %d, want 2 (1 solo + 1 coalesced)", got)
	}
	st := d.Stats()
	if st.TopKRequests != 4 || st.TopKSamples != 7 {
		t.Errorf("stats = %+v, want 4 top-k requests / 7 top-k samples", st)
	}
}

// TestDispatcherTopKPartition checks the coalescing fences: sparse never
// merges with dense, and sparse requests with different k never merge.
func TestDispatcherTopKPartition(t *testing.T) {
	g := newGatedBackend()
	d, err := NewDispatcher(g.predict, DispatcherOptions{TopK: g.topkEval})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	enc0, _ := g.newBatch(5, 3, 1)
	go d.Do(context.Background(), enc0) //nolint:errcheck // checked via eval records
	<-g.entered

	var wg sync.WaitGroup
	launch := func(fn func() error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := fn(); err != nil {
				t.Error(err)
			}
		}()
	}
	encD, wantD := g.newBatch(5, 3, 2)
	launch(func() error {
		p, err := d.Do(context.Background(), encD)
		if err == nil {
			checkPreds(t, "dense peer", p, wantD)
		}
		return err
	})
	for _, k := range []int{2, 2, 3} {
		sp, want := g.newSparseBatch(5, 3, 1, k)
		launch(func() error {
			h, err := d.DoTopK(context.Background(), sp, k)
			if err == nil {
				checkHits(t, "sparse peer", h, want)
			}
			return err
		})
	}
	waitFor(t, func() bool { return len(d.queue) == 4 })
	close(g.release)
	wg.Wait()

	g.mu.Lock()
	defer g.mu.Unlock()
	for _, ev := range g.evals {
		switch ev.k {
		case 0: // dense rounds never carry sparse samples
			if ev.n > 2 {
				t.Errorf("dense evaluation saw %d samples", ev.n)
			}
		case 2: // the two k=2 singles may merge with each other only
			if ev.n > 2 {
				t.Errorf("k=2 evaluation saw %d samples", ev.n)
			}
		case 3:
			if ev.n != 1 {
				t.Errorf("k=3 evaluation saw %d samples", ev.n)
			}
		default:
			t.Errorf("evaluation with unexpected k=%d", ev.k)
		}
	}
}

// TestDispatcherTopKFailureIsolation checks that one poisoned sparse
// batch in a merged round only fails its own caller: the failed merge
// falls back to per-request evaluations.
func TestDispatcherTopKFailureIsolation(t *testing.T) {
	g := newGatedBackend()
	d, err := NewDispatcher(g.predict, DispatcherOptions{TopK: g.topkEval})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	sp0, want0 := g.newSparseBatch(5, 3, 1, 1)
	res0 := make(chan [][]dlog.TopKHit, 1)
	go func() {
		h, err := d.DoTopK(context.Background(), sp0, 1)
		if err != nil {
			t.Errorf("warm-up request: %v", err)
		}
		res0 <- h
	}()
	<-g.entered

	spA, wantA := g.newSparseBatch(5, 3, 2, 1)
	spP := g.poisonSparseBatch(5, 3, 1)
	spB, wantB := g.newSparseBatch(5, 3, 1, 1)
	var hitsA, hitsB [][]dlog.TopKHit
	var errA, errP, errB error
	var wg sync.WaitGroup
	for _, req := range []struct {
		sp   *core.SparseBatch
		hits *[][]dlog.TopKHit
		err  *error
	}{{spA, &hitsA, &errA}, {spP, nil, &errP}, {spB, &hitsB, &errB}} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h, err := d.DoTopK(context.Background(), req.sp, 1)
			if req.hits != nil {
				*req.hits = h
			}
			*req.err = err
		}()
	}
	waitFor(t, func() bool { return len(d.queue) == 3 })
	close(g.release)
	checkHits(t, "warm-up", <-res0, want0)
	wg.Wait()

	if errA != nil {
		t.Errorf("good client A failed alongside poisoned peer: %v", errA)
	} else {
		checkHits(t, "good client A", hitsA, wantA)
	}
	if errB != nil {
		t.Errorf("good client B failed alongside poisoned peer: %v", errB)
	} else {
		checkHits(t, "good client B", hitsB, wantB)
	}
	if errP == nil {
		t.Error("poisoned request succeeded")
	}
	// Backend saw: warm-up, the failed merge, and three single retries.
	if got := g.evalCount(); got != 5 {
		t.Errorf("backend evaluations = %d, want 5 (warm-up + failed merge + 3 retries)", got)
	}
}

// TestDispatcherRejectsMalformedSparseBatch checks the merge invariants
// are enforced at the door, before a bad batch can reach a round.
func TestDispatcherRejectsMalformedSparseBatch(t *testing.T) {
	f := newFakeBackend()
	d, err := NewDispatcher(f.predict, DispatcherOptions{TopK: f.topkEval})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	sp, _ := f.newSparseBatch(5, 3, 2, 1)
	if _, err := d.DoTopK(context.Background(), sp, 0); err == nil {
		t.Error("non-positive k accepted")
	}
	bad := *sp
	bad.N = 3 // claims more samples than it carries
	if _, err := d.DoTopK(context.Background(), &bad, 1); err == nil {
		t.Error("sample-count mismatch accepted")
	}
	bad = *sp
	bad.Features = 7 // geometry mismatch with the ciphertext matrix
	if _, err := d.DoTopK(context.Background(), &bad, 1); err == nil {
		t.Error("feature-count mismatch accepted")
	}
	if _, err := d.DoTopK(context.Background(), nil, 1); err == nil {
		t.Error("nil batch accepted")
	}

	// A dispatcher without a top-k evaluator refuses cleanly.
	d2, err := NewDispatcher(f.predict, DispatcherOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if _, err := d2.DoTopK(context.Background(), sp, 1); err == nil {
		t.Error("dispatcher without top-k evaluator accepted a sparse request")
	}
}

// TestDispatcherMixedHammer interleaves sparse and dense clients with
// mid-flight cancellations through one dispatcher, verifying per-sample
// demux on every response and that the dispatcher winds down without
// leaking goroutines. Run under -race via `make race`.
func TestDispatcherMixedHammer(t *testing.T) {
	f := newFakeBackend()
	d, err := NewDispatcher(f.predict, DispatcherOptions{MaxCoalescedSamples: 8, TopK: f.topkEval})
	if err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()

	const (
		goroutines = 16
		perG       = 25
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				n := 1 + (g+i)%3
				ctx := context.Background()
				var cancel context.CancelFunc
				if (g+i)%11 == 0 {
					ctx, cancel = context.WithCancel(ctx)
				}
				var err error
				if (g+i)%2 == 0 {
					k := 1 + g%3
					sp, want := f.newSparseBatch(4, 2, n, k)
					var hits [][]dlog.TopKHit
					if cancel != nil {
						cancel() // already-cancelled: must never corrupt a round
					}
					hits, err = d.DoTopK(ctx, sp, k)
					if err == nil {
						checkHits(t, "hammer sparse", hits, want)
					}
				} else {
					enc, want := f.newBatch(4, 2, n)
					var preds []int
					if cancel != nil {
						cancel()
					}
					preds, err = d.Do(ctx, enc)
					if err == nil {
						checkPreds(t, "hammer dense", preds, want)
					}
				}
				if err != nil && !errors.Is(err, context.Canceled) {
					t.Errorf("goroutine %d request %d: %v", g, i, err)
				}
			}
		}()
	}
	wg.Wait()
	st := d.Stats()
	if st.Requests == 0 || st.TopKRequests == 0 || st.Evals == 0 {
		t.Fatalf("stats = %+v, both kinds should have been served", st)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// The run loop and any per-round helpers must exit with the
	// dispatcher; poll because goroutine teardown is asynchronous.
	waitFor(t, func() bool { return runtime.NumGoroutine() <= base })
	t.Logf("mixed hammer: %d requests (%d top-k), %d samples (%d top-k), %d evals (max coalesced %d)",
		st.Requests, st.TopKRequests, st.Samples, st.TopKSamples, st.Evals, st.MaxCoalesced)
}

// echoTopK answers hits derived from sample position — enough to check
// demux across the wire without a fake-backend id registry.
func echoTopK(sp *core.SparseBatch, k int) ([][]dlog.TopKHit, error) {
	hits := make([][]dlog.TopKHit, sp.N)
	for j := range hits {
		hs := make([]dlog.TopKHit, k)
		for t := range hs {
			hs[t] = dlog.TopKHit{Index: t, Value: int64(j*100 + t)}
		}
		hits[j] = hs
	}
	return hits, nil
}

// TestClientConnPredictTopK exercises the full client → server → client
// top-k path over both negotiated codecs.
func TestClientConnPredictTopK(t *testing.T) {
	addr, srv := startPredictServer(t, echoPredict, DispatcherOptions{TopK: echoTopK})
	rng := rand.New(rand.NewSource(24))
	for _, codec := range []Codec{CodecBinary, CodecGob} {
		cc, err := DialCodec(addr, codec)
		if err != nil {
			t.Fatal(err)
		}
		sp := synthSparseBatch(rng, 6, 4, 2, 2)
		hits, err := cc.PredictTopK(context.Background(), sp, 3, 5*time.Second)
		if err != nil {
			t.Fatalf("%s: %v", codec, err)
		}
		if len(hits) != 2 || len(hits[0]) != 3 || len(hits[1]) != 3 {
			t.Fatalf("%s: bad hit shape %v", codec, hits)
		}
		if hits[1][2].Value != 102 || hits[1][2].Index != 2 {
			t.Fatalf("%s: demux mangled: %+v", codec, hits[1][2])
		}
		_ = cc.Close()
	}
	if srv.Stats().Panics != 0 {
		t.Fatalf("panics = %d", srv.Stats().Panics)
	}
}

// TestPredictionServerSurvivesHostileSparseFrame sends each hostile
// sparse body over a negotiated binary connection: every one must cost
// exactly one bfErr frame — never a panic — and the connection must keep
// serving afterwards.
func TestPredictionServerSurvivesHostileSparseFrame(t *testing.T) {
	addr, srv := startPredictServer(t, echoPredict, DispatcherOptions{TopK: echoTopK})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := negotiateBinary(conn); err != nil {
		t.Fatal(err)
	}
	bc := newBinConn(conn)

	id := uint64(1)
	for name, hostile := range hostileSparseBodies() {
		err := bc.writeFrame(bfPredictTopK, id, func(b []byte) ([]byte, error) {
			return append(b, hostile...), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		body := expectFrame(t, bc, bfErr, id)
		if msg, _, err := decodeErrBody(body); err != nil || !strings.Contains(msg, "decoding sparse prediction batch") {
			t.Fatalf("%s: error frame %q, %v", name, msg, err)
		}
		id++
	}

	// The same connection still serves a valid top-k request and a valid
	// dense prediction.
	rng := rand.New(rand.NewSource(25))
	sp := synthSparseBatch(rng, 6, 4, 1, 2)
	err = bc.writeFrame(bfPredictTopK, id, func(b []byte) ([]byte, error) {
		return appendSparseBatch(b, 2, sp)
	})
	if err != nil {
		t.Fatal(err)
	}
	body := expectFrame(t, bc, bfTopK, id)
	hits, err := decodeTopKHits(body)
	if err != nil || len(hits) != 1 || len(hits[0]) != 2 {
		t.Fatalf("top-k after hostile frames: %v, %v", hits, err)
	}
	id++
	enc := synthBatch(rng, 3, 2, 2, false)
	err = bc.writeFrame(bfPredict, id, func(b []byte) ([]byte, error) {
		return appendEncryptedBatch(b, enc)
	})
	if err != nil {
		t.Fatal(err)
	}
	body = expectFrame(t, bc, bfPreds, id)
	if preds, err := decodePreds(body); err != nil || len(preds) != 2 {
		t.Fatalf("dense prediction after hostile frames: %v, %v", preds, err)
	}

	if got := srv.Stats().Panics; got != 0 {
		t.Fatalf("hostile geometry must be an error, not a recovered panic (%d)", got)
	}
}

// TestPredictionServerTopKWithoutEvaluator pins the refusal contract: a
// server whose dispatcher has no top-k evaluator answers sparse requests
// with a per-request error, and the connection keeps serving.
func TestPredictionServerTopKWithoutEvaluator(t *testing.T) {
	addr, srv := startPredictServer(t, echoPredict, DispatcherOptions{})
	cc, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	rng := rand.New(rand.NewSource(26))
	sp := synthSparseBatch(rng, 4, 2, 1, 1)
	if _, err := cc.PredictTopK(context.Background(), sp, 1, 5*time.Second); err == nil {
		t.Fatal("server without a top-k evaluator served a sparse request")
	} else if errors.Is(err, ErrBusy) {
		t.Fatalf("refusal must not be retryable: %v", err)
	}
	preds, err := cc.Predict(context.Background(), synthBatch(rng, 3, 2, 1, false), 5*time.Second)
	if err != nil || len(preds) != 1 {
		t.Fatalf("dense prediction after top-k refusal: %v, %v", preds, err)
	}
	if srv.Stats().Panics != 0 {
		t.Fatalf("panics = %d", srv.Stats().Panics)
	}
}
