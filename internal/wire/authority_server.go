package wire

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"math/big"
	"net"
	"sync"

	"cryptonn/internal/authority"
)

// AuthorityServer exposes an authority's key services over TCP. It is the
// network face of the trusted third party in Fig. 1.
type AuthorityServer struct {
	auth *authority.Authority
	log  *log.Logger

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	closed   bool
}

// NewAuthorityServer wraps an authority; logger may be nil for silence.
func NewAuthorityServer(auth *authority.Authority, logger *log.Logger) (*AuthorityServer, error) {
	if auth == nil {
		return nil, errors.New("wire: nil authority")
	}
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	return &AuthorityServer{
		auth:  auth,
		log:   logger,
		conns: make(map[net.Conn]struct{}),
	}, nil
}

// Serve accepts connections on l until the context is cancelled or Close
// is called, answering key requests sequentially per connection. It always
// returns a non-nil error (net.ErrClosed after a clean shutdown).
func (s *AuthorityServer) Serve(ctx context.Context, l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.listener = l
	s.mu.Unlock()

	stop := context.AfterFunc(ctx, func() { _ = s.Close() })
	defer stop()

	for {
		conn, err := l.Accept()
		if err != nil {
			s.wg.Wait()
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			closeLogged(conn, s.log)
			s.wg.Wait()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops accepting and closes every live connection.
func (s *AuthorityServer) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if s.listener != nil {
		err = s.listener.Close()
	}
	for c := range s.conns {
		closeLogged(c, s.log)
	}
	return err
}

func (s *AuthorityServer) handle(conn net.Conn) {
	defer func() {
		closeLogged(conn, s.log)
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		var req Request
		if err := ReadMsg(conn, &req); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.log.Printf("authority: read from %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		resp := s.dispatch(&req)
		if err := WriteMsg(conn, resp); err != nil {
			s.log.Printf("authority: write to %s: %v", conn.RemoteAddr(), err)
			return
		}
	}
}

func (s *AuthorityServer) dispatch(req *Request) *Response {
	switch req.Kind {
	case KindFEIPPublic:
		mpk, err := s.auth.FEIPPublic(req.Eta)
		if err != nil {
			return &Response{Err: err.Error()}
		}
		return &Response{
			GroupP: mpk.Params.P, GroupQ: mpk.Params.Q, GroupG: mpk.Params.G,
			H: mpk.H,
		}
	case KindFEBOPublic:
		pk, err := s.auth.FEBOPublic()
		if err != nil {
			return &Response{Err: err.Error()}
		}
		return &Response{
			GroupP: pk.Params.P, GroupQ: pk.Params.Q, GroupG: pk.Params.G,
			H: []*big.Int{pk.H},
		}
	case KindIPKey:
		fk, err := s.auth.IPKey(req.Y)
		if err != nil {
			return &Response{Err: err.Error()}
		}
		return &Response{K: fk.K}
	case KindIPKeyBatch:
		if len(req.YBatch) == 0 {
			return &Response{Err: "wire: empty key batch"}
		}
		ks := make([]*big.Int, len(req.YBatch))
		for i, y := range req.YBatch {
			fk, err := s.auth.IPKey(y)
			if err != nil {
				return &Response{Err: fmt.Sprintf("vector %d: %v", i, err)}
			}
			ks[i] = fk.K
		}
		return &Response{KBatch: ks}
	case KindBOKey:
		op, err := opFromInt(req.Op)
		if err != nil {
			return &Response{Err: err.Error()}
		}
		fk, err := s.auth.BOKey(req.Cmt, op, req.Scalar)
		if err != nil {
			return &Response{Err: err.Error()}
		}
		return &Response{K: fk.K}
	case KindBOKeyBatch:
		op, err := opFromInt(req.Op)
		if err != nil {
			return &Response{Err: err.Error()}
		}
		if len(req.Cmts) == 0 || len(req.Cmts) != len(req.Scalars) {
			return &Response{Err: fmt.Sprintf("wire: %d commitments for %d scalars", len(req.Cmts), len(req.Scalars))}
		}
		ks := make([]*big.Int, len(req.Cmts))
		for i, cmt := range req.Cmts {
			fk, err := s.auth.BOKey(cmt, op, req.Scalars[i])
			if err != nil {
				return &Response{Err: fmt.Sprintf("element %d: %v", i, err)}
			}
			ks[i] = fk.K
		}
		return &Response{KBatch: ks}
	default:
		return &Response{Err: fmt.Sprintf("wire: authority cannot serve %s", req.Kind)}
	}
}

func closeLogged(c io.Closer, l *log.Logger) {
	if err := c.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
		l.Printf("wire: close: %v", err)
	}
}
