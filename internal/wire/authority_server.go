package wire

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"math/big"
	"net"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"cryptonn/internal/authority"
)

// DefaultMaxEta bounds the FEIP dimension (and batch lengths) a server
// accepts from the network. FEIPPublic allocates and exponentiates η group
// elements, so an unchecked client-supplied η is an allocation DoS; the
// default admits any realistic layer width while bounding a hostile peer
// to ~megabyte-scale work.
const DefaultMaxEta = 1 << 20

// ErrLimitExceeded reports a request whose dimension or batch size exceeds
// the server's configured cap. It is permanent, not backpressure: clients
// must not retry.
var ErrLimitExceeded = errors.New("wire: request exceeds server limits")

// AuthorityServerOptions tune server-side guard rails.
type AuthorityServerOptions struct {
	// MaxEta caps the FEIP dimension η, per-request vector lengths and
	// batch element counts. Zero means DefaultMaxEta; negative disables
	// the cap.
	MaxEta int
}

func (o AuthorityServerOptions) maxEta() int {
	switch {
	case o.MaxEta == 0:
		return DefaultMaxEta
	case o.MaxEta < 0:
		return int(^uint(0) >> 1)
	default:
		return o.MaxEta
	}
}

// AuthorityServerStats counts server-side incidents.
type AuthorityServerStats struct {
	// Served is the number of requests dispatched to the key services
	// (everything that passed the limit guard, whatever its outcome).
	Served uint64
	// Panics is the number of request dispatches that panicked and were
	// recovered (the connection survived and got an error response).
	Panics uint64
	// Rejected is the number of requests refused by the MaxEta guard.
	Rejected uint64
}

// AuthorityServer exposes an authority's key services over TCP. It is the
// network face of the trusted third party in Fig. 1 — or, in node mode, of
// one member of the threshold authority cluster, serving partial keys that
// only a T-quorum can combine.
type AuthorityServer struct {
	auth   *authority.Authority // single-authority mode
	node   *authority.Node      // cluster-node mode
	log    *log.Logger
	maxEta int

	served   atomic.Uint64
	panics   atomic.Uint64
	rejected atomic.Uint64

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	closed   bool
}

// NewAuthorityServer wraps an authority with default options; logger may
// be nil for silence.
func NewAuthorityServer(auth *authority.Authority, logger *log.Logger) (*AuthorityServer, error) {
	return NewAuthorityServerOpts(auth, logger, AuthorityServerOptions{})
}

// NewAuthorityServerOpts wraps an authority; logger may be nil for silence.
func NewAuthorityServerOpts(auth *authority.Authority, logger *log.Logger, opts AuthorityServerOptions) (*AuthorityServer, error) {
	if auth == nil {
		return nil, errors.New("wire: nil authority")
	}
	return newServer(auth, nil, logger, opts), nil
}

// NewNodeServer exposes one threshold cluster node over the same protocol:
// public-key kinds answer with the cluster's joint keys, and the partial-key
// kinds serve this node's shares. Logger may be nil for silence.
func NewNodeServer(node *authority.Node, logger *log.Logger, opts AuthorityServerOptions) (*AuthorityServer, error) {
	if node == nil {
		return nil, errors.New("wire: nil cluster node")
	}
	return newServer(nil, node, logger, opts), nil
}

func newServer(auth *authority.Authority, node *authority.Node, logger *log.Logger, opts AuthorityServerOptions) *AuthorityServer {
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	return &AuthorityServer{
		auth:   auth,
		node:   node,
		log:    logger,
		maxEta: opts.maxEta(),
		conns:  make(map[net.Conn]struct{}),
	}
}

// Stats returns a snapshot of server incident counters.
func (s *AuthorityServer) Stats() AuthorityServerStats {
	return AuthorityServerStats{
		Served:   s.served.Load(),
		Panics:   s.panics.Load(),
		Rejected: s.rejected.Load(),
	}
}

// Serve accepts connections on l until the context is cancelled or Close
// is called, answering key requests sequentially per connection. It always
// returns a non-nil error (net.ErrClosed after a clean shutdown).
func (s *AuthorityServer) Serve(ctx context.Context, l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.listener = l
	s.mu.Unlock()

	stop := context.AfterFunc(ctx, func() { _ = s.Close() })
	defer stop()

	for {
		conn, err := l.Accept()
		if err != nil {
			s.wg.Wait()
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			closeLogged(conn, s.log)
			s.wg.Wait()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops accepting and closes every live connection.
func (s *AuthorityServer) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if s.listener != nil {
		err = s.listener.Close()
	}
	for c := range s.conns {
		closeLogged(c, s.log)
	}
	return err
}

func (s *AuthorityServer) handle(conn net.Conn) {
	defer func() {
		closeLogged(conn, s.log)
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		var req Request
		if err := ReadMsg(conn, &req); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.log.Printf("authority: read from %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		resp := s.safeDispatch(&req)
		if err := WriteMsg(conn, resp); err != nil {
			s.log.Printf("authority: write to %s: %v", conn.RemoteAddr(), err)
			return
		}
	}
}

// safeDispatch guards dispatch with the request-size limits and a panic
// recovery barrier: a panicking request (malformed input reaching an
// arithmetic edge, a bug in a key path) downs neither the connection nor
// the server — the client gets a non-retryable error response and the
// incident is counted and logged.
func (s *AuthorityServer) safeDispatch(req *Request) (resp *Response) {
	if err := s.checkLimits(req); err != nil {
		s.rejected.Add(1)
		return &Response{Err: err.Error()}
	}
	s.served.Add(1)
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			s.log.Printf("authority: panic serving %s: %v\n%s", req.Kind, r, debug.Stack())
			resp = &Response{Err: fmt.Sprintf("wire: internal error serving %s", req.Kind)}
		}
	}()
	return s.dispatch(req)
}

// checkLimits enforces the MaxEta cap on every client-controlled dimension
// and batch length before any allocation happens on its behalf.
func (s *AuthorityServer) checkLimits(req *Request) error {
	over := func(what string, n int) error {
		return fmt.Errorf("%w: %s %d > max %d", ErrLimitExceeded, what, n, s.maxEta)
	}
	switch req.Kind {
	case KindFEIPPublic:
		if req.Eta > s.maxEta {
			return over("η", req.Eta)
		}
	case KindIPKey:
		if len(req.Y) > s.maxEta {
			return over("|y|", len(req.Y))
		}
	case KindIPKeySparse:
		if req.Eta > s.maxEta {
			return over("η", req.Eta)
		}
		if len(req.Idx) > s.maxEta {
			return over("support size", len(req.Idx))
		}
	case KindIPKeyBatch, KindPartialIPKeyBatch:
		if len(req.YBatch) > s.maxEta {
			return over("batch size", len(req.YBatch))
		}
		for _, y := range req.YBatch {
			if len(y) > s.maxEta {
				return over("|y|", len(y))
			}
		}
	case KindBOKeyBatch, KindPartialBOKeyBatch:
		if len(req.Cmts) > s.maxEta {
			return over("batch size", len(req.Cmts))
		}
	}
	return nil
}

func (s *AuthorityServer) dispatch(req *Request) *Response {
	if s.node != nil {
		return s.dispatchNode(req)
	}
	switch req.Kind {
	case KindFEIPPublic:
		mpk, err := s.auth.FEIPPublic(req.Eta)
		if err != nil {
			return &Response{Err: err.Error()}
		}
		return &Response{
			GroupP: mpk.Params.P, GroupQ: mpk.Params.Q, GroupG: mpk.Params.G,
			H: mpk.H,
		}
	case KindFEBOPublic:
		pk, err := s.auth.FEBOPublic()
		if err != nil {
			return &Response{Err: err.Error()}
		}
		return &Response{
			GroupP: pk.Params.P, GroupQ: pk.Params.Q, GroupG: pk.Params.G,
			H: []*big.Int{pk.H},
		}
	case KindIPKey:
		fk, err := s.auth.IPKey(req.Y)
		if err != nil {
			return &Response{Err: err.Error()}
		}
		return &Response{K: fk.K}
	case KindIPKeySparse:
		fk, err := s.auth.IPKeySparse(req.Eta, req.Idx, req.Y)
		if err != nil {
			return &Response{Err: err.Error()}
		}
		return &Response{K: fk.K}
	case KindIPKeyBatch:
		if len(req.YBatch) == 0 {
			return &Response{Err: "wire: empty key batch"}
		}
		ks := make([]*big.Int, len(req.YBatch))
		for i, y := range req.YBatch {
			fk, err := s.auth.IPKey(y)
			if err != nil {
				return &Response{Err: fmt.Sprintf("vector %d: %v", i, err)}
			}
			ks[i] = fk.K
		}
		return &Response{KBatch: ks}
	case KindBOKey:
		op, err := opFromInt(req.Op)
		if err != nil {
			return &Response{Err: err.Error()}
		}
		fk, err := s.auth.BOKey(req.Cmt, op, req.Scalar)
		if err != nil {
			return &Response{Err: err.Error()}
		}
		return &Response{K: fk.K}
	case KindBOKeyBatch:
		op, err := opFromInt(req.Op)
		if err != nil {
			return &Response{Err: err.Error()}
		}
		if len(req.Cmts) == 0 || len(req.Cmts) != len(req.Scalars) {
			return &Response{Err: fmt.Sprintf("wire: %d commitments for %d scalars", len(req.Cmts), len(req.Scalars))}
		}
		ks := make([]*big.Int, len(req.Cmts))
		for i, cmt := range req.Cmts {
			fk, err := s.auth.BOKey(cmt, op, req.Scalars[i])
			if err != nil {
				return &Response{Err: fmt.Sprintf("element %d: %v", i, err)}
			}
			ks[i] = fk.K
		}
		return &Response{KBatch: ks}
	default:
		return &Response{Err: fmt.Sprintf("wire: authority cannot serve %s", req.Kind)}
	}
}

// dispatchNode answers requests in cluster-node mode. Public-key kinds are
// shared with single-authority mode (the joint keys are ordinary public
// keys); whole-key kinds are refused — a node structurally cannot derive
// one — and the partial-key kinds serve this node's share arithmetic.
func (s *AuthorityServer) dispatchNode(req *Request) *Response {
	nd := s.node
	switch req.Kind {
	case KindClusterInfo:
		pk, err := nd.FEBOPublic()
		if err != nil {
			return &Response{Err: err.Error()}
		}
		shares, err := nd.FEBOSharePublics()
		if err != nil {
			return &Response{Err: err.Error()}
		}
		p := nd.Params()
		return &Response{
			GroupP: p.P, GroupQ: p.Q, GroupG: p.G,
			H:         []*big.Int{pk.H},
			HShares:   shares,
			NodeIndex: nd.Index(),
			Threshold: nd.Threshold(),
			Nodes:     nd.ClusterSize(),
		}
	case KindFEIPPublic:
		mpk, err := nd.FEIPPublic(req.Eta)
		if err != nil {
			return &Response{Err: err.Error()}
		}
		p := nd.Params()
		return &Response{
			GroupP: p.P, GroupQ: p.Q, GroupG: p.G,
			H: mpk.H, NodeIndex: nd.Index(),
		}
	case KindFEBOPublic:
		pk, err := nd.FEBOPublic()
		if err != nil {
			return &Response{Err: err.Error()}
		}
		p := nd.Params()
		return &Response{
			GroupP: p.P, GroupQ: p.Q, GroupG: p.G,
			H: []*big.Int{pk.H}, NodeIndex: nd.Index(),
		}
	case KindPartialIPKeyBatch:
		if len(req.YBatch) == 0 {
			return &Response{Err: "wire: empty key batch"}
		}
		ks, err := nd.PartialIPKeyBatch(req.YBatch)
		if err != nil {
			return &Response{Err: err.Error()}
		}
		return &Response{KBatch: ks, NodeIndex: nd.Index()}
	case KindPartialBOKeyBatch:
		op, err := opFromInt(req.Op)
		if err != nil {
			return &Response{Err: err.Error()}
		}
		if len(req.Cmts) == 0 || len(req.Cmts) != len(req.Scalars) {
			return &Response{Err: fmt.Sprintf("wire: %d commitments for %d scalars", len(req.Cmts), len(req.Scalars))}
		}
		ks, proof, err := nd.PartialBOKeyBatch(req.Cmts, op, req.Scalars)
		if err != nil {
			return &Response{Err: err.Error()}
		}
		return &Response{KBatch: ks, NodeIndex: nd.Index(), ProofC: proof.C, ProofZ: proof.Z}
	case KindIPKey, KindIPKeySparse, KindIPKeyBatch, KindBOKey, KindBOKeyBatch:
		return &Response{Err: fmt.Sprintf("wire: cluster node holds only a key share; %s requires a T-quorum", req.Kind)}
	default:
		return &Response{Err: fmt.Sprintf("wire: authority node cannot serve %s", req.Kind)}
	}
}

func closeLogged(c io.Closer, l *log.Logger) {
	if err := c.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
		l.Printf("wire: close: %v", err)
	}
}
