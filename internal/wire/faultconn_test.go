package wire_test

import (
	"errors"
	"net"
	"testing"
	"time"

	"cryptonn/internal/wire"
)

// tcpPair returns two ends of a loopback TCP connection.
func tcpPair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := l.Accept()
		ch <- res{c, err}
	}()
	client, err = net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { client.Close(); r.c.Close() })
	return client, r.c
}

func TestFaultConnDropHonorsReadDeadline(t *testing.T) {
	client, _ := tcpPair(t)
	fc := wire.NewFaultConn(client, wire.FaultPlan{Mode: wire.FaultDrop})
	if err := fc.SetReadDeadline(time.Now().Add(60 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := fc.Read(make([]byte, 8))
	if !wire.IsTimeout(err) {
		t.Fatalf("want timeout, got %v", err)
	}
	if d := time.Since(start); d < 40*time.Millisecond || d > 2*time.Second {
		t.Fatalf("deadline fired after %v", d)
	}
}

func TestFaultConnDropWakesOnDeadlineSlam(t *testing.T) {
	client, _ := tcpPair(t)
	fc := wire.NewFaultConn(client, wire.FaultPlan{Mode: wire.FaultDrop})
	go func() {
		time.Sleep(30 * time.Millisecond)
		// The cancellation path used by the quorum client: slam the
		// deadline into the past to abort an in-flight read.
		_ = fc.SetDeadline(time.Unix(1, 0))
	}()
	start := time.Now()
	_, err := fc.Read(make([]byte, 8))
	if !wire.IsTimeout(err) {
		t.Fatalf("want timeout after slam, got %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("slammed read still took %v", d)
	}
}

func TestFaultConnDropWakesOnClose(t *testing.T) {
	client, _ := tcpPair(t)
	fc := wire.NewFaultConn(client, wire.FaultPlan{Mode: wire.FaultDrop})
	go func() {
		time.Sleep(30 * time.Millisecond)
		_ = fc.Close()
	}()
	if _, err := fc.Read(make([]byte, 8)); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("want net.ErrClosed, got %v", err)
	}
}

func TestFaultConnDropLiesAboutWrites(t *testing.T) {
	client, server := tcpPair(t)
	fc := wire.NewFaultConn(client, wire.FaultPlan{Mode: wire.FaultDrop})
	n, err := fc.Write([]byte("hello"))
	if err != nil || n != 5 {
		t.Fatalf("dropped write reported (%d, %v)", n, err)
	}
	// Nothing must actually arrive.
	_ = server.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	if n, err := server.Read(make([]byte, 8)); !wire.IsTimeout(err) {
		t.Fatalf("peer received %d bytes (err %v) from a dropped write", n, err)
	}
}

func TestFaultConnTruncateBreaksFraming(t *testing.T) {
	client, server := tcpPair(t)
	fc := wire.NewFaultConn(client, wire.FaultPlan{Mode: wire.FaultTruncate})
	n, err := fc.Write([]byte("hello"))
	if err != nil || n != 5 {
		t.Fatalf("truncated write reported (%d, %v)", n, err)
	}
	buf := make([]byte, 8)
	_ = server.SetReadDeadline(time.Now().Add(time.Second))
	rn, err := server.Read(buf)
	if err != nil || rn != 1 || buf[0] != 'h' {
		t.Fatalf("peer got %d bytes (%q, %v); want exactly the first byte", rn, buf[:rn], err)
	}
}

func TestFaultConnResetHardFails(t *testing.T) {
	client, _ := tcpPair(t)
	fc := wire.NewFaultConn(client, wire.FaultPlan{Mode: wire.FaultReset})
	if _, err := fc.Write([]byte("x")); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("want net.ErrClosed on reset write, got %v", err)
	}
	if _, err := fc.Read(make([]byte, 1)); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("want net.ErrClosed on reset read, got %v", err)
	}
}

func TestFaultConnAfterOpsPassesEarlyTraffic(t *testing.T) {
	client, server := tcpPair(t)
	fc := wire.NewFaultConn(client, wire.FaultPlan{Mode: wire.FaultDrop, AfterOps: 2})
	// First two operations pass through untouched.
	for i := 0; i < 2; i++ {
		if _, err := fc.Write([]byte{byte('a' + i)}); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 1)
		if _, err := server.Read(buf); err != nil || buf[0] != byte('a'+i) {
			t.Fatalf("op %d: %q, %v", i, buf, err)
		}
	}
	// Third op hits the armed fault: write is swallowed.
	if _, err := fc.Write([]byte("z")); err != nil {
		t.Fatal(err)
	}
	_ = server.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	if n, err := server.Read(make([]byte, 1)); !wire.IsTimeout(err) {
		t.Fatalf("armed drop leaked %d bytes (err %v)", n, err)
	}
}
