package wire

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"net"
	"sync"
	"time"

	"cryptonn/internal/febo"
	"cryptonn/internal/feip"
	"cryptonn/internal/securemat"
)

// KeyClientOptions tune a remote key service's I/O behaviour. The zero
// value preserves the historical semantics: block until the kernel gives
// up or the peer answers.
type KeyClientOptions struct {
	// Timeout bounds each request/response exchange. A hung or partitioned
	// authority then surfaces as a timeout error on the caller instead of a
	// goroutine wedged forever inside the client's critical section (which
	// would also wedge every other caller, since the connection serializes
	// exchanges). Zero means no deadline.
	Timeout time.Duration
	// Context, when non-nil, cancels in-flight and future exchanges: its
	// cancellation slams the connection deadline so blocked I/O returns
	// immediately, and the context error is reported to the caller.
	Context context.Context
}

// RemoteKeyService is a securemat.KeyService backed by a TCP connection to
// an AuthorityServer. It validates everything it receives (group
// parameters, group elements) and caches public keys, which are immutable
// for the lifetime of an authority.
//
// The connection carries one request at a time; concurrent callers are
// serialized. For high-throughput key traffic (the per-element FEBO
// requests of element-wise training steps) use NewKeyServicePool. Callers
// normally wrap either flavour in a securemat.Engine, whose session
// caches (public keys, per-weight-matrix function keys) sit above this
// client and keep repeated requests off the wire entirely.
type RemoteKeyService struct {
	mu   sync.Mutex
	conn net.Conn
	opts KeyClientOptions

	feipCache map[int]*feip.MasterPublicKey
	feboCache *febo.PublicKey
	trips     uint64
}

// DialKeyService connects to an authority at addr.
func DialKeyService(addr string) (*RemoteKeyService, error) {
	return DialKeyServiceOpts(addr, KeyClientOptions{})
}

// DialKeyServiceOpts connects to an authority at addr with I/O options.
func DialKeyServiceOpts(addr string, opts KeyClientOptions) (*RemoteKeyService, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dialing authority: %w", err)
	}
	return NewRemoteKeyServiceOpts(conn, opts), nil
}

// NewRemoteKeyService wraps an established connection.
func NewRemoteKeyService(conn net.Conn) *RemoteKeyService {
	return NewRemoteKeyServiceOpts(conn, KeyClientOptions{})
}

// NewRemoteKeyServiceOpts wraps an established connection with I/O options.
func NewRemoteKeyServiceOpts(conn net.Conn, opts KeyClientOptions) *RemoteKeyService {
	return &RemoteKeyService{conn: conn, opts: opts, feipCache: make(map[int]*feip.MasterPublicKey)}
}

// Close releases the connection.
func (c *RemoteKeyService) Close() error { return c.conn.Close() }

// RoundTrips reports the number of request/response exchanges performed
// (cache hits on public keys do not count). It quantifies what key-request
// batching saves: without it, an n-element element-wise step costs n round
// trips; with it, one.
func (c *RemoteKeyService) RoundTrips() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.trips
}

// roundTrip performs one request/response exchange. The connection
// serializes exchanges, so the whole write+read runs under the client
// mutex — which is exactly why the deadline and cancellation hooks below
// matter: without them a hung peer wedges not just this caller but every
// caller queued on the mutex behind it.
func (c *RemoteKeyService) roundTrip(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.trips++

	if d := c.opts.Timeout; d > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(d)); err != nil {
			return nil, fmt.Errorf("wire: arming exchange deadline: %w", err)
		}
		defer c.conn.SetDeadline(time.Time{}) //nolint:errcheck // disarm is best-effort
	}
	ctx := c.opts.Context
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("wire: authority exchange: %w", err)
		}
		// Cancellation slams the deadline into the past, unblocking any
		// in-flight read/write with a timeout error we translate below.
		stop := context.AfterFunc(ctx, func() {
			_ = c.conn.SetDeadline(time.Unix(1, 0))
		})
		defer stop()
	}
	wrapIO := func(err error) error {
		if ctx != nil && ctx.Err() != nil {
			return fmt.Errorf("wire: authority exchange: %w", ctx.Err())
		}
		return err
	}

	if err := WriteMsg(c.conn, req); err != nil {
		return nil, wrapIO(err)
	}
	var resp Response
	if err := ReadMsg(c.conn, &resp); err != nil {
		return nil, wrapIO(fmt.Errorf("wire: reading authority response: %w", err))
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("wire: authority refused %s: %s", req.Kind, resp.Err)
	}
	return &resp, nil
}

// FEIPPublic implements securemat.KeyService.
func (c *RemoteKeyService) FEIPPublic(eta int) (*feip.MasterPublicKey, error) {
	c.mu.Lock()
	cached, ok := c.feipCache[eta]
	c.mu.Unlock()
	if ok {
		return cached, nil
	}
	resp, err := c.roundTrip(&Request{Kind: KindFEIPPublic, Eta: eta})
	if err != nil {
		return nil, err
	}
	params, err := groupFromResponse(resp)
	if err != nil {
		return nil, err
	}
	mpk := &feip.MasterPublicKey{Params: params, H: resp.H}
	if err := mpk.Validate(); err != nil {
		return nil, fmt.Errorf("wire: authority sent invalid FEIP key: %w", err)
	}
	if mpk.Eta() != eta {
		return nil, fmt.Errorf("wire: FEIP key has dimension %d, want %d", mpk.Eta(), eta)
	}
	c.mu.Lock()
	c.feipCache[eta] = mpk
	c.mu.Unlock()
	return mpk, nil
}

// FEBOPublic implements securemat.KeyService.
func (c *RemoteKeyService) FEBOPublic() (*febo.PublicKey, error) {
	c.mu.Lock()
	cached := c.feboCache
	c.mu.Unlock()
	if cached != nil {
		return cached, nil
	}
	resp, err := c.roundTrip(&Request{Kind: KindFEBOPublic})
	if err != nil {
		return nil, err
	}
	params, err := groupFromResponse(resp)
	if err != nil {
		return nil, err
	}
	if len(resp.H) != 1 {
		return nil, errors.New("wire: FEBO response must carry exactly one element")
	}
	pk := &febo.PublicKey{Params: params, H: resp.H[0]}
	if err := pk.Validate(); err != nil {
		return nil, fmt.Errorf("wire: authority sent invalid FEBO key: %w", err)
	}
	c.mu.Lock()
	c.feboCache = pk
	c.mu.Unlock()
	return pk, nil
}

// IPKey implements securemat.KeyService.
func (c *RemoteKeyService) IPKey(y []int64) (*feip.FunctionKey, error) {
	resp, err := c.roundTrip(&Request{Kind: KindIPKey, Y: y})
	if err != nil {
		return nil, err
	}
	if resp.K == nil {
		return nil, errors.New("wire: empty IP key in response")
	}
	return &feip.FunctionKey{K: resp.K}, nil
}

// IPKeySparse implements securemat.SparseKeyService: it requests the key
// for an η-dimensional vector given in coordinate form, shipping only the
// support instead of η scalars. The support the authority observes is
// whatever the caller sends — the engine's padding policy (if enabled)
// has already widened it to a size-class bucket by the time it gets here.
func (c *RemoteKeyService) IPKeySparse(eta int, idx []int, vals []int64) (*feip.FunctionKey, error) {
	resp, err := c.roundTrip(&Request{Kind: KindIPKeySparse, Eta: eta, Idx: idx, Y: vals})
	if err != nil {
		return nil, err
	}
	if resp.K == nil {
		return nil, errors.New("wire: empty sparse IP key in response")
	}
	return &feip.FunctionKey{K: resp.K}, nil
}

// IPKeyBatch implements securemat.BatchKeyService: it requests the keys
// for every weight vector in one round trip — the whole first-layer key
// traffic of a training iteration (k×n scalars up, k keys down, §IV-B2)
// in a single frame instead of k.
func (c *RemoteKeyService) IPKeyBatch(ys [][]int64) ([]*feip.FunctionKey, error) {
	if len(ys) == 0 {
		return nil, errors.New("wire: empty key batch")
	}
	resp, err := c.roundTrip(&Request{Kind: KindIPKeyBatch, YBatch: ys})
	if err != nil {
		return nil, err
	}
	if len(resp.KBatch) != len(ys) {
		return nil, fmt.Errorf("wire: %d keys for %d vectors", len(resp.KBatch), len(ys))
	}
	keys := make([]*feip.FunctionKey, len(ys))
	for i, k := range resp.KBatch {
		if k == nil {
			return nil, fmt.Errorf("wire: empty IP key %d in batch response", i)
		}
		keys[i] = &feip.FunctionKey{K: k}
	}
	return keys, nil
}

// BOKey implements securemat.KeyService.
func (c *RemoteKeyService) BOKey(cmt *big.Int, op febo.Op, y int64) (*febo.FunctionKey, error) {
	resp, err := c.roundTrip(&Request{Kind: KindBOKey, Cmt: cmt, Op: int(op), Scalar: y})
	if err != nil {
		return nil, err
	}
	if resp.K == nil {
		return nil, errors.New("wire: empty BO key in response")
	}
	return &febo.FunctionKey{K: resp.K}, nil
}

// BOKeyBatch implements securemat.BatchKeyService: one frame for a whole
// matrix of per-commitment FEBO keys — the per-element round trips behind
// the paper's Fig. 3b/4b curves collapse into a single exchange.
func (c *RemoteKeyService) BOKeyBatch(cmts []*big.Int, op febo.Op, ys []int64) ([]*febo.FunctionKey, error) {
	if len(cmts) == 0 || len(cmts) != len(ys) {
		return nil, fmt.Errorf("wire: %d commitments for %d scalars", len(cmts), len(ys))
	}
	resp, err := c.roundTrip(&Request{Kind: KindBOKeyBatch, Cmts: cmts, Op: int(op), Scalars: ys})
	if err != nil {
		return nil, err
	}
	if len(resp.KBatch) != len(cmts) {
		return nil, fmt.Errorf("wire: %d keys for %d commitments", len(resp.KBatch), len(cmts))
	}
	keys := make([]*febo.FunctionKey, len(cmts))
	for i, k := range resp.KBatch {
		if k == nil {
			return nil, fmt.Errorf("wire: empty BO key %d in batch response", i)
		}
		keys[i] = &febo.FunctionKey{K: k}
	}
	return keys, nil
}

// Interface compliance check.
var _ securemat.KeyService = (*RemoteKeyService)(nil)
var _ securemat.SparseKeyService = (*RemoteKeyService)(nil)

// KeyServicePool fans key requests out over several authority
// connections, so the parallelized secure computation (many goroutines
// requesting keys) is not serialized on a single socket.
type KeyServicePool struct {
	conns []*RemoteKeyService
	next  chan int
}

// NewKeyServicePool dials n connections to addr.
func NewKeyServicePool(addr string, n int) (*KeyServicePool, error) {
	return NewKeyServicePoolOpts(addr, n, KeyClientOptions{})
}

// NewKeyServicePoolOpts dials n connections to addr, each with the given
// I/O options.
func NewKeyServicePoolOpts(addr string, n int, opts KeyClientOptions) (*KeyServicePool, error) {
	if n <= 0 {
		return nil, fmt.Errorf("wire: pool size must be positive, got %d", n)
	}
	p := &KeyServicePool{next: make(chan int, n)}
	for i := 0; i < n; i++ {
		c, err := DialKeyServiceOpts(addr, opts)
		if err != nil {
			closeErr := p.Close()
			if closeErr != nil {
				return nil, fmt.Errorf("wire: dialing pool member %d: %v (cleanup: %v)", i, err, closeErr)
			}
			return nil, fmt.Errorf("wire: dialing pool member %d: %w", i, err)
		}
		p.conns = append(p.conns, c)
		p.next <- i
	}
	return p, nil
}

// Close releases every pooled connection, returning the first error.
func (p *KeyServicePool) Close() error {
	var first error
	for _, c := range p.conns {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// acquire checks a connection out of the pool and returns it with a
// release function.
func (p *KeyServicePool) acquire() (*RemoteKeyService, func()) {
	i := <-p.next
	return p.conns[i], func() { p.next <- i }
}

// FEIPPublic implements securemat.KeyService.
func (p *KeyServicePool) FEIPPublic(eta int) (*feip.MasterPublicKey, error) {
	c, release := p.acquire()
	defer release()
	return c.FEIPPublic(eta)
}

// FEBOPublic implements securemat.KeyService.
func (p *KeyServicePool) FEBOPublic() (*febo.PublicKey, error) {
	c, release := p.acquire()
	defer release()
	return c.FEBOPublic()
}

// IPKey implements securemat.KeyService.
func (p *KeyServicePool) IPKey(y []int64) (*feip.FunctionKey, error) {
	c, release := p.acquire()
	defer release()
	return c.IPKey(y)
}

// IPKeySparse implements securemat.SparseKeyService.
func (p *KeyServicePool) IPKeySparse(eta int, idx []int, vals []int64) (*feip.FunctionKey, error) {
	c, release := p.acquire()
	defer release()
	return c.IPKeySparse(eta, idx, vals)
}

// IPKeyBatch implements securemat.BatchKeyService.
func (p *KeyServicePool) IPKeyBatch(ys [][]int64) ([]*feip.FunctionKey, error) {
	c, release := p.acquire()
	defer release()
	return c.IPKeyBatch(ys)
}

// BOKey implements securemat.KeyService.
func (p *KeyServicePool) BOKey(cmt *big.Int, op febo.Op, y int64) (*febo.FunctionKey, error) {
	c, release := p.acquire()
	defer release()
	return c.BOKey(cmt, op, y)
}

// BOKeyBatch implements securemat.BatchKeyService.
func (p *KeyServicePool) BOKeyBatch(cmts []*big.Int, op febo.Op, ys []int64) ([]*febo.FunctionKey, error) {
	c, release := p.acquire()
	defer release()
	return c.BOKeyBatch(cmts, op, ys)
}

// Interface compliance checks.
var (
	_ securemat.KeyService       = (*KeyServicePool)(nil)
	_ securemat.BatchKeyService  = (*KeyServicePool)(nil)
	_ securemat.SparseKeyService = (*KeyServicePool)(nil)
	_ securemat.BatchKeyService  = (*RemoteKeyService)(nil)
)
