package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/big"

	"cryptonn/internal/dlog"
	"cryptonn/internal/febo"
	"cryptonn/internal/group"
)

// MaxFrame caps a single protocol frame; encrypted MNIST-scale batches are
// large, so the cap is generous while still bounding a hostile peer.
const MaxFrame = 1 << 30

// ErrFrameTooLarge reports a frame exceeding MaxFrame.
var ErrFrameTooLarge = errors.New("wire: frame exceeds limit")

// MsgKind discriminates request frames.
type MsgKind int

// Request kinds.
const (
	KindFEIPPublic MsgKind = iota + 1
	KindFEBOPublic
	KindIPKey
	KindBOKey
	KindSubmitBatch
	KindSubmitConvBatch
	KindDone
	KindIPKeyBatch
	KindPredict
	KindBOKeyBatch
	KindClusterInfo
	KindPartialIPKeyBatch
	KindPartialBOKeyBatch
	KindPredictTopK
	KindIPKeySparse
)

// String names the kind for errors and logs.
func (k MsgKind) String() string {
	switch k {
	case KindFEIPPublic:
		return "feip-public"
	case KindFEBOPublic:
		return "febo-public"
	case KindIPKey:
		return "ip-key"
	case KindBOKey:
		return "bo-key"
	case KindSubmitBatch:
		return "submit-batch"
	case KindSubmitConvBatch:
		return "submit-conv-batch"
	case KindDone:
		return "done"
	case KindIPKeyBatch:
		return "ip-key-batch"
	case KindPredict:
		return "predict"
	case KindBOKeyBatch:
		return "bo-key-batch"
	case KindClusterInfo:
		return "cluster-info"
	case KindPartialIPKeyBatch:
		return "partial-ip-key-batch"
	case KindPartialBOKeyBatch:
		return "partial-bo-key-batch"
	case KindPredictTopK:
		return "predict-topk"
	case KindIPKeySparse:
		return "ip-key-sparse"
	default:
		return fmt.Sprintf("MsgKind(%d)", int(k))
	}
}

// Request is the single request envelope; Kind selects which fields are
// meaningful.
type Request struct {
	Kind MsgKind
	// Eta is the FEIP dimension (KindFEIPPublic).
	Eta int
	// Y is the weight vector (KindIPKey), or the support values of a
	// coordinate-form key request (KindIPKeySparse, paired with Idx).
	Y []int64
	// Idx carries the sorted support indices of a coordinate-form key
	// request (KindIPKeySparse): the requested key is for the η-dimensional
	// vector equal to Y on Idx and zero elsewhere. Eta carries η.
	Idx []int
	// TopK is the number of (label, value) pairs requested per sample
	// (KindPredictTopK).
	TopK int
	// YBatch carries several weight vectors in one frame
	// (KindIPKeyBatch) — one round trip for a whole weight matrix
	// instead of one per row.
	YBatch [][]int64
	// Cmt, Op, Scalar parameterize FEBO key requests (KindBOKey).
	Cmt    *big.Int
	Op     int
	Scalar int64
	// Cmts and Scalars carry a whole matrix of FEBO key requests for one
	// operation (KindBOKeyBatch), flattened row-major and paired by
	// index. This collapses Algorithm 1's per-element key round trips —
	// the dominant protocol cost of secure element-wise computation —
	// into a single frame.
	Cmts    []*big.Int
	Scalars []int64
	// Batch carries an encrypted batch (KindSubmitBatch); ConvBatch a
	// convolutional one (KindSubmitConvBatch). They are gob-encoded
	// payloads to keep this package free of import cycles with
	// internal/core.
	Payload []byte
}

// Response is the single response envelope.
type Response struct {
	// Err is non-empty on failure; other fields are then meaningless.
	Err string
	// Retryable marks a failure as transient server-side backpressure
	// (the coalescing dispatcher's queue was full): the request was
	// rejected unseen and the client should back off and retry. Clients
	// observe it as ErrBusy from RequestPrediction.
	Retryable bool
	// Group carries group parameters for public-key responses.
	GroupP, GroupQ, GroupG *big.Int
	// H carries h_i (FEIP) or h (FEBO).
	H []*big.Int
	// K carries a derived function key.
	K *big.Int
	// KBatch carries the derived keys of a KindIPKeyBatch request — or the
	// partial keys of a partial-key batch — in request order.
	KBatch []*big.Int
	// Preds carries per-sample predicted (label-mapped) classes for a
	// KindPredict request.
	Preds []int
	// TopK carries, per sample of a KindPredictTopK request, the k largest
	// logits as descending (label index, fixed-point value) pairs.
	TopK [][]dlog.TopKHit
	// NodeIndex, Threshold and Nodes identify the answering threshold
	// cluster node (KindClusterInfo and partial-key responses).
	NodeIndex int64
	Threshold int
	Nodes     int
	// HShares carries the cluster's FEBO public share commitments
	// A_j = g^{s^(j)}, indexed by node (KindClusterInfo). Clients verify
	// partial FEBO keys' DLEQ proofs against these.
	HShares []*big.Int
	// ProofC, ProofZ carry the batched Chaum–Pedersen proof accompanying a
	// KindPartialBOKeyBatch response.
	ProofC, ProofZ *big.Int
}

// WriteMsg writes one length-prefixed gob frame.
func WriteMsg(w io.Writer, v any) error {
	frame, err := encodeFrame(v)
	if err != nil {
		return err
	}
	return writeFrame(w, frame)
}

// encodeFrame serializes v into a complete header+body frame. Frames are
// self-contained (each carries its own gob stream), so one encoded frame
// can be written to many connections — the quorum client encodes a
// partial-key request once for its whole fan-out.
func encodeFrame(v any) ([]byte, error) {
	frame := frameBuffer{buf: make([]byte, 8)}
	if err := gob.NewEncoder(&frame).Encode(v); err != nil {
		return nil, fmt.Errorf("wire: encoding frame: %w", err)
	}
	body := len(frame.buf) - 8
	if body > MaxFrame {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, body)
	}
	binary.BigEndian.PutUint64(frame.buf[:8], uint64(body))
	return frame.buf, nil
}

// writeFrame writes a frame produced by encodeFrame.
func writeFrame(w io.Writer, frame []byte) error {
	if _, err := w.Write(frame); err != nil {
		return fmt.Errorf("wire: writing frame: %w", err)
	}
	return nil
}

// ReadMsg reads one length-prefixed gob frame into v.
func ReadMsg(r io.Reader, v any) error {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err // io.EOF passes through for clean close detection
	}
	return readMsgAfterHeader(r, hdr, v)
}

// readMsgAfterHeader finishes reading a gob frame whose 8-byte length
// header was already consumed — servers sniff those bytes for the binary
// codec hello (codec.go) before falling back to the gob path.
func readMsgAfterHeader(r io.Reader, hdr [8]byte, v any) error {
	n := binary.BigEndian.Uint64(hdr[:])
	if n > MaxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return fmt.Errorf("wire: reading frame body: %w", err)
	}
	if err := gob.NewDecoder(bytes.NewReader(buf)).Decode(v); err != nil {
		return fmt.Errorf("wire: decoding frame: %w", err)
	}
	return nil
}

type frameBuffer struct{ buf []byte }

func (f *frameBuffer) Write(p []byte) (int, error) {
	f.buf = append(f.buf, p...)
	return len(p), nil
}

// groupFromResponse reconstructs and validates group parameters from a
// response.
func groupFromResponse(resp *Response) (*group.Params, error) {
	p := &group.Params{P: resp.GroupP, Q: resp.GroupQ, G: resp.GroupG}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("wire: peer sent invalid group: %w", err)
	}
	return p, nil
}

// opFromInt validates a wire-encoded FEBO operation.
func opFromInt(v int) (febo.Op, error) {
	op := febo.Op(v)
	if !op.Valid() {
		return 0, fmt.Errorf("wire: invalid FEBO op %d", v)
	}
	return op, nil
}
