package wire

// QuorumKeyService: the client side of the threshold authority cluster.
// It implements securemat.KeyService / BatchKeyService against N node
// servers (NewNodeServer), any T of which suffice:
//
//   - requests fan out to every node concurrently with per-node I/O
//     deadlines; the first T valid partial answers win,
//   - stragglers and failed nodes are retried with jittered exponential
//     backoff up to a per-request attempt budget,
//   - FEIP keys are combined by Lagrange interpolation and verified
//     against the joint master public key with one random-linear-
//     combination check per request (g^{Σ e_v·k_v} == Π h_i^{Σ e_v·y_v,i});
//     if the first T-subset fails the check, other subsets are searched,
//     isolating a corrupted node without a per-key blame protocol,
//   - FEBO partials carry batched Chaum–Pedersen DLEQ proofs checked
//     against each node's public share commitment before the partial is
//     admitted to the combination (the combined FEBO key cannot be checked
//     against the joint public key — that would be a DDH instance),
//   - cluster configuration at bootstrap and joint FEIP public keys are
//     quorum reads: accepted only once T nodes serve them identically, so
//     a minority of compromised nodes cannot hand the client an
//     attacker-generated key to encrypt under.
//
// The service never sees a master secret and no single node can produce a
// whole function key: compromise of up to T−1 nodes reveals nothing, and
// failure of up to N−T nodes costs only retries.

import (
	"context"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log"
	"math/big"
	mrand "math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cryptonn/internal/febo"
	"cryptonn/internal/feip"
	"cryptonn/internal/group"
	"cryptonn/internal/securemat"
	"cryptonn/internal/thresh"
)

// ErrQuorum reports that fewer than T nodes produced valid partial keys
// within the attempt budget.
var ErrQuorum = errors.New("wire: quorum not reached")

// QuorumOptions tune the quorum client's failure handling. The zero value
// gets conservative defaults.
type QuorumOptions struct {
	// Timeout bounds each per-node request/response exchange (including
	// dial). Default 5s.
	Timeout time.Duration
	// RetryBase is the first backoff step; it doubles per attempt with
	// ±50% jitter. Default 50ms.
	RetryBase time.Duration
	// RetryMax caps the backoff step. Default 2s.
	RetryMax time.Duration
	// MaxAttempts bounds exchanges per node per request. Default 3.
	MaxAttempts int
	// HedgeDelay is how long a request waits on its T primary nodes before
	// hedging to the standby nodes. Failed primaries escalate immediately;
	// the delay only gates hedging against merely-slow ones. Contacting
	// exactly T nodes on the happy path keeps quorum overhead near T× a
	// single authority instead of N×. Default 25ms.
	HedgeDelay time.Duration
	// Logger receives per-node failure notes; nil for silence.
	Logger *log.Logger
}

func (o QuorumOptions) withDefaults() QuorumOptions {
	if o.Timeout <= 0 {
		o.Timeout = 5 * time.Second
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 50 * time.Millisecond
	}
	if o.RetryMax <= 0 {
		o.RetryMax = 2 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.HedgeDelay <= 0 {
		o.HedgeDelay = 25 * time.Millisecond
	}
	if o.Logger == nil {
		o.Logger = log.New(io.Discard, "", 0)
	}
	return o
}

// quorumNode is one cluster member: its dial function and the persistent
// connection, redialed on failure. The mutex serializes exchanges on the
// connection; concurrent requests to the same node queue here.
type quorumNode struct {
	dial func() (net.Conn, error)

	mu    sync.Mutex
	conn  net.Conn
	index atomic.Int64 // 1-based share index, learned from responses
	// suspect records that this node's last exchange failed; requests
	// prefer non-suspect nodes as primaries.
	suspect atomic.Bool
}

// exchange performs one deadline-bounded request/response with the node,
// dialing if necessary. Any error tears the connection down so the next
// attempt redials.
func (nd *quorumNode) exchange(ctx context.Context, kind MsgKind, frame []byte, timeout time.Duration) (*Response, error) {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if nd.conn == nil {
		conn, err := nd.dial()
		if err != nil {
			return nil, err
		}
		nd.conn = conn
	}
	conn := nd.conn
	fail := func(err error) (*Response, error) {
		_ = conn.Close()
		nd.conn = nil
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, err
	}
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return fail(fmt.Errorf("wire: arming node deadline: %w", err))
	}
	// Service shutdown slams the deadline so a blocked exchange unwinds.
	stop := context.AfterFunc(ctx, func() { _ = conn.SetDeadline(time.Unix(1, 0)) })
	defer stop()
	if err := writeFrame(conn, frame); err != nil {
		return fail(err)
	}
	var resp Response
	if err := ReadMsg(conn, &resp); err != nil {
		return fail(err)
	}
	_ = conn.SetDeadline(time.Time{})
	if resp.Err != "" {
		// Protocol-level refusal: the connection is fine, the request is
		// not. Do not tear down; do not retry.
		return nil, &refusalError{kind: kind, msg: resp.Err}
	}
	return &resp, nil
}

// refusalError is a node's protocol-level rejection — the exchange
// succeeded, the answer is "no". Never retried.
type refusalError struct {
	kind MsgKind
	msg  string
}

func (e *refusalError) Error() string {
	return fmt.Sprintf("wire: node refused %s: %s", e.kind, e.msg)
}

func (nd *quorumNode) close() {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	if nd.conn != nil {
		_ = nd.conn.Close()
		nd.conn = nil
	}
}

// QuorumKeyService is a fault-tolerant securemat key service backed by an
// N-of-T authority cluster. Safe for concurrent use.
type QuorumKeyService struct {
	nodes []*quorumNode
	t, n  int
	opts  QuorumOptions

	params    *group.Params
	words     *wordScalars // non-nil when Q fits a word (see quorum_scalar.go)
	feboPK    *febo.PublicKey
	pubShares []*big.Int // A_j = g^{s^(j)}, DLEQ verification keys

	ctx    context.Context
	cancel context.CancelFunc
	trips  atomic.Uint64
	// Fan-out health counters (see QuorumStats).
	escalations atomic.Uint64
	hedges      atomic.Uint64
	suspicions  atomic.Uint64

	mu        sync.Mutex
	feipCache map[int]*feip.MasterPublicKey
}

// DialQuorumKeyService connects to a cluster at the given node addresses.
func DialQuorumKeyService(addrs []string, opts QuorumOptions) (*QuorumKeyService, error) {
	o := opts.withDefaults()
	dials := make([]func() (net.Conn, error), len(addrs))
	for i, addr := range addrs {
		addr := addr
		dials[i] = func() (net.Conn, error) { return net.DialTimeout("tcp", addr, o.Timeout) }
	}
	return NewQuorumKeyService(dials, opts)
}

// NewQuorumKeyService builds a quorum client over one dial function per
// cluster node (tests aim fault injection here via FaultDialer). It
// contacts the cluster for its configuration and joint FEBO key and fails
// if no node answers consistently.
func NewQuorumKeyService(dials []func() (net.Conn, error), opts QuorumOptions) (*QuorumKeyService, error) {
	if len(dials) == 0 {
		return nil, errors.New("wire: quorum needs at least one node")
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &QuorumKeyService{
		opts:      opts.withDefaults(),
		ctx:       ctx,
		cancel:    cancel,
		feipCache: make(map[int]*feip.MasterPublicKey),
	}
	s.nodes = make([]*quorumNode, len(dials))
	for i, d := range dials {
		s.nodes[i] = &quorumNode{dial: d}
	}
	if err := s.bootstrap(); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// bootstrap learns the cluster configuration (T, N, group, joint FEBO key,
// share commitments) from a KindClusterInfo fan-out. This is a quorum
// read: a configuration is accepted only when at least T nodes — its own
// claimed threshold — endorse it identically from distinct share indices.
// Up to T−1 compromised nodes therefore cannot serve clients an
// attacker-generated joint key or forked share commitments; at worst they
// withhold endorsement or equivocate, which fails the bootstrap instead
// of silently poisoning it.
func (s *QuorumKeyService) bootstrap() error {
	type res struct {
		i    int
		resp *Response
		err  error
	}
	frame, err := encodeFrame(&Request{Kind: KindClusterInfo})
	if err != nil {
		return err
	}
	ch := make(chan res, len(s.nodes))
	for i, nd := range s.nodes {
		go func(i int, nd *quorumNode) {
			resp, err := s.tryNode(nd, KindClusterInfo, frame)
			ch <- res{i, resp, err}
		}(i, nd)
	}
	// Group valid answers by configuration. Within a group, a share index
	// may vote only once — duplicate indices would let one key vote twice.
	type candidate struct {
		ref     *Response
		votes   int
		indices map[int64]bool
	}
	var cands []*candidate
	var lastErr error
	for range s.nodes {
		r := <-ch
		if r.err != nil {
			lastErr = r.err
			s.opts.Logger.Printf("quorum: bootstrap node %d: %v", r.i, r.err)
			continue
		}
		if err := validateClusterInfo(r.resp, len(s.nodes)); err != nil {
			lastErr = err
			s.opts.Logger.Printf("quorum: bootstrap node %d: %v", r.i, err)
			continue
		}
		matched := false
		for _, c := range cands {
			if sameCluster(c.ref, r.resp) == nil {
				if !c.indices[r.resp.NodeIndex] {
					c.indices[r.resp.NodeIndex] = true
					c.votes++
				}
				matched = true
				break
			}
		}
		if !matched {
			if len(cands) > 0 {
				s.opts.Logger.Printf("quorum: node %d disagrees on cluster configuration: %v", r.i, sameCluster(cands[0].ref, r.resp))
			}
			cands = append(cands, &candidate{ref: r.resp, votes: 1, indices: map[int64]bool{r.resp.NodeIndex: true}})
		}
		s.nodes[r.i].index.Store(r.resp.NodeIndex)
	}
	var ref *Response
	for _, c := range cands {
		if c.votes < c.ref.Threshold {
			continue
		}
		if ref != nil {
			return fmt.Errorf("wire: cluster equivocation: two configurations each endorsed by a threshold of nodes")
		}
		ref = c.ref
	}
	if ref == nil {
		return fmt.Errorf("%w: no cluster configuration endorsed by a threshold of nodes (last error: %v)", ErrQuorum, lastErr)
	}
	params, err := groupFromResponse(ref)
	if err != nil {
		return err
	}
	pk := &febo.PublicKey{Params: params, H: ref.H[0]}
	if err := pk.Validate(); err != nil {
		return fmt.Errorf("wire: cluster sent invalid FEBO key: %w", err)
	}
	for j, a := range ref.HShares {
		if a == nil || !params.IsElement(a) {
			return fmt.Errorf("wire: cluster share commitment %d invalid: %w", j+1, group.ErrNotInGroup)
		}
	}
	s.params = params
	s.words = newWordScalars(params.Q)
	s.feboPK = pk
	s.pubShares = ref.HShares
	s.t = ref.Threshold
	s.n = ref.Nodes
	return nil
}

// validateClusterInfo structurally validates one node's cluster-info
// answer. Gob decodes absent fields as nil, so every pointer sameCluster
// later compares must be proven present here — one malformed response must
// cost that node its vote, not panic the bootstrap.
func validateClusterInfo(resp *Response, dialed int) error {
	if resp.Threshold < 1 || resp.Nodes < resp.Threshold {
		return fmt.Errorf("wire: invalid cluster shape T=%d N=%d", resp.Threshold, resp.Nodes)
	}
	if resp.Nodes != dialed {
		return fmt.Errorf("wire: cluster reports %d nodes, client configured with %d", resp.Nodes, dialed)
	}
	if resp.GroupP == nil || resp.GroupQ == nil || resp.GroupG == nil {
		return errors.New("wire: cluster info missing group parameters")
	}
	if len(resp.H) != 1 || resp.H[0] == nil || len(resp.HShares) != resp.Nodes {
		return errors.New("wire: cluster info missing joint key or share commitments")
	}
	for j, a := range resp.HShares {
		if a == nil {
			return fmt.Errorf("wire: cluster info missing share commitment %d", j+1)
		}
	}
	if resp.NodeIndex < 1 || resp.NodeIndex > int64(resp.Nodes) {
		return fmt.Errorf("wire: node claims share index %d of %d", resp.NodeIndex, resp.Nodes)
	}
	return nil
}

func sameCluster(a, b *Response) error {
	if a.Threshold != b.Threshold || a.Nodes != b.Nodes {
		return errors.New("threshold shape differs")
	}
	if a.GroupP.Cmp(b.GroupP) != 0 || a.GroupQ.Cmp(b.GroupQ) != 0 || a.GroupG.Cmp(b.GroupG) != 0 {
		return errors.New("group differs")
	}
	if a.H[0].Cmp(b.H[0]) != 0 {
		return errors.New("joint FEBO key differs")
	}
	for j := range a.HShares {
		if a.HShares[j].Cmp(b.HShares[j]) != 0 {
			return fmt.Errorf("share commitment %d differs", j+1)
		}
	}
	return nil
}

// Close cancels in-flight exchanges and releases every node connection.
func (s *QuorumKeyService) Close() error {
	s.cancel()
	for _, nd := range s.nodes {
		nd.close()
	}
	return nil
}

// Threshold returns the cluster's (T, N) configuration.
func (s *QuorumKeyService) Threshold() (t, n int) { return s.t, s.n }

// RoundTrips reports the total number of node exchanges performed.
func (s *QuorumKeyService) RoundTrips() uint64 { return s.trips.Load() }

// QuorumStats counts fan-out health incidents. All-zero under healthy
// primaries; non-zero values mean the cluster is absorbing faults.
type QuorumStats struct {
	// RoundTrips is the total number of node exchanges (including
	// retries and hedges).
	RoundTrips uint64
	// Escalations counts standby nodes contacted because a primary
	// failed, refused, or returned an invalid partial.
	Escalations uint64
	// Hedges counts standby nodes contacted because the primaries
	// stalled past HedgeDelay without failing outright.
	Hedges uint64
	// Suspicions counts node exchanges that exhausted their retries and
	// marked the node suspect (steering later primary selection).
	Suspicions uint64
	// SuspectNodes is the number of nodes currently marked suspect.
	SuspectNodes int
}

// Stats snapshots the fan-out health counters.
func (s *QuorumKeyService) Stats() QuorumStats {
	st := QuorumStats{
		RoundTrips:  s.trips.Load(),
		Escalations: s.escalations.Load(),
		Hedges:      s.hedges.Load(),
		Suspicions:  s.suspicions.Load(),
	}
	for _, nd := range s.nodes {
		if nd.suspect.Load() {
			st.SuspectNodes++
		}
	}
	return st
}

// tryNode performs one exchange with retries and jittered exponential
// backoff. Protocol refusals (resp.Err) are returned immediately — the
// node answered; asking again buys nothing. I/O errors are retried. The
// node's suspect flag tracks the outcome, steering primary selection for
// later requests.
func (s *QuorumKeyService) tryNode(nd *quorumNode, kind MsgKind, frame []byte) (*Response, error) {
	var err error
	for attempt := 0; attempt < s.opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			step := s.opts.RetryBase << (attempt - 1)
			if step > s.opts.RetryMax {
				step = s.opts.RetryMax
			}
			// ±50% jitter decorrelates herd retries across nodes.
			jittered := step/2 + time.Duration(mrand.Int64N(int64(step)))
			select {
			case <-time.After(jittered):
			case <-s.ctx.Done():
				return nil, s.ctx.Err()
			}
		}
		var resp *Response
		s.trips.Add(1)
		resp, err = nd.exchange(s.ctx, kind, frame, s.opts.Timeout)
		if err == nil {
			if resp.NodeIndex > 0 {
				nd.index.Store(resp.NodeIndex)
			}
			nd.suspect.Store(false)
			return resp, nil
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, err
		}
		var refusal *refusalError
		if errors.As(err, &refusal) {
			// A refusal is an answer: the node is alive.
			nd.suspect.Store(false)
			return nil, err
		}
	}
	nd.suspect.Store(true)
	s.suspicions.Add(1)
	return nil, err
}

// partialResult is one node's answer to a partial-key fan-out.
type partialResult struct {
	node  int
	index int64
	resp  *Response
	err   error
}

// Verdicts a collect handler can return for an arrival.
const (
	// collectDone: the request is satisfied; stop.
	collectDone = iota
	// collectMore: keep waiting for already-contacted nodes.
	collectMore
	// collectEscalate: this answer was unusable (I/O failure surfaced by
	// the handler, rejected partial, failed combination) — contact an
	// additional node beyond the original T.
	collectEscalate
)

// collect runs a hedged fan-out: req goes to `need` primary nodes (the
// non-suspect ones first), and the remaining nodes are contacted only when
// a primary fails (immediately) or stalls past HedgeDelay. The happy path
// therefore costs exactly `need` exchanges — T× a single authority, not
// N× — while wedged or dead primaries still cannot stall the request
// beyond the hedge delay. handle is called on every arrival; collect
// returns once handle says done or every contacted node has answered and
// no standby remains.
func (s *QuorumKeyService) collect(req *Request, need int, handle func(partialResult) int) error {
	frame, err := encodeFrame(req)
	if err != nil {
		return err
	}
	ch := make(chan partialResult, len(s.nodes))
	launch := func(i int) {
		nd := s.nodes[i]
		go func() {
			resp, err := s.tryNode(nd, req.Kind, frame)
			ch <- partialResult{node: i, index: nd.index.Load(), resp: resp, err: err}
		}()
	}
	order := make([]int, 0, len(s.nodes))
	for i, nd := range s.nodes {
		if !nd.suspect.Load() {
			order = append(order, i)
		}
	}
	for i, nd := range s.nodes {
		if nd.suspect.Load() {
			order = append(order, i)
		}
	}
	if need > len(order) {
		need = len(order)
	}
	next := 0
	outstanding := 0
	for ; next < need; next++ {
		launch(order[next])
		outstanding++
	}
	hedge := time.NewTimer(s.opts.HedgeDelay)
	defer hedge.Stop()
	for outstanding > 0 {
		select {
		case r := <-ch:
			outstanding--
			escalate := r.err != nil
			switch handle(r) {
			case collectDone:
				return nil
			case collectEscalate:
				escalate = true
			}
			if escalate && next < len(order) {
				s.escalations.Add(1)
				launch(order[next])
				next++
				outstanding++
			}
		case <-hedge.C:
			// Primaries are slow but not (yet) failed: hedge to everyone.
			for ; next < len(order); next++ {
				s.hedges.Add(1)
				launch(order[next])
				outstanding++
			}
		case <-s.ctx.Done():
			return s.ctx.Err()
		}
	}
	return nil
}

// FEIPPublic implements securemat.KeyService: the joint master public key
// for dimension eta. Like bootstrap, this is a quorum read: the key the
// client will encrypt under is cached only after T nodes served it
// byte-identically, so up to T−1 compromised nodes cannot swap in an
// attacker-generated key whose secret they hold. Disagreement widens the
// fan-out so the honest majority still answers; an equivocating cluster
// can only fail the request, never poison the cache.
func (s *QuorumKeyService) FEIPPublic(eta int) (*feip.MasterPublicKey, error) {
	s.mu.Lock()
	cached, ok := s.feipCache[eta]
	s.mu.Unlock()
	if ok {
		return cached, nil
	}
	var got *feip.MasterPublicKey
	votes := make(map[string]int)
	seen := make(map[string]*feip.MasterPublicKey)
	var lastErr error
	err := s.collect(&Request{Kind: KindFEIPPublic, Eta: eta}, s.t, func(r partialResult) int {
		if r.err != nil {
			lastErr = r.err
			return collectMore // collect escalates on r.err itself
		}
		mpk := &feip.MasterPublicKey{Params: s.params, H: r.resp.H}
		if err := mpk.Validate(); err != nil {
			lastErr = fmt.Errorf("wire: node sent invalid FEIP key: %w", err)
			s.opts.Logger.Printf("quorum: %v", lastErr)
			return collectEscalate
		}
		if mpk.Eta() != eta {
			lastErr = fmt.Errorf("wire: FEIP key has dimension %d, want %d", mpk.Eta(), eta)
			return collectEscalate
		}
		fp := elementsFingerprint(r.resp.H)
		votes[fp]++
		if seen[fp] == nil {
			seen[fp] = mpk
		}
		if votes[fp] >= s.t {
			got = seen[fp]
			return collectDone
		}
		if len(votes) > 1 {
			lastErr = errors.New("wire: nodes disagree on the joint FEIP public key")
			s.opts.Logger.Printf("quorum: %v", lastErr)
			return collectEscalate
		}
		return collectMore
	})
	if err != nil {
		return nil, err
	}
	if got == nil {
		return nil, fmt.Errorf("%w: η=%d public key not confirmed by %d nodes (last error: %v)", ErrQuorum, eta, s.t, lastErr)
	}
	s.mu.Lock()
	s.feipCache[eta] = got
	s.mu.Unlock()
	return got, nil
}

// FEBOPublic implements securemat.KeyService; the joint key was verified
// at bootstrap.
func (s *QuorumKeyService) FEBOPublic() (*febo.PublicKey, error) {
	return s.feboPK, nil
}

// IPKey implements securemat.KeyService.
func (s *QuorumKeyService) IPKey(y []int64) (*feip.FunctionKey, error) {
	ks, err := s.IPKeyBatch([][]int64{y})
	if err != nil {
		return nil, err
	}
	return ks[0], nil
}

// ipPartial is one node's validated partial IP key batch, folded for the
// RLC check.
type ipPartial struct {
	index  int64
	ks     []*big.Int
	folded *big.Int // Σ_v e_v·ks[v] mod Q
}

// IPKeyBatch implements securemat.BatchKeyService: partial keys from the
// first T valid nodes, Lagrange-combined and verified against the joint
// public key in one batched check.
func (s *QuorumKeyService) IPKeyBatch(ys [][]int64) ([]*feip.FunctionKey, error) {
	if len(ys) == 0 {
		return nil, errors.New("wire: empty key batch")
	}
	eta := len(ys[0])
	for v, y := range ys {
		if len(y) != eta {
			return nil, fmt.Errorf("wire: batch vector %d has η=%d, want %d", v, len(y), eta)
		}
	}
	mpk, err := s.FEIPPublic(eta)
	if err != nil {
		return nil, err
	}

	// The RLC coefficients and the verification RHS Π h_i^{Σ_v e_v·y_v,i}
	// are subset-independent: computed once per request.
	rhsExps := make([]*big.Int, eta)
	var coeffs []*big.Int
	var coeffWords []uint64
	if w := s.words; w != nil {
		// Word-sized groups: draw the coefficients as reduced words and
		// run the O(batch·η) fold with deferred reduction (acc192).
		coeffWords, err = verifierCoeffWords(len(ys), w)
		if err != nil {
			return nil, err
		}
		for i := range rhsExps {
			var acc acc192
			for v, y := range ys {
				acc.mulAdd(coeffWords[v], w.fromInt64(y[i]))
			}
			rhsExps[i] = new(big.Int).SetUint64(w.reduce(acc))
		}
	} else {
		coeffs, err = verifierCoeffs(len(ys))
		if err != nil {
			return nil, err
		}
		for i := range rhsExps {
			acc := new(big.Int)
			var term big.Int
			for v, y := range ys {
				term.SetInt64(y[i])
				term.Mul(&term, coeffs[v])
				acc.Add(acc, &term)
			}
			rhsExps[i] = s.params.ReduceScalar(acc)
		}
	}
	rhs := s.params.MultiExp(mpk.H, rhsExps)

	var keys []*feip.FunctionKey
	var partials []ipPartial
	suspicion := make(map[int64]int)
	var lastErr error
	err = s.collect(&Request{Kind: KindPartialIPKeyBatch, YBatch: ys}, s.t, func(r partialResult) int {
		if r.err != nil {
			lastErr = r.err
			s.opts.Logger.Printf("quorum: partial IP keys from node %d: %v", r.node, r.err)
			return collectMore // collect escalates on r.err itself
		}
		p, err := s.admitIPPartial(r, len(ys), coeffs, coeffWords)
		if err != nil {
			lastErr = err
			s.opts.Logger.Printf("quorum: node %d partial rejected: %v", r.node, err)
			return collectEscalate
		}
		partials = append(partials, *p)
		if len(partials) < s.t {
			return collectMore
		}
		if keys = s.combineIP(ys, partials, rhs, suspicion); keys != nil {
			return collectDone
		}
		// Some collected partial is corrupted: widen the subset search.
		lastErr = errors.New("wire: combined key failed verification against the joint public key")
		return collectEscalate
	})
	if err != nil {
		return nil, err
	}
	if keys == nil {
		return nil, fmt.Errorf("%w: %d/%d valid partial IP answers (last error: %v)", ErrQuorum, len(partials), s.t, lastErr)
	}
	return keys, nil
}

// admitIPPartial structurally validates one node's partial batch.
// coeffWords carries the RLC coefficients pre-reduced to machine words
// when the fast scalar path applies (nil otherwise).
func (s *QuorumKeyService) admitIPPartial(r partialResult, want int, coeffs []*big.Int, coeffWords []uint64) (*ipPartial, error) {
	if r.index < 1 || r.index > int64(s.n) {
		return nil, fmt.Errorf("wire: node claims share index %d", r.index)
	}
	if len(r.resp.KBatch) != want {
		return nil, fmt.Errorf("wire: %d partial keys for %d vectors", len(r.resp.KBatch), want)
	}
	for v, k := range r.resp.KBatch {
		if k == nil || k.Sign() < 0 || k.Cmp(s.params.Q) >= 0 {
			return nil, fmt.Errorf("wire: partial key %d not a reduced scalar", v)
		}
	}
	if w := s.words; w != nil && coeffWords != nil {
		var acc acc192
		for v, k := range r.resp.KBatch {
			acc.mulAdd(coeffWords[v], k.Uint64())
		}
		return &ipPartial{index: r.index, ks: r.resp.KBatch, folded: new(big.Int).SetUint64(w.reduce(acc))}, nil
	}
	folded := new(big.Int)
	var term big.Int
	for v, k := range r.resp.KBatch {
		term.Mul(coeffs[v], k)
		folded.Add(folded, &term)
	}
	return &ipPartial{index: r.index, ks: r.resp.KBatch, folded: s.params.ReduceScalar(folded)}, nil
}

// combineIP searches T-subsets of the collected partials for one whose
// Lagrange combination passes the RLC check, returning the derived keys.
// The fold identity keeps the search cheap: for a subset with coefficients
// λ_j, Σ_v e_v·k_v = Σ_j λ_j·folded_j, so each candidate subset costs one
// fixed-base exponentiation, not a per-key pass.
//
// Each failed subset raises the suspicion score of its members (keyed by
// share index in the caller-held map, so knowledge persists as partials
// accumulate across calls), and the search always tries the least-suspect
// untried subset next: a corrupted partial collected early implicates
// itself and cannot starve an honest subset, whatever the enumeration
// order.
func (s *QuorumKeyService) combineIP(ys [][]int64, partials []ipPartial, rhs *big.Int, suspicion map[int64]int) []*feip.FunctionKey {
	subs, truncated := subsets(len(partials), s.t)
	if truncated {
		s.opts.Logger.Printf("quorum: subset search over %d partials truncated to %d candidates", len(partials), len(subs))
	}
	tried := make([]bool, len(subs))
	for range subs {
		best, bestScore := -1, 0
		for si, sub := range subs {
			if tried[si] {
				continue
			}
			score := 0
			for _, pi := range sub {
				score += suspicion[partials[pi].index]
			}
			if best < 0 || score < bestScore {
				best, bestScore = si, score
			}
		}
		subset := subs[best]
		tried[best] = true
		if keys := s.combineIPSubset(ys, partials, subset, rhs); keys != nil {
			return keys
		}
		for _, pi := range subset {
			suspicion[partials[pi].index]++
		}
	}
	return nil
}

// combineIPSubset Lagrange-combines one candidate subset and verifies it
// against the joint public key, returning nil if the subset is unusable
// (duplicate share indices) or fails the RLC check.
func (s *QuorumKeyService) combineIPSubset(ys [][]int64, partials []ipPartial, subset []int, rhs *big.Int) []*feip.FunctionKey {
	xs := make([]int64, s.t)
	seen := make(map[int64]bool, s.t)
	for i, pi := range subset {
		x := partials[pi].index
		if seen[x] {
			return nil
		}
		seen[x] = true
		xs[i] = x
	}
	lambdas, err := thresh.Lambda(s.params, xs)
	if err != nil {
		return nil
	}
	// thresh.Lambda returns reduced scalars and partials were
	// admission-checked < Q, so the word path applies directly.
	if w := s.words; w != nil {
		lws := w.reduceAll(lambdas)
		var lhs acc192
		for i, pi := range subset {
			lhs.mulAdd(lws[i], partials[pi].folded.Uint64())
		}
		if s.params.PowG(new(big.Int).SetUint64(w.reduce(lhs))).Cmp(rhs) != 0 {
			return nil
		}
		keys := make([]*feip.FunctionKey, len(ys))
		for v := range ys {
			var k acc192
			for i, pi := range subset {
				k.mulAdd(lws[i], partials[pi].ks[v].Uint64())
			}
			keys[v] = &feip.FunctionKey{K: new(big.Int).SetUint64(w.reduce(k))}
		}
		return keys
	}
	lhs := new(big.Int)
	var term big.Int
	for i, pi := range subset {
		term.Mul(lambdas[i], partials[pi].folded)
		lhs.Add(lhs, &term)
	}
	if s.params.PowG(s.params.ReduceScalar(lhs)).Cmp(rhs) != 0 {
		return nil
	}
	// Verified: materialize the per-vector keys for this subset.
	keys := make([]*feip.FunctionKey, len(ys))
	for v := range ys {
		k := new(big.Int)
		for i, pi := range subset {
			term.Mul(lambdas[i], partials[pi].ks[v])
			k.Add(k, &term)
		}
		keys[v] = &feip.FunctionKey{K: s.params.ReduceScalar(k)}
	}
	return keys
}

// BOKey implements securemat.KeyService.
func (s *QuorumKeyService) BOKey(cmt *big.Int, op febo.Op, y int64) (*febo.FunctionKey, error) {
	ks, err := s.BOKeyBatch([]*big.Int{cmt}, op, []int64{y})
	if err != nil {
		return nil, err
	}
	return ks[0], nil
}

// BOKeyBatch implements securemat.BatchKeyService: each node's partials
// cmt^{s^(j)} are admitted only with a valid DLEQ proof against its share
// commitment; the first T valid answers are combined and the public op
// transform applied client-side.
func (s *QuorumKeyService) BOKeyBatch(cmts []*big.Int, op febo.Op, ysc []int64) ([]*febo.FunctionKey, error) {
	if len(cmts) == 0 || len(cmts) != len(ysc) {
		return nil, fmt.Errorf("wire: %d commitments for %d scalars", len(cmts), len(ysc))
	}
	type boPartial struct {
		index int64
		ks    []*big.Int
	}
	var keys []*febo.FunctionKey
	var keysErr error
	var partials []boPartial
	seen := make(map[int64]bool)
	var lastErr error
	err := s.collect(&Request{Kind: KindPartialBOKeyBatch, Cmts: cmts, Op: int(op), Scalars: ysc}, s.t, func(r partialResult) int {
		if r.err != nil {
			lastErr = r.err
			s.opts.Logger.Printf("quorum: partial BO keys from node %d: %v", r.node, r.err)
			return collectMore // collect escalates on r.err itself
		}
		if r.index < 1 || r.index > int64(s.n) || seen[r.index] {
			lastErr = fmt.Errorf("wire: node claims share index %d", r.index)
			return collectEscalate
		}
		if len(r.resp.KBatch) != len(cmts) {
			lastErr = fmt.Errorf("wire: %d partials for %d commitments", len(r.resp.KBatch), len(cmts))
			return collectEscalate
		}
		proof := &thresh.EqProof{C: r.resp.ProofC, Z: r.resp.ProofZ}
		if err := thresh.VerifyEqBatch(s.params, s.pubShares[r.index-1], cmts, r.resp.KBatch, proof); err != nil {
			lastErr = fmt.Errorf("wire: node %d partial proof: %w", r.node, err)
			s.opts.Logger.Printf("quorum: %v", lastErr)
			return collectEscalate
		}
		seen[r.index] = true
		partials = append(partials, boPartial{index: r.index, ks: r.resp.KBatch})
		if len(partials) < s.t {
			return collectMore
		}

		// T proof-checked partials: combine and transform.
		xs := make([]int64, s.t)
		for i, p := range partials[:s.t] {
			xs[i] = p.index
		}
		lambdas, err := thresh.Lambda(s.params, xs)
		if err != nil {
			keysErr = err
			return collectDone
		}
		out := make([]*febo.FunctionKey, len(cmts))
		elems := make([]*big.Int, s.t)
		for v := range cmts {
			for i, p := range partials[:s.t] {
				elems[i] = p.ks[v]
			}
			cmtS, err := thresh.CombineElements(s.params, lambdas, elems)
			if err != nil {
				keysErr = err
				return collectDone
			}
			k, err := s.applyBOOp(cmtS, op, ysc[v])
			if err != nil {
				keysErr = err
				return collectDone
			}
			out[v] = &febo.FunctionKey{K: k}
		}
		keys = out
		return collectDone
	})
	if err != nil {
		return nil, err
	}
	if keysErr != nil {
		return nil, keysErr
	}
	if keys == nil {
		return nil, fmt.Errorf("%w: %d/%d valid partial BO answers (last error: %v)", ErrQuorum, len(partials), s.t, lastErr)
	}
	return keys, nil
}

// applyBOOp applies the public op-dependent transform to the combined
// cmt^s, mirroring febo.KeyDerive exactly.
func (s *QuorumKeyService) applyBOOp(cmtS *big.Int, op febo.Op, y int64) (*big.Int, error) {
	switch op {
	case febo.OpAdd:
		return s.params.Mul(cmtS, s.params.PowGInt64(-y)), nil
	case febo.OpSub:
		return s.params.Mul(cmtS, s.params.PowGInt64(y)), nil
	case febo.OpMul:
		return s.params.Exp(cmtS, big.NewInt(y)), nil
	case febo.OpDiv:
		inv, err := s.params.InvScalar(big.NewInt(y))
		if err != nil {
			return nil, fmt.Errorf("wire: division key: %w", err)
		}
		return s.params.Exp(cmtS, inv), nil
	default:
		return nil, fmt.Errorf("wire: invalid FEBO op %d", int(op))
	}
}

// elementsFingerprint hashes a vector of group elements into a comparable
// vote key for quorum reads (length-prefixed so element boundaries cannot
// be shifted between distinct vectors with equal concatenations).
func elementsFingerprint(es []*big.Int) string {
	h := sha256.New()
	var lenBuf [8]byte
	for _, e := range es {
		b := e.Bytes()
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(b)))
		h.Write(lenBuf[:])
		h.Write(b)
	}
	return string(h.Sum(nil))
}

// verifierCoeffs draws fresh 128-bit random-linear-combination
// coefficients. Unlike the prover-side Fiat–Shamir coefficients in
// internal/thresh these are verifier-private randomness, so they come from
// crypto/rand: a malicious node cannot predict them when crafting partials.
func verifierCoeffs(n int) ([]*big.Int, error) {
	coeffs := make([]*big.Int, n)
	buf := make([]byte, 16*n)
	if _, err := io.ReadFull(rand.Reader, buf); err != nil {
		return nil, fmt.Errorf("wire: drawing verifier coefficients: %w", err)
	}
	for i := range coeffs {
		coeffs[i] = new(big.Int).SetBytes(buf[16*i : 16*(i+1)])
	}
	return coeffs, nil
}

// subsets yields size-k index subsets of [0, n), capped to keep the
// corrupted-node search bounded in memory (C(16,8)=12870 < cap, so every
// plausible cluster enumerates completely; truncated reports when a
// pathological configuration did hit the cap — the caller logs it rather
// than failing silently). Enumeration order is irrelevant to the caller,
// which reorders by suspicion.
func subsets(n, k int) (out [][]int, truncated bool) {
	const maxSubsets = 16384
	idx := make([]int, k)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if len(out) >= maxSubsets {
			truncated = true
			return
		}
		if depth == k {
			out = append(out, append([]int(nil), idx...))
			return
		}
		for i := start; i < n; i++ {
			idx[depth] = i
			rec(i+1, depth+1)
		}
	}
	if k <= n {
		rec(0, 0)
	}
	return out, truncated
}

// Interface compliance checks.
var (
	_ securemat.KeyService      = (*QuorumKeyService)(nil)
	_ securemat.BatchKeyService = (*QuorumKeyService)(nil)
)
