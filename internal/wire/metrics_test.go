package wire

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestMetricsHandlerScrape(t *testing.T) {
	addr, srv := startPredictServer(t, echoPredict, DispatcherOptions{})
	cc, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	rng := rand.New(rand.NewSource(11))
	if _, err := cc.Predict(context.Background(), synthBatch(rng, 3, 2, 2, false), 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// Nil sources must be skipped, not panic.
	h := MetricsHandler(srv, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE cryptonn_predict_requests_total counter",
		"cryptonn_predict_requests_total 1",
		"cryptonn_predict_samples_total 2",
		"cryptonn_predict_connections_total{codec=\"binary\"} 1",
		"cryptonn_predict_connections_total{codec=\"gob\"} 0",
		"cryptonn_predict_latency_seconds{quantile=\"0.99\"}",
		"cryptonn_predict_queue_depth 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q\n%s", want, body)
		}
	}
	// Prometheus text format: every non-comment line is `name[{labels}] value`.
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if f := strings.Fields(line); len(f) != 2 {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

func TestAuthorityServerMetrics(t *testing.T) {
	s := &AuthorityServer{}
	s.served.Add(3)
	s.rejected.Add(1)
	var b strings.Builder
	s.WriteMetrics(&b)
	out := b.String()
	for _, want := range []string{
		"cryptonn_authority_served_total 3",
		"cryptonn_authority_rejected_total 1",
		"cryptonn_authority_panics_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestQuorumMetricsNames(t *testing.T) {
	s := &QuorumKeyService{}
	s.escalations.Add(2)
	s.hedges.Add(1)
	var b strings.Builder
	s.WriteMetrics(&b)
	out := b.String()
	for _, want := range []string{
		"cryptonn_quorum_round_trips_total 0",
		"cryptonn_quorum_escalations_total 2",
		"cryptonn_quorum_hedges_total 1",
		"cryptonn_quorum_suspicions_total 0",
		"cryptonn_quorum_suspect_nodes 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
