package wire

// Dispatcher tests run against a crypto-free fake: each fabricated
// sample carries a unique id inside its ciphertext (so identity survives
// a gob round-trip over the wire), and the fake predict function answers
// with those ids — so result demultiplexing is checked per sample, not
// just per count.

import (
	"context"
	"errors"
	"math/big"
	"net"
	"sync"
	"testing"
	"time"

	"cryptonn/internal/core"
	"cryptonn/internal/feip"
	"cryptonn/internal/securemat"
)

// evalRecord is one fake evaluation's observed geometry. k is 0 for
// dense full-logit evaluations and the requested hit count for top-k.
type evalRecord struct {
	rows, n, k int
}

// fakeBackend fabricates prediction batches and answers them by the id
// embedded in each sample's ciphertext.
type fakeBackend struct {
	mu    sync.Mutex
	next  int64
	evals []evalRecord
}

func newFakeBackend() *fakeBackend { return &fakeBackend{} }

// newBatch fabricates an n-sample batch and returns the per-sample values
// predict will answer for it.
func (f *fakeBackend) newBatch(features, classes, n int) (*core.EncryptedBatch, []int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	cts := make([]*feip.Ciphertext, n)
	want := make([]int, n)
	for i := range cts {
		cts[i] = &feip.Ciphertext{Ct0: big.NewInt(f.next)}
		want[i] = int(f.next)
		f.next++
	}
	return &core.EncryptedBatch{
		X:        &securemat.EncryptedMatrix{Rows: features, Cols: n, ColCts: cts},
		Features: features,
		Classes:  classes,
		N:        n,
	}, want
}

// poisonBatch fabricates a batch that predict rejects (negative ids).
func (f *fakeBackend) poisonBatch(features, classes, n int) *core.EncryptedBatch {
	enc, _ := f.newBatch(features, classes, n)
	for _, ct := range enc.X.ColCts {
		ct.Ct0.Neg(ct.Ct0)
	}
	return enc
}

func (f *fakeBackend) predict(enc *core.EncryptedBatch) ([]int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.evals = append(f.evals, evalRecord{rows: enc.X.Rows, n: enc.N})
	out := make([]int, enc.N)
	for i, ct := range enc.X.ColCts {
		if ct == nil || ct.Ct0 == nil {
			return nil, errors.New("fake: ciphertext without embedded id")
		}
		id := ct.Ct0.Int64()
		if id < 0 {
			return nil, errors.New("fake: poisoned sample")
		}
		out[i] = int(id)
	}
	return out, nil
}

func (f *fakeBackend) evalCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.evals)
}

// gatedBackend wraps fakeBackend so the test can hold an evaluation open
// (entered fires when predict starts; release lets it finish).
type gatedBackend struct {
	*fakeBackend
	entered chan struct{}
	release chan struct{}
}

func newGatedBackend() *gatedBackend {
	return &gatedBackend{
		fakeBackend: newFakeBackend(),
		entered:     make(chan struct{}, 64),
		release:     make(chan struct{}),
	}
}

func (g *gatedBackend) predict(enc *core.EncryptedBatch) ([]int, error) {
	g.entered <- struct{}{}
	<-g.release
	return g.fakeBackend.predict(enc)
}

func checkPreds(t *testing.T, label string, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d predictions, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("%s: sample %d = %d, want %d (cross-client demux leak)", label, i, got[i], want[i])
		}
	}
}

// TestDispatcherDemuxInterleaved holds one evaluation open while several
// clients with different batch sizes pile up, then verifies every client
// got exactly its own samples back from the merged evaluation.
func TestDispatcherDemuxInterleaved(t *testing.T) {
	g := newGatedBackend()
	d, err := NewDispatcher(g.predict, DispatcherOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// First request occupies the evaluator.
	enc0, want0 := g.newBatch(3, 2, 1)
	type result struct {
		preds []int
		err   error
	}
	res0 := make(chan result, 1)
	go func() {
		p, err := d.Do(context.Background(), enc0)
		res0 <- result{p, err}
	}()
	<-g.entered

	// Three more clients queue while it runs; batch sizes differ.
	var wg sync.WaitGroup
	clients := []int{1, 3, 2}
	results := make([]result, len(clients))
	wants := make([][]int, len(clients))
	for i, n := range clients {
		enc, want := g.newBatch(3, 2, n)
		wants[i] = want
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, err := d.Do(context.Background(), enc)
			results[i] = result{p, err}
		}()
	}
	// Wait until all three are queued, then let evaluations flow.
	waitFor(t, func() bool { return len(d.queue) == len(clients) })
	close(g.release)

	r0 := <-res0
	if r0.err != nil {
		t.Fatalf("first request: %v", r0.err)
	}
	checkPreds(t, "first", r0.preds, want0)
	wg.Wait()
	for i := range clients {
		if results[i].err != nil {
			t.Fatalf("client %d: %v", i, results[i].err)
		}
		checkPreds(t, "queued client", results[i].preds, wants[i])
	}

	// The three queued clients must have shared one evaluation.
	if got := g.evalCount(); got != 2 {
		t.Errorf("evaluations = %d, want 2 (1 solo + 1 coalesced)", got)
	}
	st := d.Stats()
	if st.Requests != 4 || st.Samples != 7 || st.Evals != 2 || st.MaxCoalesced != 6 {
		t.Errorf("stats = %+v, want 4 requests / 7 samples / 2 evals / max 6", st)
	}
	if st.P50 <= 0 || st.P99 < st.P50 {
		t.Errorf("latency percentiles not populated: p50 %s p99 %s", st.P50, st.P99)
	}
}

// TestDispatcherShapePartition checks that batches with different input
// geometry never share an evaluation.
func TestDispatcherShapePartition(t *testing.T) {
	g := newGatedBackend()
	d, err := NewDispatcher(g.predict, DispatcherOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	enc0, want0 := g.newBatch(3, 2, 1)
	go d.Do(context.Background(), enc0) //nolint:errcheck // checked via eval records
	<-g.entered

	var wg sync.WaitGroup
	shapes := []struct{ features, n int }{{3, 2}, {4, 1}, {3, 1}}
	for _, s := range shapes {
		enc, want := g.newBatch(s.features, 2, s.n)
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, err := d.Do(context.Background(), enc)
			if err != nil {
				t.Errorf("shape %+v: %v", s, err)
				return
			}
			checkPreds(t, "shape client", p, want)
		}()
	}
	waitFor(t, func() bool { return len(d.queue) == len(shapes) })
	close(g.release)
	wg.Wait()
	_ = want0

	g.mu.Lock()
	defer g.mu.Unlock()
	for _, ev := range g.evals {
		if ev.rows != 3 && ev.rows != 4 {
			t.Errorf("evaluation saw %d rows", ev.rows)
		}
		if ev.rows == 4 && ev.n != 1 {
			t.Errorf("4-feature batch coalesced with foreign samples: n=%d", ev.n)
		}
	}
}

// TestDispatcherBackpressure fills the bounded queue and checks the
// typed queue-full rejection plus recovery once the queue drains.
func TestDispatcherBackpressure(t *testing.T) {
	g := newGatedBackend()
	d, err := NewDispatcher(g.predict, DispatcherOptions{MaxQueue: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	enc0, _ := g.newBatch(3, 2, 1)
	go d.Do(context.Background(), enc0) //nolint:errcheck
	<-g.entered                         // evaluator busy, queue empty

	enc1, want1 := g.newBatch(3, 2, 1)
	res1 := make(chan []int, 1)
	go func() {
		p, err := d.Do(context.Background(), enc1)
		if err != nil {
			t.Errorf("queued request: %v", err)
		}
		res1 <- p
	}()
	waitFor(t, func() bool { return len(d.queue) == 1 }) // queue full

	enc2, _ := g.newBatch(3, 2, 1)
	if _, err := d.Do(context.Background(), enc2); !errors.Is(err, ErrBusy) {
		t.Fatalf("overflow request: err = %v, want ErrBusy", err)
	}
	if st := d.Stats(); st.Rejected != 1 || st.QueueDepth != 1 {
		t.Errorf("stats = %+v, want 1 rejected, queue depth 1", st)
	}

	close(g.release)
	checkPreds(t, "queued after busy", <-res1, want1)

	// The queue drained; a retry now succeeds.
	enc3, want3 := g.newBatch(3, 2, 1)
	p, err := d.Do(context.Background(), enc3)
	if err != nil {
		t.Fatalf("retry after drain: %v", err)
	}
	checkPreds(t, "retry", p, want3)
}

// TestDispatcherContextCancel cancels a request mid-coalesce (the delay
// window is long, so the round is still collecting) and checks the caller
// returns promptly while later requests are unaffected.
func TestDispatcherContextCancel(t *testing.T) {
	f := newFakeBackend()
	d, err := NewDispatcher(f.predict, DispatcherOptions{
		MaxDelay:            time.Minute,
		MaxCoalescedSamples: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	ctx, cancel := context.WithCancel(context.Background())
	enc0, _ := f.newBatch(3, 2, 1)
	errCh := make(chan error, 1)
	go func() {
		_, err := d.Do(ctx, enc0)
		errCh <- err
	}()
	// The loop has picked enc0 up and is waiting out MaxDelay.
	waitFor(t, func() bool { return len(d.queue) == 0 && d.Stats().Requests == 1 })
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled request: err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled request did not return")
	}

	// A second request fills the round to its sample cap, closing the
	// window; the cancelled batch must be dropped before evaluation.
	enc1, want1 := f.newBatch(3, 2, 1)
	p, err := d.Do(context.Background(), enc1)
	if err != nil {
		t.Fatalf("follow-up request: %v", err)
	}
	checkPreds(t, "follow-up", p, want1)
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.evals) != 1 || f.evals[0].n != 1 {
		t.Errorf("evals = %+v, want exactly one 1-sample evaluation", f.evals)
	}
}

// TestDispatcherClose checks shutdown semantics: queued requests fail
// with net.ErrClosed, the in-flight round completes, and Do after Close
// fails fast.
func TestDispatcherClose(t *testing.T) {
	g := newGatedBackend()
	d, err := NewDispatcher(g.predict, DispatcherOptions{})
	if err != nil {
		t.Fatal(err)
	}

	enc0, want0 := g.newBatch(3, 2, 1)
	res0 := make(chan []int, 1)
	go func() {
		p, err := d.Do(context.Background(), enc0)
		if err != nil {
			t.Errorf("in-flight request: %v", err)
		}
		res0 <- p
	}()
	<-g.entered

	enc1, _ := g.newBatch(3, 2, 1)
	errCh := make(chan error, 1)
	go func() {
		_, err := d.Do(context.Background(), enc1)
		errCh <- err
	}()
	waitFor(t, func() bool { return len(d.queue) == 1 })

	closed := make(chan struct{})
	go func() { defer close(closed); _ = d.Close() }()
	// Release the gated evaluation only once shutdown has begun, so the
	// queued request is still pending when the loop winds down.
	waitFor(t, func() bool {
		select {
		case <-d.done:
			return true
		default:
			return false
		}
	})
	close(g.release)
	<-closed

	checkPreds(t, "in-flight at close", <-res0, want0)
	if err := <-errCh; !errors.Is(err, net.ErrClosed) {
		t.Errorf("queued at close: err = %v, want net.ErrClosed", err)
	}
	if _, err := d.Do(context.Background(), enc1); !errors.Is(err, net.ErrClosed) {
		t.Errorf("Do after Close: err = %v, want net.ErrClosed", err)
	}
}

// TestDispatcherFailureIsolation checks that one bad batch in a merged
// round does not fail its coalesced peers: the failed merge falls back
// to per-request evaluations, so only the offending caller errors —
// exactly the isolation the serial path provides.
func TestDispatcherFailureIsolation(t *testing.T) {
	g := newGatedBackend()
	d, err := NewDispatcher(g.predict, DispatcherOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	enc0, want0 := g.newBatch(3, 2, 1)
	res0 := make(chan []int, 1)
	go func() {
		p, err := d.Do(context.Background(), enc0)
		if err != nil {
			t.Errorf("warm-up request: %v", err)
		}
		res0 <- p
	}()
	<-g.entered

	// Two good clients and one poisoned one queue into the same round.
	encA, wantA := g.newBatch(3, 2, 2)
	encP := g.poisonBatch(3, 2, 1)
	encB, wantB := g.newBatch(3, 2, 1)
	var wg sync.WaitGroup
	var predsA, predsB []int
	var errA, errP, errB error
	for _, req := range []struct {
		enc   *core.EncryptedBatch
		preds *[]int
		err   *error
	}{{encA, &predsA, &errA}, {encP, nil, &errP}, {encB, &predsB, &errB}} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, err := d.Do(context.Background(), req.enc)
			if req.preds != nil {
				*req.preds = p
			}
			*req.err = err
		}()
	}
	waitFor(t, func() bool { return len(d.queue) == 3 })
	close(g.release)
	checkPreds(t, "warm-up", <-res0, want0)
	wg.Wait()

	if errA != nil {
		t.Errorf("good client A failed alongside poisoned peer: %v", errA)
	} else {
		checkPreds(t, "good client A", predsA, wantA)
	}
	if errB != nil {
		t.Errorf("good client B failed alongside poisoned peer: %v", errB)
	} else {
		checkPreds(t, "good client B", predsB, wantB)
	}
	if errP == nil {
		t.Error("poisoned request succeeded")
	}
	// Backend saw: warm-up, the failed merge, and three single retries.
	if got := g.evalCount(); got != 5 {
		t.Errorf("backend evaluations = %d, want 5 (warm-up + failed merge + 3 retries)", got)
	}
}

// TestDispatcherRejectsMalformedBatch checks the merge invariants are
// enforced at the door.
func TestDispatcherRejectsMalformedBatch(t *testing.T) {
	f := newFakeBackend()
	d, err := NewDispatcher(f.predict, DispatcherOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	enc, _ := f.newBatch(3, 2, 2)
	bad := *enc
	bad.N = 3 // claims more samples than it carries
	if _, err := d.Do(context.Background(), &bad); err == nil {
		t.Error("sample-count mismatch accepted")
	}
	bad = *enc
	bad.Features = 5 // geometry mismatch with the ciphertext matrix
	if _, err := d.Do(context.Background(), &bad); err == nil {
		t.Error("feature-count mismatch accepted")
	}
	if _, err := d.Do(context.Background(), nil); err == nil {
		t.Error("nil batch accepted")
	}
}

// TestDispatcherHammer drives many concurrent connections' worth of
// requests (mixed batch sizes, sprinkled cancellations) through one
// dispatcher and verifies per-sample demux on every response. Run under
// -race via `make race`.
func TestDispatcherHammer(t *testing.T) {
	f := newFakeBackend()
	d, err := NewDispatcher(f.predict, DispatcherOptions{MaxCoalescedSamples: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	const (
		goroutines = 16
		perG       = 25
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				n := 1 + (g+i)%3
				enc, want := f.newBatch(4, 2, n)
				ctx := context.Background()
				if (g+i)%11 == 0 {
					var cancel context.CancelFunc
					ctx, cancel = context.WithCancel(ctx)
					cancel() // already-cancelled: must never corrupt a round
				}
				preds, err := d.Do(ctx, enc)
				if err != nil {
					if !errors.Is(err, context.Canceled) {
						t.Errorf("goroutine %d request %d: %v", g, i, err)
					}
					continue
				}
				checkPreds(t, "hammer", preds, want)
			}
		}()
	}
	wg.Wait()
	st := d.Stats()
	if st.Requests == 0 || st.Evals == 0 {
		t.Fatalf("stats = %+v, nothing served", st)
	}
	if st.Evals > st.Requests {
		t.Errorf("more evaluations (%d) than requests (%d)", st.Evals, st.Requests)
	}
	t.Logf("hammer: %d requests, %d samples, %d evals (max coalesced %d), p50 %s p99 %s",
		st.Requests, st.Samples, st.Evals, st.MaxCoalesced, st.P50, st.P99)
}

// TestPredictionServerBusyOverWire checks the end-to-end backpressure
// story: a saturated coalescing server answers with a retryable error and
// the client surfaces it as wire.ErrBusy.
func TestPredictionServerBusyOverWire(t *testing.T) {
	g := newGatedBackend()
	srv, err := NewCoalescingPredictionServer(g.predict, nil, DispatcherOptions{MaxQueue: 1})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, l) }()

	dial := func() net.Conn {
		t.Helper()
		conn, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		return conn
	}

	// Occupy the evaluator, then fill the queue.
	enc0, _ := g.newBatch(3, 2, 1)
	conn0 := dial()
	defer conn0.Close()
	go RequestPrediction(conn0, enc0) //nolint:errcheck
	<-g.entered
	enc1, want1 := g.newBatch(3, 2, 1)
	conn1 := dial()
	defer conn1.Close()
	res1 := make(chan error, 1)
	var preds1 []int
	go func() {
		var err error
		preds1, err = RequestPrediction(conn1, enc1)
		res1 <- err
	}()
	waitFor(t, func() bool { return srv.Stats().QueueDepth == 1 })

	// Third client: typed retryable rejection.
	enc2, want2 := g.newBatch(3, 2, 1)
	conn2 := dial()
	defer conn2.Close()
	if _, err := RequestPrediction(conn2, enc2); !errors.Is(err, ErrBusy) {
		t.Fatalf("saturated server: err = %v, want wire.ErrBusy", err)
	}

	// Back off, retry on the same connection: now served.
	close(g.release)
	if err := <-res1; err != nil {
		t.Fatalf("queued request: %v", err)
	}
	checkPreds(t, "queued", preds1, want1)
	preds2, err := RequestPrediction(conn2, enc2)
	if err != nil {
		t.Fatalf("retry after busy: %v", err)
	}
	checkPreds(t, "retry", preds2, want2)

	cancel()
	if err := <-served; err != nil && !errors.Is(err, net.ErrClosed) {
		t.Errorf("Serve: %v", err)
	}
}

// waitFor polls cond until it holds or the test deadline approaches.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 10s")
}
