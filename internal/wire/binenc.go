package wire

// Binary body layouts for the hot-path frames (codec.go). Group elements
// are flat uint64 limb slabs internally; on the wire they become
// fixed-width big-endian byte strings with the width declared once per
// section, so a ciphertext matrix is one contiguous slab decoded by pure
// slicing — no gob descriptors, no per-element length prefixes, and no
// reflection. All integers are big-endian; counts are u32, element
// widths u16.
//
//	ciphertext vector section ("ctvec"):
//	  u32 count | u32 eta | u16 elemLen |
//	  count × ( ct0 [elemLen] | eta × ct [elemLen] )
//
//	element matrix section (FEBO cells):
//	  u16 elemLen | rows·cols × ( cmt [elemLen] | ct [elemLen] )
//
//	EncryptedMatrix:
//	  u32 rows | u32 cols | u8 flags (1=rowCts, 2=elems) |
//	  ctvec colCts | [ctvec rowCts] | [element matrix]
//
//	EncryptedBatch (bfPredict, bfSubmit):
//	  u32 features | u32 classes | u32 n | u8 flags (1=X, 2=Y) |
//	  [EncryptedMatrix X] | [EncryptedMatrix Y]
//
//	EncryptedConvBatch (bfSubmitConv):
//	  u32 ×10 geometry (C,H,W,K,Stride,Pad,OutH,OutW,Classes,N) |
//	  u8 flags (1=Y) | ctvec windows (N·outH·outW, eta=C·K·K) |
//	  ctvec positions (N·C·K·K, eta=outH·outW) | [EncryptedMatrix Y]
//
//	sparse ciphertext vector section ("spctvec", coordinate form —
//	supports may differ per ciphertext, so nnz is per-entry):
//	  u32 count | u32 eta | u16 elemLen |
//	  count × ( u32 nnz | ct0 [elemLen] |
//	            nnz × ( u32 idx | ct [elemLen] ) )
//	  indices are strictly increasing and < eta; nnz ≤ eta
//
//	SparseBatch (bfPredictTopK):
//	  u32 k | u32 features | u32 classes | u32 n |
//	  spctvec colCts (count=n, eta=features)
//
//	predictions (bfPreds):
//	  u32 count | count × i32 class
//
//	top-k hits (bfTopK):
//	  u32 nSamples | nSamples × ( u32 h |
//	    h × ( u32 label | i64 value, two's complement ) )

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"

	"cryptonn/internal/core"
	"cryptonn/internal/dlog"
	"cryptonn/internal/febo"
	"cryptonn/internal/feip"
	"cryptonn/internal/securemat"
)

// ErrBinaryEncoding reports a malformed binary body.
var ErrBinaryEncoding = errors.New("wire: malformed binary frame body")

// maxBinCount bounds any single count or dimension on both sides of the
// wire: the decoder rejects hostile 4-byte headers before they trigger a
// huge allocation, and the encoder rejects the same values up front so a
// legitimate oversize payload fails fast locally instead of being
// refused by every binary peer (the two codecs accept identical domains).
const maxBinCount = 1 << 24

func appendU32(b []byte, v int) ([]byte, error) {
	if v < 0 || v > maxBinCount {
		return nil, fmt.Errorf("%w: value %d out of range", ErrBinaryEncoding, v)
	}
	return binary.BigEndian.AppendUint32(b, uint32(v)), nil
}

// elemWidth returns the fixed byte width needed for every element of the
// given vectors (at least 1 so zero-valued elements still occupy a slot).
func elemWidth(widest int, vals ...*big.Int) (int, error) {
	for _, v := range vals {
		if v == nil {
			return 0, fmt.Errorf("%w: nil group element", ErrBinaryEncoding)
		}
		if v.Sign() < 0 {
			return 0, fmt.Errorf("%w: negative group element", ErrBinaryEncoding)
		}
		widest = max(widest, (v.BitLen()+7)/8)
	}
	if widest > 0xffff {
		return 0, fmt.Errorf("%w: element width %d exceeds u16", ErrBinaryEncoding, widest)
	}
	return max(widest, 1), nil
}

// appendBig appends v as exactly width big-endian bytes.
func appendBig(b []byte, v *big.Int, width int) []byte {
	n := len(b)
	b = append(b, make([]byte, width)...)
	v.FillBytes(b[n : n+width])
	return b
}

// binCursor walks a binary body; every read checks the remaining length.
type binCursor struct {
	b   []byte
	off int
}

func (c *binCursor) take(n int) ([]byte, error) {
	if n < 0 || len(c.b)-c.off < n {
		return nil, fmt.Errorf("%w: truncated at offset %d (need %d of %d)", ErrBinaryEncoding, c.off, n, len(c.b))
	}
	s := c.b[c.off : c.off+n]
	c.off += n
	return s, nil
}

func (c *binCursor) u8() (byte, error) {
	s, err := c.take(1)
	if err != nil {
		return 0, err
	}
	return s[0], nil
}

func (c *binCursor) u16() (int, error) {
	s, err := c.take(2)
	if err != nil {
		return 0, err
	}
	return int(binary.BigEndian.Uint16(s)), nil
}

func (c *binCursor) u32() (int, error) {
	s, err := c.take(4)
	if err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint32(s)
	if v > maxBinCount {
		return 0, fmt.Errorf("%w: count %d exceeds limit", ErrBinaryEncoding, v)
	}
	return int(v), nil
}

func (c *binCursor) big(width int) (*big.Int, error) {
	s, err := c.take(width)
	if err != nil {
		return nil, err
	}
	return new(big.Int).SetBytes(s), nil
}

func (c *binCursor) done() error {
	if c.off != len(c.b) {
		return fmt.Errorf("%w: %d trailing bytes", ErrBinaryEncoding, len(c.b)-c.off)
	}
	return nil
}

// --- ciphertext vector sections -------------------------------------------

// appendCtVec writes a ctvec section for FEIP ciphertexts sharing one
// dimension.
func appendCtVec(b []byte, cts []*feip.Ciphertext, eta int) ([]byte, error) {
	width := 0
	for _, ct := range cts {
		if ct == nil || len(ct.Ct) != eta {
			return nil, fmt.Errorf("%w: ciphertext dimension mismatch", ErrBinaryEncoding)
		}
		var err error
		if width, err = elemWidth(width, ct.Ct0); err != nil {
			return nil, err
		}
		if width, err = elemWidth(width, ct.Ct...); err != nil {
			return nil, err
		}
	}
	width = max(width, 1)
	var err error
	if b, err = appendU32(b, len(cts)); err != nil {
		return nil, err
	}
	if b, err = appendU32(b, eta); err != nil {
		return nil, err
	}
	b = binary.BigEndian.AppendUint16(b, uint16(width))
	for _, ct := range cts {
		b = appendBig(b, ct.Ct0, width)
		for _, v := range ct.Ct {
			b = appendBig(b, v, width)
		}
	}
	return b, nil
}

// readCtVec reads a ctvec section, requiring the declared shape when
// wantCount/wantEta are non-negative.
func readCtVec(c *binCursor, wantCount, wantEta int) ([]*feip.Ciphertext, error) {
	count, err := c.u32()
	if err != nil {
		return nil, err
	}
	eta, err := c.u32()
	if err != nil {
		return nil, err
	}
	width, err := c.u16()
	if err != nil {
		return nil, err
	}
	if wantCount >= 0 && count != wantCount {
		return nil, fmt.Errorf("%w: %d ciphertexts, want %d", ErrBinaryEncoding, count, wantCount)
	}
	if wantEta >= 0 && eta != wantEta {
		return nil, fmt.Errorf("%w: ciphertext dimension %d, want %d", ErrBinaryEncoding, eta, wantEta)
	}
	if width < 1 {
		return nil, fmt.Errorf("%w: zero element width", ErrBinaryEncoding)
	}
	// The whole section must fit the remaining body before any per-count
	// allocation happens.
	if _, err := c.take(0); err != nil {
		return nil, err
	}
	need := count * (eta + 1) * width
	if eta >= maxBinCount || count > 0 && need/count != (eta+1)*width || need > len(c.b)-c.off {
		return nil, fmt.Errorf("%w: section larger than body", ErrBinaryEncoding)
	}
	cts := make([]*feip.Ciphertext, count)
	for i := range cts {
		ct := &feip.Ciphertext{Ct: make([]*big.Int, eta)}
		if ct.Ct0, err = c.big(width); err != nil {
			return nil, err
		}
		for j := range ct.Ct {
			if ct.Ct[j], err = c.big(width); err != nil {
				return nil, err
			}
		}
		cts[i] = ct
	}
	return cts, nil
}

// appendSparseCtVec writes a spctvec section for coordinate-form FEIP
// ciphertexts sharing one dimension.
func appendSparseCtVec(b []byte, cts []*feip.SparseCiphertext, eta int) ([]byte, error) {
	width := 0
	for _, ct := range cts {
		if ct == nil || ct.Eta != eta || len(ct.Idx) != len(ct.Ct) || len(ct.Idx) > eta {
			return nil, fmt.Errorf("%w: sparse ciphertext geometry mismatch", ErrBinaryEncoding)
		}
		var err error
		if width, err = elemWidth(width, ct.Ct0); err != nil {
			return nil, err
		}
		if width, err = elemWidth(width, ct.Ct...); err != nil {
			return nil, err
		}
	}
	width = max(width, 1)
	var err error
	if b, err = appendU32(b, len(cts)); err != nil {
		return nil, err
	}
	if b, err = appendU32(b, eta); err != nil {
		return nil, err
	}
	b = binary.BigEndian.AppendUint16(b, uint16(width))
	for _, ct := range cts {
		if b, err = appendU32(b, len(ct.Idx)); err != nil {
			return nil, err
		}
		b = appendBig(b, ct.Ct0, width)
		prev := -1
		for t, idx := range ct.Idx {
			if idx <= prev || idx >= eta {
				return nil, fmt.Errorf("%w: support index %d out of order or range", ErrBinaryEncoding, idx)
			}
			prev = idx
			if b, err = appendU32(b, idx); err != nil {
				return nil, err
			}
			b = appendBig(b, ct.Ct[t], width)
		}
	}
	return b, nil
}

// readSparseCtVec reads a spctvec section, requiring the declared shape
// when wantCount/wantEta are non-negative. Supports are validated to the
// canonical form feip.SparseCiphertext.Validate demands: strictly
// increasing, in-range indices with nnz ≤ eta — a hostile frame fails here
// with ErrBinaryEncoding instead of reaching the crypto layer.
func readSparseCtVec(c *binCursor, wantCount, wantEta int) ([]*feip.SparseCiphertext, error) {
	count, err := c.u32()
	if err != nil {
		return nil, err
	}
	eta, err := c.u32()
	if err != nil {
		return nil, err
	}
	width, err := c.u16()
	if err != nil {
		return nil, err
	}
	if wantCount >= 0 && count != wantCount {
		return nil, fmt.Errorf("%w: %d sparse ciphertexts, want %d", ErrBinaryEncoding, count, wantCount)
	}
	if wantEta >= 0 && eta != wantEta {
		return nil, fmt.Errorf("%w: sparse ciphertext dimension %d, want %d", ErrBinaryEncoding, eta, wantEta)
	}
	if width < 1 {
		return nil, fmt.Errorf("%w: zero element width", ErrBinaryEncoding)
	}
	if eta < 1 || eta >= maxBinCount {
		return nil, fmt.Errorf("%w: sparse dimension %d out of range", ErrBinaryEncoding, eta)
	}
	// Every entry costs at least its nnz word plus ct0, so a hostile count
	// far beyond the body fails before the per-entry loop allocates.
	if minNeed := count * (4 + width); count > 0 && (minNeed/count != 4+width || minNeed > len(c.b)-c.off) {
		return nil, fmt.Errorf("%w: section larger than body", ErrBinaryEncoding)
	}
	cts := make([]*feip.SparseCiphertext, count)
	for i := range cts {
		nnz, err := c.u32()
		if err != nil {
			return nil, err
		}
		if nnz > eta {
			return nil, fmt.Errorf("%w: nnz %d exceeds dimension %d", ErrBinaryEncoding, nnz, eta)
		}
		// The pair list must fit the remaining body before allocation; the
		// division re-check keeps a hostile nnz·(4+width) product exact
		// (mulBounded discipline: nnz ≤ eta < 2^24 and width < 2^16, so the
		// product cannot wrap, but the check is cheap and local).
		need := nnz * (4 + width)
		if nnz > 0 && (need/nnz != 4+width || need > len(c.b)-c.off-width) {
			return nil, fmt.Errorf("%w: sparse pair list larger than body", ErrBinaryEncoding)
		}
		ct := &feip.SparseCiphertext{Eta: eta, Idx: make([]int, nnz), Ct: make([]*big.Int, nnz)}
		if ct.Ct0, err = c.big(width); err != nil {
			return nil, err
		}
		prev := -1
		for t := 0; t < nnz; t++ {
			idx, err := c.u32()
			if err != nil {
				return nil, err
			}
			if idx <= prev || idx >= eta {
				return nil, fmt.Errorf("%w: support index %d out of order or range at pair %d", ErrBinaryEncoding, idx, t)
			}
			prev = idx
			ct.Idx[t] = idx
			if ct.Ct[t], err = c.big(width); err != nil {
				return nil, err
			}
		}
		cts[i] = ct
	}
	return cts, nil
}

// --- EncryptedMatrix -------------------------------------------------------

const (
	matFlagRows  = 1
	matFlagElems = 2
)

func appendMatrix(b []byte, m *securemat.EncryptedMatrix) ([]byte, error) {
	if m == nil || m.ColCts == nil {
		return nil, fmt.Errorf("%w: matrix without column ciphertexts", ErrBinaryEncoding)
	}
	var err error
	if b, err = appendU32(b, m.Rows); err != nil {
		return nil, err
	}
	if b, err = appendU32(b, m.Cols); err != nil {
		return nil, err
	}
	var flags byte
	if m.RowCts != nil {
		flags |= matFlagRows
	}
	if m.Elems != nil {
		flags |= matFlagElems
	}
	b = append(b, flags)
	if b, err = appendCtVec(b, m.ColCts, m.Rows); err != nil {
		return nil, fmt.Errorf("column ciphertexts: %w", err)
	}
	if m.RowCts != nil {
		if b, err = appendCtVec(b, m.RowCts, m.Cols); err != nil {
			return nil, fmt.Errorf("row ciphertexts: %w", err)
		}
	}
	if m.Elems != nil {
		if len(m.Elems) != m.Rows {
			return nil, fmt.Errorf("%w: %d element rows for %d matrix rows", ErrBinaryEncoding, len(m.Elems), m.Rows)
		}
		width := 0
		for _, row := range m.Elems {
			if len(row) != m.Cols {
				return nil, fmt.Errorf("%w: ragged element matrix", ErrBinaryEncoding)
			}
			for _, e := range row {
				if e == nil {
					return nil, fmt.Errorf("%w: nil element ciphertext", ErrBinaryEncoding)
				}
				if width, err = elemWidth(width, e.Cmt, e.Ct); err != nil {
					return nil, err
				}
			}
		}
		width = max(width, 1)
		b = binary.BigEndian.AppendUint16(b, uint16(width))
		for _, row := range m.Elems {
			for _, e := range row {
				b = appendBig(b, e.Cmt, width)
				b = appendBig(b, e.Ct, width)
			}
		}
	}
	return b, nil
}

func readMatrix(c *binCursor) (*securemat.EncryptedMatrix, error) {
	rows, err := c.u32()
	if err != nil {
		return nil, err
	}
	cols, err := c.u32()
	if err != nil {
		return nil, err
	}
	flags, err := c.u8()
	if err != nil {
		return nil, err
	}
	m := &securemat.EncryptedMatrix{Rows: rows, Cols: cols}
	if m.ColCts, err = readCtVec(c, cols, rows); err != nil {
		return nil, fmt.Errorf("column ciphertexts: %w", err)
	}
	if flags&matFlagRows != 0 {
		if m.RowCts, err = readCtVec(c, rows, cols); err != nil {
			return nil, fmt.Errorf("row ciphertexts: %w", err)
		}
	}
	if flags&matFlagElems != 0 {
		width, err := c.u16()
		if err != nil {
			return nil, err
		}
		if width < 1 {
			return nil, fmt.Errorf("%w: zero element width", ErrBinaryEncoding)
		}
		need := rows * cols * 2 * width
		if rows > 0 && cols > 0 && (need/(rows*cols) != 2*width || need > len(c.b)-c.off) {
			return nil, fmt.Errorf("%w: element section larger than body", ErrBinaryEncoding)
		}
		m.Elems = make([][]*febo.Ciphertext, rows)
		for i := range m.Elems {
			m.Elems[i] = make([]*febo.Ciphertext, cols)
			for j := range m.Elems[i] {
				e := &febo.Ciphertext{}
				if e.Cmt, err = c.big(width); err != nil {
					return nil, err
				}
				if e.Ct, err = c.big(width); err != nil {
					return nil, err
				}
				m.Elems[i][j] = e
			}
		}
	}
	return m, nil
}

// --- EncryptedBatch --------------------------------------------------------

const (
	batchFlagX = 1
	batchFlagY = 2
)

// appendEncryptedBatch writes the bfPredict/bfSubmit body.
func appendEncryptedBatch(b []byte, enc *core.EncryptedBatch) ([]byte, error) {
	if enc == nil {
		return nil, fmt.Errorf("%w: nil batch", ErrBinaryEncoding)
	}
	var err error
	if b, err = appendU32(b, enc.Features); err != nil {
		return nil, err
	}
	if b, err = appendU32(b, enc.Classes); err != nil {
		return nil, err
	}
	if b, err = appendU32(b, enc.N); err != nil {
		return nil, err
	}
	var flags byte
	if enc.X != nil {
		flags |= batchFlagX
	}
	if enc.Y != nil {
		flags |= batchFlagY
	}
	b = append(b, flags)
	if enc.X != nil {
		if b, err = appendMatrix(b, enc.X); err != nil {
			return nil, fmt.Errorf("wire: encoding X: %w", err)
		}
	}
	if enc.Y != nil {
		if b, err = appendMatrix(b, enc.Y); err != nil {
			return nil, fmt.Errorf("wire: encoding Y: %w", err)
		}
	}
	return b, nil
}

// decodeEncryptedBatch reads a bfPredict/bfSubmit body.
func decodeEncryptedBatch(body []byte) (*core.EncryptedBatch, error) {
	c := &binCursor{b: body}
	enc := &core.EncryptedBatch{}
	var err error
	if enc.Features, err = c.u32(); err != nil {
		return nil, err
	}
	if enc.Classes, err = c.u32(); err != nil {
		return nil, err
	}
	if enc.N, err = c.u32(); err != nil {
		return nil, err
	}
	flags, err := c.u8()
	if err != nil {
		return nil, err
	}
	if flags&batchFlagX != 0 {
		if enc.X, err = readMatrix(c); err != nil {
			return nil, fmt.Errorf("wire: decoding X: %w", err)
		}
	}
	if flags&batchFlagY != 0 {
		if enc.Y, err = readMatrix(c); err != nil {
			return nil, fmt.Errorf("wire: decoding Y: %w", err)
		}
	}
	if err := c.done(); err != nil {
		return nil, err
	}
	return enc, nil
}

// --- EncryptedConvBatch ----------------------------------------------------

// appendConvBatch writes the bfSubmitConv body.
func appendConvBatch(b []byte, enc *core.EncryptedConvBatch) ([]byte, error) {
	if enc == nil {
		return nil, fmt.Errorf("%w: nil conv batch", ErrBinaryEncoding)
	}
	var err error
	for _, v := range []int{enc.C, enc.H, enc.W, enc.K, enc.Stride, enc.Pad, enc.OutH, enc.OutW, enc.Classes, enc.N} {
		if b, err = appendU32(b, v); err != nil {
			return nil, err
		}
	}
	var flags byte
	if enc.Y != nil {
		flags |= batchFlagY
	}
	b = append(b, flags)
	windowLen, numWindows := enc.WindowLen(), enc.NumWindows()
	if len(enc.Windows) != enc.N || len(enc.Positions) != enc.N {
		return nil, fmt.Errorf("%w: %d/%d per-sample slices for %d samples", ErrBinaryEncoding, len(enc.Windows), len(enc.Positions), enc.N)
	}
	flat := make([]*feip.Ciphertext, 0, enc.N*numWindows)
	for _, ws := range enc.Windows {
		if len(ws) != numWindows {
			return nil, fmt.Errorf("%w: %d windows, want %d", ErrBinaryEncoding, len(ws), numWindows)
		}
		flat = append(flat, ws...)
	}
	if b, err = appendCtVec(b, flat, windowLen); err != nil {
		return nil, fmt.Errorf("wire: encoding windows: %w", err)
	}
	flat = flat[:0]
	for _, ps := range enc.Positions {
		if len(ps) != windowLen {
			return nil, fmt.Errorf("%w: %d position rows, want %d", ErrBinaryEncoding, len(ps), windowLen)
		}
		flat = append(flat, ps...)
	}
	if b, err = appendCtVec(b, flat, numWindows); err != nil {
		return nil, fmt.Errorf("wire: encoding positions: %w", err)
	}
	if enc.Y != nil {
		if b, err = appendMatrix(b, enc.Y); err != nil {
			return nil, fmt.Errorf("wire: encoding Y: %w", err)
		}
	}
	return b, nil
}

// mulBounded multiplies two decoded dimensions with overflow-safe
// arithmetic: both factors and the product must lie in [1, maxBinCount].
// Because each checked value is at most 2^24 the uint64 product is at
// most 2^48 and can never wrap, so chained calls stay exact no matter
// what geometry a hostile frame declares.
func mulBounded(a, b int) (int, error) {
	if a < 1 || a > maxBinCount || b < 1 || b > maxBinCount {
		return 0, fmt.Errorf("%w: conv geometry out of range", ErrBinaryEncoding)
	}
	p := uint64(a) * uint64(b)
	if p > maxBinCount {
		return 0, fmt.Errorf("%w: conv geometry product %d exceeds limit", ErrBinaryEncoding, p)
	}
	return int(p), nil
}

// decodeConvBatch reads a bfSubmitConv body. The geometry words are
// attacker-controlled, so windowLen (C·K·K) and numWindows (OutH·OutW)
// are derived via mulBounded rather than the in-memory helpers — a
// product that overflows int64 to a negative value would otherwise
// disable readCtVec's shape checks and panic in the re-slicing below.
func decodeConvBatch(body []byte) (*core.EncryptedConvBatch, error) {
	c := &binCursor{b: body}
	enc := &core.EncryptedConvBatch{}
	var err error
	for _, dst := range []*int{&enc.C, &enc.H, &enc.W, &enc.K, &enc.Stride, &enc.Pad, &enc.OutH, &enc.OutW, &enc.Classes, &enc.N} {
		if *dst, err = c.u32(); err != nil {
			return nil, err
		}
	}
	flags, err := c.u8()
	if err != nil {
		return nil, err
	}
	windowLen, err := mulBounded(enc.C, enc.K)
	if err == nil {
		windowLen, err = mulBounded(windowLen, enc.K)
	}
	if err != nil {
		return nil, err
	}
	numWindows, err := mulBounded(enc.OutH, enc.OutW)
	if err != nil {
		return nil, err
	}
	totalWindows, err := mulBounded(enc.N, numWindows)
	if err != nil {
		return nil, err
	}
	totalPositions, err := mulBounded(enc.N, windowLen)
	if err != nil {
		return nil, err
	}
	flat, err := readCtVec(c, totalWindows, windowLen)
	if err != nil {
		return nil, fmt.Errorf("wire: decoding windows: %w", err)
	}
	enc.Windows = make([][]*feip.Ciphertext, enc.N)
	for s := range enc.Windows {
		enc.Windows[s] = flat[s*numWindows : (s+1)*numWindows]
	}
	if flat, err = readCtVec(c, totalPositions, numWindows); err != nil {
		return nil, fmt.Errorf("wire: decoding positions: %w", err)
	}
	enc.Positions = make([][]*feip.Ciphertext, enc.N)
	for s := range enc.Positions {
		enc.Positions[s] = flat[s*windowLen : (s+1)*windowLen]
	}
	if flags&batchFlagY != 0 {
		if enc.Y, err = readMatrix(c); err != nil {
			return nil, fmt.Errorf("wire: decoding Y: %w", err)
		}
	}
	if err := c.done(); err != nil {
		return nil, err
	}
	return enc, nil
}

// --- SparseBatch (bfPredictTopK) -------------------------------------------

// appendSparseBatch writes the bfPredictTopK body: the requested k and the
// coordinate-form batch.
func appendSparseBatch(b []byte, k int, sp *core.SparseBatch) ([]byte, error) {
	if sp == nil || sp.X == nil {
		return nil, fmt.Errorf("%w: nil sparse batch", ErrBinaryEncoding)
	}
	if k < 1 {
		return nil, fmt.Errorf("%w: top-k count %d out of range", ErrBinaryEncoding, k)
	}
	if sp.X.Rows != sp.Features || sp.X.Cols != sp.N {
		return nil, fmt.Errorf("%w: sparse matrix is %dx%d, batch claims %dx%d", ErrBinaryEncoding, sp.X.Rows, sp.X.Cols, sp.Features, sp.N)
	}
	var err error
	if b, err = appendU32(b, k); err != nil {
		return nil, err
	}
	if b, err = appendU32(b, sp.Features); err != nil {
		return nil, err
	}
	if b, err = appendU32(b, sp.Classes); err != nil {
		return nil, err
	}
	if b, err = appendU32(b, sp.N); err != nil {
		return nil, err
	}
	if b, err = appendSparseCtVec(b, sp.X.ColCts, sp.Features); err != nil {
		return nil, fmt.Errorf("wire: encoding sparse X: %w", err)
	}
	return b, nil
}

// decodeSparseBatch reads a bfPredictTopK body.
func decodeSparseBatch(body []byte) (int, *core.SparseBatch, error) {
	c := &binCursor{b: body}
	k, err := c.u32()
	if err != nil {
		return 0, nil, err
	}
	if k < 1 {
		return 0, nil, fmt.Errorf("%w: top-k count %d out of range", ErrBinaryEncoding, k)
	}
	sp := &core.SparseBatch{}
	if sp.Features, err = c.u32(); err != nil {
		return 0, nil, err
	}
	if sp.Classes, err = c.u32(); err != nil {
		return 0, nil, err
	}
	if sp.N, err = c.u32(); err != nil {
		return 0, nil, err
	}
	cts, err := readSparseCtVec(c, sp.N, sp.Features)
	if err != nil {
		return 0, nil, fmt.Errorf("wire: decoding sparse X: %w", err)
	}
	sp.X = &securemat.SparseEncryptedMatrix{Rows: sp.Features, Cols: sp.N, ColCts: cts}
	if err := c.done(); err != nil {
		return 0, nil, err
	}
	return k, sp, nil
}

// --- top-k hits (bfTopK) ---------------------------------------------------

// appendTopKHits writes the bfTopK body: one descending hit list per
// sample.
func appendTopKHits(b []byte, hits [][]dlog.TopKHit) ([]byte, error) {
	var err error
	if b, err = appendU32(b, len(hits)); err != nil {
		return nil, err
	}
	for _, hs := range hits {
		if b, err = appendU32(b, len(hs)); err != nil {
			return nil, err
		}
		for _, h := range hs {
			if b, err = appendU32(b, h.Index); err != nil {
				return nil, err
			}
			b = binary.BigEndian.AppendUint64(b, uint64(h.Value))
		}
	}
	return b, nil
}

// decodeTopKHits reads a bfTopK body.
func decodeTopKHits(body []byte) ([][]dlog.TopKHit, error) {
	c := &binCursor{b: body}
	n, err := c.u32()
	if err != nil {
		return nil, err
	}
	// Each sample costs at least its length word.
	if n*4 > len(c.b)-c.off {
		return nil, fmt.Errorf("%w: top-k section larger than body", ErrBinaryEncoding)
	}
	hits := make([][]dlog.TopKHit, n)
	for i := range hits {
		h, err := c.u32()
		if err != nil {
			return nil, err
		}
		if need := h * 12; h > 0 && (need/h != 12 || need > len(c.b)-c.off) {
			return nil, fmt.Errorf("%w: hit list larger than body", ErrBinaryEncoding)
		}
		hs := make([]dlog.TopKHit, h)
		for t := range hs {
			if hs[t].Index, err = c.u32(); err != nil {
				return nil, err
			}
			s, err := c.take(8)
			if err != nil {
				return nil, err
			}
			hs[t].Value = int64(binary.BigEndian.Uint64(s))
		}
		hits[i] = hs
	}
	if err := c.done(); err != nil {
		return nil, err
	}
	return hits, nil
}

// --- predictions -----------------------------------------------------------

// appendPreds writes the bfPreds body.
func appendPreds(b []byte, preds []int) ([]byte, error) {
	var err error
	if b, err = appendU32(b, len(preds)); err != nil {
		return nil, err
	}
	for _, p := range preds {
		if p < -1<<31 || p > 1<<31-1 {
			return nil, fmt.Errorf("%w: prediction %d out of i32 range", ErrBinaryEncoding, p)
		}
		b = binary.BigEndian.AppendUint32(b, uint32(int32(p)))
	}
	return b, nil
}

// decodePreds reads a bfPreds body.
func decodePreds(body []byte) ([]int, error) {
	c := &binCursor{b: body}
	n, err := c.u32()
	if err != nil {
		return nil, err
	}
	if n*4 > len(c.b)-c.off {
		return nil, fmt.Errorf("%w: prediction section larger than body", ErrBinaryEncoding)
	}
	preds := make([]int, n)
	for i := range preds {
		s, err := c.take(4)
		if err != nil {
			return nil, err
		}
		preds[i] = int(int32(binary.BigEndian.Uint32(s)))
	}
	if err := c.done(); err != nil {
		return nil, err
	}
	return preds, nil
}
