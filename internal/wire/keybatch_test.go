package wire

import (
	"context"
	"net"
	"testing"

	"cryptonn/internal/authority"
	"math/big"

	"cryptonn/internal/dlog"
	"cryptonn/internal/febo"
	"cryptonn/internal/feip"
	"cryptonn/internal/group"
	"cryptonn/internal/securemat"
)

// startAuthority spins up an authority server and returns a connected key
// service.
func startAuthority(t *testing.T, policy authority.Policy) (*authority.Authority, *RemoteKeyService) {
	t.Helper()
	auth, err := authority.New(group.TestParams(), policy)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewAuthorityServer(auth, nil)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve(ctx, l) }()
	t.Cleanup(func() { cancel(); <-done })
	ks, err := DialKeyService(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ks.Close() })
	return auth, ks
}

func TestIPKeyBatchOverWireMatchesIndividual(t *testing.T) {
	auth, ks := startAuthority(t, authority.AllowAll())
	ys := [][]int64{{1, -2, 3}, {0, 5, -6}, {7, 8, 9}, {-1, -1, -1}}
	batch, err := ks.IPKeyBatch(ys)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(ys) {
		t.Fatalf("batch returned %d keys, want %d", len(batch), len(ys))
	}
	for i, y := range ys {
		// The authority's derivation is deterministic per (msk, y):
		// deriving the same key in-process must agree with the wire
		// batch.
		direct, err := auth.IPKey(y)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i].K.Cmp(direct.K) != 0 {
			t.Errorf("wire batch key %d differs from direct derivation", i)
		}
	}
}

func TestIPKeyBatchKeysDecryptOverWire(t *testing.T) {
	_, ks := startAuthority(t, authority.AllowAll())
	x := []int64{4, -1, 2, 6}
	w := [][]int64{{1, 0, 0, 0}, {1, 1, 1, 1}, {-2, 3, 0, 1}}

	mpk, err := ks.FEIPPublic(len(x))
	if err != nil {
		t.Fatal(err)
	}
	ct, err := feip.Encrypt(mpk, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	solver, err := dlog.NewSolver(mpk.Params, 200)
	if err != nil {
		t.Fatal(err)
	}
	// Engine.DotKeys should automatically take the batch path over the
	// wire on its first (cache-missing) derivation.
	eng, err := securemat.NewEngine(ks, securemat.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	keys, err := eng.DotKeys(w)
	if err != nil {
		t.Fatal(err)
	}
	for i, y := range w {
		got, err := feip.Decrypt(mpk, ct, keys[i], y, solver)
		if err != nil {
			t.Fatalf("decrypt row %d: %v", i, err)
		}
		var want int64
		for k := range x {
			want += x[k] * y[k]
		}
		if got != want {
			t.Errorf("row %d: got %d, want %d", i, got, want)
		}
	}
}

func TestIPKeyBatchEmptyRejected(t *testing.T) {
	_, ks := startAuthority(t, authority.AllowAll())
	if _, err := ks.IPKeyBatch(nil); err == nil {
		t.Error("empty batch accepted client-side")
	}
	// Bypass the client-side check to exercise the server-side one.
	resp, err := ks.roundTrip(&Request{Kind: KindIPKeyBatch})
	if err == nil {
		t.Errorf("server accepted empty batch: %+v", resp)
	}
}

func TestIPKeyBatchPolicyDenied(t *testing.T) {
	_, ks := startAuthority(t, authority.Policy{}) // nothing permitted
	if _, err := ks.IPKeyBatch([][]int64{{1, 2}}); err == nil {
		t.Error("policy-denied batch succeeded over the wire")
	}
}

func TestBOKeyBatchOverWireDecrypts(t *testing.T) {
	_, ks := startAuthority(t, authority.AllowAll())
	pk, err := ks.FEBOPublic()
	if err != nil {
		t.Fatal(err)
	}
	xs := []int64{12, -7, 30}
	ys := []int64{5, 5, -2}
	cts := make([]*febo.Ciphertext, len(xs))
	cmts := make([]*big.Int, len(xs))
	for i, x := range xs {
		ct, err := febo.Encrypt(pk, x, nil)
		if err != nil {
			t.Fatal(err)
		}
		cts[i] = ct
		cmts[i] = ct.Cmt
	}
	keys, err := ks.BOKeyBatch(cmts, febo.OpAdd, ys)
	if err != nil {
		t.Fatal(err)
	}
	solver, err := dlog.NewSolver(pk.Params, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		got, err := febo.Decrypt(pk, keys[i], cts[i], febo.OpAdd, ys[i], solver)
		if err != nil {
			t.Fatalf("decrypt %d: %v", i, err)
		}
		if got != xs[i]+ys[i] {
			t.Errorf("element %d: %d, want %d", i, got, xs[i]+ys[i])
		}
	}
}

func TestBOKeyBatchValidation(t *testing.T) {
	_, ks := startAuthority(t, authority.AllowAll())
	if _, err := ks.BOKeyBatch(nil, febo.OpAdd, nil); err == nil {
		t.Error("empty BO batch accepted")
	}
	if _, err := ks.BOKeyBatch([]*big.Int{big.NewInt(2)}, febo.OpAdd, []int64{1, 2}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	// Server-side length check, bypassing the client-side one.
	resp, err := ks.roundTrip(&Request{Kind: KindBOKeyBatch, Op: int(febo.OpAdd), Cmts: []*big.Int{big.NewInt(2)}})
	if err == nil {
		t.Errorf("server accepted mismatched batch: %+v", resp)
	}
}

// TestElementwiseKeysUseBatchPath verifies securemat.ElementwiseKeys over
// a networked key service takes a single round trip (batch) and its keys
// decrypt correctly end to end.
func TestElementwiseKeysUseBatchPath(t *testing.T) {
	auth, ks := startAuthority(t, authority.AllowAll())
	eng, err := securemat.NewEngine(ks, securemat.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	x := [][]int64{{4, -3}, {10, 0}}
	y := [][]int64{{2, 2}, {-5, 7}}
	enc, err := eng.Encrypt(x, securemat.EncryptOptions{})
	if err != nil {
		t.Fatal(err)
	}
	before := auth.Stats().BOKeys
	tripsBefore := ks.RoundTrips()
	keys, err := eng.ElementwiseKeys(enc, securemat.ElementwiseMul, y)
	if err != nil {
		t.Fatal(err)
	}
	if issued := auth.Stats().BOKeys - before; issued != 4 {
		t.Errorf("authority issued %d keys, want 4", issued)
	}
	if trips := ks.RoundTrips() - tripsBefore; trips != 1 {
		t.Errorf("key derivation took %d round trips, want 1 (batched)", trips)
	}
	solver, err := dlog.NewSolver(auth.Params(), 101)
	if err != nil {
		t.Fatal(err)
	}
	z, err := eng.WithSolver(solver).SecureElementwise(enc, keys, securemat.ElementwiseMul, y,
		securemat.ComputeOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		for j := range x[i] {
			if z[i][j] != x[i][j]*y[i][j] {
				t.Errorf("z[%d][%d] = %d, want %d", i, j, z[i][j], x[i][j]*y[i][j])
			}
		}
	}
}
