package wire_test

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"cryptonn/internal/authority"
	"cryptonn/internal/dlog"
	"cryptonn/internal/febo"
	"cryptonn/internal/group"
	"cryptonn/internal/thresh"
	"cryptonn/internal/wire"
)

// testCluster is an N-node threshold authority cluster listening on
// loopback.
type testCluster struct {
	nodes   []*authority.Node
	servers []*wire.AuthorityServer
	addrs   []string
	cancel  context.CancelFunc
}

func startCluster(t testing.TB, th, n int, seed int64) *testCluster {
	t.Helper()
	return startClusterBits(t, group.TestBits, th, n, seed)
}

func startClusterBits(t testing.TB, bits, th, n int, seed int64) *testCluster {
	t.Helper()
	params, err := group.Embedded(bits)
	if err != nil {
		t.Fatalf("embedded group: %v", err)
	}
	_, nodes, err := authority.NewCluster(params, authority.AllowAll(), th, n, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	tc := &testCluster{nodes: nodes, cancel: cancel}
	for _, nd := range nodes {
		srv, err := wire.NewNodeServer(nd, nil, wire.AuthorityServerOptions{})
		if err != nil {
			t.Fatalf("NewNodeServer: %v", err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		go srv.Serve(ctx, l) //nolint:errcheck // returns net.ErrClosed on shutdown
		tc.servers = append(tc.servers, srv)
		tc.addrs = append(tc.addrs, l.Addr().String())
	}
	t.Cleanup(tc.stop)
	return tc
}

func (tc *testCluster) stop() {
	tc.cancel()
	for _, s := range tc.servers {
		_ = s.Close()
	}
}

// dialers returns one plain dial function per node.
func (tc *testCluster) dialers() []func() (net.Conn, error) {
	out := make([]func() (net.Conn, error), len(tc.addrs))
	for i, addr := range tc.addrs {
		addr := addr
		out[i] = func() (net.Conn, error) { return net.DialTimeout("tcp", addr, time.Second) }
	}
	return out
}

func testSolver(t testing.TB, pk *febo.PublicKey) *dlog.Solver {
	t.Helper()
	s, err := dlog.NewSolver(pk.Params, 200)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func quickOpts() wire.QuorumOptions {
	return wire.QuorumOptions{
		Timeout:     2 * time.Second,
		RetryBase:   5 * time.Millisecond,
		RetryMax:    50 * time.Millisecond,
		MaxAttempts: 3,
	}
}

// verifyIPKeys checks derived keys against the joint public key:
// g^k == Π h_i^{y_i}.
func verifyIPKeys(t *testing.T, q *wire.QuorumKeyService, ys [][]int64) {
	t.Helper()
	keys, err := q.IPKeyBatch(ys)
	if err != nil {
		t.Fatalf("IPKeyBatch: %v", err)
	}
	mpk, err := q.FEIPPublic(len(ys[0]))
	if err != nil {
		t.Fatal(err)
	}
	params := mpk.Params
	for v, fk := range keys {
		if params.PowG(fk.K).Cmp(params.MultiExpInt64(mpk.H, ys[v])) != 0 {
			t.Fatalf("key %d fails verification against the joint public key", v)
		}
	}
}

func TestQuorumDerivesVerifiedKeys(t *testing.T) {
	tc := startCluster(t, 3, 5, 1)
	q, err := wire.NewQuorumKeyService(tc.dialers(), quickOpts())
	if err != nil {
		t.Fatalf("NewQuorumKeyService: %v", err)
	}
	defer q.Close()

	if th, n := q.Threshold(); th != 3 || n != 5 {
		t.Fatalf("Threshold() = (%d,%d)", th, n)
	}
	verifyIPKeys(t, q, [][]int64{{1, -2, 3}, {4, 0, -6}, {7, 8, 9}})

	// FEBO: the combined key must decrypt an addition correctly.
	pk, err := q.FEBOPublic()
	if err != nil {
		t.Fatal(err)
	}
	ct, err := febo.Encrypt(pk, 21, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	fk, err := q.BOKey(ct.Cmt, febo.OpAdd, 13)
	if err != nil {
		t.Fatalf("BOKey: %v", err)
	}
	got, err := febo.Decrypt(pk, fk, ct, febo.OpAdd, 13, testSolver(t, pk))
	if err != nil {
		t.Fatalf("decrypt: %v", err)
	}
	if got != 34 {
		t.Fatalf("21+13 decrypted to %d", got)
	}
}

func TestQuorumToleratesSlowAndDeadNodes(t *testing.T) {
	tc := startCluster(t, 3, 5, 3)
	dials := tc.dialers()
	// Node 0 wedges (drops all traffic after the bootstrap exchange);
	// node 1 is slow but functional.
	dials[0] = wire.FaultDialer(dials[0], wire.FaultPlan{Mode: wire.FaultDrop, AfterOps: 4})
	dials[1] = wire.FaultDialer(dials[1], wire.FaultPlan{ReadDelay: 30 * time.Millisecond, WriteDelay: 30 * time.Millisecond})

	opts := quickOpts()
	opts.Timeout = 300 * time.Millisecond
	q, err := wire.NewQuorumKeyService(dials, opts)
	if err != nil {
		t.Fatalf("NewQuorumKeyService: %v", err)
	}
	defer q.Close()

	verifyIPKeys(t, q, [][]int64{{5, -1, 2, 8}})

	// Now kill two servers outright (N−T = 2): requests must still
	// succeed against the remaining three.
	_ = tc.servers[3].Close()
	_ = tc.servers[4].Close()
	verifyIPKeys(t, q, [][]int64{{2, 2, 2, 2}, {-3, 1, 0, 4}})

	pk, err := q.FEBOPublic()
	if err != nil {
		t.Fatal(err)
	}
	ct, err := febo.Encrypt(pk, 6, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	fk, err := q.BOKey(ct.Cmt, febo.OpMul, 7)
	if err != nil {
		t.Fatalf("BOKey with two dead nodes: %v", err)
	}
	if got, err := febo.Decrypt(pk, fk, ct, febo.OpMul, 7, testSolver(t, pk)); err != nil || got != 42 {
		t.Fatalf("6*7 = %d, %v", got, err)
	}
}

func TestQuorumFailsBelowThreshold(t *testing.T) {
	tc := startCluster(t, 3, 3, 5)
	opts := quickOpts()
	opts.Timeout = 200 * time.Millisecond
	opts.MaxAttempts = 2
	q, err := wire.NewQuorumKeyService(tc.dialers(), opts)
	if err != nil {
		t.Fatalf("NewQuorumKeyService: %v", err)
	}
	defer q.Close()

	verifyIPKeys(t, q, [][]int64{{1, 2}})

	_ = tc.servers[0].Close() // T = N = 3: any loss breaks quorum
	if _, err := q.IPKeyBatch([][]int64{{1, 2}}); !errors.Is(err, wire.ErrQuorum) {
		t.Fatalf("want ErrQuorum below threshold, got %v", err)
	}
}

// corruptingNode is a malicious cluster member: it answers protocol
// requests from real share state but tampers with its partial keys.
type corruptingNode struct {
	inner *authority.Node
	srv   *wire.AuthorityServer
	l     net.Listener
}

// startRewriting replaces cluster node i with a proxy that applies an
// arbitrary rewrite to each response while forwarding everything else —
// the shape of a compromised but protocol-conformant cluster member.
func startRewriting(t *testing.T, tc *testCluster, i int, rewrite func(req *wire.Request, resp *wire.Response)) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	honest := tc.addrs[i]
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				up, err := net.Dial("tcp", honest)
				if err != nil {
					return
				}
				defer up.Close()
				for {
					var req wire.Request
					if err := wire.ReadMsg(conn, &req); err != nil {
						return
					}
					if err := wire.WriteMsg(up, &req); err != nil {
						return
					}
					var resp wire.Response
					if err := wire.ReadMsg(up, &resp); err != nil {
						return
					}
					rewrite(&req, &resp)
					if err := wire.WriteMsg(conn, &resp); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	t.Cleanup(func() { _ = l.Close() })
	return l.Addr().String()
}

// startCorrupting replaces cluster node i with a proxy that flips partial
// key values while forwarding everything else.
func startCorrupting(t *testing.T, tc *testCluster, i int) string {
	t.Helper()
	// Corrupt partial keys only; leave the DLEQ proof as produced, so FEIP
	// corruption is caught by the RLC check and FEBO corruption by the
	// proof.
	return startRewriting(t, tc, i, func(req *wire.Request, resp *wire.Response) {
		if (req.Kind == wire.KindPartialIPKeyBatch || req.Kind == wire.KindPartialBOKeyBatch) && len(resp.KBatch) > 0 {
			resp.KBatch[0] = new(big.Int).Add(resp.KBatch[0], big.NewInt(1))
		}
	})
}

func TestQuorumRejectsCorruptedPartials(t *testing.T) {
	tc := startCluster(t, 3, 5, 7)
	evil := startCorrupting(t, tc, 2)
	dials := tc.dialers()
	dials[2] = func() (net.Conn, error) { return net.DialTimeout("tcp", evil, time.Second) }

	q, err := wire.NewQuorumKeyService(dials, quickOpts())
	if err != nil {
		t.Fatalf("NewQuorumKeyService: %v", err)
	}
	defer q.Close()

	// Repeat so arrival-order races make the corrupted node land inside
	// the first T at least sometimes; every request must still yield keys
	// that verify against the joint public key.
	for i := 0; i < 8; i++ {
		verifyIPKeys(t, q, [][]int64{{int64(i + 1), -2, 3}, {0, int64(i), 5}})
	}

	pk, err := q.FEBOPublic()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		ct, err := febo.Encrypt(pk, int64(10+i), rand.New(rand.NewSource(int64(i))))
		if err != nil {
			t.Fatal(err)
		}
		fk, err := q.BOKey(ct.Cmt, febo.OpSub, 4)
		if err != nil {
			t.Fatalf("BOKey round %d: %v", i, err)
		}
		if got, err := febo.Decrypt(pk, fk, ct, febo.OpSub, 4, testSolver(t, pk)); err != nil || got != int64(6+i) {
			t.Fatalf("round %d: %d-4 = %d, %v", i, 10+i, got, err)
		}
	}
}

func TestQuorumConcurrentHammer(t *testing.T) {
	tc := startCluster(t, 3, 5, 9)
	dials := tc.dialers()
	// One flaky node to keep the retry path busy under -race.
	dials[4] = wire.FaultDialer(dials[4], wire.FaultPlan{Mode: wire.FaultReset, AfterOps: 6})
	opts := quickOpts()
	opts.Timeout = 500 * time.Millisecond
	q, err := wire.NewQuorumKeyService(dials, opts)
	if err != nil {
		t.Fatalf("NewQuorumKeyService: %v", err)
	}
	defer q.Close()

	pk, err := q.FEBOPublic()
	if err != nil {
		t.Fatal(err)
	}
	solver := testSolver(t, pk)
	var wg sync.WaitGroup
	errc := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if g%2 == 0 {
					ys := [][]int64{{int64(g), int64(i), 1}, {2, int64(g + i), -1}}
					keys, err := q.IPKeyBatch(ys)
					if err != nil {
						errc <- fmt.Errorf("goroutine %d IPKeyBatch: %w", g, err)
						return
					}
					mpk, err := q.FEIPPublic(3)
					if err != nil {
						errc <- err
						return
					}
					for v, fk := range keys {
						if mpk.Params.PowG(fk.K).Cmp(mpk.Params.MultiExpInt64(mpk.H, ys[v])) != 0 {
							errc <- fmt.Errorf("goroutine %d: unverified key", g)
							return
						}
					}
				} else {
					ct, err := febo.Encrypt(pk, int64(i), rand.New(rand.NewSource(int64(g*10+i))))
					if err != nil {
						errc <- err
						return
					}
					fk, err := q.BOKey(ct.Cmt, febo.OpAdd, int64(g))
					if err != nil {
						errc <- fmt.Errorf("goroutine %d BOKey: %w", g, err)
						return
					}
					got, err := febo.Decrypt(pk, fk, ct, febo.OpAdd, int64(g), solver)
					if err != nil || got != int64(i+g) {
						errc <- fmt.Errorf("goroutine %d: %d+%d = %d, %v", g, i, g, got, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestNodeServerRefusesWholeKeys pins the structural property: node
// servers cannot emit a complete function key.
func TestNodeServerRefusesWholeKeys(t *testing.T) {
	tc := startCluster(t, 2, 3, 11)
	conn, err := net.Dial("tcp", tc.addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for _, kind := range []wire.MsgKind{wire.KindIPKey, wire.KindIPKeyBatch, wire.KindBOKey, wire.KindBOKeyBatch} {
		if err := wire.WriteMsg(conn, &wire.Request{Kind: kind, Y: []int64{1}, YBatch: [][]int64{{1}}, Cmts: []*big.Int{big.NewInt(1)}, Scalars: []int64{1}, Op: int(febo.OpAdd), Cmt: big.NewInt(1), Scalar: 1}); err != nil {
			t.Fatal(err)
		}
		var resp wire.Response
		if err := wire.ReadMsg(conn, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Err == "" {
			t.Fatalf("node served whole-key request %s", kind)
		}
	}
}

// TestPartialProofsVerifyAgainstClusterInfo exercises the exported
// surface end to end: cluster info → DLEQ verification of one node's
// partials, as the quorum client does internally.
func TestPartialProofsVerifyAgainstClusterInfo(t *testing.T) {
	tc := startCluster(t, 2, 3, 13)
	conn, err := net.Dial("tcp", tc.addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	if err := wire.WriteMsg(conn, &wire.Request{Kind: wire.KindClusterInfo}); err != nil {
		t.Fatal(err)
	}
	var info wire.Response
	if err := wire.ReadMsg(conn, &info); err != nil {
		t.Fatal(err)
	}
	if info.Err != "" {
		t.Fatal(info.Err)
	}
	params := &group.Params{P: info.GroupP, Q: info.GroupQ, G: info.GroupG}
	if err := params.Validate(); err != nil {
		t.Fatal(err)
	}

	cmts := []*big.Int{params.PowGInt64(3), params.PowGInt64(11)}
	if err := wire.WriteMsg(conn, &wire.Request{Kind: wire.KindPartialBOKeyBatch, Cmts: cmts, Op: int(febo.OpMul), Scalars: []int64{1, 1}}); err != nil {
		t.Fatal(err)
	}
	var resp wire.Response
	if err := wire.ReadMsg(conn, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Err != "" {
		t.Fatal(resp.Err)
	}
	proof := &thresh.EqProof{C: resp.ProofC, Z: resp.ProofZ}
	if err := thresh.VerifyEqBatch(params, info.HShares[resp.NodeIndex-1], cmts, resp.KBatch, proof); err != nil {
		t.Fatalf("partial proof rejected: %v", err)
	}
	// Tampering any partial must break the proof.
	resp.KBatch[1] = params.Mul(resp.KBatch[1], params.G)
	if err := thresh.VerifyEqBatch(params, info.HShares[resp.NodeIndex-1], cmts, resp.KBatch, proof); err == nil {
		t.Fatal("tampered partial passed DLEQ verification")
	}
}

// clusterInfoFrom queries one node's cluster-info view directly, outside
// the quorum client.
func clusterInfoFrom(t *testing.T, addr string) *wire.Response {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.WriteMsg(conn, &wire.Request{Kind: wire.KindClusterInfo}); err != nil {
		t.Fatal(err)
	}
	var info wire.Response
	if err := wire.ReadMsg(conn, &info); err != nil {
		t.Fatal(err)
	}
	if info.Err != "" {
		t.Fatal(info.Err)
	}
	return &info
}

// TestQuorumBootstrapRequiresThresholdEndorsement pins the quorum-read
// bootstrap: with T=N=3, one node serving a forged cluster view (an
// attacker-generated joint key and share commitments, all well-formed)
// leaves only two honest endorsements, so the client must refuse to start
// — whichever answer arrives first — rather than risk caching a joint key
// whose secret the attacker holds.
func TestQuorumBootstrapRequiresThresholdEndorsement(t *testing.T) {
	params, err := group.Embedded(group.TestBits)
	if err != nil {
		t.Fatal(err)
	}
	tc := startCluster(t, 3, 3, 17)
	evil := startRewriting(t, tc, 0, func(req *wire.Request, resp *wire.Response) {
		if req.Kind == wire.KindClusterInfo && resp.Err == "" {
			resp.H = []*big.Int{params.PowGInt64(31337)}
			shares := make([]*big.Int, len(resp.HShares))
			for j := range shares {
				shares[j] = params.PowGInt64(int64(1000 + j))
			}
			resp.HShares = shares
		}
	})
	dials := tc.dialers()
	dials[0] = func() (net.Conn, error) { return net.DialTimeout("tcp", evil, time.Second) }
	q, err := wire.NewQuorumKeyService(dials, quickOpts())
	if err == nil {
		q.Close()
		t.Fatal("bootstrap accepted a cluster view lacking threshold endorsement")
	}
	if !errors.Is(err, wire.ErrQuorum) {
		t.Fatalf("want ErrQuorum, got %v", err)
	}
}

// TestQuorumBootstrapOutvotesForkedClusterInfo: with T=2 and N=3, the two
// honest nodes outvote one forged view regardless of arrival order, and
// the client adopts the honest joint FEBO key.
func TestQuorumBootstrapOutvotesForkedClusterInfo(t *testing.T) {
	params, err := group.Embedded(group.TestBits)
	if err != nil {
		t.Fatal(err)
	}
	tc := startCluster(t, 2, 3, 19)
	forged := params.PowGInt64(31337)
	evil := startRewriting(t, tc, 0, func(req *wire.Request, resp *wire.Response) {
		if req.Kind == wire.KindClusterInfo && resp.Err == "" {
			resp.H = []*big.Int{forged}
		}
	})
	dials := tc.dialers()
	dials[0] = func() (net.Conn, error) { return net.DialTimeout("tcp", evil, time.Second) }
	q, err := wire.NewQuorumKeyService(dials, quickOpts())
	if err != nil {
		t.Fatalf("NewQuorumKeyService: %v", err)
	}
	defer q.Close()
	pk, err := q.FEBOPublic()
	if err != nil {
		t.Fatal(err)
	}
	if pk.H.Cmp(forged) == 0 {
		t.Fatal("client adopted the forged joint key")
	}
	if honest := clusterInfoFrom(t, tc.addrs[1]); pk.H.Cmp(honest.H[0]) != 0 {
		t.Fatal("adopted joint key matches neither the forged nor the honest view")
	}
	verifyIPKeys(t, q, [][]int64{{1, -2, 3}})
}

// TestQuorumBootstrapSurvivesMalformedClusterInfo: gob decodes absent
// fields as nil, so a node answering cluster-info with the group
// parameters stripped must cost that node its vote — not panic the
// client — and the honest majority still bootstraps.
func TestQuorumBootstrapSurvivesMalformedClusterInfo(t *testing.T) {
	tc := startCluster(t, 2, 3, 23)
	evil := startRewriting(t, tc, 2, func(req *wire.Request, resp *wire.Response) {
		if req.Kind == wire.KindClusterInfo {
			resp.GroupP, resp.GroupQ, resp.GroupG = nil, nil, nil
		}
	})
	dials := tc.dialers()
	dials[2] = func() (net.Conn, error) { return net.DialTimeout("tcp", evil, time.Second) }
	q, err := wire.NewQuorumKeyService(dials, quickOpts())
	if err != nil {
		t.Fatalf("NewQuorumKeyService with one malformed responder: %v", err)
	}
	defer q.Close()
	verifyIPKeys(t, q, [][]int64{{2, 0, -5}})
}

// TestQuorumFEIPPublicOutvotesForgedKey pins the quorum read on FEIP
// master public keys: one compromised node serving a well-formed but
// attacker-generated key can never win the vote, whatever the arrival
// order; the honest nodes confirm the real key and derivation proceeds.
func TestQuorumFEIPPublicOutvotesForgedKey(t *testing.T) {
	params, err := group.Embedded(group.TestBits)
	if err != nil {
		t.Fatal(err)
	}
	tc := startCluster(t, 3, 5, 29)
	evil := startRewriting(t, tc, 1, func(req *wire.Request, resp *wire.Response) {
		if req.Kind == wire.KindFEIPPublic && resp.Err == "" {
			forged := make([]*big.Int, len(resp.H))
			for i := range forged {
				forged[i] = params.PowGInt64(int64(7 + i))
			}
			resp.H = forged
		}
	})
	dials := tc.dialers()
	dials[1] = func() (net.Conn, error) { return net.DialTimeout("tcp", evil, time.Second) }
	q, err := wire.NewQuorumKeyService(dials, quickOpts())
	if err != nil {
		t.Fatalf("NewQuorumKeyService: %v", err)
	}
	defer q.Close()

	conn, err := net.Dial("tcp", tc.addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Vary η so each round is a fresh (uncached) vote with its own
	// arrival order.
	for eta := 2; eta <= 5; eta++ {
		mpk, err := q.FEIPPublic(eta)
		if err != nil {
			t.Fatalf("FEIPPublic(%d): %v", eta, err)
		}
		if err := wire.WriteMsg(conn, &wire.Request{Kind: wire.KindFEIPPublic, Eta: eta}); err != nil {
			t.Fatal(err)
		}
		var honest wire.Response
		if err := wire.ReadMsg(conn, &honest); err != nil {
			t.Fatal(err)
		}
		if honest.Err != "" {
			t.Fatal(honest.Err)
		}
		for i, h := range mpk.H {
			if h.Cmp(honest.H[i]) != 0 {
				t.Fatalf("η=%d: adopted key differs from the honest key at h[%d]", eta, i)
			}
		}
	}
	verifyIPKeys(t, q, [][]int64{{1, 2, 3}, {-4, 5, 0}})
}

// TestQuorumWideGroupBigIntFallback pins the big.Int scalar path: the
// word-sized fast path only covers groups whose order fits one machine
// word, so a 128-bit group must combine and verify through the generic
// arithmetic and still produce correct keys.
func TestQuorumWideGroupBigIntFallback(t *testing.T) {
	tc := startClusterBits(t, 128, 2, 3, 11)
	q, err := wire.NewQuorumKeyService(tc.dialers(), quickOpts())
	if err != nil {
		t.Fatalf("NewQuorumKeyService: %v", err)
	}
	defer q.Close()
	verifyIPKeys(t, q, [][]int64{{5, -7, 11, 0}, {-1, 2, -3, 4}})
}
