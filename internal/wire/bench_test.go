package wire_test

import (
	"context"
	"math/rand"
	"net"
	"testing"

	"cryptonn/internal/authority"
	"cryptonn/internal/group"
	"cryptonn/internal/wire"
)

// BenchmarkQuorumIPKeyBatch prices threshold robustness: one batched
// function-key request against a single networked authority versus a
// T=3-of-N=5 quorum (fan-out to five nodes, partial-key verification,
// Lagrange combination). Closed-loop over loopback TCP; run with a fixed
// -benchtime round count for comparable samples.
func BenchmarkQuorumIPKeyBatch(b *testing.B) {
	const (
		eta   = 32
		batch = 128
	)
	ys := make([][]int64, batch)
	rng := rand.New(rand.NewSource(1))
	for v := range ys {
		ys[v] = make([]int64, eta)
		for i := range ys[v] {
			ys[v][i] = rng.Int63n(1000) - 500
		}
	}

	b.Run("single", func(b *testing.B) {
		auth, err := authority.New(group.TestParams(), authority.AllowAll())
		if err != nil {
			b.Fatal(err)
		}
		srv, err := wire.NewAuthorityServer(auth, nil)
		if err != nil {
			b.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		go srv.Serve(ctx, l) //nolint:errcheck
		defer srv.Close()
		svc, err := wire.DialKeyService(l.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		defer svc.Close()
		if _, err := svc.IPKeyBatch(ys); err != nil { // warm caches
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := svc.IPKeyBatch(ys); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/key")
	})

	b.Run("quorum-t3n5", func(b *testing.B) {
		tc := startCluster(b, 3, 5, 1)
		q, err := wire.NewQuorumKeyService(tc.dialers(), wire.QuorumOptions{})
		if err != nil {
			b.Fatal(err)
		}
		defer q.Close()
		if _, err := q.IPKeyBatch(ys); err != nil { // warm caches
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := q.IPKeyBatch(ys); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/key")
	})
}
