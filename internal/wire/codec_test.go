package wire

// Unit tests for the binary hot-path codec: body round-trips, hostile
// truncation, negotiation (including legacy fallback), multiplexed
// prediction, and binary training submission. These use synthetic
// ciphertext structures — the codec moves big.Ints, it never interprets
// them — so they run without any crypto setup.

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"math/big"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"cryptonn/internal/core"
	"cryptonn/internal/febo"
	"cryptonn/internal/feip"
	"cryptonn/internal/securemat"
)

func synthCt(rng *rand.Rand, eta int) *feip.Ciphertext {
	ct := &feip.Ciphertext{Ct0: new(big.Int).SetUint64(rng.Uint64()), Ct: make([]*big.Int, eta)}
	for i := range ct.Ct {
		// Mix widths so the fixed-width slab actually pads.
		ct.Ct[i] = new(big.Int).SetUint64(rng.Uint64() >> (uint(rng.Intn(8)) * 8))
	}
	return ct
}

func synthMatrix(rng *rand.Rand, rows, cols int, withRows, withElems bool) *securemat.EncryptedMatrix {
	m := &securemat.EncryptedMatrix{Rows: rows, Cols: cols, ColCts: make([]*feip.Ciphertext, cols)}
	for j := range m.ColCts {
		m.ColCts[j] = synthCt(rng, rows)
	}
	if withRows {
		m.RowCts = make([]*feip.Ciphertext, rows)
		for i := range m.RowCts {
			m.RowCts[i] = synthCt(rng, cols)
		}
	}
	if withElems {
		m.Elems = make([][]*febo.Ciphertext, rows)
		for i := range m.Elems {
			m.Elems[i] = make([]*febo.Ciphertext, cols)
			for j := range m.Elems[i] {
				m.Elems[i][j] = &febo.Ciphertext{
					Cmt: new(big.Int).SetUint64(rng.Uint64()),
					Ct:  new(big.Int).SetUint64(rng.Uint64()),
				}
			}
		}
	}
	return m
}

func synthBatch(rng *rand.Rand, features, classes, n int, withY bool) *core.EncryptedBatch {
	enc := &core.EncryptedBatch{
		Features: features, Classes: classes, N: n,
		X: synthMatrix(rng, features, n, true, true),
	}
	if withY {
		enc.Y = synthMatrix(rng, classes, n, false, false)
	}
	return enc
}

func synthConvBatch(rng *rand.Rand) *core.EncryptedConvBatch {
	enc := &core.EncryptedConvBatch{
		C: 2, H: 4, W: 4, K: 3, Stride: 1, Pad: 1,
		OutH: 4, OutW: 4, Classes: 3, N: 2,
		Y: synthMatrix(rng, 3, 2, false, false),
	}
	wl, nw := enc.WindowLen(), enc.NumWindows()
	enc.Windows = make([][]*feip.Ciphertext, enc.N)
	enc.Positions = make([][]*feip.Ciphertext, enc.N)
	for s := range enc.Windows {
		enc.Windows[s] = make([]*feip.Ciphertext, nw)
		for i := range enc.Windows[s] {
			enc.Windows[s][i] = synthCt(rng, wl)
		}
		enc.Positions[s] = make([]*feip.Ciphertext, wl)
		for i := range enc.Positions[s] {
			enc.Positions[s][i] = synthCt(rng, nw)
		}
	}
	return enc
}

func TestEncryptedBatchBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, withY := range []bool{false, true} {
		enc := synthBatch(rng, 5, 3, 4, withY)
		body, err := appendEncryptedBatch(nil, enc)
		if err != nil {
			t.Fatal(err)
		}
		got, err := decodeEncryptedBatch(body)
		if err != nil {
			t.Fatal(err)
		}
		if got.Features != 5 || got.Classes != 3 || got.N != 4 {
			t.Fatalf("geometry mangled: %+v", got)
		}
		if !got.X.HasRows() || !got.X.HasElems() {
			t.Fatal("optional matrix sections lost")
		}
		if (got.Y != nil) != withY {
			t.Fatalf("Y presence mangled (withY=%v)", withY)
		}
		// Re-encoding the decoded batch must be byte-identical: the
		// codec is canonical, so this is a full deep-equality check.
		body2, err := appendEncryptedBatch(nil, got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(body, body2) {
			t.Fatal("round-trip is not byte-identical")
		}
	}
}

func TestConvBatchBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	enc := synthConvBatch(rng)
	body, err := appendConvBatch(nil, enc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeConvBatch(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumWindows() != enc.NumWindows() || got.WindowLen() != enc.WindowLen() || got.N != enc.N {
		t.Fatalf("conv geometry mangled: %+v", got)
	}
	body2, err := appendConvBatch(nil, got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, body2) {
		t.Fatal("round-trip is not byte-identical")
	}
}

func TestPredsBinaryRoundTrip(t *testing.T) {
	preds := []int{0, 7, -1, 9, 2}
	body, err := appendPreds(nil, preds)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodePreds(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(preds) {
		t.Fatalf("got %d preds, want %d", len(got), len(preds))
	}
	for i := range preds {
		if got[i] != preds[i] {
			t.Fatalf("pred %d: got %d, want %d", i, got[i], preds[i])
		}
	}
}

func TestBinaryDecodeRejectsHostileBodies(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	enc := synthBatch(rng, 3, 2, 2, true)
	body, err := appendEncryptedBatch(nil, enc)
	if err != nil {
		t.Fatal(err)
	}
	// Every truncation must fail cleanly — no panic, no huge allocation.
	for n := 0; n < len(body); n++ {
		if _, err := decodeEncryptedBatch(body[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", n)
		}
	}
	// Trailing garbage must be rejected too.
	if _, err := decodeEncryptedBatch(append(bytes.Clone(body), 0xFF)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	// A count far beyond the body must fail before allocating.
	huge := []byte{0, 0, 0, 3, 0, 0, 0, 2, 0, 0, 0, 2, 1, 0, 0xFF, 0xFF, 0xFF}
	if _, err := decodeEncryptedBatch(huge); err == nil {
		t.Fatal("oversized section count accepted")
	}
	if _, err := decodePreds([]byte{0xFF, 0xFF, 0xFF, 0xFF}); err == nil {
		t.Fatal("oversized preds count accepted")
	}
}

// hostileConvBody builds a bfSubmitConv body with the given geometry
// words and a token payload byte — enough to reach the geometry checks.
func hostileConvBody(c, h, w, k, stride, pad, outH, outW, classes, n uint32) []byte {
	var body []byte
	for _, v := range []uint32{c, h, w, k, stride, pad, outH, outW, classes, n} {
		body = binary.BigEndian.AppendUint32(body, v)
	}
	return append(body, 0) // flags
}

func TestDecodeConvBatchRejectsOverflowGeometry(t *testing.T) {
	// Each geometry word individually passes the per-field cap, but the
	// C·K·K product overflows int64 to a negative value (2^15·2^24·2^24 =
	// 2^63). The old in-memory product check let that through, disabling
	// readCtVec's shape checks and panicking in the Positions re-slicing.
	for name, body := range map[string][]byte{
		"windowLen overflows int64": hostileConvBody(1<<15, 1, 1, 1<<24, 1, 1, 1, 1, 1, 1),
		"windowLen over limit":      hostileConvBody(2, 1, 1, 1<<13, 1, 1, 1, 1, 1, 1),
		"numWindows over limit":     hostileConvBody(1, 1, 1, 1, 1, 1, 1<<13, 1<<13, 1, 1),
		"total windows over limit":  hostileConvBody(1, 1, 1, 1, 1, 1, 1<<12, 1<<12, 1, 2),
		"zero channel dim":          hostileConvBody(0, 1, 1, 1, 1, 1, 1, 1, 1, 1),
		"zero sample count":         hostileConvBody(1, 1, 1, 1, 1, 1, 1, 1, 1, 0),
	} {
		if _, err := decodeConvBatch(body); err == nil {
			t.Errorf("%s: hostile conv geometry accepted", name)
		} else if !errors.Is(err, ErrBinaryEncoding) {
			t.Errorf("%s: want ErrBinaryEncoding, got %v", name, err)
		}
	}
}

func TestAppendU32MatchesDecoderLimit(t *testing.T) {
	// The encoder must reject exactly what the decoder rejects, so an
	// oversize batch fails fast locally instead of being refused by every
	// binary peer after the bytes are on the wire.
	if _, err := appendU32(nil, maxBinCount); err != nil {
		t.Fatalf("value at the shared cap rejected: %v", err)
	}
	if _, err := appendU32(nil, maxBinCount+1); err == nil {
		t.Fatal("encoder accepted a value the decoder always rejects")
	}
	b, err := appendU32(nil, maxBinCount)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := (&binCursor{b: b}).u32(); err != nil || v != maxBinCount {
		t.Fatalf("cap value did not round-trip: %d, %v", v, err)
	}
}

// startPredictServer boots a coalescing prediction server around predict
// and returns its address.
func startPredictServer(t *testing.T, predict PredictFunc, opts DispatcherOptions) (string, *PredictionServer) {
	t.Helper()
	s, err := NewCoalescingPredictionServer(predict, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = s.Serve(context.Background(), l)
	}()
	t.Cleanup(func() {
		_ = s.Close()
		<-done
	})
	return l.Addr().String(), s
}

// echoPredict returns class i for sample i — enough to check demux.
func echoPredict(enc *core.EncryptedBatch) ([]int, error) {
	preds := make([]int, enc.N)
	for i := range preds {
		preds[i] = i
	}
	return preds, nil
}

func TestClientConnNegotiatesBinary(t *testing.T) {
	addr, srv := startPredictServer(t, echoPredict, DispatcherOptions{})
	cc, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	if cc.Codec() != CodecBinary {
		t.Fatalf("negotiated %s, want binary", cc.Codec())
	}
	rng := rand.New(rand.NewSource(4))
	preds, err := cc.Predict(context.Background(), synthBatch(rng, 3, 2, 2, false), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 2 || preds[0] != 0 || preds[1] != 1 {
		t.Fatalf("bad preds %v", preds)
	}
	if srv.binConns.Load() != 1 || srv.gobConns.Load() != 0 {
		t.Fatalf("codec accounting: bin=%d gob=%d", srv.binConns.Load(), srv.gobConns.Load())
	}
}

func TestClientConnMultiplexesOutOfOrder(t *testing.T) {
	// Delay evaluations by decreasing amounts so responses complete in
	// reverse submission order; every caller must still get its own
	// sample count back.
	var mu sync.Mutex
	seen := 0
	predict := func(enc *core.EncryptedBatch) ([]int, error) {
		mu.Lock()
		seen++
		delay := time.Duration(4-seen) * 30 * time.Millisecond
		mu.Unlock()
		time.Sleep(delay)
		return echoPredict(enc)
	}
	// MaxCoalescedSamples 1 forces one evaluation per request so the
	// reordering actually happens.
	addr, _ := startPredictServer(t, predict, DispatcherOptions{MaxCoalescedSamples: 1})
	cc, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	rng := rand.New(rand.NewSource(5))
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := 0; i < 3; i++ {
		n := i + 1
		enc := synthBatch(rng, 2, 2, n, false)
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			preds, err := cc.Predict(context.Background(), enc, 10*time.Second)
			if err == nil && len(preds) != n {
				err = fmt.Errorf("%d preds for %d samples", len(preds), n)
			}
			errs[slot] = err
		}(i)
		time.Sleep(10 * time.Millisecond) // order the submissions
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
}

func TestClientConnGobFallback(t *testing.T) {
	// A legacy server reads the hello as an oversized frame and closes;
	// emulate one with a raw listener so Dial's fallback path runs.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				var req Request
				if err := ReadMsg(conn, &req); err != nil {
					return // the hello trips ErrFrameTooLarge → close
				}
				_ = WriteMsg(conn, &Response{Preds: []int{0}})
			}(conn)
		}
	}()
	cc, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	if cc.Codec() != CodecGob {
		t.Fatalf("negotiated %s, want gob fallback", cc.Codec())
	}
}

func TestPredictionServerStillSpeaksGob(t *testing.T) {
	// A pre-codec client (plain WriteMsg/ReadMsg, no hello) must keep
	// working against the sniffing server byte-for-byte.
	addr, srv := startPredictServer(t, echoPredict, DispatcherOptions{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rng := rand.New(rand.NewSource(6))
	enc := synthBatch(rng, 3, 2, 2, false)
	preds, err := RequestPrediction(conn, enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 2 {
		t.Fatalf("bad preds %v", preds)
	}
	if srv.gobConns.Load() != 1 {
		t.Fatalf("gob connection not accounted: %d", srv.gobConns.Load())
	}
}

func TestBinaryErrFrameMapsToErrBusy(t *testing.T) {
	predict := func(*core.EncryptedBatch) ([]int, error) { return nil, errors.New("boom") }
	// Queue of 1 and a slow first evaluation force ErrBusy on the rest;
	// simpler: just check a plain failure maps to a non-retryable error
	// and a busy dispatcher to ErrBusy via the dispatcher's own path.
	addr, _ := startPredictServer(t, predict, DispatcherOptions{})
	cc, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	rng := rand.New(rand.NewSource(7))
	_, err = cc.Predict(context.Background(), synthBatch(rng, 2, 2, 1, false), 5*time.Second)
	if err == nil || errors.Is(err, ErrBusy) {
		t.Fatalf("want non-retryable failure, got %v", err)
	}
}

func TestTrainingServerBinarySubmission(t *testing.T) {
	ts := NewTrainingServer(nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = ts.Serve(context.Background(), l)
	}()
	defer func() {
		_ = ts.Close()
		<-done
	}()

	rng := rand.New(rand.NewSource(8))
	cc, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if cc.Codec() != CodecBinary {
		t.Fatalf("negotiated %s, want binary", cc.Codec())
	}
	want := synthBatch(rng, 4, 3, 3, true)
	if err := cc.SubmitBatches([]*core.EncryptedBatch{want}); err != nil {
		t.Fatal(err)
	}
	_ = cc.Close()

	cc, err = Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conv := synthConvBatch(rng)
	if err := cc.SubmitConvBatches([]*core.EncryptedConvBatch{conv}); err != nil {
		t.Fatal(err)
	}
	_ = cc.Close()

	if ts.Submissions() != 2 {
		t.Fatalf("%d submissions, want 2", ts.Submissions())
	}
	got := ts.Batches()
	if len(got) != 1 {
		t.Fatalf("%d batches, want 1", len(got))
	}
	wantBody, _ := appendEncryptedBatch(nil, want)
	gotBody, err := appendEncryptedBatch(nil, got[0])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantBody, gotBody) {
		t.Fatal("batch mangled in transit")
	}
	if n := len(ts.ConvBatches()); n != 1 {
		t.Fatalf("%d conv batches, want 1", n)
	}
}

// startTrainingServer boots a TrainingServer and returns it with a raw
// negotiated binary connection for frame-level tests.
func startTrainingServerConn(t *testing.T) (*TrainingServer, *binConn) {
	t.Helper()
	ts := NewTrainingServer(nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = ts.Serve(context.Background(), l)
	}()
	t.Cleanup(func() {
		_ = ts.Close()
		<-done
	})
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	if err := negotiateBinary(conn); err != nil {
		t.Fatal(err)
	}
	return ts, newBinConn(conn)
}

// expectFrame reads one frame and fails unless it has the wanted type/id.
func expectFrame(t *testing.T, bc *binConn, wantType byte, wantID uint64) []byte {
	t.Helper()
	ftype, id, body, err := bc.readFrame()
	if err != nil {
		t.Fatalf("reading frame: %v", err)
	}
	if ftype != wantType || id != wantID {
		t.Fatalf("frame type %#x id %d, want %#x id %d", ftype, id, wantType, wantID)
	}
	return body
}

func TestTrainingServerSurvivesHostileConvFrame(t *testing.T) {
	// The exact remote-DoS frame from the overflow report: crafted conv
	// geometry must cost the client a bfErr, and the connection (and
	// process) must keep serving afterwards.
	ts, bc := startTrainingServerConn(t)
	hostile := hostileConvBody(1<<15, 1, 1, 1<<24, 1, 1, 1, 1, 1, 1)
	err := bc.writeFrame(bfSubmitConv, 1, func(b []byte) ([]byte, error) {
		return append(b, hostile...), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	body := expectFrame(t, bc, bfErr, 1)
	if msg, _, err := decodeErrBody(body); err != nil || !strings.Contains(msg, "decoding conv batch") {
		t.Fatalf("error frame %q, %v", msg, err)
	}
	// The same connection still completes a submission round.
	if err := bc.writeEmpty(bfDone, 2); err != nil {
		t.Fatal(err)
	}
	expectFrame(t, bc, bfAck, 2)
	if ts.panics.Load() != 0 {
		t.Fatalf("geometry rejection should be an error, not a recovered panic (%d)", ts.panics.Load())
	}
}

func TestTrainingServerBinaryPanicContained(t *testing.T) {
	// A panic anywhere in frame handling (standing in for a future codec
	// bug) must be answered as a bfErr on that frame — recover, count,
	// log — never a process crash.
	orig := decodeSubmitConv
	decodeSubmitConv = func([]byte) (*core.EncryptedConvBatch, error) { panic("injected decoder bug") }
	t.Cleanup(func() { decodeSubmitConv = orig })

	ts, bc := startTrainingServerConn(t)
	err := bc.writeFrame(bfSubmitConv, 3, func(b []byte) ([]byte, error) {
		return append(b, 0xAB), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	body := expectFrame(t, bc, bfErr, 3)
	if msg, _, err := decodeErrBody(body); err != nil || !strings.Contains(msg, "internal error") {
		t.Fatalf("error frame %q, %v", msg, err)
	}
	if got := ts.panics.Load(); got != 1 {
		t.Fatalf("panics = %d, want 1", got)
	}
	// The connection survives the contained panic.
	if err := bc.writeEmpty(bfDone, 4); err != nil {
		t.Fatal(err)
	}
	expectFrame(t, bc, bfAck, 4)
	if ts.Submissions() != 1 {
		t.Fatalf("%d submissions, want 1", ts.Submissions())
	}
}

func TestGobFramesRideBinaryConnections(t *testing.T) {
	// Cold kinds travel as bfGobRequest/bfGobResponse over a negotiated
	// binary connection; an unknown kind must come back as a gob error
	// response, proving the wrapped round trip.
	addr, _ := startPredictServer(t, echoPredict, DispatcherOptions{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := negotiateBinary(conn); err != nil {
		t.Fatal(err)
	}
	bc := newBinConn(conn)
	err = bc.writeFrame(bfGobRequest, 7, func(b []byte) ([]byte, error) {
		fb := frameBuffer{buf: b}
		if err := gob.NewEncoder(&fb).Encode(&Request{Kind: KindClusterInfo}); err != nil {
			return nil, err
		}
		return fb.buf, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ftype, id, body, err := bc.readFrame()
	if err != nil {
		t.Fatal(err)
	}
	if ftype != bfGobResponse || id != 7 {
		t.Fatalf("frame type %#x id %d", ftype, id)
	}
	var resp Response
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Err == "" {
		t.Fatal("unknown kind served without error")
	}
}

func TestClientConnPredictCancellation(t *testing.T) {
	block := make(chan struct{})
	predict := func(enc *core.EncryptedBatch) ([]int, error) {
		<-block
		return echoPredict(enc)
	}
	addr, _ := startPredictServer(t, predict, DispatcherOptions{})
	cc, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	rng := rand.New(rand.NewSource(9))
	_, err = cc.Predict(ctx, synthBatch(rng, 2, 2, 1, false), 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// The connection must survive the abandoned request: unblock the
	// server (the orphaned evaluation's late reply is dropped) and run a
	// fresh request on the same connection.
	close(block)
	preds, err := cc.Predict(context.Background(), synthBatch(rng, 2, 2, 1, false), 5*time.Second)
	if err != nil {
		t.Fatalf("connection poisoned by cancellation: %v", err)
	}
	if len(preds) != 1 {
		t.Fatalf("bad preds %v", preds)
	}
}
