package wire

// Golden-frame protocol compatibility tests: one committed frame per
// message kind, for both codecs, under testdata/golden/.
//
// The two codecs pin different contracts, each the strongest its format
// offers:
//
//   - Binary frames are byte-compared in both directions (today's
//     encoder must reproduce the golden, today's decoder must accept it
//     and re-encode it canonically). The layout is hand-specified in
//     docs/PROTOCOL.md, so any byte drift is a compatibility break.
//   - Gob frames are decode-compared: the committed bytes must still
//     decode to the expected message. Gob streams are self-describing
//     and their type-descriptor IDs depend on process history (the
//     encoding/gob type registry is global and first-use ordered), so
//     byte identity is not gob's contract — decodability is.
//
// A binary mismatch is only allowed together with a codec version bump
// and regenerated goldens (see "Changing the wire format" in
// docs/PROTOCOL.md):
//
//	go test ./internal/wire/ -run TestGolden -update

import (
	"bytes"
	"encoding/gob"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"cryptonn/internal/core"
	"cryptonn/internal/dlog"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden frame files")

// memConn adapts a bytes.Buffer to net.Conn so binConn frames can be
// built and replayed in memory.
type memConn struct{ bytes.Buffer }

func (*memConn) Close() error                     { return nil }
func (*memConn) LocalAddr() net.Addr              { return nil }
func (*memConn) RemoteAddr() net.Addr             { return nil }
func (*memConn) SetDeadline(time.Time) error      { return nil }
func (*memConn) SetReadDeadline(time.Time) error  { return nil }
func (*memConn) SetWriteDeadline(time.Time) error { return nil }

// binFrame renders one full binary frame (header + body) to bytes.
func binFrame(t *testing.T, ftype byte, id uint64, fill func([]byte) ([]byte, error)) []byte {
	t.Helper()
	var mc memConn
	if err := newBinConn(&mc).writeFrame(ftype, id, fill); err != nil {
		t.Fatalf("frame type 0x%02x: %v", ftype, err)
	}
	return append([]byte(nil), mc.Bytes()...)
}

// gobFrame renders one legacy gob frame (length header + gob stream).
func gobFrame(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteMsg(&buf, v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// goldenMessages is the canonical message set, built from a fixed seed.
// The construction order is part of the fixture: the shared rng makes
// each message's contents depend on it.
type goldenMessages struct {
	predictBatch *core.EncryptedBatch
	submitBatch  *core.EncryptedBatch
	convBatch    *core.EncryptedConvBatch
	preds        []int
	sparseBatch  *core.SparseBatch
	topk         [][]dlog.TopKHit
}

func newGoldenMessages() goldenMessages {
	rng := rand.New(rand.NewSource(42))
	// New messages draw from the shared rng strictly after the existing
	// ones — inserting a draw earlier would silently re-roll every later
	// fixture and show up as a spurious golden mismatch.
	return goldenMessages{
		predictBatch: synthBatch(rng, 3, 4, 2, false),
		submitBatch:  synthBatch(rng, 3, 4, 2, true),
		convBatch:    synthConvBatch(rng),
		preds:        []int{3, 0, 2},
		sparseBatch:  synthSparseBatch(rng, 6, 4, 2, 3),
		topk: [][]dlog.TopKHit{
			{{Index: 3, Value: 123456}, {Index: 0, Value: -7}},
			{{Index: 1, Value: 1 << 40}},
		},
	}
}

// binaryGoldens renders the byte-pinned binary-codec frame set.
func binaryGoldens(t *testing.T, m goldenMessages) map[string][]byte {
	t.Helper()
	hello := helloFrame(CodecVersion)
	helloAck := ackFrame(CodecVersion)
	var errConn memConn
	if err := newBinConn(&errConn).writeErr(11, "prediction queue full", true); err != nil {
		t.Fatal(err)
	}
	return map[string][]byte{
		// Handshake: byte-frozen by construction — a legacy server reads
		// the hello as a length header, so its shape can never change
		// within a major codec generation.
		"hello.bin":     hello[:],
		"hello_ack.bin": helloAck[:],

		"predict_binary.bin": binFrame(t, bfPredict, 7, func(b []byte) ([]byte, error) {
			return appendEncryptedBatch(b, m.predictBatch)
		}),
		"submit_binary.bin": binFrame(t, bfSubmit, 8, func(b []byte) ([]byte, error) {
			return appendEncryptedBatch(b, m.submitBatch)
		}),
		"submitconv_binary.bin": binFrame(t, bfSubmitConv, 9, func(b []byte) ([]byte, error) {
			return appendConvBatch(b, m.convBatch)
		}),
		"done_binary.bin": binFrame(t, bfDone, 10, func(b []byte) ([]byte, error) { return b, nil }),
		"ack_binary.bin":  binFrame(t, bfAck, 10, func(b []byte) ([]byte, error) { return b, nil }),
		"preds_binary.bin": binFrame(t, bfPreds, 7, func(b []byte) ([]byte, error) {
			return appendPreds(b, m.preds)
		}),
		"predicttopk_binary.bin": binFrame(t, bfPredictTopK, 12, func(b []byte) ([]byte, error) {
			return appendSparseBatch(b, 2, m.sparseBatch)
		}),
		"topk_binary.bin": binFrame(t, bfTopK, 12, func(b []byte) ([]byte, error) {
			return appendTopKHits(b, m.topk)
		}),
		"err_binary.bin": append([]byte(nil), errConn.Bytes()...),
	}
}

// gobGoldens renders the same kinds as legacy gob envelope frames.
func gobGoldens(t *testing.T, m goldenMessages) map[string][]byte {
	t.Helper()
	predictPayload, err := encodePayload(m.predictBatch)
	if err != nil {
		t.Fatal(err)
	}
	submitPayload, err := encodePayload(m.submitBatch)
	if err != nil {
		t.Fatal(err)
	}
	convPayload, err := encodePayload(m.convBatch)
	if err != nil {
		t.Fatal(err)
	}
	sparsePayload, err := encodePayload(m.sparseBatch)
	if err != nil {
		t.Fatal(err)
	}
	return map[string][]byte{
		"predict_gob.bin":     gobFrame(t, &Request{Kind: KindPredict, Payload: predictPayload}),
		"submit_gob.bin":      gobFrame(t, &Request{Kind: KindSubmitBatch, Payload: submitPayload}),
		"submitconv_gob.bin":  gobFrame(t, &Request{Kind: KindSubmitConvBatch, Payload: convPayload}),
		"done_gob.bin":        gobFrame(t, &Request{Kind: KindDone}),
		"ack_gob.bin":         gobFrame(t, &Response{}),
		"preds_gob.bin":       gobFrame(t, &Response{Preds: m.preds}),
		"err_gob.bin":         gobFrame(t, &Response{Err: "prediction queue full", Retryable: true}),
		"predicttopk_gob.bin": gobFrame(t, &Request{Kind: KindPredictTopK, Payload: sparsePayload, TopK: 2}),
		"topk_gob.bin":        gobFrame(t, &Response{TopK: m.topk}),
	}
}

func goldenPath(name string) string { return filepath.Join("testdata", "golden", name) }

func readGolden(t *testing.T, name string) []byte {
	t.Helper()
	frame, err := os.ReadFile(goldenPath(name))
	if err != nil {
		t.Fatalf("missing golden (run with -update after an intentional format change): %v", err)
	}
	return frame
}

// sameBatch compares two encrypted batches through their canonical
// binary encoding — exactly one encoding exists per message, so byte
// equality is deep equality.
func sameBatch(t *testing.T, got, want *core.EncryptedBatch) bool {
	t.Helper()
	g, err := appendEncryptedBatch(nil, got)
	if err != nil {
		t.Fatalf("re-encoding decoded batch: %v", err)
	}
	w, err := appendEncryptedBatch(nil, want)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.Equal(g, w)
}

func TestGoldenFrames(t *testing.T) {
	m := newGoldenMessages()
	binFrames := binaryGoldens(t, m)
	if *updateGolden {
		dir := filepath.Join("testdata", "golden")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, frame := range binFrames {
			if err := os.WriteFile(filepath.Join(dir, name), frame, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		for name, frame := range gobGoldens(t, m) {
			if err := os.WriteFile(filepath.Join(dir, name), frame, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		t.Logf("rewrote golden frames in %s", dir)
		return
	}
	for name, frame := range binFrames {
		if want := readGolden(t, name); !bytes.Equal(frame, want) {
			t.Errorf("%s: encoding changed (%d bytes, golden %d).\n"+
				"The wire format is a compatibility contract: bump CodecVersion and regenerate\n"+
				"goldens with -update per docs/PROTOCOL.md, or revert the encoding change.",
				name, len(frame), len(want))
		}
	}
}

// TestGoldenFramesDecodeBinary replays each committed binary golden
// through the current decoder and re-encodes it. Byte-identity both
// proves the decoder still accepts historical frames and pins the
// canonical-form property (exactly one encoding per message).
func TestGoldenFramesDecodeBinary(t *testing.T) {
	if *updateGolden {
		t.Skip("goldens being rewritten")
	}
	reencode := map[string]func(body []byte) ([]byte, error){
		"predict_binary.bin": func(body []byte) ([]byte, error) {
			enc, err := decodeEncryptedBatch(body)
			if err != nil {
				return nil, err
			}
			return appendEncryptedBatch(nil, enc)
		},
		"submit_binary.bin": func(body []byte) ([]byte, error) {
			enc, err := decodeEncryptedBatch(body)
			if err != nil {
				return nil, err
			}
			return appendEncryptedBatch(nil, enc)
		},
		"submitconv_binary.bin": func(body []byte) ([]byte, error) {
			enc, err := decodeConvBatch(body)
			if err != nil {
				return nil, err
			}
			return appendConvBatch(nil, enc)
		},
		"preds_binary.bin": func(body []byte) ([]byte, error) {
			preds, err := decodePreds(body)
			if err != nil {
				return nil, err
			}
			return appendPreds(nil, preds)
		},
		"predicttopk_binary.bin": func(body []byte) ([]byte, error) {
			k, sp, err := decodeSparseBatch(body)
			if err != nil {
				return nil, err
			}
			return appendSparseBatch(nil, k, sp)
		},
		"topk_binary.bin": func(body []byte) ([]byte, error) {
			hits, err := decodeTopKHits(body)
			if err != nil {
				return nil, err
			}
			return appendTopKHits(nil, hits)
		},
		"err_binary.bin": func(body []byte) ([]byte, error) {
			msg, retryable, err := decodeErrBody(body)
			if err != nil {
				return nil, err
			}
			if !retryable || msg != "prediction queue full" {
				return nil, fmt.Errorf("decoded msg=%q retryable=%v", msg, retryable)
			}
			return body, nil
		},
	}
	for name, re := range reencode {
		frame := readGolden(t, name)
		var mc memConn
		mc.Write(frame)
		ftype, id, body, err := newBinConn(&mc).readFrame()
		if err != nil {
			t.Errorf("%s: decoder rejects committed frame: %v", name, err)
			continue
		}
		if id == 0 {
			t.Errorf("%s: zero request id", name)
		}
		round, err := re(body)
		if err != nil {
			t.Errorf("%s (type 0x%02x): %v", name, ftype, err)
			continue
		}
		if !bytes.Equal(round, frame[binHeaderLen:]) {
			t.Errorf("%s: decode→re-encode is not canonical (%d vs %d body bytes)",
				name, len(round), len(frame)-binHeaderLen)
		}
	}
}

// TestGoldenFramesDecodeGob replays the committed gob goldens through
// ReadMsg and checks the decoded values — the legacy decoder must keep
// accepting frames written by older peers, whatever their descriptor
// IDs were.
func TestGoldenFramesDecodeGob(t *testing.T) {
	if *updateGolden {
		t.Skip("goldens being rewritten")
	}
	m := newGoldenMessages()

	decodeBatch := func(payload []byte) *core.EncryptedBatch {
		t.Helper()
		var enc core.EncryptedBatch
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&enc); err != nil {
			t.Fatalf("decoding payload: %v", err)
		}
		return &enc
	}

	var req Request
	if err := ReadMsg(bytes.NewReader(readGolden(t, "predict_gob.bin")), &req); err != nil {
		t.Fatalf("predict_gob.bin: %v", err)
	}
	if req.Kind != KindPredict || !sameBatch(t, decodeBatch(req.Payload), m.predictBatch) {
		t.Errorf("predict_gob.bin decoded to kind %v or wrong batch", req.Kind)
	}

	req = Request{}
	if err := ReadMsg(bytes.NewReader(readGolden(t, "submit_gob.bin")), &req); err != nil {
		t.Fatalf("submit_gob.bin: %v", err)
	}
	if req.Kind != KindSubmitBatch || !sameBatch(t, decodeBatch(req.Payload), m.submitBatch) {
		t.Errorf("submit_gob.bin decoded to kind %v or wrong batch", req.Kind)
	}

	req = Request{}
	if err := ReadMsg(bytes.NewReader(readGolden(t, "submitconv_gob.bin")), &req); err != nil {
		t.Fatalf("submitconv_gob.bin: %v", err)
	}
	var conv core.EncryptedConvBatch
	if err := gob.NewDecoder(bytes.NewReader(req.Payload)).Decode(&conv); err != nil {
		t.Fatalf("submitconv_gob.bin payload: %v", err)
	}
	gotConv, err := appendConvBatch(nil, &conv)
	if err != nil {
		t.Fatal(err)
	}
	wantConv, err := appendConvBatch(nil, m.convBatch)
	if err != nil {
		t.Fatal(err)
	}
	if req.Kind != KindSubmitConvBatch || !bytes.Equal(gotConv, wantConv) {
		t.Errorf("submitconv_gob.bin decoded to kind %v or wrong batch", req.Kind)
	}

	req = Request{}
	if err := ReadMsg(bytes.NewReader(readGolden(t, "done_gob.bin")), &req); err != nil {
		t.Fatalf("done_gob.bin: %v", err)
	}
	if req.Kind != KindDone {
		t.Errorf("done_gob.bin decoded to kind %v", req.Kind)
	}

	var resp Response
	if err := ReadMsg(bytes.NewReader(readGolden(t, "ack_gob.bin")), &resp); err != nil {
		t.Fatalf("ack_gob.bin: %v", err)
	}
	if resp.Err != "" || resp.Preds != nil {
		t.Errorf("ack_gob.bin decoded to %+v", resp)
	}

	resp = Response{}
	if err := ReadMsg(bytes.NewReader(readGolden(t, "preds_gob.bin")), &resp); err != nil {
		t.Fatalf("preds_gob.bin: %v", err)
	}
	if !reflect.DeepEqual(resp.Preds, m.preds) {
		t.Errorf("preds_gob.bin decoded preds %v, want %v", resp.Preds, m.preds)
	}

	resp = Response{}
	if err := ReadMsg(bytes.NewReader(readGolden(t, "err_gob.bin")), &resp); err != nil {
		t.Fatalf("err_gob.bin: %v", err)
	}
	if resp.Err != "prediction queue full" || !resp.Retryable {
		t.Errorf("err_gob.bin decoded to %+v", resp)
	}

	req = Request{}
	if err := ReadMsg(bytes.NewReader(readGolden(t, "predicttopk_gob.bin")), &req); err != nil {
		t.Fatalf("predicttopk_gob.bin: %v", err)
	}
	var sp core.SparseBatch
	if err := gob.NewDecoder(bytes.NewReader(req.Payload)).Decode(&sp); err != nil {
		t.Fatalf("predicttopk_gob.bin payload: %v", err)
	}
	gotSparse, err := appendSparseBatch(nil, 2, &sp)
	if err != nil {
		t.Fatal(err)
	}
	wantSparse, err := appendSparseBatch(nil, 2, m.sparseBatch)
	if err != nil {
		t.Fatal(err)
	}
	if req.Kind != KindPredictTopK || req.TopK != 2 || !bytes.Equal(gotSparse, wantSparse) {
		t.Errorf("predicttopk_gob.bin decoded to kind %v k %d or wrong batch", req.Kind, req.TopK)
	}

	resp = Response{}
	if err := ReadMsg(bytes.NewReader(readGolden(t, "topk_gob.bin")), &resp); err != nil {
		t.Fatalf("topk_gob.bin: %v", err)
	}
	if !reflect.DeepEqual(resp.TopK, m.topk) {
		t.Errorf("topk_gob.bin decoded hits %v, want %v", resp.TopK, m.topk)
	}
}
