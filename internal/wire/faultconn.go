package wire

// Fault-injection net.Conn wrapper for robustness testing. The chaos and
// quorum suites wrap real loopback connections in FaultConn to model the
// partial failures a threshold authority cluster must tolerate: slow
// links (delay), silent packet loss (drop), broken framing (truncate) and
// abrupt resets. The wrapper is deadline-aware — a dropped read still
// honours SetReadDeadline — so client-side timeout handling is exercised
// exactly as against a real wedged peer.

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// FaultMode selects a failure behaviour for one direction of a FaultConn.
type FaultMode int

const (
	// FaultNone passes traffic through (possibly delayed).
	FaultNone FaultMode = iota
	// FaultDrop swallows the operation: writes report success without
	// sending, reads block until a deadline or close — a wedged peer.
	FaultDrop
	// FaultTruncate lets through only the first byte of each operation,
	// corrupting the length-prefixed framing mid-frame.
	FaultTruncate
	// FaultReset closes the underlying connection, so the peer and any
	// later operation observe a hard failure.
	FaultReset
)

// String names the mode for test logs.
func (m FaultMode) String() string {
	switch m {
	case FaultNone:
		return "none"
	case FaultDrop:
		return "drop"
	case FaultTruncate:
		return "truncate"
	case FaultReset:
		return "reset"
	default:
		return fmt.Sprintf("FaultMode(%d)", int(m))
	}
}

// FaultPlan schedules when a FaultConn starts misbehaving. The zero value
// is a transparent wrapper.
type FaultPlan struct {
	// ReadDelay and WriteDelay are added before every read/write.
	ReadDelay, WriteDelay time.Duration
	// Mode is the failure behaviour once armed.
	Mode FaultMode
	// AfterOps arms Mode after this many successful reads+writes; 0 arms
	// it immediately.
	AfterOps int
}

// FaultConn wraps a net.Conn with scheduled fault injection. It is safe
// for one concurrent reader plus one concurrent writer (the same contract
// as net.Conn).
type FaultConn struct {
	net.Conn
	plan FaultPlan

	mu       sync.Mutex
	ops      int
	armed    bool
	closed   chan struct{}
	deadline chan struct{} // closed and replaced on every deadline change
	rdDead   time.Time
	once     sync.Once
}

// NewFaultConn wraps conn with the given plan.
func NewFaultConn(conn net.Conn, plan FaultPlan) *FaultConn {
	return &FaultConn{
		Conn:     conn,
		plan:     plan,
		closed:   make(chan struct{}),
		deadline: make(chan struct{}),
	}
}

// active reports whether the fault mode applies to the next operation,
// counting this operation if it passes through.
func (c *FaultConn) active() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.armed && c.ops >= c.plan.AfterOps {
		c.armed = true
	}
	if !c.armed {
		c.ops++
	}
	return c.armed
}

// Read applies the plan to the read direction.
func (c *FaultConn) Read(p []byte) (int, error) {
	if d := c.plan.ReadDelay; d > 0 {
		if err := c.sleep(d); err != nil {
			return 0, err
		}
	}
	if !c.active() || c.plan.Mode == FaultNone {
		return c.Conn.Read(p)
	}
	switch c.plan.Mode {
	case FaultDrop:
		return 0, c.blockUntilDeadline()
	case FaultTruncate:
		if len(p) > 1 {
			p = p[:1]
		}
		n, err := c.Conn.Read(p)
		if err != nil {
			return n, err
		}
		// Swallow the rest of the peer's frame so the truncation is
		// observed as a wedged-then-dead stream, not reordered bytes.
		return n, nil
	case FaultReset:
		_ = c.Conn.Close()
		return 0, net.ErrClosed
	default:
		return 0, fmt.Errorf("wire: unknown fault mode %v", c.plan.Mode)
	}
}

// Write applies the plan to the write direction.
func (c *FaultConn) Write(p []byte) (int, error) {
	if d := c.plan.WriteDelay; d > 0 {
		if err := c.sleep(d); err != nil {
			return 0, err
		}
	}
	if !c.active() || c.plan.Mode == FaultNone {
		return c.Conn.Write(p)
	}
	switch c.plan.Mode {
	case FaultDrop:
		return len(p), nil // lie: accepted, never sent
	case FaultTruncate:
		if _, err := c.Conn.Write(p[:1]); err != nil {
			return 0, err
		}
		return len(p), nil
	case FaultReset:
		_ = c.Conn.Close()
		return 0, net.ErrClosed
	default:
		return 0, fmt.Errorf("wire: unknown fault mode %v", c.plan.Mode)
	}
}

// Close releases the wrapper and the wrapped connection, waking any
// fault-blocked operation.
func (c *FaultConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return c.Conn.Close()
}

// SetDeadline implements net.Conn; fault-blocked reads honour it.
func (c *FaultConn) SetDeadline(t time.Time) error {
	c.noteReadDeadline(t)
	return c.Conn.SetDeadline(t)
}

// SetReadDeadline implements net.Conn; fault-blocked reads honour it.
func (c *FaultConn) SetReadDeadline(t time.Time) error {
	c.noteReadDeadline(t)
	return c.Conn.SetReadDeadline(t)
}

func (c *FaultConn) noteReadDeadline(t time.Time) {
	c.mu.Lock()
	c.rdDead = t
	old := c.deadline
	c.deadline = make(chan struct{})
	c.mu.Unlock()
	close(old) // wake blocked reads so they re-arm on the new deadline
}

// sleep waits for the injected latency, aborting early on close.
func (c *FaultConn) sleep(d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-c.closed:
		return net.ErrClosed
	}
}

// blockUntilDeadline emulates a peer that never answers: it blocks until
// the connection is closed or the current read deadline expires,
// re-arming whenever the deadline changes.
func (c *FaultConn) blockUntilDeadline() error {
	for {
		c.mu.Lock()
		dead := c.rdDead
		change := c.deadline
		c.mu.Unlock()

		var expire <-chan time.Time
		var timer *time.Timer
		if !dead.IsZero() {
			d := time.Until(dead)
			if d <= 0 {
				return timeoutError{}
			}
			timer = time.NewTimer(d)
			expire = timer.C
		}
		select {
		case <-c.closed:
			if timer != nil {
				timer.Stop()
			}
			return net.ErrClosed
		case <-expire:
			return timeoutError{}
		case <-change:
			// Deadline moved; recompute.
			if timer != nil {
				timer.Stop()
			}
		}
	}
}

// timeoutError matches net.Error timeout semantics for injected stalls.
type timeoutError struct{}

func (timeoutError) Error() string   { return "wire: injected fault: i/o timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

// IsTimeout reports whether err represents a timeout (real or injected).
func IsTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// FaultDialer wraps a dial function so every connection it produces is
// fault-injected with the same plan; used to aim faults at a specific
// quorum node.
func FaultDialer(dial func() (net.Conn, error), plan FaultPlan) func() (net.Conn, error) {
	return func() (net.Conn, error) {
		conn, err := dial()
		if err != nil {
			return nil, err
		}
		return NewFaultConn(conn, plan), nil
	}
}

var _ io.ReadWriteCloser = (*FaultConn)(nil)
