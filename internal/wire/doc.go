// Package wire implements the network protocol connecting the three
// CryptoNN entities of Fig. 1 — the full specification, with message
// tables and sequence diagrams, lives in docs/PROTOCOL.md:
//
//   - authority ⇄ server/client: public-key distribution and
//     function-derived key issuance for Algorithm 1's two
//     pre-process-key-derivative steps (AuthorityServer +
//     RemoteKeyService, batched variants included);
//   - client → server: encrypted training-data submission, Algorithm 1's
//     pre-process-encryption output in transit (SubmitBatches +
//     TrainingServer);
//   - client ⇄ server: encrypted prediction (RequestPrediction +
//     PredictionServer), the secure-computation step exposed as a
//     service.
//
// Messages are length-prefixed gob frames over TCP. The protocol is
// deliberately request/response with one outstanding request per
// connection; RemoteKeyService serializes concurrent callers, and callers
// needing parallel key traffic open multiple connections (see Pool).
//
// # Serving throughput: cross-client batch coalescing
//
// One request at a time per connection does not mean one evaluation per
// request: a PredictionServer built with NewCoalescingPredictionServer
// funnels requests from all connections into a Dispatcher, which merges
// compatible encrypted batches (up to MaxCoalescedSamples, waiting at
// most MaxDelay) into a single evaluation and demultiplexes per-sample
// results back to each caller. Backpressure is explicit: a full dispatch
// queue rejects with the typed, retryable ErrBusy, which travels the
// wire as Response.Retryable and resurfaces as ErrBusy from
// RequestPrediction — clients back off and retry. Dispatcher.Stats
// exposes the per-server counters (requests, rejections, coalesced batch
// widths, queue depth, latency percentiles).
//
// # Concurrency and validation contract
//
// Servers handle each connection on its own goroutine and may be closed
// from any goroutine; the Dispatcher's single dispatch loop owns all
// prediction evaluation, so the PredictFunc it drives need not be
// concurrency-safe. RemoteKeyService is safe for concurrent use (one
// in-flight request at a time); Pool fans key traffic across several
// connections. Every decoded key and ciphertext is validated for group
// membership before use — a malformed or malicious peer cannot inject
// non-elements into the crypto layer.
package wire
