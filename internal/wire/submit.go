package wire

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"cryptonn/internal/core"
)

// Encrypted-batch submission: the client → server data flow of Fig. 1.
// Clients push gob-encoded core.EncryptedBatch / core.EncryptedConvBatch
// frames; the training server collects them from any number of distributed
// data owners ("the model can be trained over multiple, distributed data
// sources" — §III-A) as long as all encrypted under the same authority.

// SubmitBatches streams encrypted dense batches to a training server and
// closes the stream with a Done frame.
func SubmitBatches(conn net.Conn, batches []*core.EncryptedBatch) error {
	for i, b := range batches {
		payload, err := encodePayload(b)
		if err != nil {
			return fmt.Errorf("wire: encoding batch %d: %w", i, err)
		}
		if err := WriteMsg(conn, &Request{Kind: KindSubmitBatch, Payload: payload}); err != nil {
			return fmt.Errorf("wire: submitting batch %d: %w", i, err)
		}
		if err := readAck(conn); err != nil {
			return fmt.Errorf("wire: batch %d: %w", i, err)
		}
	}
	if err := WriteMsg(conn, &Request{Kind: KindDone}); err != nil {
		return fmt.Errorf("wire: finishing submission: %w", err)
	}
	return readAck(conn)
}

// SubmitConvBatches streams encrypted convolutional batches.
func SubmitConvBatches(conn net.Conn, batches []*core.EncryptedConvBatch) error {
	for i, b := range batches {
		payload, err := encodePayload(b)
		if err != nil {
			return fmt.Errorf("wire: encoding conv batch %d: %w", i, err)
		}
		if err := WriteMsg(conn, &Request{Kind: KindSubmitConvBatch, Payload: payload}); err != nil {
			return fmt.Errorf("wire: submitting conv batch %d: %w", i, err)
		}
		if err := readAck(conn); err != nil {
			return fmt.Errorf("wire: conv batch %d: %w", i, err)
		}
	}
	if err := WriteMsg(conn, &Request{Kind: KindDone}); err != nil {
		return fmt.Errorf("wire: finishing submission: %w", err)
	}
	return readAck(conn)
}

func encodePayload(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func readAck(conn net.Conn) error {
	var resp Response
	if err := ReadMsg(conn, &resp); err != nil {
		return err
	}
	if resp.Err != "" {
		return fmt.Errorf("server rejected: %s", resp.Err)
	}
	return nil
}

// TrainingServer accepts encrypted batches from distributed clients. It
// only stores ciphertext batches — the training loop itself runs on top
// through the usual core.Trainer.
type TrainingServer struct {
	log    *log.Logger
	panics atomic.Uint64

	mu          sync.Mutex
	listener    net.Listener
	conns       map[net.Conn]struct{}
	wg          sync.WaitGroup
	closed      bool
	batches     []*core.EncryptedBatch
	convBatches []*core.EncryptedConvBatch
	done        int
	doneCh      chan struct{}
}

// NewTrainingServer creates a collector; logger may be nil.
func NewTrainingServer(logger *log.Logger) *TrainingServer {
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	return &TrainingServer{
		log:    logger,
		conns:  make(map[net.Conn]struct{}),
		doneCh: make(chan struct{}, 1),
	}
}

// Submissions returns the number of completed client submissions (Done
// frames received).
func (s *TrainingServer) Submissions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.done
}

// WaitSubmissions blocks until at least n clients have completed their
// submission, or the context is cancelled.
func (s *TrainingServer) WaitSubmissions(ctx context.Context, n int) error {
	for {
		s.mu.Lock()
		have := s.done
		s.mu.Unlock()
		if have >= n {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-s.doneCh:
		}
	}
}

// signalDone wakes one WaitSubmissions poller; the buffered channel
// coalesces bursts.
func (s *TrainingServer) signalDone() {
	select {
	case s.doneCh <- struct{}{}:
	default:
	}
}

// Batches returns the dense batches received so far.
func (s *TrainingServer) Batches() []*core.EncryptedBatch {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*core.EncryptedBatch, len(s.batches))
	copy(out, s.batches)
	return out
}

// ConvBatches returns the convolutional batches received so far.
func (s *TrainingServer) ConvBatches() []*core.EncryptedConvBatch {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*core.EncryptedConvBatch, len(s.convBatches))
	copy(out, s.convBatches)
	return out
}

// Serve accepts submissions until the context is cancelled or Close is
// called.
func (s *TrainingServer) Serve(ctx context.Context, l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.listener = l
	s.mu.Unlock()

	stop := context.AfterFunc(ctx, func() { _ = s.Close() })
	defer stop()

	for {
		conn, err := l.Accept()
		if err != nil {
			s.wg.Wait()
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			closeLogged(conn, s.log)
			s.wg.Wait()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops accepting and closes live connections.
func (s *TrainingServer) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if s.listener != nil {
		err = s.listener.Close()
	}
	for c := range s.conns {
		closeLogged(c, s.log)
	}
	return err
}

func (s *TrainingServer) handle(conn net.Conn) {
	defer func() {
		closeLogged(conn, s.log)
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	bin, hdr, err := sniffHello(conn)
	if err != nil {
		if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
			s.log.Printf("training server: negotiating with %s: %v", conn.RemoteAddr(), err)
		}
		return
	}
	if bin {
		s.handleBinary(conn)
		return
	}
	first := true
	for {
		var req Request
		var err error
		if first {
			// The sniffed bytes are the first gob frame's length header.
			err, first = readMsgAfterHeader(conn, hdr, &req), false
		} else {
			err = ReadMsg(conn, &req)
		}
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.log.Printf("training server: read from %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		resp := s.accept(&req)
		if err := WriteMsg(conn, resp); err != nil {
			s.log.Printf("training server: write to %s: %v", conn.RemoteAddr(), err)
			return
		}
		if req.Kind == KindDone {
			return
		}
	}
}

// handleBinary serves one negotiated binary submission connection.
// Submission is a serial protocol (batch, ack, batch, ack, …, done), so
// frames are handled inline; the win over gob is the slab batch
// encoding, not multiplexing.
func (s *TrainingServer) handleBinary(conn net.Conn) {
	bc := newBinConn(conn)
	for {
		ftype, id, body, err := bc.readFrame()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.log.Printf("training server: read from %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		done, werr := s.handleBinaryFrame(bc, ftype, id, body)
		if werr != nil {
			s.log.Printf("training server: write to %s: %v", conn.RemoteAddr(), werr)
			return
		}
		if done {
			return
		}
	}
}

// decodeSubmitConv is an indirection over decodeConvBatch so tests can
// inject a panicking decoder and prove handleBinaryFrame contains it.
var decodeSubmitConv = decodeConvBatch

// handleBinaryFrame serves one binary frame; done reports the closing
// bfDone. A panic reachable from decoding or storing a frame (a codec
// bug tripped by one client's bytes) must cost that frame an error
// response, not the whole training process: recover, count, log, keep
// the connection alive — mirroring PredictionServer.answer.
func (s *TrainingServer) handleBinaryFrame(bc *binConn, ftype byte, id uint64, body []byte) (done bool, werr error) {
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			s.log.Printf("training server: panic handling frame %#x: %v\n%s", ftype, r, debug.Stack())
			done, werr = false, bc.writeErr(id, "submission failed: internal error", false)
		}
	}()
	switch ftype {
	case bfSubmit:
		b, err := decodeEncryptedBatch(body)
		switch {
		case err != nil:
			return false, bc.writeErr(id, fmt.Sprintf("decoding batch: %v", err), false)
		case b.N <= 0 || b.X == nil || b.Y == nil:
			return false, bc.writeErr(id, "empty batch", false)
		default:
			s.mu.Lock()
			s.batches = append(s.batches, b)
			s.mu.Unlock()
			return false, bc.writeEmpty(bfAck, id)
		}
	case bfSubmitConv:
		b, err := decodeSubmitConv(body)
		switch {
		case err != nil:
			return false, bc.writeErr(id, fmt.Sprintf("decoding conv batch: %v", err), false)
		case b.N <= 0 || len(b.Windows) == 0 || b.Y == nil:
			return false, bc.writeErr(id, "empty conv batch", false)
		default:
			s.mu.Lock()
			s.convBatches = append(s.convBatches, b)
			s.mu.Unlock()
			return false, bc.writeEmpty(bfAck, id)
		}
	case bfDone:
		s.mu.Lock()
		s.done++
		s.mu.Unlock()
		s.signalDone()
		return true, bc.writeEmpty(bfAck, id)
	default:
		return false, bc.writeErr(id, fmt.Sprintf("training server cannot serve frame type %#x", ftype), false)
	}
}

func (s *TrainingServer) accept(req *Request) *Response {
	switch req.Kind {
	case KindSubmitBatch:
		var b core.EncryptedBatch
		if err := gob.NewDecoder(bytes.NewReader(req.Payload)).Decode(&b); err != nil {
			return &Response{Err: fmt.Sprintf("decoding batch: %v", err)}
		}
		if b.N <= 0 || b.X == nil || b.Y == nil {
			return &Response{Err: "empty batch"}
		}
		s.mu.Lock()
		s.batches = append(s.batches, &b)
		s.mu.Unlock()
		return &Response{}
	case KindSubmitConvBatch:
		var b core.EncryptedConvBatch
		if err := gob.NewDecoder(bytes.NewReader(req.Payload)).Decode(&b); err != nil {
			return &Response{Err: fmt.Sprintf("decoding conv batch: %v", err)}
		}
		if b.N <= 0 || len(b.Windows) == 0 || b.Y == nil {
			return &Response{Err: "empty conv batch"}
		}
		s.mu.Lock()
		s.convBatches = append(s.convBatches, &b)
		s.mu.Unlock()
		return &Response{}
	case KindDone:
		s.mu.Lock()
		s.done++
		s.mu.Unlock()
		s.signalDone()
		return &Response{}
	default:
		return &Response{Err: fmt.Sprintf("training server cannot serve %s", req.Kind)}
	}
}
