package wire

import (
	"context"
	"net"
	"testing"
	"time"

	"cryptonn/internal/authority"
	"cryptonn/internal/core"
	"cryptonn/internal/fixedpoint"
	"cryptonn/internal/group"
	"cryptonn/internal/securemat"
	"cryptonn/internal/tensor"
)

// submitOne encrypts a tiny batch and submits it as one client session.
func submitOne(t *testing.T, addr string, auth *authority.Authority) {
	t.Helper()
	eng, err := securemat.NewEngine(auth, securemat.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	client, err := core.NewClient(eng, fixedpoint.Default(), nil)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewDense(3, 2)
	y := tensor.NewDense(2, 2)
	y.Set(0, 0, 1)
	y.Set(1, 1, 1)
	enc, err := client.EncryptBatch(x, y)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := SubmitBatches(conn, []*core.EncryptedBatch{enc}); err != nil {
		t.Fatal(err)
	}
}

func TestWaitSubmissionsCountsDoneFrames(t *testing.T) {
	auth, err := authority.New(group.TestParams(), authority.AllowAll())
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTrainingServer(nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); _ = ts.Serve(ctx, l) }()
	defer func() { cancel(); <-done }()

	if n := ts.Submissions(); n != 0 {
		t.Fatalf("initial submissions = %d, want 0", n)
	}

	waitCtx, waitCancel := context.WithTimeout(ctx, 30*time.Second)
	defer waitCancel()
	waitErr := make(chan error, 1)
	go func() { waitErr <- ts.WaitSubmissions(waitCtx, 2) }()

	submitOne(t, l.Addr().String(), auth)
	submitOne(t, l.Addr().String(), auth)

	if err := <-waitErr; err != nil {
		t.Fatalf("WaitSubmissions: %v", err)
	}
	if n := ts.Submissions(); n != 2 {
		t.Errorf("submissions = %d, want 2", n)
	}
	if got := len(ts.Batches()); got != 2 {
		t.Errorf("batches = %d, want 2", got)
	}
}

func TestWaitSubmissionsAlreadySatisfied(t *testing.T) {
	ts := NewTrainingServer(nil)
	// Zero submissions needed: returns immediately even with no server.
	if err := ts.WaitSubmissions(context.Background(), 0); err != nil {
		t.Fatalf("WaitSubmissions(0): %v", err)
	}
}

func TestWaitSubmissionsHonoursCancellation(t *testing.T) {
	ts := NewTrainingServer(nil)
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- ts.WaitSubmissions(ctx, 1) }()
	cancel()
	select {
	case err := <-errCh:
		if err == nil {
			t.Error("WaitSubmissions returned nil after cancellation")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("WaitSubmissions did not return after cancellation")
	}
}
