package wire

import (
	"math/big"
	"math/rand"
	"testing"
)

// TestWordScalarsMatchBigInt cross-checks the word-sized scalar path
// against math/big over random operands, including the 63-bit boundary
// moduli the fast path admits and the negative-extreme int64 inputs.
func TestWordScalarsMatchBigInt(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	moduli := []uint64{
		3, 7, 1<<63 - 25, // largest prime below 2^63
		9223372036854775783,
	}
	for _, q := range moduli {
		w := newWordScalars(new(big.Int).SetUint64(q))
		if w == nil {
			t.Fatalf("q=%d rejected by newWordScalars", q)
		}
		bigQ := new(big.Int).SetUint64(q)
		for i := 0; i < 2000; i++ {
			acc := rng.Uint64() % q
			a := rng.Uint64() % q
			b := rng.Uint64() % q
			got := w.mulAdd(acc, a, b)
			want := new(big.Int).SetUint64(a)
			want.Mul(want, new(big.Int).SetUint64(b))
			want.Add(want, new(big.Int).SetUint64(acc))
			want.Mod(want, bigQ)
			if got != want.Uint64() {
				t.Fatalf("mulAdd(%d,%d,%d) mod %d = %d, want %s", acc, a, b, q, got, want)
			}
		}
		for _, v := range []int64{0, 1, -1, 1<<63 - 1, -(1 << 62), -9223372036854775808} {
			got := w.fromInt64(v)
			want := new(big.Int).Mod(big.NewInt(v), bigQ)
			if got != want.Uint64() {
				t.Fatalf("fromInt64(%d) mod %d = %d, want %s", v, q, got, want)
			}
		}
		// Deferred-reduction accumulator vs big.Int over long random
		// folds (the rhsExps/partial-fold shape, batch-scale term counts).
		for trial := 0; trial < 20; trial++ {
			n := 1 + rng.Intn(300)
			var acc acc192
			want := new(big.Int)
			var term big.Int
			for k := 0; k < n; k++ {
				a := rng.Uint64() % q
				b := rng.Uint64() % q
				acc.mulAdd(a, b)
				term.SetUint64(a)
				term.Mul(&term, new(big.Int).SetUint64(b))
				want.Add(want, &term)
			}
			want.Mod(want, bigQ)
			if got := w.reduce(acc); got != want.Uint64() {
				t.Fatalf("acc192 over %d terms mod %d = %d, want %s", n, q, got, want)
			}
		}
	}
}

// TestVerifierCoeffWordsInRange checks the word-path coefficient draw:
// every coefficient reduced, and not degenerately colliding (the RLC
// soundness argument needs ~uniform coefficients; a constant output
// would be a catastrophic bug this test catches cheaply).
func TestVerifierCoeffWordsInRange(t *testing.T) {
	w := newWordScalars(new(big.Int).SetUint64(1<<63 - 25))
	cs, err := verifierCoeffWords(256, w)
	if err != nil {
		t.Fatal(err)
	}
	distinct := make(map[uint64]bool, len(cs))
	for i, c := range cs {
		if c >= w.q {
			t.Fatalf("coefficient %d = %d not reduced", i, c)
		}
		distinct[c] = true
	}
	if len(distinct) < 250 {
		t.Fatalf("only %d distinct coefficients out of 256", len(distinct))
	}
}

// TestWordScalarsRejectsWideModuli pins the fallback condition: a 64-bit
// (or wider) modulus must not take the word path, since modular addition
// could overflow.
func TestWordScalarsRejectsWideModuli(t *testing.T) {
	wide := new(big.Int).Lsh(big.NewInt(1), 63) // 2^63: BitLen 64
	if newWordScalars(wide) != nil {
		t.Fatal("2^63 admitted to the word path")
	}
	if newWordScalars(nil) != nil || newWordScalars(big.NewInt(0)) != nil {
		t.Fatal("degenerate moduli admitted")
	}
}
