package wire

// ClientConn is the client side of a negotiated connection (codec.go).
// In binary mode it multiplexes: any number of requests may be in
// flight, tagged with ids, and a reader goroutine demultiplexes the
// out-of-order responses. In gob fallback mode it serializes requests
// over the legacy one-outstanding-request protocol, so callers get one
// API whichever codec the server speaks.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"cryptonn/internal/core"
	"cryptonn/internal/dlog"
)

// Codec names a negotiated wire codec.
type Codec string

// Codec values.
const (
	CodecBinary Codec = "binary"
	CodecGob    Codec = "gob"
)

// binReply is one demultiplexed binary response frame. Body is a copy —
// the read buffer is reused for the next frame.
type binReply struct {
	ftype byte
	body  []byte
	err   error
}

// ClientConn is a negotiated client connection. Safe for concurrent use;
// in gob mode concurrent requests serialize, in binary mode they pipeline.
type ClientConn struct {
	conn  net.Conn
	codec Codec

	// Binary mode.
	bc      *binConn
	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan binReply
	readErr error

	// Gob fallback mode: the legacy protocol allows one outstanding
	// request per connection.
	gmu sync.Mutex

	closeOnce sync.Once
	closeErr  error
}

// Dial connects and negotiates the binary codec, falling back to the
// legacy gob protocol when the server does not speak it (a legacy server
// closes the connection on the hello, so the fallback is a redial).
func Dial(addr string) (*ClientConn, error) {
	cc, err := DialCodec(addr, CodecBinary)
	if err == nil {
		return cc, nil
	}
	if !errors.Is(err, ErrCodecRefused) {
		return nil, err
	}
	return DialCodec(addr, CodecGob)
}

// DialCodec connects with a fixed codec and no fallback.
func DialCodec(addr string, codec Codec) (*ClientConn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dialing %s: %w", addr, err)
	}
	cc, err := NewClientConn(conn, codec)
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	return cc, nil
}

// NewClientConn negotiates the given codec over an established
// connection. On error the connection is unusable and should be closed
// by the caller; in particular ErrCodecRefused means the server closed
// it, so a fallback needs a fresh dial.
func NewClientConn(conn net.Conn, codec Codec) (*ClientConn, error) {
	cc := &ClientConn{conn: conn, codec: codec}
	switch codec {
	case CodecGob:
		return cc, nil
	case CodecBinary:
		if err := negotiateBinary(conn); err != nil {
			return nil, err
		}
		cc.bc = newBinConn(conn)
		cc.pending = make(map[uint64]chan binReply)
		go cc.readLoop()
		return cc, nil
	default:
		return nil, fmt.Errorf("wire: unknown codec %q", codec)
	}
}

// Codec reports the negotiated codec.
func (c *ClientConn) Codec() Codec { return c.codec }

// Close closes the connection; in-flight binary requests fail.
func (c *ClientConn) Close() error {
	c.closeOnce.Do(func() { c.closeErr = c.conn.Close() })
	return c.closeErr
}

// readLoop demultiplexes binary response frames to their callers. Any
// read error fails every pending and future request.
func (c *ClientConn) readLoop() {
	for {
		ftype, id, body, err := c.bc.readFrame()
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			for id, ch := range c.pending {
				ch <- binReply{err: err}
				delete(c.pending, id)
			}
			c.mu.Unlock()
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if !ok {
			continue // caller gave up (cancelled); drop the late reply
		}
		cp := make([]byte, len(body))
		copy(cp, body)
		ch <- binReply{ftype: ftype, body: cp}
	}
}

// send registers a pending id and writes one request frame.
func (c *ClientConn) send(ftype byte, fill func([]byte) ([]byte, error)) (uint64, chan binReply, error) {
	ch := make(chan binReply, 1)
	c.mu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return 0, nil, fmt.Errorf("wire: connection failed: %w", err)
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	c.mu.Unlock()
	if err := c.bc.writeFrame(ftype, id, fill); err != nil {
		c.forget(id)
		return 0, nil, err
	}
	return id, ch, nil
}

// forget abandons a pending request; a late reply is discarded.
func (c *ClientConn) forget(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// await waits for the reply or context cancellation. Cancellation
// abandons only this request — the connection and its other in-flight
// requests stay healthy.
func (c *ClientConn) await(ctx context.Context, id uint64, ch chan binReply) (binReply, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case rep := <-ch:
		return rep, rep.err
	case <-ctx.Done():
		c.forget(id)
		// The reply may have been delivered between Done and forget.
		select {
		case rep := <-ch:
			return rep, rep.err
		default:
		}
		return binReply{}, ctx.Err()
	}
}

// replyErr turns a bfErr reply into a Go error (ErrBusy when retryable).
func replyErr(rep binReply, verb string) error {
	msg, retryable, err := decodeErrBody(rep.body)
	if err != nil {
		return err
	}
	if retryable {
		return fmt.Errorf("%w: server rejected %s: %s", ErrBusy, verb, msg)
	}
	return fmt.Errorf("wire: server rejected %s: %s", verb, msg)
}

// Predict submits one encrypted batch for prediction. A nil context and
// zero timeout block without bound.
func (c *ClientConn) Predict(ctx context.Context, enc *core.EncryptedBatch, timeout time.Duration) ([]int, error) {
	if c.codec == CodecGob {
		c.gmu.Lock()
		defer c.gmu.Unlock()
		return RequestPredictionOpts(ctx, c.conn, enc, timeout)
	}
	if timeout > 0 {
		if ctx == nil {
			ctx = context.Background()
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	id, ch, err := c.send(bfPredict, func(b []byte) ([]byte, error) {
		return appendEncryptedBatch(b, enc)
	})
	if err != nil {
		return nil, fmt.Errorf("wire: sending prediction request: %w", err)
	}
	rep, err := c.await(ctx, id, ch)
	if err != nil {
		return nil, fmt.Errorf("wire: prediction exchange: %w", err)
	}
	switch rep.ftype {
	case bfPreds:
		preds, err := decodePreds(rep.body)
		if err != nil {
			return nil, err
		}
		if len(preds) != enc.N {
			return nil, fmt.Errorf("wire: %d predictions for %d samples", len(preds), enc.N)
		}
		return preds, nil
	case bfErr:
		return nil, replyErr(rep, "prediction")
	default:
		return nil, fmt.Errorf("wire: unexpected frame type %#x for prediction", rep.ftype)
	}
}

// PredictTopK submits one coordinate-form sparse batch and returns each
// sample's k largest logits as descending (label, value) pairs. A nil
// context and zero timeout block without bound.
func (c *ClientConn) PredictTopK(ctx context.Context, sp *core.SparseBatch, k int, timeout time.Duration) ([][]dlog.TopKHit, error) {
	if c.codec == CodecGob {
		c.gmu.Lock()
		defer c.gmu.Unlock()
		return RequestTopKOpts(ctx, c.conn, sp, k, timeout)
	}
	if timeout > 0 {
		if ctx == nil {
			ctx = context.Background()
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	id, ch, err := c.send(bfPredictTopK, func(b []byte) ([]byte, error) {
		return appendSparseBatch(b, k, sp)
	})
	if err != nil {
		return nil, fmt.Errorf("wire: sending top-k request: %w", err)
	}
	rep, err := c.await(ctx, id, ch)
	if err != nil {
		return nil, fmt.Errorf("wire: top-k exchange: %w", err)
	}
	switch rep.ftype {
	case bfTopK:
		hits, err := decodeTopKHits(rep.body)
		if err != nil {
			return nil, err
		}
		if len(hits) != sp.N {
			return nil, fmt.Errorf("wire: %d top-k hit lists for %d samples", len(hits), sp.N)
		}
		return hits, nil
	case bfErr:
		return nil, replyErr(rep, "top-k prediction")
	default:
		return nil, fmt.Errorf("wire: unexpected frame type %#x for top-k prediction", rep.ftype)
	}
}

// ackedCall sends one request frame and waits for its bfAck.
func (c *ClientConn) ackedCall(ftype byte, verb string, fill func([]byte) ([]byte, error)) error {
	id, ch, err := c.send(ftype, fill)
	if err != nil {
		return fmt.Errorf("wire: sending %s: %w", verb, err)
	}
	rep, err := c.await(context.Background(), id, ch)
	if err != nil {
		return fmt.Errorf("wire: %s exchange: %w", verb, err)
	}
	switch rep.ftype {
	case bfAck:
		return nil
	case bfErr:
		return replyErr(rep, verb)
	default:
		return fmt.Errorf("wire: unexpected frame type %#x for %s", rep.ftype, verb)
	}
}

// SubmitBatches submits training batches followed by the done marker.
func (c *ClientConn) SubmitBatches(batches []*core.EncryptedBatch) error {
	if c.codec == CodecGob {
		c.gmu.Lock()
		defer c.gmu.Unlock()
		return SubmitBatches(c.conn, batches)
	}
	for i, enc := range batches {
		err := c.ackedCall(bfSubmit, "batch submission", func(b []byte) ([]byte, error) {
			return appendEncryptedBatch(b, enc)
		})
		if err != nil {
			return fmt.Errorf("wire: submitting batch %d: %w", i, err)
		}
	}
	return c.done()
}

// SubmitConvBatches submits convolutional training batches followed by
// the done marker.
func (c *ClientConn) SubmitConvBatches(batches []*core.EncryptedConvBatch) error {
	if c.codec == CodecGob {
		c.gmu.Lock()
		defer c.gmu.Unlock()
		return SubmitConvBatches(c.conn, batches)
	}
	for i, enc := range batches {
		err := c.ackedCall(bfSubmitConv, "conv batch submission", func(b []byte) ([]byte, error) {
			return appendConvBatch(b, enc)
		})
		if err != nil {
			return fmt.Errorf("wire: submitting conv batch %d: %w", i, err)
		}
	}
	return c.done()
}

// done sends the submission-complete marker.
func (c *ClientConn) done() error {
	return c.ackedCall(bfDone, "done marker", func(b []byte) ([]byte, error) { return b, nil })
}
