package wire

// Binary hot-path codec. The legacy protocol gob-encodes every frame,
// which costs each prediction/submission request a fresh set of gob type
// descriptors and a big.Int round-trip per group element — measurable at
// a few clients, fatal at thousands. This file adds a versioned binary
// framing negotiated per connection at accept time:
//
//   - the client opens with an 8-byte hello (magic "CNNB" + version);
//     a server that speaks the codec answers with an 8-byte ack and the
//     connection switches to binary frames. A legacy server reads the
//     hello as an impossible frame length (the magic decodes to a
//     length far above MaxFrame) and closes the connection cleanly, so
//     DialConn can fall back to gob by redialing.
//   - binary frames carry an explicit frame type and a request id, so a
//     connection can have many requests in flight (the prediction server
//     evaluates them concurrently through the coalescing dispatcher and
//     answers out of order — connection multiplexing).
//   - hot bodies (encrypted batches, predictions) are encoded as
//     fixed-width big-endian element slabs with explicit lengths (see
//     binenc.go): no type descriptors, no per-frame reflection.
//   - everything else rides inside bfGobRequest/bfGobResponse frames, so
//     cold control-plane kinds (cluster-info, key traffic) keep gob's
//     flexibility even on a binary connection.
//
// Negotiation is strictly additive: a connection that never sends the
// hello speaks the legacy gob protocol, byte-for-byte unchanged.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// codecMagic opens a client hello; codecAckMagic opens the server's ack.
// As a big-endian frame length the hello reads as 0x434e4e42_xxxxxxxx,
// orders of magnitude above MaxFrame, so it can never collide with a
// legitimate legacy frame header.
var (
	codecMagic    = [4]byte{'C', 'N', 'N', 'B'}
	codecAckMagic = [4]byte{'C', 'N', 'N', 'A'}
)

// CodecVersion is the current binary wire-format version. Bump it (and
// regenerate the golden frames — see docs/PROTOCOL.md "Versioning") on
// any incompatible change to the frame or body layouts.
const CodecVersion = 1

// ErrCodecRefused reports that the peer did not acknowledge the binary
// codec hello (a legacy peer closes the connection instead).
var ErrCodecRefused = errors.New("wire: peer refused binary codec")

// Binary frame types. Requests carry an id the matching response echoes.
const (
	// bfGobRequest / bfGobResponse wrap a legacy gob Request/Response
	// body, giving cold kinds a ride over a binary connection.
	bfGobRequest  = 0x01
	bfGobResponse = 0x02
	// Hot request bodies (binenc.go layouts).
	bfPredict     = 0x10 // EncryptedBatch
	bfSubmit      = 0x11 // EncryptedBatch
	bfSubmitConv  = 0x12 // EncryptedConvBatch
	bfDone        = 0x13 // empty
	bfPredictTopK = 0x14 // u32 k + coordinate-form SparseBatch
	// Hot response bodies.
	bfPreds = 0x20 // u32 count + count×i32 classes
	bfAck   = 0x21 // empty
	bfErr   = 0x22 // u8 flags (bit0 retryable) + UTF-8 message
	bfTopK  = 0x23 // per-sample (u32 label, i64 value) hit lists
)

// binHeaderLen is the fixed binary frame header: u32 body length,
// u8 frame type, u64 request id, all big-endian.
const binHeaderLen = 4 + 1 + 8

// helloFrame builds the 8-byte client hello for the given version.
func helloFrame(version uint16) [8]byte {
	var h [8]byte
	copy(h[:4], codecMagic[:])
	binary.BigEndian.PutUint16(h[4:6], version)
	return h
}

// ackFrame builds the 8-byte server acknowledgement.
func ackFrame(version uint16) [8]byte {
	var h [8]byte
	copy(h[:4], codecAckMagic[:])
	binary.BigEndian.PutUint16(h[4:6], version)
	return h
}

// isHello reports whether an 8-byte prefix is a binary-codec hello and,
// if so, the requested version.
func isHello(hdr [8]byte) (uint16, bool) {
	if [4]byte(hdr[:4]) != codecMagic {
		return 0, false
	}
	return binary.BigEndian.Uint16(hdr[4:6]), true
}

// binConn is the per-connection codec state: one reusable read buffer,
// one reusable write buffer, and a write mutex so response frames from
// concurrent request handlers interleave whole. It persists for the
// connection's lifetime — buffers grow to the workload's frame size once
// and are reused for every subsequent frame.
type binConn struct {
	conn net.Conn
	rbuf []byte

	wmu  sync.Mutex
	wbuf []byte
}

func newBinConn(conn net.Conn) *binConn { return &binConn{conn: conn} }

// readFrame reads one binary frame. The returned body aliases the
// connection's reusable buffer and is valid only until the next
// readFrame call; decode (which copies what it keeps) before reading on.
func (c *binConn) readFrame() (ftype byte, id uint64, body []byte, err error) {
	var hdr [binHeaderLen]byte
	if _, err := io.ReadFull(c.conn, hdr[:]); err != nil {
		return 0, 0, nil, err // io.EOF passes through for clean close detection
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if uint64(n) > MaxFrame {
		return 0, 0, nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	ftype = hdr[4]
	id = binary.BigEndian.Uint64(hdr[5:13])
	if cap(c.rbuf) < int(n) {
		c.rbuf = make([]byte, n)
	}
	body = c.rbuf[:n]
	if _, err := io.ReadFull(c.conn, body); err != nil {
		return 0, 0, nil, fmt.Errorf("wire: reading frame body: %w", err)
	}
	return ftype, id, body, nil
}

// writeFrame writes one binary frame whose body is produced by fill
// appending to the reusable write buffer. The whole frame goes out in a
// single Write so concurrent writers never interleave partial frames.
func (c *binConn) writeFrame(ftype byte, id uint64, fill func([]byte) ([]byte, error)) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	buf := c.wbuf[:0]
	if cap(buf) < binHeaderLen {
		buf = make([]byte, 0, 512)
	}
	buf = buf[:binHeaderLen]
	var err error
	if buf, err = fill(buf); err != nil {
		return err
	}
	body := len(buf) - binHeaderLen
	if body > MaxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, body)
	}
	binary.BigEndian.PutUint32(buf[:4], uint32(body))
	buf[4] = ftype
	binary.BigEndian.PutUint64(buf[5:13], id)
	c.wbuf = buf
	if _, err := c.conn.Write(buf); err != nil {
		return fmt.Errorf("wire: writing frame: %w", err)
	}
	return nil
}

// writeEmpty writes a bodyless frame (bfDone, bfAck).
func (c *binConn) writeEmpty(ftype byte, id uint64) error {
	return c.writeFrame(ftype, id, func(b []byte) ([]byte, error) { return b, nil })
}

// writeErr writes a bfErr frame.
func (c *binConn) writeErr(id uint64, msg string, retryable bool) error {
	return c.writeFrame(bfErr, id, func(b []byte) ([]byte, error) {
		var flags byte
		if retryable {
			flags |= 1
		}
		b = append(b, flags)
		return append(b, msg...), nil
	})
}

// decodeErrBody unpacks a bfErr body.
func decodeErrBody(body []byte) (msg string, retryable bool, err error) {
	if len(body) < 1 {
		return "", false, errors.New("wire: truncated error frame")
	}
	return string(body[1:]), body[0]&1 != 0, nil
}

// sniffHello reads the first 8 bytes of a just-accepted connection and
// decides the codec. On the binary path it completes the handshake by
// writing the ack. On the legacy path the consumed bytes are the first
// gob frame's length header and are handed back to the caller.
func sniffHello(conn net.Conn) (bin bool, hdr [8]byte, err error) {
	if _, err = io.ReadFull(conn, hdr[:]); err != nil {
		return false, hdr, err
	}
	version, ok := isHello(hdr)
	if !ok {
		return false, hdr, nil
	}
	if version != CodecVersion {
		// Future versions must renegotiate; closing makes the client
		// fall back to gob (or surface the mismatch).
		return false, hdr, fmt.Errorf("wire: unsupported codec version %d", version)
	}
	ack := ackFrame(CodecVersion)
	if _, err := conn.Write(ack[:]); err != nil {
		return false, hdr, fmt.Errorf("wire: writing codec ack: %w", err)
	}
	return true, hdr, nil
}

// negotiateBinary sends the client hello and waits for the server ack.
// A legacy server closes the connection instead of acking, surfaced as
// ErrCodecRefused so the caller can redial in gob mode.
func negotiateBinary(conn net.Conn) error {
	hello := helloFrame(CodecVersion)
	if _, err := conn.Write(hello[:]); err != nil {
		return fmt.Errorf("wire: writing codec hello: %w", err)
	}
	var ack [8]byte
	if _, err := io.ReadFull(conn, ack[:]); err != nil {
		return fmt.Errorf("%w: %v", ErrCodecRefused, err)
	}
	if [4]byte(ack[:4]) != codecAckMagic {
		return ErrCodecRefused
	}
	if v := binary.BigEndian.Uint16(ack[4:6]); v != CodecVersion {
		return fmt.Errorf("%w: server speaks version %d, client %d", ErrCodecRefused, v, CodecVersion)
	}
	return nil
}
