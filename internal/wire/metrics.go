package wire

// Prometheus text-format exposition (version 0.0.4) for the serving
// stack, written by hand so the repo stays dependency-free. Each server
// type exposes WriteMetrics; MetricsHandler aggregates any number of
// them behind one /metrics endpoint. Counter names are part of the
// operational interface — the CI loadgen smoke job greps for them, and
// README.md documents each one — so renaming a metric is a breaking
// change on par with a wire-format bump.

import (
	"fmt"
	"io"
	"net/http"
	"sync"
)

// MetricsSource is anything that can contribute to a /metrics scrape.
type MetricsSource interface {
	// WriteMetrics appends Prometheus text-format samples. Implementations
	// must emit complete metric families (HELP/TYPE then samples) and
	// must not assume exclusive ownership of the writer.
	WriteMetrics(w io.Writer)
}

// MetricsHandler serves a Prometheus text-format scrape aggregating the
// given sources, in order. Nil sources are skipped, so callers can pass
// optional components unconditionally.
func MetricsHandler(sources ...MetricsSource) http.Handler {
	// Scrapes are cheap (atomic loads) but serialized anyway so two
	// concurrent scrapes cannot interleave partially buffered output.
	var mu sync.Mutex
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		for _, s := range sources {
			if s != nil {
				s.WriteMetrics(w)
			}
		}
	})
}

// metricFamily writes one HELP/TYPE preamble followed by its samples.
func metricFamily(w io.Writer, name, typ, help string, samples ...string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	for _, s := range samples {
		fmt.Fprintf(w, "%s%s\n", name, s)
	}
}

// WriteMetrics exposes the prediction server's dispatcher and codec
// counters (see DispatcherStats).
func (s *PredictionServer) WriteMetrics(w io.Writer) {
	st := s.Stats()
	metricFamily(w, "cryptonn_predict_requests_total", "counter",
		"Prediction requests accepted into the dispatch queue.",
		fmt.Sprintf(" %d", st.Requests))
	metricFamily(w, "cryptonn_predict_rejected_total", "counter",
		"Prediction requests rejected with retryable backpressure (queue full).",
		fmt.Sprintf(" %d", st.Rejected))
	metricFamily(w, "cryptonn_predict_samples_total", "counter",
		"Encrypted samples evaluated.",
		fmt.Sprintf(" %d", st.Samples))
	metricFamily(w, "cryptonn_predict_topk_requests_total", "counter",
		"Coordinate-form top-k prediction requests accepted into the dispatch queue.",
		fmt.Sprintf(" %d", st.TopKRequests))
	metricFamily(w, "cryptonn_predict_topk_samples_total", "counter",
		"Encrypted samples across accepted top-k prediction requests.",
		fmt.Sprintf(" %d", st.TopKSamples))
	metricFamily(w, "cryptonn_predict_evals_total", "counter",
		"Engine evaluations (coalesced rounds).",
		fmt.Sprintf(" %d", st.Evals))
	metricFamily(w, "cryptonn_predict_panics_total", "counter",
		"Recovered panics while evaluating predictions.",
		fmt.Sprintf(" %d", st.Panics))
	metricFamily(w, "cryptonn_predict_queue_depth", "gauge",
		"Prediction requests currently queued.",
		fmt.Sprintf(" %d", st.QueueDepth))
	metricFamily(w, "cryptonn_predict_max_coalesced", "gauge",
		"Widest coalesced round so far, in requests.",
		fmt.Sprintf(" %d", st.MaxCoalesced))
	// Quantile-labeled samples must be TYPE summary: Prometheus tooling
	// treats the reserved "quantile" label specially based on the type.
	// The _sum/_count series are omitted — the ring only keeps recent
	// samples, and partial sums would misreport rates.
	metricFamily(w, "cryptonn_predict_latency_seconds", "summary",
		"Recent per-request dispatch latency quantiles.",
		fmt.Sprintf("{quantile=\"0.5\"} %g", st.P50.Seconds()),
		fmt.Sprintf("{quantile=\"0.99\"} %g", st.P99.Seconds()))
	metricFamily(w, "cryptonn_predict_connections_total", "counter",
		"Prediction connections accepted, by negotiated codec.",
		fmt.Sprintf("{codec=\"binary\"} %d", s.binConns.Load()),
		fmt.Sprintf("{codec=\"gob\"} %d", s.gobConns.Load()))
}

// WriteMetrics exposes the authority server's incident counters (see
// AuthorityServerStats).
func (s *AuthorityServer) WriteMetrics(w io.Writer) {
	st := s.Stats()
	metricFamily(w, "cryptonn_authority_served_total", "counter",
		"Key requests dispatched to the key services.",
		fmt.Sprintf(" %d", st.Served))
	metricFamily(w, "cryptonn_authority_rejected_total", "counter",
		"Key requests refused by the resource-limit guard.",
		fmt.Sprintf(" %d", st.Rejected))
	metricFamily(w, "cryptonn_authority_panics_total", "counter",
		"Recovered panics while serving key requests.",
		fmt.Sprintf(" %d", st.Panics))
}

// WriteMetrics exposes the quorum client's fan-out health counters (see
// QuorumStats).
func (s *QuorumKeyService) WriteMetrics(w io.Writer) {
	st := s.Stats()
	metricFamily(w, "cryptonn_quorum_round_trips_total", "counter",
		"Cluster node exchanges, including retries and hedges.",
		fmt.Sprintf(" %d", st.RoundTrips))
	metricFamily(w, "cryptonn_quorum_escalations_total", "counter",
		"Standby nodes contacted because a primary failed or misbehaved.",
		fmt.Sprintf(" %d", st.Escalations))
	metricFamily(w, "cryptonn_quorum_hedges_total", "counter",
		"Standby nodes contacted because primaries stalled past the hedge delay.",
		fmt.Sprintf(" %d", st.Hedges))
	metricFamily(w, "cryptonn_quorum_suspicions_total", "counter",
		"Node exchanges that exhausted retries and marked the node suspect.",
		fmt.Sprintf(" %d", st.Suspicions))
	metricFamily(w, "cryptonn_quorum_suspect_nodes", "gauge",
		"Cluster nodes currently marked suspect.",
		fmt.Sprintf(" %d", st.SuspectNodes))
}
