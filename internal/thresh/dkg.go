package thresh

import (
	"fmt"
	"io"
	"math/big"

	"cryptonn/internal/group"
)

// Dealing is one participant's message in the Feldman-committed DKG: the
// exponent commitments to its polynomial coefficients and the sub-share
// f(j) destined for each node j. Over a network, Commits is broadcast and
// SubShares[j-1] travels to node j on a private channel; VerifyShare lets
// the recipient check its sub-share against the public commitments.
type Dealing struct {
	// Commits[k] = g^{c_k} commits to polynomial coefficient k; Commits[0]
	// commits to the dealer's contribution to the joint secret.
	Commits []*big.Int
	// SubShares[j-1] = (j, f(j)) is node j's sub-share.
	SubShares []Share
}

// Deal generates one participant's DKG contribution for an N-node cluster
// with threshold T. Randomness is drawn from r (crypto/rand when nil).
func Deal(params *group.Params, t, n int, r io.Reader) (*Dealing, error) {
	if err := CheckTN(t, n); err != nil {
		return nil, err
	}
	poly, err := randomPolynomial(params, nil, t, r)
	if err != nil {
		return nil, err
	}
	d := &Dealing{
		Commits:   make([]*big.Int, t),
		SubShares: make([]Share, n),
	}
	for k, c := range poly.coeffs {
		d.Commits[k] = params.PowG(c)
	}
	for j := 1; j <= n; j++ {
		d.SubShares[j-1] = Share{X: int64(j), V: poly.eval(params, int64(j))}
	}
	return d, nil
}

// commitEval evaluates the committed polynomial in the exponent:
// Π commits[k]^{x^k} = g^{f(x)}.
func commitEval(params *group.Params, commits []*big.Int, x int64) *big.Int {
	exps := make([]*big.Int, len(commits))
	xb := big.NewInt(x)
	pow := big.NewInt(1)
	for k := range commits {
		exps[k] = new(big.Int).Set(pow)
		pow = new(big.Int).Mul(pow, xb)
		pow.Mod(pow, params.Q)
	}
	return params.MultiExp(commits, exps)
}

// VerifyShare checks a sub-share against the dealing's commitments:
// g^{V} == Π Commits[k]^{X^k}. A dealing whose sub-shares all verify is
// consistent with one degree T−1 polynomial.
func (d *Dealing) VerifyShare(params *group.Params, sh Share) error {
	if sh.V == nil || sh.X <= 0 {
		return fmt.Errorf("%w: sub-share (%d)", ErrShare, sh.X)
	}
	want := commitEval(params, d.Commits, sh.X)
	if params.PowG(sh.V).Cmp(want) != 0 {
		return fmt.Errorf("%w: sub-share %d fails Feldman check", ErrShare, sh.X)
	}
	return nil
}

// DKGResult is the outcome of a dealerless key generation: each node's
// share of the joint secret, the joint public key, and each node's public
// share commitment. The joint secret itself is never formed.
type DKGResult struct {
	T, N int
	// Shares[j-1] is node j's share of the joint secret.
	Shares []Share
	// Pub = g^{secret} is the joint public key.
	Pub *big.Int
	// PubShares[j-1] = g^{Shares[j-1].V} is node j's public share
	// commitment (the verification key for its partial-key DLEQ proofs).
	PubShares []*big.Int
}

// RunDKG executes the N-participant Feldman DKG in one process: every
// participant deals, node j's share is Σ_d f_d(j), the joint public key is
// Π_d Commits_d[0]. No code path sums the dealers' constant terms, so the
// joint secret exists only in shared form; see the package comment for the
// ceremony-host trust caveat.
func RunDKG(params *group.Params, t, n int, r io.Reader) (*DKGResult, error) {
	if err := CheckTN(t, n); err != nil {
		return nil, err
	}
	res := &DKGResult{
		T:         t,
		N:         n,
		Shares:    make([]Share, n),
		PubShares: make([]*big.Int, n),
	}
	pub := big.NewInt(1)
	sums := make([]*big.Int, n)
	for j := range sums {
		sums[j] = new(big.Int)
	}
	for d := 0; d < n; d++ {
		dealing, err := Deal(params, t, n, r)
		if err != nil {
			return nil, fmt.Errorf("thresh: dealer %d: %w", d+1, err)
		}
		pub = params.Mul(pub, dealing.Commits[0])
		for j := range sums {
			sums[j].Add(sums[j], dealing.SubShares[j].V)
		}
	}
	res.Pub = pub
	for j := range sums {
		v := sums[j].Mod(sums[j], params.Q)
		res.Shares[j] = Share{X: int64(j + 1), V: v}
		res.PubShares[j] = params.PowG(v)
	}
	return res, nil
}

// CombineElements computes Π e_j^{λ_j} mod P — the Lagrange combination of
// partial group elements (e.g. partial FEBO keys cmt^{s^(j)}) — running
// every ladder in the Montgomery domain.
func CombineElements(params *group.Params, lambdas []*big.Int, elems []*big.Int) (*big.Int, error) {
	if len(lambdas) != len(elems) {
		return nil, fmt.Errorf("%w: %d coefficients for %d elements", ErrShare, len(lambdas), len(elems))
	}
	mc := params.Mont()
	k := mc.Limbs()
	buf := make([]uint64, 2*k)
	acc, term := buf[:k], buf[k:]
	mc.SetOne(acc)
	for j, e := range elems {
		if e == nil {
			return nil, fmt.Errorf("%w: nil element %d", ErrShare, j)
		}
		mc.ToMont(term, e)
		mc.ExpMont(term, term, lambdas[j])
		mc.MulMont(acc, acc, term)
	}
	return mc.FromMont(acc), nil
}
