package thresh

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/big"

	"cryptonn/internal/group"
)

// Domain-separation tags for the Fiat–Shamir transcripts, so a proof can
// never be replayed in another protocol role.
const (
	dstRLC  = "CRYPTONN/THRESH/v1/RLC"
	dstDLEQ = "CRYPTONN/THRESH/v1/DLEQ"
)

// ErrProof reports a DLEQ proof that fails verification.
var ErrProof = errors.New("thresh: invalid discrete-log equality proof")

// EqProof is a non-interactive Chaum–Pedersen proof that two group
// elements share a discrete log: log_g(pub) = log_{B}(P) for the batched
// base/output pair (B, P). It proves a partial FEBO key was derived with
// the node's committed secret share, without revealing the share.
type EqProof struct {
	C, Z *big.Int
}

// transcript accumulates Fiat–Shamir challenge input as length-prefixed
// big-endian integers under a domain tag.
type transcript struct {
	h interface {
		io.Writer
		Sum([]byte) []byte
	}
}

func newTranscript(dst string) *transcript {
	t := &transcript{h: sha256.New()}
	t.bytes([]byte(dst))
	return t
}

func (t *transcript) bytes(b []byte) {
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(b)))
	t.h.Write(n[:])
	t.h.Write(b)
}

func (t *transcript) ints(xs ...*big.Int) {
	for _, x := range xs {
		t.bytes(x.Bytes())
	}
}

func (t *transcript) sum() []byte { return t.h.Sum(nil) }

// rlcCoeffs derives the random-linear-combination coefficients that fold
// a batch of (base, out) pairs into one pair. Each coefficient is a
// 128-bit integer bound to the whole batch and the prover's public share
// commitment, so a prover cannot trade an error in one element against
// another.
func rlcCoeffs(pub *big.Int, bases, outs []*big.Int) []*big.Int {
	seedT := newTranscript(dstRLC)
	seedT.ints(pub)
	seedT.ints(bases...)
	seedT.ints(outs...)
	seed := seedT.sum()
	coeffs := make([]*big.Int, len(bases))
	var buf [sha256.Size]byte
	for i := range coeffs {
		h := sha256.New()
		h.Write(seed)
		var n [8]byte
		binary.BigEndian.PutUint64(n[:], uint64(i))
		h.Write(n[:])
		h.Sum(buf[:0])
		coeffs[i] = new(big.Int).SetBytes(buf[:16])
	}
	return coeffs
}

// challenge derives the Chaum–Pedersen challenge scalar mod Q.
func challenge(params *group.Params, pub, base, out, t1, t2 *big.Int) *big.Int {
	tr := newTranscript(dstDLEQ)
	tr.ints(params.P, params.G, pub, base, out, t1, t2)
	c := new(big.Int).SetBytes(tr.sum())
	return c.Mod(c, params.Q)
}

// foldBatch collapses (bases, outs) to the single RLC pair (B, P).
func foldBatch(params *group.Params, pub *big.Int, bases, outs []*big.Int) (b, p *big.Int) {
	if len(bases) == 1 {
		return bases[0], outs[0]
	}
	es := rlcCoeffs(pub, bases, outs)
	return params.MultiExp(bases, es), params.MultiExp(outs, es)
}

// ProveEqBatch proves that outs[i] = bases[i]^secret for every i, where
// pub = g^secret is the prover's public share commitment. The batch is
// folded into one pair with Fiat–Shamir RLC coefficients; the proof is
// two scalars regardless of batch size. Randomness is drawn from r
// (crypto/rand when nil).
func ProveEqBatch(params *group.Params, secret, pub *big.Int, bases, outs []*big.Int, r io.Reader) (*EqProof, error) {
	if len(bases) == 0 || len(bases) != len(outs) {
		return nil, fmt.Errorf("%w: %d bases for %d outputs", ErrShare, len(bases), len(outs))
	}
	if secret == nil || pub == nil {
		return nil, fmt.Errorf("%w: missing secret or commitment", ErrShare)
	}
	b, p := foldBatch(params, pub, bases, outs)
	k, err := params.RandScalar(r)
	if err != nil {
		return nil, fmt.Errorf("thresh: dleq nonce: %w", err)
	}
	t1 := params.PowG(k)
	t2 := params.Exp(b, k)
	c := challenge(params, pub, b, p, t1, t2)
	z := new(big.Int).Mul(c, secret)
	z.Add(z, k)
	return &EqProof{C: c, Z: z.Mod(z, params.Q)}, nil
}

// VerifyEqBatch checks a ProveEqBatch proof: that every outs[i] is
// bases[i] raised to the discrete log of pub. It recomputes the folded
// pair, reconstructs the commitments t1 = g^z·pub^{−c}, t2 = B^z·P^{−c}
// and compares the re-derived challenge.
func VerifyEqBatch(params *group.Params, pub *big.Int, bases, outs []*big.Int, proof *EqProof) error {
	if proof == nil || proof.C == nil || proof.Z == nil {
		return fmt.Errorf("%w: empty proof", ErrProof)
	}
	if len(bases) == 0 || len(bases) != len(outs) {
		return fmt.Errorf("%w: %d bases for %d outputs", ErrProof, len(bases), len(outs))
	}
	if pub == nil || !params.IsElement(pub) {
		return fmt.Errorf("%w: commitment not a group element", ErrProof)
	}
	for i, o := range outs {
		if o == nil || !params.IsElement(o) {
			return fmt.Errorf("%w: output %d not a group element", ErrProof, i)
		}
	}
	b, p := foldBatch(params, pub, bases, outs)
	negC := new(big.Int).Neg(proof.C)
	t1 := params.Mul(params.PowG(proof.Z), params.Exp(pub, negC))
	t2 := params.Mul(params.Exp(b, proof.Z), params.Exp(p, negC))
	if challenge(params, pub, b, p, t1, t2).Cmp(proof.C) != 0 {
		return ErrProof
	}
	return nil
}
