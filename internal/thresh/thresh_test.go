package thresh

import (
	"math/big"
	"math/rand"
	"testing"

	"cryptonn/internal/group"
)

func testParams(t *testing.T) *group.Params {
	t.Helper()
	p, err := group.Embedded(group.TestBits)
	if err != nil {
		t.Fatalf("embedded group: %v", err)
	}
	return p
}

// combinations yields all size-k index subsets of [0, n).
func combinations(n, k int) [][]int {
	var out [][]int
	idx := make([]int, k)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			out = append(out, append([]int(nil), idx...))
			return
		}
		for i := start; i < n; i++ {
			idx[depth] = i
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
	return out
}

func TestSplitCombineAllQuorums(t *testing.T) {
	params := testParams(t)
	rnd := rand.New(rand.NewSource(1))
	for _, tn := range [][2]int{{1, 1}, {2, 3}, {3, 5}, {5, 7}} {
		th, n := tn[0], tn[1]
		secret, err := params.RandScalar(rnd)
		if err != nil {
			t.Fatal(err)
		}
		shares, err := Split(params, secret, th, n, rnd)
		if err != nil {
			t.Fatalf("Split(%d,%d): %v", th, n, err)
		}
		for _, combo := range combinations(n, th) {
			sub := make([]Share, th)
			for i, c := range combo {
				sub[i] = shares[c]
			}
			got, err := Combine(params, sub)
			if err != nil {
				t.Fatalf("Combine %v: %v", combo, err)
			}
			if got.Cmp(secret) != 0 {
				t.Fatalf("t=%d n=%d quorum %v: got %v want %v", th, n, combo, got, secret)
			}
		}
	}
}

func TestCombineRejectsMalformed(t *testing.T) {
	params := testParams(t)
	if _, err := Split(params, big.NewInt(5), 4, 3, nil); err == nil {
		t.Fatal("Split with t > n must fail")
	}
	if _, err := Combine(params, []Share{{X: 1, V: big.NewInt(1)}, {X: 1, V: big.NewInt(2)}}); err == nil {
		t.Fatal("Combine with duplicate indices must fail")
	}
	if _, err := Combine(params, []Share{{X: 0, V: big.NewInt(1)}}); err == nil {
		t.Fatal("Combine with index 0 must fail")
	}
}

// TestSubThresholdHiding is the statistical arm of the perfect-hiding
// property: the marginal distribution of any T−1 shares is identical
// whatever the secret is. We split two maximally different secrets many
// times and check that a fixed share coordinate lands uniformly across
// value quartiles of Z_Q for both.
func TestSubThresholdHiding(t *testing.T) {
	params := testParams(t)
	rnd := rand.New(rand.NewSource(2))
	const rounds = 400
	q := params.Q
	quarter := new(big.Int).Rsh(q, 2)
	secrets := []*big.Int{big.NewInt(0), new(big.Int).Sub(q, big.NewInt(1))}
	for si, secret := range secrets {
		var buckets [4]int
		for r := 0; r < rounds; r++ {
			shares, err := Split(params, secret, 3, 5, rnd)
			if err != nil {
				t.Fatal(err)
			}
			// Two shares are below threshold for t=3; inspect share 1.
			b := new(big.Int).Div(shares[0].V, quarter).Int64()
			if b > 3 {
				b = 3 // V in the top sliver rounds into bucket 3
			}
			buckets[b]++
		}
		for b, count := range buckets {
			// Expected rounds/4 = 100; a secret-dependent bias would
			// concentrate mass. Bounds are ±6σ-generous to keep the test
			// deterministic-grade stable.
			if count < 40 || count > 160 {
				t.Fatalf("secret %d: share-value bucket %d has %d/%d hits — sub-threshold shares leak", si, b, count, rounds)
			}
		}
	}
}

// TestLagrangeLinearity pins the identity the partial-key path relies on:
// combining per-node linear functions of the shares equals the same
// linear function of the secret.
func TestLagrangeLinearity(t *testing.T) {
	params := testParams(t)
	rnd := rand.New(rand.NewSource(3))
	secret, _ := params.RandScalar(rnd)
	shares, err := Split(params, secret, 3, 5, rnd)
	if err != nil {
		t.Fatal(err)
	}
	w := big.NewInt(-12345)
	// Per-node partial: w·share_j; combined should be w·secret mod Q.
	xs := []int64{2, 4, 5}
	lambdas, err := Lambda(params, xs)
	if err != nil {
		t.Fatal(err)
	}
	partials := []*big.Int{
		params.ReduceScalar(new(big.Int).Mul(w, shares[1].V)),
		params.ReduceScalar(new(big.Int).Mul(w, shares[3].V)),
		params.ReduceScalar(new(big.Int).Mul(w, shares[4].V)),
	}
	got := CombineScalars(params, lambdas, partials)
	want := params.ReduceScalar(new(big.Int).Mul(w, secret))
	if got.Cmp(want) != 0 {
		t.Fatalf("combined linear partial %v != %v", got, want)
	}
}

func TestDealingFeldmanVerify(t *testing.T) {
	params := testParams(t)
	rnd := rand.New(rand.NewSource(4))
	d, err := Deal(params, 3, 5, rnd)
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range d.SubShares {
		if err := d.VerifyShare(params, sh); err != nil {
			t.Fatalf("honest sub-share %d rejected: %v", sh.X, err)
		}
	}
	bad := Share{X: 2, V: new(big.Int).Add(d.SubShares[1].V, big.NewInt(1))}
	if err := d.VerifyShare(params, bad); err == nil {
		t.Fatal("tampered sub-share accepted")
	}
}

func TestRunDKG(t *testing.T) {
	params := testParams(t)
	rnd := rand.New(rand.NewSource(5))
	res, err := RunDKG(params, 3, 5, rnd)
	if err != nil {
		t.Fatal(err)
	}
	// Every T-quorum must reconstruct the same secret, and that secret
	// must match the joint public key (the dealer-free secret).
	var joint *big.Int
	for _, combo := range combinations(5, 3) {
		sub := make([]Share, 3)
		for i, c := range combo {
			sub[i] = res.Shares[c]
		}
		s, err := Combine(params, sub)
		if err != nil {
			t.Fatal(err)
		}
		if joint == nil {
			joint = s
		} else if joint.Cmp(s) != 0 {
			t.Fatalf("quorum %v reconstructs a different secret", combo)
		}
	}
	if params.PowG(joint).Cmp(res.Pub) != 0 {
		t.Fatal("joint public key does not match the reconstructed secret")
	}
	for j, ps := range res.PubShares {
		if params.PowG(res.Shares[j].V).Cmp(ps) != 0 {
			t.Fatalf("public share %d does not commit to share %d", j, j)
		}
	}
}

func TestCombineElements(t *testing.T) {
	params := testParams(t)
	rnd := rand.New(rand.NewSource(6))
	secret, _ := params.RandScalar(rnd)
	shares, err := Split(params, secret, 3, 5, rnd)
	if err != nil {
		t.Fatal(err)
	}
	base, _ := params.RandScalar(rnd)
	cmt := params.PowG(base) // a group element to exponentiate
	xs := []int64{1, 3, 5}
	lambdas, err := Lambda(params, xs)
	if err != nil {
		t.Fatal(err)
	}
	elems := []*big.Int{
		params.Exp(cmt, shares[0].V),
		params.Exp(cmt, shares[2].V),
		params.Exp(cmt, shares[4].V),
	}
	got, err := CombineElements(params, lambdas, elems)
	if err != nil {
		t.Fatal(err)
	}
	if want := params.Exp(cmt, secret); got.Cmp(want) != 0 {
		t.Fatalf("Π P_j^λ_j = %v, want cmt^s = %v", got, want)
	}
}

func TestDLEQ(t *testing.T) {
	params := testParams(t)
	rnd := rand.New(rand.NewSource(7))
	secret, _ := params.RandScalar(rnd)
	pub := params.PowG(secret)
	var bases, outs []*big.Int
	for i := 0; i < 8; i++ {
		e, _ := params.RandScalar(rnd)
		b := params.PowG(e)
		bases = append(bases, b)
		outs = append(outs, params.Exp(b, secret))
	}
	proof, err := ProveEqBatch(params, secret, pub, bases, outs, rnd)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyEqBatch(params, pub, bases, outs, proof); err != nil {
		t.Fatalf("honest batch proof rejected: %v", err)
	}
	// Single-element batch.
	p1, err := ProveEqBatch(params, secret, pub, bases[:1], outs[:1], rnd)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyEqBatch(params, pub, bases[:1], outs[:1], p1); err != nil {
		t.Fatalf("single proof rejected: %v", err)
	}

	// One corrupted output in the batch must be caught by the RLC fold.
	tampered := append([]*big.Int(nil), outs...)
	tampered[3] = params.Mul(tampered[3], params.G)
	if err := VerifyEqBatch(params, pub, bases, tampered, proof); err == nil {
		t.Fatal("corrupted output accepted")
	}
	// Swapping two outputs preserves the multiset but must still fail.
	swapped := append([]*big.Int(nil), outs...)
	swapped[0], swapped[1] = swapped[1], swapped[0]
	if err := VerifyEqBatch(params, pub, bases, swapped, proof); err == nil {
		t.Fatal("swapped outputs accepted")
	}
	// Tampered proof scalars must fail.
	badZ := &EqProof{C: proof.C, Z: new(big.Int).Add(proof.Z, big.NewInt(1))}
	if err := VerifyEqBatch(params, pub, bases, outs, badZ); err == nil {
		t.Fatal("tampered z accepted")
	}
	// A proof bound to another share must not transfer.
	other, _ := params.RandScalar(rnd)
	if err := VerifyEqBatch(params, params.PowG(other), bases, outs, proof); err == nil {
		t.Fatal("proof accepted under a different share commitment")
	}
}
