package thresh

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"cryptonn/internal/group"
)

var (
	// ErrThreshold reports an invalid (T, N) configuration.
	ErrThreshold = errors.New("thresh: invalid threshold configuration")
	// ErrShare reports a structurally invalid share or share set.
	ErrShare = errors.New("thresh: malformed share")
)

// Share is one Shamir share of a scalar in Z_Q: the polynomial evaluation
// V = f(X) at the node's index X. Indices are 1-based (0 is the secret).
type Share struct {
	X int64
	V *big.Int
}

// CheckTN validates a threshold configuration: 1 ≤ t ≤ n.
func CheckTN(t, n int) error {
	if t < 1 || n < 1 || t > n {
		return fmt.Errorf("%w: t=%d n=%d", ErrThreshold, t, n)
	}
	return nil
}

// polynomial is f(x) = c[0] + c[1]·x + … + c[t-1]·x^{t-1} over Z_Q.
type polynomial struct {
	coeffs []*big.Int
}

// randomPolynomial draws a degree t−1 polynomial with the given constant
// term (the secret, reduced mod Q; nil draws a random secret too).
func randomPolynomial(params *group.Params, secret *big.Int, t int, r io.Reader) (*polynomial, error) {
	coeffs := make([]*big.Int, t)
	if secret == nil {
		s, err := params.RandScalar(r)
		if err != nil {
			return nil, fmt.Errorf("thresh: sampling secret: %w", err)
		}
		coeffs[0] = s
	} else {
		coeffs[0] = params.ReduceScalar(secret)
	}
	for i := 1; i < t; i++ {
		c, err := params.RandScalar(r)
		if err != nil {
			return nil, fmt.Errorf("thresh: sampling coefficient: %w", err)
		}
		coeffs[i] = c
	}
	return &polynomial{coeffs: coeffs}, nil
}

// eval computes f(x) mod Q by Horner's rule.
func (p *polynomial) eval(params *group.Params, x int64) *big.Int {
	xb := big.NewInt(x)
	acc := new(big.Int).Set(p.coeffs[len(p.coeffs)-1])
	for i := len(p.coeffs) - 2; i >= 0; i-- {
		acc.Mul(acc, xb)
		acc.Add(acc, p.coeffs[i])
		acc.Mod(acc, params.Q)
	}
	return acc
}

// Split shares secret into n Shamir shares with reconstruction threshold
// t: any t shares recover the secret (Combine), any t−1 are statistically
// independent of it. Randomness is drawn from r (crypto/rand when nil).
func Split(params *group.Params, secret *big.Int, t, n int, r io.Reader) ([]Share, error) {
	if err := CheckTN(t, n); err != nil {
		return nil, err
	}
	if secret == nil {
		return nil, fmt.Errorf("%w: nil secret", ErrShare)
	}
	poly, err := randomPolynomial(params, secret, t, r)
	if err != nil {
		return nil, err
	}
	shares := make([]Share, n)
	for j := 1; j <= n; j++ {
		shares[j-1] = Share{X: int64(j), V: poly.eval(params, int64(j))}
	}
	return shares, nil
}

// Lambda computes the Lagrange interpolation coefficients at x = 0 for the
// distinct evaluation points xs: the combined secret of shares at xs is
// Σ λ_j·V_j mod Q. The coefficients depend only on the participating
// index set, so a caller combining many values over the same quorum
// computes them once.
func Lambda(params *group.Params, xs []int64) ([]*big.Int, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("%w: empty index set", ErrShare)
	}
	seen := make(map[int64]struct{}, len(xs))
	for _, x := range xs {
		if x == 0 {
			return nil, fmt.Errorf("%w: index 0 is the secret", ErrShare)
		}
		if _, dup := seen[x]; dup {
			return nil, fmt.Errorf("%w: duplicate index %d", ErrShare, x)
		}
		seen[x] = struct{}{}
	}
	lambdas := make([]*big.Int, len(xs))
	num := new(big.Int)
	den := new(big.Int)
	var xm, diff big.Int
	for j, xj := range xs {
		num.SetInt64(1)
		den.SetInt64(1)
		for m, x := range xs {
			if m == j {
				continue
			}
			xm.SetInt64(x)
			num.Mul(num, &xm)
			num.Mod(num, params.Q)
			diff.SetInt64(x - xj)
			den.Mul(den, &diff)
			den.Mod(den, params.Q)
		}
		inv := new(big.Int).ModInverse(den, params.Q)
		if inv == nil {
			return nil, fmt.Errorf("%w: indices collide mod Q", ErrShare)
		}
		l := new(big.Int).Mul(num, inv)
		lambdas[j] = l.Mod(l, params.Q)
	}
	return lambdas, nil
}

// Combine reconstructs the shared secret from any t (or more) shares by
// Lagrange interpolation at x = 0.
func Combine(params *group.Params, shares []Share) (*big.Int, error) {
	xs := make([]int64, len(shares))
	for i, sh := range shares {
		if sh.V == nil {
			return nil, fmt.Errorf("%w: share %d has no value", ErrShare, i)
		}
		xs[i] = sh.X
	}
	lambdas, err := Lambda(params, xs)
	if err != nil {
		return nil, err
	}
	vals := make([]*big.Int, len(shares))
	for i, sh := range shares {
		vals[i] = sh.V
	}
	return CombineScalars(params, lambdas, vals), nil
}

// CombineScalars computes Σ λ_j·v_j mod Q — the Lagrange combination of
// partial scalar values (e.g. partial FEIP function keys) with
// coefficients from Lambda.
func CombineScalars(params *group.Params, lambdas, vals []*big.Int) *big.Int {
	acc := new(big.Int)
	var term big.Int
	for j, l := range lambdas {
		term.Mul(l, vals[j])
		acc.Add(acc, &term)
	}
	return acc.Mod(acc, params.Q)
}
