// Package thresh implements the threshold-cryptography core of the
// authority cluster: Shamir secret sharing over the group's scalar field
// Z_Q, a Feldman-committed distributed key generation, and (batched)
// Chaum–Pedersen discrete-log-equality proofs.
//
// # Role in the architecture
//
// The paper's trusted authority holds every FEIP/FEBO master secret in one
// process. The cluster refactor splits each master scalar s into N Shamir
// shares s^(1..N) of a degree T−1 polynomial, so any T nodes can derive
// function keys while T−1 nodes learn nothing. Both functional-encryption
// schemes are linear in their master secrets, which is what makes partial
// key derivation work share-wise:
//
//   - FEIP: sk_f = ⟨y, s⟩ mod Q. Node j returns k_j = ⟨y, s^(j)⟩ and any T
//     partials interpolate at x = 0: sk_f = Σ λ_j·k_j mod Q (Lambda).
//   - FEBO: sk_f is cmt^{s·e} for an op-dependent public exponent e. Node j
//     returns P_j = cmt^{s^(j)} and the combined cmt^s = Π P_j^{λ_j}; the
//     op transform (·g^{∓y}, ^y, ^{y⁻¹}) is applied to the combined value.
//
// # Trust model of RunDKG
//
// Deal/VerifyShare are the message-level Feldman DKG: each participant
// deals a random polynomial, commits to its coefficients in the exponent,
// and every sub-share is verifiable against those commitments, so the
// joint secret Σ f_d(0) exists only as a sum no single dealer knows.
// RunDKG executes that protocol inside one process (the provisioning
// ceremony and the in-process test cluster); the dealerless structure is
// preserved — no code path ever materializes Σ f_d(0) — but a ceremony
// host is necessarily trusted at setup time. A networked interactive DKG
// can be built from Deal/VerifyShare without changing any caller.
//
// # Verifying partial keys
//
// FEIP partials are scalars, so the combined key verifies directly against
// the joint public key: g^{sk_f} == Π h_i^{y_i}. FEBO partials are group
// elements and that check would be a DDH instance, so nodes attach a
// Chaum–Pedersen proof (ProveEqBatch) that log_g A_j = log_cmt P_j for
// their published share commitment A_j = g^{s^(j)}; a corrupted partial is
// rejected before it can poison the combination. Batches are folded into
// one proof with a Fiat–Shamir random linear combination.
//
// All functions are pure and safe for concurrent use; randomness defaults
// to crypto/rand when the supplied reader is nil.
package thresh
