package service_test

import (
	"context"
	"fmt"
	"net"

	"cryptonn/internal/authority"
	"cryptonn/internal/core"
	"cryptonn/internal/group"
	"cryptonn/internal/securemat"
	"cryptonn/internal/service"
	"cryptonn/internal/tensor"
	"cryptonn/internal/wire"
)

// Example_predictionServing runs a minimal encrypted prediction
// client/server pair over loopback TCP: the server exposes its model
// through the coalescing prediction endpoint, the client encrypts inputs
// under the authority's public keys and receives per-sample classes —
// the server never sees the plaintext inputs.
func Example_predictionServing() {
	auth, err := authority.New(group.TestParams(), authority.AllowAll())
	if err != nil {
		panic(err)
	}
	const (
		features = 4
		classes  = 3
		samples  = 2
	)
	srv, err := service.New(auth, service.Config{
		Features: features, Classes: classes, Hidden: []int{4},
		Parallelism: 1, Seed: 7,
	})
	if err != nil {
		panic(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.ServePredictions(ctx, l) }()

	// The client side: encrypt a batch (labels are placeholders —
	// prediction reads only the input ciphertexts).
	eng, err := securemat.NewEngine(auth, securemat.EngineOptions{})
	if err != nil {
		panic(err)
	}
	client, err := core.NewClient(eng, nil, nil)
	if err != nil {
		panic(err)
	}
	x := tensor.NewDense(features, samples)
	y := tensor.NewDense(classes, samples)
	for j := 0; j < samples; j++ {
		y.Set(0, j, 1)
		for i := 0; i < features; i++ {
			x.Set(i, j, float64(i+j)/10)
		}
	}
	enc, err := client.EncryptBatch(x, y)
	if err != nil {
		panic(err)
	}

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		panic(err)
	}
	defer conn.Close()
	preds, err := wire.RequestPrediction(conn, enc)
	if err != nil {
		panic(err)
	}

	inRange := true
	for _, p := range preds {
		inRange = inRange && p >= 0 && p < classes
	}
	fmt.Printf("%d samples predicted; classes in range: %v\n", len(preds), inRange)
	cancel()
	<-served
	// Output: 2 samples predicted; classes in range: true
}
