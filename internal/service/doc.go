// Package service implements the training server of Fig. 1 as a reusable,
// testable component: it collects encrypted batches from any number of
// distributed clients over TCP, trains a neural network on them through
// the CryptoNN framework (Algorithm 2), requesting function-derived keys
// from the authority as training proceeds, and then serves FE-based
// predictions (§III-D) over the trained model.
//
// The package composes internal/wire (transport), internal/core (the
// secure training loop) and internal/nn (the model) into one lifecycle:
//
//	srv, _ := service.New(keys, service.Config{Features: 784, Classes: 10, Expect: 2})
//	report, _ := srv.Run(ctx, trainListener)
//	_ = srv.ServePredictions(ctx, predictListener)
//
// Run blocks until the expected number of client submissions arrives,
// trains for the configured number of epochs, and returns a Report. The
// trained parameters stay on the server — they are plaintext by the
// paper's design; only the training data and labels are ever encrypted.
//
// # Session and concurrency contract
//
// A Server owns one securemat.Engine for its whole lifetime: public keys
// are fetched once, and the dot-product key cache carries the trained
// weights' keys across prediction requests — Algorithm 1's
// pre-process-key-derivative step runs exactly once per trained W.
// ServePredictions runs the serving path as a throughput engine: the
// wire layer's coalescing dispatcher merges concurrent clients' batches
// into shared evaluations (Config.Serving tunes it) against a dedicated
// prediction trainer whose discrete-log bound covers the feed-forward
// only, so the solver table stays fixed no matter how wide requests
// coalesce. Predict itself is safe for concurrent use; evaluations
// serialize on an internal lock because the model's plaintext forward
// pass caches per-batch activations on its layers. Run and
// ServePredictions are phases of one lifecycle, not concurrent peers:
// serve only after training completes.
package service
