package service

// BenchmarkServeCoalesced pins the prediction-serving throughput story:
// the same in-process authority, model, and pre-encrypted client batches
// are served once through the serial per-connection prediction server
// (the pre-coalescing path: every request pays the full per-evaluation
// fixed cost, and evaluations convoy on the server's prediction lock)
// and once through the coalescing dispatcher tuned to the offered load
// (MaxCoalescedSamples = clients × batch, a 1 ms straggler window — the
// setting an operator picks for closed-loop clients). Load is a
// pipelined closed loop over loopback TCP: every client streams
// back-to-back requests on its own connection, exactly like
// cmd/cryptonn-loadgen.
//
// The custom samples/sec metric is the headline number; samples/eval
// shows how wide the dispatcher actually merged. On a single-CPU box
// the win is the amortized per-evaluation fixed cost only; on a
// multi-core box the merged evaluations additionally spread across the
// engine's decryption workers while serial evaluations cannot (they
// serialize on the prediction lock), so the gap widens — re-measure
// there, like the BenchmarkLookupParallel scaling note in ROADMAP.md.

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"cryptonn/internal/authority"
	"cryptonn/internal/core"
	"cryptonn/internal/fixedpoint"
	"cryptonn/internal/group"
	"cryptonn/internal/securemat"
	"cryptonn/internal/wire"
)

// benchBatch encrypts a deterministic prediction batch (column
// orientation only — what the serving path reads).
func benchBatch(b *testing.B, eng *securemat.Engine, features, classes, n int, seed int64) *core.EncryptedBatch {
	b.Helper()
	codec := fixedpoint.Default()
	x := make([][]float64, features)
	for i := range x {
		x[i] = make([]float64, n)
		for j := range x[i] {
			x[i][j] = float64((i*31+j*17+int(seed))%100) / 100
		}
	}
	xi, err := codec.EncodeMat(x)
	if err != nil {
		b.Fatal(err)
	}
	encX, err := eng.Encrypt(xi, securemat.EncryptOptions{SkipElems: true})
	if err != nil {
		b.Fatal(err)
	}
	return &core.EncryptedBatch{X: encX, Features: features, Classes: classes, N: n}
}

func BenchmarkServeCoalesced(b *testing.B) {
	const (
		features = 16
		classes  = 10
	)
	auth, err := authority.New(group.TestParams(), authority.AllowAll())
	if err != nil {
		b.Fatal(err)
	}
	srv, err := New(auth, Config{
		Features:    features,
		Classes:     classes,
		Hidden:      []int{16},
		Parallelism: 1,
		Seed:        11,
	})
	if err != nil {
		b.Fatal(err)
	}
	ceng, err := securemat.NewEngine(auth, securemat.EngineOptions{})
	if err != nil {
		b.Fatal(err)
	}
	// Serving answers with the model's current (initial) weights — the
	// benchmark measures the serving path, not training. One warm-up
	// call builds the cached prediction trainer outside the timing.
	if _, err := srv.Predict(benchBatch(b, ceng, features, classes, 1, 99)); err != nil {
		b.Fatal(err)
	}

	sweep := []struct{ clients, batch int }{
		{1, 1}, {4, 1}, {8, 1}, {4, 4},
	}
	for _, cs := range sweep {
		// One pre-encrypted batch per client, reused every request.
		batches := make([]*core.EncryptedBatch, cs.clients)
		for c := range batches {
			batches[c] = benchBatch(b, ceng, features, classes, cs.batch, int64(c))
		}
		for _, coalesced := range []bool{false, true} {
			mode, newServer := "serial", func() (*wire.PredictionServer, error) {
				return wire.NewPredictionServer(srv.Predict, nil)
			}
			if coalesced {
				mode, newServer = "coalesced", func() (*wire.PredictionServer, error) {
					return wire.NewCoalescingPredictionServer(srv.Predict, nil, wire.DispatcherOptions{
						MaxCoalescedSamples: cs.clients * cs.batch,
						MaxDelay:            time.Millisecond,
					})
				}
			}
			b.Run(fmt.Sprintf("%s/clients=%d/batch=%d", mode, cs.clients, cs.batch), func(b *testing.B) {
				ps, err := newServer()
				if err != nil {
					b.Fatal(err)
				}
				l, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					b.Fatal(err)
				}
				ctx, cancel := context.WithCancel(context.Background())
				served := make(chan error, 1)
				go func() { served <- ps.Serve(ctx, l) }()
				conns := make([]net.Conn, cs.clients)
				for c := range conns {
					if conns[c], err = net.Dial("tcp", l.Addr().String()); err != nil {
						b.Fatal(err)
					}
				}
				defer func() {
					for _, conn := range conns {
						_ = conn.Close()
					}
					cancel()
					<-served
				}()

				b.ResetTimer()
				var wg sync.WaitGroup
				errs := make([]error, cs.clients)
				for c := 0; c < cs.clients; c++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for i := 0; i < b.N; i++ {
							preds, err := wire.RequestPrediction(conns[c], batches[c])
							if err == nil && len(preds) != cs.batch {
								err = fmt.Errorf("%d predictions for %d samples", len(preds), cs.batch)
							}
							if err != nil {
								errs[c] = fmt.Errorf("request %d: %w", i, err)
								return
							}
						}
					}()
				}
				wg.Wait()
				b.StopTimer()
				for _, err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
				samples := float64(b.N) * float64(cs.clients*cs.batch)
				b.ReportMetric(samples/b.Elapsed().Seconds(), "samples/sec")
				if st := ps.Stats(); st.Evals > 0 {
					b.ReportMetric(float64(st.Samples)/float64(st.Evals), "samples/eval")
				}
			})
		}
	}
}
