package service

import (
	"context"
	"math"
	"net"
	"testing"
	"time"

	"cryptonn/internal/authority"
	"cryptonn/internal/core"
	"cryptonn/internal/fixedpoint"
	"cryptonn/internal/group"
	"cryptonn/internal/nn"
	"cryptonn/internal/tensor"
	"cryptonn/internal/wire"
)

// snapToCodec clamps the live model's first-layer weights to ±MaxWeight
// and rounds them onto the codec grid, so the plaintext reference model
// ranks labels with exactly the values the fixed-point secure scorer
// sees. tinyBatch-style inputs (multiples of 0.1) are exact at the
// two-decimal default codec, so after snapping the two heads agree
// element for element, ties included (both break ties by lower index).
func snapToCodec(t *testing.T, m *nn.Model, maxWeight float64) *nn.DenseLayer {
	t.Helper()
	layer0, ok := m.Layers[0].(*nn.DenseLayer)
	if !ok {
		t.Fatalf("first layer is %T, want *nn.DenseLayer", m.Layers[0])
	}
	for i, v := range layer0.W.Data {
		v = math.Max(-maxWeight, math.Min(maxWeight, v))
		layer0.W.Data[i] = math.Round(v*100) / 100
	}
	for _, b := range layer0.B.Data {
		if b != 0 {
			t.Fatalf("linear model carries nonzero bias %v; Config.Linear must train bias-free", b)
		}
	}
	return layer0
}

// sparseTinyBatch builds a mostly-zero (features × n) prediction matrix
// with codec-exact values; column j has support size j+1.
func sparseTinyBatch(features, n int) *tensor.Dense {
	x := tensor.NewDense(features, n)
	for j := 0; j < n; j++ {
		for s := 0; s <= j; s++ {
			i := (s*5 + j) % features
			x.Set(i, j, float64((s+j*3)%9+1)/10)
		}
	}
	return x
}

// TestSparseTopKOverWire trains a linear server in process, serves it
// over loopback with support-hiding padding enabled, and checks that a
// sparse client's top-k answers match the plaintext Model.PredictTopK
// ranking and the exact fixed-point logits — the end-to-end contract of
// the sparse serving path.
func TestSparseTopKOverWire(t *testing.T) {
	auth, err := authority.New(group.TestParams(), authority.AllowAll())
	if err != nil {
		t.Fatal(err)
	}
	const (
		features = 8
		classes  = 5
		k        = 3
	)
	srv, err := New(auth, Config{
		Features:      features,
		Classes:       classes,
		Linear:        true,
		Epochs:        2,
		Parallelism:   1,
		Seed:          33,
		SparseBuckets: []int{2, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	ceng, err := newClientEngine(auth)
	if err != nil {
		t.Fatal(err)
	}
	client, err := core.NewClient(ceng, fixedpoint.Default(), nil)
	if err != nil {
		t.Fatal(err)
	}
	x, y := tinyBatch(features, classes, 6)
	trainEnc, err := client.EncryptBatch(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Train(context.Background(), []*core.EncryptedBatch{trainEnc}); err != nil {
		t.Fatal(err)
	}
	// Snap before the first top-k request: buildTopKServing encodes the
	// weights lazily, so the snapped values are what it will serve.
	layer0 := snapToCodec(t, srv.Model(), srv.cfg.MaxWeight)

	px := sparseTinyBatch(features, 4)
	want, err := srv.Model().PredictTopK(px, k)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := client.EncryptSparseBatch(px, classes)
	if err != nil {
		t.Fatal(err)
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	served := make(chan error, 1)
	go func() { served <- srv.ServePredictions(ctx, l) }()

	cc, err := wire.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	hits, err := cc.PredictTopK(ctx, sp, k, time.Minute)
	if err != nil {
		t.Fatalf("PredictTopK over wire: %v", err)
	}
	if err := cc.Close(); err != nil {
		t.Fatal(err)
	}

	if len(hits) != px.Cols {
		t.Fatalf("got %d hit lists, want %d", len(hits), px.Cols)
	}
	codec := fixedpoint.Default()
	logit := func(label, j int) float64 {
		var acc float64
		for i := 0; i < features; i++ {
			acc += layer0.W.At(label, i) * px.At(i, j)
		}
		return acc
	}
	for j := range hits {
		if len(hits[j]) != k {
			t.Fatalf("sample %d: %d hits, want %d", j, len(hits[j]), k)
		}
		for r, h := range hits[j] {
			if h.Index != want[j][r] {
				t.Errorf("sample %d rank %d: wire label %d, plaintext label %d", j, r, h.Index, want[j][r])
			}
			if r > 0 && h.Value > hits[j][r-1].Value {
				t.Errorf("sample %d: values not descending at rank %d", j, r)
			}
			got := codec.DecodeProduct(h.Value)
			if ref := logit(h.Index, j); math.Abs(got-ref) > 1e-9 {
				t.Errorf("sample %d label %d: decoded logit %v, plaintext %v", j, h.Index, got, ref)
			}
		}
	}

	// In-process PredictTopK must agree with the wire path exactly.
	direct, err := srv.PredictTopK(sp, k)
	if err != nil {
		t.Fatal(err)
	}
	for j := range direct {
		for r := range direct[j] {
			if direct[j][r] != hits[j][r] {
				t.Errorf("sample %d rank %d: in-process %+v, wire %+v", j, r, direct[j][r], hits[j][r])
			}
		}
	}

	// The padding policy ran: supports of size 1..4 against buckets
	// {2,4} widen at least the size-1 and size-3 supports.
	if st := srv.engine.SparseStats(); st.PaddedSupports == 0 || st.PadCoords == 0 {
		t.Errorf("padding counters not advanced: %+v", st)
	}

	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Errorf("ServePredictions: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ServePredictions did not stop after cancellation")
	}
}

// TestTopKRequiresLinearModel pins the failure mode for non-linear
// servers: the in-process call errors, and over the wire the request
// fails per-request while dense prediction on the same connection keeps
// working.
func TestTopKRequiresLinearModel(t *testing.T) {
	auth, err := authority.New(group.TestParams(), authority.AllowAll())
	if err != nil {
		t.Fatal(err)
	}
	const (
		features = 6
		classes  = 3
	)
	srv, err := New(auth, Config{
		Features:    features,
		Classes:     classes,
		Hidden:      []int{4},
		Epochs:      1,
		Parallelism: 1,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	ceng, err := newClientEngine(auth)
	if err != nil {
		t.Fatal(err)
	}
	client, err := core.NewClient(ceng, fixedpoint.Default(), nil)
	if err != nil {
		t.Fatal(err)
	}
	x, y := tinyBatch(features, classes, 4)
	trainEnc, err := client.EncryptBatch(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Train(context.Background(), []*core.EncryptedBatch{trainEnc}); err != nil {
		t.Fatal(err)
	}

	sp, err := client.EncryptSparseBatch(sparseTinyBatch(features, 2), classes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.PredictTopK(sp, 2); err == nil {
		t.Fatal("PredictTopK on a hidden-layer model did not fail")
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	served := make(chan error, 1)
	go func() { served <- srv.ServePredictions(ctx, l) }()

	cc, err := wire.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cc.PredictTopK(ctx, sp, 2, time.Minute); err == nil {
		t.Error("top-k request against a hidden-layer server did not fail")
	}
	// Dense prediction still works on the same connection.
	px, py := tinyBatch(features, classes, 2)
	predEnc, err := client.EncryptBatch(px, py)
	if err != nil {
		t.Fatal(err)
	}
	preds, err := cc.Predict(ctx, predEnc, time.Minute)
	if err != nil {
		t.Fatalf("dense Predict after failed top-k: %v", err)
	}
	if len(preds) != px.Cols {
		t.Fatalf("got %d predictions, want %d", len(preds), px.Cols)
	}
	if err := cc.Close(); err != nil {
		t.Fatal(err)
	}

	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Errorf("ServePredictions: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ServePredictions did not stop after cancellation")
	}
}
