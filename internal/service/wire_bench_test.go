package service

// BenchmarkServeWire pins the wire-codec throughput story at connection
// scale: the same in-process authority, model, and pre-encrypted batches
// are served through the coalescing dispatcher over loopback TCP, once
// per codec (legacy gob vs the binary hot-path codec) at each
// connection count. Every connection is a real ClientConn issuing
// back-to-back prediction requests, exactly like cmd/cryptonn-loadgen,
// so the measured difference is pure wire cost: gob re-sends type
// descriptors and round-trips every group element through big.Int
// reflection on each frame, the binary codec slices fixed-width slabs.
//
// The model is deliberately tiny (16 features, one 4-unit hidden
// layer): with a realistic model the coalesced homomorphic evaluation
// dominates the wall clock and hides the codec difference entirely —
// this benchmark isolates the wire, the eval cost has its own
// benchmarks (BenchmarkServeCoalesced, securemat).
//
// The samples/sec metric is the headline number; BENCH_pr7.json commits
// the curve and cmd/benchdiff gates CI against it. At conns=1024 this
// doubles as the "thousands of concurrent clients" acceptance point —
// the fd budget is ~2 per connection, so `ulimit -n` must exceed ~2100
// (the CI runners and the dev image both do).

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"cryptonn/internal/authority"
	"cryptonn/internal/core"
	"cryptonn/internal/group"
	"cryptonn/internal/securemat"
	"cryptonn/internal/wire"
)

func BenchmarkServeWire(b *testing.B) {
	const (
		features  = 16
		classes   = 10
		batchPool = 8
	)
	auth, err := authority.New(group.TestParams(), authority.AllowAll())
	if err != nil {
		b.Fatal(err)
	}
	srv, err := New(auth, Config{
		Features:    features,
		Classes:     classes,
		Hidden:      []int{4},
		Parallelism: 1,
		Seed:        11,
	})
	if err != nil {
		b.Fatal(err)
	}
	ceng, err := securemat.NewEngine(auth, securemat.EngineOptions{})
	if err != nil {
		b.Fatal(err)
	}
	// Warm-up builds the cached prediction trainer outside the timing.
	if _, err := srv.Predict(benchBatch(b, ceng, features, classes, 1, 99)); err != nil {
		b.Fatal(err)
	}
	// A fixed pool of single-sample batches shared read-only across
	// connections — encryption stays out of the measurement and out of
	// the setup time even at a thousand connections.
	batches := make([]*core.EncryptedBatch, batchPool)
	for c := range batches {
		batches[c] = benchBatch(b, ceng, features, classes, 1, int64(c))
	}

	for _, conns := range []int{16, 256, 1024} {
		for _, codec := range []wire.Codec{wire.CodecGob, wire.CodecBinary} {
			b.Run(fmt.Sprintf("codec=%s/conns=%d", codec, conns), func(b *testing.B) {
				ps, err := wire.NewCoalescingPredictionServer(srv.Predict, nil, wire.DispatcherOptions{
					MaxCoalescedSamples: 256,
					MaxDelay:            time.Millisecond,
					MaxQueue:            2 * conns,
				})
				if err != nil {
					b.Fatal(err)
				}
				addr, stop := serveBench(b, ps)
				defer stop()
				ccs := make([]*wire.ClientConn, conns)
				for c := range ccs {
					if ccs[c], err = wire.DialCodec(addr, codec); err != nil {
						b.Fatalf("conn %d: %v", c, err)
					}
					defer ccs[c].Close()
				}

				b.ResetTimer()
				var wg sync.WaitGroup
				errs := make([]error, conns)
				for c := 0; c < conns; c++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						enc := batches[c%len(batches)]
						for i := 0; i < b.N; i++ {
							backoff := time.Millisecond
							for {
								preds, err := ccs[c].Predict(nil, enc, 0)
								if errors.Is(err, wire.ErrBusy) {
									time.Sleep(backoff)
									backoff = min(2*backoff, 50*time.Millisecond)
									continue
								}
								if err == nil && len(preds) != enc.N {
									err = fmt.Errorf("%d predictions for %d samples", len(preds), enc.N)
								}
								if err != nil {
									errs[c] = fmt.Errorf("request %d: %w", i, err)
									return
								}
								break
							}
						}
					}()
				}
				wg.Wait()
				b.StopTimer()
				for _, err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
				samples := float64(b.N) * float64(conns)
				b.ReportMetric(samples/b.Elapsed().Seconds(), "samples/sec")
				if st := ps.Stats(); st.Evals > 0 {
					b.ReportMetric(float64(st.Samples)/float64(st.Evals), "samples/eval")
				}
			})
		}
	}
}

// BenchmarkServeWirePipeline is BenchmarkServeWire's multiplexing
// sibling: a fixed, small connection count with depth concurrent
// requests in flight per connection, sweeping depth 1/8/32. The binary
// codec demultiplexes replies by request id, so one TCP connection can
// carry a whole client process's concurrency — this pins how much of
// the conns=N throughput a multiplexing client recovers without paying
// N sockets. Gob is excluded by construction: its legacy protocol
// serializes to one outstanding request per connection, so depth>1
// would only measure lock convoying.
func BenchmarkServeWirePipeline(b *testing.B) {
	const (
		features  = 16
		classes   = 10
		batchPool = 8
		conns     = 16
	)
	auth, err := authority.New(group.TestParams(), authority.AllowAll())
	if err != nil {
		b.Fatal(err)
	}
	srv, err := New(auth, Config{
		Features:    features,
		Classes:     classes,
		Hidden:      []int{4},
		Parallelism: 1,
		Seed:        11,
	})
	if err != nil {
		b.Fatal(err)
	}
	ceng, err := securemat.NewEngine(auth, securemat.EngineOptions{})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := srv.Predict(benchBatch(b, ceng, features, classes, 1, 99)); err != nil {
		b.Fatal(err)
	}
	batches := make([]*core.EncryptedBatch, batchPool)
	for c := range batches {
		batches[c] = benchBatch(b, ceng, features, classes, 1, int64(c))
	}

	for _, depth := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			ps, err := wire.NewCoalescingPredictionServer(srv.Predict, nil, wire.DispatcherOptions{
				MaxCoalescedSamples: 256,
				MaxDelay:            time.Millisecond,
				MaxQueue:            2 * conns * depth,
			})
			if err != nil {
				b.Fatal(err)
			}
			addr, stop := serveBench(b, ps)
			defer stop()
			ccs := make([]*wire.ClientConn, conns)
			for c := range ccs {
				if ccs[c], err = wire.DialCodec(addr, wire.CodecBinary); err != nil {
					b.Fatalf("conn %d: %v", c, err)
				}
				defer ccs[c].Close()
			}

			b.ResetTimer()
			var wg sync.WaitGroup
			errs := make([]error, conns*depth)
			for c := 0; c < conns; c++ {
				for d := 0; d < depth; d++ {
					wg.Add(1)
					go func(w int, cc *wire.ClientConn) {
						defer wg.Done()
						enc := batches[w%len(batches)]
						for i := 0; i < b.N; i++ {
							backoff := time.Millisecond
							for {
								preds, err := cc.Predict(nil, enc, 0)
								if errors.Is(err, wire.ErrBusy) {
									time.Sleep(backoff)
									backoff = min(2*backoff, 50*time.Millisecond)
									continue
								}
								if err == nil && len(preds) != enc.N {
									err = fmt.Errorf("%d predictions for %d samples", len(preds), enc.N)
								}
								if err != nil {
									errs[w] = fmt.Errorf("request %d: %w", i, err)
									return
								}
								break
							}
						}
					}(c*depth+d, ccs[c])
				}
			}
			wg.Wait()
			b.StopTimer()
			for _, err := range errs {
				if err != nil {
					b.Fatal(err)
				}
			}
			samples := float64(b.N) * float64(conns) * float64(depth)
			b.ReportMetric(samples/b.Elapsed().Seconds(), "samples/sec")
			if st := ps.Stats(); st.Evals > 0 {
				b.ReportMetric(float64(st.Samples)/float64(st.Evals), "samples/eval")
			}
		})
	}
}

// serveBench boots ps on a loopback listener and returns its address and
// a stop function.
func serveBench(b *testing.B, ps *wire.PredictionServer) (string, func()) {
	b.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	served := make(chan struct{})
	go func() {
		defer close(served)
		_ = ps.Serve(context.Background(), l)
	}()
	return l.Addr().String(), func() {
		_ = ps.Close()
		<-served
	}
}
