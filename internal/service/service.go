package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"

	"math/rand"
	"net"
	"sync"
	"time"

	"cryptonn/internal/core"
	"cryptonn/internal/dlog"
	"cryptonn/internal/fixedpoint"
	"cryptonn/internal/nn"
	"cryptonn/internal/securemat"
	"cryptonn/internal/wire"
)

// Config parameterizes a training service run.
type Config struct {
	// Features is the input feature count the model expects.
	Features int
	// Classes is the output class count.
	Classes int
	// Hidden lists the hidden-layer widths of the MLP (default: one
	// layer of 32 units).
	Hidden []int
	// Linear selects a bias-free single-layer (linear softmax) model;
	// Hidden must be empty. This is the model shape the coordinate-form
	// top-k serving path requires: secure scoring computes pure inner
	// products ⟨W_i, x⟩, so the served model carries no hidden layers and
	// no bias (the bias accumulated during training is dropped when
	// training completes — softmax is monotone, so W·X ranking is the
	// model's ranking).
	Linear bool
	// SparseBuckets, when non-empty, enables the support-hiding padding
	// policy for coordinate-form key requests: supports are widened with
	// zero-valued coordinates to the smallest listed bucket before key
	// derivation, so the authority observes bucketed nnz, never exact
	// ones (see securemat.EngineOptions.SparseBuckets).
	SparseBuckets []int
	// Epochs is the number of passes over the collected batches
	// (default 2, the paper's Table III setting).
	Epochs int
	// LR is the SGD learning rate (default 0.3).
	LR float64
	// Momentum is the SGD momentum term (default 0).
	Momentum float64
	// Expect is the number of client submissions to wait for before
	// training starts (default 1).
	Expect int
	// Parallelism is the secure-decryption worker count; 0 selects the
	// package default, negatives select NumCPU.
	Parallelism int
	// Seed drives weight initialisation.
	Seed int64
	// MaxWeight clamps weight magnitudes entering the secure encodings
	// (default 4; see core.Config).
	MaxWeight float64
	// ComputeLoss enables the secure cross-entropy evaluation.
	ComputeLoss bool
	// Codec is the fixed-point codec; nil selects the paper's
	// two-decimal default. It must match the clients'.
	Codec *fixedpoint.Codec
	// Serving tunes the prediction-serving throughput engine
	// (cross-client batch coalescing; see wire.Dispatcher). The zero
	// value selects the wire package defaults.
	Serving wire.DispatcherOptions
	// Logger receives progress lines; nil discards them.
	Logger *log.Logger
}

func (c *Config) fillDefaults() error {
	if c.Features <= 0 {
		return fmt.Errorf("service: features must be positive, got %d", c.Features)
	}
	if c.Classes <= 0 {
		return fmt.Errorf("service: classes must be positive, got %d", c.Classes)
	}
	if c.Linear && len(c.Hidden) > 0 {
		return fmt.Errorf("service: linear model cannot have hidden layers, got %v", c.Hidden)
	}
	if len(c.Hidden) == 0 && !c.Linear {
		c.Hidden = []int{32}
	}
	if c.Epochs == 0 {
		c.Epochs = 2
	}
	if c.Epochs < 0 {
		return fmt.Errorf("service: epochs must be positive, got %d", c.Epochs)
	}
	if c.LR == 0 {
		c.LR = 0.3
	}
	if c.Expect == 0 {
		c.Expect = 1
	}
	if c.Expect < 0 {
		return fmt.Errorf("service: expect must be positive, got %d", c.Expect)
	}
	if c.MaxWeight == 0 {
		c.MaxWeight = 4
	}
	if c.Codec == nil {
		c.Codec = fixedpoint.Default()
	}
	if c.Logger == nil {
		c.Logger = log.New(io.Discard, "", 0)
	}
	return nil
}

// Report summarizes a completed training run.
type Report struct {
	// Batches is the number of encrypted batches collected.
	Batches int
	// Clients is the number of completed client submissions.
	Clients int
	// EpochLoss holds the average secure loss per epoch (NaN entries
	// when Config.ComputeLoss is false).
	EpochLoss []float64
	// CollectTime is the wall-clock time spent waiting for submissions.
	CollectTime time.Duration
	// TrainTime is the wall-clock training time.
	TrainTime time.Duration
}

// Server is the CryptoNN training service.
type Server struct {
	engine *securemat.Engine
	cfg    Config
	model  *nn.Model

	// predictMu serializes prediction evaluation: the model's plaintext
	// forward pass caches activations on the layers, so concurrent
	// Predict calls (many prediction connections) must not interleave.
	// The serving path proper funnels through the coalescing dispatcher,
	// which is single-evaluator by design; this mutex covers direct
	// Predict callers. It also guards the lazily built predictTrainer.
	predictMu sync.Mutex
	predictTr *core.Trainer
	// Lazily built top-k serving state: the engine view whose solver
	// covers the serving feed-forward bound, and the clamp-encoded
	// first-layer weights it scores with.
	topkEng *securemat.Engine
	topkW   [][]int64

	// predictSrv is the live prediction server, set while
	// ServePredictions runs; PredictionMetrics exposes it for /metrics.
	srvMu      sync.Mutex
	predictSrv *wire.PredictionServer
}

// New assembles a training service around a key service (the authority
// connection, or an in-process authority in tests). The server owns one
// secure compute session for its whole lifetime: public keys are fetched
// once, and the dot-product key cache carries the trained weights' keys
// across prediction requests.
func New(keys securemat.KeyService, cfg Config) (*Server, error) {
	if keys == nil {
		return nil, errors.New("service: nil key service")
	}
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	engine, err := securemat.NewEngine(keys, securemat.EngineOptions{
		Parallelism:   cfg.Parallelism,
		SparseBuckets: cfg.SparseBuckets,
	})
	if err != nil {
		return nil, fmt.Errorf("service: building engine: %w", err)
	}
	model, err := nn.NewMLP(cfg.Features, cfg.Classes, cfg.Hidden,
		nn.SoftmaxCrossEntropy{}, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return nil, fmt.Errorf("service: building model: %w", err)
	}
	return &Server{engine: engine, cfg: cfg, model: model}, nil
}

// Model exposes the (plaintext) model; before Run completes it holds the
// initial weights.
func (s *Server) Model() *nn.Model { return s.model }

// Run collects Expect client submissions from the listener, trains, and
// reports. The listener is closed before Run returns.
func (s *Server) Run(ctx context.Context, l net.Listener) (*Report, error) {
	collector := wire.NewTrainingServer(s.cfg.Logger)
	serveCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	serveDone := make(chan error, 1)
	go func() { serveDone <- collector.Serve(serveCtx, l) }()

	s.cfg.Logger.Printf("waiting for %d client submission(s) on %s", s.cfg.Expect, l.Addr())
	collectStart := time.Now()
	if err := collector.WaitSubmissions(ctx, s.cfg.Expect); err != nil {
		cancel()
		<-serveDone
		return nil, fmt.Errorf("service: collecting submissions: %w", err)
	}
	collectTime := time.Since(collectStart)
	cancel()
	if err := <-serveDone; err != nil && !errors.Is(err, net.ErrClosed) {
		return nil, fmt.Errorf("service: submission listener: %w", err)
	}

	batches := collector.Batches()
	if len(batches) == 0 {
		return nil, errors.New("service: no encrypted batches received")
	}
	s.cfg.Logger.Printf("received %d encrypted batch(es) from %d client(s)",
		len(batches), collector.Submissions())

	report, err := s.train(ctx, batches)
	if err != nil {
		return nil, err
	}
	report.Clients = collector.Submissions()
	report.CollectTime = collectTime
	return report, nil
}

// Train runs the training loop over already-collected batches; it is the
// network-free core of Run, exported for in-process composition.
func (s *Server) Train(ctx context.Context, batches []*core.EncryptedBatch) (*Report, error) {
	return s.train(ctx, batches)
}

func (s *Server) train(ctx context.Context, batches []*core.EncryptedBatch) (*Report, error) {
	if len(batches) == 0 {
		return nil, errors.New("service: no batches to train on")
	}
	for i, b := range batches {
		if b.Features != s.cfg.Features {
			return nil, fmt.Errorf("service: batch %d has %d features, model expects %d",
				i, b.Features, s.cfg.Features)
		}
		if b.Classes != s.cfg.Classes {
			return nil, fmt.Errorf("service: batch %d has %d classes, model expects %d",
				i, b.Classes, s.cfg.Classes)
		}
	}
	trainer, err := s.newTrainer(batches)
	if err != nil {
		return nil, err
	}
	opt, err := nn.NewSGD(s.cfg.LR, s.cfg.Momentum)
	if err != nil {
		return nil, err
	}

	report := &Report{Batches: len(batches)}
	start := time.Now()
	for epoch := 1; epoch <= s.cfg.Epochs; epoch++ {
		var lossSum float64
		for i, b := range batches {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("service: training interrupted: %w", err)
			}
			res, err := trainer.TrainBatch(b, opt)
			if err != nil {
				return nil, fmt.Errorf("service: epoch %d batch %d: %w", epoch, i, err)
			}
			lossSum += res.Loss
		}
		avg := lossSum / float64(len(batches))
		report.EpochLoss = append(report.EpochLoss, avg)
		if s.cfg.ComputeLoss {
			s.cfg.Logger.Printf("epoch %d/%d: avg secure loss %.4f", epoch, s.cfg.Epochs, avg)
		} else {
			s.cfg.Logger.Printf("epoch %d/%d done", epoch, s.cfg.Epochs)
		}
	}
	report.TrainTime = time.Since(start)
	if s.cfg.Linear {
		// The top-k serving path scores with pure inner products, so a
		// linear serving model is bias-free: drop the bias the SGD steps
		// accumulated (see Config.Linear).
		layer0 := s.model.Layers[0].(*nn.DenseLayer)
		for i := range layer0.B.Data {
			layer0.B.Data[i] = 0
		}
	}
	s.cfg.Logger.Printf("training finished in %s over %d batches",
		report.TrainTime.Round(time.Millisecond), len(batches))
	return report, nil
}

// Predict runs FE-based prediction (§III-D) over an encrypted batch with
// the current model and returns arg-max predictions in the label-mapped
// space. It is safe for concurrent use (evaluations serialize on the
// server's prediction lock) and reuses one lazily built trainer whose
// discrete-log bound covers the feed-forward only — prediction never
// back-propagates, so the bound (and the shared baby-step table behind
// it) stays independent of how many samples a coalesced batch carries.
func (s *Server) Predict(enc *core.EncryptedBatch) ([]int, error) {
	s.predictMu.Lock()
	defer s.predictMu.Unlock()
	if s.predictTr == nil {
		trainer, err := s.newPredictTrainer()
		if err != nil {
			return nil, err
		}
		s.predictTr = trainer
	}
	res, err := s.predictTr.Predict(enc)
	if err != nil {
		return nil, err
	}
	return res.MaskedPreds, nil
}

// PredictTopK runs the coordinate-form serving path: score a sparse
// encrypted batch against the model's (linear) weight matrix and return
// each sample's k largest logits as descending (label, value) pairs,
// solving only those k discrete logs per sample. Values are in the
// product fixed-point domain (Config.Codec.DecodeProduct recovers
// floats). It requires Config.Linear — the secure scorer computes pure
// inner products, so hidden layers and biases have no secure counterpart
// here. Safe for concurrent use; like Predict, evaluations serialize on
// the server's prediction lock.
func (s *Server) PredictTopK(sp *core.SparseBatch, k int) ([][]dlog.TopKHit, error) {
	if sp == nil || sp.X == nil {
		return nil, errors.New("service: empty sparse batch")
	}
	if k <= 0 {
		return nil, fmt.Errorf("service: top-k count must be positive, got %d", k)
	}
	if sp.Features != s.cfg.Features {
		return nil, fmt.Errorf("service: sparse batch has %d features, model expects %d", sp.Features, s.cfg.Features)
	}
	if sp.Classes != s.cfg.Classes {
		return nil, fmt.Errorf("service: sparse batch has %d classes, model expects %d", sp.Classes, s.cfg.Classes)
	}
	if k > s.cfg.Classes {
		k = s.cfg.Classes
	}
	s.predictMu.Lock()
	defer s.predictMu.Unlock()
	if s.topkW == nil {
		if err := s.buildTopKServing(); err != nil {
			return nil, err
		}
	}
	// The logit ceiling |⟨W_i, x⟩| ≤ Σ_supp|W_i|·f holds because clients
	// encode |x| ≤ 1 at the codec factor f; it lets the descending top-k
	// scan skip the empty ladder prefix above the reachable range.
	return s.topkEng.DotTopK(sp.X, s.topkW, k, securemat.ComputeOptions{
		Parallelism:    s.cfg.Parallelism,
		InputMagnitude: s.cfg.Codec.Factor(),
	})
}

// buildTopKServing assembles the lazily built top-k serving state under
// predictMu: validates the model shape, clamp-encodes the weights (the
// exact transform the trainer applies before secure computation), and
// builds an engine view whose solver bound covers the serving
// feed-forward — ⟨W_i, x⟩ at |x| ≤ 1, |W| ≤ MaxWeight, like
// newPredictTrainer's.
func (s *Server) buildTopKServing() error {
	if !s.cfg.Linear || len(s.model.Layers) != 1 {
		return errors.New("service: top-k serving requires a linear model (Config.Linear)")
	}
	layer0, ok := s.model.Layers[0].(*nn.DenseLayer)
	if !ok {
		return errors.New("service: top-k serving requires a dense first layer")
	}
	for _, b := range layer0.B.Data {
		if b != 0 {
			return errors.New("service: top-k serving requires a bias-free model")
		}
	}
	limit := s.cfg.MaxWeight
	clamped := layer0.W.Apply(func(v float64) float64 {
		if v > limit {
			return limit
		}
		if v < -limit {
			return -limit
		}
		return v
	})
	wInt, err := s.cfg.Codec.EncodeMat(clamped.Rows2D())
	if err != nil {
		return fmt.Errorf("service: encoding serving weights: %w", err)
	}
	mpk, err := s.engine.FEIPPublic(s.cfg.Features)
	if err != nil {
		return fmt.Errorf("service: fetching public key: %w", err)
	}
	bound := core.SolverBound(s.cfg.Codec, s.cfg.Features, 1, s.cfg.MaxWeight, 1)
	solver, err := dlog.NewSolver(mpk.Params, bound)
	if err != nil {
		return fmt.Errorf("service: building dlog solver: %w", err)
	}
	s.topkEng = s.engine.WithSolver(solver)
	s.topkW = wInt
	return nil
}

// ServePredictions exposes the trained model as a prediction throughput
// engine: it answers wire.RequestPrediction calls until the context is
// cancelled, coalescing concurrent requests from any number of clients
// into shared evaluations (Config.Serving tunes the dispatcher; clients
// rejected under backpressure see the retryable wire.ErrBusy). Call it
// after Run has completed; the predictions reflect the model's current
// weights.
func (s *Server) ServePredictions(ctx context.Context, l net.Listener) error {
	opts := s.cfg.Serving
	// Top-k requests route through the same dispatcher; a non-linear
	// server answers them with a per-request error rather than refusing
	// the kind outright.
	opts.TopK = s.PredictTopK
	ps, err := wire.NewCoalescingPredictionServer(s.Predict, s.cfg.Logger, opts)
	if err != nil {
		return err
	}
	s.srvMu.Lock()
	s.predictSrv = ps
	s.srvMu.Unlock()
	s.cfg.Logger.Printf("serving predictions on %s", l.Addr())
	err = ps.Serve(ctx, l)
	if st := ps.Stats(); st.Requests > 0 {
		s.cfg.Logger.Printf("prediction serving: %d requests (%d samples) in %d evaluations (max coalesced %d), %d rejected, p50 %s p99 %s",
			st.Requests, st.Samples, st.Evals, st.MaxCoalesced, st.Rejected,
			st.P50.Round(time.Microsecond), st.P99.Round(time.Microsecond))
	}
	if errors.Is(err, net.ErrClosed) && ctx.Err() != nil {
		return nil
	}
	return err
}

// PredictionMetrics returns the live prediction server as a metrics
// source for wire.MetricsHandler. It is nil until ServePredictions has
// started; the handler skips nil sources, so callers may register it
// eagerly through this indirection.
func (s *Server) PredictionMetrics() wire.MetricsSource {
	return serverMetrics{s}
}

// EngineMetrics returns the server's secure-matrix engine as a metrics
// source: sparsity counters (columns routed compact vs promoted, skipped
// coordinates, top-k dlog accounting) and dot-key cache hit rates.
func (s *Server) EngineMetrics() wire.MetricsSource {
	return s.engine
}

// serverMetrics defers the predictSrv lookup to scrape time, so a
// /metrics endpoint can be mounted before serving starts.
type serverMetrics struct{ s *Server }

func (m serverMetrics) WriteMetrics(w io.Writer) {
	m.s.srvMu.Lock()
	ps := m.s.predictSrv
	m.s.srvMu.Unlock()
	if ps != nil {
		ps.WriteMetrics(w)
	}
}

// newPredictTrainer builds the serving trainer: like newTrainer, but the
// discrete-log bound covers only the secure feed-forward (⟨W_i, x_j⟩ at
// |x| ≤ 1, |W| ≤ MaxWeight), not the batch-size-dependent gradient terms
// — so the bound does not grow with coalesced batch width.
func (s *Server) newPredictTrainer() (*core.Trainer, error) {
	mpk, err := s.engine.FEIPPublic(s.cfg.Features)
	if err != nil {
		return nil, fmt.Errorf("service: fetching public key: %w", err)
	}
	bound := core.SolverBound(s.cfg.Codec, s.cfg.Features, 1, s.cfg.MaxWeight, 1)
	solver, err := dlog.NewSolver(mpk.Params, bound)
	if err != nil {
		return nil, fmt.Errorf("service: building dlog solver: %w", err)
	}
	return core.NewTrainer(s.model, s.engine.WithSolver(solver), core.Config{
		Codec:       s.cfg.Codec,
		Parallelism: s.cfg.Parallelism,
		MaxWeight:   s.cfg.MaxWeight,
	})
}

// newTrainer builds the training-loop core.Trainer over a view of the
// server's engine with a discrete-log bound sized for the observed batch
// sizes (gradient and loss terms included; the serving path uses the
// tighter newPredictTrainer instead). The view shares the session caches
// with every other trainer the server builds.
func (s *Server) newTrainer(batches []*core.EncryptedBatch) (*core.Trainer, error) {
	maxN := 0
	for _, b := range batches {
		maxN = max(maxN, b.N)
	}
	mpk, err := s.engine.FEIPPublic(s.cfg.Features)
	if err != nil {
		return nil, fmt.Errorf("service: fetching public key: %w", err)
	}
	bound := core.SolverBound(s.cfg.Codec, s.cfg.Features, 1, s.cfg.MaxWeight, 1)
	bound = max(bound, core.SolverBound(s.cfg.Codec, maxN, 1, s.cfg.MaxWeight, 100))
	if s.cfg.ComputeLoss {
		bound = max(bound, core.SolverBound(s.cfg.Codec, 1, 1, 25, 1))
	}
	solver, err := dlog.NewSolver(mpk.Params, bound)
	if err != nil {
		return nil, fmt.Errorf("service: building dlog solver: %w", err)
	}
	return core.NewTrainer(s.model, s.engine.WithSolver(solver), core.Config{
		Codec:       s.cfg.Codec,
		Parallelism: s.cfg.Parallelism,
		MaxWeight:   s.cfg.MaxWeight,
		ComputeLoss: s.cfg.ComputeLoss,
	})
}
