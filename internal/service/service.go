// Package service implements the training server of Fig. 1 as a reusable,
// testable component: it collects encrypted batches from any number of
// distributed clients over TCP, then trains a neural network on them
// through the CryptoNN framework (Algorithm 2), requesting
// function-derived keys from the authority as training proceeds.
//
// The package composes internal/wire (transport), internal/core (the
// secure training loop) and internal/nn (the model) into one lifecycle:
//
//	srv, _ := service.New(keys, service.Config{Features: 784, Classes: 10, Expect: 2})
//	report, _ := srv.Run(ctx, listener)
//
// Run blocks until the expected number of client submissions arrives,
// trains for the configured number of epochs, and returns a Report. The
// trained parameters stay on the server — they are plaintext by the
// paper's design; only the training data and labels are ever encrypted.
package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"

	"math/rand"
	"net"
	"time"

	"cryptonn/internal/core"
	"cryptonn/internal/dlog"
	"cryptonn/internal/fixedpoint"
	"cryptonn/internal/nn"
	"cryptonn/internal/securemat"
	"cryptonn/internal/wire"
)

// Config parameterizes a training service run.
type Config struct {
	// Features is the input feature count the model expects.
	Features int
	// Classes is the output class count.
	Classes int
	// Hidden lists the hidden-layer widths of the MLP (default: one
	// layer of 32 units).
	Hidden []int
	// Epochs is the number of passes over the collected batches
	// (default 2, the paper's Table III setting).
	Epochs int
	// LR is the SGD learning rate (default 0.3).
	LR float64
	// Momentum is the SGD momentum term (default 0).
	Momentum float64
	// Expect is the number of client submissions to wait for before
	// training starts (default 1).
	Expect int
	// Parallelism is the secure-decryption worker count; 0 selects the
	// package default, negatives select NumCPU.
	Parallelism int
	// Seed drives weight initialisation.
	Seed int64
	// MaxWeight clamps weight magnitudes entering the secure encodings
	// (default 4; see core.Config).
	MaxWeight float64
	// ComputeLoss enables the secure cross-entropy evaluation.
	ComputeLoss bool
	// Codec is the fixed-point codec; nil selects the paper's
	// two-decimal default. It must match the clients'.
	Codec *fixedpoint.Codec
	// Logger receives progress lines; nil discards them.
	Logger *log.Logger
}

func (c *Config) fillDefaults() error {
	if c.Features <= 0 {
		return fmt.Errorf("service: features must be positive, got %d", c.Features)
	}
	if c.Classes <= 0 {
		return fmt.Errorf("service: classes must be positive, got %d", c.Classes)
	}
	if len(c.Hidden) == 0 {
		c.Hidden = []int{32}
	}
	if c.Epochs == 0 {
		c.Epochs = 2
	}
	if c.Epochs < 0 {
		return fmt.Errorf("service: epochs must be positive, got %d", c.Epochs)
	}
	if c.LR == 0 {
		c.LR = 0.3
	}
	if c.Expect == 0 {
		c.Expect = 1
	}
	if c.Expect < 0 {
		return fmt.Errorf("service: expect must be positive, got %d", c.Expect)
	}
	if c.MaxWeight == 0 {
		c.MaxWeight = 4
	}
	if c.Codec == nil {
		c.Codec = fixedpoint.Default()
	}
	if c.Logger == nil {
		c.Logger = log.New(io.Discard, "", 0)
	}
	return nil
}

// Report summarizes a completed training run.
type Report struct {
	// Batches is the number of encrypted batches collected.
	Batches int
	// Clients is the number of completed client submissions.
	Clients int
	// EpochLoss holds the average secure loss per epoch (NaN entries
	// when Config.ComputeLoss is false).
	EpochLoss []float64
	// CollectTime is the wall-clock time spent waiting for submissions.
	CollectTime time.Duration
	// TrainTime is the wall-clock training time.
	TrainTime time.Duration
}

// Server is the CryptoNN training service.
type Server struct {
	engine *securemat.Engine
	cfg    Config
	model  *nn.Model
}

// New assembles a training service around a key service (the authority
// connection, or an in-process authority in tests). The server owns one
// secure compute session for its whole lifetime: public keys are fetched
// once, and the dot-product key cache carries the trained weights' keys
// across prediction requests.
func New(keys securemat.KeyService, cfg Config) (*Server, error) {
	if keys == nil {
		return nil, errors.New("service: nil key service")
	}
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	engine, err := securemat.NewEngine(keys, securemat.EngineOptions{Parallelism: cfg.Parallelism})
	if err != nil {
		return nil, fmt.Errorf("service: building engine: %w", err)
	}
	model, err := nn.NewMLP(cfg.Features, cfg.Classes, cfg.Hidden,
		nn.SoftmaxCrossEntropy{}, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return nil, fmt.Errorf("service: building model: %w", err)
	}
	return &Server{engine: engine, cfg: cfg, model: model}, nil
}

// Model exposes the (plaintext) model; before Run completes it holds the
// initial weights.
func (s *Server) Model() *nn.Model { return s.model }

// Run collects Expect client submissions from the listener, trains, and
// reports. The listener is closed before Run returns.
func (s *Server) Run(ctx context.Context, l net.Listener) (*Report, error) {
	collector := wire.NewTrainingServer(s.cfg.Logger)
	serveCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	serveDone := make(chan error, 1)
	go func() { serveDone <- collector.Serve(serveCtx, l) }()

	s.cfg.Logger.Printf("waiting for %d client submission(s) on %s", s.cfg.Expect, l.Addr())
	collectStart := time.Now()
	if err := collector.WaitSubmissions(ctx, s.cfg.Expect); err != nil {
		cancel()
		<-serveDone
		return nil, fmt.Errorf("service: collecting submissions: %w", err)
	}
	collectTime := time.Since(collectStart)
	cancel()
	if err := <-serveDone; err != nil && !errors.Is(err, net.ErrClosed) {
		return nil, fmt.Errorf("service: submission listener: %w", err)
	}

	batches := collector.Batches()
	if len(batches) == 0 {
		return nil, errors.New("service: no encrypted batches received")
	}
	s.cfg.Logger.Printf("received %d encrypted batch(es) from %d client(s)",
		len(batches), collector.Submissions())

	report, err := s.train(ctx, batches)
	if err != nil {
		return nil, err
	}
	report.Clients = collector.Submissions()
	report.CollectTime = collectTime
	return report, nil
}

// Train runs the training loop over already-collected batches; it is the
// network-free core of Run, exported for in-process composition.
func (s *Server) Train(ctx context.Context, batches []*core.EncryptedBatch) (*Report, error) {
	return s.train(ctx, batches)
}

func (s *Server) train(ctx context.Context, batches []*core.EncryptedBatch) (*Report, error) {
	if len(batches) == 0 {
		return nil, errors.New("service: no batches to train on")
	}
	for i, b := range batches {
		if b.Features != s.cfg.Features {
			return nil, fmt.Errorf("service: batch %d has %d features, model expects %d",
				i, b.Features, s.cfg.Features)
		}
		if b.Classes != s.cfg.Classes {
			return nil, fmt.Errorf("service: batch %d has %d classes, model expects %d",
				i, b.Classes, s.cfg.Classes)
		}
	}
	trainer, err := s.newTrainer(batches)
	if err != nil {
		return nil, err
	}
	opt, err := nn.NewSGD(s.cfg.LR, s.cfg.Momentum)
	if err != nil {
		return nil, err
	}

	report := &Report{Batches: len(batches)}
	start := time.Now()
	for epoch := 1; epoch <= s.cfg.Epochs; epoch++ {
		var lossSum float64
		for i, b := range batches {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("service: training interrupted: %w", err)
			}
			res, err := trainer.TrainBatch(b, opt)
			if err != nil {
				return nil, fmt.Errorf("service: epoch %d batch %d: %w", epoch, i, err)
			}
			lossSum += res.Loss
		}
		avg := lossSum / float64(len(batches))
		report.EpochLoss = append(report.EpochLoss, avg)
		if s.cfg.ComputeLoss {
			s.cfg.Logger.Printf("epoch %d/%d: avg secure loss %.4f", epoch, s.cfg.Epochs, avg)
		} else {
			s.cfg.Logger.Printf("epoch %d/%d done", epoch, s.cfg.Epochs)
		}
	}
	report.TrainTime = time.Since(start)
	s.cfg.Logger.Printf("training finished in %s over %d batches",
		report.TrainTime.Round(time.Millisecond), len(batches))
	return report, nil
}

// Predict runs FE-based prediction (§III-D) over an encrypted batch with
// the current model and returns arg-max predictions in the label-mapped
// space.
func (s *Server) Predict(enc *core.EncryptedBatch) ([]int, error) {
	trainer, err := s.newTrainer([]*core.EncryptedBatch{enc})
	if err != nil {
		return nil, err
	}
	res, err := trainer.Predict(enc)
	if err != nil {
		return nil, err
	}
	return res.MaskedPreds, nil
}

// ServePredictions exposes the trained model as a prediction service: it
// answers wire.RequestPrediction calls until the context is cancelled.
// Call it after Run has completed; the predictions reflect the model's
// current weights.
func (s *Server) ServePredictions(ctx context.Context, l net.Listener) error {
	ps, err := wire.NewPredictionServer(s.Predict, s.cfg.Logger)
	if err != nil {
		return err
	}
	s.cfg.Logger.Printf("serving predictions on %s", l.Addr())
	err = ps.Serve(ctx, l)
	if errors.Is(err, net.ErrClosed) && ctx.Err() != nil {
		return nil
	}
	return err
}

// newTrainer builds a core.Trainer over a view of the server's engine with
// a discrete-log bound sized for the observed batch sizes. The view shares
// the session caches, so repeated trainers (every Predict call) re-fetch
// nothing.
func (s *Server) newTrainer(batches []*core.EncryptedBatch) (*core.Trainer, error) {
	maxN := 0
	for _, b := range batches {
		maxN = max(maxN, b.N)
	}
	mpk, err := s.engine.FEIPPublic(s.cfg.Features)
	if err != nil {
		return nil, fmt.Errorf("service: fetching public key: %w", err)
	}
	bound := core.SolverBound(s.cfg.Codec, s.cfg.Features, 1, s.cfg.MaxWeight, 1)
	bound = max(bound, core.SolverBound(s.cfg.Codec, maxN, 1, s.cfg.MaxWeight, 100))
	if s.cfg.ComputeLoss {
		bound = max(bound, core.SolverBound(s.cfg.Codec, 1, 1, 25, 1))
	}
	solver, err := dlog.NewSolver(mpk.Params, bound)
	if err != nil {
		return nil, fmt.Errorf("service: building dlog solver: %w", err)
	}
	return core.NewTrainer(s.model, s.engine.WithSolver(solver), core.Config{
		Codec:       s.cfg.Codec,
		Parallelism: s.cfg.Parallelism,
		MaxWeight:   s.cfg.MaxWeight,
		ComputeLoss: s.cfg.ComputeLoss,
	})
}
