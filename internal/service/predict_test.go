package service

import (
	"context"
	"net"
	"testing"
	"time"

	"cryptonn/internal/authority"
	"cryptonn/internal/core"
	"cryptonn/internal/fixedpoint"
	"cryptonn/internal/group"
	"cryptonn/internal/wire"
)

// TestPredictionOverWire trains in process, then serves FE-based
// predictions over loopback TCP and checks they match in-process
// Predict, including the label-mapped setting.
func TestPredictionOverWire(t *testing.T) {
	auth, err := authority.New(group.TestParams(), authority.AllowAll())
	if err != nil {
		t.Fatal(err)
	}
	const (
		features = 6
		classes  = 3
	)
	srv, err := New(auth, Config{
		Features:    features,
		Classes:     classes,
		Hidden:      []int{5},
		Epochs:      2,
		Parallelism: 1,
		Seed:        21,
	})
	if err != nil {
		t.Fatal(err)
	}
	labels, err := core.NewLabelMap(classes, []byte("clinic-key"))
	if err != nil {
		t.Fatal(err)
	}
	ceng, err := newClientEngine(auth)
	if err != nil {
		t.Fatal(err)
	}
	client, err := core.NewClient(ceng, fixedpoint.Default(), labels)
	if err != nil {
		t.Fatal(err)
	}
	x, y := tinyBatch(features, classes, 6)
	trainEnc, err := client.EncryptBatch(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Train(context.Background(), []*core.EncryptedBatch{trainEnc}); err != nil {
		t.Fatal(err)
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	served := make(chan error, 1)
	go func() { served <- srv.ServePredictions(ctx, l) }()

	// A fresh encrypted batch for prediction.
	px, py := tinyBatch(features, classes, 4)
	predEnc, err := client.EncryptBatch(px, py)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	got, err := wire.RequestPrediction(conn, predEnc)
	if err != nil {
		t.Fatalf("RequestPrediction: %v", err)
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}

	want, err := srv.Predict(predEnc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d predictions, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("prediction %d: wire %d, in-process %d", i, got[i], want[i])
		}
		// The wire carries masked classes; inverting with the client's
		// label map must give a valid class.
		cls, err := labels.Invert(got[i])
		if err != nil {
			t.Fatal(err)
		}
		if cls < 0 || cls >= classes {
			t.Errorf("prediction %d inverts to out-of-range class %d", i, cls)
		}
	}

	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Errorf("ServePredictions: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ServePredictions did not stop after cancellation")
	}
}

// TestPredictionServerRejectsGarbage exercises the prediction-server
// failure paths over a live socket.
func TestPredictionServerRejectsGarbage(t *testing.T) {
	auth, err := authority.New(group.TestParams(), authority.AllowAll())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(auth, Config{Features: 4, Classes: 2, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.ServePredictions(ctx, l) }()
	defer func() { cancel(); <-served }()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Wrong kind.
	if err := wire.WriteMsg(conn, &wire.Request{Kind: wire.KindDone}); err != nil {
		t.Fatal(err)
	}
	var resp wire.Response
	if err := wire.ReadMsg(conn, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Err == "" {
		t.Error("wrong-kind request accepted")
	}

	// Undecodable payload.
	if err := wire.WriteMsg(conn, &wire.Request{Kind: wire.KindPredict, Payload: []byte("junk")}); err != nil {
		t.Fatal(err)
	}
	if err := wire.ReadMsg(conn, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Err == "" {
		t.Error("garbage payload accepted")
	}
}
