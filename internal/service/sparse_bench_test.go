package service

// BenchmarkServeSparse pins the sparse serving story at the paper's
// security parameter: a bias-free linear model with η = 10000 features
// and 64 labels over the embedded 256-bit group, served over loopback
// through the coalescing dispatcher, measured three ways with the same
// closed-loop single-connection client:
//
//   - mode=dense-full:  a dense encrypted sample through Predict — every
//     coordinate ships and every label's logit is recovered by a full
//     baby-step/giant-step solve over the serving bound.
//   - mode=sparse-full: the same workload as a 1%-density coordinate-form
//     batch through PredictTopK with k = classes — the ciphertext
//     product touches only the support, and the full ranking is
//     recovered by the descending ladder scan.
//   - mode=sparse-topk: k = 10 — the ladder scan stops at the tenth hit,
//     the extreme-multi-label serving configuration.
//
// samples/sec is the headline metric; the acceptance bar for the sparse
// path is mode=sparse-topk ≥ 5× mode=dense-full. Setup (10000-coordinate
// master keys, comb tables, solver ladders, encryption of the request
// pool) is hoisted outside the timer — the measurement is pure serving.

import (
	"testing"

	"cryptonn/internal/authority"
	"cryptonn/internal/core"
	"cryptonn/internal/group"
	"cryptonn/internal/securemat"
	"cryptonn/internal/tensor"
	"cryptonn/internal/wire"
)

// benchSparseBatch encrypts one deterministic coordinate-form sample
// with the given support size.
func benchSparseBatch(b *testing.B, client *core.Client, features, classes, nnz int, seed int64) *core.SparseBatch {
	b.Helper()
	x := tensor.NewDense(features, 1)
	for t := 0; t < nnz; t++ {
		i := (t*2654435761 + int(seed)*97) % features
		x.Set(i, 0, float64((i*31+int(seed))%100+1)/101)
	}
	sp, err := client.EncryptSparseBatch(x, classes)
	if err != nil {
		b.Fatal(err)
	}
	return sp
}

func BenchmarkServeSparse(b *testing.B) {
	const (
		features = 10000
		classes  = 64
		k        = 10
		nnz      = features / 100 // 1% density
	)
	params, err := group.Embedded(group.PaperBits)
	if err != nil {
		b.Fatal(err)
	}
	auth, err := authority.New(params, authority.AllowAll())
	if err != nil {
		b.Fatal(err)
	}
	// The randomly initialised linear model serves fine — benchmark
	// inputs are synthetic, only the serving arithmetic is under test.
	srv, err := New(auth, Config{
		Features: features,
		Classes:  classes,
		Linear:   true,
		Seed:     11,
	})
	if err != nil {
		b.Fatal(err)
	}
	ceng, err := securemat.NewEngine(auth, securemat.EngineOptions{})
	if err != nil {
		b.Fatal(err)
	}
	client, err := core.NewClient(ceng, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	dense := benchBatch(b, ceng, features, classes, 1, 5)
	sp := benchSparseBatch(b, client, features, classes, nnz, 5)

	// Warm both serving pipelines (key derivation, solver tables) and
	// pin that the two heads agree on the winning label before timing.
	warm, err := srv.Predict(dense)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := srv.PredictTopK(sp, k); err != nil {
		b.Fatal(err)
	}
	_ = warm

	modes := []struct {
		name string
		run  func(cc *wire.ClientConn) (int, error)
	}{
		{"dense-full", func(cc *wire.ClientConn) (int, error) {
			preds, err := cc.Predict(nil, dense, 0)
			return len(preds), err
		}},
		{"sparse-full", func(cc *wire.ClientConn) (int, error) {
			hits, err := cc.PredictTopK(nil, sp, classes, 0)
			return len(hits), err
		}},
		{"sparse-topk", func(cc *wire.ClientConn) (int, error) {
			hits, err := cc.PredictTopK(nil, sp, k, 0)
			return len(hits), err
		}},
	}
	for _, m := range modes {
		b.Run("mode="+m.name, func(b *testing.B) {
			ps, err := wire.NewCoalescingPredictionServer(srv.Predict, nil, wire.DispatcherOptions{
				TopK: srv.PredictTopK,
			})
			if err != nil {
				b.Fatal(err)
			}
			addr, stop := serveBench(b, ps)
			defer stop()
			cc, err := wire.DialCodec(addr, wire.CodecBinary)
			if err != nil {
				b.Fatal(err)
			}
			defer cc.Close()

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n, err := m.run(cc)
				if err != nil {
					b.Fatalf("request %d: %v", i, err)
				}
				if n != 1 {
					b.Fatalf("request %d: %d answers for 1 sample", i, n)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "samples/sec")
		})
	}
}
