package service

import (
	"context"
	"log"
	"math"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"cryptonn/internal/authority"
	"cryptonn/internal/core"
	"cryptonn/internal/fixedpoint"
	"cryptonn/internal/group"
	"cryptonn/internal/securemat"
	"cryptonn/internal/tensor"
	"cryptonn/internal/wire"
)

// newClientEngine wraps a key service in an encrypt-only secure compute
// session, as test clients need.
func newClientEngine(ks securemat.KeyService) (*securemat.Engine, error) {
	return securemat.NewEngine(ks, securemat.EngineOptions{})
}

// testAuthority spins up an in-process authority plus its TCP front-end
// and returns a connected key service.
func testAuthority(t *testing.T) (*authority.Authority, *wire.RemoteKeyService) {
	t.Helper()
	auth, err := authority.New(group.TestParams(), authority.AllowAll())
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := wire.NewAuthorityServer(auth, log.New(os.Stderr, "auth: ", 0))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve(ctx, l) }()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	ks, err := wire.DialKeyService(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ks.Close() })
	return auth, ks
}

// tinyBatch builds a deterministic (features × n) input and one-hot label
// pair for the given class count.
func tinyBatch(features, classes, n int) (*tensor.Dense, *tensor.Dense) {
	x := tensor.NewDense(features, n)
	y := tensor.NewDense(classes, n)
	for j := 0; j < n; j++ {
		for i := 0; i < features; i++ {
			x.Set(i, j, float64((i*7+j*3)%10)/10)
		}
		y.Set(j%classes, j, 1)
	}
	return x, y
}

func TestConfigValidation(t *testing.T) {
	_, ks := testAuthority(t)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"zero features", Config{Classes: 2}},
		{"zero classes", Config{Features: 4}},
		{"negative epochs", Config{Features: 4, Classes: 2, Epochs: -1}},
		{"negative expect", Config{Features: 4, Classes: 2, Expect: -3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(ks, tc.cfg); err == nil {
				t.Errorf("New(%+v) succeeded, want error", tc.cfg)
			}
		})
	}
	if _, err := New(nil, Config{Features: 4, Classes: 2}); err == nil {
		t.Error("New with nil key service succeeded")
	}
}

func TestDefaultsApplied(t *testing.T) {
	cfg := Config{Features: 4, Classes: 2}
	if err := cfg.fillDefaults(); err != nil {
		t.Fatal(err)
	}
	if cfg.Epochs != 2 || cfg.LR != 0.3 || cfg.Expect != 1 || cfg.MaxWeight != 4 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	if len(cfg.Hidden) != 1 || cfg.Hidden[0] != 32 {
		t.Errorf("hidden default = %v, want [32]", cfg.Hidden)
	}
	if cfg.Codec == nil || cfg.Logger == nil {
		t.Error("codec/logger defaults missing")
	}
}

// TestEndToEndTwoClients runs the full Fig. 1 pipeline over loopback TCP:
// two distributed clients encrypt disjoint shards under the same
// authority, submit them to the training service, and the service trains
// a model whose loss decreases — without ever seeing plaintext data.
func TestEndToEndTwoClients(t *testing.T) {
	_, ks := testAuthority(t)

	const (
		features = 8
		classes  = 2
		batchN   = 6
	)
	srv, err := New(ks, Config{
		Features:    features,
		Classes:     classes,
		Hidden:      []int{6},
		Epochs:      4,
		Expect:      2,
		Parallelism: 1,
		Seed:        3,
		ComputeLoss: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	type runResult struct {
		report *Report
		err    error
	}
	resCh := make(chan runResult, 1)
	go func() {
		rep, err := srv.Run(ctx, l)
		resCh <- runResult{rep, err}
	}()

	// Two clients submit one encrypted batch each, concurrently.
	var wg sync.WaitGroup
	clientErr := make(chan error, 2)
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			eng, err := newClientEngine(ks)
			if err != nil {
				clientErr <- err
				return
			}
			client, err := core.NewClient(eng, fixedpoint.Default(), nil)
			if err != nil {
				clientErr <- err
				return
			}
			x, y := tinyBatch(features, classes, batchN)
			enc, err := client.EncryptBatch(x, y)
			if err != nil {
				clientErr <- err
				return
			}
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				clientErr <- err
				return
			}
			defer conn.Close()
			clientErr <- wire.SubmitBatches(conn, []*core.EncryptedBatch{enc})
		}(c)
	}
	wg.Wait()
	for c := 0; c < 2; c++ {
		if err := <-clientErr; err != nil {
			t.Fatalf("client submit: %v", err)
		}
	}

	res := <-resCh
	if res.err != nil {
		t.Fatalf("Run: %v", res.err)
	}
	rep := res.report
	if rep.Batches != 2 {
		t.Errorf("Batches = %d, want 2", rep.Batches)
	}
	if rep.Clients != 2 {
		t.Errorf("Clients = %d, want 2", rep.Clients)
	}
	if len(rep.EpochLoss) != 4 {
		t.Fatalf("EpochLoss count = %d, want 4", len(rep.EpochLoss))
	}
	first, last := rep.EpochLoss[0], rep.EpochLoss[len(rep.EpochLoss)-1]
	if math.IsNaN(first) || math.IsNaN(last) {
		t.Fatal("secure loss not computed")
	}
	if last >= first {
		t.Errorf("loss did not decrease: %.4f → %.4f", first, last)
	}
	if rep.TrainTime <= 0 {
		t.Error("train time not measured")
	}
}

// TestTrainInProcess exercises Train directly (no sockets) and checks the
// FE-based prediction path.
func TestTrainInProcess(t *testing.T) {
	auth, err := authority.New(group.TestParams(), authority.AllowAll())
	if err != nil {
		t.Fatal(err)
	}
	const (
		features = 6
		classes  = 3
	)
	srv, err := New(auth, Config{
		Features:    features,
		Classes:     classes,
		Hidden:      []int{5},
		Epochs:      3,
		Parallelism: 1,
		Seed:        9,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := newClientEngine(auth)
	if err != nil {
		t.Fatal(err)
	}
	client, err := core.NewClient(eng, fixedpoint.Default(), nil)
	if err != nil {
		t.Fatal(err)
	}
	x, y := tinyBatch(features, classes, 9)
	enc, err := client.EncryptBatch(x, y)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := srv.Train(context.Background(), []*core.EncryptedBatch{enc})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Batches != 1 || len(rep.EpochLoss) != 3 {
		t.Errorf("report = %+v", rep)
	}
	// ComputeLoss is off: losses must be NaN.
	for i, l := range rep.EpochLoss {
		if !math.IsNaN(l) {
			t.Errorf("epoch %d loss = %v, want NaN with ComputeLoss off", i, l)
		}
	}

	preds, err := srv.Predict(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 9 {
		t.Fatalf("got %d predictions, want 9", len(preds))
	}
	for i, p := range preds {
		if p < 0 || p >= classes {
			t.Errorf("prediction %d = %d out of range", i, p)
		}
	}
}

// TestTrainRejectsMismatchedBatch checks shape validation against the
// configured model.
func TestTrainRejectsMismatchedBatch(t *testing.T) {
	auth, err := authority.New(group.TestParams(), authority.AllowAll())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(auth, Config{Features: 10, Classes: 2, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := newClientEngine(auth)
	if err != nil {
		t.Fatal(err)
	}
	client, err := core.NewClient(eng, fixedpoint.Default(), nil)
	if err != nil {
		t.Fatal(err)
	}
	x, y := tinyBatch(4, 2, 3) // wrong feature count
	enc, err := client.EncryptBatch(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Train(context.Background(), []*core.EncryptedBatch{enc}); err == nil {
		t.Error("mismatched batch accepted")
	}
}

// TestRunCancelledWhileCollecting verifies the collect phase honours
// context cancellation instead of hanging forever.
func TestRunCancelledWhileCollecting(t *testing.T) {
	_, ks := testAuthority(t)
	srv, err := New(ks, Config{Features: 4, Classes: 2})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := srv.Run(ctx, l)
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Error("Run returned nil after cancellation")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
}

// TestTrainNoBatches checks the empty-submission error path.
func TestTrainNoBatches(t *testing.T) {
	auth, err := authority.New(group.TestParams(), authority.AllowAll())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(auth, Config{Features: 4, Classes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Train(context.Background(), nil); err == nil {
		t.Error("training with no batches succeeded")
	}
}
