package feip_test

import (
	"fmt"
	"testing"

	"cryptonn/internal/feip"
	"cryptonn/internal/group"
)

// BenchmarkGeomSweep sweeps per-key comb geometries over the full
// η=784 Encrypt, the workload group.keyCombGeometry's defaults are
// tuned for. It is not in any CI regex — run it by hand when revisiting
// the geometry choice (e.g. on new hardware). The regimes it exposes:
// narrow groups are operation-bound (taller teeth win), wide groups are
// cache-bound across the ~784 cold per-key slabs (compact slabs win) —
// on the tuning machine (Xeon 2.10 GHz) h=8/v=4 won 64-bit and h=6/v=2
// won 256-bit, each by ≥20% over the worst sensible choice.
func BenchmarkGeomSweep(b *testing.B) {
	for _, bits := range []int{64, 256} {
		for _, g := range [][2]int{{8, 4}, {8, 2}, {8, 1}, {6, 2}, {6, 1}, {5, 1}, {4, 2}, {4, 1}} {
			b.Run(fmt.Sprintf("bits=%d/h=%d/v=%d", bits, g[0], g[1]), func(b *testing.B) {
				feip.SetCombGeomForTest(g[0], g[1])
				defer feip.SetCombGeomForTest(0, 0)
				params, err := group.Embedded(bits)
				if err != nil {
					b.Fatal(err)
				}
				mpk, _, err := feip.Setup(params, 784, nil)
				if err != nil {
					b.Fatal(err)
				}
				mpk.Precompute()
				x := make([]int64, 784)
				for i := range x {
					x[i] = int64(i%201 - 100)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := feip.Encrypt(mpk, x, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
