// Package feip implements functional encryption for inner products — the
// scheme behind Algorithm 1's dot-product arm: every column (and, in the
// dual orientation, row) of a pre-processed matrix is one FEIP
// ciphertext, and a secure W·X recovers one inner product per output
// cell.
//
// This is the DDH-based scheme of Abdalla, Bourse, De Caro and Pointcheval,
// "Simple Functional Encryption Schemes for Inner Products" (PKC 2015),
// exactly as restated in §II-B of the CryptoNN paper:
//
//	Setup(1^λ, 1^η):  s = (s_1..s_η) ←$ Z_q^η,  mpk = (g, h_i = g^{s_i}),  msk = s
//	KeyDerive(msk, y): sk_f = ⟨y, s⟩ mod q
//	Encrypt(mpk, x):  r ←$ Z_q,  ct_0 = g^r,  ct_i = h_i^r · g^{x_i}
//	Decrypt:          g^{⟨x,y⟩} = Π ct_i^{y_i} / ct_0^{sk_f}
//
// The final discrete log g^{⟨x,y⟩} → ⟨x,y⟩ is recovered with a bounded
// baby-step giant-step solver from internal/dlog. Plaintext coordinates are
// signed int64 (fixed-point-encoded reals in the CryptoNN workload); they
// are reduced into Z_q for the exponent arithmetic and the signed result is
// recovered as long as |⟨x,y⟩| stays within the solver bound.
//
// # Session and concurrency contract
//
// Keys and ciphertexts are immutable once created and safe to share
// across goroutines. A MasterPublicKey lazily carries per-h_i fixed-base
// tables: Precompute builds them exactly once (idempotent, guarded), and
// every Encrypt afterwards runs on the shared read-only fast path — the
// securemat encryption pipeline calls it before fanning workers out.
// EncryptScratch (used via EncryptWithScratch) is the opposite: one
// goroutine at a time, pooled by the session layer to keep per-column
// ciphertext slabs off the heap. DecryptParts/DecryptPartsMont expose
// numerator/denominator halves so batch pipelines can share one modular
// inversion across many cells.
package feip
