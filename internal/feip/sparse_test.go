package feip

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"cryptonn/internal/dlog"
	"cryptonn/internal/group"
)

// sparseVector draws a dense vector at the given density (entries in
// [-10, 10] \ {0} on the support) plus its coordinate form.
func sparseVector(rng *rand.Rand, eta int, density float64) (dense []int64, idx []int, vals []int64) {
	dense = make([]int64, eta)
	for i := range dense {
		if rng.Float64() < density {
			v := rng.Int63n(21) - 10
			if v == 0 {
				v = -3
			}
			dense[i] = v
		}
	}
	idx, vals = Support(dense)
	return dense, idx, vals
}

// TestEncryptSparseMatchesDense pins the sparse path limb-exact against the
// dense one: encrypting the same vector with the same nonce (a deterministic
// reader replayed from the same seed) must yield bit-identical ct_0 and
// bit-identical coordinates on the support, across the density spectrum and
// on both embedded group widths.
func TestEncryptSparseMatchesDense(t *testing.T) {
	for _, bits := range []int{64, 256} {
		t.Run(fmt.Sprintf("bits=%d", bits), func(t *testing.T) {
			params, err := group.Embedded(bits)
			if err != nil {
				t.Fatal(err)
			}
			const eta = 64
			mpk, _, err := Setup(params, eta, rand.New(rand.NewSource(7)))
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(bits)))
			cases := [][]int64{
				make([]int64, eta),              // all-zero
				append(make([]int64, eta-1), 0), // single nonzero, set below
			}
			cases[1][eta/2] = -9
			for _, density := range []float64{0, 0.01, 0.5, 1} {
				dense, _, _ := sparseVector(rng, eta, density)
				cases = append(cases, dense)
			}
			for ci, x := range cases {
				idx, vals := Support(x)
				seed := int64(1000*ci + 17)
				ctDense, err := Encrypt(mpk, x, rand.New(rand.NewSource(seed)))
				if err != nil {
					t.Fatalf("case %d: dense Encrypt: %v", ci, err)
				}
				ctSparse, err := EncryptSparse(mpk, idx, vals, rand.New(rand.NewSource(seed)))
				if err != nil {
					t.Fatalf("case %d: EncryptSparse: %v", ci, err)
				}
				if ctSparse.Eta != eta || ctSparse.Nnz() != len(idx) {
					t.Fatalf("case %d: sparse shape η=%d nnz=%d", ci, ctSparse.Eta, ctSparse.Nnz())
				}
				if ctDense.Ct0.Cmp(ctSparse.Ct0) != 0 {
					t.Fatalf("case %d: ct0 diverges between dense and sparse", ci)
				}
				for tt, i := range ctSparse.Idx {
					if ctDense.Ct[i].Cmp(ctSparse.Ct[tt]) != 0 {
						t.Fatalf("case %d: coordinate %d diverges between dense and sparse", ci, i)
					}
				}
				if err := ctSparse.Validate(params); err != nil {
					t.Fatalf("case %d: Validate: %v", ci, err)
				}
				// Full support with explicit zeros (the dense-promoted
				// routing shape) must reproduce the dense ciphertext
				// coordinate-for-coordinate.
				fullIdx := make([]int, eta)
				for i := range fullIdx {
					fullIdx[i] = i
				}
				ctFull, err := EncryptSparse(mpk, fullIdx, x, rand.New(rand.NewSource(seed)))
				if err != nil {
					t.Fatalf("case %d: full-support EncryptSparse: %v", ci, err)
				}
				if ctFull.Ct0.Cmp(ctDense.Ct0) != 0 {
					t.Fatalf("case %d: full-support ct0 diverges", ci)
				}
				for i := range ctFull.Ct {
					if ctFull.Ct[i].Cmp(ctDense.Ct[i]) != 0 {
						t.Fatalf("case %d: full-support coordinate %d diverges", ci, i)
					}
				}
			}
		})
	}
}

// TestSparseDecryptRoundTrip checks the full sparse protocol: sparse
// ciphertext + support-masked key recovers exactly ⟨x, y⟩ for full weight
// vectors with positive, negative, and zero entries, and agrees with the
// dense decryption of the same vector.
func TestSparseDecryptRoundTrip(t *testing.T) {
	for _, bits := range []int{64, 256} {
		t.Run(fmt.Sprintf("bits=%d", bits), func(t *testing.T) {
			params, err := group.Embedded(bits)
			if err != nil {
				t.Fatal(err)
			}
			const eta = 48
			mpk, msk, err := Setup(params, eta, rand.New(rand.NewSource(3)))
			if err != nil {
				t.Fatal(err)
			}
			solver, err := dlog.NewSolver(params, int64(eta)*200+1)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(bits) + 5))
			for _, density := range []float64{0, 0.01, 0.5, 1} {
				for trial := 0; trial < 4; trial++ {
					x, idx, vals := sparseVector(rng, eta, density)
					y := make([]int64, eta)
					for i := range y {
						y[i] = rng.Int63n(21) - 10
					}
					ct, err := EncryptSparse(mpk, idx, vals, rng)
					if err != nil {
						t.Fatalf("EncryptSparse: %v", err)
					}
					ys := make([]int64, len(idx))
					for tt, i := range idx {
						ys[tt] = y[i]
					}
					fk, err := KeyDeriveSparse(params, msk, idx, ys)
					if err != nil {
						t.Fatalf("KeyDeriveSparse: %v", err)
					}
					got, err := DecryptSparse(mpk, ct, fk, y, solver)
					if err != nil {
						t.Fatalf("DecryptSparse: %v", err)
					}
					want, _ := InnerProduct(x, y)
					if got != want {
						t.Fatalf("density=%g: DecryptSparse = %d, want %d", density, got, want)
					}
				}
			}
		})
	}
}

// TestKeyDeriveSparseMatchesMasked pins the masked-key identity the whole
// sparse serving path rests on: KeyDeriveSparse over a support equals dense
// KeyDerive over the same weights zeroed off-support.
func TestKeyDeriveSparseMatchesMasked(t *testing.T) {
	params := group.TestParams()
	const eta = 40
	_, msk, err := Setup(params, eta, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 10; trial++ {
		_, idx, _ := sparseVector(rng, eta, 0.3)
		masked := make([]int64, eta)
		ys := make([]int64, len(idx))
		for tt, i := range idx {
			v := rng.Int63n(41) - 20 // zero weights on-support allowed
			ys[tt] = v
			masked[i] = v
		}
		sparse, err := KeyDeriveSparse(params, msk, idx, ys)
		if err != nil {
			t.Fatalf("KeyDeriveSparse: %v", err)
		}
		dense, err := KeyDerive(params, msk, masked)
		if err != nil {
			t.Fatalf("KeyDerive: %v", err)
		}
		if sparse.K.Cmp(dense.K) != 0 {
			t.Fatalf("trial %d: masked key mismatch", trial)
		}
	}
}

// TestSparseRejectsMalformedSupport exercises the canonical-support
// contract: descending, duplicate, out-of-range indices and explicit zero
// values are all rejected, as are dimension mismatches at decrypt time.
func TestSparseRejectsMalformedSupport(t *testing.T) {
	mpk, msk, solver := setupTest(t, 8, 10_000)
	params := mpk.Params
	bad := []struct {
		name string
		idx  []int
		vals []int64
	}{
		{"descending", []int{3, 1}, []int64{1, 2}},
		{"duplicate", []int{2, 2}, []int64{1, 2}},
		{"out of range", []int{0, 8}, []int64{1, 2}},
		{"negative index", []int{-1}, []int64{1}},
		{"length mismatch", []int{0, 4}, []int64{1}},
	}
	for _, tc := range bad {
		if _, err := EncryptSparse(mpk, tc.idx, tc.vals, nil); err == nil {
			t.Errorf("EncryptSparse accepted %s support", tc.name)
		} else if !errors.Is(err, ErrMalformed) && !errors.Is(err, ErrDimension) {
			t.Errorf("EncryptSparse %s: unexpected error class %v", tc.name, err)
		}
	}
	// KeyDeriveSparse allows zero values but still rejects bad indices.
	if _, err := KeyDeriveSparse(params, msk, []int{5, 2}, []int64{1, 1}); err == nil {
		t.Error("KeyDeriveSparse accepted descending support")
	}
	if _, err := KeyDeriveSparse(params, msk, []int{2, 5}, []int64{0, 1}); err != nil {
		t.Errorf("KeyDeriveSparse rejected zero weight on support: %v", err)
	}
	ct, err := EncryptSparse(mpk, []int{1, 6}, []int64{2, 3}, nil)
	if err != nil {
		t.Fatalf("EncryptSparse: %v", err)
	}
	fk, err := KeyDeriveSparse(params, msk, ct.Idx, []int64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecryptSparse(mpk, ct, fk, make([]int64, 5), solver); !errors.Is(err, ErrDimension) {
		t.Errorf("DecryptSparse short y: %v, want ErrDimension", err)
	}
}
