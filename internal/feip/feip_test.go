package feip

import (
	"errors"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"cryptonn/internal/dlog"
	"cryptonn/internal/group"
)

func setupTest(t testing.TB, eta int, bound int64) (*MasterPublicKey, *MasterSecretKey, *dlog.Solver) {
	t.Helper()
	params := group.TestParams()
	mpk, msk, err := Setup(params, eta, nil)
	if err != nil {
		t.Fatalf("Setup: %v", err)
	}
	solver, err := dlog.NewSolver(params, bound)
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	return mpk, msk, solver
}

func TestRoundTripSimple(t *testing.T) {
	mpk, msk, solver := setupTest(t, 4, 10_000)
	x := []int64{1, 2, 3, 4}
	y := []int64{5, 6, 7, 8}
	ct, err := Encrypt(mpk, x, nil)
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	fk, err := KeyDerive(mpk.Params, msk, y)
	if err != nil {
		t.Fatalf("KeyDerive: %v", err)
	}
	got, err := Decrypt(mpk, ct, fk, y, solver)
	if err != nil {
		t.Fatalf("Decrypt: %v", err)
	}
	if want := int64(5 + 12 + 21 + 32); got != want {
		t.Errorf("Decrypt = %d, want %d", got, want)
	}
}

func TestRoundTripSignedValues(t *testing.T) {
	mpk, msk, solver := setupTest(t, 3, 10_000)
	tests := []struct {
		name string
		x, y []int64
	}{
		{"negative x", []int64{-1, -2, -3}, []int64{1, 2, 3}},
		{"negative y", []int64{1, 2, 3}, []int64{-4, -5, -6}},
		{"mixed", []int64{-7, 8, -9}, []int64{10, -11, 12}},
		{"zeros", []int64{0, 0, 0}, []int64{1, 2, 3}},
		{"zero weights", []int64{5, 6, 7}, []int64{0, 0, 0}},
		{"negative result", []int64{10, 0, 0}, []int64{-50, 1, 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			want, err := InnerProduct(tt.x, tt.y)
			if err != nil {
				t.Fatal(err)
			}
			ct, err := Encrypt(mpk, tt.x, nil)
			if err != nil {
				t.Fatalf("Encrypt: %v", err)
			}
			fk, err := KeyDerive(mpk.Params, msk, tt.y)
			if err != nil {
				t.Fatalf("KeyDerive: %v", err)
			}
			got, err := Decrypt(mpk, ct, fk, tt.y, solver)
			if err != nil {
				t.Fatalf("Decrypt: %v", err)
			}
			if got != want {
				t.Errorf("Decrypt = %d, want %d", got, want)
			}
		})
	}
}

func TestRandomizedRoundTrips(t *testing.T) {
	const eta = 10
	mpk, msk, solver := setupTest(t, eta, 1_000_000)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 25; i++ {
		x := make([]int64, eta)
		y := make([]int64, eta)
		for j := range x {
			x[j] = rng.Int63n(201) - 100
			y[j] = rng.Int63n(201) - 100
		}
		want, _ := InnerProduct(x, y)
		ct, err := Encrypt(mpk, x, nil)
		if err != nil {
			t.Fatal(err)
		}
		fk, err := KeyDerive(mpk.Params, msk, y)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decrypt(mpk, ct, fk, y, solver)
		if err != nil {
			t.Fatalf("Decrypt (iter %d): %v", i, err)
		}
		if got != want {
			t.Fatalf("iter %d: got %d want %d", i, got, want)
		}
	}
}

// Property: decryption computes exactly ⟨x, y⟩ for arbitrary small signed
// vectors.
func TestQuickInnerProductFunctionality(t *testing.T) {
	mpk, msk, solver := setupTest(t, 5, 1<<22)
	f := func(xr, yr [5]int16) bool {
		x := make([]int64, 5)
		y := make([]int64, 5)
		for i := 0; i < 5; i++ {
			x[i] = int64(xr[i] % 100)
			y[i] = int64(yr[i] % 100)
		}
		want, _ := InnerProduct(x, y)
		ct, err := Encrypt(mpk, x, nil)
		if err != nil {
			return false
		}
		fk, err := KeyDerive(mpk.Params, msk, y)
		if err != nil {
			return false
		}
		got, err := Decrypt(mpk, ct, fk, y, solver)
		return err == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCiphertextRandomized(t *testing.T) {
	// Same plaintext twice must give different ciphertexts (fresh nonce):
	// this is the property the paper leans on for label privacy ("the
	// encrypted result is uniformly distributed ... for each same label").
	mpk, _, _ := setupTest(t, 2, 100)
	x := []int64{1, 0}
	ct1, err := Encrypt(mpk, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	ct2, err := Encrypt(mpk, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ct1.Ct0.Cmp(ct2.Ct0) == 0 {
		t.Error("two encryptions share a nonce")
	}
	if ct1.Ct[0].Cmp(ct2.Ct[0]) == 0 {
		t.Error("two encryptions of the same value are identical")
	}
}

func TestDimensionMismatches(t *testing.T) {
	mpk, msk, solver := setupTest(t, 3, 100)
	if _, err := Encrypt(mpk, []int64{1, 2}, nil); !errors.Is(err, ErrDimension) {
		t.Errorf("Encrypt short vector: err = %v", err)
	}
	if _, err := KeyDerive(mpk.Params, msk, []int64{1, 2, 3, 4}); !errors.Is(err, ErrDimension) {
		t.Errorf("KeyDerive long vector: err = %v", err)
	}
	ct, _ := Encrypt(mpk, []int64{1, 2, 3}, nil)
	fk, _ := KeyDerive(mpk.Params, msk, []int64{1, 1, 1})
	if _, err := Decrypt(mpk, ct, fk, []int64{1, 1}, solver); !errors.Is(err, ErrDimension) {
		t.Errorf("Decrypt mismatched y: err = %v", err)
	}
}

func TestSetupRejectsBadInputs(t *testing.T) {
	if _, _, err := Setup(nil, 3, nil); err == nil {
		t.Error("nil params should fail")
	}
	if _, _, err := Setup(group.TestParams(), 0, nil); err == nil {
		t.Error("zero dimension should fail")
	}
}

func TestWrongKeyDoesNotDecrypt(t *testing.T) {
	mpk, msk, solver := setupTest(t, 2, 1000)
	x := []int64{3, 4}
	y := []int64{5, 6}
	yWrong := []int64{7, 8}
	ct, _ := Encrypt(mpk, x, nil)
	fkWrong, _ := KeyDerive(mpk.Params, msk, yWrong)
	// Decrypting with key for y' but claiming y gives neither ⟨x,y⟩ nor x.
	got, err := Decrypt(mpk, ct, fkWrong, y, solver)
	want, _ := InnerProduct(x, y)
	if err == nil && got == want {
		t.Error("wrong key decrypted to the correct inner product")
	}
}

func TestValidate(t *testing.T) {
	mpk, _, _ := setupTest(t, 2, 100)
	if err := mpk.Validate(); err != nil {
		t.Errorf("valid mpk rejected: %v", err)
	}
	ct, _ := Encrypt(mpk, []int64{1, 2}, nil)
	if err := ct.Validate(mpk.Params); err != nil {
		t.Errorf("valid ciphertext rejected: %v", err)
	}
	bad := &Ciphertext{Ct0: ct.Ct0, Ct: []*big.Int{big.NewInt(0)}}
	if err := bad.Validate(mpk.Params); err == nil {
		t.Error("ciphertext with non-element accepted")
	}
	if err := (&MasterPublicKey{}).Validate(); err == nil {
		t.Error("empty mpk accepted")
	}
}

func TestResultOutsideSolverBound(t *testing.T) {
	mpk, msk, solver := setupTest(t, 1, 10)
	ct, _ := Encrypt(mpk, []int64{100}, nil)
	fk, _ := KeyDerive(mpk.Params, msk, []int64{100})
	if _, err := Decrypt(mpk, ct, fk, []int64{100}, solver); !errors.Is(err, dlog.ErrNotFound) {
		t.Errorf("expected dlog.ErrNotFound, got %v", err)
	}
}

func TestInnerProductReference(t *testing.T) {
	if _, err := InnerProduct([]int64{1}, []int64{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
	v, err := InnerProduct([]int64{2, 3}, []int64{4, 5})
	if err != nil || v != 23 {
		t.Errorf("InnerProduct = %d, %v", v, err)
	}
}
