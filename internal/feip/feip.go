package feip

import (
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync"

	"cryptonn/internal/dlog"
	"cryptonn/internal/group"
)

var (
	// ErrDimension reports a vector length mismatch with the scheme's η.
	ErrDimension = errors.New("feip: vector dimension mismatch")
	// ErrMalformed reports a structurally invalid key or ciphertext.
	ErrMalformed = errors.New("feip: malformed input")
)

// MasterPublicKey is mpk = (group, h_i = g^{s_i}). Clients encrypt under it.
//
// The key caches a Lim–Lee comb table per h_i, built lazily on first
// Encrypt (or eagerly via Precompute) under a sync.Once and then shared
// read-only across goroutines — the same contract as dlog.Solver. The
// cache is unexported, so gob/json wire encoding is unaffected; pass
// *MasterPublicKey around, never a copy.
type MasterPublicKey struct {
	Params *group.Params
	H      []*big.Int

	combOnce sync.Once
	hCombs   []*group.FixedBaseComb
}

// Eta returns the vector dimension η the key was set up for.
func (k *MasterPublicKey) Eta() int { return len(k.H) }

// Precompute builds the per-h_i comb tables now instead of on the first
// Encrypt. Callers that are about to encrypt many vectors under the same
// key (securemat, batched clients) use it to keep the table build out of
// their per-column loop; it is idempotent and concurrency-safe.
func (k *MasterPublicKey) Precompute() { k.combs() }

// keyCombTeeth/keyCombSplit overrides the per-key comb geometry when
// non-zero (package vars so the geometry-sweep benchmark can vary them;
// zero means the group package's width-adaptive default).
var keyCombTeeth, keyCombSplit int

func (k *MasterPublicKey) combs() []*group.FixedBaseComb {
	k.combOnce.Do(func() {
		// The h_i only ever see full-width nonces, exactly the regime the
		// comb wins: no recoding, no negative accumulator, b−1 squarings.
		if keyCombTeeth > 0 {
			k.hCombs = k.Params.NewFixedBaseCombsGeometry(k.H, keyCombTeeth, keyCombSplit)
		} else {
			k.hCombs = k.Params.NewFixedBaseCombs(k.H)
		}
	})
	return k.hCombs
}

// Validate checks group membership of every h_i; it is applied to keys
// received over the network.
func (k *MasterPublicKey) Validate() error {
	if k == nil || k.Params == nil || len(k.H) == 0 {
		return fmt.Errorf("%w: empty public key", ErrMalformed)
	}
	if err := k.Params.Validate(); err != nil {
		return err
	}
	for i, h := range k.H {
		if !k.Params.IsElement(h) {
			return fmt.Errorf("%w: h[%d] not a group element", ErrMalformed, i)
		}
	}
	return nil
}

// MasterSecretKey is msk = s. Only the authority holds it.
type MasterSecretKey struct {
	S []*big.Int
}

// FunctionKey is the inner-product key sk_f = ⟨y, s⟩ mod q for a specific
// weight vector y. Possession of the key reveals only ⟨x, y⟩, not x.
type FunctionKey struct {
	K *big.Int
}

// Ciphertext is (ct_0, ct_1..ct_η).
type Ciphertext struct {
	Ct0 *big.Int
	Ct  []*big.Int
}

// Eta returns the encrypted vector's dimension.
func (c *Ciphertext) Eta() int { return len(c.Ct) }

// Validate checks group membership of all components.
func (c *Ciphertext) Validate(params *group.Params) error {
	if c == nil || c.Ct0 == nil || len(c.Ct) == 0 {
		return fmt.Errorf("%w: empty ciphertext", ErrMalformed)
	}
	if !params.IsElement(c.Ct0) {
		return fmt.Errorf("%w: ct0 not a group element", ErrMalformed)
	}
	for i, ct := range c.Ct {
		if !params.IsElement(ct) {
			return fmt.Errorf("%w: ct[%d] not a group element", ErrMalformed, i)
		}
	}
	return nil
}

// Setup generates (mpk, msk) for η-dimensional vectors over the given
// group. Randomness is drawn from r (crypto/rand when nil).
func Setup(params *group.Params, eta int, r io.Reader) (*MasterPublicKey, *MasterSecretKey, error) {
	if params == nil {
		return nil, nil, errors.New("feip: nil group parameters")
	}
	if eta <= 0 {
		return nil, nil, fmt.Errorf("feip: dimension must be positive, got %d", eta)
	}
	s := make([]*big.Int, eta)
	h := make([]*big.Int, eta)
	for i := 0; i < eta; i++ {
		si, err := params.RandScalar(r)
		if err != nil {
			return nil, nil, fmt.Errorf("feip: setup: %w", err)
		}
		s[i] = si
		h[i] = params.PowG(si)
	}
	return &MasterPublicKey{Params: params, H: h}, &MasterSecretKey{S: s}, nil
}

// KeyDerive computes sk_f = ⟨y, s⟩ mod q for the signed integer vector y.
func KeyDerive(params *group.Params, msk *MasterSecretKey, y []int64) (*FunctionKey, error) {
	if msk == nil || len(msk.S) == 0 {
		return nil, fmt.Errorf("%w: empty master secret", ErrMalformed)
	}
	if len(y) != len(msk.S) {
		return nil, fmt.Errorf("%w: |y|=%d, η=%d", ErrDimension, len(y), len(msk.S))
	}
	acc := new(big.Int)
	var term, yb big.Int // scratch reused across coordinates
	for i, yi := range y {
		if yi == 0 {
			continue
		}
		yb.SetInt64(yi)
		term.Mul(msk.S[i], &yb)
		acc.Add(acc, &term)
	}
	return &FunctionKey{K: params.ReduceScalar(acc)}, nil
}

// EncryptScratch carries the per-call working slabs of Encrypt so a worker
// encrypting many vectors under the same key (a securemat matrix, a
// streaming batch) reuses one set of allocations. The zero value is ready
// to use; an EncryptScratch must not be shared between concurrent
// encryptions.
type EncryptScratch struct {
	pos, gx, rl []uint64
	us          []uint32
}

func (sc *EncryptScratch) ensure(slots, k int) {
	if need := slots * k; cap(sc.pos) < need {
		sc.pos = make([]uint64, need)
	} else {
		sc.pos = sc.pos[:need]
	}
	if cap(sc.gx) < k {
		sc.gx = make([]uint64, k)
	} else {
		sc.gx = sc.gx[:k]
	}
}

// Encrypt encrypts the signed integer vector x under mpk.
//
// The whole ciphertext is computed in the Montgomery domain: the nonce is
// packed once into limbs (shared by all η per-key combs and the generator
// comb), every h_i^r·g^{x_i} chain is pure limb multiplication against
// the comb slabs, and each coordinate converts out of the domain exactly
// once. The comb evaluation is inversion-free, so the signed-recoding
// machinery the previous table path needed — one recoding pass plus an
// η+1-element batch inversion per ciphertext — is gone entirely.
func Encrypt(mpk *MasterPublicKey, x []int64, r io.Reader) (*Ciphertext, error) {
	return EncryptWithScratch(mpk, x, r, nil)
}

// EncryptWithScratch is Encrypt with caller-pooled working slabs; sc may be
// nil (one-shot allocation, identical to Encrypt). The returned ciphertext
// never aliases the scratch.
func EncryptWithScratch(mpk *MasterPublicKey, x []int64, r io.Reader, sc *EncryptScratch) (*Ciphertext, error) {
	if mpk == nil || len(mpk.H) == 0 {
		return nil, fmt.Errorf("%w: empty public key", ErrMalformed)
	}
	if len(x) != mpk.Eta() {
		return nil, fmt.Errorf("%w: |x|=%d, η=%d", ErrDimension, len(x), mpk.Eta())
	}
	p := mpk.Params
	nonce, err := p.RandScalar(r)
	if err != nil {
		return nil, fmt.Errorf("feip: encrypt: %w", err)
	}
	combs := mpk.combs()
	gt := p.GTable()
	mc := p.Mont()
	k := mc.Limbs()
	eta := len(x)
	if sc == nil {
		sc = &EncryptScratch{}
	}
	sc.ensure(eta+1, k)
	sc.rl = p.ScalarLimbs(nonce, sc.rl)
	// pos[i] accumulates the ciphertext coordinate; slot eta holds
	// ct_0 = g^r, evaluated on the deeper generator comb.
	pos, gx, rl := sc.pos, sc.gx, sc.rl
	// Every per-key comb shares one geometry and one exponent, so the
	// column patterns are gathered once and reused η times.
	if eta > 0 {
		sc.us = combs[0].Gather(rl, sc.us)
	}
	for i, xi := range x {
		pi := pos[i*k : (i+1)*k]
		combs[i].PowMontGathered(pi, sc.us)
		// h_i^r·g^0 = h_i^r: a zero coordinate needs no payload factor, so
		// skip its table lookup and limb multiplication. Sparse vectors get
		// part of the coordinate-form win on the legacy dense path for free.
		if xi != 0 {
			gt.PowInt64Mont(gx, xi)
			mc.MulMont(pi, pi, gx)
		}
	}
	p.GComb().PowMontLimbs(pos[eta*k:], rl)
	ct := make([]*big.Int, eta)
	for i := range ct {
		ct[i] = mc.FromMont(pos[i*k : (i+1)*k])
	}
	return &Ciphertext{Ct0: mc.FromMont(pos[eta*k:]), Ct: ct}, nil
}

// Decrypt recovers ⟨x, y⟩ from a ciphertext of x and the function key for
// y, using solver for the final bounded discrete log. The caller supplies
// the same y that the key was derived for (as in the paper's Decrypt
// signature); a mismatched y yields ErrNotFound from the solver or a wrong
// value, never the plaintext x.
func Decrypt(mpk *MasterPublicKey, ct *Ciphertext, fk *FunctionKey, y []int64, solver *dlog.Solver) (int64, error) {
	if fk == nil || fk.K == nil {
		return 0, fmt.Errorf("%w: empty function key", ErrMalformed)
	}
	if ct == nil || len(ct.Ct) != len(y) {
		return 0, fmt.Errorf("%w: ciphertext dimension", ErrDimension)
	}
	g, err := DecryptGroupElement(mpk, ct, fk, y)
	if err != nil {
		return 0, err
	}
	v, err := solver.Lookup(g)
	if err != nil {
		return 0, fmt.Errorf("feip: recovering ⟨x,y⟩: %w", err)
	}
	return v, nil
}

// DecryptGroupElement computes g^{⟨x,y⟩} = Π ct_i^{y_i} / ct_0^{sk_f}
// without the final discrete-log step. The secure-matrix layer uses it when
// it wants to batch dlog lookups.
func DecryptGroupElement(mpk *MasterPublicKey, ct *Ciphertext, fk *FunctionKey, y []int64) (*big.Int, error) {
	num, den, err := DecryptParts(mpk, ct, fk, y)
	if err != nil {
		return nil, err
	}
	return mpk.Params.Div(num, den), nil
}

// DecryptParts computes the numerator Π ct_i^{y_i} and the denominator
// ct_0^{sk_f} of DecryptGroupElement without combining them. Batch callers
// (securemat's chunked decryption pipeline) collect the denominators of
// many cells and invert them together with one modular inversion
// (Montgomery's trick) instead of one extended GCD per cell. Both return
// values are freshly allocated, so the caller may invert den in place.
func DecryptParts(mpk *MasterPublicKey, ct *Ciphertext, fk *FunctionKey, y []int64) (num, den *big.Int, err error) {
	if mpk == nil {
		return nil, nil, fmt.Errorf("%w: nil public key", ErrMalformed)
	}
	if fk == nil || fk.K == nil {
		return nil, nil, fmt.Errorf("%w: empty function key", ErrMalformed)
	}
	if ct == nil || len(ct.Ct) != len(y) {
		return nil, nil, fmt.Errorf("%w: ciphertext dimension", ErrDimension)
	}
	p := mpk.Params
	// Simultaneous multi-exponentiation shares one squaring ladder across
	// all η coordinates; the naive per-coordinate Exp paid a full-size
	// ladder for every negative y_i.
	num = p.MultiExpInt64(ct.Ct, y)
	den = p.Exp(ct.Ct0, fk.K)
	return num, den, nil
}

// InnerProduct is the plaintext functionality f(x, y) = ⟨x, y⟩; reference
// implementation used by tests and by plaintext baselines.
func InnerProduct(x, y []int64) (int64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("%w: |x|=%d |y|=%d", ErrDimension, len(x), len(y))
	}
	var acc int64
	for i := range x {
		acc += x[i] * y[i]
	}
	return acc, nil
}
