package feip

// SetCombGeomForTest overrides the per-key comb geometry for the
// geometry-sweep benchmark.
func SetCombGeomForTest(h, v int) { keyCombTeeth, keyCombSplit = h, v }
