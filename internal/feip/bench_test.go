package feip_test

import (
	"fmt"
	"math/rand"
	"testing"

	"cryptonn/internal/dlog"
	"cryptonn/internal/feip"
	"cryptonn/internal/group"
)

// The FEIP primitive costs underlying every CryptoNN secure feed-forward:
// one Encrypt per input column (client), one KeyDerive per weight row
// (authority), one Decrypt per output cell (server). The per-dimension
// sweep shows the η+1-exponentiation scaling of §II-B.

func benchVectors(eta int, seed int64) (x, y []int64) {
	rng := rand.New(rand.NewSource(seed))
	x = make([]int64, eta)
	y = make([]int64, eta)
	for i := 0; i < eta; i++ {
		x[i] = rng.Int63n(21) - 10
		y[i] = rng.Int63n(21) - 10
	}
	return x, y
}

func BenchmarkEncrypt(b *testing.B) {
	for _, eta := range []int{10, 100, 784} {
		b.Run(fmt.Sprintf("eta=%d", eta), func(b *testing.B) {
			params := group.TestParams()
			mpk, _, err := feip.Setup(params, eta, nil)
			if err != nil {
				b.Fatal(err)
			}
			x, _ := benchVectors(eta, 1)
			// Table build is one-time cost with its own benchmark story
			// (BenchmarkColdStart); this one measures the per-op path.
			mpk.Precompute()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := feip.Encrypt(mpk, x, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkKeyDerive(b *testing.B) {
	for _, eta := range []int{10, 100, 784} {
		b.Run(fmt.Sprintf("eta=%d", eta), func(b *testing.B) {
			params := group.TestParams()
			_, msk, err := feip.Setup(params, eta, nil)
			if err != nil {
				b.Fatal(err)
			}
			_, y := benchVectors(eta, 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := feip.KeyDerive(params, msk, y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDecrypt(b *testing.B) {
	for _, eta := range []int{10, 100, 784} {
		b.Run(fmt.Sprintf("eta=%d", eta), func(b *testing.B) {
			params := group.TestParams()
			mpk, msk, err := feip.Setup(params, eta, nil)
			if err != nil {
				b.Fatal(err)
			}
			x, y := benchVectors(eta, 3)
			ct, err := feip.Encrypt(mpk, x, nil)
			if err != nil {
				b.Fatal(err)
			}
			fk, err := feip.KeyDerive(params, msk, y)
			if err != nil {
				b.Fatal(err)
			}
			solver, err := dlog.NewSolver(params, int64(eta)*100+1)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := feip.Decrypt(mpk, ct, fk, y, solver); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEncryptParallel pins multi-core encryption scaling: many
// goroutines encrypting under one shared master public key (the immutable
// fixed-base tables are the shared state). On a single-vCPU box this
// tracks BenchmarkEncrypt; on a multi-core box the per-op time should
// divide by the core count.
func BenchmarkEncryptParallel(b *testing.B) {
	const eta = 784
	params := group.TestParams()
	mpk, _, err := feip.Setup(params, eta, nil)
	if err != nil {
		b.Fatal(err)
	}
	mpk.Precompute()
	x, _ := benchVectors(eta, 1)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := feip.Encrypt(mpk, x, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}
