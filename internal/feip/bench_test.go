package feip_test

import (
	"fmt"
	"math/rand"
	"testing"

	"cryptonn/internal/dlog"
	"cryptonn/internal/feip"
	"cryptonn/internal/group"
)

// The FEIP primitive costs underlying every CryptoNN secure feed-forward:
// one Encrypt per input column (client), one KeyDerive per weight row
// (authority), one Decrypt per output cell (server). The per-dimension
// sweep shows the η+1-exponentiation scaling of §II-B.

func benchVectors(eta int, seed int64) (x, y []int64) {
	rng := rand.New(rand.NewSource(seed))
	x = make([]int64, eta)
	y = make([]int64, eta)
	for i := 0; i < eta; i++ {
		x[i] = rng.Int63n(21) - 10
		y[i] = rng.Int63n(21) - 10
	}
	return x, y
}

func BenchmarkEncrypt(b *testing.B) {
	for _, eta := range []int{10, 100, 784} {
		b.Run(fmt.Sprintf("eta=%d", eta), func(b *testing.B) {
			params := group.TestParams()
			mpk, _, err := feip.Setup(params, eta, nil)
			if err != nil {
				b.Fatal(err)
			}
			x, _ := benchVectors(eta, 1)
			// Table build is one-time cost with its own benchmark story
			// (BenchmarkColdStart); this one measures the per-op path.
			mpk.Precompute()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := feip.Encrypt(mpk, x, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEncryptSparse is the headline sparse-engine measurement: a
// bag-of-words vector at ICD scale (η=10000) across the density axis, on
// the paper's 256-bit group. The sparse coordinate form pays nnz+1 comb
// evaluations; the dense path at the same η is the reference and pays
// η+1 regardless of content (its zero-skip guard only saves the payload
// multiplication). The acceptance target is ≥8× at 1% density.
func BenchmarkEncryptSparse(b *testing.B) {
	const eta = 10000
	params := group.PaperParams()
	mpk, _, err := feip.Setup(params, eta, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	mpk.Precompute()
	for _, density := range []float64{0.001, 0.01, 0.1} {
		rng := rand.New(rand.NewSource(int64(density * 1e6)))
		x := make([]int64, eta)
		for i := range x {
			if rng.Float64() < density {
				x[i] = rng.Int63n(21) - 10
				if x[i] == 0 {
					x[i] = 1
				}
			}
		}
		idx, vals := feip.Support(x)
		var sc feip.EncryptScratch
		b.Run(fmt.Sprintf("density=%g/sparse", density), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := feip.EncryptSparseWithScratch(mpk, idx, vals, rng, &sc); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("density=%g/dense", density), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := feip.EncryptWithScratch(mpk, x, rng, &sc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkKeyDerive(b *testing.B) {
	for _, eta := range []int{10, 100, 784} {
		b.Run(fmt.Sprintf("eta=%d", eta), func(b *testing.B) {
			params := group.TestParams()
			_, msk, err := feip.Setup(params, eta, nil)
			if err != nil {
				b.Fatal(err)
			}
			_, y := benchVectors(eta, 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := feip.KeyDerive(params, msk, y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDecrypt(b *testing.B) {
	for _, eta := range []int{10, 100, 784} {
		b.Run(fmt.Sprintf("eta=%d", eta), func(b *testing.B) {
			params := group.TestParams()
			mpk, msk, err := feip.Setup(params, eta, nil)
			if err != nil {
				b.Fatal(err)
			}
			x, y := benchVectors(eta, 3)
			ct, err := feip.Encrypt(mpk, x, nil)
			if err != nil {
				b.Fatal(err)
			}
			fk, err := feip.KeyDerive(params, msk, y)
			if err != nil {
				b.Fatal(err)
			}
			solver, err := dlog.NewSolver(params, int64(eta)*100+1)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := feip.Decrypt(mpk, ct, fk, y, solver); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEncryptParallel pins multi-core encryption scaling: many
// goroutines encrypting under one shared master public key (the immutable
// fixed-base tables are the shared state). On a single-vCPU box this
// tracks BenchmarkEncrypt; on a multi-core box the per-op time should
// divide by the core count.
func BenchmarkEncryptParallel(b *testing.B) {
	const eta = 784
	params := group.TestParams()
	mpk, _, err := feip.Setup(params, eta, nil)
	if err != nil {
		b.Fatal(err)
	}
	mpk.Precompute()
	x, _ := benchVectors(eta, 1)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := feip.Encrypt(mpk, x, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}
