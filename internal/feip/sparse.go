package feip

import (
	"fmt"
	"io"
	"math/big"

	"cryptonn/internal/dlog"
	"cryptonn/internal/group"
)

// Sparse FEIP: coordinate-form ciphertexts for bag-of-words vectors.
//
// The dense ciphertext carries ct_i = h_i^r·g^{x_i} for every coordinate —
// even an x_i = 0 coordinate still needs its h_i^r mask, so a dense
// ciphertext of a 1%-dense η=10k vector pays 10k comb evaluations for 100
// bits of payload. The sparse representation instead *omits* the zero
// coordinates entirely: it publishes the support (the indices of the
// non-zero entries) and only the masked coordinates on it.
//
// Correctness shifts to the key: a function key for the full weight vector
// y no longer decrypts, because the Σ_{i∉supp} y_i·s_i terms have no
// ciphertext coordinate to cancel against. The decryptor instead requests a
// support-masked key sk = Σ_{i∈supp} y_i·s_i (KeyDeriveSparse); since
// x_i = 0 off the support, ⟨x, y⟩ = ⟨x, y·1_supp⟩ and the masked key
// recovers exactly the same inner product:
//
//	Π_{i∈supp} ct_i^{y_i} / ct_0^{sk}
//	  = g^{r·Σ_{i∈supp} y_i s_i} · g^{Σ_{i∈supp} x_i y_i} / g^{r·sk}
//	  = g^{⟨x,y⟩}
//
// The trade is leakage, not soundness: a sparse ciphertext reveals its
// support (which vocabulary slots are present, not their counts), and the
// masked key requests reveal the same support to the authority. Workloads
// for which the support itself is sensitive must use the dense path; see
// docs/SPARSE.md for the full argument.

// SparseCiphertext is a coordinate-form FEIP ciphertext: Ct[t] encrypts
// coordinate Idx[t] of an η-dimensional vector whose remaining coordinates
// are zero. Idx is strictly increasing. Ct0 = g^r as in the dense form.
type SparseCiphertext struct {
	Eta int
	Ct0 *big.Int
	Idx []int
	Ct  []*big.Int
}

// Nnz returns the number of explicitly encrypted (non-zero) coordinates.
func (c *SparseCiphertext) Nnz() int { return len(c.Idx) }

// Density returns nnz/η, the fraction of coordinates carried explicitly.
func (c *SparseCiphertext) Density() float64 {
	if c.Eta == 0 {
		return 0
	}
	return float64(len(c.Idx)) / float64(c.Eta)
}

// Validate checks structural well-formedness and group membership, the
// sparse analogue of Ciphertext.Validate: a canonical (strictly increasing,
// in-range) support and subgroup membership of every element.
func (c *SparseCiphertext) Validate(params *group.Params) error {
	if c == nil || c.Ct0 == nil || c.Eta <= 0 {
		return fmt.Errorf("%w: empty sparse ciphertext", ErrMalformed)
	}
	if len(c.Idx) != len(c.Ct) {
		return fmt.Errorf("%w: |idx|=%d |ct|=%d", ErrMalformed, len(c.Idx), len(c.Ct))
	}
	if !params.IsElement(c.Ct0) {
		return fmt.Errorf("%w: ct0 not a group element", ErrMalformed)
	}
	prev := -1
	for t, i := range c.Idx {
		if i <= prev || i >= c.Eta {
			return fmt.Errorf("%w: support not strictly increasing in [0,%d)", ErrMalformed, c.Eta)
		}
		prev = i
		if !params.IsElement(c.Ct[t]) {
			return fmt.Errorf("%w: ct[%d] not a group element", ErrMalformed, t)
		}
	}
	return nil
}

// Support extracts the coordinate form of a dense signed vector: the
// strictly increasing indices of its non-zero entries and their values.
// It is the canonical input shape for EncryptSparse and KeyDeriveSparse.
func Support(x []int64) (idx []int, vals []int64) {
	nnz := 0
	for _, v := range x {
		if v != 0 {
			nnz++
		}
	}
	if nnz == 0 {
		return nil, nil
	}
	idx = make([]int, 0, nnz)
	vals = make([]int64, 0, nnz)
	for i, v := range x {
		if v != 0 {
			idx = append(idx, i)
			vals = append(vals, v)
		}
	}
	return idx, vals
}

func checkSupport(eta int, idx []int, vals []int64) error {
	if len(idx) != len(vals) {
		return fmt.Errorf("%w: |idx|=%d |vals|=%d", ErrDimension, len(idx), len(vals))
	}
	prev := -1
	for _, i := range idx {
		if i <= prev || i >= eta {
			return fmt.Errorf("%w: support not strictly increasing in [0,%d)", ErrMalformed, eta)
		}
		prev = i
	}
	return nil
}

// EncryptSparse encrypts the η-dimensional vector whose non-zero entries
// are vals at indices idx (all other coordinates zero) under mpk. The cost
// is nnz+1 comb evaluations instead of η+1: zero coordinates are not
// represented at all, which is what makes the win algorithmic rather than
// constant-factor. The support must be canonical (strictly increasing and
// in-range — see Support); explicit zero values are permitted (they cost a
// mask evaluation but no payload factor), which lets a density router pad
// a near-dense column to full width so its key stays support-independent.
func EncryptSparse(mpk *MasterPublicKey, idx []int, vals []int64, r io.Reader) (*SparseCiphertext, error) {
	return EncryptSparseWithScratch(mpk, idx, vals, r, nil)
}

// EncryptSparseWithScratch is EncryptSparse with caller-pooled working
// slabs; sc may be nil. The returned ciphertext never aliases the scratch
// and copies idx, so the caller may reuse both buffers.
func EncryptSparseWithScratch(mpk *MasterPublicKey, idx []int, vals []int64, r io.Reader, sc *EncryptScratch) (*SparseCiphertext, error) {
	if mpk == nil || len(mpk.H) == 0 {
		return nil, fmt.Errorf("%w: empty public key", ErrMalformed)
	}
	eta := mpk.Eta()
	if err := checkSupport(eta, idx, vals); err != nil {
		return nil, err
	}
	p := mpk.Params
	nonce, err := p.RandScalar(r)
	if err != nil {
		return nil, fmt.Errorf("feip: encrypt sparse: %w", err)
	}
	combs := mpk.combs()
	gt := p.GTable()
	mc := p.Mont()
	k := mc.Limbs()
	nnz := len(idx)
	if sc == nil {
		sc = &EncryptScratch{}
	}
	sc.ensure(nnz+1, k)
	sc.rl = p.ScalarLimbs(nonce, sc.rl)
	pos, gx, rl := sc.pos, sc.gx, sc.rl
	// One gather serves every support coordinate: all per-key combs share
	// a geometry and the nonce is the shared exponent, exactly as in the
	// dense path — the sparse path just walks nnz combs instead of η.
	if nnz > 0 {
		sc.us = combs[idx[0]].Gather(rl, sc.us)
	}
	for t, i := range idx {
		pi := pos[t*k : (t+1)*k]
		combs[i].PowMontGathered(pi, sc.us)
		// Explicit zeros are legal on a support (a dense-promoted column
		// carries its full width so its masked key collapses to the shared
		// full-row key); they get the same payload skip as the dense path.
		if vals[t] != 0 {
			gt.PowInt64Mont(gx, vals[t])
			mc.MulMont(pi, pi, gx)
		}
	}
	p.GComb().PowMontLimbs(pos[nnz*k:], rl)
	ct := make([]*big.Int, nnz)
	for t := range ct {
		ct[t] = mc.FromMont(pos[t*k : (t+1)*k])
	}
	return &SparseCiphertext{
		Eta: eta,
		Ct0: mc.FromMont(pos[nnz*k:]),
		Idx: append([]int(nil), idx...),
		Ct:  ct,
	}, nil
}

// KeyDeriveSparse computes the support-masked inner-product key
// sk = Σ_t vals[t]·s[idx[t]] mod q — the function key for the weight
// vector y·1_supp where y[idx[t]] = vals[t]. It is the key a sparse
// ciphertext with support idx decrypts under (vals gathered from the full
// weight vector on that support), and costs nnz scalar multiplications
// instead of η. Zero vals entries are legal — a weight can vanish on a
// support coordinate — and are simply skipped.
func KeyDeriveSparse(params *group.Params, msk *MasterSecretKey, idx []int, vals []int64) (*FunctionKey, error) {
	if msk == nil || len(msk.S) == 0 {
		return nil, fmt.Errorf("%w: empty master secret", ErrMalformed)
	}
	if len(idx) != len(vals) {
		return nil, fmt.Errorf("%w: |idx|=%d |vals|=%d", ErrDimension, len(idx), len(vals))
	}
	eta := len(msk.S)
	acc := new(big.Int)
	var term, yb big.Int
	prev := -1
	for t, i := range idx {
		if i <= prev || i >= eta {
			return nil, fmt.Errorf("%w: support not strictly increasing in [0,%d)", ErrMalformed, eta)
		}
		prev = i
		if vals[t] == 0 {
			continue
		}
		yb.SetInt64(vals[t])
		term.Mul(msk.S[i], &yb)
		acc.Add(acc, &term)
	}
	return &FunctionKey{K: params.ReduceScalar(acc)}, nil
}

// DecryptSparse recovers ⟨x, y⟩ from a sparse ciphertext of x and the
// support-masked function key for y (KeyDeriveSparse over ct.Idx). y is the
// full η-dimensional weight vector; only its values on the ciphertext's
// support participate, which is exactly ⟨x, y⟩ since x vanishes elsewhere.
func DecryptSparse(mpk *MasterPublicKey, ct *SparseCiphertext, fk *FunctionKey, y []int64, solver *dlog.Solver) (int64, error) {
	g, err := DecryptGroupElementSparse(mpk, ct, fk, y)
	if err != nil {
		return 0, err
	}
	v, err := solver.Lookup(g)
	if err != nil {
		return 0, fmt.Errorf("feip: recovering sparse ⟨x,y⟩: %w", err)
	}
	return v, nil
}

// DecryptGroupElementSparse computes g^{⟨x,y⟩} = Π_t ct_t^{y[idx_t]} /
// ct_0^{sk} without the final discrete-log step.
func DecryptGroupElementSparse(mpk *MasterPublicKey, ct *SparseCiphertext, fk *FunctionKey, y []int64) (*big.Int, error) {
	num, den, err := DecryptPartsSparse(mpk, ct, fk, y)
	if err != nil {
		return nil, err
	}
	return mpk.Params.Div(num, den), nil
}

// DecryptPartsSparse computes the numerator Π_t ct_t^{y[idx_t]} and the
// denominator ct_0^{sk} separately, the sparse analogue of DecryptParts for
// batch callers that fold the inversion into a BatchInvMont. The numerator
// walk touches only the ciphertext's nnz coordinates.
func DecryptPartsSparse(mpk *MasterPublicKey, ct *SparseCiphertext, fk *FunctionKey, y []int64) (num, den *big.Int, err error) {
	if mpk == nil {
		return nil, nil, fmt.Errorf("%w: nil public key", ErrMalformed)
	}
	if fk == nil || fk.K == nil {
		return nil, nil, fmt.Errorf("%w: empty function key", ErrMalformed)
	}
	if ct == nil || len(ct.Idx) != len(ct.Ct) {
		return nil, nil, fmt.Errorf("%w: malformed sparse ciphertext", ErrDimension)
	}
	if len(y) != ct.Eta {
		return nil, nil, fmt.Errorf("%w: |y|=%d, η=%d", ErrDimension, len(y), ct.Eta)
	}
	p := mpk.Params
	ys := make([]int64, len(ct.Idx))
	for t, i := range ct.Idx {
		ys[t] = y[i]
	}
	num = p.MultiExpInt64(ct.Ct, ys)
	den = p.Exp(ct.Ct0, fk.K)
	return num, den, nil
}
