package core

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
)

// LabelMap is the direct-inference mitigation of §III-A / §IV-A: "to
// prevent inference, the label should be mapped to a random number first".
//
// The concrete instantiation is a keyed pseudorandom permutation of the
// class indices, shared by all clients (who derive it from a secret key)
// and unknown to the server. Training semantics are exactly preserved —
// permuting output units permutes nothing but their order — while the
// server can no longer tell which output unit corresponds to which real
// class. Clients invert the permutation on predictions.
type LabelMap struct {
	perm []int
	inv  []int
}

// ErrLabelRange reports a class index outside the map's domain.
var ErrLabelRange = errors.New("core: label out of range")

// NewLabelMap derives a permutation of [0, classes) from the secret key.
// The derivation is deterministic: every client holding the key builds the
// same map.
func NewLabelMap(classes int, key []byte) (*LabelMap, error) {
	if classes <= 0 {
		return nil, fmt.Errorf("core: classes must be positive, got %d", classes)
	}
	if len(key) == 0 {
		return nil, errors.New("core: empty label-map key")
	}
	// Derive a seed from the key with HMAC-SHA256, then shuffle.
	mac := hmac.New(sha256.New, key)
	mac.Write([]byte("cryptonn-label-permutation"))
	sum := mac.Sum(nil)
	seed := int64(binary.BigEndian.Uint64(sum[:8]))
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(classes)
	inv := make([]int, classes)
	for i, p := range perm {
		inv[p] = i
	}
	return &LabelMap{perm: perm, inv: inv}, nil
}

// Classes returns the permutation's domain size.
func (m *LabelMap) Classes() int { return len(m.perm) }

// Apply maps a true class index to its masked index (client side, before
// encryption).
func (m *LabelMap) Apply(label int) (int, error) {
	if label < 0 || label >= len(m.perm) {
		return 0, fmt.Errorf("%w: %d of %d", ErrLabelRange, label, len(m.perm))
	}
	return m.perm[label], nil
}

// Invert maps a masked prediction back to the true class (client side,
// after prediction).
func (m *LabelMap) Invert(masked int) (int, error) {
	if masked < 0 || masked >= len(m.inv) {
		return 0, fmt.Errorf("%w: %d of %d", ErrLabelRange, masked, len(m.inv))
	}
	return m.inv[masked], nil
}

// ApplyAll maps a label slice.
func (m *LabelMap) ApplyAll(labels []int) ([]int, error) {
	out := make([]int, len(labels))
	for i, l := range labels {
		v, err := m.Apply(l)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// InvertAll maps a masked prediction slice back.
func (m *LabelMap) InvertAll(masked []int) ([]int, error) {
	out := make([]int, len(masked))
	for i, l := range masked {
		v, err := m.Invert(l)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Identity returns the trivial map (used when clients opt out of masking).
func Identity(classes int) *LabelMap {
	perm := make([]int, classes)
	inv := make([]int, classes)
	for i := range perm {
		perm[i] = i
		inv[i] = i
	}
	return &LabelMap{perm: perm, inv: inv}
}
