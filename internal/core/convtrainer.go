package core

import (
	"fmt"
	"math"

	"cryptonn/internal/feip"
	"cryptonn/internal/nn"
	"cryptonn/internal/securemat"
	"cryptonn/internal/tensor"
)

// Secure convolution (Algorithm 3) and the CryptoCNN training step
// (§III-E): the first convolutional layer's forward pass and filter
// gradient are computed over the encrypted sliding windows; everything
// downstream is the ordinary plaintext network.

// checkConvGeometry verifies the encrypted batch was pre-processed for the
// model's first convolutional layer (the client must learn the padding
// strategy and filter size from the server, Algorithm 3 line 11).
func checkConvGeometry(l *nn.ConvLayer, enc *EncryptedConvBatch) error {
	if l.InC != enc.C || l.InH != enc.H || l.InW != enc.W ||
		l.K != enc.K || l.Stride != enc.Stride || l.Pad != enc.Pad {
		return fmt.Errorf("core: conv geometry mismatch: layer %s vs batch %dx%dx%d k%d s%d p%d",
			l.Name(), enc.C, enc.H, enc.W, enc.K, enc.Stride, enc.Pad)
	}
	return nil
}

// secureConvForward computes the first layer's output over encrypted
// windows: Z[f][w] = ⟨filter_f, window_w⟩ + b_f for every sample
// (Algorithm 3 lines 2–8).
func (t *Trainer) secureConvForward(layer0 *nn.ConvLayer, enc *EncryptedConvBatch) (*tensor.Dense, error) {
	// Algorithm 3 lines 17–20: one key per filter.
	wInt, err := t.clampEncode(layer0.W, t.cfg.MaxWeight)
	if err != nil {
		return nil, fmt.Errorf("core: encoding filters: %w", err)
	}
	keys, err := t.Engine.DotKeys(wInt)
	if err != nil {
		return nil, fmt.Errorf("core: secure convolution keys: %w", err)
	}
	mpk, err := t.Engine.FEIPPublic(enc.WindowLen())
	if err != nil {
		return nil, err
	}
	numWindows := enc.NumWindows()
	out := tensor.NewDense(layer0.OutSize(), enc.N)
	// One decryption per (sample, filter, window) cell, parallelized.
	total := enc.N * layer0.Filters * numWindows
	err = securemat.ParallelFor(total, t.cfg.Parallelism, func(idx int) error {
		s := idx / (layer0.Filters * numWindows)
		rem := idx % (layer0.Filters * numWindows)
		f := rem / numWindows
		w := rem % numWindows
		ip, err := feip.Decrypt(mpk, enc.Windows[s][w], keys[f], wInt[f], t.Engine.Solver())
		if err != nil {
			return fmt.Errorf("core: secure conv cell (s=%d,f=%d,w=%d): %w", s, f, w, err)
		}
		out.Set(f*numWindows+w, s, t.cfg.Codec.DecodeProduct(ip)+layer0.B.Data[f])
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// secureConvGradAccum accumulates the filter gradient dW[f][a] =
// Σ_s ⟨dZ_{s,f}, positions_{s,a}⟩ over the row-oriented window
// ciphertexts. Each (sample, filter, window-position) decryption lands in
// a per-sample scratch matrix — distinct goroutines never share a cell —
// and the scratches are summed into GradW sequentially afterwards.
func (t *Trainer) secureConvGradAccum(layer0 *nn.ConvLayer, enc *EncryptedConvBatch, dZ *tensor.Dense) error {
	numWindows := enc.NumWindows()
	windowLen := enc.WindowLen()
	mpk, err := t.Engine.FEIPPublic(numWindows)
	if err != nil {
		return err
	}
	// Per (sample, filter): one inner-product key over that sample's dZ row.
	type skey struct {
		vec []int64
		fk  *feip.FunctionKey
	}
	skeys := make([][]skey, enc.N)
	for s := 0; s < enc.N; s++ {
		skeys[s] = make([]skey, layer0.Filters)
		for f := 0; f < layer0.Filters; f++ {
			row := make([]float64, numWindows)
			for w := 0; w < numWindows; w++ {
				row[w] = dZ.At(f*numWindows+w, s) * t.cfg.GradScale
			}
			vec, err := t.cfg.Codec.EncodeVec(row)
			if err != nil {
				return fmt.Errorf("core: encoding dZ (s=%d,f=%d): %w", s, f, err)
			}
			fk, err := t.Engine.Keys().IPKey(vec)
			if err != nil {
				return fmt.Errorf("core: conv gradient key (s=%d,f=%d): %w", s, f, err)
			}
			skeys[s][f] = skey{vec: vec, fk: fk}
		}
	}
	scratch := make([]*tensor.Dense, enc.N)
	for s := range scratch {
		scratch[s] = tensor.NewDense(layer0.Filters, windowLen)
	}
	total := enc.N * layer0.Filters * windowLen
	err = securemat.ParallelFor(total, t.cfg.Parallelism, func(idx int) error {
		s := idx / (layer0.Filters * windowLen)
		rem := idx % (layer0.Filters * windowLen)
		f := rem / windowLen
		a := rem % windowLen
		ip, err := feip.Decrypt(mpk, enc.Positions[s][a], skeys[s][f].fk, skeys[s][f].vec, t.Engine.Solver())
		if err != nil {
			return fmt.Errorf("core: secure conv grad (s=%d,f=%d,a=%d): %w", s, f, a, err)
		}
		scratch[s].Set(f, a, t.cfg.Codec.DecodeProduct(ip)/t.cfg.GradScale)
		return nil
	})
	if err != nil {
		return err
	}
	for s := range scratch {
		if err := layer0.GradW.AddInPlace(scratch[s]); err != nil {
			return err
		}
	}
	return nil
}

// db for conv: Σ over windows and samples of dZ.
func convBiasGrad(layer0 *nn.ConvLayer, enc *EncryptedConvBatch, dZ *tensor.Dense) {
	numWindows := enc.NumWindows()
	for s := 0; s < enc.N; s++ {
		for f := 0; f < layer0.Filters; f++ {
			var acc float64
			for w := 0; w < numWindows; w++ {
				acc += dZ.At(f*numWindows+w, s)
			}
			layer0.GradB.Data[f] += acc
		}
	}
}

// TrainConvBatch runs one CryptoCNN iteration: secure convolution forward,
// plaintext middle, secure label evaluation, plaintext back-propagation to
// the first layer, secure filter gradient.
func (t *Trainer) TrainConvBatch(enc *EncryptedConvBatch, opt nn.Optimizer) (*Result, error) {
	layer0, ok := t.Model.Layers[0].(*nn.ConvLayer)
	if !ok {
		return nil, fmt.Errorf("core: first layer is %s; use TrainBatch for dense models", t.Model.Layers[0].Name())
	}
	if err := checkConvGeometry(layer0, enc); err != nil {
		return nil, err
	}
	t.Model.ZeroGrad()

	z, err := t.secureConvForward(layer0, enc)
	if err != nil {
		return nil, err
	}
	out, err := t.Model.ForwardFrom(1, z)
	if err != nil {
		return nil, err
	}

	ebatch := &EncryptedBatch{Y: enc.Y, Classes: enc.Classes, N: enc.N}
	loss, gradOut, probs, err := t.headGradient(ebatch, out)
	if err != nil {
		return nil, err
	}

	dZ0, err := t.Model.BackwardTo(1, gradOut)
	if err != nil {
		return nil, err
	}
	if err := t.secureConvGradAccum(layer0, enc, dZ0); err != nil {
		return nil, err
	}
	convBiasGrad(layer0, enc, dZ0)

	if err := t.Model.ApplyStep(opt); err != nil {
		return nil, err
	}
	return &Result{Loss: loss, MaskedPreds: argmaxCols(probs), Output: out}, nil
}

// PredictConv runs only the secure convolution plus the normal forward
// pass over an encrypted batch.
func (t *Trainer) PredictConv(enc *EncryptedConvBatch) (*Result, error) {
	layer0, ok := t.Model.Layers[0].(*nn.ConvLayer)
	if !ok {
		return nil, fmt.Errorf("core: first layer is %s; use Predict for dense models", t.Model.Layers[0].Name())
	}
	if err := checkConvGeometry(layer0, enc); err != nil {
		return nil, err
	}
	z, err := t.secureConvForward(layer0, enc)
	if err != nil {
		return nil, err
	}
	out, err := t.Model.ForwardFrom(1, z)
	if err != nil {
		return nil, err
	}
	return &Result{Loss: math.NaN(), MaskedPreds: argmaxCols(out), Output: out}, nil
}
