package core_test

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"cryptonn/internal/authority"
	"cryptonn/internal/core"
	"cryptonn/internal/dlog"
	"cryptonn/internal/fixedpoint"
	"cryptonn/internal/group"
	"cryptonn/internal/nn"
	"cryptonn/internal/securemat"
	"cryptonn/internal/tensor"
)

// newFixture builds a secure compute session over an in-process authority
// with a solver at the given bound.
func newFixture(t testing.TB, bound int64) *securemat.Engine {
	t.Helper()
	auth, err := authority.New(group.TestParams(), authority.AllowAll())
	if err != nil {
		t.Fatalf("authority.New: %v", err)
	}
	solver, err := dlog.NewSolver(group.TestParams(), bound)
	if err != nil {
		t.Fatalf("dlog.NewSolver: %v", err)
	}
	eng, err := securemat.NewEngine(auth, securemat.EngineOptions{Solver: solver})
	if err != nil {
		t.Fatalf("securemat.NewEngine: %v", err)
	}
	return eng
}

// blobData builds a linearly separable-ish 3-class toy problem.
func blobData(rng *rand.Rand, features, n int) (*tensor.Dense, *tensor.Dense, []int) {
	x := tensor.NewDense(features, n)
	y := tensor.NewDense(3, n)
	labels := make([]int, n)
	centers := [][]float64{{0.8, 0.1}, {0.1, 0.8}, {0.8, 0.8}}
	for j := 0; j < n; j++ {
		c := j % 3
		labels[j] = c
		for i := 0; i < features; i++ {
			base := centers[c][i%2]
			x.Set(i, j, base+rng.NormFloat64()*0.08)
		}
		y.Set(c, j, 1)
	}
	return x, y, labels
}

func TestLabelMap(t *testing.T) {
	m, err := core.NewLabelMap(10, []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for l := 0; l < 10; l++ {
		masked, err := m.Apply(l)
		if err != nil {
			t.Fatal(err)
		}
		if seen[masked] {
			t.Fatal("not a permutation")
		}
		seen[masked] = true
		back, err := m.Invert(masked)
		if err != nil {
			t.Fatal(err)
		}
		if back != l {
			t.Fatalf("Invert(Apply(%d)) = %d", l, back)
		}
	}
	// Deterministic from the key.
	m2, err := core.NewLabelMap(10, []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < 10; l++ {
		a, _ := m.Apply(l)
		b, _ := m2.Apply(l)
		if a != b {
			t.Fatal("same key must derive the same permutation")
		}
	}
	// Different keys almost surely differ somewhere.
	m3, err := core.NewLabelMap(10, []byte("other"))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for l := 0; l < 10; l++ {
		a, _ := m.Apply(l)
		b, _ := m3.Apply(l)
		if a != b {
			same = false
		}
	}
	if same {
		t.Error("different keys produced identical permutations")
	}
	if _, err := m.Apply(-1); !errors.Is(err, core.ErrLabelRange) {
		t.Error("negative label should fail")
	}
	if _, err := m.Invert(10); !errors.Is(err, core.ErrLabelRange) {
		t.Error("out-of-range inversion should fail")
	}
	if _, err := core.NewLabelMap(0, []byte("k")); err == nil {
		t.Error("zero classes should fail")
	}
	if _, err := core.NewLabelMap(3, nil); err == nil {
		t.Error("empty key should fail")
	}
	all, err := m.ApplyAll([]int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	back, err := m.InvertAll(all)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range back {
		if v != i {
			t.Fatal("ApplyAll/InvertAll round trip broken")
		}
	}
	id := core.Identity(5)
	if v, _ := id.Apply(3); v != 3 {
		t.Error("Identity must not permute")
	}
}

func TestEncryptBatchShapes(t *testing.T) {
	eng := newFixture(t, 1000)
	client, err := core.NewClient(eng, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	x, y, _ := blobData(rng, 4, 6)
	enc, err := client.EncryptBatch(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if enc.Features != 4 || enc.Classes != 3 || enc.N != 6 {
		t.Errorf("dims %d/%d/%d", enc.Features, enc.Classes, enc.N)
	}
	if !enc.X.HasRows() {
		t.Error("X must be dual-encrypted")
	}
	if enc.X.HasElems() {
		t.Error("X should not carry FEBO elements")
	}
	if !enc.Y.HasElems() {
		t.Error("Y must carry FEBO elements")
	}
	// Mismatched columns.
	if _, err := client.EncryptBatch(x, tensor.NewDense(3, 2)); err == nil {
		t.Error("mismatched batch should fail")
	}
}

func TestNewClientValidation(t *testing.T) {
	if _, err := core.NewClient(nil, nil, nil); err == nil {
		t.Error("nil engine should fail")
	}
}

func TestSecurePredictMatchesPlaintextForward(t *testing.T) {
	eng := newFixture(t, 50_000_000)
	rng := rand.New(rand.NewSource(2))
	model, err := nn.NewMLP(4, 3, []int{5}, nn.SoftmaxCrossEntropy{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	trainer, err := core.NewTrainer(model, eng, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	client, err := core.NewClient(eng, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	x, y, _ := blobData(rng, 4, 5)
	enc, err := client.EncryptBatch(x, y)
	if err != nil {
		t.Fatal(err)
	}
	res, err := trainer.Predict(enc)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := model.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	// Quantization at 2 decimals: outputs agree to ~1e-2.
	if !tensor.AlmostEqual(res.Output, plain, 0.05) {
		t.Error("secure forward diverges from plaintext forward beyond quantization")
	}
	plainPreds := make([]int, plain.Cols)
	for j := range plainPreds {
		plainPreds[j] = plain.ArgMaxCol(j)
	}
	for j := range plainPreds {
		if res.MaskedPreds[j] != plainPreds[j] {
			t.Errorf("prediction %d differs", j)
		}
	}
}

func TestCryptoNNTrainingParityWithPlaintext(t *testing.T) {
	// The paper's core claim (Fig. 6 / Table III): a model trained through
	// the secure steps reaches accuracy similar to the same model trained
	// on plaintext. Train twin models from identical initialisation.
	eng := newFixture(t, 100_000_000)
	const seed = 42
	secureModel, err := nn.NewMLP(4, 3, []int{6}, nn.SoftmaxCrossEntropy{}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	plainModel, err := nn.NewMLP(4, 3, []int{6}, nn.SoftmaxCrossEntropy{}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}

	trainer, err := core.NewTrainer(secureModel, eng, core.Config{ComputeLoss: true})
	if err != nil {
		t.Fatal(err)
	}
	client, err := core.NewClient(eng, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	x, y, labels := blobData(rng, 4, 12)
	enc, err := client.EncryptBatch(x, y)
	if err != nil {
		t.Fatal(err)
	}

	optSecure, _ := nn.NewSGD(0.5, 0)
	optPlain, _ := nn.NewSGD(0.5, 0)
	var secureLoss, plainLoss float64
	for it := 0; it < 15; it++ {
		res, err := trainer.TrainBatch(enc, optSecure)
		if err != nil {
			t.Fatalf("secure iteration %d: %v", it, err)
		}
		secureLoss = res.Loss
		plainLoss, err = plainModel.TrainBatch(x, y, optPlain)
		if err != nil {
			t.Fatal(err)
		}
	}
	if math.IsNaN(secureLoss) {
		t.Fatal("secure loss not computed")
	}
	// Loss trajectories must be close (quantization-level drift only).
	if math.Abs(secureLoss-plainLoss) > 0.15*(1+plainLoss) {
		t.Errorf("loss diverged: secure %v vs plain %v", secureLoss, plainLoss)
	}
	// Both models should classify the toy data correctly.
	res, err := trainer.Predict(enc)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for j, p := range res.MaskedPreds {
		if p == labels[j] {
			correct++
		}
	}
	secureAcc := float64(correct) / float64(len(labels))
	plainAcc, err := plainModel.Accuracy(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(secureAcc-plainAcc) > 0.2 {
		t.Errorf("accuracy gap: secure %v vs plain %v", secureAcc, plainAcc)
	}
	if secureAcc < 0.8 {
		t.Errorf("secure accuracy %v too low", secureAcc)
	}
}

func TestTrainingWithLabelMapLearnsPermutedClasses(t *testing.T) {
	eng := newFixture(t, 100_000_000)
	lm, err := core.NewLabelMap(3, []byte("clinic-shared-key"))
	if err != nil {
		t.Fatal(err)
	}
	model, err := nn.NewMLP(4, 3, []int{6}, nn.SoftmaxCrossEntropy{}, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	trainer, err := core.NewTrainer(model, eng, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	client, err := core.NewClient(eng, nil, lm)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	x, y, labels := blobData(rng, 4, 12)
	enc, err := client.EncryptBatch(x, y)
	if err != nil {
		t.Fatal(err)
	}
	opt, _ := nn.NewSGD(0.5, 0)
	for it := 0; it < 15; it++ {
		if _, err := trainer.TrainBatch(enc, opt); err != nil {
			t.Fatal(err)
		}
	}
	res, err := trainer.Predict(enc)
	if err != nil {
		t.Fatal(err)
	}
	// Masked predictions must match the *mapped* labels; inverted ones the
	// true labels.
	inverted, err := lm.InvertAll(res.MaskedPreds)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for j := range labels {
		if inverted[j] == labels[j] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(labels)); acc < 0.8 {
		t.Errorf("accuracy after unmasking = %v", acc)
	}
}

func TestMSEHeadBinaryClassifier(t *testing.T) {
	// The §III-D walkthrough: sigmoid output, half squared error.
	eng := newFixture(t, 100_000_000)
	model, err := nn.NewBinaryClassifier(2, 4, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	trainer, err := core.NewTrainer(model, eng, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	client, err := core.NewClient(eng, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// XOR-ish separable data.
	x, _ := tensor.FromRows([][]float64{{0.1, 0.9, 0.1, 0.9}, {0.1, 0.1, 0.9, 0.9}})
	y, _ := tensor.FromRows([][]float64{{0, 1, 1, 1}}) // OR function
	enc, err := client.EncryptBatch(x, y)
	if err != nil {
		t.Fatal(err)
	}
	opt, _ := nn.NewSGD(2.0, 0.9)
	var first, last float64
	for it := 0; it < 60; it++ {
		res, err := trainer.TrainBatch(enc, opt)
		if err != nil {
			t.Fatal(err)
		}
		if it == 0 {
			first = res.Loss
		}
		last = res.Loss
	}
	if math.IsNaN(last) {
		t.Fatal("MSE head must always report loss")
	}
	if last >= first {
		t.Errorf("loss did not decrease: %v -> %v", first, last)
	}
}

func TestCryptoCNNTrainsTinyConvNet(t *testing.T) {
	eng := newFixture(t, 100_000_000)
	rng := rand.New(rand.NewSource(6))
	conv, err := nn.NewConv(1, 6, 6, 2, 3, 1, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := nn.NewAvgPool(2, 6, 6, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	model, err := nn.NewModel(36, nn.SoftmaxCrossEntropy{},
		conv, nn.NewTanh(), pool, nn.NewDense(2*3*3, 3, rng))
	if err != nil {
		t.Fatal(err)
	}
	// Twin plaintext model, identical init.
	rng2 := rand.New(rand.NewSource(6))
	conv2, err := nn.NewConv(1, 6, 6, 2, 3, 1, 1, rng2)
	if err != nil {
		t.Fatal(err)
	}
	pool2, err := nn.NewAvgPool(2, 6, 6, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := nn.NewModel(36, nn.SoftmaxCrossEntropy{},
		conv2, nn.NewTanh(), pool2, nn.NewDense(2*3*3, 3, rng2))
	if err != nil {
		t.Fatal(err)
	}

	trainer, err := core.NewTrainer(model, eng, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	client, err := core.NewClient(eng, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng3 := rand.New(rand.NewSource(9))
	x, y, _ := blobData(rng3, 36, 3)
	enc, err := client.EncryptConvBatch(x, y, 1, 6, 6, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	optS, _ := nn.NewSGD(0.3, 0)
	optP, _ := nn.NewSGD(0.3, 0)
	for it := 0; it < 4; it++ {
		if _, err := trainer.TrainConvBatch(enc, optS); err != nil {
			t.Fatalf("secure conv iteration %d: %v", it, err)
		}
		if _, err := plain.TrainBatch(x, y, optP); err != nil {
			t.Fatal(err)
		}
	}
	// After identical training, conv filters must stay close to the
	// plaintext twin (quantization drift only).
	if !tensor.AlmostEqual(conv.W, conv2.W, 0.05) {
		t.Error("secure conv filters diverged from plaintext twin")
	}
	res, err := trainer.PredictConv(enc)
	if err != nil {
		t.Fatal(err)
	}
	plainOut, err := plain.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AlmostEqual(res.Output, plainOut, 0.15) {
		t.Error("secure conv forward diverged from plaintext")
	}
}

func TestTrainerRejectsWrongLayerKinds(t *testing.T) {
	eng := newFixture(t, 1000)
	rng := rand.New(rand.NewSource(1))
	mlp, err := nn.NewMLP(4, 3, nil, nn.SoftmaxCrossEntropy{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	trainer, err := core.NewTrainer(mlp, eng, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trainer.TrainConvBatch(&core.EncryptedConvBatch{}, nil); err == nil {
		t.Error("conv batch on dense model should fail")
	}
	if _, err := trainer.PredictConv(&core.EncryptedConvBatch{}); err == nil {
		t.Error("conv predict on dense model should fail")
	}
	// Feature mismatch.
	client, err := core.NewClient(eng, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewDense(5, 2)
	y := tensor.NewDense(3, 2)
	y.Set(0, 0, 1)
	y.Set(1, 1, 1)
	enc, err := client.EncryptBatch(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trainer.TrainBatch(enc, nil); err == nil {
		t.Error("feature mismatch should fail")
	}
	if _, err := trainer.Predict(enc); err == nil {
		t.Error("feature mismatch on predict should fail")
	}
}

func TestNewTrainerValidation(t *testing.T) {
	eng := newFixture(t, 1000)
	rng := rand.New(rand.NewSource(1))
	m, err := nn.NewMLP(2, 2, nil, nn.SoftmaxCrossEntropy{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.NewTrainer(nil, eng, core.Config{}); err == nil {
		t.Error("nil model should fail")
	}
	if _, err := core.NewTrainer(m, nil, core.Config{}); err == nil {
		t.Error("nil engine should fail")
	}
	if _, err := core.NewTrainer(m, eng.WithSolver(nil), core.Config{}); err == nil {
		t.Error("engine without solver should fail")
	}
}

func TestSolverBound(t *testing.T) {
	codec := fixedpoint.Default()
	b := core.SolverBound(codec, 784, 1, 8, 100)
	// 784 * (1*100) * (8*100) * 100 + 1
	want := int64(784)*100*800*100 + 1
	if b != want {
		t.Errorf("SolverBound = %d, want %d", b, want)
	}
	if core.SolverBound(nil, 10, 1, 1, 0) <= 0 {
		t.Error("defaults must yield a positive bound")
	}
}

func TestEncryptConvBatchGeometryValidation(t *testing.T) {
	eng := newFixture(t, 1000)
	client, err := core.NewClient(eng, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewDense(36, 2)
	y := tensor.NewDense(3, 2)
	if _, err := client.EncryptConvBatch(x, y, 1, 7, 7, 3, 1, 1); err == nil {
		t.Error("feature/geometry mismatch should fail")
	}
	if _, err := client.EncryptConvBatch(x, y, 1, 6, 6, 4, 3, 0); err == nil {
		t.Error("non-tiling conv should fail")
	}
	if _, err := client.EncryptConvBatch(x, tensor.NewDense(3, 5), 1, 6, 6, 3, 1, 1); err == nil {
		t.Error("label column mismatch should fail")
	}
}
