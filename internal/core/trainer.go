package core

import (
	"errors"
	"fmt"
	"math"

	"cryptonn/internal/feip"
	"cryptonn/internal/fixedpoint"
	"cryptonn/internal/nn"
	"cryptonn/internal/securemat"
	"cryptonn/internal/tensor"
)

// Config tunes the server-side trainer.
type Config struct {
	// Codec is the fixed-point codec; nil selects the paper's two-decimal
	// default. It must match the clients' codec.
	Codec *fixedpoint.Codec
	// Parallelism is the decryption worker count (the paper's
	// parallelized curves); < 2 is sequential, < 0 selects NumCPU.
	Parallelism int
	// MaxWeight clamps weight magnitudes entering the secure encodings so
	// results stay within the discrete-log bound. Zero selects 8.
	MaxWeight float64
	// GradScale is an extra fixed-point pre-multiplier applied to output
	// gradients before the secure dW step, preserving precision of small
	// gradients; the exact factor divides back out after decryption. Zero
	// selects 100.
	GradScale float64
	// ComputeLoss enables the secure cross-entropy evaluation
	// L = −⟨y, log p⟩ via FEIP (one key per sample per batch). When false,
	// the softmax-head loss is reported as NaN; the MSE head always
	// reports a loss (its value falls out of the secure gradient).
	ComputeLoss bool
	// LogPClamp bounds −log p in the secure loss computation. Zero
	// selects 20.
	LogPClamp float64
}

func (c *Config) fillDefaults() {
	if c.Codec == nil {
		c.Codec = fixedpoint.Default()
	}
	if c.MaxWeight == 0 {
		c.MaxWeight = 8
	}
	if c.GradScale == 0 {
		c.GradScale = 100
	}
	if c.LogPClamp == 0 {
		c.LogPClamp = 20
	}
}

// Trainer runs CryptoNN training (Algorithm 2) on the server: it owns the
// plaintext model parameters, consumes encrypted batches, and touches
// inputs and labels only through the secure compute engine.
type Trainer struct {
	Model *nn.Model
	// Engine is the secure compute session: it carries the key-service
	// connection, the resolved public keys, the dot-key cache and the
	// discrete-log solver every secure step uses.
	Engine *securemat.Engine
	cfg    Config
}

// Result reports one training (or inference) step.
type Result struct {
	// Loss is the batch loss (NaN when not computed; see
	// Config.ComputeLoss).
	Loss float64
	// MaskedPreds are arg-max predictions in the label-mapped space; only
	// clients holding the LabelMap can translate them to true classes.
	MaskedPreds []int
	// Output is the model's output activation/logit matrix.
	Output *tensor.Dense
}

// NewTrainer assembles a trainer around a secure compute session. The
// engine must carry a discrete-log solver whose bound dominates every
// secure result; SolverBound helps pick one.
func NewTrainer(model *nn.Model, engine *securemat.Engine, cfg Config) (*Trainer, error) {
	if model == nil || engine == nil {
		return nil, errors.New("core: nil model or engine")
	}
	if engine.Solver() == nil {
		return nil, errors.New("core: engine has no dlog solver")
	}
	cfg.fillDefaults()
	return &Trainer{Model: model, Engine: engine, cfg: cfg}, nil
}

// SolverBound returns a discrete-log bound sufficient for CryptoNN
// training with the given codec: inner products of length dim with one
// operand bounded by maxA and the other by maxB (pre-encoding magnitudes),
// with headroom for the gradient pre-multiplier.
func SolverBound(codec *fixedpoint.Codec, dim int, maxA, maxB, gradScale float64) int64 {
	if codec == nil {
		codec = fixedpoint.Default()
	}
	if gradScale < 1 {
		gradScale = 100
	}
	f := float64(codec.Factor())
	perTerm := (maxA * f) * (maxB * f)
	return int64(math.Ceil(float64(dim)*perTerm*gradScale)) + 1
}

// clampEncode encodes a float matrix with magnitude clamping at limit.
func (t *Trainer) clampEncode(m *tensor.Dense, limit float64) ([][]int64, error) {
	clamped := m.Apply(func(v float64) float64 {
		if v > limit {
			return limit
		}
		if v < -limit {
			return -limit
		}
		return v
	})
	return t.cfg.Codec.EncodeMat(clamped.Rows2D())
}

func denseFromInt(m [][]int64, decode func(int64) float64) *tensor.Dense {
	out := tensor.NewDense(len(m), len(m[0]))
	for i, row := range m {
		for j, v := range row {
			out.Set(i, j, decode(v))
		}
	}
	return out
}

// secureFeedForward runs the dense first layer over ciphertexts:
// Z = decode(f(Wf·Xf)) + b.
func (t *Trainer) secureFeedForward(layer0 *nn.DenseLayer, enc *EncryptedBatch) (*tensor.Dense, error) {
	wInt, err := t.clampEncode(layer0.W, t.cfg.MaxWeight)
	if err != nil {
		return nil, fmt.Errorf("core: encoding W: %w", err)
	}
	zInt, err := t.Engine.Dot(enc.X, wInt, securemat.ComputeOptions{Parallelism: t.cfg.Parallelism})
	if err != nil {
		return nil, fmt.Errorf("core: secure feed-forward: %w", err)
	}
	z := denseFromInt(zInt, t.cfg.Codec.DecodeProduct)
	if err := z.AddColVector(layer0.B.Data); err != nil {
		return nil, err
	}
	return z, nil
}

// secureOutputDiff computes P − Y over the encrypted label matrix via
// element-wise FEBO subtraction: the scheme yields Y − P, which is negated
// after decoding.
func (t *Trainer) secureOutputDiff(enc *EncryptedBatch, p *tensor.Dense) (*tensor.Dense, error) {
	pInt, err := t.cfg.Codec.EncodeMat(p.Rows2D())
	if err != nil {
		return nil, fmt.Errorf("core: encoding P: %w", err)
	}
	diffInt, err := t.Engine.Elementwise(enc.Y, securemat.ElementwiseSub, pInt,
		securemat.ComputeOptions{Parallelism: t.cfg.Parallelism})
	if err != nil {
		return nil, fmt.Errorf("core: secure evaluation: %w", err)
	}
	// diffInt = Y − P at base scale; negate to get P − Y.
	return denseFromInt(diffInt, func(v int64) float64 { return -t.cfg.Codec.Decode(v) }), nil
}

// secureCrossEntropy computes L = −(1/m)Σ_j ⟨y_j, log p_j⟩ via FEIP over
// the encrypted label columns (§III-E2).
func (t *Trainer) secureCrossEntropy(enc *EncryptedBatch, p *tensor.Dense) (float64, error) {
	mpk, err := t.Engine.FEIPPublic(enc.Classes)
	if err != nil {
		return 0, err
	}
	logP := p.Apply(func(v float64) float64 {
		lp := math.Log(math.Max(v, math.Exp(-t.cfg.LogPClamp)))
		return lp
	})
	var total float64
	for j := 0; j < enc.N; j++ {
		vec, err := t.cfg.Codec.EncodeVec(logP.Col(j))
		if err != nil {
			return 0, fmt.Errorf("core: encoding log p: %w", err)
		}
		fk, err := t.Engine.Keys().IPKey(vec)
		if err != nil {
			return 0, fmt.Errorf("core: loss key for sample %d: %w", j, err)
		}
		ip, err := feip.Decrypt(mpk, enc.Y.ColCts[j], fk, vec, t.Engine.Solver())
		if err != nil {
			return 0, fmt.Errorf("core: secure loss sample %d: %w", j, err)
		}
		total += t.cfg.Codec.DecodeProduct(ip)
	}
	return -total / float64(enc.N), nil
}

// secureFirstLayerGrad computes dW = dZ·Xᵀ over the row-oriented
// ciphertexts and accumulates it (plus the plaintext bias gradient) into
// layer0.
func (t *Trainer) secureFirstLayerGrad(layer0 *nn.DenseLayer, enc *EncryptedBatch, dZ *tensor.Dense) error {
	scaled := dZ.Scale(t.cfg.GradScale)
	dzInt, err := t.clampEncode(scaled, t.cfg.MaxWeight*t.cfg.GradScale)
	if err != nil {
		return fmt.Errorf("core: encoding dZ: %w", err)
	}
	// dZ is unique per batch by construction — derive its keys outside the
	// session cache so gradient traffic cannot evict a serving model's W.
	keys, err := t.Engine.DotKeysUncached(dzInt)
	if err != nil {
		return fmt.Errorf("core: secure gradient keys: %w", err)
	}
	gInt, err := t.Engine.SecureDotRows(enc.X, keys, dzInt, securemat.ComputeOptions{Parallelism: t.cfg.Parallelism})
	if err != nil {
		return fmt.Errorf("core: secure gradient: %w", err)
	}
	dW := denseFromInt(gInt, func(v int64) float64 {
		return t.cfg.Codec.DecodeProduct(v) / t.cfg.GradScale
	})
	if err := layer0.GradW.AddInPlace(dW); err != nil {
		return err
	}
	for i, v := range dZ.SumCols() {
		layer0.GradB.Data[i] += v
	}
	return nil
}

// headGradient turns model output and the securely computed P − Y into
// (loss, gradient at the model output). It dispatches on the model's loss.
func (t *Trainer) headGradient(enc *EncryptedBatch, out *tensor.Dense) (float64, *tensor.Dense, *tensor.Dense, error) {
	m := float64(enc.N)
	switch t.Model.Loss.(type) {
	case nn.SoftmaxCrossEntropy:
		p := nn.Softmax(out)
		diff, err := t.secureOutputDiff(enc, p) // P − Y
		if err != nil {
			return 0, nil, nil, err
		}
		loss := math.NaN()
		if t.cfg.ComputeLoss {
			loss, err = t.secureCrossEntropy(enc, p)
			if err != nil {
				return 0, nil, nil, err
			}
		}
		return loss, diff.Scale(1 / m), p, nil
	case nn.MSE:
		diff, err := t.secureOutputDiff(enc, out) // Ŷ − Y
		if err != nil {
			return 0, nil, nil, err
		}
		var loss float64
		for _, v := range diff.Data {
			loss += v * v
		}
		return loss / (2 * m), diff.Scale(1 / m), out, nil
	default:
		return 0, nil, nil, fmt.Errorf("core: unsupported loss %q for secure evaluation", t.Model.Loss.Name())
	}
}

// TrainBatch runs one CryptoNN iteration (Algorithm 2) on an encrypted
// batch for a model whose first layer is fully connected.
func (t *Trainer) TrainBatch(enc *EncryptedBatch, opt nn.Optimizer) (*Result, error) {
	layer0, ok := t.Model.Layers[0].(*nn.DenseLayer)
	if !ok {
		return nil, fmt.Errorf("core: first layer is %s; use TrainConvBatch for convolutional models", t.Model.Layers[0].Name())
	}
	if enc.Features != layer0.In {
		return nil, fmt.Errorf("core: batch has %d features, layer expects %d", enc.Features, layer0.In)
	}
	t.Model.ZeroGrad()

	// Lines 4–5: secure feed-forward, then line 6: normal feed-forward.
	z, err := t.secureFeedForward(layer0, enc)
	if err != nil {
		return nil, err
	}
	out, err := t.Model.ForwardFrom(1, z)
	if err != nil {
		return nil, err
	}

	// Lines 7–9: secure back-propagation / evaluation.
	loss, gradOut, probs, err := t.headGradient(enc, out)
	if err != nil {
		return nil, err
	}

	// Line 10: normal back-propagation down to layer 1 ...
	dZ0, err := t.Model.BackwardTo(1, gradOut)
	if err != nil {
		return nil, err
	}
	// ... plus the secure first-layer gradient (DESIGN.md §4).
	if err := t.secureFirstLayerGrad(layer0, enc, dZ0); err != nil {
		return nil, err
	}

	// Line 11: parameter update.
	if err := t.Model.ApplyStep(opt); err != nil {
		return nil, err
	}
	return &Result{Loss: loss, MaskedPreds: argmaxCols(probs), Output: out}, nil
}

// Predict runs only the secure feed-forward plus the normal forward pass:
// FE-based prediction over encrypted input (§III-D "Prediction").
func (t *Trainer) Predict(enc *EncryptedBatch) (*Result, error) {
	layer0, ok := t.Model.Layers[0].(*nn.DenseLayer)
	if !ok {
		return nil, fmt.Errorf("core: first layer is %s; use PredictConv", t.Model.Layers[0].Name())
	}
	if enc.Features != layer0.In {
		return nil, fmt.Errorf("core: batch has %d features, layer expects %d", enc.Features, layer0.In)
	}
	z, err := t.secureFeedForward(layer0, enc)
	if err != nil {
		return nil, err
	}
	out, err := t.Model.ForwardFrom(1, z)
	if err != nil {
		return nil, err
	}
	return &Result{Loss: math.NaN(), MaskedPreds: argmaxCols(out), Output: out}, nil
}

func argmaxCols(m *tensor.Dense) []int {
	preds := make([]int, m.Cols)
	for j := 0; j < m.Cols; j++ {
		preds[j] = m.ArgMaxCol(j)
	}
	return preds
}
