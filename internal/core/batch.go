package core

import (
	"errors"
	"fmt"

	"cryptonn/internal/feip"
	"cryptonn/internal/fixedpoint"
	"cryptonn/internal/securemat"
	"cryptonn/internal/tensor"
)

// Client is the data-owner side of Fig. 1: it holds the fixed-point codec,
// the label map and a secure compute session (public keys only — clients
// never decrypt, so the engine needs no solver) and produces encrypted
// batches for the server.
type Client struct {
	Engine *securemat.Engine
	Codec  *fixedpoint.Codec
	Labels *LabelMap
}

// NewClient assembles a client; a nil codec selects the paper's
// two-decimal default and a nil label map selects identity masking.
func NewClient(engine *securemat.Engine, codec *fixedpoint.Codec, labels *LabelMap) (*Client, error) {
	if engine == nil {
		return nil, errors.New("core: nil engine")
	}
	if codec == nil {
		codec = fixedpoint.Default()
	}
	return &Client{Engine: engine, Codec: codec, Labels: labels}, nil
}

// EncryptedBatch is one training batch as the server receives it: inputs
// encrypted column- and row-wise under FEIP (forward dot and gradient
// dot), labels encrypted element-wise under FEBO (for P − Y) and
// column-wise under FEIP (for the cross-entropy inner product).
type EncryptedBatch struct {
	// X holds the encrypted input matrix (features × batch).
	X *securemat.EncryptedMatrix
	// Y holds the encrypted one-hot label matrix (classes × batch),
	// already label-mapped.
	Y *securemat.EncryptedMatrix
	// Features, Classes and N record the plaintext dimensions.
	Features, Classes, N int
}

// EncryptBatch encrypts a (features × batch) input matrix and a
// (classes × batch) one-hot label matrix for dense-first-layer training.
//
// The input is encrypted in both orientations (DESIGN.md §4) but without
// FEBO element ciphertexts (only dot-products touch X); the label is
// encrypted element-wise and column-wise (both secure back-propagation
// paths touch Y).
func (c *Client) EncryptBatch(x, y *tensor.Dense) (*EncryptedBatch, error) {
	if x.Cols != y.Cols {
		return nil, fmt.Errorf("core: %d samples but %d label columns", x.Cols, y.Cols)
	}
	xi, err := c.Codec.EncodeMat(x.Rows2D())
	if err != nil {
		return nil, fmt.Errorf("core: encoding inputs: %w", err)
	}
	encX, err := c.Engine.Encrypt(xi, securemat.EncryptOptions{SkipElems: true, WithRows: true})
	if err != nil {
		return nil, fmt.Errorf("core: encrypting inputs: %w", err)
	}
	yMasked, err := c.maskOneHot(y)
	if err != nil {
		return nil, err
	}
	yi, err := c.Codec.EncodeMat(yMasked.Rows2D())
	if err != nil {
		return nil, fmt.Errorf("core: encoding labels: %w", err)
	}
	encY, err := c.Engine.Encrypt(yi, securemat.EncryptOptions{})
	if err != nil {
		return nil, fmt.Errorf("core: encrypting labels: %w", err)
	}
	return &EncryptedBatch{
		X: encX, Y: encY,
		Features: x.Rows, Classes: y.Rows, N: x.Cols,
	}, nil
}

// SparseBatch is one prediction batch in coordinate form, the shape the
// extreme multi-label serving path moves: each sample column carries only
// its non-zero coordinates (feip.SparseCiphertext), and the server answers
// with per-sample top-k (label, value) pairs instead of a full logit row.
type SparseBatch struct {
	// X holds the sparse encrypted input matrix (features × batch).
	X *securemat.SparseEncryptedMatrix
	// Features, Classes and N record the plaintext dimensions.
	Features, Classes, N int
}

// EncryptSparseBatch encrypts a (features × batch) input matrix in
// coordinate form for top-k prediction serving. The density router applies
// per column (securemat.DefaultSparseThreshold), so accidentally dense
// columns are promoted to full width rather than shipped as a giant
// coordinate list. classes records the server-side label dimension the
// client expects (used by geometry-compatible coalescing).
func (c *Client) EncryptSparseBatch(x *tensor.Dense, classes int) (*SparseBatch, error) {
	if classes <= 0 {
		return nil, fmt.Errorf("core: class count must be positive, got %d", classes)
	}
	xi, err := c.Codec.EncodeMat(x.Rows2D())
	if err != nil {
		return nil, fmt.Errorf("core: encoding inputs: %w", err)
	}
	encX, err := c.Engine.EncryptSparse(xi, securemat.EncryptOptions{})
	if err != nil {
		return nil, fmt.Errorf("core: sparse-encrypting inputs: %w", err)
	}
	return &SparseBatch{X: encX, Features: x.Rows, Classes: classes, N: x.Cols}, nil
}

// maskOneHot permutes the rows of a one-hot label matrix by the label map.
func (c *Client) maskOneHot(y *tensor.Dense) (*tensor.Dense, error) {
	if c.Labels == nil {
		return y, nil
	}
	if c.Labels.Classes() != y.Rows {
		return nil, fmt.Errorf("core: label map over %d classes, labels have %d rows", c.Labels.Classes(), y.Rows)
	}
	out := tensor.NewDense(y.Rows, y.Cols)
	for i := 0; i < y.Rows; i++ {
		masked, err := c.Labels.Apply(i)
		if err != nil {
			return nil, err
		}
		for j := 0; j < y.Cols; j++ {
			out.Set(masked, j, y.At(i, j))
		}
	}
	return out, nil
}

// EncryptedConvBatch is one training batch for a convolutional first
// layer, pre-processed per Algorithm 3: for every sample, the im2col
// window matrix is encrypted column-wise (one FEIP ciphertext per sliding
// window, for the forward convolution) and row-wise (one ciphertext per
// kernel position, for the filter gradient).
type EncryptedConvBatch struct {
	// Windows[s][w] encrypts window w of sample s (vector length
	// C·K·K).
	Windows [][]*feip.Ciphertext
	// Positions[s][a] encrypts kernel-position row a of sample s (vector
	// length = number of windows).
	Positions [][]*feip.Ciphertext
	// Y is the encrypted label matrix, as in EncryptedBatch.
	Y *securemat.EncryptedMatrix
	// Geometry of the pre-processing.
	C, H, W, K, Stride, Pad int
	OutH, OutW              int
	Classes, N              int
}

// WindowLen returns the length of each window vector.
func (b *EncryptedConvBatch) WindowLen() int { return b.C * b.K * b.K }

// NumWindows returns the number of sliding windows per sample.
func (b *EncryptedConvBatch) NumWindows() int { return b.OutH * b.OutW }

// EncryptConvBatch pre-processes a batch for secure convolution
// (Algorithm 3 lines 9–16): the client learns the padding strategy and
// filter size from the server's architecture and encrypts each sliding
// window as a vector.
func (c *Client) EncryptConvBatch(x, y *tensor.Dense, inC, inH, inW, k, stride, pad int) (*EncryptedConvBatch, error) {
	if x.Cols != y.Cols {
		return nil, fmt.Errorf("core: %d samples but %d label columns", x.Cols, y.Cols)
	}
	if x.Rows != inC*inH*inW {
		return nil, fmt.Errorf("core: %d input features for %dx%dx%d geometry", x.Rows, inC, inH, inW)
	}
	outH, err := tensor.ConvOutSize(inH, k, stride, pad)
	if err != nil {
		return nil, fmt.Errorf("core: conv geometry: %w", err)
	}
	outW, err := tensor.ConvOutSize(inW, k, stride, pad)
	if err != nil {
		return nil, fmt.Errorf("core: conv geometry: %w", err)
	}
	numWindows := outH * outW
	windowLen := inC * k * k
	winMPK, err := c.Engine.FEIPPublic(windowLen)
	if err != nil {
		return nil, err
	}
	posMPK, err := c.Engine.FEIPPublic(numWindows)
	if err != nil {
		return nil, err
	}
	winMPK.Precompute()
	posMPK.Precompute()

	batch := &EncryptedConvBatch{
		Windows:   make([][]*feip.Ciphertext, x.Cols),
		Positions: make([][]*feip.Ciphertext, x.Cols),
		C:         inC, H: inH, W: inW, K: k, Stride: stride, Pad: pad,
		OutH: outH, OutW: outW,
		Classes: y.Rows, N: x.Cols,
	}
	for s := 0; s < x.Cols; s++ {
		vol, err := tensor.VolumeFromFlat(x.Col(s), inC, inH, inW)
		if err != nil {
			return nil, err
		}
		col, err := tensor.Im2Col(vol, k, k, stride, pad)
		if err != nil {
			return nil, fmt.Errorf("core: im2col sample %d: %w", s, err)
		}
		// Encrypt each window (column of col).
		batch.Windows[s] = make([]*feip.Ciphertext, numWindows)
		for w := 0; w < numWindows; w++ {
			vec, err := c.Codec.EncodeVec(col.Col(w))
			if err != nil {
				return nil, fmt.Errorf("core: encoding window: %w", err)
			}
			ct, err := feip.Encrypt(winMPK, vec, nil)
			if err != nil {
				return nil, fmt.Errorf("core: encrypting window: %w", err)
			}
			batch.Windows[s][w] = ct
		}
		// Encrypt each kernel-position row (row of col).
		batch.Positions[s] = make([]*feip.Ciphertext, windowLen)
		for a := 0; a < windowLen; a++ {
			vec, err := c.Codec.EncodeVec(col.Row(a))
			if err != nil {
				return nil, fmt.Errorf("core: encoding position row: %w", err)
			}
			ct, err := feip.Encrypt(posMPK, vec, nil)
			if err != nil {
				return nil, fmt.Errorf("core: encrypting position row: %w", err)
			}
			batch.Positions[s][a] = ct
		}
	}

	yMasked, err := c.maskOneHot(y)
	if err != nil {
		return nil, err
	}
	yi, err := c.Codec.EncodeMat(yMasked.Rows2D())
	if err != nil {
		return nil, fmt.Errorf("core: encoding labels: %w", err)
	}
	batch.Y, err = c.Engine.Encrypt(yi, securemat.EncryptOptions{})
	if err != nil {
		return nil, fmt.Errorf("core: encrypting labels: %w", err)
	}
	return batch, nil
}
