// Package core implements the CryptoNN framework (the paper's primary
// contribution, Algorithm 2): training a neural network over functionally
// encrypted data.
//
// Per training iteration the framework inserts two secure computations
// into an otherwise ordinary training step:
//
//   - secure feed-forward: the first layer's W·X (dense) or convolution
//     (Algorithm 3) is evaluated over the encrypted inputs via the secure
//     matrix computation scheme — the server obtains the plaintext
//     pre-activations without ever seeing X;
//   - secure back-propagation / evaluation: the output-layer computations
//     involving the encrypted label Y — the gradient P − Y (element-wise
//     subtraction under FEBO) and the cross-entropy loss −⟨y, log p⟩
//     (inner product under FEIP) — are likewise evaluated over ciphertexts.
//
// Everything in between — the hidden layers, the optimizer — is the
// untouched plaintext machinery of internal/nn, which is precisely the
// paper's point: CryptoNN adapts to any model whose boundary computations
// reduce to the permitted function set F.
//
// One gap in the paper is filled explicitly here (see DESIGN.md §4): the
// first layer's weight gradient dW = dZ·Xᵀ also involves the encrypted X.
// We realize it with the same FEIP machinery over a second, row-oriented
// encryption of X (securemat.Engine.SecureDotRows), so training truly
// never touches plaintext inputs.
//
// Division of roles follows Fig. 1: clients produce EncryptedBatch values
// (EncryptBatch / EncryptConvBatch) and hold the LabelMap; the server runs
// the Trainer. Both sides talk to the authority only through a
// securemat.Engine session wrapping a securemat.KeyService.
//
// # Performance: the exponentiation engine
//
// Every secure computation above bottoms out in group exponentiations, and
// nearly all of them hit internal/group's fixed-base and multi-exponentia-
// tion engine rather than generic square-and-multiply: g^{x_i} plaintext
// encodings come from a dense per-generator cache, h_i^r encryption powers
// from per-public-key windowed tables (built once per key, shared across
// the worker goroutines of the parallel decryption path), FEIP's
// Π ct_i^{y_i} from Straus interleaved multi-exponentiation, and the
// bounded-dlog recovery from an allocation-free giant-step loop. See the
// internal/group package comment for the design (window sizes, where
// tables live, the thread-safety contract).
package core
