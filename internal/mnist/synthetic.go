package mnist

import (
	"fmt"
	"math"
	"math/rand"

	"cryptonn/internal/tensor"
)

// Synthetic digit generation.
//
// Each class is a seven-segment digit skeleton (the unambiguous standard
// display encoding) rendered as anti-aliased strokes onto a 28×28 canvas,
// then perturbed per sample with a random affine transform (translation,
// scale, rotation, shear) and additive pixel noise. The generator is fully
// deterministic given (n, seed).
//
// This is the offline substitute for MNIST (DESIGN.md §4): a 10-class
// 28×28 grayscale problem that a LeNet-style network learns well but not
// trivially, which is all the paper's experiments require — they compare a
// plaintext model against the same model trained through the secure steps
// on identical data.

// segment is a stroke between two points in the unit digit box.
type segment struct{ x0, y0, x1, y1 float64 }

// Seven-segment geometry in a unit box: x ∈ [0,1], y ∈ [0,1] top-down.
var segments = map[rune]segment{
	'a': {0, 0, 1, 0},     // top
	'b': {1, 0, 1, 0.5},   // top right
	'c': {1, 0.5, 1, 1},   // bottom right
	'd': {0, 1, 1, 1},     // bottom
	'e': {0, 0.5, 0, 1},   // bottom left
	'f': {0, 0, 0, 0.5},   // top left
	'g': {0, 0.5, 1, 0.5}, // middle
}

// digitSegments is the standard seven-segment encoding of 0–9.
var digitSegments = [Classes]string{
	0: "abcdef",
	1: "bc",
	2: "abged",
	3: "abgcd",
	4: "fgbc",
	5: "afgcd",
	6: "afgedc",
	7: "abc",
	8: "abcdefg",
	9: "abcfgd",
}

// renderParams is the per-sample jitter.
type renderParams struct {
	dx, dy     float64 // translation in pixels
	scale      float64
	rot        float64 // radians
	shear      float64
	thickness  float64 // stroke sigma in pixels
	noiseSigma float64
}

func randomParams(rng *rand.Rand) renderParams {
	return renderParams{
		dx:         (rng.Float64()*2 - 1) * 2.0,
		dy:         (rng.Float64()*2 - 1) * 2.0,
		scale:      0.85 + rng.Float64()*0.3,
		rot:        (rng.Float64()*2 - 1) * 0.18,
		shear:      (rng.Float64()*2 - 1) * 0.15,
		thickness:  0.8 + rng.Float64()*0.5,
		noiseSigma: 0.04,
	}
}

// distToSegment returns the distance from point (px, py) to segment s.
func distToSegment(px, py float64, s segment) float64 {
	vx, vy := s.x1-s.x0, s.y1-s.y0
	wx, wy := px-s.x0, py-s.y0
	c1 := vx*wx + vy*wy
	if c1 <= 0 {
		return math.Hypot(px-s.x0, py-s.y0)
	}
	c2 := vx*vx + vy*vy
	if c2 <= c1 {
		return math.Hypot(px-s.x1, py-s.y1)
	}
	t := c1 / c2
	return math.Hypot(px-(s.x0+t*vx), py-(s.y0+t*vy))
}

// renderDigit draws one jittered digit into a 784-length buffer.
func renderDigit(digit int, p renderParams, rng *rand.Rand, out []float64) {
	// Digit box inside the canvas: width 12px, height 18px, centered.
	const boxW, boxH = 12.0, 18.0
	cx, cy := float64(Side)/2, float64(Side)/2
	cos, sin := math.Cos(p.rot), math.Sin(p.rot)

	// Transform each segment's endpoints from unit box to canvas.
	segs := make([]segment, 0, 7)
	for _, r := range digitSegments[digit] {
		s := segments[r]
		tr := func(x, y float64) (float64, float64) {
			// unit -> centered box
			bx := (x - 0.5) * boxW * p.scale
			by := (y - 0.5) * boxH * p.scale
			// shear then rotate
			bx += p.shear * by
			rx := bx*cos - by*sin
			ry := bx*sin + by*cos
			return cx + rx + p.dx, cy + ry + p.dy
		}
		x0, y0 := tr(s.x0, s.y0)
		x1, y1 := tr(s.x1, s.y1)
		segs = append(segs, segment{x0, y0, x1, y1})
	}

	inv2s2 := 1 / (2 * p.thickness * p.thickness)
	for i := 0; i < Side; i++ {
		for j := 0; j < Side; j++ {
			px, py := float64(j), float64(i)
			var best float64
			for _, s := range segs {
				d := distToSegment(px, py, s)
				v := math.Exp(-d * d * inv2s2)
				if v > best {
					best = v
				}
			}
			v := best + rng.NormFloat64()*p.noiseSigma
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			out[i*Side+j] = v
		}
	}
}

// Synthetic generates n deterministic pseudo-MNIST samples from seed, with
// a balanced class distribution (shuffled).
func Synthetic(n int, seed int64) (*Dataset, error) {
	if n <= 0 {
		return nil, fmt.Errorf("%w: sample count %d", ErrFormat, n)
	}
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{Images: tensor.NewDense(Pixels, n), Labels: make([]int, n)}
	buf := make([]float64, Pixels)
	for j := 0; j < n; j++ {
		digit := j % Classes
		renderDigit(digit, randomParams(rng), rng, buf)
		for i, v := range buf {
			d.Images.Set(i, j, v)
		}
		d.Labels[j] = digit
	}
	d.Shuffle(rng)
	return d, nil
}
