// Package mnist supplies the image-classification workload of the paper's
// evaluation (§IV-B3: LeNet-5 / CryptoCNN on MNIST).
//
// Two sources are supported:
//
//   - the real MNIST IDX files (idx.go) when present on disk — the exact
//     dataset the paper trains on;
//   - a deterministic synthetic digit generator (synthetic.go) used when
//     the dataset is unavailable (this reproduction runs offline). The
//     generator renders seven-segment digit skeletons with per-sample
//     affine jitter and pixel noise, giving a 10-class 28×28 problem with
//     the same interface and the same role in the experiments: both the
//     plaintext baseline and CryptoCNN train on identical data, so the
//     accuracy-parity and overhead measurements are preserved (DESIGN.md §4).
package mnist

import (
	"errors"
	"fmt"
	"math/rand"

	"cryptonn/internal/nn"
	"cryptonn/internal/tensor"
)

// Side and Classes mirror the MNIST geometry.
const (
	Side    = 28
	Pixels  = Side * Side
	Classes = 10
)

// ErrFormat reports a malformed IDX file or inconsistent dataset.
var ErrFormat = errors.New("mnist: invalid format")

// Dataset is a set of 28×28 grayscale images with integer labels. Images
// are stored as a (784 × N) matrix with one flattened image per column,
// pixel values in [0, 1] — the orientation the network and the secure
// matrix encryption both consume.
type Dataset struct {
	Images *tensor.Dense
	Labels []int
}

// N returns the number of samples.
func (d *Dataset) N() int { return len(d.Labels) }

// Validate checks internal consistency.
func (d *Dataset) Validate() error {
	if d.Images == nil || d.Images.Rows != Pixels {
		return fmt.Errorf("%w: images must have %d rows", ErrFormat, Pixels)
	}
	if d.Images.Cols != len(d.Labels) {
		return fmt.Errorf("%w: %d images, %d labels", ErrFormat, d.Images.Cols, len(d.Labels))
	}
	for i, l := range d.Labels {
		if l < 0 || l >= Classes {
			return fmt.Errorf("%w: label %d at index %d", ErrFormat, l, i)
		}
	}
	return nil
}

// OneHot returns the (Classes × N) one-hot label matrix.
func (d *Dataset) OneHot() *tensor.Dense {
	y := tensor.NewDense(Classes, d.N())
	for j, l := range d.Labels {
		y.Set(l, j, 1)
	}
	return y
}

// Batch returns the half-open sample range [from, to) as an image matrix
// and one-hot label matrix.
func (d *Dataset) Batch(from, to int) (*tensor.Dense, *tensor.Dense, error) {
	if from < 0 || to > d.N() || from >= to {
		return nil, nil, fmt.Errorf("%w: batch [%d,%d) of %d samples", ErrFormat, from, to, d.N())
	}
	n := to - from
	x := tensor.NewDense(Pixels, n)
	y := tensor.NewDense(Classes, n)
	for j := 0; j < n; j++ {
		for i := 0; i < Pixels; i++ {
			x.Set(i, j, d.Images.At(i, from+j))
		}
		y.Set(d.Labels[from+j], j, 1)
	}
	return x, y, nil
}

// Shuffle permutes samples in place using rng.
func (d *Dataset) Shuffle(rng *rand.Rand) {
	rng.Shuffle(d.N(), func(a, b int) {
		d.Labels[a], d.Labels[b] = d.Labels[b], d.Labels[a]
		for i := 0; i < Pixels; i++ {
			va, vb := d.Images.At(i, a), d.Images.At(i, b)
			d.Images.Set(i, a, vb)
			d.Images.Set(i, b, va)
		}
	})
}

// Subset returns the first n samples as a shallow-copied dataset.
func (d *Dataset) Subset(n int) (*Dataset, error) {
	if n <= 0 || n > d.N() {
		return nil, fmt.Errorf("%w: subset of %d from %d samples", ErrFormat, n, d.N())
	}
	x := tensor.NewDense(Pixels, n)
	labels := make([]int, n)
	for j := 0; j < n; j++ {
		labels[j] = d.Labels[j]
		for i := 0; i < Pixels; i++ {
			x.Set(i, j, d.Images.At(i, j))
		}
	}
	return &Dataset{Images: x, Labels: labels}, nil
}

// Compile-time guard: dataset geometry matches the network builders.
var _ = [1]struct{}{}[Pixels-nn.MNISTInputSize]
