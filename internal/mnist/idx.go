package mnist

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"cryptonn/internal/tensor"
)

// IDX magic numbers: unsigned-byte data with 3 dimensions (images) or 1
// dimension (labels), per LeCun's file format specification.
const (
	magicImages = 0x00000803
	magicLabels = 0x00000801
)

// ReadImages parses an IDX3 image file (uncompressed) into a Dataset-ready
// pixel matrix; labels must be attached separately.
func ReadImages(r io.Reader) (*Dataset, error) {
	var header [16]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return nil, fmt.Errorf("%w: reading image header: %v", ErrFormat, err)
	}
	magic := binary.BigEndian.Uint32(header[0:4])
	if magic != magicImages {
		return nil, fmt.Errorf("%w: image magic %#x", ErrFormat, magic)
	}
	n := int(binary.BigEndian.Uint32(header[4:8]))
	rows := int(binary.BigEndian.Uint32(header[8:12]))
	cols := int(binary.BigEndian.Uint32(header[12:16]))
	if rows != Side || cols != Side {
		return nil, fmt.Errorf("%w: image size %dx%d, want %dx%d", ErrFormat, rows, cols, Side, Side)
	}
	if n <= 0 || n > 10_000_000 {
		return nil, fmt.Errorf("%w: implausible image count %d", ErrFormat, n)
	}
	d := &Dataset{Images: tensor.NewDense(Pixels, n), Labels: make([]int, n)}
	buf := make([]byte, Pixels)
	for j := 0; j < n; j++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("%w: reading image %d: %v", ErrFormat, j, err)
		}
		for i, b := range buf {
			d.Images.Set(i, j, float64(b)/255.0)
		}
	}
	return d, nil
}

// ReadLabels parses an IDX1 label file and attaches labels to d.
func ReadLabels(r io.Reader, d *Dataset) error {
	var header [8]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return fmt.Errorf("%w: reading label header: %v", ErrFormat, err)
	}
	magic := binary.BigEndian.Uint32(header[0:4])
	if magic != magicLabels {
		return fmt.Errorf("%w: label magic %#x", ErrFormat, magic)
	}
	n := int(binary.BigEndian.Uint32(header[4:8]))
	if n != d.Images.Cols {
		return fmt.Errorf("%w: %d labels for %d images", ErrFormat, n, d.Images.Cols)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return fmt.Errorf("%w: reading labels: %v", ErrFormat, err)
	}
	for i, b := range buf {
		if int(b) >= Classes {
			return fmt.Errorf("%w: label %d at index %d", ErrFormat, b, i)
		}
		d.Labels[i] = int(b)
	}
	return nil
}

// WriteImages emits an IDX3 image file (used by round-trip tests and by
// tools exporting synthetic data in the real format).
func WriteImages(w io.Writer, d *Dataset) error {
	var header [16]byte
	binary.BigEndian.PutUint32(header[0:4], magicImages)
	binary.BigEndian.PutUint32(header[4:8], uint32(d.N()))
	binary.BigEndian.PutUint32(header[8:12], Side)
	binary.BigEndian.PutUint32(header[12:16], Side)
	if _, err := w.Write(header[:]); err != nil {
		return fmt.Errorf("mnist: writing image header: %w", err)
	}
	buf := make([]byte, Pixels)
	for j := 0; j < d.N(); j++ {
		for i := 0; i < Pixels; i++ {
			v := d.Images.At(i, j)
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			buf[i] = byte(v*255 + 0.5)
		}
		if _, err := w.Write(buf); err != nil {
			return fmt.Errorf("mnist: writing image %d: %w", j, err)
		}
	}
	return nil
}

// WriteLabels emits an IDX1 label file.
func WriteLabels(w io.Writer, d *Dataset) error {
	var header [8]byte
	binary.BigEndian.PutUint32(header[0:4], magicLabels)
	binary.BigEndian.PutUint32(header[4:8], uint32(d.N()))
	if _, err := w.Write(header[:]); err != nil {
		return fmt.Errorf("mnist: writing label header: %w", err)
	}
	buf := make([]byte, d.N())
	for i, l := range d.Labels {
		buf[i] = byte(l)
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("mnist: writing labels: %w", err)
	}
	return nil
}

// openMaybeGzip opens path, transparently decompressing ".gz" files. The
// returned closer releases both the file and any gzip reader.
func openMaybeGzip(path string) (io.Reader, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	if !strings.HasSuffix(path, ".gz") {
		return bufio.NewReader(f), f.Close, nil
	}
	gz, err := gzip.NewReader(bufio.NewReader(f))
	if err != nil {
		closeErr := f.Close()
		if closeErr != nil {
			return nil, nil, fmt.Errorf("mnist: %v (also failed to close: %v)", err, closeErr)
		}
		return nil, nil, fmt.Errorf("mnist: opening gzip %s: %w", path, err)
	}
	closer := func() error {
		if err := gz.Close(); err != nil {
			_ = f.Close()
			return err
		}
		return f.Close()
	}
	return gz, closer, nil
}

// findFile returns the first existing candidate among name and name+".gz".
func findFile(dir, name string) (string, bool) {
	for _, cand := range []string{name, name + ".gz"} {
		p := filepath.Join(dir, cand)
		if _, err := os.Stat(p); err == nil {
			return p, true
		}
	}
	return "", false
}

// LoadDir loads the standard MNIST file pair (train or t10k) from dir,
// accepting gzipped or plain files.
func LoadDir(dir, prefix string) (*Dataset, error) {
	imgPath, ok := findFile(dir, prefix+"-images-idx3-ubyte")
	if !ok {
		return nil, fmt.Errorf("mnist: no %s image file in %s", prefix, dir)
	}
	lblPath, ok := findFile(dir, prefix+"-labels-idx1-ubyte")
	if !ok {
		return nil, fmt.Errorf("mnist: no %s label file in %s", prefix, dir)
	}
	imgR, imgClose, err := openMaybeGzip(imgPath)
	if err != nil {
		return nil, err
	}
	defer func() { _ = imgClose() }()
	d, err := ReadImages(imgR)
	if err != nil {
		return nil, fmt.Errorf("mnist: %s: %w", imgPath, err)
	}
	lblR, lblClose, err := openMaybeGzip(lblPath)
	if err != nil {
		return nil, err
	}
	defer func() { _ = lblClose() }()
	if err := ReadLabels(lblR, d); err != nil {
		return nil, fmt.Errorf("mnist: %s: %w", lblPath, err)
	}
	return d, nil
}

// Load returns the paper's training workload: real MNIST from the
// directory in the MNIST_DIR environment variable when available,
// otherwise n synthetic samples from the given seed. The returned bool
// reports whether real data was used.
func Load(train bool, n int, seed int64) (*Dataset, bool, error) {
	prefix := "train"
	if !train {
		prefix = "t10k"
	}
	if dir := os.Getenv("MNIST_DIR"); dir != "" {
		d, err := LoadDir(dir, prefix)
		if err == nil {
			if n > 0 && n < d.N() {
				sub, err := d.Subset(n)
				if err != nil {
					return nil, false, err
				}
				return sub, true, nil
			}
			return d, true, nil
		}
	}
	d, err := Synthetic(n, seed)
	if err != nil {
		return nil, false, err
	}
	return d, false, nil
}
