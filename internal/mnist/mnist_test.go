package mnist

import (
	"bytes"
	"compress/gzip"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"cryptonn/internal/nn"
)

func TestSyntheticBasics(t *testing.T) {
	d, err := Synthetic(100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.N() != 100 {
		t.Errorf("N = %d", d.N())
	}
	// Pixel range.
	for _, v := range d.Images.Data {
		if v < 0 || v > 1 {
			t.Fatalf("pixel %v out of [0,1]", v)
		}
	}
	// Balanced classes (10 samples per class for n=100).
	counts := make([]int, Classes)
	for _, l := range d.Labels {
		counts[l]++
	}
	for c, n := range counts {
		if n != 10 {
			t.Errorf("class %d has %d samples, want 10", c, n)
		}
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a, err := Synthetic(20, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthetic(20, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Images.Data {
		if a.Images.Data[i] != b.Images.Data[i] {
			t.Fatal("same seed must give identical images")
		}
	}
	c, err := Synthetic(20, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Images.Data {
		if a.Images.Data[i] != c.Images.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestSyntheticRejectsBadCount(t *testing.T) {
	if _, err := Synthetic(0, 1); err == nil {
		t.Error("zero samples should fail")
	}
}

func TestSyntheticDigitsDifferAcrossClasses(t *testing.T) {
	// Mean images of different digits must be far apart; a degenerate
	// generator (all classes alike) would break every experiment.
	d, err := Synthetic(200, 3)
	if err != nil {
		t.Fatal(err)
	}
	means := make([][]float64, Classes)
	counts := make([]int, Classes)
	for c := range means {
		means[c] = make([]float64, Pixels)
	}
	for j := 0; j < d.N(); j++ {
		l := d.Labels[j]
		counts[l]++
		for i := 0; i < Pixels; i++ {
			means[l][i] += d.Images.At(i, j)
		}
	}
	for c := range means {
		for i := range means[c] {
			means[c][i] /= float64(counts[c])
		}
	}
	var dist float64
	for i := range means[1] {
		diff := means[1][i] - means[8][i]
		dist += diff * diff
	}
	if dist < 1 {
		t.Errorf("digit 1 and 8 mean images too close: %v", dist)
	}
}

func TestOneHotAndBatch(t *testing.T) {
	d, err := Synthetic(30, 2)
	if err != nil {
		t.Fatal(err)
	}
	y := d.OneHot()
	if y.Rows != Classes || y.Cols != 30 {
		t.Fatalf("one-hot shape %dx%d", y.Rows, y.Cols)
	}
	for j := 0; j < 30; j++ {
		var sum float64
		for i := 0; i < Classes; i++ {
			sum += y.At(i, j)
		}
		if sum != 1 || y.At(d.Labels[j], j) != 1 {
			t.Fatalf("column %d not one-hot", j)
		}
	}
	x, yb, err := d.Batch(5, 15)
	if err != nil {
		t.Fatal(err)
	}
	if x.Cols != 10 || yb.Cols != 10 {
		t.Error("batch size wrong")
	}
	if x.At(0, 0) != d.Images.At(0, 5) {
		t.Error("batch misaligned")
	}
	if _, _, err := d.Batch(20, 10); err == nil {
		t.Error("inverted batch range should fail")
	}
	if _, _, err := d.Batch(0, 99); err == nil {
		t.Error("overlong batch should fail")
	}
}

func TestShuffleKeepsPairs(t *testing.T) {
	d, err := Synthetic(50, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Tag each image's first pixel with its label for pairing detection.
	for j := 0; j < d.N(); j++ {
		d.Images.Set(0, j, float64(d.Labels[j])/100.0)
	}
	d.Shuffle(rand.New(rand.NewSource(1)))
	for j := 0; j < d.N(); j++ {
		if d.Images.At(0, j) != float64(d.Labels[j])/100.0 {
			t.Fatal("shuffle broke image-label pairing")
		}
	}
}

func TestSubset(t *testing.T) {
	d, err := Synthetic(40, 5)
	if err != nil {
		t.Fatal(err)
	}
	s, err := d.Subset(10)
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 10 {
		t.Errorf("subset N = %d", s.N())
	}
	if s.Labels[3] != d.Labels[3] || s.Images.At(100, 3) != d.Images.At(100, 3) {
		t.Error("subset content mismatch")
	}
	if _, err := d.Subset(0); err == nil {
		t.Error("zero subset should fail")
	}
	if _, err := d.Subset(41); err == nil {
		t.Error("oversized subset should fail")
	}
}

func TestIDXRoundTrip(t *testing.T) {
	d, err := Synthetic(25, 6)
	if err != nil {
		t.Fatal(err)
	}
	var imgBuf, lblBuf bytes.Buffer
	if err := WriteImages(&imgBuf, d); err != nil {
		t.Fatal(err)
	}
	if err := WriteLabels(&lblBuf, d); err != nil {
		t.Fatal(err)
	}
	back, err := ReadImages(&imgBuf)
	if err != nil {
		t.Fatal(err)
	}
	if err := ReadLabels(&lblBuf, back); err != nil {
		t.Fatal(err)
	}
	if back.N() != d.N() {
		t.Fatalf("round trip N = %d", back.N())
	}
	for j := 0; j < d.N(); j++ {
		if back.Labels[j] != d.Labels[j] {
			t.Fatalf("label %d mismatch", j)
		}
	}
	// Pixels quantised to 1/255; allow that error.
	for i := 0; i < Pixels; i++ {
		diff := back.Images.At(i, 0) - d.Images.At(i, 0)
		if diff > 1.0/254 || diff < -1.0/254 {
			t.Fatalf("pixel %d: %v vs %v", i, back.Images.At(i, 0), d.Images.At(i, 0))
		}
	}
}

func TestReadImagesRejectsGarbage(t *testing.T) {
	if _, err := ReadImages(bytes.NewReader([]byte{1, 2, 3})); !errors.Is(err, ErrFormat) {
		t.Errorf("short header: err = %v", err)
	}
	bad := make([]byte, 16)
	if _, err := ReadImages(bytes.NewReader(bad)); !errors.Is(err, ErrFormat) {
		t.Errorf("zero magic: err = %v", err)
	}
}

func TestReadLabelsRejectsMismatch(t *testing.T) {
	d, err := Synthetic(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	var lblBuf bytes.Buffer
	big, err := Synthetic(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteLabels(&lblBuf, big); err != nil {
		t.Fatal(err)
	}
	if err := ReadLabels(&lblBuf, d); !errors.Is(err, ErrFormat) {
		t.Errorf("count mismatch: err = %v", err)
	}
}

func TestLoadDirWithGzip(t *testing.T) {
	dir := t.TempDir()
	d, err := Synthetic(12, 9)
	if err != nil {
		t.Fatal(err)
	}
	writeGz := func(name string, fn func(w *gzip.Writer) error) {
		t.Helper()
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		gz := gzip.NewWriter(f)
		if err := fn(gz); err != nil {
			t.Fatal(err)
		}
		if err := gz.Close(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	writeGz("train-images-idx3-ubyte.gz", func(w *gzip.Writer) error { return WriteImages(w, d) })
	writeGz("train-labels-idx1-ubyte.gz", func(w *gzip.Writer) error { return WriteLabels(w, d) })

	got, err := LoadDir(dir, "train")
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 12 {
		t.Errorf("loaded N = %d", got.N())
	}
	if _, err := LoadDir(dir, "t10k"); err == nil {
		t.Error("missing test files should fail")
	}
}

func TestLoadFallsBackToSynthetic(t *testing.T) {
	t.Setenv("MNIST_DIR", "")
	d, real, err := Load(true, 15, 3)
	if err != nil {
		t.Fatal(err)
	}
	if real {
		t.Error("should have used synthetic data")
	}
	if d.N() != 15 {
		t.Errorf("N = %d", d.N())
	}
}

func TestLoadRealFromEnv(t *testing.T) {
	dir := t.TempDir()
	d, err := Synthetic(20, 10)
	if err != nil {
		t.Fatal(err)
	}
	imgF, err := os.Create(filepath.Join(dir, "train-images-idx3-ubyte"))
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteImages(imgF, d); err != nil {
		t.Fatal(err)
	}
	if err := imgF.Close(); err != nil {
		t.Fatal(err)
	}
	lblF, err := os.Create(filepath.Join(dir, "train-labels-idx1-ubyte"))
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteLabels(lblF, d); err != nil {
		t.Fatal(err)
	}
	if err := lblF.Close(); err != nil {
		t.Fatal(err)
	}
	t.Setenv("MNIST_DIR", dir)
	got, real, err := Load(true, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !real {
		t.Error("should have loaded real files")
	}
	if got.N() != 8 {
		t.Errorf("N = %d, want 8 (subset)", got.N())
	}
}

// A small MLP must learn the synthetic digits to high accuracy quickly:
// this validates the generator is learnable, the property every
// accuracy-parity experiment depends on.
func TestSyntheticIsLearnable(t *testing.T) {
	train, err := Synthetic(400, 11)
	if err != nil {
		t.Fatal(err)
	}
	test, err := Synthetic(100, 12)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	m, err := nn.NewMLP(Pixels, Classes, []int{32}, nn.SoftmaxCrossEntropy{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := nn.NewSGD(0.5, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	const batch = 50
	for epoch := 0; epoch < 6; epoch++ {
		for from := 0; from+batch <= train.N(); from += batch {
			x, y, err := train.Batch(from, from+batch)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := m.TrainBatch(x, y, opt); err != nil {
				t.Fatal(err)
			}
		}
	}
	x, y, err := test.Batch(0, test.N())
	if err != nil {
		t.Fatal(err)
	}
	acc, err := m.Accuracy(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Errorf("test accuracy %v < 0.9: generator not learnable enough", acc)
	}
}
