package dlog

import (
	"errors"
	"fmt"
	"math/big"
	"math/rand"
	"sort"
	"testing"

	"cryptonn/internal/group"
)

// referenceTopK computes the exact arg-top-k by full dlog of every label.
func referenceTopK(t *testing.T, s *Solver, zs []int64, k int) []TopKHit {
	t.Helper()
	hits := make([]TopKHit, len(zs))
	for i, z := range zs {
		hits[i] = TopKHit{Index: i, Value: z}
	}
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].Value != hits[b].Value {
			return hits[a].Value > hits[b].Value
		}
		return hits[a].Index < hits[b].Index
	})
	if k > len(hits) {
		k = len(hits)
	}
	return hits[:k]
}

func elemsFor(p *group.Params, zs []int64) []*big.Int {
	hs := make([]*big.Int, len(zs))
	for i, z := range zs {
		hs[i] = p.PowGInt64(z)
	}
	return hs
}

// TestTopKMatchesFullSolve is the randomized exactness property: the
// descending simultaneous scan must return exactly the k largest values
// (ties broken by lower index) that a full per-label solve would.
func TestTopKMatchesFullSolve(t *testing.T) {
	s := newTestSolver(t, 50_000)
	p := group.TestParams()
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(300)
		k := 1 + rng.Intn(20)
		zs := make([]int64, n)
		for i := range zs {
			zs[i] = rng.Int63n(100_001) - 50_000
			if rng.Intn(5) == 0 && i > 0 {
				zs[i] = zs[rng.Intn(i)] // force ties
			}
		}
		hits, stats, err := s.TopK(elemsFor(p, zs), k)
		if err != nil {
			t.Fatalf("trial %d: TopK: %v", trial, err)
		}
		want := referenceTopK(t, s, zs, k)
		if len(hits) != len(want) {
			t.Fatalf("trial %d: got %d hits, want %d", trial, len(hits), len(want))
		}
		for i := range hits {
			if hits[i] != want[i] {
				t.Fatalf("trial %d: hit %d = %+v, want %+v", trial, i, hits[i], want[i])
			}
		}
		kWant := k
		if kWant > n {
			kWant = n
		}
		if stats.Solved < kWant || stats.Solved+stats.Skipped != n {
			t.Fatalf("trial %d: inconsistent stats %+v (n=%d, k=%d)", trial, stats, n, k)
		}
	}
}

// TestTopKSolvesExactlyK is the acceptance counter-assertion: a 5000-label
// layer whose 10 winners each stand a full giant-step round apart must
// resolve exactly k=10 dlogs — the scan stops at the k-th resolution's
// round boundary and the remaining 4990 labels are never solved.
func TestTopKSolvesExactlyK(t *testing.T) {
	const (
		bound  = 1_000_000
		labels = 5000
		k      = 10
	)
	s := newTestSolver(t, bound)
	p := group.TestParams()
	m := int64(s.TableSize())
	zs := make([]int64, labels)
	rng := rand.New(rand.NewSource(77))
	for i := range zs {
		zs[i] = rng.Int63n(2001) - 1000 // the field: resolves ~bound/m rounds in
	}
	// Winner t sits at e = bound − z = t·m, i.e. resolves alone in round t.
	for t2 := 0; t2 < k; t2++ {
		zs[100*t2+7] = bound - int64(t2)*m
	}
	hits, stats, err := s.TopK(elemsFor(p, zs), k)
	if err != nil {
		t.Fatalf("TopK: %v", err)
	}
	if stats.Solved != k {
		t.Fatalf("Solved = %d, want exactly %d (stats %+v)", stats.Solved, k, stats)
	}
	if stats.Skipped != labels-k {
		t.Fatalf("Skipped = %d, want %d", stats.Skipped, labels-k)
	}
	if stats.Rounds != k {
		t.Fatalf("Rounds = %d, want %d (one winner per round)", stats.Rounds, k)
	}
	for t2, h := range hits {
		if want := (TopKHit{Index: 100*t2 + 7, Value: bound - int64(t2)*m}); h != want {
			t.Fatalf("hit %d = %+v, want %+v", t2, h, want)
		}
	}
}

// TestTopKEdgeCases covers k ≥ n (degenerates to a full solve), the empty
// slab, invalid k, negative winners, and out-of-bound labels (error with
// partial results).
func TestTopKEdgeCases(t *testing.T) {
	s := newTestSolver(t, 1000)
	p := group.TestParams()

	// k > n returns all labels, still sorted.
	hits, stats, err := s.TopK(elemsFor(p, []int64{-5, 900, 3}), 10)
	if err != nil {
		t.Fatalf("k>n: %v", err)
	}
	if len(hits) != 3 || hits[0].Value != 900 || hits[1].Value != 3 || hits[2].Value != -5 {
		t.Fatalf("k>n hits = %+v", hits)
	}
	if stats.Solved != 3 || stats.Skipped != 0 {
		t.Fatalf("k>n stats = %+v", stats)
	}

	// All-negative values: the descending scan must still find them.
	hits, _, err = s.TopK(elemsFor(p, []int64{-800, -1000, -900}), 2)
	if err != nil {
		t.Fatalf("negative: %v", err)
	}
	if hits[0].Value != -800 || hits[1].Value != -900 {
		t.Fatalf("negative hits = %+v", hits)
	}

	// Empty input.
	if hits, stats, err = s.TopK(nil, 3); err != nil || len(hits) != 0 || stats.Solved != 0 {
		t.Fatalf("empty: hits=%v stats=%+v err=%v", hits, stats, err)
	}

	// Invalid k.
	if _, _, err = s.TopK(elemsFor(p, []int64{1}), 0); err == nil {
		t.Fatal("k=0 accepted")
	}

	// A label outside the bound can never resolve: asking for more hits
	// than resolvable labels errors, returning the resolvable ones.
	out := []*big.Int{p.PowGInt64(500), p.Exp(p.G, big.NewInt(5_000_000))}
	hits, stats, err = s.TopK(out, 2)
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("out-of-bound: err = %v, want ErrNotFound", err)
	}
	if len(hits) != 1 || hits[0].Value != 500 || stats.Solved != 1 || stats.Skipped != 1 {
		t.Fatalf("out-of-bound partial: hits=%v stats=%+v", hits, stats)
	}

	// Malformed slab width.
	if _, _, err := s.TopKMont(make([]uint64, s.k+1), 1); err == nil && s.k > 1 {
		t.Fatal("ragged slab accepted")
	}
}

// TestTopKBoundedMatchesUnbounded pins the ceiling fast path against the
// plain scan: with any valid ceiling (tight, loose, or beyond the bound)
// the hits are identical, and a tight ceiling provably skips rounds.
func TestTopKBoundedMatchesUnbounded(t *testing.T) {
	const bound = 200_000
	s := newTestSolver(t, bound)
	p := group.TestParams()
	rng := rand.New(rand.NewSource(33))
	n, k := 150, 7
	zs := make([]int64, n)
	var zTop int64 = -bound
	for i := range zs {
		zs[i] = rng.Int63n(2001) - 1000 // far below the solver bound
		if zs[i] > zTop {
			zTop = zs[i]
		}
	}
	kl := s.k
	slab := make([]uint64, n*kl)
	for i, z := range zs {
		s.mont.ToMont(slab[i*kl:(i+1)*kl], p.PowGInt64(z))
	}
	base, baseStats, err := s.TopKMont(slab, k)
	if err != nil {
		t.Fatal(err)
	}
	for _, zMax := range []int64{zTop, zTop + 5000, bound, bound + 1} {
		hits, stats, err := s.TopKMontBounded(slab, k, zMax)
		if err != nil {
			t.Fatalf("zMax=%d: %v", zMax, err)
		}
		if len(hits) != len(base) {
			t.Fatalf("zMax=%d: %d hits, want %d", zMax, len(hits), len(base))
		}
		for i := range hits {
			if hits[i] != base[i] {
				t.Fatalf("zMax=%d: hit %d = %+v, want %+v", zMax, i, hits[i], base[i])
			}
		}
		if zMax <= zTop+5000 && stats.Rounds >= baseStats.Rounds {
			t.Errorf("zMax=%d: %d rounds, no faster than unbounded %d", zMax, stats.Rounds, baseStats.Rounds)
		}
	}
	// An extreme ceiling below every label: nothing can resolve.
	if hits, _, err := s.TopKMontBounded(slab, k, -bound-10); !errors.Is(err, ErrNotFound) || len(hits) != 0 {
		t.Errorf("impossible ceiling: hits=%v err=%v, want none/ErrNotFound", hits, err)
	}
}

// BenchmarkTopKDecrypt sweeps k on a 5000-label layer with a top-heavy
// logit distribution (winners near the bound, field near zero — the shape
// a trained classifier head produces). full/ is the per-label Lookup
// reference the top-k scan replaces.
func BenchmarkTopKDecrypt(b *testing.B) {
	const (
		bound  = 1_000_000
		labels = 5000
	)
	params := group.TestParams()
	s, err := NewSolver(params, bound)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	zs := make([]int64, labels)
	for i := range zs {
		zs[i] = rng.Int63n(20_001) - 10_000
	}
	for t := 0; t < 100; t++ { // a heavy top-100 band
		zs[50*t+3] = bound - rng.Int63n(50_000)
	}
	kl := s.k
	slab := make([]uint64, labels*kl)
	for i, z := range zs {
		s.mont.ToMont(slab[i*kl:(i+1)*kl], params.PowGInt64(z))
	}
	for _, k := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("labels=%d/k=%d", labels, k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := s.TopKMont(slab, k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run(fmt.Sprintf("labels=%d/full", labels), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := 0; j < labels; j++ {
				if _, err := s.LookupMont(slab[j*kl : (j+1)*kl]); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	// A centered field (no label near the solver bound) is the worst case
	// for the plain scan — it walks ~bound/m empty rounds before anything
	// resolves. The ceiling variant starts at the first plausible round.
	centered := make([]uint64, labels*kl)
	var zTop int64 = -bound
	for i := range zs {
		z := rng.Int63n(20_001) - 10_000
		if z > zTop {
			zTop = z
		}
		s.mont.ToMont(centered[i*kl:(i+1)*kl], params.PowGInt64(z))
	}
	b.Run(fmt.Sprintf("labels=%d/k=10/centered-plain", labels), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := s.TopKMont(centered, 10); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run(fmt.Sprintf("labels=%d/k=10/centered-ceiling", labels), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := s.TopKMontBounded(centered, 10, zTop); err != nil {
				b.Fatal(err)
			}
		}
	})
}
