// Package dlog recovers bounded discrete logarithms in the CryptoNN group
// — the final step of every secure computation in Algorithm 1.
//
// Both FEIP and FEBO decryption end with a group element of the form
// g^z where z is a "small" signed integer — an inner product or an
// element-wise arithmetic result over fixed-point-encoded data. The paper
// (§II-B) points at Shanks' baby-step giant-step algorithm (and Terr's
// variant [26]) for this final step; this package implements a signed,
// bounded baby-step giant-step solver with a precomputed, reusable
// baby-step table so the expensive part is paid once per (group, bound)
// pair rather than once per decryption.
//
// The solver's hot loop is specialized two ways beyond the textbook
// algorithm. All group arithmetic runs in the Montgomery domain
// (group.MontCtx), so each giant step is a division-free limb
// multiplication instead of a big.Int Mul + QuoRem. And the baby-step
// table is a custom open-addressing hash table keyed on the low 64 bits
// of the Montgomery representation (table.go), so a probe touches two
// flat arrays instead of marshalling key bytes into a string map. Every
// key hit is verified against the full element limbs, with collisions
// falling back to an exact-match spill list, so lookups stay exact.
//
// # Session and concurrency contract
//
// A Solver is safe for concurrent use after construction, which is what
// makes the paper's parallelized secure-computation curves (Fig. 3d, 4d,
// 5d) possible: many goroutines share one table, lock-free. Solvers over
// the same *group.Params share one baby-step core: a bound that fits an
// already-built table reuses it (built once under a lock), so a serving
// session can size solvers per workload — the training bound, the
// feed-forward-only prediction bound — without duplicating tables.
// Lookup allocates nothing in the steady state; LookupMont accepts raw
// Montgomery limbs from the batched decryption pipelines.
package dlog
