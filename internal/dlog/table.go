package dlog

// babyTable is the open-addressing hash table of the baby-step phase: it
// maps the low 64 bits of a group element's Montgomery representation to
// the element's baby-step index j. Compared with the previous
// map[string]int64, a lookup costs one multiply-shift hash and a short
// linear probe over flat arrays — no key-byte marshalling, no string
// hashing, no pointer chasing — and the structure is immutable after
// construction, so one table serves any number of goroutines lock-free.
//
// The 64-bit key is not the full element, so the table alone cannot answer
// membership exactly. Two collision regimes are handled separately:
//
//   - build-time: two baby steps share a low-64 key. The first keeps the
//     main-table slot; later ones go to a small exact-match spill list that
//     lookups scan only after a key hit (find returns the main j; the spill
//     is exposed to the solver, which exact-matches every candidate).
//   - query-time: a giant-step value that is not a baby step at all may
//     still collide with a stored key. The solver therefore verifies every
//     candidate against the full stored element limbs and continues the
//     scan on mismatch; the table never decides a match on its own.
type babyTable struct {
	keys  []uint64
	vals  []int64 // baby-step index + 1; 0 marks an empty slot
	mask  uint64  // len(keys) − 1
	shift uint    // 64 − log2(len(keys)), for the multiply-shift hash
	spill []spillEntry
}

// spillEntry records a baby step whose low-64 key duplicates an earlier
// one. Exact disambiguation happens in the solver via the element limbs.
type spillEntry struct {
	key uint64
	j   int64
}

// fibMul is 2^64/φ, the multiply-shift ("Fibonacci") hash constant; the
// low limb of a Montgomery representative is close to uniform, and the
// golden-ratio multiply spreads any residual structure across the high
// bits that the shift keeps.
const fibMul = 0x9E3779B97F4A7C15

// newBabyTable sizes an empty table for n entries at load factor ≤ 1/2.
func newBabyTable(n int64) *babyTable {
	size := uint64(8)
	shift := uint(61)
	for size < uint64(2*n) {
		size <<= 1
		shift--
	}
	return &babyTable{
		keys:  make([]uint64, size),
		vals:  make([]int64, size),
		mask:  size - 1,
		shift: shift,
	}
}

// slot returns the home slot of key.
func (t *babyTable) slot(key uint64) uint64 { return (key * fibMul) >> t.shift }

// insert records key → j. Duplicate keys fall back to the spill list;
// distinct keys probe linearly for a free slot. Build-time only — the
// table must not be mutated once shared across goroutines.
func (t *babyTable) insert(key uint64, j int64) {
	s := t.slot(key)
	for t.vals[s] != 0 {
		if t.keys[s] == key {
			t.spill = append(t.spill, spillEntry{key: key, j: j})
			return
		}
		s = (s + 1) & t.mask
	}
	t.keys[s] = key
	t.vals[s] = j + 1
}

// find returns the main-table baby-step index stored under key, or −1 when
// the key is absent. A non-negative result is a candidate only: the caller
// must exact-match the full element and, on mismatch, try the spill
// entries with the same key.
func (t *babyTable) find(key uint64) int64 {
	s := t.slot(key)
	for t.vals[s] != 0 {
		if t.keys[s] == key {
			return t.vals[s] - 1
		}
		s = (s + 1) & t.mask
	}
	return -1
}
