package dlog

import (
	"errors"
	"fmt"
	"math/big"
	"sort"
)

// Top-k discrete-log extraction for wide output layers.
//
// An extreme multi-label head produces thousands of logit elements g^{z_i}
// per sample, of which only the k largest z_i matter. Solving every dlog
// costs ~steps/2 giant steps per label; the top-k scan instead runs ONE
// giant-step ladder simultaneously across all labels, in descending value
// order, and stops as soon as the k winners have resolved.
//
// Mechanism (the "descending simultaneous scan"): each logit is first
// inverted — one shared Montgomery batch inversion for the whole layer —
// and shifted, γ_i = g^{bound−z_i}, so the exponent the BSGS ladder sees is
// e_i = bound − z_i ∈ [0, 2·bound]: the LARGER the logit, the SMALLER e_i.
// The standard baby-step table resolves exponents in ascending e order
// (round r matches e ∈ [r·m, (r+1)·m)), so walking all labels down the
// shared ladder surfaces the largest logits first, paying one MulMont and
// one hash probe per still-unresolved label per round.
//
// Soundness of the selection: after round r completes, every label with
// e_i < (r+1)·m has resolved, i.e. every unresolved label has
// z_i ≤ bound − (r+1)·m, strictly below every resolved label's value
// (resolved means z_j ≥ bound − (r+1)·m + 1). So the moment ≥ k labels
// have resolved at a round boundary, the resolved set is a superset of the
// exact arg-top-k — no unresolved label can beat any resolved one. Sorting
// the resolved labels by value and trimming to k yields the exact answer;
// ties within the cut are broken by lower index, deterministically. The
// cost is adaptive: k winners standing r* rounds above the field cost
// about n·r* multiplications; a pathologically flat logit distribution
// degrades toward the full-solve cost, never beyond one extra round.

// TopKHit is one resolved logit: the label index and its discrete log.
type TopKHit struct {
	Index int
	Value int64
}

// TopKStats reports what a top-k scan actually did — the counters behind
// the "k dlogs, not n" claim, exposed through engine stats and /metrics.
type TopKStats struct {
	Solved  int // dlogs recovered before the scan stopped
	Skipped int // labels whose dlog was never solved
	Rounds  int // giant-step rounds executed (shared across all labels)
}

// TopK returns the k largest discrete logs among hs = (g^{z_0}, …) with
// their indices, sorted by value descending (ties by ascending index), plus
// scan statistics. Every z_i must lie in [-Bound, Bound]; if fewer than
// min(k, len(hs)) labels resolve within the bound, the hits found so far
// are returned alongside an ErrNotFound-wrapped error.
func (s *Solver) TopK(hs []*big.Int, k int) ([]TopKHit, TopKStats, error) {
	kl := s.k
	slab := make([]uint64, len(hs)*kl)
	for i, h := range hs {
		if h == nil {
			return nil, TopKStats{}, errors.New("dlog: nil element")
		}
		s.mont.ToMont(slab[i*kl:(i+1)*kl], h)
	}
	return s.TopKMont(slab, k)
}

// TopKMont is TopK for a flat slab of len(elems)/Limbs() Montgomery-form
// elements, as produced by the in-domain decryption pipelines. elems is
// left unmodified.
func (s *Solver) TopKMont(elems []uint64, k int) ([]TopKHit, TopKStats, error) {
	return s.TopKMontBounded(elems, k, s.bound)
}

// TopKMontBounded is TopKMont with a caller-supplied ceiling: every z_i is
// promised to be ≤ zMax. The descending scan then starts at the first
// giant-step round that can contain e = bound − zMax, skipping the empty
// ladder prefix outright — one fixed-base exponentiation g^{−m·r₀} shared
// by the whole layer buys r₀ rounds of n multiplications each. With a
// ceiling tight to the data (a logit bound derived from plaintext weight
// magnitudes, say) the scan cost drops from ~bound/m rounds to
// ~(zMax − z_k)/m. The contract has the same character as the solver bound
// itself: a label whose true z exceeds zMax lands in the skipped prefix
// and is silently missing from the ranking, exactly as a value outside
// [−Bound, Bound] is unrecoverable by Lookup.
func (s *Solver) TopKMontBounded(elems []uint64, k int, zMax int64) ([]TopKHit, TopKStats, error) {
	kl := s.k
	if k <= 0 {
		return nil, TopKStats{}, fmt.Errorf("dlog: top-k count must be positive, got %d", k)
	}
	if len(elems)%kl != 0 {
		return nil, TopKStats{}, errors.New("dlog: element slab not a multiple of the limb width")
	}
	n := len(elems) / kl
	if n == 0 {
		return nil, TopKStats{}, nil
	}
	if k > n {
		k = n
	}
	// γ_i = elems_i^{-1} · g^{bound} = g^{bound − z_i}; one batch inversion
	// covers the whole layer.
	gammas := make([]uint64, len(elems))
	copy(gammas, elems)
	if _, err := s.mont.BatchInvMont(gammas, nil); err != nil {
		return nil, TopKStats{}, fmt.Errorf("dlog: top-k inversion: %w", err)
	}
	for i := 0; i < n; i++ {
		g := gammas[i*kl : (i+1)*kl]
		s.mont.MulMont(g, g, s.shiftM)
	}
	// Rounds below r0 cover e < r0·m ≤ bound − zMax, which no label can
	// occupy; jump the whole layer there with one shared power of the
	// giant step.
	var r0 int64
	if zMax < s.bound {
		lo := zMax
		if lo < -s.bound {
			lo = -s.bound
		}
		r0 = (s.bound - lo) / s.m
		if skip := s.m * r0; skip > 0 {
			jump := make([]uint64, kl)
			s.mont.ToMont(jump, s.params.PowGInt64(-skip))
			for i := 0; i < n; i++ {
				g := gammas[i*kl : (i+1)*kl]
				s.mont.MulMont(g, g, jump)
			}
		}
	}
	active := make([]int32, n)
	for i := range active {
		active[i] = int32(i)
	}
	hits := make([]TopKHit, 0, k)
	rounds := 0
	for r := r0; r <= s.steps && len(hits) < k; r++ {
		rounds++
		// The whole round always completes: stopping mid-round could
		// resolve a label while skipping a same-round (larger or equal)
		// one earlier in the slab, breaking the superset argument.
		w := 0
		for _, i := range active {
			g := gammas[int(i)*kl : (int(i)+1)*kl]
			if v, ok := s.probeRound(g, r); ok {
				hits = append(hits, TopKHit{Index: int(i), Value: v})
				continue
			}
			s.mont.MulMont(g, g, s.giantM)
			active[w] = i
			w++
		}
		active = active[:w]
	}
	stats := TopKStats{Solved: len(hits), Skipped: n - len(hits), Rounds: rounds}
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].Value != hits[b].Value {
			return hits[a].Value > hits[b].Value
		}
		return hits[a].Index < hits[b].Index
	})
	if len(hits) < k {
		return hits, stats, fmt.Errorf("%w: top-%d scan resolved only %d labels (bound %d)", ErrNotFound, k, len(hits), s.bound)
	}
	return hits[:k], stats, nil
}

// probeRound checks whether gamma (the round-r ladder position of a label)
// matches a baby step, mirroring lookupMont's candidate/spill/range logic:
// a hit at baby index j means e = r·m + j, so the label's value is
// bound − e, valid only while e ≤ 2·bound — an out-of-range candidate
// (possible in the final round) must not resolve the label.
func (s *Solver) probeRound(gamma []uint64, r int64) (int64, bool) {
	j := s.tab.find(gamma[0])
	if j < 0 {
		return 0, false
	}
	if equalElem(gamma, s.elems, j, s.k) {
		if e := r*s.m + j; e <= 2*s.bound {
			return s.bound - e, true
		}
		return 0, false
	}
	for _, sp := range s.tab.spill {
		if sp.key == gamma[0] && equalElem(gamma, s.elems, sp.j, s.k) {
			if e := r*s.m + sp.j; e <= 2*s.bound {
				return s.bound - e, true
			}
			return 0, false
		}
	}
	return 0, false
}
