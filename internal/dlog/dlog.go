package dlog

import (
	"errors"
	"fmt"
	"math"
	"math/big"
	"sync"

	"cryptonn/internal/group"
)

// ErrNotFound reports that the discrete log of the queried element does not
// lie within the solver's bound. Callers typically treat it as a fixed-point
// overflow: the plaintext result grew beyond the configured range.
var ErrNotFound = errors.New("dlog: value outside search bound")

// lookupStackLimbs bounds the modulus width (in 64-bit limbs) for which
// Lookup's scratch lives on the stack; wider groups allocate one slice.
const lookupStackLimbs = 16

// Solver recovers x from g^x for x in [-Bound, Bound] using baby-step
// giant-step with a table of about sqrt(2*Bound+1) entries.
type Solver struct {
	params *group.Params
	mont   *group.MontCtx
	bound  int64
	m      int64 // baby-step table size
	steps  int64 // number of giant steps
	k      int   // limbs per element
	// elems[j*k : (j+1)*k] is g^j in Montgomery form: the exact-match
	// backing store for the hash table's 64-bit candidate keys. elems,
	// tab and giantM may be shared with other solvers of the same Params
	// (see coreFor); shiftM is per-solver.
	elems  []uint64
	tab    *babyTable
	giantM []uint64 // g^{-m}, Montgomery form
	shiftM []uint64 // g^{Bound}, Montgomery form: maps [-B, B] onto [0, 2B]
}

// solverCore is the bound-independent part of a solver: the baby-step
// elements, their hash table, and the matching giant step g^{-m}. A core
// built for m baby steps serves any solver needing ≤ m of them — the
// giant-step stride only has to match the table height, not the bound —
// so solvers over the same group share one core instead of each rebuilding
// identical tables.
type solverCore struct {
	m      int64
	elems  []uint64
	tab    *babyTable
	giantM []uint64
}

// maxCachedCores bounds the per-Params core cache. Production processes
// hold one or two groups, so the cap only matters for workloads that mint
// Params endlessly (test suites); past it the cache resets and tables are
// simply rebuilt on demand, keeping memory bounded.
const maxCachedCores = 64

var (
	coreMu sync.Mutex
	// cores caches the largest core built per Params. Keyed by pointer
	// identity: Params are long-lived, never copied once in use (their own
	// documented contract), and pointer keys keep independently created
	// groups — even with equal constants, as throughout the tests —
	// isolated from each other.
	cores = map[*group.Params]*solverCore{}
)

// coreFor returns a baby-step core for params with at least mNeed entries,
// building and caching it when no cached core is tall enough. Construction
// runs under the cache lock, so concurrent solver setup over one group
// builds the table exactly once.
func coreFor(params *group.Params, mc *group.MontCtx, mNeed int64) *solverCore {
	coreMu.Lock()
	defer coreMu.Unlock()
	if c := cores[params]; c != nil && c.m >= mNeed {
		return c
	}
	if len(cores) >= maxCachedCores {
		cores = map[*group.Params]*solverCore{}
	}
	k := mc.Limbs()
	c := &solverCore{
		m:   mNeed,
		tab: newBabyTable(mNeed),
	}
	// The baby steps and the giant-step element are a pure function of
	// (group, m), so a configured table cache restores them — elems and
	// giantM as one payload — and only the hash table (derived data: the
	// low limb of each element) is rebuilt, with zero group operations.
	tc := params.TableCache()
	shape := []int64{mNeed}
	want := int((mNeed + 1) * int64(k))
	if tc != nil {
		if payload, ok := tc.LoadLimbs(params, "dlogcore", nil, shape, want); ok {
			c.elems = payload[:mNeed*int64(k)]
			c.giantM = payload[mNeed*int64(k):]
			for j := int64(0); j < mNeed; j++ {
				c.tab.insert(c.elems[j*int64(k)], j)
			}
			cores[params] = c
			return c
		}
	}
	c.elems = make([]uint64, mNeed*int64(k))
	c.giantM = mc.Elem()
	gM := mc.Elem()
	mc.ToMont(gM, params.G)
	cur := mc.Elem()
	mc.SetOne(cur)
	for j := int64(0); j < mNeed; j++ {
		copy(c.elems[j*int64(k):], cur)
		c.tab.insert(cur[0], j)
		mc.MulMont(cur, cur, gM)
	}
	// cur is now g^m; its inverse is the giant step.
	mc.ToMont(c.giantM, params.Inv(mc.FromMont(cur)))
	if tc != nil {
		payload := make([]uint64, 0, want)
		payload = append(payload, c.elems...)
		payload = append(payload, c.giantM...)
		tc.StoreLimbs(params, "dlogcore", nil, shape, payload)
	}
	cores[params] = c
	return c
}

// NewSolver builds a solver for logs in [-bound, bound]. Table construction
// costs O(sqrt(bound)) group operations and memory — paid once per group:
// solvers over the same Params share one baby-step table, and a solver
// whose bound fits an already-built table reuses it outright. Subsequent
// lookups cost O(sqrt(bound)) multiplications in the worst case.
func NewSolver(params *group.Params, bound int64) (*Solver, error) {
	if params == nil {
		return nil, errors.New("dlog: nil group parameters")
	}
	if bound <= 0 {
		return nil, fmt.Errorf("dlog: bound must be positive, got %d", bound)
	}
	n := 2*bound + 1 // size of the shifted search range [0, 2*bound]
	m := int64(math.Ceil(math.Sqrt(float64(n))))
	mc := params.Mont()
	core := coreFor(params, mc, m)
	s := &Solver{
		params: params,
		mont:   mc,
		bound:  bound,
		m:      core.m,
		steps:  (n + core.m - 1) / core.m,
		k:      mc.Limbs(),
		elems:  core.elems,
		tab:    core.tab,
		giantM: core.giantM,
		shiftM: mc.Elem(),
	}
	mc.ToMont(s.shiftM, params.PowGInt64(bound)) // table-backed fixed-base power
	return s, nil
}

// Bound returns the solver's symmetric search bound.
func (s *Solver) Bound() int64 { return s.bound }

// TableSize returns the number of precomputed baby steps (diagnostics and
// benchmark reporting).
func (s *Solver) TableSize() int { return int(s.m) }

// Lookup returns x such that h = g^x and |x| <= Bound, or ErrNotFound.
//
// The giant-step loop works on stack-resident Montgomery limbs: one
// division-free multiplication and one hash probe per step, no
// allocations. All scratch is call-local, so one Solver serves any number
// of concurrent goroutines.
func (s *Solver) Lookup(h *big.Int) (int64, error) {
	if h == nil {
		return 0, errors.New("dlog: nil element")
	}
	k := s.k
	var stack [lookupStackLimbs]uint64
	var gamma []uint64
	if k <= len(stack) {
		gamma = stack[:k]
	} else {
		gamma = make([]uint64, k)
	}
	s.mont.ToMont(gamma, h)
	return s.lookupMont(gamma)
}

// LookupMont is Lookup for an element already in Montgomery form (a slice
// of group.MontCtx Limbs() length), as produced by the Montgomery-domain
// decryption pipelines — the query stays in-domain from ciphertext to
// table probe with no big.Int round trip. x is left unmodified.
func (s *Solver) LookupMont(x []uint64) (int64, error) {
	k := s.k
	var stack [lookupStackLimbs]uint64
	var gamma []uint64
	if k <= len(stack) {
		gamma = stack[:k]
	} else {
		gamma = make([]uint64, k)
	}
	copy(gamma, x[:k])
	return s.lookupMont(gamma)
}

// lookupMont runs the giant-step scan on gamma (Montgomery form),
// overwriting it.
func (s *Solver) lookupMont(gamma []uint64) (int64, error) {
	k := s.k
	// Shift the signed range onto [0, 2*bound]: h' = h * g^bound = g^{x+bound}.
	s.mont.MulMont(gamma, gamma, s.shiftM)
	for i := int64(0); i <= s.steps; i++ {
		if j := s.tab.find(gamma[0]); j >= 0 {
			// A 64-bit key hit is only a candidate: exact-match the full
			// element, falling back to the spill list on collision. A
			// candidate whose x lands outside [-Bound, Bound] (the final
			// giant step can match a shifted value just past 2*Bound) must
			// NOT stop the scan — keep probing instead of breaking, so a
			// later exact match is still found.
			if equalElem(gamma, s.elems, j, k) {
				if x := i*s.m + j - s.bound; x >= -s.bound && x <= s.bound {
					return x, nil
				}
			} else {
				for _, e := range s.tab.spill {
					if e.key == gamma[0] && equalElem(gamma, s.elems, e.j, k) {
						if x := i*s.m + e.j - s.bound; x >= -s.bound && x <= s.bound {
							return x, nil
						}
						break
					}
				}
			}
		}
		s.mont.MulMont(gamma, gamma, s.giantM)
	}
	return 0, fmt.Errorf("%w (bound %d)", ErrNotFound, s.bound)
}

// equalElem reports whether gamma equals the j-th stored baby-step element.
func equalElem(gamma, elems []uint64, j int64, k int) bool {
	e := elems[j*int64(k) : j*int64(k)+int64(k)]
	for i := range gamma {
		if gamma[i] != e[i] {
			return false
		}
	}
	return true
}

// MustLookup is Lookup for callers that have already guaranteed the value
// is in range (e.g. tests); it panics on failure.
func (s *Solver) MustLookup(h *big.Int) int64 {
	x, err := s.Lookup(h)
	if err != nil {
		panic(err)
	}
	return x
}
