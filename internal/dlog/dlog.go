// Package dlog recovers bounded discrete logarithms in the CryptoNN group.
//
// Both FEIP and FEBO decryption end with a group element of the form
// g^z where z is a "small" signed integer — an inner product or an
// element-wise arithmetic result over fixed-point-encoded data. The paper
// (§II-B) points at Shanks' baby-step giant-step algorithm (and Terr's
// variant [26]) for this final step; this package implements a signed,
// bounded baby-step giant-step solver with a precomputed, reusable
// baby-step table so the expensive part is paid once per (group, bound)
// pair rather than once per decryption.
//
// A Solver is safe for concurrent use after construction, which is what
// makes the paper's parallelized secure-computation curves (Fig. 3d, 4d,
// 5d) possible: many goroutines share one table.
package dlog

import (
	"errors"
	"fmt"
	"math"
	"math/big"

	"cryptonn/internal/group"
)

// ErrNotFound reports that the discrete log of the queried element does not
// lie within the solver's bound. Callers typically treat it as a fixed-point
// overflow: the plaintext result grew beyond the configured range.
var ErrNotFound = errors.New("dlog: value outside search bound")

// Solver recovers x from g^x for x in [-Bound, Bound] using baby-step
// giant-step with a table of about sqrt(2*Bound+1) entries.
type Solver struct {
	params *group.Params
	bound  int64
	m      int64            // baby-step table size
	steps  int64            // number of giant steps
	table  map[string]int64 // g^j -> j, 0 <= j < m
	giant  *big.Int         // g^{-m}
	shift  *big.Int         // g^{Bound}: maps signed range onto [0, 2*Bound]
	keyLen int              // modulus width in bytes, sizes the key scratch
}

// NewSolver builds a solver for logs in [-bound, bound]. Table construction
// costs O(sqrt(bound)) group operations and memory; subsequent lookups cost
// O(sqrt(bound)) multiplications in the worst case.
func NewSolver(params *group.Params, bound int64) (*Solver, error) {
	if params == nil {
		return nil, errors.New("dlog: nil group parameters")
	}
	if bound <= 0 {
		return nil, fmt.Errorf("dlog: bound must be positive, got %d", bound)
	}
	n := 2*bound + 1 // size of the shifted search range [0, 2*bound]
	m := int64(math.Ceil(math.Sqrt(float64(n))))
	table := make(map[string]int64, m)
	cur := big.NewInt(1)
	var tmp, q big.Int // scratch reused across the whole build
	for j := int64(0); j < m; j++ {
		table[string(cur.Bytes())] = j
		tmp.Mul(cur, params.G)
		q.QuoRem(&tmp, params.P, cur)
	}
	// cur is now g^m; its inverse is the giant step.
	giant := params.Inv(cur)
	return &Solver{
		params: params,
		bound:  bound,
		m:      m,
		steps:  (n + m - 1) / m,
		table:  table,
		giant:  giant,
		shift:  params.PowGInt64(bound), // table-backed fixed-base power
		keyLen: (params.P.BitLen() + 7) / 8,
	}, nil
}

// Bound returns the solver's symmetric search bound.
func (s *Solver) Bound() int64 { return s.bound }

// TableSize returns the number of precomputed baby steps (diagnostics and
// benchmark reporting).
func (s *Solver) TableSize() int { return len(s.table) }

// Lookup returns x such that h = g^x and |x| <= Bound, or ErrNotFound.
//
// The giant-step loop reuses three scratch buffers (product, reduction,
// key bytes) across its iterations instead of allocating per step; all
// scratch is call-local, so one Solver still serves any number of
// concurrent goroutines.
func (s *Solver) Lookup(h *big.Int) (int64, error) {
	if h == nil {
		return 0, errors.New("dlog: nil element")
	}
	// Shift the signed range onto [0, 2*bound]: h' = h * g^bound = g^{x+bound}.
	var gamma, tmp, q big.Int
	tmp.Mul(h, s.shift)
	q.QuoRem(&tmp, s.params.P, &gamma)
	keyBuf := make([]byte, s.keyLen)
	for i := int64(0); i <= s.steps; i++ {
		// The table keys are minimal big-endian bytes (big.Int.Bytes);
		// FillBytes into the fixed-width scratch then strip the leading
		// zeros to reproduce the same key without allocating. The
		// string(...) conversion inside a map index does not allocate.
		gamma.FillBytes(keyBuf)
		k := 0
		for k < s.keyLen-1 && keyBuf[k] == 0 {
			k++
		}
		if j, ok := s.table[string(keyBuf[k:])]; ok {
			x := i*s.m + j - s.bound
			if x < -s.bound || x > s.bound {
				break // matched only past the end of the range
			}
			return x, nil
		}
		tmp.Mul(&gamma, s.giant)
		q.QuoRem(&tmp, s.params.P, &gamma)
	}
	return 0, fmt.Errorf("%w (bound %d)", ErrNotFound, s.bound)
}

// MustLookup is Lookup for callers that have already guaranteed the value
// is in range (e.g. tests); it panics on failure.
func (s *Solver) MustLookup(h *big.Int) int64 {
	x, err := s.Lookup(h)
	if err != nil {
		panic(err)
	}
	return x
}
