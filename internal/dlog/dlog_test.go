package dlog

import (
	"errors"
	"math/big"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"cryptonn/internal/group"
)

func newTestSolver(t testing.TB, bound int64) *Solver {
	t.Helper()
	s, err := NewSolver(group.TestParams(), bound)
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	return s
}

func TestLookupExhaustiveSmall(t *testing.T) {
	p := group.TestParams()
	s := newTestSolver(t, 50)
	for x := int64(-50); x <= 50; x++ {
		got, err := s.Lookup(p.PowGInt64(x))
		if err != nil {
			t.Fatalf("Lookup(g^%d): %v", x, err)
		}
		if got != x {
			t.Fatalf("Lookup(g^%d) = %d", x, got)
		}
	}
}

func TestLookupBoundaryValues(t *testing.T) {
	p := group.TestParams()
	s := newTestSolver(t, 1000)
	for _, x := range []int64{-1000, -999, -1, 0, 1, 999, 1000} {
		got, err := s.Lookup(p.PowGInt64(x))
		if err != nil {
			t.Fatalf("Lookup(g^%d): %v", x, err)
		}
		if got != x {
			t.Errorf("Lookup(g^%d) = %d", x, got)
		}
	}
}

func TestLookupOutOfRange(t *testing.T) {
	p := group.TestParams()
	s := newTestSolver(t, 100)
	for _, x := range []int64{101, -101, 5000, -99999} {
		if _, err := s.Lookup(p.PowGInt64(x)); !errors.Is(err, ErrNotFound) {
			t.Errorf("Lookup(g^%d) err = %v, want ErrNotFound", x, err)
		}
	}
}

func TestLookupLargeBoundRandom(t *testing.T) {
	p := group.TestParams()
	s := newTestSolver(t, 1_000_000)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		x := rng.Int63n(2_000_001) - 1_000_000
		got, err := s.Lookup(p.PowGInt64(x))
		if err != nil {
			t.Fatalf("Lookup(g^%d): %v", x, err)
		}
		if got != x {
			t.Fatalf("Lookup(g^%d) = %d", x, got)
		}
	}
}

func TestNewSolverRejectsBadInputs(t *testing.T) {
	if _, err := NewSolver(nil, 10); err == nil {
		t.Error("nil params should fail")
	}
	if _, err := NewSolver(group.TestParams(), 0); err == nil {
		t.Error("zero bound should fail")
	}
	if _, err := NewSolver(group.TestParams(), -5); err == nil {
		t.Error("negative bound should fail")
	}
}

func TestLookupNil(t *testing.T) {
	s := newTestSolver(t, 10)
	if _, err := s.Lookup(nil); err == nil {
		t.Error("nil element should fail")
	}
}

func TestConcurrentLookups(t *testing.T) {
	p := group.TestParams()
	s := newTestSolver(t, 10_000)
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				x := rng.Int63n(20_001) - 10_000
				got, err := s.Lookup(p.PowGInt64(x))
				if err != nil || got != x {
					errCh <- errors.New("concurrent lookup mismatch")
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
}

// Property: Lookup inverts exponentiation on the whole signed range.
func TestQuickLookupInvertsPowG(t *testing.T) {
	p := group.TestParams()
	s := newTestSolver(t, 1<<20)
	f := func(x int32) bool {
		v := int64(x) % (1 << 20)
		got, err := s.Lookup(p.PowGInt64(v))
		return err == nil && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMustLookupPanicsOutOfRange(t *testing.T) {
	p := group.TestParams()
	s := newTestSolver(t, 10)
	defer func() {
		if recover() == nil {
			t.Error("MustLookup should panic for out-of-range value")
		}
	}()
	s.MustLookup(p.PowGInt64(11))
}

func TestTableSizeScalesWithSqrtBound(t *testing.T) {
	small := newTestSolver(t, 100)
	large := newTestSolver(t, 10_000)
	if small.TableSize() >= large.TableSize() {
		t.Errorf("table sizes: small=%d large=%d", small.TableSize(), large.TableSize())
	}
	if small.Bound() != 100 || large.Bound() != 10_000 {
		t.Error("Bound accessor mismatch")
	}
}

// Regression: the final giant step can match a shifted value just past
// 2*bound; the scan must continue (not break) and the exact boundary
// values x = ±Bound must resolve for bounds with every residue of the
// search range size n = 2b+1 modulo the baby-step count m.
func TestLookupExactBoundarySweep(t *testing.T) {
	p := group.TestParams()
	for _, bound := range []int64{1, 2, 3, 4, 7, 10, 31, 99, 100, 127, 1023} {
		s := newTestSolver(t, bound)
		for _, x := range []int64{-bound, -bound + 1, 0, bound - 1, bound} {
			got, err := s.Lookup(p.PowGInt64(x))
			if err != nil {
				t.Fatalf("bound=%d: Lookup(g^%d): %v", bound, x, err)
			}
			if got != x {
				t.Fatalf("bound=%d: Lookup(g^%d) = %d", bound, x, got)
			}
		}
		for _, x := range []int64{bound + 1, -bound - 1, 2*bound + 1} {
			if _, err := s.Lookup(p.PowGInt64(x)); !errors.Is(err, ErrNotFound) {
				t.Fatalf("bound=%d: Lookup(g^%d) err = %v, want ErrNotFound", bound, x, err)
			}
		}
	}
}

// White-box: the open-addressing table resolves duplicate low-64 keys via
// the spill list, and distinct keys that probe into each other stay
// retrievable.
func TestBabyTableCollisions(t *testing.T) {
	tab := newBabyTable(8)
	const key = 0xDEADBEEF12345678
	tab.insert(key, 3)
	tab.insert(key, 5) // duplicate key → spill
	tab.insert(key, 9) // second duplicate
	if got := tab.find(key); got != 3 {
		t.Fatalf("find(dup key) = %d, want main entry 3", got)
	}
	if len(tab.spill) != 2 || tab.spill[0].j != 5 || tab.spill[1].j != 9 {
		t.Fatalf("spill = %+v, want entries for 5 and 9", tab.spill)
	}
	// Distinct keys landing in the same slot chain via linear probing.
	slotOf := func(k uint64) uint64 { return tab.slot(k) }
	base := uint64(1)
	var clash uint64
	for c := uint64(2); ; c++ {
		if slotOf(c) == slotOf(base) {
			clash = c
			break
		}
	}
	tab.insert(base, 100)
	tab.insert(clash, 200)
	if got := tab.find(base); got != 100 {
		t.Errorf("find(base) = %d", got)
	}
	if got := tab.find(clash); got != 200 {
		t.Errorf("find(probed key) = %d", got)
	}
	if got := tab.find(0x1234); got != -1 {
		t.Errorf("find(absent) = %d, want -1", got)
	}
}

// White-box: a query whose low-64 key collides with a stored baby step but
// whose element differs must not produce a false hit — the exact-match
// verification rejects it and the scan continues to the true answer.
func TestLookupSurvivesForgedKeyCollision(t *testing.T) {
	p := group.TestParams()
	s := newTestSolver(t, 1000)
	// Forge: remap every baby-step key so that the key of g^0's slot also
	// appears as a spill entry pointing at a bogus j. Lookup must reject
	// the bogus candidate via the element comparison and still answer.
	key0 := s.elems[0] // low limb of mont(g^0)
	s.tab.spill = append(s.tab.spill, spillEntry{key: key0, j: 7})
	for _, x := range []int64{0, 1, -1, 999, -1000, 1000} {
		got, err := s.Lookup(p.PowGInt64(x))
		if err != nil {
			t.Fatalf("Lookup(g^%d): %v", x, err)
		}
		if got != x {
			t.Fatalf("Lookup(g^%d) = %d with forged spill entry", x, got)
		}
	}
}

// White-box: a main-table entry whose key matches the query but whose
// element does not (a query-time collision) must fall through to the spill
// list where the true baby step lives.
func TestLookupCollisionFallsBackToSpill(t *testing.T) {
	p := group.TestParams()
	s := newTestSolver(t, 500)
	k := s.k
	// Pick baby step j=4 and force its main slot to claim a wrong index
	// (j=2), moving the true mapping into the spill list. The elements of
	// j=2 and j=4 differ, so only exact-match + spill recovery can answer
	// queries that land on baby step 4.
	key := s.elems[4*k]
	slot := s.tab.slot(key)
	for s.tab.keys[slot] != key {
		slot = (slot + 1) & s.tab.mask
	}
	s.tab.vals[slot] = 2 + 1 // wrong j in the main table
	s.tab.spill = append(s.tab.spill, spillEntry{key: key, j: 4})
	want := int64(4) - s.bound + 0*s.m // x whose first giant step hits baby 4
	got, err := s.Lookup(p.PowGInt64(want))
	if err != nil {
		t.Fatalf("Lookup via spill: %v", err)
	}
	if got != want {
		t.Fatalf("Lookup via spill = %d, want %d", got, want)
	}
}

// The Montgomery-domain scan must agree with the group's naive big.Int
// arithmetic on collision-heavy inputs: a dense stripe of values around
// both bounds, compared against Params.Exp ground truth.
func TestLookupMatchesNaiveExp(t *testing.T) {
	p := group.TestParams()
	s := newTestSolver(t, 300)
	var e big.Int
	for x := int64(-300); x <= 300; x += 7 {
		h := p.Exp(p.G, e.SetInt64(x))
		got, err := s.Lookup(h)
		if err != nil {
			t.Fatalf("Lookup(Exp(g,%d)): %v", x, err)
		}
		if got != x {
			t.Fatalf("Lookup(Exp(g,%d)) = %d", x, got)
		}
	}
}

// The paper-scale 256-bit group exercises the multi-limb Montgomery path.
func TestLookupPaperGroup(t *testing.T) {
	p := group.PaperParams()
	s, err := NewSolver(p, 5000)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []int64{-5000, -1234, 0, 1, 4999, 5000} {
		got, err := s.Lookup(p.PowGInt64(x))
		if err != nil {
			t.Fatalf("Lookup(g^%d): %v", x, err)
		}
		if got != x {
			t.Fatalf("Lookup(g^%d) = %d", x, got)
		}
	}
	if _, err := s.Lookup(p.PowGInt64(5001)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("out-of-bound err = %v", err)
	}
}

func BenchmarkLookup(b *testing.B) {
	p := group.TestParams()
	s, err := NewSolver(p, 1_000_000)
	if err != nil {
		b.Fatal(err)
	}
	h := p.PowGInt64(987_654)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Lookup(h); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLookupParallel drives one shared Solver from GOMAXPROCS
// goroutines — the paper's parallel decryption shape. Near-linear scaling
// here is what the lock-free table buys over a shared string-keyed map.
func BenchmarkLookupParallel(b *testing.B) {
	p := group.TestParams()
	s, err := NewSolver(p, 1_000_000)
	if err != nil {
		b.Fatal(err)
	}
	queries := make([]*big.Int, 16)
	for i := range queries {
		queries[i] = p.PowGInt64(int64(i+1) * 61_803)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := s.Lookup(queries[i%len(queries)]); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

// TestSolverSharesCore: two solvers over the same Params must share one
// baby-step core when the second one's bound fits the already-built table
// — the whole point of the per-Params core cache.
func TestSolverSharesCore(t *testing.T) {
	params := group.TestParams()
	large, err := NewSolver(params, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	small, err := NewSolver(params, 100)
	if err != nil {
		t.Fatal(err)
	}
	if small.tab != large.tab {
		t.Fatal("solvers over one Params did not share the baby-step table")
	}
	if small.m != large.m {
		t.Fatalf("shared-core solver has m=%d, core has %d", small.m, large.m)
	}
	// A bound that outgrows the cached core rebuilds (and re-caches) a
	// bigger one.
	huge, err := NewSolver(params, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if huge.tab == large.tab {
		t.Fatal("outgrown core was not rebuilt")
	}
	reuse, err := NewSolver(params, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if reuse.tab != huge.tab {
		t.Fatal("later solver did not pick up the enlarged core")
	}
}

// TestSolverReusedCoreCorrectness exercises a solver running on a core
// built for a much larger bound: the taller table changes m and the giant
// stride, so exhaustive and boundary lookups (±Bound exactly) plus
// out-of-range rejection must still hold.
func TestSolverReusedCoreCorrectness(t *testing.T) {
	params := group.TestParams()
	if _, err := NewSolver(params, 250_000); err != nil {
		t.Fatal(err)
	}
	s, err := NewSolver(params, 50)
	if err != nil {
		t.Fatal(err)
	}
	for x := int64(-50); x <= 50; x++ {
		got, err := s.Lookup(params.PowGInt64(x))
		if err != nil {
			t.Fatalf("Lookup(g^%d): %v", x, err)
		}
		if got != x {
			t.Fatalf("Lookup(g^%d) = %d", x, got)
		}
	}
	for _, x := range []int64{51, -51, 40_000} {
		if _, err := s.Lookup(params.PowGInt64(x)); !errors.Is(err, ErrNotFound) {
			t.Errorf("Lookup(g^%d) err = %v, want ErrNotFound", x, err)
		}
	}
}

// TestLookupMontMatchesLookup pins the Montgomery-form entry point against
// the big.Int one, and checks the query slice is left intact.
func TestLookupMontMatchesLookup(t *testing.T) {
	params := group.TestParams()
	s := newTestSolver(t, 1000)
	mc := params.Mont()
	for _, x := range []int64{-1000, -37, 0, 41, 999, 1000} {
		h := params.PowGInt64(x)
		hm := mc.Elem()
		mc.ToMont(hm, h)
		before := append([]uint64(nil), hm...)
		got, err := s.LookupMont(hm)
		if err != nil {
			t.Fatalf("LookupMont(g^%d): %v", x, err)
		}
		if got != x {
			t.Fatalf("LookupMont(g^%d) = %d", x, got)
		}
		for i := range hm {
			if hm[i] != before[i] {
				t.Fatal("LookupMont modified its input")
			}
		}
	}
	if _, err := s.LookupMont(make([]uint64, mc.Limbs())); !errors.Is(err, ErrNotFound) {
		t.Errorf("LookupMont(0) err = %v, want ErrNotFound", err)
	}
}
