package dlog

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"cryptonn/internal/group"
)

func newTestSolver(t testing.TB, bound int64) *Solver {
	t.Helper()
	s, err := NewSolver(group.TestParams(), bound)
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	return s
}

func TestLookupExhaustiveSmall(t *testing.T) {
	p := group.TestParams()
	s := newTestSolver(t, 50)
	for x := int64(-50); x <= 50; x++ {
		got, err := s.Lookup(p.PowGInt64(x))
		if err != nil {
			t.Fatalf("Lookup(g^%d): %v", x, err)
		}
		if got != x {
			t.Fatalf("Lookup(g^%d) = %d", x, got)
		}
	}
}

func TestLookupBoundaryValues(t *testing.T) {
	p := group.TestParams()
	s := newTestSolver(t, 1000)
	for _, x := range []int64{-1000, -999, -1, 0, 1, 999, 1000} {
		got, err := s.Lookup(p.PowGInt64(x))
		if err != nil {
			t.Fatalf("Lookup(g^%d): %v", x, err)
		}
		if got != x {
			t.Errorf("Lookup(g^%d) = %d", x, got)
		}
	}
}

func TestLookupOutOfRange(t *testing.T) {
	p := group.TestParams()
	s := newTestSolver(t, 100)
	for _, x := range []int64{101, -101, 5000, -99999} {
		if _, err := s.Lookup(p.PowGInt64(x)); !errors.Is(err, ErrNotFound) {
			t.Errorf("Lookup(g^%d) err = %v, want ErrNotFound", x, err)
		}
	}
}

func TestLookupLargeBoundRandom(t *testing.T) {
	p := group.TestParams()
	s := newTestSolver(t, 1_000_000)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		x := rng.Int63n(2_000_001) - 1_000_000
		got, err := s.Lookup(p.PowGInt64(x))
		if err != nil {
			t.Fatalf("Lookup(g^%d): %v", x, err)
		}
		if got != x {
			t.Fatalf("Lookup(g^%d) = %d", x, got)
		}
	}
}

func TestNewSolverRejectsBadInputs(t *testing.T) {
	if _, err := NewSolver(nil, 10); err == nil {
		t.Error("nil params should fail")
	}
	if _, err := NewSolver(group.TestParams(), 0); err == nil {
		t.Error("zero bound should fail")
	}
	if _, err := NewSolver(group.TestParams(), -5); err == nil {
		t.Error("negative bound should fail")
	}
}

func TestLookupNil(t *testing.T) {
	s := newTestSolver(t, 10)
	if _, err := s.Lookup(nil); err == nil {
		t.Error("nil element should fail")
	}
}

func TestConcurrentLookups(t *testing.T) {
	p := group.TestParams()
	s := newTestSolver(t, 10_000)
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				x := rng.Int63n(20_001) - 10_000
				got, err := s.Lookup(p.PowGInt64(x))
				if err != nil || got != x {
					errCh <- errors.New("concurrent lookup mismatch")
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
}

// Property: Lookup inverts exponentiation on the whole signed range.
func TestQuickLookupInvertsPowG(t *testing.T) {
	p := group.TestParams()
	s := newTestSolver(t, 1<<20)
	f := func(x int32) bool {
		v := int64(x) % (1 << 20)
		got, err := s.Lookup(p.PowGInt64(v))
		return err == nil && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMustLookupPanicsOutOfRange(t *testing.T) {
	p := group.TestParams()
	s := newTestSolver(t, 10)
	defer func() {
		if recover() == nil {
			t.Error("MustLookup should panic for out-of-range value")
		}
	}()
	s.MustLookup(p.PowGInt64(11))
}

func TestTableSizeScalesWithSqrtBound(t *testing.T) {
	small := newTestSolver(t, 100)
	large := newTestSolver(t, 10_000)
	if small.TableSize() >= large.TableSize() {
		t.Errorf("table sizes: small=%d large=%d", small.TableSize(), large.TableSize())
	}
	if small.Bound() != 100 || large.Bound() != 10_000 {
		t.Error("Bound accessor mismatch")
	}
}

func BenchmarkLookup(b *testing.B) {
	p := group.TestParams()
	s, err := NewSolver(p, 1_000_000)
	if err != nil {
		b.Fatal(err)
	}
	h := p.PowGInt64(987_654)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Lookup(h); err != nil {
			b.Fatal(err)
		}
	}
}
