package elgamal_test

import (
	"math/big"
	"testing"
	"testing/quick"

	"cryptonn/internal/dlog"
	"cryptonn/internal/elgamal"
	"cryptonn/internal/group"
)

func setup(t *testing.T, bound int64) (*elgamal.PublicKey, *elgamal.SecretKey, *dlog.Solver) {
	t.Helper()
	params := group.TestParams()
	pk, sk, err := elgamal.Setup(params, nil)
	if err != nil {
		t.Fatal(err)
	}
	solver, err := dlog.NewSolver(params, bound)
	if err != nil {
		t.Fatal(err)
	}
	return pk, sk, solver
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	pk, sk, solver := setup(t, 10_000)
	for _, m := range []int64{0, 1, -1, 42, -9999, 10_000} {
		ct, err := elgamal.Encrypt(pk, m, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := elgamal.Decrypt(sk, pk.Params, ct, solver)
		if err != nil {
			t.Fatalf("decrypt %d: %v", m, err)
		}
		if got != m {
			t.Errorf("round trip %d → %d", m, got)
		}
	}
}

func TestQuickHomomorphicProperties(t *testing.T) {
	pk, sk, solver := setup(t, 1_000_000)
	prop := func(a16, b16 int16, k8 int8) bool {
		a, b, k := int64(a16%1000), int64(b16%1000), int64(k8%10)
		ca, err := elgamal.Encrypt(pk, a, nil)
		if err != nil {
			return false
		}
		cb, err := elgamal.Encrypt(pk, b, nil)
		if err != nil {
			return false
		}
		sum, err := elgamal.Decrypt(sk, pk.Params, elgamal.Add(pk.Params, ca, cb), solver)
		if err != nil || sum != a+b {
			t.Logf("Add: %d+%d → %d (%v)", a, b, sum, err)
			return false
		}
		scaled, err := elgamal.Decrypt(sk, pk.Params, elgamal.ScalarMul(pk.Params, ca, k), solver)
		if err != nil || scaled != k*a {
			t.Logf("ScalarMul: %d·%d → %d (%v)", k, a, scaled, err)
			return false
		}
		shifted, err := elgamal.Decrypt(sk, pk.Params, elgamal.AddPlain(pk.Params, ca, b), solver)
		if err != nil || shifted != a+b {
			t.Logf("AddPlain: %d+%d → %d (%v)", a, b, shifted, err)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestLinearPredictMatchesPlaintext(t *testing.T) {
	pk, sk, solver := setup(t, 1_000_000)
	x := []int64{3, -1, 4, 2}
	w := [][]int64{
		{1, 2, 3, 4},
		{-5, 0, 2, 1},
		{10, -10, 1, 0},
	}
	b := []int64{7, -3, 0}
	cts, err := elgamal.EncryptVec(pk, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	scores, err := elgamal.LinearPredict(pk, w, b, cts)
	if err != nil {
		t.Fatal(err)
	}
	cls, vals, err := elgamal.DecryptArgMax(sk, pk.Params, scores, solver)
	if err != nil {
		t.Fatal(err)
	}
	wantBest := 0
	for i, row := range w {
		var want int64 = b[i]
		for j := range x {
			want += row[j] * x[j]
		}
		if vals[i] != want {
			t.Errorf("score %d = %d, want %d", i, vals[i], want)
		}
		if i > 0 {
			var prevBest int64 = b[wantBest]
			for j := range x {
				prevBest += w[wantBest][j] * x[j]
			}
			if want > prevBest {
				wantBest = i
			}
		}
	}
	if cls != wantBest {
		t.Errorf("argmax class %d, want %d", cls, wantBest)
	}
}

func TestLinearPredictValidation(t *testing.T) {
	pk, _, _ := setup(t, 100)
	cts, err := elgamal.EncryptVec(pk, []int64{1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := elgamal.LinearPredict(pk, nil, nil, cts); err == nil {
		t.Error("empty W accepted")
	}
	if _, err := elgamal.LinearPredict(pk, [][]int64{{1, 2}}, []int64{1, 2}, cts); err == nil {
		t.Error("bias/row mismatch accepted")
	}
	if _, err := elgamal.LinearPredict(pk, [][]int64{{1}}, []int64{0}, cts); err == nil {
		t.Error("ragged row accepted")
	}
}

func TestDecryptRejectsTamperedCiphertext(t *testing.T) {
	pk, sk, solver := setup(t, 1000)
	ct, err := elgamal.Encrypt(pk, 12, nil)
	if err != nil {
		t.Fatal(err)
	}
	ct.C2 = big.NewInt(0) // not a group element
	if _, err := elgamal.Decrypt(sk, pk.Params, ct, solver); err == nil {
		t.Error("zero component accepted")
	}
}

func TestCiphertextsAreRandomized(t *testing.T) {
	pk, _, _ := setup(t, 100)
	a, err := elgamal.Encrypt(pk, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := elgamal.Encrypt(pk, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.C1.Cmp(b.C1) == 0 && a.C2.Cmp(b.C2) == 0 {
		t.Error("two encryptions of the same message are identical")
	}
}

func TestSetupValidation(t *testing.T) {
	if _, _, err := elgamal.Setup(nil, nil); err == nil {
		t.Error("nil params accepted")
	}
	pk, _, _ := setup(t, 10)
	if err := pk.Validate(); err != nil {
		t.Errorf("valid key rejected: %v", err)
	}
	bad := &elgamal.PublicKey{Params: pk.Params, H: big.NewInt(0)}
	if err := bad.Validate(); err == nil {
		t.Error("invalid key accepted")
	}
}
