// Package elgamal implements exponential (lifted) ElGamal over the same
// DDH group as the FE schemes: an additively homomorphic public-key
// encryption with messages in the exponent.
//
//	Setup:    s ←$ Z_q, sk = s, pk = (g, h = g^s)
//	Encrypt:  r ←$ Z_q, ct = (c1, c2) = (g^r, h^r · g^m)
//	Add:      (c1·c1', c2·c2')         — Enc(m + m')
//	ScalarMul:(c1^k, c2^k)             — Enc(k·m)
//	Decrypt:  g^m = c2 / c1^s, then a bounded discrete log
//
// CryptoNN uses it for the §III-D "confidential predicted label" setting:
// the trained model is plaintext on the server, so the server can compute
// the encrypted class scores Enc(W·x + b) homomorphically from the
// client's Enc(x) — never learning x, the scores, or the predicted label.
// Only the client, holding sk, decrypts. This is the "existing HE-based
// solutions at the prediction phase" integration the paper describes,
// built on the same group substrate as everything else. The limitation is
// inherited from the paper's discussion: only the linear part of a model
// can be evaluated under HE without interaction, so LinearPredict serves
// models whose decision layer is linear (or a distilled linear head).
package elgamal

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"cryptonn/internal/dlog"
	"cryptonn/internal/group"
)

// ErrMalformed reports a structurally invalid key or ciphertext.
var ErrMalformed = errors.New("elgamal: malformed input")

// PublicKey is (group, h = g^s). Like the FE public keys it lazily caches
// a fixed-base table for h, shared read-only across goroutines.
type PublicKey struct {
	Params *group.Params
	H      *big.Int

	hTab group.LazyTable
}

// Precompute builds the fixed-base table for h now instead of on the first
// Encrypt; idempotent and concurrency-safe.
func (k *PublicKey) Precompute() { k.table() }

func (k *PublicKey) table() *group.FixedBaseTable {
	return k.hTab.Get(k.Params, k.H, 0)
}

// Validate checks group membership; applied to keys received over a
// network boundary.
func (k *PublicKey) Validate() error {
	if k == nil || k.Params == nil || k.H == nil {
		return fmt.Errorf("%w: empty public key", ErrMalformed)
	}
	if err := k.Params.Validate(); err != nil {
		return err
	}
	if !k.Params.IsElement(k.H) {
		return fmt.Errorf("%w: h not a group element", ErrMalformed)
	}
	return nil
}

// SecretKey is s; only the client holds it.
type SecretKey struct {
	S *big.Int
}

// Ciphertext is (c1, c2) = (g^r, h^r·g^m).
type Ciphertext struct {
	C1, C2 *big.Int
}

// Validate checks group membership of both components.
func (c *Ciphertext) Validate(params *group.Params) error {
	if c == nil || c.C1 == nil || c.C2 == nil {
		return fmt.Errorf("%w: empty ciphertext", ErrMalformed)
	}
	if !params.IsElement(c.C1) || !params.IsElement(c.C2) {
		return fmt.Errorf("%w: component not a group element", ErrMalformed)
	}
	return nil
}

// Setup generates a key pair; r may be nil for crypto/rand.
func Setup(params *group.Params, r io.Reader) (*PublicKey, *SecretKey, error) {
	if params == nil {
		return nil, nil, errors.New("elgamal: nil group parameters")
	}
	s, err := params.RandScalar(r)
	if err != nil {
		return nil, nil, fmt.Errorf("elgamal: sampling secret: %w", err)
	}
	return &PublicKey{Params: params, H: params.PowG(s)}, &SecretKey{S: s}, nil
}

// Encrypt encrypts a signed integer message in the exponent. Both
// components run in the Montgomery domain end-to-end (fixed-base limb
// chains for g^r and h^r, the dense Montgomery cache for g^m) and convert
// out once each.
func Encrypt(pk *PublicKey, m int64, r io.Reader) (*Ciphertext, error) {
	nonce, err := pk.Params.RandScalar(r)
	if err != nil {
		return nil, fmt.Errorf("elgamal: sampling nonce: %w", err)
	}
	p := pk.Params
	gt := p.GTable()
	mc := p.Mont()
	k := mc.Limbs()
	buf := make([]uint64, 3*k)
	c1, c2, gm := buf[:k], buf[k:2*k], buf[2*k:]
	gt.PowMont(c1, nonce)
	pk.table().PowMont(c2, nonce)
	gt.PowInt64Mont(gm, m)
	mc.MulMont(c2, c2, gm)
	return &Ciphertext{
		C1: mc.FromMont(c1),
		C2: mc.FromMont(c2),
	}, nil
}

// Add returns Enc(m + m') — the additive homomorphism.
func Add(params *group.Params, a, b *Ciphertext) *Ciphertext {
	return &Ciphertext{
		C1: params.Mul(a.C1, b.C1),
		C2: params.Mul(a.C2, b.C2),
	}
}

// ScalarMul returns Enc(k·m) for a signed plaintext constant k.
func ScalarMul(params *group.Params, a *Ciphertext, k int64) *Ciphertext {
	e := params.ReduceScalar(big.NewInt(k))
	return &Ciphertext{
		C1: params.Exp(a.C1, e),
		C2: params.Exp(a.C2, e),
	}
}

// AddPlain returns Enc(m + k) for a signed plaintext constant k.
func AddPlain(params *group.Params, a *Ciphertext, k int64) *Ciphertext {
	return &Ciphertext{C1: a.C1, C2: params.Mul(a.C2, params.PowGInt64(k))}
}

// EncryptZero returns a fresh Enc(0), the identity for Add chains.
func EncryptZero(pk *PublicKey, r io.Reader) (*Ciphertext, error) {
	return Encrypt(pk, 0, r)
}

// Decrypt recovers the signed message with a bounded discrete-log solver.
func Decrypt(sk *SecretKey, params *group.Params, ct *Ciphertext, solver *dlog.Solver) (int64, error) {
	if err := ct.Validate(params); err != nil {
		return 0, err
	}
	gm := params.Div(ct.C2, params.Exp(ct.C1, sk.S))
	m, err := solver.Lookup(gm)
	if err != nil {
		return 0, fmt.Errorf("elgamal: recovering message: %w", err)
	}
	return m, nil
}

// EncryptVec encrypts every coordinate of x independently.
func EncryptVec(pk *PublicKey, x []int64, r io.Reader) ([]*Ciphertext, error) {
	if len(x) == 0 {
		return nil, errors.New("elgamal: empty vector")
	}
	cts := make([]*Ciphertext, len(x))
	for i, v := range x {
		ct, err := Encrypt(pk, v, r)
		if err != nil {
			return nil, fmt.Errorf("elgamal: coordinate %d: %w", i, err)
		}
		cts[i] = ct
	}
	return cts, nil
}

// LinearPredict computes Enc(W·x + b) homomorphically from Enc(x): the
// server-side of HE-based prediction. W is (classes × features), b has
// one entry per class, cts encrypts x coordinate-wise. The server learns
// nothing — inputs, scores and the arg-max class stay encrypted.
func LinearPredict(pk *PublicKey, w [][]int64, b []int64, cts []*Ciphertext) ([]*Ciphertext, error) {
	if len(w) == 0 {
		return nil, errors.New("elgamal: empty weight matrix")
	}
	if len(b) != len(w) {
		return nil, fmt.Errorf("elgamal: %d biases for %d rows", len(b), len(w))
	}
	params := pk.Params
	for i, ct := range cts {
		if err := ct.Validate(params); err != nil {
			return nil, fmt.Errorf("elgamal: input %d: %w", i, err)
		}
	}
	out := make([]*Ciphertext, len(w))
	for i, row := range w {
		if len(row) != len(cts) {
			return nil, fmt.Errorf("elgamal: row %d has %d weights for %d inputs", i, len(row), len(cts))
		}
		// Enc(Σ_j w_ij·x_j + b_i), accumulated without any fresh
		// randomness: re-randomization comes from the input ciphertexts'
		// own nonces, and the result is decrypted only by the client.
		acc := &Ciphertext{C1: big.NewInt(1), C2: params.PowG(params.ReduceScalar(big.NewInt(b[i])))}
		for j, ct := range cts {
			if row[j] == 0 {
				continue
			}
			acc = Add(params, acc, ScalarMul(params, ct, row[j]))
		}
		out[i] = acc
	}
	return out, nil
}

// DecryptArgMax decrypts the encrypted class scores client-side and
// returns (class, scores).
func DecryptArgMax(sk *SecretKey, params *group.Params, scores []*Ciphertext, solver *dlog.Solver) (int, []int64, error) {
	if len(scores) == 0 {
		return 0, nil, errors.New("elgamal: no scores")
	}
	vals := make([]int64, len(scores))
	best := 0
	for i, ct := range scores {
		v, err := Decrypt(sk, params, ct, solver)
		if err != nil {
			return 0, nil, fmt.Errorf("elgamal: score %d: %w", i, err)
		}
		vals[i] = v
		if v > vals[best] {
			best = i
		}
	}
	return best, vals, nil
}
