package elgamal_test

import (
	"testing"

	"cryptonn/internal/dlog"
	"cryptonn/internal/elgamal"
	"cryptonn/internal/group"
)

func benchSetup(b *testing.B) (*elgamal.PublicKey, *elgamal.SecretKey, *dlog.Solver) {
	b.Helper()
	params := group.TestParams()
	pk, sk, err := elgamal.Setup(params, nil)
	if err != nil {
		b.Fatal(err)
	}
	solver, err := dlog.NewSolver(params, 1_000_000)
	if err != nil {
		b.Fatal(err)
	}
	return pk, sk, solver
}

func BenchmarkEncrypt(b *testing.B) {
	pk, _, _ := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := elgamal.Encrypt(pk, 1234, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecrypt(b *testing.B) {
	pk, sk, solver := benchSetup(b)
	ct, err := elgamal.Encrypt(pk, 1234, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := elgamal.Decrypt(sk, pk.Params, ct, solver); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHomomorphicAdd(b *testing.B) {
	pk, _, _ := benchSetup(b)
	x, err := elgamal.Encrypt(pk, 10, nil)
	if err != nil {
		b.Fatal(err)
	}
	y, err := elgamal.Encrypt(pk, 20, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		elgamal.Add(pk.Params, x, y)
	}
}

// BenchmarkLinearPredict is the server-side cost of one HE prediction on
// a 10-class, 49-feature linear model (the §III-D HE path unit).
func BenchmarkLinearPredict(b *testing.B) {
	pk, _, _ := benchSetup(b)
	const (
		features = 49
		classes  = 10
	)
	x := make([]int64, features)
	w := make([][]int64, classes)
	bias := make([]int64, classes)
	for i := range x {
		x[i] = int64(i % 90)
	}
	for c := range w {
		w[c] = make([]int64, features)
		for i := range w[c] {
			w[c][i] = int64((c*7+i*3)%40 - 20)
		}
		bias[c] = int64(c * 5)
	}
	cts, err := elgamal.EncryptVec(pk, x, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := elgamal.LinearPredict(pk, w, bias, cts); err != nil {
			b.Fatal(err)
		}
	}
}
