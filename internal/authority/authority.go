// Package authority implements the trusted third party of the CryptoNN
// architecture (Fig. 1). The authority generates and holds all master
// secret keys, distributes public keys to clients and servers, and issues
// function-derived keys for the permitted function set F.
//
// The paper's trust model: the authority is honest and colludes with no
// one; the server is honest-but-curious. Accordingly, the master secrets
// never leave this package — only public keys and function keys do — and a
// Policy gate restricts which functions the server may request keys for.
//
// FEIP master keys are per-dimension (an η-dimensional scheme can only
// encrypt η-vectors), so the authority maintains one FEIP key pair per
// requested dimension, generated lazily and cached.
package authority

import (
	"errors"
	"fmt"
	"math/big"
	"sync"

	"cryptonn/internal/febo"
	"cryptonn/internal/feip"
	"cryptonn/internal/group"
	"cryptonn/internal/securemat"
)

// ErrNotPermitted reports a key request for a function outside the policy.
var ErrNotPermitted = errors.New("authority: function not permitted by policy")

// Policy is the permitted function set F. The zero value permits nothing;
// AllowAll covers the full set used by CryptoNN training.
type Policy struct {
	// DotProduct permits inner-product (FEIP) keys.
	DotProduct bool
	// BasicOps permits element-wise FEBO keys per operation.
	BasicOps map[febo.Op]bool
}

// AllowAll permits every function CryptoNN uses: dot products and all four
// basic operations.
func AllowAll() Policy {
	return Policy{
		DotProduct: true,
		BasicOps: map[febo.Op]bool{
			febo.OpAdd: true,
			febo.OpSub: true,
			febo.OpMul: true,
			febo.OpDiv: true,
		},
	}
}

// Stats counts issued keys; the communication-overhead experiment
// (§IV-B2) reads these.
type Stats struct {
	// IPKeys is the number of inner-product function keys issued.
	IPKeys uint64
	// IPKeyScalars is the total number of weight scalars across those keys
	// (the k×n×|w| traffic term of §IV-B2).
	IPKeyScalars uint64
	// BOKeys is the number of basic-op function keys issued.
	BOKeys uint64
}

// Authority is the trusted key authority. It is safe for concurrent use.
type Authority struct {
	params *group.Params
	policy Policy

	mu       sync.Mutex
	feipKeys map[int]*feipPair
	feboPK   *febo.PublicKey
	feboSK   *febo.SecretKey
	stats    Stats
}

type feipPair struct {
	mpk *feip.MasterPublicKey
	msk *feip.MasterSecretKey
}

// New creates an authority over the given group with the given policy.
func New(params *group.Params, policy Policy) (*Authority, error) {
	if params == nil {
		return nil, errors.New("authority: nil group parameters")
	}
	if err := params.Validate(); err != nil {
		return nil, fmt.Errorf("authority: %w", err)
	}
	pk, sk, err := febo.Setup(params, nil)
	if err != nil {
		return nil, fmt.Errorf("authority: FEBO setup: %w", err)
	}
	return &Authority{
		params:   params,
		policy:   policy,
		feipKeys: make(map[int]*feipPair),
		feboPK:   pk,
		feboSK:   sk,
	}, nil
}

// Params returns the group parameters the authority operates over.
func (a *Authority) Params() *group.Params { return a.params }

// Stats returns a snapshot of key-issuance counters.
func (a *Authority) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// ResetStats zeroes the key-issuance counters (used between benchmark
// phases).
func (a *Authority) ResetStats() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.stats = Stats{}
}

func (a *Authority) feipPairFor(eta int) (*feipPair, error) {
	if eta <= 0 {
		return nil, fmt.Errorf("authority: invalid FEIP dimension %d", eta)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if p, ok := a.feipKeys[eta]; ok {
		return p, nil
	}
	mpk, msk, err := feip.Setup(a.params, eta, nil)
	if err != nil {
		return nil, fmt.Errorf("authority: FEIP setup for η=%d: %w", eta, err)
	}
	p := &feipPair{mpk: mpk, msk: msk}
	a.feipKeys[eta] = p
	return p, nil
}

// FEIPPublic returns (creating on first use) the inner-product master
// public key for dimension eta.
func (a *Authority) FEIPPublic(eta int) (*feip.MasterPublicKey, error) {
	p, err := a.feipPairFor(eta)
	if err != nil {
		return nil, err
	}
	return p.mpk, nil
}

// FEBOPublic returns the basic-operation public key.
func (a *Authority) FEBOPublic() (*febo.PublicKey, error) {
	return a.feboPK, nil
}

// IPKey derives the inner-product function key for weight vector y,
// subject to policy.
func (a *Authority) IPKey(y []int64) (*feip.FunctionKey, error) {
	if !a.policy.DotProduct {
		return nil, fmt.Errorf("%w: dot-product", ErrNotPermitted)
	}
	p, err := a.feipPairFor(len(y))
	if err != nil {
		return nil, err
	}
	fk, err := feip.KeyDerive(a.params, p.msk, y)
	if err != nil {
		return nil, err
	}
	a.mu.Lock()
	a.stats.IPKeys++
	a.stats.IPKeyScalars += uint64(len(y))
	a.mu.Unlock()
	return fk, nil
}

// IPKeySparse derives the support-masked inner-product key for the
// η-dimensional weight vector equal to vals on idx and zero elsewhere —
// the securemat.SparseKeyService fast path. The derivation walks only the
// support (feip.KeyDeriveSparse), and the traffic counter accounts only
// the nnz scalars a coordinate-form request actually carries, so the
// communication-overhead measurements see the sparse win too. Note the
// request reveals the support to the authority; docs/SPARSE.md discusses
// the leakage.
func (a *Authority) IPKeySparse(eta int, idx []int, vals []int64) (*feip.FunctionKey, error) {
	if !a.policy.DotProduct {
		return nil, fmt.Errorf("%w: dot-product", ErrNotPermitted)
	}
	p, err := a.feipPairFor(eta)
	if err != nil {
		return nil, err
	}
	fk, err := feip.KeyDeriveSparse(a.params, p.msk, idx, vals)
	if err != nil {
		return nil, err
	}
	a.mu.Lock()
	a.stats.IPKeys++
	a.stats.IPKeyScalars += uint64(len(vals))
	a.mu.Unlock()
	return fk, nil
}

// IPKeyBatch derives one inner-product key per weight vector, in order.
// In process it is a convenience loop; its purpose is to satisfy
// securemat.BatchKeyService so the in-process and networked authorities
// expose the same surface.
func (a *Authority) IPKeyBatch(ys [][]int64) ([]*feip.FunctionKey, error) {
	if len(ys) == 0 {
		return nil, fmt.Errorf("authority: empty key batch")
	}
	keys := make([]*feip.FunctionKey, len(ys))
	for i, y := range ys {
		fk, err := a.IPKey(y)
		if err != nil {
			return nil, fmt.Errorf("authority: batch vector %d: %w", i, err)
		}
		keys[i] = fk
	}
	return keys, nil
}

// BOKeyBatch derives one basic-op key per (commitment, scalar) pair, in
// order; the in-process counterpart of the wire protocol's batched FEBO
// key request.
func (a *Authority) BOKeyBatch(cmts []*big.Int, op febo.Op, ys []int64) ([]*febo.FunctionKey, error) {
	if len(cmts) == 0 || len(cmts) != len(ys) {
		return nil, fmt.Errorf("authority: %d commitments for %d scalars", len(cmts), len(ys))
	}
	keys := make([]*febo.FunctionKey, len(cmts))
	for i, cmt := range cmts {
		fk, err := a.BOKey(cmt, op, ys[i])
		if err != nil {
			return nil, fmt.Errorf("authority: batch element %d: %w", i, err)
		}
		keys[i] = fk
	}
	return keys, nil
}

// BOKey derives the basic-operation function key bound to commitment cmt,
// subject to policy.
func (a *Authority) BOKey(cmt *big.Int, op febo.Op, y int64) (*febo.FunctionKey, error) {
	if !a.policy.BasicOps[op] {
		return nil, fmt.Errorf("%w: %s", ErrNotPermitted, op)
	}
	fk, err := febo.KeyDerive(a.params, a.feboSK, cmt, op, y)
	if err != nil {
		return nil, err
	}
	a.mu.Lock()
	a.stats.BOKeys++
	a.mu.Unlock()
	return fk, nil
}

// Interface compliance: the authority is a (batch-capable) key service
// for the secure matrix computation layer.
var (
	_ securemat.KeyService       = (*Authority)(nil)
	_ securemat.BatchKeyService  = (*Authority)(nil)
	_ securemat.SparseKeyService = (*Authority)(nil)
)
