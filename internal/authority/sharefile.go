package authority

// Share-file provisioning: the bridge between an in-process Cluster (the
// setup ceremony) and networked authority nodes. The ceremony host runs
// NewCluster, extends it to every FEIP dimension training will need, and
// writes one NodeShareFile per node; each authority process loads exactly
// its own file and serves partial keys from it. A node's file holds only
// that node's shares — compromising one file reveals nothing about the
// master secrets as long as fewer than T files leak.

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sort"

	"cryptonn/internal/febo"
	"cryptonn/internal/feip"
	"cryptonn/internal/group"
	"cryptonn/internal/thresh"
)

// FEIPProvision is one FEIP dimension's state in a share file: the joint
// master public key vector and this node's share of each master scalar.
type FEIPProvision struct {
	// H is the joint master public key, H[i] = g^{s_i}.
	H []*big.Int
	// Shares[i] is this node's Shamir share of s_i.
	Shares []*big.Int
}

// NodeShareFile is the gob-serialized provisioning record for one cluster
// node. It carries the group so a node process needs no out-of-band
// parameter agreement, and the public material (joint keys, share
// commitments) alongside the node's private shares.
type NodeShareFile struct {
	Index int64
	T, N  int

	GroupP, GroupQ, GroupG *big.Int

	// FEBOShare is this node's share of the FEBO master secret;
	// FEBOPub = g^s is the joint public key and FEBOSharePubs[j-1] = g^{s^(j)}
	// are all nodes' share commitments (DLEQ verification keys).
	FEBOShare     *big.Int
	FEBOPub       *big.Int
	FEBOSharePubs []*big.Int

	// FEIP maps dimension η to the provisioned threshold state.
	FEIP map[int]FEIPProvision
}

// ShareFile materializes node j's provisioning record covering the given
// FEIP dimensions (running their DKGs if not yet done). Every node's file
// for one cluster must come from the same Cluster value, or the shares
// will not interpolate.
func (c *Cluster) ShareFile(j int, etas []int) (*NodeShareFile, error) {
	if j < 1 || j > c.n {
		return nil, fmt.Errorf("authority: node index %d outside 1..%d", j, c.n)
	}
	f := &NodeShareFile{
		Index:         int64(j),
		T:             c.t,
		N:             c.n,
		GroupP:        c.params.P,
		GroupQ:        c.params.Q,
		GroupG:        c.params.G,
		FEBOShare:     c.febo.shares[j-1],
		FEBOPub:       c.febo.pk.H,
		FEBOSharePubs: c.febo.pubShares,
		FEIP:          make(map[int]FEIPProvision, len(etas)),
	}
	sorted := append([]int(nil), etas...)
	sort.Ints(sorted)
	for _, eta := range sorted {
		d, err := c.feipDim(eta)
		if err != nil {
			return nil, err
		}
		f.FEIP[eta] = FEIPProvision{H: d.mpk.H, Shares: d.shares[j-1]}
	}
	return f, nil
}

// Encode gob-encodes the share file.
func (f *NodeShareFile) Encode(w io.Writer) error {
	return gob.NewEncoder(w).Encode(f)
}

// ReadNodeShareFile decodes a share file written by WriteTo.
func ReadNodeShareFile(r io.Reader) (*NodeShareFile, error) {
	var f NodeShareFile
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("authority: decoding share file: %w", err)
	}
	return &f, nil
}

// LoadNode builds a detached Node from a provisioning record. The node
// serves exactly the provisioned dimensions; requests beyond them get
// ErrNotProvisioned. The group parameters embedded in the file are fully
// re-validated — a tampered file fails here, not at key-derivation time.
func LoadNode(f *NodeShareFile, policy Policy) (*Node, error) {
	if f == nil {
		return nil, errors.New("authority: nil share file")
	}
	if err := thresh.CheckTN(f.T, f.N); err != nil {
		return nil, fmt.Errorf("authority: share file: %w", err)
	}
	if f.Index < 1 || f.Index > int64(f.N) {
		return nil, fmt.Errorf("authority: share file index %d outside 1..%d", f.Index, f.N)
	}
	params := &group.Params{P: f.GroupP, Q: f.GroupQ, G: f.GroupG}
	if err := params.Validate(); err != nil {
		return nil, fmt.Errorf("authority: share file group: %w", err)
	}
	if f.FEBOShare == nil || f.FEBOPub == nil || len(f.FEBOSharePubs) != f.N {
		return nil, errors.New("authority: share file missing FEBO state")
	}
	if !params.IsElement(f.FEBOPub) {
		return nil, fmt.Errorf("authority: share file FEBO public key: %w", group.ErrNotInGroup)
	}
	for j, ps := range f.FEBOSharePubs {
		if ps == nil || !params.IsElement(ps) {
			return nil, fmt.Errorf("authority: share file FEBO share commitment %d: %w", j+1, group.ErrNotInGroup)
		}
	}
	// The node's own commitment must match its share, or every partial key
	// it issues would fail the client's DLEQ check.
	if params.PowG(f.FEBOShare).Cmp(f.FEBOSharePubs[f.Index-1]) != 0 {
		return nil, errors.New("authority: share file FEBO share does not match its commitment")
	}
	nd := &Node{
		params: params,
		policy: policy,
		index:  f.Index,
		t:      f.T,
		n:      f.N,
		feip:   make(map[int]*nodeFEIPDim, len(f.FEIP)),
		febo: &nodeFEBO{
			pk:        &febo.PublicKey{Params: params, H: f.FEBOPub},
			share:     f.FEBOShare,
			pubShares: f.FEBOSharePubs,
		},
	}
	for eta, prov := range f.FEIP {
		if eta <= 0 || len(prov.H) != eta || len(prov.Shares) != eta {
			return nil, fmt.Errorf("authority: share file FEIP provision for η=%d is malformed", eta)
		}
		for i, h := range prov.H {
			if h == nil || !params.IsElement(h) {
				return nil, fmt.Errorf("authority: share file FEIP η=%d h_%d: %w", eta, i, group.ErrNotInGroup)
			}
			if prov.Shares[i] == nil {
				return nil, fmt.Errorf("authority: share file FEIP η=%d share %d missing", eta, i)
			}
		}
		nd.feip[eta] = &nodeFEIPDim{
			mpk:    &feip.MasterPublicKey{Params: params, H: prov.H},
			shares: prov.Shares,
		}
	}
	return nd, nil
}
