package authority

import (
	"bytes"
	"math/big"
	"math/rand"
	"testing"

	"cryptonn/internal/dlog"
	"cryptonn/internal/febo"
	"cryptonn/internal/feip"
	"cryptonn/internal/group"
	"cryptonn/internal/thresh"
)

func clusterParams(t *testing.T) *group.Params {
	t.Helper()
	p, err := group.Embedded(group.TestBits)
	if err != nil {
		t.Fatalf("embedded group: %v", err)
	}
	return p
}

func newTestCluster(t *testing.T, th, n int, seed int64) (*Cluster, []*Node) {
	t.Helper()
	c, nodes, err := NewCluster(clusterParams(t), AllowAll(), th, n, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("NewCluster(%d,%d): %v", th, n, err)
	}
	return c, nodes
}

// TestClusterIPKeyCombines pins the heart of the threshold design: any T
// nodes' partial inner-product keys Lagrange-combine to a function key
// that decrypts a ciphertext under the cluster's joint public key.
func TestClusterIPKeyCombines(t *testing.T) {
	_, nodes := newTestCluster(t, 3, 5, 1)
	params := nodes[0].Params()
	y := []int64{3, -2, 7, 0, 5}
	x := []int64{1, 4, -2, 9, 3}

	mpk, err := nodes[0].FEIPPublic(len(y))
	if err != nil {
		t.Fatal(err)
	}
	// Every node must hand out the identical joint key.
	for _, nd := range nodes[1:] {
		m2, err := nd.FEIPPublic(len(y))
		if err != nil {
			t.Fatal(err)
		}
		for i := range mpk.H {
			if mpk.H[i].Cmp(m2.H[i]) != 0 {
				t.Fatalf("node %d disagrees on joint h_%d", nd.Index(), i)
			}
		}
	}

	quorums := [][]int{{0, 1, 2}, {0, 2, 4}, {1, 3, 4}, {2, 3, 4}}
	var firstKey *big.Int
	for _, quorum := range quorums {
		xs := make([]int64, len(quorum))
		partials := make([]*big.Int, len(quorum))
		for i, j := range quorum {
			xs[i] = nodes[j].Index()
			p, err := nodes[j].PartialIPKey(y)
			if err != nil {
				t.Fatalf("node %d partial: %v", j+1, err)
			}
			partials[i] = p
		}
		lambdas, err := thresh.Lambda(params, xs)
		if err != nil {
			t.Fatal(err)
		}
		k := thresh.CombineScalars(params, lambdas, partials)
		if firstKey == nil {
			firstKey = k
		} else if firstKey.Cmp(k) != 0 {
			t.Fatalf("quorum %v combines to a different key", quorum)
		}
	}

	// The combined key must verify against the joint public key
	// (g^k == Π h_i^{y_i}) and actually decrypt.
	lhs := params.PowG(firstKey)
	rhs := params.MultiExpInt64(mpk.H, y)
	if lhs.Cmp(rhs) != 0 {
		t.Fatal("combined key does not match the joint public key")
	}
	ct, err := feip.Encrypt(mpk, x, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	solver, err := dlog.NewSolver(params, 200)
	if err != nil {
		t.Fatal(err)
	}
	got, err := feip.Decrypt(mpk, ct, &feip.FunctionKey{K: firstKey}, y, solver)
	if err != nil {
		t.Fatalf("decrypt under combined key: %v", err)
	}
	var want int64
	for i := range x {
		want += x[i] * y[i]
	}
	if got != want {
		t.Fatalf("decrypted ⟨x,y⟩ = %d, want %d", got, want)
	}
}

// TestClusterBOKeyCombines pins the FEBO side: partials cmt^{s^(j)}
// combine via CombineElements to cmt^s, the client-side op transform
// reproduces febo.KeyDerive exactly, and each partial's DLEQ proof
// verifies against the node's public share commitment.
func TestClusterBOKeyCombines(t *testing.T) {
	c, nodes := newTestCluster(t, 3, 5, 3)
	params := nodes[0].Params()
	// Reconstruct the joint secret (test-only: same package) so every op's
	// combined key can be compared against the direct derivation.
	jointShares := make([]thresh.Share, 3)
	for i, j := range []int{0, 2, 4} {
		jointShares[i] = thresh.Share{X: int64(j + 1), V: c.febo.shares[j]}
	}
	jointSecret, err := thresh.Combine(params, jointShares)
	if err != nil {
		t.Fatal(err)
	}
	pk, err := nodes[0].FEBOPublic()
	if err != nil {
		t.Fatal(err)
	}
	pubShares, err := nodes[0].FEBOSharePublics()
	if err != nil {
		t.Fatal(err)
	}

	rnd := rand.New(rand.NewSource(4))
	const x1, x2 = 17, 5
	ct, err := febo.Encrypt(pk, x1, rnd)
	if err != nil {
		t.Fatal(err)
	}
	boSolver, err := dlog.NewSolver(params, 200)
	if err != nil {
		t.Fatal(err)
	}

	for _, op := range []febo.Op{febo.OpAdd, febo.OpSub, febo.OpMul, febo.OpDiv} {
		quorum := []int{0, 2, 4}
		xs := make([]int64, len(quorum))
		partials := make([]*big.Int, len(quorum))
		for i, j := range quorum {
			ps, proof, err := nodes[j].PartialBOKeyBatch([]*big.Int{ct.Cmt}, op, []int64{x2})
			if err != nil {
				t.Fatalf("node %d partial (%s): %v", j+1, op, err)
			}
			if err := thresh.VerifyEqBatch(params, pubShares[j], []*big.Int{ct.Cmt}, ps, proof); err != nil {
				t.Fatalf("node %d DLEQ (%s): %v", j+1, op, err)
			}
			xs[i] = nodes[j].Index()
			partials[i] = ps[0]
		}
		lambdas, err := thresh.Lambda(params, xs)
		if err != nil {
			t.Fatal(err)
		}
		cmtS, err := thresh.CombineElements(params, lambdas, partials)
		if err != nil {
			t.Fatal(err)
		}
		// Client-side op transform on the combined cmt^s.
		var k *big.Int
		switch op {
		case febo.OpAdd:
			k = params.Mul(cmtS, params.PowGInt64(-x2))
		case febo.OpSub:
			k = params.Mul(cmtS, params.PowGInt64(x2))
		case febo.OpMul:
			k = params.Exp(cmtS, big.NewInt(x2))
		case febo.OpDiv:
			inv, err := params.InvScalar(big.NewInt(x2))
			if err != nil {
				t.Fatal(err)
			}
			k = params.Exp(cmtS, inv)
		}
		// The combined+transformed key must equal febo.KeyDerive under the
		// reconstructed joint secret for every op.
		direct, err := febo.KeyDerive(params, &febo.SecretKey{S: jointSecret}, ct.Cmt, op, x2)
		if err != nil {
			t.Fatal(err)
		}
		if k.Cmp(direct.K) != 0 {
			t.Fatalf("%s: combined key differs from direct derivation", op)
		}
		if op == febo.OpDiv {
			continue // 17/5 has no small-integer exponent to decrypt to.
		}
		got, err := febo.Decrypt(pk, &febo.FunctionKey{K: k}, ct, op, x2, boSolver)
		if err != nil {
			t.Fatalf("decrypt %s under combined key: %v", op, err)
		}
		var want int64
		switch op {
		case febo.OpAdd:
			want = x1 + x2
		case febo.OpSub:
			want = x1 - x2
		case febo.OpMul:
			want = x1 * x2
		}
		if got != want {
			t.Fatalf("%s: decrypted %d, want %d", op, got, want)
		}
	}
}

// TestClusterPolicyAndValidation covers the request-side guard rails.
func TestClusterPolicyAndValidation(t *testing.T) {
	params := clusterParams(t)
	locked := Policy{} // permits nothing
	_, nodes, err := NewCluster(params, locked, 2, 3, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nodes[0].PartialIPKey([]int64{1, 2}); err == nil {
		t.Fatal("policy-denied partial IP key issued")
	}
	if _, _, err := nodes[0].PartialBOKeyBatch([]*big.Int{params.G}, febo.OpMul, []int64{2}); err == nil {
		t.Fatal("policy-denied partial BO key issued")
	}

	_, open, err := NewCluster(params, AllowAll(), 2, 3, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := open[0].PartialBOKeyBatch([]*big.Int{big.NewInt(0)}, febo.OpMul, []int64{2}); err == nil {
		t.Fatal("non-group commitment accepted")
	}
	if _, _, err := open[0].PartialBOKeyBatch([]*big.Int{params.G}, febo.OpDiv, []int64{0}); err == nil {
		t.Fatal("zero divisor accepted")
	}
	if _, err := open[0].PartialIPKeyBatch([][]int64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged batch accepted")
	}
	if _, _, err := NewCluster(params, AllowAll(), 4, 3, nil); err == nil {
		t.Fatal("t > n cluster constructed")
	}
}

// TestShareFileRoundTrip pins the provisioning path: a detached node
// loaded from a gob share file serves the same partials as its in-process
// counterpart, and refuses unprovisioned dimensions and tampered files.
func TestShareFileRoundTrip(t *testing.T) {
	c, nodes := newTestCluster(t, 3, 5, 7)
	const eta = 4
	y := []int64{2, -1, 3, 8}

	f, err := c.ShareFile(2, []int{eta})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := ReadNodeShareFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	detached, err := LoadNode(decoded, AllowAll())
	if err != nil {
		t.Fatal(err)
	}
	if detached.Index() != 2 || detached.Threshold() != 3 || detached.ClusterSize() != 5 {
		t.Fatalf("detached node identity = (%d,%d,%d)", detached.Index(), detached.Threshold(), detached.ClusterSize())
	}

	want, err := nodes[1].PartialIPKey(y)
	if err != nil {
		t.Fatal(err)
	}
	got, err := detached.PartialIPKey(y)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(want) != 0 {
		t.Fatal("detached node derives a different partial than its cluster twin")
	}

	// FEBO partials must agree too (and carry valid proofs).
	params := nodes[0].Params()
	cmt := params.PowGInt64(123)
	wantBO, _, err := nodes[1].PartialBOKeyBatch([]*big.Int{cmt}, febo.OpMul, []int64{1})
	if err != nil {
		t.Fatal(err)
	}
	gotBO, proof, err := detached.PartialBOKeyBatch([]*big.Int{cmt}, febo.OpMul, []int64{1})
	if err != nil {
		t.Fatal(err)
	}
	if gotBO[0].Cmp(wantBO[0]) != 0 {
		t.Fatal("detached FEBO partial differs")
	}
	pubShares, _ := detached.FEBOSharePublics()
	if err := thresh.VerifyEqBatch(params, pubShares[1], []*big.Int{cmt}, gotBO, proof); err != nil {
		t.Fatalf("detached DLEQ: %v", err)
	}

	// Unprovisioned dimension → typed error, no silent DKG.
	if _, err := detached.PartialIPKey([]int64{1, 2, 3}); err == nil {
		t.Fatal("detached node served an unprovisioned dimension")
	}

	// A share that does not match its public commitment must be rejected
	// at load time.
	bad := *decoded
	bad.FEBOShare = new(big.Int).Add(decoded.FEBOShare, big.NewInt(1))
	if _, err := LoadNode(&bad, AllowAll()); err == nil {
		t.Fatal("tampered share file loaded")
	}
}

// TestClusterStats checks partial issuance is counted.
func TestClusterStats(t *testing.T) {
	_, nodes := newTestCluster(t, 2, 3, 8)
	if _, err := nodes[0].PartialIPKeyBatch([][]int64{{1, 2, 3}, {4, 5, 6}}); err != nil {
		t.Fatal(err)
	}
	cmt := nodes[0].Params().PowGInt64(7)
	if _, _, err := nodes[0].PartialBOKeyBatch([]*big.Int{cmt}, febo.OpAdd, []int64{9}); err != nil {
		t.Fatal(err)
	}
	st := nodes[0].Stats()
	if st.IPKeys != 2 || st.IPKeyScalars != 6 || st.BOKeys != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if other := nodes[1].Stats(); other.IPKeys != 0 {
		t.Fatalf("node 2 stats leaked: %+v", other)
	}
}
