package authority

// Threshold authority cluster: the single trusted party of Fig. 1 split
// into N share-holding nodes, any T of which can derive function keys.
// No node — and no code path — ever materializes a whole master secret:
// FEIP master scalars and the FEBO master secret exist only as Shamir
// shares produced by the dealerless DKG in internal/thresh.
//
// Both schemes are linear in their master secrets, so nodes answer with
// partials that a client combines by Lagrange interpolation at x = 0:
//
//   FEIP  k_j = ⟨y, s^(j)⟩            →  sk_f = Σ λ_j·k_j mod Q
//   FEBO  P_j = cmt^{s^(j)} (+ DLEQ)  →  cmt^s = Π P_j^{λ_j}
//
// wire.QuorumKeyService is the combining client; Cluster/Node here hold
// the share-side state. An in-process Cluster extends itself to new FEIP
// dimensions lazily (the DKG runs among the node states it owns); a
// detached Node loaded from a ShareFile serves exactly the dimensions the
// provisioning ceremony covered and reports ErrNotProvisioned beyond
// them — re-run the ceremony to extend a deployed cluster.

import (
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync"

	"cryptonn/internal/febo"
	"cryptonn/internal/feip"
	"cryptonn/internal/group"
	"cryptonn/internal/thresh"
)

// ErrNotProvisioned reports a partial-key request for a FEIP dimension the
// node holds no shares for. In-process clusters extend lazily and never
// return it; file-provisioned nodes cannot run a unilateral DKG, so the
// operator must re-run the provisioning ceremony with the new dimension.
var ErrNotProvisioned = errors.New("authority: dimension not provisioned on this node")

// feipShareDim is one FEIP dimension's threshold state: the joint public
// key and every node's share vector.
type feipShareDim struct {
	mpk *feip.MasterPublicKey
	// shares[j-1][i] is node j's share of master scalar s_i.
	shares [][]*big.Int
}

// feboShareState is the FEBO threshold state: joint public key, per-node
// scalar shares and the public share commitments A_j = g^{s^(j)} clients
// verify partial-key DLEQ proofs against.
type feboShareState struct {
	pk        *febo.PublicKey
	shares    []*big.Int
	pubShares []*big.Int
}

// Cluster owns the shared threshold state of an in-process N-of-T
// authority cluster and hands out its Nodes. It is safe for concurrent
// use; FEIP dimensions are DKG'd lazily on first request, under one lock,
// so every node sees the same joint keys.
type Cluster struct {
	params *group.Params
	t, n   int
	rnd    io.Reader

	mu   sync.Mutex
	feip map[int]*feipShareDim
	febo *feboShareState
}

// NewCluster runs the FEBO DKG and prepares an N-node cluster with
// reconstruction threshold t. Randomness is drawn from rnd (crypto/rand
// when nil).
func NewCluster(params *group.Params, policy Policy, t, n int, rnd io.Reader) (*Cluster, []*Node, error) {
	if params == nil {
		return nil, nil, errors.New("authority: nil group parameters")
	}
	if err := params.Validate(); err != nil {
		return nil, nil, fmt.Errorf("authority: %w", err)
	}
	if err := thresh.CheckTN(t, n); err != nil {
		return nil, nil, fmt.Errorf("authority: %w", err)
	}
	c := &Cluster{
		params: params,
		t:      t,
		n:      n,
		rnd:    rnd,
		feip:   make(map[int]*feipShareDim),
	}
	res, err := thresh.RunDKG(params, t, n, rnd)
	if err != nil {
		return nil, nil, fmt.Errorf("authority: FEBO cluster setup: %w", err)
	}
	fb := &feboShareState{
		pk:        &febo.PublicKey{Params: params, H: res.Pub},
		shares:    make([]*big.Int, n),
		pubShares: res.PubShares,
	}
	for j, sh := range res.Shares {
		fb.shares[j] = sh.V
	}
	c.febo = fb
	nodes := make([]*Node, n)
	for j := 1; j <= n; j++ {
		nodes[j-1] = &Node{cluster: c, params: params, policy: policy, index: int64(j), t: t, n: n}
	}
	return c, nodes, nil
}

// feipDim returns (running the DKG on first use) the threshold state for
// dimension eta.
func (c *Cluster) feipDim(eta int) (*feipShareDim, error) {
	if eta <= 0 {
		return nil, fmt.Errorf("authority: invalid FEIP dimension %d", eta)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if d, ok := c.feip[eta]; ok {
		return d, nil
	}
	d := &feipShareDim{
		mpk:    &feip.MasterPublicKey{Params: c.params, H: make([]*big.Int, eta)},
		shares: make([][]*big.Int, c.n),
	}
	for j := range d.shares {
		d.shares[j] = make([]*big.Int, eta)
	}
	// One dealerless DKG per master scalar s_i: the joint h_i = g^{s_i}
	// and each node's share of s_i, with Σ contributions never summed at
	// index 0.
	for i := 0; i < eta; i++ {
		res, err := thresh.RunDKG(c.params, c.t, c.n, c.rnd)
		if err != nil {
			return nil, fmt.Errorf("authority: FEIP DKG for η=%d coordinate %d: %w", eta, i, err)
		}
		d.mpk.H[i] = res.Pub
		for j := range d.shares {
			d.shares[j][i] = res.Shares[j].V
		}
	}
	c.feip[eta] = d
	return d, nil
}

// Node is one share-holding member of an authority cluster. It exposes
// the same public-key surface as Authority plus partial-key derivation;
// it can never produce a whole function key. A Node is safe for
// concurrent use.
type Node struct {
	cluster *Cluster // nil for a detached (file-provisioned) node
	params  *group.Params
	policy  Policy
	index   int64
	t, n    int

	mu    sync.Mutex
	feip  map[int]*nodeFEIPDim // detached nodes only
	febo  *nodeFEBO
	stats Stats
}

// nodeFEIPDim is a detached node's provisioned state for one dimension.
type nodeFEIPDim struct {
	mpk    *feip.MasterPublicKey
	shares []*big.Int
}

// nodeFEBO is a detached node's FEBO share state.
type nodeFEBO struct {
	pk        *febo.PublicKey
	share     *big.Int
	pubShares []*big.Int
}

// Index returns the node's 1-based share index.
func (nd *Node) Index() int64 { return nd.index }

// Threshold returns the cluster's reconstruction threshold T.
func (nd *Node) Threshold() int { return nd.t }

// ClusterSize returns the cluster's node count N.
func (nd *Node) ClusterSize() int { return nd.n }

// Params returns the group parameters the node operates over.
func (nd *Node) Params() *group.Params { return nd.params }

// Stats returns a snapshot of partial-key issuance counters.
func (nd *Node) Stats() Stats {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	return nd.stats
}

func (nd *Node) feipFor(eta int) (*feip.MasterPublicKey, []*big.Int, error) {
	if nd.cluster != nil {
		d, err := nd.cluster.feipDim(eta)
		if err != nil {
			return nil, nil, err
		}
		return d.mpk, d.shares[nd.index-1], nil
	}
	nd.mu.Lock()
	defer nd.mu.Unlock()
	d, ok := nd.feip[eta]
	if !ok {
		return nil, nil, fmt.Errorf("%w: η=%d (node %d)", ErrNotProvisioned, eta, nd.index)
	}
	return d.mpk, d.shares, nil
}

func (nd *Node) feboState() (*nodeFEBO, error) {
	if nd.cluster != nil {
		fb := nd.cluster.febo
		return &nodeFEBO{pk: fb.pk, share: fb.shares[nd.index-1], pubShares: fb.pubShares}, nil
	}
	nd.mu.Lock()
	defer nd.mu.Unlock()
	if nd.febo == nil {
		return nil, fmt.Errorf("%w: FEBO (node %d)", ErrNotProvisioned, nd.index)
	}
	return nd.febo, nil
}

// FEIPPublic returns the cluster's joint inner-product master public key
// for dimension eta (creating it on first use for in-process clusters).
func (nd *Node) FEIPPublic(eta int) (*feip.MasterPublicKey, error) {
	mpk, _, err := nd.feipFor(eta)
	return mpk, err
}

// FEBOPublic returns the cluster's joint basic-operation public key.
func (nd *Node) FEBOPublic() (*febo.PublicKey, error) {
	fb, err := nd.feboState()
	if err != nil {
		return nil, err
	}
	return fb.pk, nil
}

// FEBOSharePublics returns every node's public share commitment
// A_j = g^{s^(j)}, indexed by share index − 1. Clients verify partial
// FEBO keys' DLEQ proofs against these.
func (nd *Node) FEBOSharePublics() ([]*big.Int, error) {
	fb, err := nd.feboState()
	if err != nil {
		return nil, err
	}
	return fb.pubShares, nil
}

// PartialIPKey derives this node's partial inner-product key
// k_j = ⟨y, s^(j)⟩ mod Q, subject to policy. Any T partials combine to
// the function key via thresh.CombineScalars.
func (nd *Node) PartialIPKey(y []int64) (*big.Int, error) {
	ks, err := nd.PartialIPKeyBatch([][]int64{y})
	if err != nil {
		return nil, err
	}
	return ks[0], nil
}

// PartialIPKeyBatch derives one partial inner-product key per weight
// vector, in order, subject to policy.
func (nd *Node) PartialIPKeyBatch(ys [][]int64) ([]*big.Int, error) {
	if !nd.policy.DotProduct {
		return nil, fmt.Errorf("%w: dot-product", ErrNotPermitted)
	}
	if len(ys) == 0 {
		return nil, errors.New("authority: empty key batch")
	}
	eta := len(ys[0])
	_, shares, err := nd.feipFor(eta)
	if err != nil {
		return nil, err
	}
	// The share vector is a drop-in master secret for the derivation
	// arithmetic: partial derivation IS KeyDerive over the share.
	msk := &feip.MasterSecretKey{S: shares}
	out := make([]*big.Int, len(ys))
	for i, y := range ys {
		if len(y) != eta {
			return nil, fmt.Errorf("authority: batch vector %d has η=%d, want %d", i, len(y), eta)
		}
		fk, err := feip.KeyDerive(nd.params, msk, y)
		if err != nil {
			return nil, fmt.Errorf("authority: partial key for vector %d: %w", i, err)
		}
		out[i] = fk.K
	}
	nd.mu.Lock()
	nd.stats.IPKeys += uint64(len(ys))
	nd.stats.IPKeyScalars += uint64(len(ys) * eta)
	nd.mu.Unlock()
	return out, nil
}

// PartialBOKeyBatch derives this node's partial basic-operation keys
// P_j = cmt^{s^(j)} for every commitment, subject to policy, together
// with one batched Chaum–Pedersen proof that each partial was raised to
// the node's committed share. The op-dependent transform (·g^{∓y}, ^y,
// ^{y⁻¹}) is public and applied by the combining client.
func (nd *Node) PartialBOKeyBatch(cmts []*big.Int, op febo.Op, ys []int64) ([]*big.Int, *thresh.EqProof, error) {
	if !nd.policy.BasicOps[op] {
		return nil, nil, fmt.Errorf("%w: %s", ErrNotPermitted, op)
	}
	if len(cmts) == 0 || len(cmts) != len(ys) {
		return nil, nil, fmt.Errorf("authority: %d commitments for %d scalars", len(cmts), len(ys))
	}
	fb, err := nd.feboState()
	if err != nil {
		return nil, nil, err
	}
	mc := nd.params.Mont()
	k := mc.Limbs()
	buf := make([]uint64, k)
	out := make([]*big.Int, len(cmts))
	for i, cmt := range cmts {
		if cmt == nil || !nd.params.IsElement(cmt) {
			return nil, nil, fmt.Errorf("%w: commitment %d not a group element", febo.ErrMalformed, i)
		}
		if op == febo.OpDiv && ys[i] == 0 {
			return nil, nil, fmt.Errorf("%w: division key: zero divisor", febo.ErrMalformed)
		}
		mc.ToMont(buf, cmt)
		mc.ExpMont(buf, buf, fb.share)
		out[i] = mc.FromMont(buf)
	}
	proof, err := thresh.ProveEqBatch(nd.params, fb.share, fb.pubShares[nd.index-1], cmts, out, nd.rand())
	if err != nil {
		return nil, nil, fmt.Errorf("authority: partial key proof: %w", err)
	}
	nd.mu.Lock()
	nd.stats.BOKeys += uint64(len(cmts))
	nd.mu.Unlock()
	return out, proof, nil
}

func (nd *Node) rand() io.Reader {
	if nd.cluster != nil {
		return nd.cluster.rnd
	}
	return nil
}
