package authority_test

import (
	"errors"
	"sync"
	"testing"

	"cryptonn/internal/authority"
	"cryptonn/internal/dlog"
	"cryptonn/internal/febo"
	"cryptonn/internal/feip"
	"cryptonn/internal/group"
)

func newAuth(t *testing.T, p authority.Policy) *authority.Authority {
	t.Helper()
	auth, err := authority.New(group.TestParams(), p)
	if err != nil {
		t.Fatal(err)
	}
	return auth
}

func TestNewValidation(t *testing.T) {
	if _, err := authority.New(nil, authority.AllowAll()); err == nil {
		t.Error("nil params accepted")
	}
	bad := &group.Params{}
	if _, err := authority.New(bad, authority.AllowAll()); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestFEIPKeysArePerDimensionAndCached(t *testing.T) {
	auth := newAuth(t, authority.AllowAll())
	k4a, err := auth.FEIPPublic(4)
	if err != nil {
		t.Fatal(err)
	}
	k4b, err := auth.FEIPPublic(4)
	if err != nil {
		t.Fatal(err)
	}
	if k4a != k4b {
		t.Error("same dimension returned distinct key objects (cache miss)")
	}
	k7, err := auth.FEIPPublic(7)
	if err != nil {
		t.Fatal(err)
	}
	if k7.Eta() != 7 || k4a.Eta() != 4 {
		t.Errorf("dimensions %d/%d, want 7/4", k7.Eta(), k4a.Eta())
	}
	if _, err := auth.FEIPPublic(0); err == nil {
		t.Error("dimension 0 accepted")
	}
}

func TestPolicyDeniesDotProduct(t *testing.T) {
	auth := newAuth(t, authority.Policy{BasicOps: map[febo.Op]bool{febo.OpAdd: true}})
	if _, err := auth.IPKey([]int64{1, 2}); !errors.Is(err, authority.ErrNotPermitted) {
		t.Errorf("IPKey error = %v, want ErrNotPermitted", err)
	}
	if _, err := auth.IPKeyBatch([][]int64{{1, 2}}); !errors.Is(err, authority.ErrNotPermitted) {
		t.Errorf("IPKeyBatch error = %v, want ErrNotPermitted", err)
	}
}

func TestPolicyDeniesPerOp(t *testing.T) {
	auth := newAuth(t, authority.Policy{
		DotProduct: true,
		BasicOps:   map[febo.Op]bool{febo.OpAdd: true},
	})
	pk, err := auth.FEBOPublic()
	if err != nil {
		t.Fatal(err)
	}
	ct, err := febo.Encrypt(pk, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := auth.BOKey(ct.Cmt, febo.OpAdd, 3); err != nil {
		t.Errorf("permitted op denied: %v", err)
	}
	for _, op := range []febo.Op{febo.OpSub, febo.OpMul, febo.OpDiv} {
		if _, err := auth.BOKey(ct.Cmt, op, 3); !errors.Is(err, authority.ErrNotPermitted) {
			t.Errorf("%s error = %v, want ErrNotPermitted", op, err)
		}
	}
}

func TestIPKeyBatchMatchesIndividualKeys(t *testing.T) {
	auth := newAuth(t, authority.AllowAll())
	ys := [][]int64{{1, 2, 3}, {-4, 5, -6}, {7, 0, 9}}
	batch, err := auth.IPKeyBatch(ys)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(ys) {
		t.Fatalf("batch size %d, want %d", len(batch), len(ys))
	}
	for i, y := range ys {
		single, err := auth.IPKey(y)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i].K.Cmp(single.K) != 0 {
			t.Errorf("batch key %d differs from individual derivation", i)
		}
	}
	if _, err := auth.IPKeyBatch(nil); err == nil {
		t.Error("empty batch accepted")
	}
}

func TestIPKeyBatchKeysDecrypt(t *testing.T) {
	auth := newAuth(t, authority.AllowAll())
	x := []int64{3, -2, 8}
	ys := [][]int64{{1, 1, 1}, {2, 0, -1}}
	mpk, err := auth.FEIPPublic(len(x))
	if err != nil {
		t.Fatal(err)
	}
	ct, err := feip.Encrypt(mpk, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	solver, err := dlog.NewSolver(group.TestParams(), 100)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := auth.IPKeyBatch(ys)
	if err != nil {
		t.Fatal(err)
	}
	for i, y := range ys {
		got, err := feip.Decrypt(mpk, ct, keys[i], y, solver)
		if err != nil {
			t.Fatalf("decrypt with batch key %d: %v", i, err)
		}
		var want int64
		for k := range x {
			want += x[k] * y[k]
		}
		if got != want {
			t.Errorf("key %d: ⟨x,y⟩ = %d, want %d", i, got, want)
		}
	}
}

func TestStatsCountIssuedKeys(t *testing.T) {
	auth := newAuth(t, authority.AllowAll())
	if s := auth.Stats(); s.IPKeys != 0 || s.BOKeys != 0 {
		t.Fatalf("fresh stats %+v", s)
	}
	if _, err := auth.IPKey([]int64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := auth.IPKeyBatch([][]int64{{1, 2}, {3, 4}}); err != nil {
		t.Fatal(err)
	}
	pk, err := auth.FEBOPublic()
	if err != nil {
		t.Fatal(err)
	}
	ct, err := febo.Encrypt(pk, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := auth.BOKey(ct.Cmt, febo.OpAdd, 2); err != nil {
		t.Fatal(err)
	}
	s := auth.Stats()
	if s.IPKeys != 3 {
		t.Errorf("IPKeys = %d, want 3", s.IPKeys)
	}
	if s.IPKeyScalars != 3+2+2 {
		t.Errorf("IPKeyScalars = %d, want 7", s.IPKeyScalars)
	}
	if s.BOKeys != 1 {
		t.Errorf("BOKeys = %d, want 1", s.BOKeys)
	}
	auth.ResetStats()
	if s := auth.Stats(); s.IPKeys != 0 || s.BOKeys != 0 || s.IPKeyScalars != 0 {
		t.Errorf("after reset: %+v", s)
	}
}

// TestConcurrentKeyIssuance exercises the authority from many goroutines;
// run with -race to verify the locking discipline.
func TestConcurrentKeyIssuance(t *testing.T) {
	auth := newAuth(t, authority.AllowAll())
	var wg sync.WaitGroup
	errCh := make(chan error, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if _, err := auth.IPKey([]int64{int64(g), int64(i)}); err != nil {
					errCh <- err
					return
				}
				if _, err := auth.FEIPPublic(2 + g%3); err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if s := auth.Stats(); s.IPKeys != 32 {
		t.Errorf("IPKeys = %d, want 32", s.IPKeys)
	}
}
