// Package experiments regenerates every table and figure of the paper's
// evaluation section (§IV-B) over this reproduction's substrates:
//
//	Fig. 3 (a–d)  element-wise addition micro-benchmarks    → Fig3
//	Fig. 4 (a–d)  element-wise multiplication               → Fig4
//	Fig. 5 (a–d)  dot-product                               → Fig5
//	Fig. 6        avg batch accuracy, LeNet-5 vs CryptoCNN  → Fig6
//	Table III     accuracy + training time comparison       → Table3
//	§IV-B2        key-traffic communication overhead        → CommOverhead
//
// Functions return structured series; cmd/cryptonn-bench renders them in
// the paper's layout. Sizes and the security parameter are configurable:
// the paper's exact setting (256-bit group, 2k–10k elements, full MNIST,
// 2 epochs) is reachable but takes the paper's half-hours-to-days; the
// defaults are scaled down so the whole suite runs on a laptop in minutes
// while preserving every qualitative shape (see EXPERIMENTS.md).
package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"cryptonn/internal/authority"
	"cryptonn/internal/dlog"
	"cryptonn/internal/group"
	"cryptonn/internal/securemat"
)

// ValueRange is a plaintext sampling range [Lo, Hi], matching the legends
// of Fig. 3–5.
type ValueRange struct {
	Lo, Hi int64
}

func (r ValueRange) String() string { return fmt.Sprintf("[%d,%d]", r.Lo, r.Hi) }

// MicroConfig parameterizes the element-wise micro-benchmarks (Fig. 3/4).
type MicroConfig struct {
	// Bits selects the group size; the paper uses 256. Zero selects the
	// fast 64-bit test group.
	Bits int
	// Sizes are element counts per measurement (the paper sweeps
	// 2k..10k).
	Sizes []int
	// Ranges are the value ranges of the figure legends.
	Ranges []ValueRange
	// Parallelism for the parallelized curves; <0 selects NumCPU.
	Parallelism int
	// Seed makes the sweep deterministic.
	Seed int64
}

func (c *MicroConfig) fillDefaults() {
	if c.Bits == 0 {
		c.Bits = group.TestBits
	}
	if len(c.Sizes) == 0 {
		c.Sizes = []int{200, 400, 600, 800, 1000}
	}
	if len(c.Ranges) == 0 {
		c.Ranges = []ValueRange{{-10, 10}, {-100, 100}, {-1000, 1000}}
	}
	if c.Parallelism == 0 {
		c.Parallelism = securemat.DefaultParallelism()
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// MicroPoint is one measured point of Fig. 3 or Fig. 4: the four panels
// are the four duration columns.
type MicroPoint struct {
	Size       int
	Range      ValueRange
	Encrypt    time.Duration // panel (a): pre-processing for encryption
	KeyDerive  time.Duration // panel (b): pre-processing for function key
	ComputeSeq time.Duration // panel (c): secure computation, sequential
	ComputePar time.Duration // panel (c)/(d): secure computation, parallel
}

// Fig3 measures secure element-wise addition (Fig. 3 a–d).
func Fig3(cfg MicroConfig) ([]MicroPoint, error) {
	return microSweep(cfg, securemat.ElementwiseAdd)
}

// Fig4 measures secure element-wise multiplication (Fig. 4 a–d).
func Fig4(cfg MicroConfig) ([]MicroPoint, error) {
	return microSweep(cfg, securemat.ElementwiseMul)
}

func microSweep(cfg MicroConfig, f securemat.Function) ([]MicroPoint, error) {
	cfg.fillDefaults()
	params, err := group.Embedded(cfg.Bits)
	if err != nil {
		return nil, err
	}
	auth, err := authority.New(params, authority.AllowAll())
	if err != nil {
		return nil, err
	}
	base, err := securemat.NewEngine(auth, securemat.EngineOptions{})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	var points []MicroPoint
	for _, r := range cfg.Ranges {
		// Bound covers the worst result of the op over the range.
		maxAbs := r.Hi
		if -r.Lo > maxAbs {
			maxAbs = -r.Lo
		}
		bound := 2 * maxAbs
		if f == securemat.ElementwiseMul {
			bound = maxAbs*maxAbs + 1
		}
		solver, err := dlog.NewSolver(params, bound)
		if err != nil {
			return nil, err
		}
		eng := base.WithSolver(solver)
		for _, size := range cfg.Sizes {
			p, err := microPoint(eng, rng, f, size, r, cfg.Parallelism)
			if err != nil {
				return nil, fmt.Errorf("experiments: size %d range %s: %w", size, r, err)
			}
			points = append(points, p)
		}
	}
	return points, nil
}

func microPoint(eng *securemat.Engine, rng *rand.Rand, f securemat.Function, size int, r ValueRange, par int) (MicroPoint, error) {
	// Lay the elements out as a 1×size matrix, like the paper's flat
	// element-count x-axis.
	x := randMatrix(rng, 1, size, r)
	y := randMatrix(rng, 1, size, r)

	start := time.Now()
	enc, err := eng.Encrypt(x, securemat.EncryptOptions{})
	if err != nil {
		return MicroPoint{}, err
	}
	encDur := time.Since(start)

	start = time.Now()
	keys, err := eng.ElementwiseKeys(enc, f, y)
	if err != nil {
		return MicroPoint{}, err
	}
	keyDur := time.Since(start)

	start = time.Now()
	seq, err := eng.SecureElementwise(enc, keys, f, y, securemat.ComputeOptions{Parallelism: 1})
	if err != nil {
		return MicroPoint{}, err
	}
	seqDur := time.Since(start)

	start = time.Now()
	parRes, err := eng.SecureElementwise(enc, keys, f, y, securemat.ComputeOptions{Parallelism: par})
	if err != nil {
		return MicroPoint{}, err
	}
	parDur := time.Since(start)

	// Cross-check both paths against plaintext.
	op, _ := f.BasicOp()
	for j := 0; j < size; j++ {
		want, err := op.Apply(x[0][j], y[0][j])
		if err != nil {
			return MicroPoint{}, err
		}
		if seq[0][j] != want || parRes[0][j] != want {
			return MicroPoint{}, fmt.Errorf("experiments: secure %s mismatch at %d", f, j)
		}
	}
	return MicroPoint{Size: size, Range: r, Encrypt: encDur, KeyDerive: keyDur, ComputeSeq: seqDur, ComputePar: parDur}, nil
}

func randMatrix(rng *rand.Rand, rows, cols int, r ValueRange) [][]int64 {
	m := make([][]int64, rows)
	span := r.Hi - r.Lo + 1
	for i := range m {
		m[i] = make([]int64, cols)
		for j := range m[i] {
			m[i][j] = r.Lo + rng.Int63n(span)
		}
	}
	return m
}

// DotConfig parameterizes the dot-product sweep (Fig. 5).
type DotConfig struct {
	// Bits selects the group size (paper: 256; zero selects 64).
	Bits int
	// Counts are the numbers of vectors (the paper sweeps 2k–10k).
	Counts []int
	// Lengths are vector lengths l (paper: 10 and 100).
	Lengths []int
	// Ranges are value ranges v (paper: [1,10] and [1,100]).
	Ranges []ValueRange
	// Parallelism for the parallel curve; <0 selects NumCPU.
	Parallelism int
	// Seed makes the sweep deterministic.
	Seed int64
}

func (c *DotConfig) fillDefaults() {
	if c.Bits == 0 {
		c.Bits = group.TestBits
	}
	if len(c.Counts) == 0 {
		c.Counts = []int{100, 200, 300, 400, 500}
	}
	if len(c.Lengths) == 0 {
		c.Lengths = []int{10, 100}
	}
	if len(c.Ranges) == 0 {
		c.Ranges = []ValueRange{{1, 10}, {1, 100}}
	}
	if c.Parallelism == 0 {
		c.Parallelism = securemat.DefaultParallelism()
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// DotPoint is one measured point of Fig. 5.
type DotPoint struct {
	Count      int
	Length     int
	Range      ValueRange
	Encrypt    time.Duration
	KeyDerive  time.Duration
	ComputeSeq time.Duration
	ComputePar time.Duration
}

// Fig5 measures the secure dot-product (Fig. 5 a–d): count vectors of
// length l are encrypted; one weight vector of the same length is keyed;
// the secure computation evaluates every ⟨w, x_i⟩.
func Fig5(cfg DotConfig) ([]DotPoint, error) {
	cfg.fillDefaults()
	params, err := group.Embedded(cfg.Bits)
	if err != nil {
		return nil, err
	}
	auth, err := authority.New(params, authority.AllowAll())
	if err != nil {
		return nil, err
	}
	base, err := securemat.NewEngine(auth, securemat.EngineOptions{})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	var points []DotPoint
	for _, l := range cfg.Lengths {
		for _, r := range cfg.Ranges {
			bound := int64(l)*r.Hi*r.Hi + 1
			solver, err := dlog.NewSolver(params, bound)
			if err != nil {
				return nil, err
			}
			eng := base.WithSolver(solver)
			for _, count := range cfg.Counts {
				p, err := dotPoint(eng, rng, count, l, r, cfg.Parallelism)
				if err != nil {
					return nil, fmt.Errorf("experiments: dot count %d l %d %s: %w", count, l, r, err)
				}
				points = append(points, p)
			}
		}
	}
	return points, nil
}

func dotPoint(eng *securemat.Engine, rng *rand.Rand, count, l int, r ValueRange, par int) (DotPoint, error) {
	// X is (l × count): one vector per column, exactly the secure matrix
	// layout; W is a single weight row.
	x := randMatrix(rng, l, count, r)
	w := randMatrix(rng, 1, l, r)

	start := time.Now()
	enc, err := eng.Encrypt(x, securemat.EncryptOptions{SkipElems: true})
	if err != nil {
		return DotPoint{}, err
	}
	encDur := time.Since(start)

	start = time.Now()
	keys, err := eng.DotKeys(w)
	if err != nil {
		return DotPoint{}, err
	}
	keyDur := time.Since(start)

	start = time.Now()
	seq, err := eng.SecureDot(enc, keys, w, securemat.ComputeOptions{Parallelism: 1})
	if err != nil {
		return DotPoint{}, err
	}
	seqDur := time.Since(start)

	start = time.Now()
	parRes, err := eng.SecureDot(enc, keys, w, securemat.ComputeOptions{Parallelism: par})
	if err != nil {
		return DotPoint{}, err
	}
	parDur := time.Since(start)

	for j := 0; j < count; j++ {
		var want int64
		for i := 0; i < l; i++ {
			want += w[0][i] * x[i][j]
		}
		if seq[0][j] != want || parRes[0][j] != want {
			return DotPoint{}, fmt.Errorf("experiments: secure dot mismatch at %d", j)
		}
	}
	return DotPoint{Count: count, Length: l, Range: r, Encrypt: encDur, KeyDerive: keyDur, ComputeSeq: seqDur, ComputePar: parDur}, nil
}
