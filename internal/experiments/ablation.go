package experiments

// Ablations: measurements of the design choices the paper makes in
// passing but never quantifies.
//
//   - AblationDotComposition — §III-C: "even though the secure dot-product
//     computation can also be achieved using secure element-wise
//     multiplication ... we still separate it as an independent function
//     here due to efficiency considerations." This ablation measures both
//     paths and quantifies those considerations.
//   - AblationParallelism — §III-C's parallelization claim, as a worker
//     sweep instead of the single seq/par pair of Fig. 3–5.
//   - AblationGroupBits — the security-parameter cost curve (the paper
//     fixes 256 bits; this shows what that choice buys and costs).

import (
	"fmt"
	"math/rand"
	"time"

	"cryptonn/internal/authority"
	"cryptonn/internal/dlog"
	"cryptonn/internal/group"
	"cryptonn/internal/securemat"
)

// DotCompositionConfig parameterizes AblationDotComposition.
type DotCompositionConfig struct {
	// Bits selects the group (zero: 64).
	Bits int
	// Rows is the weight-matrix row count (hidden units).
	Rows int
	// Inner is the shared dimension (features).
	Inner int
	// Cols is the batch size.
	Cols int
	// MaxVal bounds the sampled values.
	MaxVal int64
	// Seed fixes the inputs.
	Seed int64
}

func (c *DotCompositionConfig) fillDefaults() {
	if c.Bits == 0 {
		c.Bits = group.TestBits
	}
	if c.Rows == 0 {
		c.Rows = 4
	}
	if c.Inner == 0 {
		c.Inner = 16
	}
	if c.Cols == 0 {
		c.Cols = 8
	}
	if c.MaxVal == 0 {
		c.MaxVal = 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// DotCompositionResult compares the two ways to compute W·X securely.
type DotCompositionResult struct {
	// FEIPTime is the native secure dot-product path (one FEIP
	// decryption per output cell).
	FEIPTime time.Duration
	// FEIPKeys is the number of function keys the FEIP path needs
	// (one per row of W).
	FEIPKeys int
	// FEBOTime is the element-wise composition: every product X[k][j] ·
	// W[i][k] via FEBO multiplication, summed in plaintext.
	FEBOTime time.Duration
	// FEBOKeys is the number of function keys the FEBO path needs (one
	// per ciphertext × weight pairing — the per-commitment binding).
	FEBOKeys int
	// Speedup is FEBOTime / FEIPTime.
	Speedup float64
}

// AblationDotComposition measures W·X by the native FEIP dot-product and
// by composing FEBO element-wise multiplications, verifying both against
// plaintext and timing them.
func AblationDotComposition(cfg DotCompositionConfig) (*DotCompositionResult, error) {
	cfg.fillDefaults()
	params, err := group.Embedded(cfg.Bits)
	if err != nil {
		return nil, err
	}
	auth, err := authority.New(params, authority.AllowAll())
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := randMatrix(rng, cfg.Rows, cfg.Inner, ValueRange{-cfg.MaxVal, cfg.MaxVal})
	x := randMatrix(rng, cfg.Inner, cfg.Cols, ValueRange{-cfg.MaxVal, cfg.MaxVal})

	want := make([][]int64, cfg.Rows)
	for i := range want {
		want[i] = make([]int64, cfg.Cols)
		for j := 0; j < cfg.Cols; j++ {
			var acc int64
			for k := 0; k < cfg.Inner; k++ {
				acc += w[i][k] * x[k][j]
			}
			want[i][j] = acc
		}
	}

	base, err := securemat.NewEngine(auth, securemat.EngineOptions{})
	if err != nil {
		return nil, err
	}
	ipSolver, err := dlog.NewSolver(params, int64(cfg.Inner)*cfg.MaxVal*cfg.MaxVal+1)
	if err != nil {
		return nil, err
	}
	mulSolver, err := dlog.NewSolver(params, cfg.MaxVal*cfg.MaxVal+1)
	if err != nil {
		return nil, err
	}
	ipEng, mulEng := base.WithSolver(ipSolver), base.WithSolver(mulSolver)

	enc, err := base.Encrypt(x, securemat.EncryptOptions{})
	if err != nil {
		return nil, err
	}
	res := &DotCompositionResult{
		FEIPKeys: cfg.Rows,
		FEBOKeys: cfg.Rows * cfg.Inner * cfg.Cols,
	}

	// Path 1: native FEIP dot-product (Algorithm 1's dedicated branch).
	start := time.Now()
	ipKeys, err := ipEng.DotKeys(w)
	if err != nil {
		return nil, err
	}
	z, err := ipEng.SecureDot(enc, ipKeys, w, securemat.ComputeOptions{Parallelism: 1})
	if err != nil {
		return nil, err
	}
	res.FEIPTime = time.Since(start)
	for i := range want {
		for j := range want[i] {
			if z[i][j] != want[i][j] {
				return nil, fmt.Errorf("experiments: FEIP path mismatch at (%d,%d)", i, j)
			}
		}
	}

	// Path 2: FEBO element-wise multiplication composition. For each
	// output cell (i,j): decrypt X[k][j]·W[i][k] for every k, then sum
	// the plaintext products. Each decryption needs its own key bound to
	// that element's commitment — the cost the paper's remark is about.
	start = time.Now()
	for i := 0; i < cfg.Rows; i++ {
		// The weight row as the element-wise multiplier against every
		// column of X: Y[k][j] = w[i][k].
		y := make([][]int64, cfg.Inner)
		for k := range y {
			y[k] = make([]int64, cfg.Cols)
			for j := 0; j < cfg.Cols; j++ {
				y[k][j] = w[i][k]
			}
		}
		keys, err := mulEng.ElementwiseKeys(enc, securemat.ElementwiseMul, y)
		if err != nil {
			return nil, err
		}
		prods, err := mulEng.SecureElementwise(enc, keys, securemat.ElementwiseMul, y,
			securemat.ComputeOptions{Parallelism: 1})
		if err != nil {
			return nil, err
		}
		for j := 0; j < cfg.Cols; j++ {
			var acc int64
			for k := 0; k < cfg.Inner; k++ {
				acc += prods[k][j]
			}
			if acc != want[i][j] {
				return nil, fmt.Errorf("experiments: FEBO path mismatch at (%d,%d)", i, j)
			}
		}
	}
	res.FEBOTime = time.Since(start)
	if res.FEIPTime > 0 {
		res.Speedup = float64(res.FEBOTime) / float64(res.FEIPTime)
	}
	return res, nil
}

// ParallelismConfig parameterizes AblationParallelism.
type ParallelismConfig struct {
	// Bits selects the group (zero: 64).
	Bits int
	// Workers lists the worker counts to sweep.
	Workers []int
	// Count and Length shape the dot-product workload.
	Count, Length int
	// MaxVal bounds values.
	MaxVal int64
	// Seed fixes the workload.
	Seed int64
}

func (c *ParallelismConfig) fillDefaults() {
	if c.Bits == 0 {
		c.Bits = group.TestBits
	}
	if len(c.Workers) == 0 {
		c.Workers = []int{1, 2, 4, 8}
	}
	if c.Count == 0 {
		c.Count = 200
	}
	if c.Length == 0 {
		c.Length = 50
	}
	if c.MaxVal == 0 {
		c.MaxVal = 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// ParallelismPoint is one measured worker count.
type ParallelismPoint struct {
	Workers int
	Time    time.Duration
	// Speedup is time(1 worker) / Time.
	Speedup float64
}

// AblationParallelism sweeps the decryption worker count over a fixed
// secure dot-product workload (the generalization of the seq/"P" pairs
// of Fig. 3–5).
func AblationParallelism(cfg ParallelismConfig) ([]ParallelismPoint, error) {
	cfg.fillDefaults()
	params, err := group.Embedded(cfg.Bits)
	if err != nil {
		return nil, err
	}
	auth, err := authority.New(params, authority.AllowAll())
	if err != nil {
		return nil, err
	}
	solver, err := dlog.NewSolver(params, int64(cfg.Length)*cfg.MaxVal*cfg.MaxVal+1)
	if err != nil {
		return nil, err
	}
	eng, err := securemat.NewEngine(auth, securemat.EngineOptions{Solver: solver})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	x := randMatrix(rng, cfg.Length, cfg.Count, ValueRange{1, cfg.MaxVal})
	w := randMatrix(rng, 1, cfg.Length, ValueRange{1, cfg.MaxVal})
	enc, err := eng.Encrypt(x, securemat.EncryptOptions{SkipElems: true})
	if err != nil {
		return nil, err
	}
	keys, err := eng.DotKeys(w)
	if err != nil {
		return nil, err
	}

	var points []ParallelismPoint
	var base time.Duration
	for _, workers := range cfg.Workers {
		start := time.Now()
		if _, err := eng.SecureDot(enc, keys, w,
			securemat.ComputeOptions{Parallelism: workers}); err != nil {
			return nil, err
		}
		d := time.Since(start)
		if len(points) == 0 {
			base = d
		}
		p := ParallelismPoint{Workers: workers, Time: d}
		if d > 0 {
			p.Speedup = float64(base) / float64(d)
		}
		points = append(points, p)
	}
	return points, nil
}

// GroupBitsConfig parameterizes AblationGroupBits.
type GroupBitsConfig struct {
	// Sizes lists the moduli to sweep; zero selects every embedded group.
	Sizes []int
	// Elements is the element-wise addition workload size.
	Elements int
	// MaxVal bounds values.
	MaxVal int64
	// Seed fixes the workload.
	Seed int64
}

func (c *GroupBitsConfig) fillDefaults() {
	if len(c.Sizes) == 0 {
		c.Sizes = group.EmbeddedSizes()
	}
	if c.Elements == 0 {
		c.Elements = 100
	}
	if c.MaxVal == 0 {
		c.MaxVal = 100
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// GroupBitsPoint is one measured security parameter.
type GroupBitsPoint struct {
	Bits      int
	Encrypt   time.Duration
	KeyDerive time.Duration
	Compute   time.Duration
}

// AblationGroupBits runs a fixed secure element-wise addition workload
// at every embedded group size, exposing the cost of the security
// parameter the paper fixes at 256.
func AblationGroupBits(cfg GroupBitsConfig) ([]GroupBitsPoint, error) {
	cfg.fillDefaults()
	var points []GroupBitsPoint
	for _, bits := range cfg.Sizes {
		params, err := group.Embedded(bits)
		if err != nil {
			return nil, err
		}
		auth, err := authority.New(params, authority.AllowAll())
		if err != nil {
			return nil, err
		}
		solver, err := dlog.NewSolver(params, 2*cfg.MaxVal+1)
		if err != nil {
			return nil, err
		}
		eng, err := securemat.NewEngine(auth, securemat.EngineOptions{Solver: solver})
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(cfg.Seed))
		x := randMatrix(rng, 1, cfg.Elements, ValueRange{-cfg.MaxVal, cfg.MaxVal})
		y := randMatrix(rng, 1, cfg.Elements, ValueRange{-cfg.MaxVal, cfg.MaxVal})

		start := time.Now()
		enc, err := eng.Encrypt(x, securemat.EncryptOptions{})
		if err != nil {
			return nil, err
		}
		encDur := time.Since(start)

		start = time.Now()
		keys, err := eng.ElementwiseKeys(enc, securemat.ElementwiseAdd, y)
		if err != nil {
			return nil, err
		}
		keyDur := time.Since(start)

		start = time.Now()
		z, err := eng.SecureElementwise(enc, keys, securemat.ElementwiseAdd, y,
			securemat.ComputeOptions{Parallelism: 1})
		if err != nil {
			return nil, err
		}
		compDur := time.Since(start)
		for j := 0; j < cfg.Elements; j++ {
			if z[0][j] != x[0][j]+y[0][j] {
				return nil, fmt.Errorf("experiments: %d-bit addition mismatch at %d", bits, j)
			}
		}
		points = append(points, GroupBitsPoint{Bits: bits, Encrypt: encDur, KeyDerive: keyDur, Compute: compDur})
	}
	return points, nil
}
