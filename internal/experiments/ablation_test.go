package experiments

import (
	"testing"

	"cryptonn/internal/group"
)

func TestAblationDotCompositionFEIPWins(t *testing.T) {
	// Large enough that the ~100× decryption-count asymmetry dominates
	// scheduler noise: FEIP decrypts rows×cols = 16 cells, the FEBO
	// composition decrypts rows×inner×cols = 1024.
	res, err := AblationDotComposition(DotCompositionConfig{
		Rows: 2, Inner: 64, Cols: 8, MaxVal: 10, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's "efficiency considerations": the dedicated dot-product
	// path must beat the element-wise composition.
	if res.FEIPTime >= res.FEBOTime {
		t.Errorf("FEIP path %v not faster than FEBO composition %v", res.FEIPTime, res.FEBOTime)
	}
	if res.Speedup <= 1 {
		t.Errorf("speedup = %.2f, want > 1", res.Speedup)
	}
	// Key-count asymmetry: FEIP needs one key per W row; FEBO needs one
	// per (cell, k) pairing.
	if res.FEIPKeys != 2 {
		t.Errorf("FEIP keys = %d, want 2", res.FEIPKeys)
	}
	if res.FEBOKeys != 2*64*8 {
		t.Errorf("FEBO keys = %d, want %d", res.FEBOKeys, 2*64*8)
	}
}

func TestAblationParallelismSweep(t *testing.T) {
	points, err := AblationParallelism(ParallelismConfig{
		Workers: []int{1, 2}, Count: 40, Length: 10, MaxVal: 5, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points, want 2", len(points))
	}
	if points[0].Workers != 1 || points[1].Workers != 2 {
		t.Errorf("worker labels %d,%d", points[0].Workers, points[1].Workers)
	}
	for _, p := range points {
		if p.Time <= 0 {
			t.Errorf("workers=%d: no time measured", p.Workers)
		}
	}
	if points[0].Speedup != 1 {
		t.Errorf("baseline speedup = %.2f, want 1", points[0].Speedup)
	}
}

func TestAblationGroupBitsMonotone(t *testing.T) {
	points, err := AblationGroupBits(GroupBitsConfig{
		Sizes: []int{64, 256}, Elements: 30, MaxVal: 50, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points, want 2", len(points))
	}
	// Bigger modulus ⇒ more expensive exponentiations, at least for the
	// encryption column (two exponentiations per element both sizes).
	if points[1].Encrypt <= points[0].Encrypt {
		t.Errorf("256-bit encryption %v not slower than 64-bit %v",
			points[1].Encrypt, points[0].Encrypt)
	}
}

func TestAblationGroupBitsDefaultsCoverEmbedded(t *testing.T) {
	cfg := GroupBitsConfig{}
	cfg.fillDefaults()
	if len(cfg.Sizes) != len(group.EmbeddedSizes()) {
		t.Errorf("default sizes %v, want the embedded set %v", cfg.Sizes, group.EmbeddedSizes())
	}
}
