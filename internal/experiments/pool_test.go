package experiments

import (
	"testing"

	"cryptonn/internal/tensor"
)

func TestPoolColumnsIdentityAtFactorOne(t *testing.T) {
	x := tensor.NewDense(16, 2)
	for i := range x.Data {
		x.Data[i] = float64(i)
	}
	if got := poolColumns(x, 4, 1); got != x {
		t.Error("factor 1 should return the input unchanged")
	}
}

func TestPoolColumnsAverages(t *testing.T) {
	// One 4×4 image per column; 2× pooling averages each 2×2 block.
	x := tensor.NewDense(16, 1)
	for i := 0; i < 16; i++ {
		x.Set(i, 0, float64(i))
	}
	got := poolColumns(x, 4, 2)
	if got.Rows != 4 || got.Cols != 1 {
		t.Fatalf("pooled shape %dx%d, want 4x1", got.Rows, got.Cols)
	}
	// Block (0,0) holds pixels 0,1,4,5 → mean 2.5; block (0,1) holds
	// 2,3,6,7 → mean 4.5; block (1,0): 8,9,12,13 → 10.5; block (1,1):
	// 10,11,14,15 → 12.5.
	want := []float64{2.5, 4.5, 10.5, 12.5}
	for i, w := range want {
		if got.At(i, 0) != w {
			t.Errorf("pooled[%d] = %v, want %v", i, got.At(i, 0), w)
		}
	}
}

func TestPoolColumnsPreservesColumnCount(t *testing.T) {
	x := tensor.NewDense(64, 5)
	for i := range x.Data {
		x.Data[i] = float64(i % 7)
	}
	got := poolColumns(x, 8, 4)
	if got.Rows != 4 || got.Cols != 5 {
		t.Fatalf("pooled shape %dx%d, want 4x5", got.Rows, got.Cols)
	}
	// Constant-column check: pooling a constant image stays constant.
	c := tensor.NewDense(64, 1)
	for i := range c.Data {
		c.Data[i] = 3.25
	}
	pc := poolColumns(c, 8, 2)
	for i := range pc.Data {
		if pc.Data[i] != 3.25 {
			t.Fatalf("constant image pooled to %v at %d", pc.Data[i], i)
		}
	}
}

func TestTrainConfigPoolDefaults(t *testing.T) {
	cfg := TrainConfig{}
	cfg.fillDefaults()
	if cfg.Pool != 1 {
		t.Errorf("default Pool = %d, want 1", cfg.Pool)
	}
	if cfg.Hidden != 32 {
		t.Errorf("default Hidden = %d, want 32 (the paper's width)", cfg.Hidden)
	}
	if cfg.features() != 28*28 {
		t.Errorf("features() = %d at Pool 1, want 784", cfg.features())
	}
	cfg.Pool = 2
	if cfg.features() != 14*14 {
		t.Errorf("features() = %d at Pool 2, want 196", cfg.features())
	}
}
