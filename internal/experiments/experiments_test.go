package experiments

import (
	"testing"

	"cryptonn/internal/securemat"
)

func tinyMicroConfig() MicroConfig {
	return MicroConfig{
		Sizes:       []int{20, 40},
		Ranges:      []ValueRange{{-10, 10}},
		Parallelism: 2,
		Seed:        1,
	}
}

func TestFig3Shape(t *testing.T) {
	points, err := Fig3(tinyMicroConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	for _, p := range points {
		if p.Encrypt <= 0 || p.KeyDerive <= 0 || p.ComputeSeq <= 0 || p.ComputePar <= 0 {
			t.Errorf("non-positive timing in %+v", p)
		}
	}
	// Linearity shape: doubling the size should not shrink encryption time.
	if points[1].Encrypt < points[0].Encrypt/2 {
		t.Errorf("encryption time shrank with size: %v then %v", points[0].Encrypt, points[1].Encrypt)
	}
}

func TestFig4MulCostsMoreThanFig3Add(t *testing.T) {
	// The paper's headline micro-result: secure multiplication is far more
	// expensive than addition (minutes vs seconds in Fig. 3c/4c) because
	// the discrete-log range grows with the product.
	cfg := MicroConfig{Sizes: []int{30}, Ranges: []ValueRange{{-1000, 1000}}, Parallelism: 1, Seed: 2}
	add, err := Fig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mul, err := Fig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mul[0].ComputeSeq <= add[0].ComputeSeq {
		t.Errorf("mul (%v) should cost more than add (%v)", mul[0].ComputeSeq, add[0].ComputeSeq)
	}
}

func TestFig5Shape(t *testing.T) {
	points, err := Fig5(DotConfig{
		Counts:      []int{10, 20},
		Lengths:     []int{5},
		Ranges:      []ValueRange{{1, 10}},
		Parallelism: 2,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	for _, p := range points {
		if p.Encrypt <= 0 || p.ComputeSeq <= 0 {
			t.Errorf("non-positive timing in %+v", p)
		}
	}
}

func TestFig6ParityShape(t *testing.T) {
	points, err := Fig6(TrainConfig{
		TrainSamples: 60,
		TestSamples:  30,
		BatchSize:    10,
		Epochs:       1,
		TickBatches:  2,
		Parallelism:  2,
		Seed:         4,
		Pool:         4, // 7×7 inputs: tractable on 1-CPU CI boxes
		Hidden:       8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d ticks, want 3", len(points))
	}
	// The paper's claim: the two curves track each other.
	for _, p := range points {
		diff := p.Plain - p.CryptoNN
		if diff < 0 {
			diff = -diff
		}
		if diff > 0.35 {
			t.Errorf("tick %d: plain %.2f vs crypto %.2f diverged", p.Tick, p.Plain, p.CryptoNN)
		}
	}
}

func TestTable3Shape(t *testing.T) {
	res, err := Table3(TrainConfig{
		TrainSamples: 60,
		TestSamples:  40,
		BatchSize:    10,
		Epochs:       2,
		Parallelism:  2,
		Seed:         5,
		Pool:         4,
		Hidden:       8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PlainAcc) != 2 || len(res.CryptoAcc) != 2 {
		t.Fatalf("epoch accuracy counts %d/%d", len(res.PlainAcc), len(res.CryptoAcc))
	}
	// Accuracy parity at each epoch.
	for e := range res.PlainAcc {
		diff := res.PlainAcc[e] - res.CryptoAcc[e]
		if diff < 0 {
			diff = -diff
		}
		if diff > 0.3 {
			t.Errorf("epoch %d: plain %.2f vs crypto %.2f", e+1, res.PlainAcc[e], res.CryptoAcc[e])
		}
	}
	// Training-time shape: CryptoNN is slower (paper: 57h vs 4h).
	if res.Overhead <= 1 {
		t.Errorf("overhead = %.2f, want > 1", res.Overhead)
	}
	if res.EncryptTime <= 0 {
		t.Error("encryption time not measured")
	}
}

func TestCommOverheadMatchesFormula(t *testing.T) {
	res, err := CommOverhead(CommConfig{Features: 12, HiddenUnits: 4, Batch: 5, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	// §IV-B2: forward traffic is exactly k×n scalars and k keys.
	if res.MeasuredForwardScalars != res.PredictedScalars {
		t.Errorf("forward scalars %d, formula %d", res.MeasuredForwardScalars, res.PredictedScalars)
	}
	if res.MeasuredForwardKeys != res.PredictedKeys {
		t.Errorf("forward keys %d, formula %d", res.MeasuredForwardKeys, res.PredictedKeys)
	}
	// A full iteration also pays the gradient and label traffic.
	if res.TotalScalars <= res.PredictedScalars {
		t.Error("full iteration should exceed forward-only traffic")
	}
	if res.TotalBOKeys == 0 {
		t.Error("label step should consume FEBO keys")
	}
}

func TestCNNArchRunsOneTick(t *testing.T) {
	if testing.Short() {
		t.Skip("secure convolution run is slow")
	}
	points, err := Fig6(TrainConfig{
		Arch:         ArchCNN,
		TrainSamples: 8,
		TestSamples:  10,
		BatchSize:    4,
		Epochs:       1,
		TickBatches:  1,
		Parallelism:  2,
		Seed:         7,
		Pool:         2, // 14×14 inputs, 3×3 conv: 196 windows/sample
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d ticks", len(points))
	}
}

func TestUnknownArchFails(t *testing.T) {
	if _, err := Fig6(TrainConfig{Arch: "transformer"}); err == nil {
		t.Error("unknown arch should fail")
	}
}

func TestDefaultsFill(t *testing.T) {
	var mc MicroConfig
	mc.fillDefaults()
	if mc.Bits == 0 || len(mc.Sizes) == 0 || len(mc.Ranges) == 0 || mc.Parallelism == 0 {
		t.Error("micro defaults incomplete")
	}
	var dc DotConfig
	dc.fillDefaults()
	if dc.Bits == 0 || len(dc.Counts) == 0 || len(dc.Lengths) == 0 {
		t.Error("dot defaults incomplete")
	}
	var tc TrainConfig
	tc.fillDefaults()
	if tc.Arch != ArchMLP || tc.BatchSize == 0 {
		t.Error("train defaults incomplete")
	}
	var cc CommConfig
	cc.fillDefaults()
	if cc.Features == 0 || cc.HiddenUnits == 0 {
		t.Error("comm defaults incomplete")
	}
	if securemat.DefaultParallelism() <= 0 {
		t.Error("DefaultParallelism must be positive")
	}
}
