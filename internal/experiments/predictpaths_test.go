package experiments

import "testing"

func TestAblationPredictionPathsRunAndAgree(t *testing.T) {
	res, err := AblationPredictionPaths(PredictPathsConfig{
		Features: 20, Classes: 4, Samples: 6, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Classes) != 6 {
		t.Fatalf("got %d predictions, want 6", len(res.Classes))
	}
	if res.Plain <= 0 || res.FE <= 0 || res.HE <= 0 {
		t.Errorf("missing timings: %+v", res)
	}
	// Both crypto paths run the same fixed-point-quantized linear map;
	// with well-separated random scores they must agree with plaintext.
	if !res.Agree {
		t.Errorf("prediction paths disagree: %+v", res)
	}
	// The crypto paths cannot beat the plaintext forward pass.
	if res.FE < res.Plain || res.HE < res.Plain {
		t.Errorf("crypto path faster than plaintext: plain %v, FE %v, HE %v",
			res.Plain, res.FE, res.HE)
	}
}

func TestAblationPredictionPathsDefaults(t *testing.T) {
	cfg := PredictPathsConfig{}
	cfg.fillDefaults()
	if cfg.Features != 49 || cfg.Classes != 10 || cfg.Samples != 8 {
		t.Errorf("defaults: %+v", cfg)
	}
}
