// ICD: encrypted extreme multi-label classification over sparse inputs.
//
// The workload the sparse engine exists for — ICD coding over medical
// records: bag-of-words inputs with η in the thousands where >95% of
// coordinates are zero, and hundreds-to-thousands of output labels where
// only the top-k logits matter. The sweep measures, per input density,
// the sparse encryption path against the dense one and the top-k
// decryption head against the full per-label solve, cross-checking every
// secure result against plaintext.

package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"cryptonn/internal/authority"
	"cryptonn/internal/dlog"
	"cryptonn/internal/group"
	"cryptonn/internal/securemat"
)

// ICDConfig parameterizes the sparse multi-label sweep.
type ICDConfig struct {
	// Bits selects the group size (paper setting: 256; zero selects 64).
	Bits int
	// Eta is the bag-of-words vocabulary size (input dimension).
	Eta int
	// Labels is the number of output codes (W rows).
	Labels int
	// Batch is the number of samples (encrypted columns) per measurement.
	Batch int
	// Densities are the input non-zero fractions to sweep.
	Densities []float64
	// TopK is the number of logits decrypted per sample by the top-k head.
	TopK int
	// Parallelism for encryption and decryption; <0 selects NumCPU.
	Parallelism int
	// SkipDense omits the dense-path reference measurements (they dominate
	// wall-clock at paper scale; the sparse numbers are unaffected).
	SkipDense bool
	// Seed makes the sweep deterministic.
	Seed int64
}

func (c *ICDConfig) fillDefaults() {
	if c.Bits == 0 {
		c.Bits = group.TestBits
	}
	if c.Eta == 0 {
		c.Eta = 2000
	}
	if c.Labels == 0 {
		c.Labels = 200
	}
	if c.Batch == 0 {
		c.Batch = 4
	}
	if len(c.Densities) == 0 {
		c.Densities = []float64{0.005, 0.01, 0.05}
	}
	if c.TopK == 0 {
		c.TopK = 10
	}
	if c.Parallelism == 0 {
		c.Parallelism = securemat.DefaultParallelism()
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// ICDPoint is one measured density point.
type ICDPoint struct {
	Density       float64
	Nnz           int           // encrypted coordinates across the batch
	EncryptSparse time.Duration // coordinate-form encryption of the batch
	EncryptDense  time.Duration // dense path at the same η (zero if skipped)
	KeyDerive     time.Duration // support-masked keys for all labels
	TopKCompute   time.Duration // top-k head: k dlogs per sample
	FullCompute   time.Duration // full head: every label solved (zero if skipped)
	TopKSolved    uint64        // dlogs solved by the top-k scans
	TopKSkipped   uint64        // dlogs the top-k scans avoided
}

// ICD runs the sparse multi-label sweep: one point per density.
func ICD(cfg ICDConfig) ([]ICDPoint, error) {
	cfg.fillDefaults()
	params, err := group.Embedded(cfg.Bits)
	if err != nil {
		return nil, err
	}
	auth, err := authority.New(params, authority.AllowAll())
	if err != nil {
		return nil, err
	}
	// Word counts in [1, 8], label weights in [-8, 8]: the logit bound is
	// the worst-case support size times the per-term product.
	const vMax, wMax = 8, 8
	maxDensity := cfg.Densities[0]
	for _, d := range cfg.Densities {
		if d > maxDensity {
			maxDensity = d
		}
	}
	// The support size is binomial around density·η; bound on twice the
	// mean so the sampled batches stay comfortably inside.
	maxNnz := 2*int(maxDensity*float64(cfg.Eta)) + 16
	if maxNnz > cfg.Eta {
		maxNnz = cfg.Eta
	}
	bound := int64(maxNnz)*vMax*wMax + 1
	solver, err := dlog.NewSolver(params, bound)
	if err != nil {
		return nil, err
	}
	eng, err := securemat.NewEngine(auth, securemat.EngineOptions{Solver: solver})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := randMatrix(rng, cfg.Labels, cfg.Eta, ValueRange{-wMax, wMax})

	// Warm the engine's per-η public key and group tables so one-time
	// precompute is not charged to the first density point.
	warm := make([][]int64, cfg.Eta)
	for i := range warm {
		warm[i] = []int64{0}
	}
	warm[0][0] = 1
	if _, err := eng.EncryptSparse(warm, securemat.EncryptOptions{SkipElems: true}); err != nil {
		return nil, err
	}

	var points []ICDPoint
	for _, density := range cfg.Densities {
		p, err := icdPoint(eng, rng, w, cfg, density, vMax)
		if err != nil {
			return nil, fmt.Errorf("experiments: icd density %g: %w", density, err)
		}
		points = append(points, p)
	}
	return points, nil
}

func icdPoint(eng *securemat.Engine, rng *rand.Rand, w [][]int64, cfg ICDConfig, density float64, vMax int64) (ICDPoint, error) {
	// Synthetic bag-of-words batch: each column carries ~density·η word
	// counts in [1, vMax].
	x := make([][]int64, cfg.Eta)
	for i := range x {
		x[i] = make([]int64, cfg.Batch)
	}
	for j := 0; j < cfg.Batch; j++ {
		for i := 0; i < cfg.Eta; i++ {
			if rng.Float64() < density {
				x[i][j] = 1 + rng.Int63n(vMax)
			}
		}
	}
	encOpts := securemat.EncryptOptions{SkipElems: true, Parallelism: cfg.Parallelism}

	before := eng.SparseStats()
	start := time.Now()
	enc, err := eng.EncryptSparse(x, encOpts)
	if err != nil {
		return ICDPoint{}, err
	}
	sparseEnc := time.Since(start)

	var denseEnc time.Duration
	if !cfg.SkipDense {
		start = time.Now()
		if _, err := eng.Encrypt(x, encOpts); err != nil {
			return ICDPoint{}, err
		}
		denseEnc = time.Since(start)
	}

	start = time.Now()
	keys, err := eng.SparseDotKeys(enc, w)
	if err != nil {
		return ICDPoint{}, err
	}
	keyDur := time.Since(start)

	// The client's quantization range is public: vMax caps every plaintext
	// entry, so the top-k head can start its scan at each column's logit
	// ceiling instead of walking the empty ladder prefix.
	copts := securemat.ComputeOptions{Parallelism: cfg.Parallelism, InputMagnitude: vMax}
	start = time.Now()
	hits, err := eng.SecureDotTopK(enc, keys, w, cfg.TopK, copts)
	if err != nil {
		return ICDPoint{}, err
	}
	topkDur := time.Since(start)

	var fullDur time.Duration
	var full [][]int64
	if !cfg.SkipDense {
		start = time.Now()
		full, err = eng.SecureDotSparse(enc, keys, w, copts)
		if err != nil {
			return ICDPoint{}, err
		}
		fullDur = time.Since(start)
	}

	// Cross-check the top-k head (and, when measured, the full head)
	// against the plaintext product.
	for j := 0; j < cfg.Batch; j++ {
		col := make([]int64, cfg.Labels)
		for i := 0; i < cfg.Labels; i++ {
			var dot int64
			for t := 0; t < cfg.Eta; t++ {
				dot += w[i][t] * x[t][j]
			}
			col[i] = dot
			if full != nil && full[i][j] != dot {
				return ICDPoint{}, fmt.Errorf("full solve mismatch at (%d,%d)", i, j)
			}
		}
		order := make([]int, cfg.Labels)
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool { return col[order[a]] > col[order[b]] })
		for r, h := range hits[j] {
			if want := order[r]; h.Index != want || h.Value != col[want] {
				return ICDPoint{}, fmt.Errorf("top-k mismatch: sample %d rank %d got (%d,%d) want (%d,%d)",
					j, r, h.Index, h.Value, want, col[want])
			}
		}
	}
	after := eng.SparseStats()
	return ICDPoint{
		Density:       density,
		Nnz:           enc.Nnz(),
		EncryptSparse: sparseEnc,
		EncryptDense:  denseEnc,
		KeyDerive:     keyDur,
		TopKCompute:   topkDur,
		FullCompute:   fullDur,
		TopKSolved:    after.TopKSolved - before.TopKSolved,
		TopKSkipped:   after.TopKSkipped - before.TopKSkipped,
	}, nil
}
