package experiments

// AblationPredictionPaths measures the three prediction settings of
// §III-D on the same trained linear model and the same inputs:
//
//   - plaintext     — the no-privacy baseline forward pass;
//   - FE-based      — secure feed-forward via FEIP keys (the server
//                     learns the class);
//   - HE-based      — exponential-ElGamal evaluation of Enc(W·x+b) (the
//                     server learns nothing; only the client decrypts).
//
// The paper presents the choice qualitatively ("flexible choices for the
// client with varying levels of privacy concerns"); this experiment puts
// numbers on it.

import (
	"fmt"
	"math/rand"
	"time"

	"cryptonn/internal/authority"
	"cryptonn/internal/core"
	"cryptonn/internal/dlog"
	"cryptonn/internal/elgamal"
	"cryptonn/internal/fixedpoint"
	"cryptonn/internal/group"
	"cryptonn/internal/nn"
	"cryptonn/internal/securemat"
	"cryptonn/internal/tensor"
)

// PredictPathsConfig parameterizes AblationPredictionPaths.
type PredictPathsConfig struct {
	// Bits selects the group (zero: 64).
	Bits int
	// Features and Classes shape the linear model.
	Features, Classes int
	// Samples is the prediction batch size.
	Samples int
	// Parallelism for the FE decryptions.
	Parallelism int
	// Seed fixes the model and inputs.
	Seed int64
}

func (c *PredictPathsConfig) fillDefaults() {
	if c.Bits == 0 {
		c.Bits = group.TestBits
	}
	if c.Features == 0 {
		c.Features = 49
	}
	if c.Classes == 0 {
		c.Classes = 10
	}
	if c.Samples == 0 {
		c.Samples = 8
	}
	if c.Parallelism == 0 {
		c.Parallelism = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// PredictPathsResult reports per-path timings and agreement.
type PredictPathsResult struct {
	// Plain, FE and HE are the end-to-end batch prediction times
	// (client encryption + server evaluation + any client decryption).
	Plain, FE, HE time.Duration
	// FEEncrypt and HEEncrypt isolate the client-side encryption cost.
	FEEncrypt, HEEncrypt time.Duration
	// Agree reports whether all three paths predicted the same classes
	// for every sample (they must — same model, same inputs, fixed-point
	// quantisation notwithstanding).
	Agree bool
	// Classes are the plaintext path's predictions.
	Classes []int
}

// AblationPredictionPaths runs all three §III-D prediction settings on a
// shared linear model and inputs.
func AblationPredictionPaths(cfg PredictPathsConfig) (*PredictPathsResult, error) {
	cfg.fillDefaults()
	params, err := group.Embedded(cfg.Bits)
	if err != nil {
		return nil, err
	}
	auth, err := authority.New(params, authority.AllowAll())
	if err != nil {
		return nil, err
	}
	codec := fixedpoint.Default()
	rng := rand.New(rand.NewSource(cfg.Seed))

	// A linear model (no hidden layer) so the HE path covers the whole
	// decision function.
	model, err := nn.NewMLP(cfg.Features, cfg.Classes, nil, nn.SoftmaxCrossEntropy{}, rng)
	if err != nil {
		return nil, err
	}
	x := tensor.NewDense(cfg.Features, cfg.Samples)
	x.RandInit(rng, 1)
	y := tensor.NewDense(cfg.Classes, cfg.Samples)
	for j := 0; j < cfg.Samples; j++ {
		y.Set(j%cfg.Classes, j, 1)
	}

	res := &PredictPathsResult{}

	// --- Plaintext baseline. ---
	start := time.Now()
	preds, err := model.Predict(x)
	if err != nil {
		return nil, err
	}
	res.Plain = time.Since(start)
	res.Classes = preds

	// --- FE-based path. ---
	bound := core.SolverBound(codec, cfg.Features, 1, 4, 1)
	solver, err := dlog.NewSolver(params, bound)
	if err != nil {
		return nil, err
	}
	eng, err := securemat.NewEngine(auth, securemat.EngineOptions{Solver: solver})
	if err != nil {
		return nil, err
	}
	trainer, err := core.NewTrainer(model, eng, core.Config{
		Codec: codec, Parallelism: cfg.Parallelism, MaxWeight: 4,
	})
	if err != nil {
		return nil, err
	}
	client, err := core.NewClient(eng, codec, nil)
	if err != nil {
		return nil, err
	}
	start = time.Now()
	enc, err := client.EncryptBatch(x, y)
	if err != nil {
		return nil, err
	}
	res.FEEncrypt = time.Since(start)
	feRes, err := trainer.Predict(enc)
	if err != nil {
		return nil, err
	}
	res.FE = time.Since(start)

	// --- HE-based path. ---
	dense, ok := model.Layers[0].(*nn.DenseLayer)
	if !ok {
		return nil, fmt.Errorf("experiments: linear model has first layer %s", model.Layers[0].Name())
	}
	wInt, err := codec.EncodeMat(dense.W.Rows2D())
	if err != nil {
		return nil, err
	}
	bInt := make([]int64, dense.Out)
	f := float64(codec.Factor())
	for i := 0; i < dense.Out; i++ {
		bInt[i] = int64(dense.B.At(i, 0) * f * f)
	}
	pk, sk, err := elgamal.Setup(params, nil)
	if err != nil {
		return nil, err
	}
	hePreds := make([]int, cfg.Samples)
	start = time.Now()
	var heEncrypt time.Duration
	for j := 0; j < cfg.Samples; j++ {
		encStart := time.Now()
		xs, err := codec.EncodeVec(x.Col(j))
		if err != nil {
			return nil, err
		}
		cts, err := elgamal.EncryptVec(pk, xs, nil)
		if err != nil {
			return nil, err
		}
		heEncrypt += time.Since(encStart)
		scores, err := elgamal.LinearPredict(pk, wInt, bInt, cts)
		if err != nil {
			return nil, err
		}
		cls, _, err := elgamal.DecryptArgMax(sk, params, scores, solver)
		if err != nil {
			return nil, err
		}
		hePreds[j] = cls
	}
	res.HE = time.Since(start)
	res.HEEncrypt = heEncrypt

	res.Agree = true
	for j := range preds {
		if feRes.MaskedPreds[j] != preds[j] || hePreds[j] != preds[j] {
			res.Agree = false
			break
		}
	}
	return res, nil
}
