package experiments

import (
	"fmt"
	"math/rand"

	"cryptonn/internal/authority"
	"cryptonn/internal/core"
	"cryptonn/internal/dlog"
	"cryptonn/internal/fixedpoint"
	"cryptonn/internal/group"
	"cryptonn/internal/nn"
	"cryptonn/internal/securemat"
	"cryptonn/internal/tensor"
)

// CommConfig parameterizes the key-traffic analysis of §IV-B2: "for
// training a two-class classification NN model with k units in the first
// hidden layer over X_{m×n}, each iteration the server sends k×n×|w| to
// the authority and acquires keys of size k×|sk|".
type CommConfig struct {
	// Bits selects the group size (zero: 64).
	Bits int
	// Features is n, HiddenUnits is k, Batch is m.
	Features, HiddenUnits, Batch int
	// Seed drives data and init.
	Seed int64
}

func (c *CommConfig) fillDefaults() {
	if c.Bits == 0 {
		c.Bits = group.TestBits
	}
	if c.Features == 0 {
		c.Features = 20
	}
	if c.HiddenUnits == 0 {
		c.HiddenUnits = 8
	}
	if c.Batch == 0 {
		c.Batch = 6
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// CommResult compares the paper's predicted per-iteration key traffic with
// the measured authority counters.
type CommResult struct {
	// PredictedScalars is the k×n weight-scalar upload of the secure
	// feed-forward step, per the paper's formula.
	PredictedScalars uint64
	// PredictedKeys is k (one derived key per hidden unit), per the
	// paper's formula.
	PredictedKeys uint64
	// MeasuredForwardScalars / MeasuredForwardKeys are the counters after
	// the secure feed-forward step alone.
	MeasuredForwardScalars, MeasuredForwardKeys uint64
	// TotalScalars / TotalIPKeys / TotalBOKeys are the counters after the
	// full iteration (including the secure gradient and label steps the
	// formula does not count).
	TotalScalars, TotalIPKeys, TotalBOKeys uint64
}

// CommOverhead runs one CryptoNN iteration on a k-unit two-class model and
// reads the authority's key-issuance counters, verifying the paper's
// k×n×|w| forward-traffic formula and quantifying the full-iteration
// traffic the formula omits.
func CommOverhead(cfg CommConfig) (*CommResult, error) {
	cfg.fillDefaults()
	params, err := group.Embedded(cfg.Bits)
	if err != nil {
		return nil, err
	}
	auth, err := authority.New(params, authority.AllowAll())
	if err != nil {
		return nil, err
	}
	codec := fixedpoint.Default()
	bound := max(
		core.SolverBound(codec, cfg.Features, 1, 4, 1),
		core.SolverBound(codec, cfg.Batch, 1, 4, 100),
	)
	solver, err := dlog.NewSolver(params, bound)
	if err != nil {
		return nil, err
	}
	// The engine's dot-key cache is disabled here: this experiment reads
	// the authority's issuance counters, so every iteration must pay its
	// raw key traffic (the quantity the paper's formula predicts).
	eng, err := securemat.NewEngine(auth, securemat.EngineOptions{Solver: solver, DotKeyCache: -1})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	model, err := nn.NewBinaryClassifier(cfg.Features, cfg.HiddenUnits, rng)
	if err != nil {
		return nil, err
	}
	trainer, err := core.NewTrainer(model, eng, core.Config{Codec: codec, MaxWeight: 4})
	if err != nil {
		return nil, err
	}
	client, err := core.NewClient(eng, codec, nil)
	if err != nil {
		return nil, err
	}

	x := tensor.NewDense(cfg.Features, cfg.Batch)
	x.RandInit(rng, 1)
	y := tensor.NewDense(1, cfg.Batch)
	for j := 0; j < cfg.Batch; j++ {
		if rng.Intn(2) == 1 {
			y.Set(0, j, 1)
		}
	}
	enc, err := client.EncryptBatch(x, y)
	if err != nil {
		return nil, err
	}

	res := &CommResult{
		PredictedScalars: uint64(cfg.HiddenUnits) * uint64(cfg.Features),
		PredictedKeys:    uint64(cfg.HiddenUnits),
	}

	// Measure the forward step alone via Predict (secure feed-forward
	// only).
	auth.ResetStats()
	if _, err := trainer.Predict(enc); err != nil {
		return nil, fmt.Errorf("experiments: comm forward: %w", err)
	}
	st := auth.Stats()
	res.MeasuredForwardScalars = st.IPKeyScalars
	res.MeasuredForwardKeys = st.IPKeys

	// Measure a full iteration.
	auth.ResetStats()
	opt, err := nn.NewSGD(0.1, 0)
	if err != nil {
		return nil, err
	}
	if _, err := trainer.TrainBatch(enc, opt); err != nil {
		return nil, fmt.Errorf("experiments: comm iteration: %w", err)
	}
	st = auth.Stats()
	res.TotalScalars = st.IPKeyScalars
	res.TotalIPKeys = st.IPKeys
	res.TotalBOKeys = st.BOKeys
	return res, nil
}
