package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"cryptonn/internal/authority"
	"cryptonn/internal/core"
	"cryptonn/internal/dlog"
	"cryptonn/internal/fixedpoint"
	"cryptonn/internal/group"
	"cryptonn/internal/mnist"
	"cryptonn/internal/nn"
	"cryptonn/internal/securemat"
	"cryptonn/internal/tensor"
)

// Arch selects the model architecture for the training experiments.
type Arch string

// Architectures.
const (
	// ArchMLP is a dense network (secure feed-forward on a fully
	// connected first layer) — the fast configuration.
	ArchMLP Arch = "mlp"
	// ArchCNN is the LeNet-style convolutional network with secure
	// convolution (Algorithm 3) — the paper's CryptoCNN instantiation,
	// scaled down.
	ArchCNN Arch = "cnn"
)

// TrainConfig parameterizes Fig. 6 and Table III.
type TrainConfig struct {
	// Bits selects the group size (paper: 256; zero selects 64).
	Bits int
	// Arch selects MLP or CNN (paper: CNN/LeNet-5).
	Arch Arch
	// TrainSamples / TestSamples are dataset sizes (paper: 60000/10000).
	TrainSamples, TestSamples int
	// BatchSize (paper: 64).
	BatchSize int
	// Epochs (paper: 2).
	Epochs int
	// LR is the SGD learning rate.
	LR float64
	// TickBatches is the Fig. 6 averaging window (paper: 50 batches).
	TickBatches int
	// Parallelism for secure decryptions; <0 selects NumCPU.
	Parallelism int
	// Seed drives data generation and weight initialisation.
	Seed int64
	// Pool average-pools the input images by this factor before training
	// (1 keeps the paper's 28×28 geometry; 2 → 14×14; 4 → 7×7). The
	// secure first layer's cost scales with the feature count, so this
	// knob makes the experiment tractable on small machines without
	// changing its shape: both twins see the same pooled data.
	Pool int
	// Hidden is the MLP first-layer width (paper-scale default: 32). The
	// secure dW step costs Hidden × features inner products per batch.
	Hidden int
	// ConvFilters is the CryptoCNN first-layer filter count when
	// Pool > 1 (the down-scaled conv architecture); ignored at Pool 1,
	// where the 28×28 LeNet-small geometry is used. Default 2.
	ConvFilters int
	// KeyService, when non-nil, replaces the in-process authority as the
	// engine's key backend (e.g. a wire.QuorumKeyService over a threshold
	// authority cluster). Its group parameters must match Bits — the
	// solver and codec are sized for the embedded group of that width.
	KeyService securemat.KeyService
}

func (c *TrainConfig) fillDefaults() {
	if c.Bits == 0 {
		c.Bits = group.TestBits
	}
	if c.Arch == "" {
		c.Arch = ArchMLP
	}
	if c.TrainSamples == 0 {
		c.TrainSamples = 300
	}
	if c.TestSamples == 0 {
		c.TestSamples = 100
	}
	if c.BatchSize == 0 {
		c.BatchSize = 10
	}
	if c.Epochs == 0 {
		c.Epochs = 2
	}
	if c.LR == 0 {
		c.LR = 0.3
	}
	if c.TickBatches == 0 {
		c.TickBatches = 5
	}
	if c.Parallelism == 0 {
		c.Parallelism = securemat.DefaultParallelism()
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Pool == 0 {
		c.Pool = 1
	}
	if c.Hidden == 0 {
		c.Hidden = 32
	}
	if c.ConvFilters == 0 {
		c.ConvFilters = 2
	}
}

// side returns the pooled image side length.
func (c *TrainConfig) side() int { return mnist.Side / c.Pool }

// features returns the pooled input feature count.
func (c *TrainConfig) features() int { s := c.side(); return s * s }

// AccuracyPoint is one tick of Fig. 6: average batch accuracy over the
// window, for the plaintext baseline and the CryptoNN model.
type AccuracyPoint struct {
	Tick     int
	Plain    float64
	CryptoNN float64
}

// Table3Result mirrors Table III plus the client-side encryption cost the
// paper folds away.
type Table3Result struct {
	// PlainAcc and CryptoAcc are test accuracies after each epoch.
	PlainAcc, CryptoAcc []float64
	// PlainTime and CryptoTime are the training wall-clock times.
	PlainTime, CryptoTime time.Duration
	// EncryptTime is the one-off client-side pre-processing time.
	EncryptTime time.Duration
	// Overhead is CryptoTime / PlainTime.
	Overhead float64
}

// trainRun holds the twin-model training machinery shared by Fig6 and
// Table3.
type trainRun struct {
	cfg      TrainConfig
	plain    *nn.Model
	secure   *nn.Model
	trainer  *core.Trainer
	client   *core.Client
	train    *mnist.Dataset
	test     *mnist.Dataset
	batches  []encBatch
	plainOpt nn.Optimizer
	secOpt   nn.Optimizer
	encTime  time.Duration
	// convK and convPad are the first conv layer's geometry (CNN arch).
	convK, convPad int
}

// poolColumns average-pools every column of x, interpreted as a flattened
// side×side image, by factor f. It is the experiment-scale reduction knob
// (TrainConfig.Pool); f = 1 returns x unchanged.
func poolColumns(x *tensor.Dense, side, f int) *tensor.Dense {
	if f <= 1 {
		return x
	}
	out := side / f
	pooled := tensor.NewDense(out*out, x.Cols)
	inv := 1 / float64(f*f)
	for c := 0; c < x.Cols; c++ {
		for oy := 0; oy < out; oy++ {
			for ox := 0; ox < out; ox++ {
				var sum float64
				for dy := 0; dy < f; dy++ {
					for dx := 0; dx < f; dx++ {
						sum += x.At((oy*f+dy)*side+(ox*f+dx), c)
					}
				}
				pooled.Set(oy*out+ox, c, sum*inv)
			}
		}
	}
	return pooled
}

// encBatch pairs an encrypted batch with its plaintext twin (used only by
// the baseline and for accuracy scoring; the secure trainer never sees it).
type encBatch struct {
	x, y   *tensor.Dense
	labels []int
	dense  *core.EncryptedBatch
	conv   *core.EncryptedConvBatch
}

func newTrainRun(cfg TrainConfig) (*trainRun, error) {
	cfg.fillDefaults()
	params, err := group.Embedded(cfg.Bits)
	if err != nil {
		return nil, err
	}
	keys := cfg.KeyService
	if keys == nil {
		auth, err := authority.New(params, authority.AllowAll())
		if err != nil {
			return nil, err
		}
		keys = auth
	}
	codec := fixedpoint.Default()

	var plain, secure *nn.Model
	var coreCfg core.Config
	var bound int64
	var convK, convPad int
	switch cfg.Arch {
	case ArchMLP:
		mk := func(seed int64) (*nn.Model, error) {
			return nn.NewMLP(cfg.features(), mnist.Classes, []int{cfg.Hidden}, nn.SoftmaxCrossEntropy{}, rand.New(rand.NewSource(seed)))
		}
		if plain, err = mk(cfg.Seed); err != nil {
			return nil, err
		}
		if secure, err = mk(cfg.Seed); err != nil {
			return nil, err
		}
		coreCfg = core.Config{Codec: codec, Parallelism: cfg.Parallelism, MaxWeight: 4, GradScale: 100}
		forward := core.SolverBound(codec, cfg.features(), 1, 4, 1)
		grad := core.SolverBound(codec, cfg.BatchSize, 1, 4, 100)
		bound = max(forward, grad)
	case ArchCNN:
		mk := func(seed int64) (*nn.Model, error) {
			if cfg.Pool == 1 {
				return nn.NewLeNetSmall(rand.New(rand.NewSource(seed)))
			}
			return nn.NewConvNetSmall(cfg.side(), cfg.ConvFilters, rand.New(rand.NewSource(seed)))
		}
		if cfg.Pool == 1 {
			convK, convPad = 5, 2 // LeNet-small C1 geometry
		} else {
			convK, convPad = 3, 1 // down-scaled conv-net C1 geometry
		}
		if plain, err = mk(cfg.Seed); err != nil {
			return nil, err
		}
		if secure, err = mk(cfg.Seed); err != nil {
			return nil, err
		}
		coreCfg = core.Config{Codec: codec, Parallelism: cfg.Parallelism, MaxWeight: 2, GradScale: 10}
		forward := core.SolverBound(codec, convK*convK, 1, 2, 1)
		grad := core.SolverBound(codec, cfg.features(), 1, 2, 10)
		bound = max(forward, grad)
	default:
		return nil, fmt.Errorf("experiments: unknown arch %q", cfg.Arch)
	}
	bound = max(bound, core.SolverBound(codec, 1, 1, 25, 1)) // CE loss terms

	solver, err := dlog.NewSolver(params, bound)
	if err != nil {
		return nil, err
	}
	eng, err := securemat.NewEngine(keys, securemat.EngineOptions{Solver: solver, Parallelism: cfg.Parallelism})
	if err != nil {
		return nil, err
	}
	trainer, err := core.NewTrainer(secure, eng, coreCfg)
	if err != nil {
		return nil, err
	}
	client, err := core.NewClient(eng, codec, nil)
	if err != nil {
		return nil, err
	}
	trainSet, _, err := mnist.Load(true, cfg.TrainSamples, cfg.Seed)
	if err != nil {
		return nil, err
	}
	testSet, _, err := mnist.Load(false, cfg.TestSamples, cfg.Seed+100)
	if err != nil {
		return nil, err
	}
	plainOpt, err := nn.NewSGD(cfg.LR, 0)
	if err != nil {
		return nil, err
	}
	secOpt, err := nn.NewSGD(cfg.LR, 0)
	if err != nil {
		return nil, err
	}
	run := &trainRun{
		cfg: cfg, plain: plain, secure: secure,
		trainer: trainer, client: client,
		train: trainSet, test: testSet,
		plainOpt: plainOpt, secOpt: secOpt,
		convK: convK, convPad: convPad,
	}
	if err := run.encryptAll(); err != nil {
		return nil, err
	}
	return run, nil
}

// encryptAll pre-processes every training batch once (clients encrypt
// once; the server reuses ciphertexts across epochs).
func (r *trainRun) encryptAll() error {
	start := time.Now()
	n := r.train.N()
	for from := 0; from+r.cfg.BatchSize <= n; from += r.cfg.BatchSize {
		x, y, err := r.train.Batch(from, from+r.cfg.BatchSize)
		if err != nil {
			return err
		}
		x = poolColumns(x, mnist.Side, r.cfg.Pool)
		labels := make([]int, r.cfg.BatchSize)
		copy(labels, r.train.Labels[from:from+r.cfg.BatchSize])
		eb := encBatch{x: x, y: y, labels: labels}
		switch r.cfg.Arch {
		case ArchMLP:
			enc, err := r.client.EncryptBatch(x, y)
			if err != nil {
				return err
			}
			eb.dense = enc
		case ArchCNN:
			side := r.cfg.side()
			enc, err := r.client.EncryptConvBatch(x, y, 1, side, side, r.convK, 1, r.convPad)
			if err != nil {
				return err
			}
			eb.conv = enc
		}
		r.batches = append(r.batches, eb)
	}
	if len(r.batches) == 0 {
		return errors.New("experiments: no full batches; increase TrainSamples or decrease BatchSize")
	}
	r.encTime = time.Since(start)
	return nil
}

// stepSecure trains the secure model on batch i and returns its batch
// accuracy.
func (r *trainRun) stepSecure(i int) (float64, error) {
	b := r.batches[i]
	var res *core.Result
	var err error
	if b.dense != nil {
		res, err = r.trainer.TrainBatch(b.dense, r.secOpt)
	} else {
		res, err = r.trainer.TrainConvBatch(b.conv, r.secOpt)
	}
	if err != nil {
		return 0, err
	}
	correct := 0
	for j, p := range res.MaskedPreds {
		if p == b.labels[j] {
			correct++
		}
	}
	return float64(correct) / float64(len(b.labels)), nil
}

// stepPlain trains the plaintext twin on batch i and returns its batch
// accuracy.
func (r *trainRun) stepPlain(i int) (float64, error) {
	b := r.batches[i]
	acc, err := r.plain.Accuracy(b.x, b.y)
	if err != nil {
		return 0, err
	}
	if _, err := r.plain.TrainBatch(b.x, b.y, r.plainOpt); err != nil {
		return 0, err
	}
	return acc, nil
}

func (r *trainRun) testAccuracy(m *nn.Model) (float64, error) {
	x, y, err := r.test.Batch(0, r.test.N())
	if err != nil {
		return 0, err
	}
	return m.Accuracy(poolColumns(x, mnist.Side, r.cfg.Pool), y)
}

// Fig6 regenerates the average-batch-accuracy comparison: both models are
// trained batch by batch from identical initialisation and their batch
// accuracies are averaged per tick window.
func Fig6(cfg TrainConfig) ([]AccuracyPoint, error) {
	cfg.fillDefaults()
	run, err := newTrainRun(cfg)
	if err != nil {
		return nil, err
	}
	var points []AccuracyPoint
	var accP, accS float64
	var count int
	tick := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for i := range run.batches {
			ap, err := run.stepPlain(i)
			if err != nil {
				return nil, fmt.Errorf("experiments: plain step: %w", err)
			}
			as, err := run.stepSecure(i)
			if err != nil {
				return nil, fmt.Errorf("experiments: secure step: %w", err)
			}
			accP += ap
			accS += as
			count++
			if count == cfg.TickBatches {
				tick++
				points = append(points, AccuracyPoint{
					Tick:     tick,
					Plain:    accP / float64(count),
					CryptoNN: accS / float64(count),
				})
				accP, accS, count = 0, 0, 0
			}
		}
	}
	if count > 0 {
		tick++
		points = append(points, AccuracyPoint{
			Tick:     tick,
			Plain:    accP / float64(count),
			CryptoNN: accS / float64(count),
		})
	}
	return points, nil
}

// Table3 regenerates the accuracy/training-time comparison: per-epoch test
// accuracy for both models plus total wall-clock training times.
func Table3(cfg TrainConfig) (*Table3Result, error) {
	cfg.fillDefaults()
	run, err := newTrainRun(cfg)
	if err != nil {
		return nil, err
	}
	res := &Table3Result{EncryptTime: run.encTime}

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		start := time.Now()
		for i := range run.batches {
			if _, err := run.stepPlain(i); err != nil {
				return nil, err
			}
		}
		res.PlainTime += time.Since(start)
		acc, err := run.testAccuracy(run.plain)
		if err != nil {
			return nil, err
		}
		res.PlainAcc = append(res.PlainAcc, acc)

		start = time.Now()
		for i := range run.batches {
			if _, err := run.stepSecure(i); err != nil {
				return nil, err
			}
		}
		res.CryptoTime += time.Since(start)
		// The trained parameters are plaintext (the paper's design), so
		// test-set evaluation is an ordinary forward pass.
		acc, err = run.testAccuracy(run.secure)
		if err != nil {
			return nil, err
		}
		res.CryptoAcc = append(res.CryptoAcc, acc)
	}
	if res.PlainTime > 0 {
		res.Overhead = float64(res.CryptoTime) / float64(res.PlainTime)
	}
	return res, nil
}
