// Package fixedpoint converts between float64 model values and the signed
// integers the functional encryption layer operates on.
//
// The paper (§IV-B3): "since the underlying functional encryption does not
// support floating point number computation ... we only keep two-decimal
// places approximately and then transfer the floating point number to the
// integer". A Scale with Digits=2 (factor 100) reproduces that setting.
//
// Products of two scaled values carry the square of the factor; Codec
// tracks that so secure dot-products (scale f²) and element-wise sums
// (scale f) can both be decoded correctly. Encoding saturates neither
// silently nor by panicking: out-of-range values return errors, which the
// training loop surfaces as fixed-point overflow.
package fixedpoint

import (
	"errors"
	"fmt"
	"math"
)

// DefaultDigits is the paper's "two-decimal places" precision.
const DefaultDigits = 2

// ErrOverflow reports a value that cannot be represented within the codec's
// integer range.
var ErrOverflow = errors.New("fixedpoint: value out of range")

// Codec scales floats by 10^Digits into int64 and back.
type Codec struct {
	digits int
	factor int64
	// maxAbs bounds |encoded| to keep products of two encoded values well
	// inside int64 (and inside discrete-log solver ranges).
	maxAbs int64
}

// New creates a codec keeping the given number of decimal digits. Digits
// must be in [0, 9]; beyond that, products of encoded values overflow
// int64 for realistic magnitudes.
func New(digits int) (*Codec, error) {
	if digits < 0 || digits > 9 {
		return nil, fmt.Errorf("fixedpoint: digits must be in [0,9], got %d", digits)
	}
	factor := int64(1)
	for i := 0; i < digits; i++ {
		factor *= 10
	}
	return &Codec{
		digits: digits,
		factor: factor,
		maxAbs: int64(1) << 30, // |a·b| ≤ 2^60 < int64 max
	}, nil
}

// Default returns the paper's two-decimal codec.
func Default() *Codec {
	c, err := New(DefaultDigits)
	if err != nil {
		panic(err) // unreachable: constant argument is valid
	}
	return c
}

// Digits returns the configured decimal precision.
func (c *Codec) Digits() int { return c.digits }

// Factor returns the scale factor 10^Digits.
func (c *Codec) Factor() int64 { return c.factor }

// Encode maps v to round(v·factor). It fails on NaN, ±Inf and magnitudes
// that would overflow the safe range.
func (c *Codec) Encode(v float64) (int64, error) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("%w: %v", ErrOverflow, v)
	}
	scaled := math.Round(v * float64(c.factor))
	if scaled > float64(c.maxAbs) || scaled < -float64(c.maxAbs) {
		return 0, fmt.Errorf("%w: %v at scale %d", ErrOverflow, v, c.factor)
	}
	return int64(scaled), nil
}

// Decode maps an encoded integer back to a float at the base scale.
func (c *Codec) Decode(x int64) float64 { return float64(x) / float64(c.factor) }

// DecodeProduct decodes a value carrying the square scale, i.e. the result
// of multiplying (or inner-producting) two encoded operands.
func (c *Codec) DecodeProduct(x int64) float64 {
	return float64(x) / float64(c.factor) / float64(c.factor)
}

// EncodeVec encodes a float vector.
func (c *Codec) EncodeVec(v []float64) ([]int64, error) {
	out := make([]int64, len(v))
	for i, f := range v {
		x, err := c.Encode(f)
		if err != nil {
			return nil, fmt.Errorf("index %d: %w", i, err)
		}
		out[i] = x
	}
	return out, nil
}

// DecodeVec decodes an integer vector at the base scale.
func (c *Codec) DecodeVec(x []int64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = c.Decode(v)
	}
	return out
}

// EncodeMat encodes a float matrix.
func (c *Codec) EncodeMat(m [][]float64) ([][]int64, error) {
	out := make([][]int64, len(m))
	for i, row := range m {
		enc, err := c.EncodeVec(row)
		if err != nil {
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
		out[i] = enc
	}
	return out, nil
}

// DecodeMat decodes an integer matrix at the base scale.
func (c *Codec) DecodeMat(m [][]int64) [][]float64 {
	out := make([][]float64, len(m))
	for i, row := range m {
		out[i] = c.DecodeVec(row)
	}
	return out
}

// DecodeProductMat decodes a matrix carrying the square scale (secure
// dot-product results).
func (c *Codec) DecodeProductMat(m [][]int64) [][]float64 {
	out := make([][]float64, len(m))
	for i, row := range m {
		out[i] = make([]float64, len(row))
		for j, v := range row {
			out[i][j] = c.DecodeProduct(v)
		}
	}
	return out
}

// ProductBound returns a discrete-log solver bound sufficient for inner
// products of length n whose operands satisfy |v| ≤ maxAbs before
// encoding: n · (maxAbs·factor)².
func (c *Codec) ProductBound(n int, maxAbs float64) int64 {
	perTerm := maxAbs * float64(c.factor)
	return int64(math.Ceil(float64(n) * perTerm * perTerm))
}
