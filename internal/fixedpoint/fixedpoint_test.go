package fixedpoint

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeBasics(t *testing.T) {
	c := Default()
	tests := []struct {
		in   float64
		want int64
	}{
		{0, 0},
		{1, 100},
		{-1, -100},
		{0.125, 13}, // round-half-away at 2 digits
		{3.14159, 314},
		{-2.718, -272},
		{0.004, 0},
		{0.005, 1},
	}
	for _, tt := range tests {
		got, err := c.Encode(tt.in)
		if err != nil {
			t.Fatalf("Encode(%v): %v", tt.in, err)
		}
		if got != tt.want {
			t.Errorf("Encode(%v) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestDecodeInvertsEncodeWithinPrecision(t *testing.T) {
	c := Default()
	for _, v := range []float64{0, 1.25, -19.87, 1000.5, -0.01} {
		enc, err := c.Encode(v)
		if err != nil {
			t.Fatal(err)
		}
		if got := c.Decode(enc); math.Abs(got-v) > 0.005 {
			t.Errorf("Decode(Encode(%v)) = %v", v, got)
		}
	}
}

func TestEncodeRejectsSpecials(t *testing.T) {
	c := Default()
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 1e30} {
		if _, err := c.Encode(v); !errors.Is(err, ErrOverflow) {
			t.Errorf("Encode(%v) err = %v, want ErrOverflow", v, err)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(-1); err == nil {
		t.Error("negative digits should fail")
	}
	if _, err := New(10); err == nil {
		t.Error("ten digits should fail")
	}
	c, err := New(0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Factor() != 1 {
		t.Errorf("Factor = %d, want 1", c.Factor())
	}
	c3, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	if c3.Factor() != 1000 || c3.Digits() != 3 {
		t.Error("3-digit codec misconfigured")
	}
}

func TestDecodeProduct(t *testing.T) {
	c := Default()
	a, _ := c.Encode(1.5)  // 150
	b, _ := c.Encode(-2.0) // -200
	prod := a * b          // -30000 at scale 10^4
	if got := c.DecodeProduct(prod); got != -3.0 {
		t.Errorf("DecodeProduct = %v, want -3", got)
	}
}

func TestVecAndMatRoundTrips(t *testing.T) {
	c := Default()
	v := []float64{1.5, -2.25, 0}
	enc, err := c.EncodeVec(v)
	if err != nil {
		t.Fatal(err)
	}
	dec := c.DecodeVec(enc)
	for i := range v {
		if math.Abs(dec[i]-v[i]) > 0.005 {
			t.Errorf("vec[%d]: %v -> %v", i, v[i], dec[i])
		}
	}
	m := [][]float64{{1.1, 2.2}, {-3.3, 4.4}}
	encM, err := c.EncodeMat(m)
	if err != nil {
		t.Fatal(err)
	}
	decM := c.DecodeMat(encM)
	for i := range m {
		for j := range m[i] {
			if math.Abs(decM[i][j]-m[i][j]) > 0.005 {
				t.Errorf("mat[%d][%d]: %v -> %v", i, j, m[i][j], decM[i][j])
			}
		}
	}
	if _, err := c.EncodeVec([]float64{math.NaN()}); err == nil {
		t.Error("NaN in vector should fail")
	}
	if _, err := c.EncodeMat([][]float64{{math.Inf(1)}}); err == nil {
		t.Error("Inf in matrix should fail")
	}
}

func TestDecodeProductMat(t *testing.T) {
	c := Default()
	m := [][]int64{{10000, -20000}, {0, 5000}}
	got := c.DecodeProductMat(m)
	want := [][]float64{{1, -2}, {0, 0.5}}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Errorf("(%d,%d): got %v want %v", i, j, got[i][j], want[i][j])
			}
		}
	}
}

func TestProductBound(t *testing.T) {
	c := Default()
	// n=10 terms, |v| <= 1.0 -> bound = 10 * (100)^2 = 100000
	if got := c.ProductBound(10, 1.0); got != 100_000 {
		t.Errorf("ProductBound = %d, want 100000", got)
	}
	// The bound must dominate any achievable inner product.
	n, maxAbs := 784, 1.0
	bound := c.ProductBound(n, maxAbs)
	worst := int64(n) * 100 * 100
	if bound < worst {
		t.Errorf("bound %d < worst case %d", bound, worst)
	}
}

// Property: decode(encode(v)) is within half an ulp of the scale for all
// representable values.
func TestQuickRoundTrip(t *testing.T) {
	c := Default()
	f := func(raw int32) bool {
		v := float64(raw) / 1000.0
		enc, err := c.Encode(v)
		if err != nil {
			return false
		}
		return math.Abs(c.Decode(enc)-v) <= 0.005+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: encoding is additively homomorphic up to rounding error.
func TestQuickAdditiveHomomorphism(t *testing.T) {
	c := Default()
	f := func(a, b int16) bool {
		x, y := float64(a)/100, float64(b)/100
		ex, err1 := c.Encode(x)
		ey, err2 := c.Encode(y)
		exy, err3 := c.Encode(x + y)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return ex+ey == exy // exact at 2 digits for 2-digit inputs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
