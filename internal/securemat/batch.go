// Batched decryption pipeline.
//
// Every secure computation ends with one group division and one bounded
// discrete log per output cell. Computed cell-at-a-time (the previous
// forEachCell path), each cell pays a full extended-GCD modular inversion
// for its denominator and the worker pool pays one channel round-trip per
// cell. This file replaces that with a chunked pipeline: workers drain
// contiguous chunks of cells, compute all (numerator, denominator) pairs
// of a chunk, invert the chunk's denominators together with a single
// modular inversion (Montgomery's trick, group.BatchInv), and only then
// run the dlog lookups. Worker-local scratch persists across every chunk
// a worker drains, so the steady state allocates nothing per cell beyond
// what the underlying schemes return.

package securemat

import (
	"fmt"
	"math/big"

	"cryptonn/internal/dlog"
	"cryptonn/internal/group"
)

// cellParts computes the numerator and denominator of one output cell's
// decryption, as produced by feip.DecryptParts / febo.DecryptParts. The
// returned den must be safe to invert in place.
type cellParts func(i, j int) (num, den *big.Int, err error)

// batchScratch is the per-worker state of the decryption pipeline.
type batchScratch struct {
	nums   []*big.Int
	dens   []*big.Int
	prefix []big.Int // group.BatchInv prefix products
	tmp    big.Int
	q      big.Int
	rem    big.Int
}

// decryptBatched fills z[i][j] for every cell of a rows×cols grid from the
// per-cell group-element parts, using workers parallel workers (< 2 =
// sequential, < 0 = DefaultParallelism) and Montgomery's-trick batch
// inversion over each chunk of denominators.
func decryptBatched(p *group.Params, solver *dlog.Solver, rows, cols, workers int, parts cellParts, z [][]int64) error {
	total := rows * cols
	if total == 0 {
		return nil
	}
	if workers < 0 {
		workers = DefaultParallelism()
	}
	if workers < 1 {
		workers = 1
	}
	if workers > total {
		workers = total
	}
	// Chunks big enough to amortize the one inversion per chunk (the trick
	// turns n inversions into one inversion + 3(n−1) muls), small enough
	// to keep all workers busy on ragged workloads.
	chunk := (total + 4*workers - 1) / (4 * workers)
	if chunk < 16 {
		chunk = 16
	}
	if chunk > 256 {
		chunk = 256
	}
	newScratch := func() *batchScratch {
		return &batchScratch{
			nums:   make([]*big.Int, 0, chunk),
			dens:   make([]*big.Int, 0, chunk),
			prefix: make([]big.Int, chunk),
		}
	}
	doChunk := func(start, end int, sc *batchScratch) error {
		sc.nums = sc.nums[:0]
		sc.dens = sc.dens[:0]
		for idx := start; idx < end; idx++ {
			num, den, err := parts(idx/cols, idx%cols)
			if err != nil {
				return fmt.Errorf("securemat: cell (%d,%d): %w", idx/cols, idx%cols, err)
			}
			sc.nums = append(sc.nums, num)
			sc.dens = append(sc.dens, den)
		}
		if err := p.BatchInv(sc.dens, sc.prefix); err != nil {
			return fmt.Errorf("securemat: batch inversion: %w", err)
		}
		for t, idx := 0, start; idx < end; t, idx = t+1, idx+1 {
			sc.tmp.Mul(sc.nums[t], sc.dens[t])
			sc.q.QuoRem(&sc.tmp, p.P, &sc.rem)
			v, err := solver.Lookup(&sc.rem)
			if err != nil {
				return fmt.Errorf("securemat: cell (%d,%d): %w", idx/cols, idx%cols, err)
			}
			z[idx/cols][idx%cols] = v
		}
		return nil
	}
	return forEachChunk(total, chunk, workers, newScratch, doChunk)
}
