// Batched decryption pipeline.
//
// Every secure computation ends with one group division and one bounded
// discrete log per output cell. Computed cell-at-a-time (the previous
// forEachCell path), each cell pays a full extended-GCD modular inversion
// for its denominator and the worker pool pays one channel round-trip per
// cell. This file replaces that with a chunked pipeline: workers drain
// contiguous chunks of cells, compute all (numerator, denominator) pairs
// of a chunk as Montgomery-domain limb elements, invert the chunk's
// denominators together with a single modular inversion (Montgomery's
// trick, group.MontCtx.BatchInvMont), and only then run the dlog lookups
// (LookupMont, never leaving the domain). Worker-local scratch persists
// across every chunk a worker drains, so the steady state allocates
// nothing per cell.

package securemat

import (
	"fmt"

	"cryptonn/internal/dlog"
	"cryptonn/internal/febo"
	"cryptonn/internal/feip"
	"cryptonn/internal/group"
)

// denTableWindow is the window width of the per-column Ct0 tables built by
// the dot-product denominator cache. The tables live for one SecureDot
// call and amortize over len(keys) exponentiations, so they stay shallower
// than the long-lived per-key default.
const denTableWindow = 4

// decryptDotBatched fills z[i][j] = ⟨vecs[i], x_j⟩ for the FEIP dot-product
// decryptions cell (i,j) = (cts[j], keys[i], vecs[i]), entirely in the
// Montgomery domain: numerators run the interleaved mont ladder
// (MultiExpInt64MontParts), denominators come from a precomputed cache,
// each chunk's divisions collapse into one batch inversion, and the final
// group element feeds the dlog solver without leaving the domain
// (LookupMont).
//
// The denominator cache is the hoist the per-cell path could not see:
// ct0_j^{k_i} depends on the pair (row, column), but its base is shared by
// a whole column and its exponent by a whole row. Each key is recoded into
// signed windows once per call (not once per cell), each column gets one
// small fixed-base table for its ct_0, every denominator is then a
// handful of limb multiplications, and the signed recodings' negative
// accumulators across the entire matrix share a single modular inversion.
func decryptDotBatched(p *group.Params, solver *dlog.Solver, cts []*feip.Ciphertext, keys []*feip.FunctionKey, vecs [][]int64, workers int, z [][]int64) error {
	rows, cols := len(keys), len(cts)
	total := rows * cols
	if total == 0 {
		return nil
	}
	inner := len(vecs[0])
	for j, ct := range cts {
		if ct == nil || len(ct.Ct) != inner {
			return fmt.Errorf("%w: ciphertext %d has dimension %d, want %d", ErrShape, j, ct.Eta(), inner)
		}
	}
	for i, fk := range keys {
		if fk == nil || fk.K == nil {
			return fmt.Errorf("%w: empty function key %d", ErrShape, i)
		}
	}
	if workers < 0 {
		workers = DefaultParallelism()
	}
	workers = min(max(workers, 1), total)
	mc := p.Mont()
	k := mc.Limbs()

	// Denominator cache: dens[(i*cols+j)*k : …] = ct0_j^{k_i} in Montgomery
	// form, read-only once the chunk workers start. One recoding per row,
	// one table per column, one inversion for the whole matrix.
	digits := make([][]int16, rows)
	for i, fk := range keys {
		digits[i] = p.RecodeSigned(fk.K, denTableWindow, nil)
	}
	dens := make([]uint64, total*k)
	negs := make([]uint64, total*k)
	for j, ct := range cts {
		tab, err := p.NewFixedBaseTableWindow(ct.Ct0, 0, denTableWindow)
		if err != nil {
			return fmt.Errorf("securemat: denominator table for column %d: %w", j, err)
		}
		for i := 0; i < rows; i++ {
			c := (i*cols + j) * k
			tab.PowRecoded(dens[c:c+k], negs[c:c+k], digits[i])
		}
	}
	if _, err := mc.BatchInvMont(negs, nil); err != nil {
		return fmt.Errorf("securemat: denominator inversion: %w", err)
	}
	for c := 0; c < total; c++ {
		mc.MulMont(dens[c*k:(c+1)*k], dens[c*k:(c+1)*k], negs[c*k:(c+1)*k])
	}

	chunk := chunkSize(total, workers)
	type dotScratch struct {
		nums   []uint64 // per-cell numerator positive halves
		ts     []uint64 // per-cell (negative half · denominator), then its inverse
		neg    []uint64
		inv    []uint64 // batch-inversion prefix scratch
		straus []uint64 // MultiExp table scratch
	}
	newScratch := func() *dotScratch {
		return &dotScratch{
			nums: make([]uint64, chunk*k),
			ts:   make([]uint64, chunk*k),
			neg:  make([]uint64, k),
		}
	}
	doChunk := func(start, end int, sc *dotScratch) error {
		n := end - start
		for t, idx := 0, start; idx < end; t, idx = t+1, idx+1 {
			i, j := idx/cols, idx%cols
			num := sc.nums[t*k : (t+1)*k]
			sc.straus = p.MultiExpInt64MontParts(num, sc.neg, cts[j].Ct, vecs[i], sc.straus)
			// The cell value is numPos / (numNeg · den); fold the negative
			// half into the denominator so the chunk inverts once.
			mc.MulMont(sc.ts[t*k:(t+1)*k], sc.neg, dens[idx*k:(idx+1)*k])
		}
		var err error
		if sc.inv, err = mc.BatchInvMont(sc.ts[:n*k], sc.inv); err != nil {
			return fmt.Errorf("securemat: batch inversion: %w", err)
		}
		for t, idx := 0, start; idx < end; t, idx = t+1, idx+1 {
			gamma := sc.ts[t*k : (t+1)*k]
			mc.MulMont(gamma, gamma, sc.nums[t*k:(t+1)*k])
			v, err := solver.LookupMont(gamma)
			if err != nil {
				return fmt.Errorf("securemat: cell (%d,%d): %w", idx/cols, idx%cols, err)
			}
			z[idx/cols][idx%cols] = v
		}
		return nil
	}
	return forEachChunk(total, chunk, workers, newScratch, doChunk)
}

// chunkSize picks the batched-decryption chunk length: big enough to
// amortize the one inversion per chunk (the trick turns n inversions into
// one inversion + 3(n−1) muls), small enough to keep all workers busy on
// ragged workloads.
func chunkSize(total, workers int) int {
	chunk := (total + 4*workers - 1) / (4 * workers)
	return min(max(chunk, 16), 256)
}

// decryptElemBatched fills z[i][j] = x[i][j] Δ y[i][j] for the element-wise
// FEBO decryptions, entirely in the Montgomery domain: per-cell numerator
// and denominator come from febo.DecryptPartsMont as raw limb elements
// (small-multiplier ladders for ×, the windowed ExpMont ladder for ÷), each
// chunk's denominators collapse into one batched inversion, and the
// quotients feed dlog.LookupMont without a big.Int round-trip — the same
// pipeline shape as decryptDotBatched.
func decryptElemBatched(pk *febo.PublicKey, solver *dlog.Solver, enc *EncryptedMatrix, keys [][]*febo.FunctionKey, op febo.Op, y [][]int64, workers int, z [][]int64) error {
	rows, cols := enc.Rows, enc.Cols
	total := rows * cols
	if total == 0 {
		return nil
	}
	if workers < 0 {
		workers = DefaultParallelism()
	}
	workers = min(max(workers, 1), total)
	mc := pk.Params.Mont()
	k := mc.Limbs()
	chunk := chunkSize(total, workers)
	type elemScratch struct {
		nums []uint64 // per-cell numerators
		dens []uint64 // per-cell denominators, inverted chunk-wide
		inv  []uint64 // batch-inversion prefix scratch
		fe   febo.DecryptScratch
	}
	newScratch := func() *elemScratch {
		return &elemScratch{
			nums: make([]uint64, chunk*k),
			dens: make([]uint64, chunk*k),
		}
	}
	doChunk := func(start, end int, sc *elemScratch) error {
		n := end - start
		for t, idx := 0, start; idx < end; t, idx = t+1, idx+1 {
			i, j := idx/cols, idx%cols
			err := febo.DecryptPartsMont(pk, keys[i][j], enc.Elems[i][j], op, y[i][j],
				sc.nums[t*k:(t+1)*k], sc.dens[t*k:(t+1)*k], &sc.fe)
			if err != nil {
				return fmt.Errorf("securemat: cell (%d,%d): %w", i, j, err)
			}
		}
		var err error
		if sc.inv, err = mc.BatchInvMont(sc.dens[:n*k], sc.inv); err != nil {
			return fmt.Errorf("securemat: batch inversion: %w", err)
		}
		for t, idx := 0, start; idx < end; t, idx = t+1, idx+1 {
			gamma := sc.dens[t*k : (t+1)*k]
			mc.MulMont(gamma, gamma, sc.nums[t*k:(t+1)*k])
			v, err := solver.LookupMont(gamma)
			if err != nil {
				return fmt.Errorf("securemat: cell (%d,%d): %w", idx/cols, idx%cols, err)
			}
			z[idx/cols][idx%cols] = v
		}
		return nil
	}
	return forEachChunk(total, chunk, workers, newScratch, doChunk)
}
