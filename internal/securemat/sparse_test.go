package securemat_test

// The sparse pipeline end to end: coordinate-form encryption with density
// routing, support-masked keys (sparse fast path AND the dense masked
// fallback), full sparse decryption pinned against the plaintext product,
// top-k extraction pinned against the full product, and the observability
// counters behind /metrics. Runs under `make race` via the securemat
// package test set.

import (
	"errors"
	"math/big"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"cryptonn/internal/authority"
	"cryptonn/internal/dlog"
	"cryptonn/internal/febo"
	"cryptonn/internal/feip"
	"cryptonn/internal/group"
	"cryptonn/internal/securemat"
)

// sparseMatrix draws a rows×cols matrix with roughly the given fraction of
// non-zero entries, values in [-10, 10] \ {0}.
func sparseMatrix(rng *rand.Rand, rows, cols int, density float64) [][]int64 {
	x := make([][]int64, rows)
	for i := range x {
		x[i] = make([]int64, cols)
		for j := range x[i] {
			if rng.Float64() < density {
				v := rng.Int63n(21) - 10
				if v == 0 {
					v = 5
				}
				x[i][j] = v
			}
		}
	}
	return x
}

// maskedOnlyService hides the SparseKeyService extension of the wrapped
// authority, forcing SparseDotKeys down the dense masked-vector fallback.
type maskedOnlyService struct {
	auth *authority.Authority
}

func (s maskedOnlyService) FEIPPublic(eta int) (*feip.MasterPublicKey, error) {
	return s.auth.FEIPPublic(eta)
}

func (s maskedOnlyService) FEBOPublic() (*febo.PublicKey, error) { return s.auth.FEBOPublic() }

func (s maskedOnlyService) IPKey(y []int64) (*feip.FunctionKey, error) { return s.auth.IPKey(y) }

func (s maskedOnlyService) BOKey(cmt *big.Int, op febo.Op, y int64) (*febo.FunctionKey, error) {
	return s.auth.BOKey(cmt, op, y)
}

// TestSecureDotSparseMatchesPlain pins the whole sparse pipeline against
// the plaintext product across densities (0 is an all-zero matrix) on both
// key-derivation paths: the authority's coordinate-form fast path and the
// dense masked-vector fallback used when the service lacks IPKeySparse.
func TestSecureDotSparseMatchesPlain(t *testing.T) {
	const (
		rows, cols = 40, 6
		wRows      = 7
	)
	for _, fallback := range []bool{false, true} {
		name := "sparse-key-service"
		if fallback {
			name = "masked-fallback"
		}
		t.Run(name, func(t *testing.T) {
			auth, eng := newFixture(t, 1_000_000)
			if fallback {
				var err error
				eng, err = securemat.NewEngine(maskedOnlyService{auth}, securemat.EngineOptions{Solver: eng.Solver()})
				if err != nil {
					t.Fatal(err)
				}
			}
			rng := rand.New(rand.NewSource(31))
			w := sparseMatrix(rng, wRows, rows, 0.8)
			for _, density := range []float64{0, 0.05, 0.5, 1} {
				x := sparseMatrix(rng, rows, cols, density)
				enc, err := eng.EncryptSparse(x, securemat.EncryptOptions{})
				if err != nil {
					t.Fatalf("density=%g: EncryptSparse: %v", density, err)
				}
				z, err := eng.DotSparse(enc, w, securemat.ComputeOptions{})
				if err != nil {
					t.Fatalf("density=%g: DotSparse: %v", density, err)
				}
				if want := plainDot(w, x); !matEqual(z, want) {
					t.Fatalf("density=%g: sparse dot diverges from plaintext", density)
				}
			}
		})
	}
}

// TestEncryptSparseDensityRouting checks the router: low-density columns
// keep their true support, high-density columns are padded to full width,
// a negative threshold disables promotion, and the counters see all of it.
func TestEncryptSparseDensityRouting(t *testing.T) {
	auth, eng := newFixture(t, 1_000_000)
	const rows, cols = 30, 4
	rng := rand.New(rand.NewSource(8))
	x := sparseMatrix(rng, rows, cols, 0.06)
	for i := 0; i < rows; i++ {
		x[i][0] = int64(i%9 + 1) // force column 0 fully dense
	}
	enc, err := eng.EncryptSparse(x, securemat.EncryptOptions{SparseThreshold: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if got := enc.ColCts[0].Nnz(); got != rows {
		t.Errorf("promoted column carries %d coords, want full %d", got, rows)
	}
	for j := 1; j < cols; j++ {
		if enc.ColCts[j].Nnz() >= rows/2 {
			t.Errorf("column %d not compact: %d coords", j, enc.ColCts[j].Nnz())
		}
	}
	st := eng.SparseStats()
	if st.PromotedColumns != 1 || st.SparseColumns != cols-1 {
		t.Errorf("router counters after mixed batch: %+v", st)
	}
	if st.EncryptedCoords == 0 || st.SkippedCoords == 0 {
		t.Errorf("coordinate counters empty: %+v", st)
	}
	if st.EncryptedCoords+st.SkippedCoords != uint64(rows*cols) {
		t.Errorf("encrypted(%d)+skipped(%d) != %d coords", st.EncryptedCoords, st.SkippedCoords, rows*cols)
	}

	// A negative threshold keeps even the fully dense column in true
	// coordinate form: same nnz, but counted as sparse-routed.
	eng2, err := securemat.NewEngine(auth, securemat.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng2.EncryptSparse(x, securemat.EncryptOptions{SparseThreshold: -1}); err != nil {
		t.Fatal(err)
	}
	if st2 := eng2.SparseStats(); st2.PromotedColumns != 0 || st2.SparseColumns != cols {
		t.Errorf("negative threshold still promoted: %+v", st2)
	}

	// The sparse form is column-oriented only.
	if _, err := eng.EncryptSparse(x, securemat.EncryptOptions{WithRows: true}); !errors.Is(err, securemat.ErrShape) {
		t.Errorf("EncryptSparse with WithRows: %v, want ErrShape", err)
	}
}

// referenceTopK sorts one output column the way TopK promises: value
// descending, index ascending on ties, trimmed to k.
func referenceTopK(col []int64, k int) []dlog.TopKHit {
	hits := make([]dlog.TopKHit, len(col))
	for i, v := range col {
		hits[i] = dlog.TopKHit{Index: i, Value: v}
	}
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].Value != hits[b].Value {
			return hits[a].Value > hits[b].Value
		}
		return hits[a].Index < hits[b].Index
	})
	return hits[:k]
}

// TestSecureDotTopKMatchesFullProduct pins per-column top-k hits against
// the full plaintext product and asserts the solved/skipped accounting —
// the engine-level face of the "solves exactly k dlogs" criterion. The
// label weights are spaced wider than one giant-step round so every label
// resolves in its own round and the scan provably skips the losers.
func TestSecureDotTopKMatchesFullProduct(t *testing.T) {
	const (
		rows, cols = 24, 3
		labels     = 50
		k          = 5
	)
	_, eng := newFixture(t, 1_000_000)
	spacing := int64(eng.Solver().TableSize()) + 1
	// x has a single nonzero per column (coordinate 0), so ⟨w_i, x_j⟩ is
	// exactly w[i][0] — a ladder of distinct, round-separated logits.
	x := make([][]int64, rows)
	for i := range x {
		x[i] = make([]int64, cols)
	}
	for j := 0; j < cols; j++ {
		x[0][j] = 1
	}
	rng := rand.New(rand.NewSource(12))
	w := sparseMatrix(rng, labels, rows, 0.7)
	for i := 0; i < labels; i++ {
		w[i][0] = int64(i) * spacing
	}
	enc, err := eng.EncryptSparse(x, securemat.EncryptOptions{})
	if err != nil {
		t.Fatal(err)
	}
	hits, err := eng.DotTopK(enc, w, k, securemat.ComputeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := plainDot(w, x)
	if len(hits) != cols {
		t.Fatalf("%d hit columns, want %d", len(hits), cols)
	}
	for j := 0; j < cols; j++ {
		col := make([]int64, labels)
		for i := range col {
			col[i] = want[i][j]
		}
		ref := referenceTopK(col, k)
		if len(hits[j]) != k {
			t.Fatalf("column %d: %d hits, want %d", j, len(hits[j]), k)
		}
		for r := 0; r < k; r++ {
			if hits[j][r] != ref[r] {
				t.Fatalf("column %d rank %d: got %+v, want %+v", j, r, hits[j][r], ref[r])
			}
		}
	}
	// The input-magnitude ceiling must not change the ranking, only the
	// scan's starting round (|x| ≤ 1 here, so the ceiling is valid).
	keys, err := eng.SparseDotKeys(enc, w)
	if err != nil {
		t.Fatal(err)
	}
	bounded, err := eng.SecureDotTopK(enc, keys, w, k, securemat.ComputeOptions{InputMagnitude: 1})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < cols; j++ {
		for r := 0; r < k; r++ {
			if bounded[j][r] != hits[j][r] {
				t.Fatalf("ceiling scan diverges at column %d rank %d: %+v vs %+v", j, r, bounded[j][r], hits[j][r])
			}
		}
	}

	st := eng.SparseStats()
	// Round-separated logits: each scan resolves exactly k labels, twice
	// (plain and ceiling passes).
	if st.TopKSolved != uint64(2*k*cols) {
		t.Errorf("TopKSolved = %d, want exactly %d", st.TopKSolved, 2*k*cols)
	}
	if st.TopKSolved+st.TopKSkipped != uint64(2*labels*cols) {
		t.Errorf("solved(%d)+skipped(%d) != %d cells", st.TopKSolved, st.TopKSkipped, 2*labels*cols)
	}
	if st.TopKRounds == 0 {
		t.Error("TopKRounds stayed zero across three scans")
	}
}

// TestSparseKeyTrafficCompact asserts the two key-side wins: coordinate-
// form requests account only nnz scalars (not η), and columns sharing a
// support share one derivation.
func TestSparseKeyTrafficCompact(t *testing.T) {
	auth, eng := newFixture(t, 1_000_000)
	const rows, wRows = 50, 3
	rng := rand.New(rand.NewSource(44))
	// Two columns with identical supports, one distinct.
	x := make([][]int64, rows)
	for i := range x {
		x[i] = make([]int64, 3)
	}
	for _, i := range []int{3, 17, 42} {
		x[i][0], x[i][1] = int64(i+1), int64(2*i+1)
	}
	x[9][2] = 7
	w := sparseMatrix(rng, wRows, rows, 0.8)
	enc, err := eng.EncryptSparse(x, securemat.EncryptOptions{})
	if err != nil {
		t.Fatal(err)
	}
	auth.ResetStats()
	keys, err := eng.SparseDotKeys(enc, w)
	if err != nil {
		t.Fatal(err)
	}
	// Same support ⇒ literally the same *FunctionKey pointers.
	for i := 0; i < wRows; i++ {
		if keys[0][i] != keys[1][i] {
			t.Errorf("row %d: columns with identical supports did not share a key", i)
		}
	}
	st := auth.Stats()
	if want := uint64(2 * wRows); st.IPKeys != want {
		t.Errorf("authority issued %d keys, want %d (two distinct supports)", st.IPKeys, want)
	}
	if want := uint64(wRows * (3 + 1)); st.IPKeyScalars != want {
		t.Errorf("key traffic %d scalars, want %d (nnz-proportional)", st.IPKeyScalars, want)
	}
	if got := eng.SparseStats().MaskedKeys; got != st.IPKeys {
		t.Errorf("engine counted %d masked keys, authority issued %d", got, st.IPKeys)
	}
}

// TestSparseEngineMetrics exercises the structural MetricsSource: every
// sparse counter family must appear in Prometheus text format.
func TestSparseEngineMetrics(t *testing.T) {
	_, eng := newFixture(t, 1_000_000)
	rng := rand.New(rand.NewSource(2))
	x := sparseMatrix(rng, 20, 2, 0.1)
	enc, err := eng.EncryptSparse(x, securemat.EncryptOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.DotTopK(enc, sparseMatrix(rng, 8, 20, 0.5), 2, securemat.ComputeOptions{}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	eng.WriteMetrics(&sb)
	out := sb.String()
	for _, fam := range []string{
		"cryptonn_securemat_sparse_columns_total",
		"cryptonn_securemat_promoted_columns_total",
		"cryptonn_securemat_skipped_coords_total",
		"cryptonn_securemat_encrypted_coords_total",
		"cryptonn_securemat_masked_keys_total",
		"cryptonn_securemat_topk_solved_total",
		"cryptonn_securemat_topk_skipped_total",
		"cryptonn_securemat_topk_rounds_total",
		"cryptonn_securemat_dotkey_cache_hits_total",
		"cryptonn_securemat_dotkey_cache_misses_total",
	} {
		if !strings.Contains(out, "\n"+fam+" ") {
			t.Errorf("metrics output missing sample for %s", fam)
		}
		if !strings.Contains(out, "# TYPE "+fam+" counter") {
			t.Errorf("metrics output missing TYPE line for %s", fam)
		}
	}
}

// recordingSparseService forwards to the in-process authority and records
// every support it observes on the coordinate-form key path — the test's
// stand-in for a curious authority (or wire observer).
type recordingSparseService struct {
	auth     *authority.Authority
	mu       sync.Mutex
	supports [][]int
}

func (s *recordingSparseService) FEIPPublic(eta int) (*feip.MasterPublicKey, error) {
	return s.auth.FEIPPublic(eta)
}

func (s *recordingSparseService) FEBOPublic() (*febo.PublicKey, error) { return s.auth.FEBOPublic() }

func (s *recordingSparseService) IPKey(y []int64) (*feip.FunctionKey, error) { return s.auth.IPKey(y) }

func (s *recordingSparseService) BOKey(cmt *big.Int, op febo.Op, y int64) (*febo.FunctionKey, error) {
	return s.auth.BOKey(cmt, op, y)
}

func (s *recordingSparseService) IPKeySparse(eta int, idx []int, vals []int64) (*feip.FunctionKey, error) {
	s.mu.Lock()
	s.supports = append(s.supports, append([]int(nil), idx...))
	s.mu.Unlock()
	return s.auth.IPKeySparse(eta, idx, vals)
}

// TestSparsePaddingPolicy pins the support-hiding padding contract: with
// size-class buckets configured, every support the authority observes
// lands exactly on a bucket boundary (or full η when no bucket fits), the
// observed support is a superset of the true one, decryption is unchanged
// (zero-valued pads contribute nothing to the derived key), and the pad
// counters account the overhead exactly.
func TestSparsePaddingPolicy(t *testing.T) {
	const (
		eta   = 40
		wRows = 3
	)
	auth, err := authority.New(group.TestParams(), authority.AllowAll())
	if err != nil {
		t.Fatal(err)
	}
	solver, err := dlog.NewSolver(group.TestParams(), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	rec := &recordingSparseService{auth: auth}
	eng, err := securemat.NewEngine(rec, securemat.EngineOptions{
		Solver:        solver,
		SparseBuckets: []int{4, 8},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Four columns: nnz 2 (→ bucket 4), a duplicate of it (shared
	// derivation, no second request), nnz 5 (→ bucket 8), and nnz 9
	// (beyond every bucket → padded to full η).
	x := make([][]int64, eta)
	for i := range x {
		x[i] = make([]int64, 4)
	}
	for _, i := range []int{5, 20} {
		x[i][0], x[i][1] = int64(i+1), int64(2*i+1)
	}
	for _, i := range []int{1, 8, 13, 27, 39} {
		x[i][2] = int64(i + 2)
	}
	for _, i := range []int{0, 4, 9, 16, 22, 25, 31, 36, 38} {
		x[i][3] = int64(i + 3)
	}
	rng := rand.New(rand.NewSource(17))
	w := sparseMatrix(rng, wRows, eta, 0.7)

	enc, err := eng.EncryptSparse(x, securemat.EncryptOptions{})
	if err != nil {
		t.Fatal(err)
	}
	z, err := eng.DotSparse(enc, w, securemat.ComputeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if want := plainDot(w, x); !matEqual(z, want) {
		t.Fatal("padded key derivation changed the decrypted product")
	}

	// Authority-observed supports: three unique supports × wRows requests,
	// every size exactly on a bucket boundary (or η).
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if want := 3 * wRows; len(rec.supports) != want {
		t.Fatalf("authority saw %d sparse key requests, want %d", len(rec.supports), want)
	}
	sizes := map[int]int{}
	for _, sup := range rec.supports {
		sizes[len(sup)]++
		if !sort.IntsAreSorted(sup) {
			t.Errorf("observed support not sorted: %v", sup)
		}
	}
	if sizes[4] != wRows || sizes[8] != wRows || sizes[eta] != wRows || len(sizes) != 3 {
		t.Errorf("observed support sizes %v, want %d each of {4, 8, %d}", sizes, wRows, eta)
	}
	// Each observed support must contain its true support (pads only add).
	contains := func(sup []int, idx int) bool {
		i := sort.SearchInts(sup, idx)
		return i < len(sup) && sup[i] == idx
	}
	for _, sup := range rec.supports {
		if len(sup) != 4 {
			continue
		}
		for _, i := range []int{5, 20} {
			if !contains(sup, i) {
				t.Errorf("bucketed support %v lost true coordinate %d", sup, i)
			}
		}
	}

	// Counter contract: three unique supports padded; pads of 2, 3 and 31
	// zero coordinates, each requested wRows times.
	st := eng.SparseStats()
	if st.PaddedSupports != 3 {
		t.Errorf("PaddedSupports = %d, want 3", st.PaddedSupports)
	}
	if want := uint64((2 + 3 + 31) * wRows); st.PadCoords != want {
		t.Errorf("PadCoords = %d, want %d", st.PadCoords, want)
	}
	var sb strings.Builder
	eng.WriteMetrics(&sb)
	for _, fam := range []string{
		"cryptonn_securemat_padded_supports_total",
		"cryptonn_securemat_pad_coords_total",
	} {
		if !strings.Contains(sb.String(), "\n"+fam+" ") {
			t.Errorf("metrics output missing sample for %s", fam)
		}
	}

	// Without buckets the authority sees the true supports — the padded
	// engine's results must match the unpadded engine's bit for bit.
	plainEng, err := securemat.NewEngine(auth, securemat.EngineOptions{Solver: solver})
	if err != nil {
		t.Fatal(err)
	}
	z2, err := plainEng.DotSparse(enc, w, securemat.ComputeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !matEqual(z, z2) {
		t.Error("padded and unpadded engines decrypt different products")
	}
}

// TestSparseDotShapeErrors covers the validation surface of the sparse
// dot and top-k entry points.
func TestSparseDotShapeErrors(t *testing.T) {
	auth, eng := newFixture(t, 1_000_000)
	rng := rand.New(rand.NewSource(3))
	x := sparseMatrix(rng, 10, 2, 0.2)
	enc, err := eng.EncryptSparse(x, securemat.EncryptOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w := sparseMatrix(rng, 4, 10, 0.5)
	keys, err := eng.SparseDotKeys(enc, w)
	if err != nil {
		t.Fatal(err)
	}
	badW := sparseMatrix(rng, 4, 9, 0.5)
	if _, err := eng.SparseDotKeys(enc, badW); !errors.Is(err, securemat.ErrShape) {
		t.Errorf("SparseDotKeys with mismatched W: %v, want ErrShape", err)
	}
	if _, err := eng.SecureDotSparse(enc, keys, badW, securemat.ComputeOptions{}); !errors.Is(err, securemat.ErrShape) {
		t.Errorf("mismatched W: %v, want ErrShape", err)
	}
	if _, err := eng.SecureDotTopK(enc, keys[:1], w, 2, securemat.ComputeOptions{}); !errors.Is(err, securemat.ErrShape) {
		t.Errorf("short key set: %v, want ErrShape", err)
	}
	if _, err := eng.SecureDotTopK(enc, keys, w, 0, securemat.ComputeOptions{}); err == nil {
		t.Error("k=0 accepted")
	}
	// Encrypt-only sessions cannot decrypt.
	encOnly, err := securemat.NewEngine(auth, securemat.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := encOnly.SecureDotSparse(enc, keys, w, securemat.ComputeOptions{}); !errors.Is(err, securemat.ErrNoSolver) {
		t.Errorf("solverless sparse dot: %v, want ErrNoSolver", err)
	}
	if _, err := encOnly.SecureDotTopK(enc, keys, w, 2, securemat.ComputeOptions{}); !errors.Is(err, securemat.ErrNoSolver) {
		t.Errorf("solverless top-k: %v, want ErrNoSolver", err)
	}
}
