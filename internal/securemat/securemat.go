// Package securemat implements the paper's secure matrix computation
// scheme (Algorithm 1): matrix dot-products and element-wise arithmetic
// over functionally encrypted matrices.
//
// The scheme has three roles, mirrored by the package API:
//
//   - the client pre-processes a plaintext matrix into an EncryptedMatrix
//     (Encrypt): every column is encrypted under FEIP for dot-products and
//     every element under FEBO for element-wise arithmetic;
//   - the server obtains function-derived keys from the authority through
//     the KeyService interface (DotKeys, ElementwiseKeys);
//   - the server then evaluates the permitted function over ciphertexts
//     (SecureDot, SecureElementwise), obtaining a plaintext result matrix.
//
// Decryption is the expensive step (one bounded discrete log per output
// element); as in the paper (§III-C), the package offers a parallelized
// path — a goroutine worker pool over output cells — which produces the
// "P" curves of Fig. 3d/4d/5d.
//
// One deliberate extension over the paper's Algorithm 1: Encrypt can also
// encrypt the matrix row-wise (dual orientation). The paper's Algorithm 2
// needs the first-layer weight gradient dW = dZ·Xᵀ during back-propagation
// but never spells out how to compute it when X is encrypted; inner
// products against rows of X (feature vectors across the batch) make it
// expressible in the very same FEIP machinery. See DESIGN.md §4.
package securemat

import (
	"errors"
	"fmt"
	"math/big"

	"cryptonn/internal/dlog"
	"cryptonn/internal/febo"
	"cryptonn/internal/feip"
)

// Function identifies a permitted function f ∈ F over encrypted matrices.
type Function int

// The permitted function set F of Algorithm 1.
const (
	// DotProduct is the matrix product W·X computed as inner products of
	// rows of W with encrypted columns of X.
	DotProduct Function = iota + 1
	// ElementwiseAdd is X + Y element-wise.
	ElementwiseAdd
	// ElementwiseSub is X − Y element-wise.
	ElementwiseSub
	// ElementwiseMul is X ∘ Y element-wise.
	ElementwiseMul
	// ElementwiseDiv is X ⊘ Y element-wise (exact integer divisions only).
	ElementwiseDiv
)

// String names the function for logs and errors.
func (f Function) String() string {
	switch f {
	case DotProduct:
		return "dot-product"
	case ElementwiseAdd:
		return "elementwise-add"
	case ElementwiseSub:
		return "elementwise-sub"
	case ElementwiseMul:
		return "elementwise-mul"
	case ElementwiseDiv:
		return "elementwise-div"
	default:
		return fmt.Sprintf("Function(%d)", int(f))
	}
}

// Valid reports whether f is in the permitted set.
func (f Function) Valid() bool { return f >= DotProduct && f <= ElementwiseDiv }

// BasicOp maps an element-wise Function to its FEBO operation.
func (f Function) BasicOp() (febo.Op, bool) {
	switch f {
	case ElementwiseAdd:
		return febo.OpAdd, true
	case ElementwiseSub:
		return febo.OpSub, true
	case ElementwiseMul:
		return febo.OpMul, true
	case ElementwiseDiv:
		return febo.OpDiv, true
	default:
		return 0, false
	}
}

// KeyService is the server's view of the authority (Fig. 1): it hands out
// public keys and function-derived keys for the permitted function set.
// Implementations include the in-process authority and the TCP client in
// internal/wire.
type KeyService interface {
	// FEIPPublic returns the inner-product master public key (dimension η).
	FEIPPublic(eta int) (*feip.MasterPublicKey, error)
	// FEBOPublic returns the basic-operation public key.
	FEBOPublic() (*febo.PublicKey, error)
	// IPKey derives the inner-product key for weight vector y.
	IPKey(y []int64) (*feip.FunctionKey, error)
	// BOKey derives the basic-op key bound to the ciphertext commitment cmt.
	BOKey(cmt *big.Int, op febo.Op, y int64) (*febo.FunctionKey, error)
}

// BatchKeyService is an optional KeyService extension: implementations
// derive the keys for several weight vectors in one exchange. Over the
// network this collapses the per-row round trips of a weight matrix into
// a single frame (§IV-B2's k-keys-per-iteration traffic); DotKeys uses
// it automatically when available.
type BatchKeyService interface {
	KeyService
	// IPKeyBatch derives one inner-product key per weight vector, in
	// order.
	IPKeyBatch(ys [][]int64) ([]*feip.FunctionKey, error)
	// BOKeyBatch derives one basic-op key per (commitment, scalar) pair,
	// in order; cmts and ys must have equal length.
	BOKeyBatch(cmts []*big.Int, op febo.Op, ys []int64) ([]*febo.FunctionKey, error)
}

var (
	// ErrShape reports a ragged or dimension-mismatched matrix.
	ErrShape = errors.New("securemat: shape mismatch")
	// ErrFunction reports a function outside the permitted set F.
	ErrFunction = errors.New("securemat: function not permitted")
)

// Shape checks that m is rectangular and returns (rows, cols).
func Shape(m [][]int64) (rows, cols int, err error) {
	rows = len(m)
	if rows == 0 {
		return 0, 0, fmt.Errorf("%w: empty matrix", ErrShape)
	}
	cols = len(m[0])
	if cols == 0 {
		return 0, 0, fmt.Errorf("%w: empty row", ErrShape)
	}
	for i, row := range m {
		if len(row) != cols {
			return 0, 0, fmt.Errorf("%w: row %d has %d columns, want %d", ErrShape, i, len(row), cols)
		}
	}
	return rows, cols, nil
}

// EncryptedMatrix is the client-side pre-processing output [[x]], [[X]] of
// Algorithm 1 (plus the optional dual row orientation).
type EncryptedMatrix struct {
	// Rows and Cols are the plaintext dimensions.
	Rows, Cols int
	// ColCts[j] encrypts column j of X (a vector of length Rows) under
	// FEIP; used for W·X.
	ColCts []*feip.Ciphertext
	// RowCts[i] encrypts row i of X (a vector of length Cols) under FEIP;
	// dual orientation for dZ·Xᵀ during back-propagation. Nil unless
	// requested.
	RowCts []*feip.Ciphertext
	// Elems[i][j] encrypts X[i][j] under FEBO for element-wise arithmetic.
	// Nil unless requested.
	Elems [][]*febo.Ciphertext
}

// HasElems reports whether per-element FEBO ciphertexts are present.
func (e *EncryptedMatrix) HasElems() bool { return e != nil && e.Elems != nil }

// HasRows reports whether the dual row-orientation ciphertexts are present.
func (e *EncryptedMatrix) HasRows() bool { return e != nil && e.RowCts != nil }

// EncryptOptions selects which ciphertext forms Encrypt produces and how
// much client-side parallelism to spend. The zero value reproduces
// Algorithm 1 exactly (columns + elements, sequential).
type EncryptOptions struct {
	// SkipElems omits the per-element FEBO ciphertexts (saves one
	// exponentiation pair per element when only dot-products are needed).
	SkipElems bool
	// WithRows additionally encrypts each row under FEIP (dual
	// orientation for secure gradient computation).
	WithRows bool
	// Parallelism is the number of encryption workers, with the same
	// semantics as ComputeOptions.Parallelism: values < 2 select the
	// sequential path, negative values mean DefaultParallelism. The
	// fixed-base tables the workers share are immutable after Precompute,
	// so any worker count is safe.
	Parallelism int
}

// Encrypt is the pre-process-encryption function of Algorithm 1 (lines
// 14–21): it encrypts every column of X under FEIP and, unless opted out,
// every element under FEBO.
//
// The FEIP public key is requested at dimension Rows for columns (and
// dimension Cols for the dual rows); the FEBO public key protects single
// elements. Column, row and element encryptions are each independent, so
// they drain on the chunked worker pipeline when opts.Parallelism asks for
// workers — the client-side counterpart of the parallel decryption path.
func Encrypt(ks KeyService, x [][]int64, opts EncryptOptions) (*EncryptedMatrix, error) {
	rows, cols, err := Shape(x)
	if err != nil {
		return nil, err
	}
	workers := opts.Parallelism
	if workers < 0 {
		workers = DefaultParallelism()
	}
	colMPK, err := ks.FEIPPublic(rows)
	if err != nil {
		return nil, fmt.Errorf("securemat: fetching FEIP key: %w", err)
	}
	// Build the per-h_i fixed-base tables once, before the workers fan
	// out; every column encryption below then runs on the shared
	// read-only fast path.
	colMPK.Precompute()
	enc := &EncryptedMatrix{Rows: rows, Cols: cols}
	enc.ColCts = make([]*feip.Ciphertext, cols)
	// One column per chunk: a column encryption is η+1 exponentiations,
	// plenty to amortize the chunk hand-off. The scratch is the per-worker
	// column gather buffer.
	err = forEachChunk(cols, 1, workers,
		func() []int64 { return make([]int64, rows) },
		func(start, end int, colBuf []int64) error {
			for j := start; j < end; j++ {
				for i := 0; i < rows; i++ {
					colBuf[i] = x[i][j]
				}
				ct, err := feip.Encrypt(colMPK, colBuf, nil)
				if err != nil {
					return fmt.Errorf("securemat: encrypting column %d: %w", j, err)
				}
				enc.ColCts[j] = ct
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	if opts.WithRows {
		rowMPK, err := ks.FEIPPublic(cols)
		if err != nil {
			return nil, fmt.Errorf("securemat: fetching FEIP row key: %w", err)
		}
		rowMPK.Precompute()
		enc.RowCts = make([]*feip.Ciphertext, rows)
		err = forEachChunk(rows, 1, workers,
			func() struct{} { return struct{}{} },
			func(start, end int, _ struct{}) error {
				for i := start; i < end; i++ {
					ct, err := feip.Encrypt(rowMPK, x[i], nil)
					if err != nil {
						return fmt.Errorf("securemat: encrypting row %d: %w", i, err)
					}
					enc.RowCts[i] = ct
				}
				return nil
			})
		if err != nil {
			return nil, err
		}
	}
	if !opts.SkipElems {
		boPK, err := ks.FEBOPublic()
		if err != nil {
			return nil, fmt.Errorf("securemat: fetching FEBO key: %w", err)
		}
		boPK.Precompute()
		enc.Elems = make([][]*febo.Ciphertext, rows)
		buf := make([]*febo.Ciphertext, rows*cols)
		for i := range enc.Elems {
			enc.Elems[i] = buf[i*cols : (i+1)*cols : (i+1)*cols]
		}
		// Element encryptions are two exponentiations each — chunk a few
		// together so the pipeline overhead stays negligible.
		err = forEachChunk(rows*cols, 16, workers,
			func() struct{} { return struct{}{} },
			func(start, end int, _ struct{}) error {
				for idx := start; idx < end; idx++ {
					i, j := idx/cols, idx%cols
					ct, err := febo.Encrypt(boPK, x[i][j], nil)
					if err != nil {
						return fmt.Errorf("securemat: encrypting element (%d,%d): %w", i, j, err)
					}
					enc.Elems[i][j] = ct
				}
				return nil
			})
		if err != nil {
			return nil, err
		}
	}
	return enc, nil
}

// DotKeys is the pre-process-key-derivative function for the dot-product
// case (Algorithm 1 lines 24–27): one inner-product key per row of W.
func DotKeys(ks KeyService, w [][]int64) ([]*feip.FunctionKey, error) {
	if _, _, err := Shape(w); err != nil {
		return nil, err
	}
	if bks, ok := ks.(BatchKeyService); ok {
		keys, err := bks.IPKeyBatch(w)
		if err != nil {
			return nil, fmt.Errorf("securemat: deriving dot keys in batch: %w", err)
		}
		return keys, nil
	}
	keys := make([]*feip.FunctionKey, len(w))
	for i, row := range w {
		fk, err := ks.IPKey(row)
		if err != nil {
			return nil, fmt.Errorf("securemat: deriving dot key for row %d: %w", i, err)
		}
		keys[i] = fk
	}
	return keys, nil
}

// ElementwiseKeys is the pre-process-key-derivative function for the
// element-wise case (Algorithm 1 lines 28–30): one FEBO key per element,
// bound to the corresponding ciphertext commitment.
func ElementwiseKeys(ks KeyService, enc *EncryptedMatrix, f Function, y [][]int64) ([][]*febo.FunctionKey, error) {
	op, ok := f.BasicOp()
	if !ok {
		return nil, fmt.Errorf("%w: %s is not element-wise", ErrFunction, f)
	}
	if !enc.HasElems() {
		return nil, fmt.Errorf("%w: matrix was encrypted without element ciphertexts", ErrShape)
	}
	rows, cols, err := Shape(y)
	if err != nil {
		return nil, err
	}
	if rows != enc.Rows || cols != enc.Cols {
		return nil, fmt.Errorf("%w: Y is %dx%d, encrypted X is %dx%d", ErrShape, rows, cols, enc.Rows, enc.Cols)
	}
	if bks, ok := ks.(BatchKeyService); ok {
		cmts := make([]*big.Int, 0, rows*cols)
		ys := make([]int64, 0, rows*cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				cmts = append(cmts, enc.Elems[i][j].Cmt)
				ys = append(ys, y[i][j])
			}
		}
		flat, err := bks.BOKeyBatch(cmts, op, ys)
		if err != nil {
			return nil, fmt.Errorf("securemat: deriving %s keys in batch: %w", op, err)
		}
		keys := make([][]*febo.FunctionKey, rows)
		for i := 0; i < rows; i++ {
			keys[i] = flat[i*cols : (i+1)*cols : (i+1)*cols]
		}
		return keys, nil
	}
	keys := make([][]*febo.FunctionKey, rows)
	for i := 0; i < rows; i++ {
		keys[i] = make([]*febo.FunctionKey, cols)
		for j := 0; j < cols; j++ {
			fk, err := ks.BOKey(enc.Elems[i][j].Cmt, op, y[i][j])
			if err != nil {
				return nil, fmt.Errorf("securemat: deriving %s key for (%d,%d): %w", op, i, j, err)
			}
			keys[i][j] = fk
		}
	}
	return keys, nil
}

// ComputeOptions tunes the secure-computation step.
type ComputeOptions struct {
	// Parallelism is the number of decryption workers. Values < 2 select
	// the sequential path (the paper's non-"P" curves).
	Parallelism int
}

// SecureDot is the secure-computation function for f = dot-product
// (Algorithm 1 lines 4–8): Z[i][j] = ⟨W_i, X_col_j⟩ recovered from
// ciphertexts only. keys[i] must be the IPKey for row i of w.
func SecureDot(ks KeyService, enc *EncryptedMatrix, keys []*feip.FunctionKey, w [][]int64, solver *dlog.Solver, opts ComputeOptions) ([][]int64, error) {
	wRows, wCols, err := Shape(w)
	if err != nil {
		return nil, err
	}
	if wCols != enc.Rows {
		return nil, fmt.Errorf("%w: W is %dx%d but encrypted X has %d rows", ErrShape, wRows, wCols, enc.Rows)
	}
	if len(keys) != wRows {
		return nil, fmt.Errorf("%w: %d keys for %d rows of W", ErrShape, len(keys), wRows)
	}
	mpk, err := ks.FEIPPublic(enc.Rows)
	if err != nil {
		return nil, fmt.Errorf("securemat: fetching FEIP key: %w", err)
	}
	z := newMatrix(wRows, enc.Cols)
	if err := decryptDotBatched(mpk.Params, solver, enc.ColCts, keys, w, opts.Parallelism, z); err != nil {
		return nil, err
	}
	return z, nil
}

// SecureDotRows computes G[i][k] = ⟨d_i, X_row_k⟩ over the dual
// row-orientation ciphertexts, i.e. the matrix product D·Xᵀ. This realizes
// the first-layer weight gradient dW = dZ·Xᵀ of secure back-propagation;
// keys[i] must be the IPKey for row i of d (vectors of length enc.Cols).
func SecureDotRows(ks KeyService, enc *EncryptedMatrix, keys []*feip.FunctionKey, d [][]int64, solver *dlog.Solver, opts ComputeOptions) ([][]int64, error) {
	if !enc.HasRows() {
		return nil, fmt.Errorf("%w: matrix was encrypted without row orientation", ErrShape)
	}
	dRows, dCols, err := Shape(d)
	if err != nil {
		return nil, err
	}
	if dCols != enc.Cols {
		return nil, fmt.Errorf("%w: D is %dx%d but encrypted X has %d cols", ErrShape, dRows, dCols, enc.Cols)
	}
	if len(keys) != dRows {
		return nil, fmt.Errorf("%w: %d keys for %d rows of D", ErrShape, len(keys), dRows)
	}
	mpk, err := ks.FEIPPublic(enc.Cols)
	if err != nil {
		return nil, fmt.Errorf("securemat: fetching FEIP key: %w", err)
	}
	g := newMatrix(dRows, enc.Rows)
	if err := decryptDotBatched(mpk.Params, solver, enc.RowCts, keys, d, opts.Parallelism, g); err != nil {
		return nil, err
	}
	return g, nil
}

// SecureElementwise is the secure-computation function for element-wise f
// (Algorithm 1 lines 9–12): Z[i][j] = X[i][j] Δ Y[i][j] recovered from
// ciphertexts only.
func SecureElementwise(ks KeyService, enc *EncryptedMatrix, keys [][]*febo.FunctionKey, f Function, y [][]int64, solver *dlog.Solver, opts ComputeOptions) ([][]int64, error) {
	op, ok := f.BasicOp()
	if !ok {
		return nil, fmt.Errorf("%w: %s is not element-wise", ErrFunction, f)
	}
	if !enc.HasElems() {
		return nil, fmt.Errorf("%w: matrix was encrypted without element ciphertexts", ErrShape)
	}
	rows, cols, err := Shape(y)
	if err != nil {
		return nil, err
	}
	if rows != enc.Rows || cols != enc.Cols {
		return nil, fmt.Errorf("%w: Y is %dx%d, encrypted X is %dx%d", ErrShape, rows, cols, enc.Rows, enc.Cols)
	}
	if len(keys) != rows {
		return nil, fmt.Errorf("%w: %d key rows for %d matrix rows", ErrShape, len(keys), rows)
	}
	pk, err := ks.FEBOPublic()
	if err != nil {
		return nil, fmt.Errorf("securemat: fetching FEBO key: %w", err)
	}
	z := newMatrix(rows, cols)
	err = decryptBatched(pk.Params, solver, rows, cols, opts.Parallelism,
		func(i, j int) (num, den *big.Int, err error) {
			return febo.DecryptParts(pk, keys[i][j], enc.Elems[i][j], op, y[i][j])
		}, z)
	if err != nil {
		return nil, err
	}
	return z, nil
}

func newMatrix(rows, cols int) [][]int64 {
	z := make([][]int64, rows)
	buf := make([]int64, rows*cols)
	for i := range z {
		z[i] = buf[i*cols : (i+1)*cols]
	}
	return z
}
