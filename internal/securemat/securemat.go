package securemat

import (
	"errors"
	"fmt"
	"math/big"

	"cryptonn/internal/dlog"
	"cryptonn/internal/febo"
	"cryptonn/internal/feip"
)

// Function identifies a permitted function f ∈ F over encrypted matrices.
type Function int

// The permitted function set F of Algorithm 1.
const (
	// DotProduct is the matrix product W·X computed as inner products of
	// rows of W with encrypted columns of X.
	DotProduct Function = iota + 1
	// ElementwiseAdd is X + Y element-wise.
	ElementwiseAdd
	// ElementwiseSub is X − Y element-wise.
	ElementwiseSub
	// ElementwiseMul is X ∘ Y element-wise.
	ElementwiseMul
	// ElementwiseDiv is X ⊘ Y element-wise (exact integer divisions only).
	ElementwiseDiv
)

// String names the function for logs and errors.
func (f Function) String() string {
	switch f {
	case DotProduct:
		return "dot-product"
	case ElementwiseAdd:
		return "elementwise-add"
	case ElementwiseSub:
		return "elementwise-sub"
	case ElementwiseMul:
		return "elementwise-mul"
	case ElementwiseDiv:
		return "elementwise-div"
	default:
		return fmt.Sprintf("Function(%d)", int(f))
	}
}

// Valid reports whether f is in the permitted set.
func (f Function) Valid() bool { return f >= DotProduct && f <= ElementwiseDiv }

// BasicOp maps an element-wise Function to its FEBO operation.
func (f Function) BasicOp() (febo.Op, bool) {
	switch f {
	case ElementwiseAdd:
		return febo.OpAdd, true
	case ElementwiseSub:
		return febo.OpSub, true
	case ElementwiseMul:
		return febo.OpMul, true
	case ElementwiseDiv:
		return febo.OpDiv, true
	default:
		return 0, false
	}
}

// KeyService is the protocol's view of the authority (Fig. 1): it hands out
// public keys and function-derived keys for the permitted function set.
// Implementations include the in-process authority and the TCP client in
// internal/wire. An Engine wraps a KeyService and memoizes what it serves.
type KeyService interface {
	// FEIPPublic returns the inner-product master public key (dimension η).
	FEIPPublic(eta int) (*feip.MasterPublicKey, error)
	// FEBOPublic returns the basic-operation public key.
	FEBOPublic() (*febo.PublicKey, error)
	// IPKey derives the inner-product key for weight vector y.
	IPKey(y []int64) (*feip.FunctionKey, error)
	// BOKey derives the basic-op key bound to the ciphertext commitment cmt.
	BOKey(cmt *big.Int, op febo.Op, y int64) (*febo.FunctionKey, error)
}

// BatchKeyService is an optional KeyService extension: implementations
// derive the keys for several weight vectors in one exchange. Over the
// network this collapses the per-row round trips of a weight matrix into
// a single frame (§IV-B2's k-keys-per-iteration traffic); DotKeys uses
// it automatically when available.
type BatchKeyService interface {
	KeyService
	// IPKeyBatch derives one inner-product key per weight vector, in
	// order.
	IPKeyBatch(ys [][]int64) ([]*feip.FunctionKey, error)
	// BOKeyBatch derives one basic-op key per (commitment, scalar) pair,
	// in order; cmts and ys must have equal length.
	BOKeyBatch(cmts []*big.Int, op febo.Op, ys []int64) ([]*febo.FunctionKey, error)
}

var (
	// ErrShape reports a ragged or dimension-mismatched matrix.
	ErrShape = errors.New("securemat: shape mismatch")
	// ErrFunction reports a function outside the permitted set F.
	ErrFunction = errors.New("securemat: function not permitted")
)

// Shape checks that m is rectangular and returns (rows, cols).
func Shape(m [][]int64) (rows, cols int, err error) {
	rows = len(m)
	if rows == 0 {
		return 0, 0, fmt.Errorf("%w: empty matrix", ErrShape)
	}
	cols = len(m[0])
	if cols == 0 {
		return 0, 0, fmt.Errorf("%w: empty row", ErrShape)
	}
	for i, row := range m {
		if len(row) != cols {
			return 0, 0, fmt.Errorf("%w: row %d has %d columns, want %d", ErrShape, i, len(row), cols)
		}
	}
	return rows, cols, nil
}

// EncryptedMatrix is the client-side pre-processing output [[x]], [[X]] of
// Algorithm 1 (plus the optional dual row orientation).
type EncryptedMatrix struct {
	// Rows and Cols are the plaintext dimensions.
	Rows, Cols int
	// ColCts[j] encrypts column j of X (a vector of length Rows) under
	// FEIP; used for W·X.
	ColCts []*feip.Ciphertext
	// RowCts[i] encrypts row i of X (a vector of length Cols) under FEIP;
	// dual orientation for dZ·Xᵀ during back-propagation. Nil unless
	// requested.
	RowCts []*feip.Ciphertext
	// Elems[i][j] encrypts X[i][j] under FEBO for element-wise arithmetic.
	// Nil unless requested.
	Elems [][]*febo.Ciphertext
}

// HasElems reports whether per-element FEBO ciphertexts are present.
func (e *EncryptedMatrix) HasElems() bool { return e != nil && e.Elems != nil }

// HasRows reports whether the dual row-orientation ciphertexts are present.
func (e *EncryptedMatrix) HasRows() bool { return e != nil && e.RowCts != nil }

// EncryptOptions selects which ciphertext forms Encrypt produces and how
// much client-side parallelism to spend. The zero value reproduces
// Algorithm 1 exactly (columns + elements) at the engine's default
// parallelism.
type EncryptOptions struct {
	// SkipElems omits the per-element FEBO ciphertexts (saves one
	// exponentiation pair per element when only dot-products are needed).
	SkipElems bool
	// WithRows additionally encrypts each row under FEIP (dual
	// orientation for secure gradient computation).
	WithRows bool
	// Parallelism is the number of encryption workers: 0 defers to the
	// engine's default, 1 forces the sequential path, negative values mean
	// DefaultParallelism. The fixed-base tables the workers share are
	// immutable after Precompute, so any worker count is safe.
	Parallelism int
	// SparseThreshold is the per-column density at or below which
	// Engine.EncryptSparse keeps a compact coordinate-form support; denser
	// columns are padded to full width so their keys stay shareable. 0
	// selects DefaultSparseThreshold; negative keeps every column compact.
	// Ignored by the dense Encrypt path.
	SparseThreshold float64
}

// ComputeOptions tunes the secure-computation step.
type ComputeOptions struct {
	// Parallelism is the number of decryption workers: 0 defers to the
	// engine's default, 1 forces the sequential path (the paper's non-"P"
	// curves), negative values mean DefaultParallelism.
	Parallelism int
	// InputMagnitude is an optional upper bound on |X[i][j]| known to the
	// caller (the fixed-point quantization range, a word-count cap). When
	// positive, the sparse top-k head derives a per-column logit ceiling
	// max_i Σ_{t∈supp}|W[i][t]|·InputMagnitude and starts the descending
	// dlog scan at the first round that can contain it, skipping the empty
	// ladder prefix (dlog.TopKMontBounded). The contract mirrors the
	// solver bound's: an input whose magnitude actually exceeds it can be
	// missing from the top-k ranking. Zero disables the ceiling; other
	// compute paths ignore it.
	InputMagnitude int64
}

// dotKeys derives one inner-product key per row of w, in one batched
// exchange when the service supports it.
func dotKeys(ks KeyService, w [][]int64) ([]*feip.FunctionKey, error) {
	if bks, ok := ks.(BatchKeyService); ok {
		keys, err := bks.IPKeyBatch(w)
		if err != nil {
			return nil, fmt.Errorf("securemat: deriving dot keys in batch: %w", err)
		}
		return keys, nil
	}
	keys := make([]*feip.FunctionKey, len(w))
	for i, row := range w {
		fk, err := ks.IPKey(row)
		if err != nil {
			return nil, fmt.Errorf("securemat: deriving dot key for row %d: %w", i, err)
		}
		keys[i] = fk
	}
	return keys, nil
}

// elementwiseKeys derives one FEBO key per element, bound to the
// corresponding ciphertext commitment.
func elementwiseKeys(ks KeyService, enc *EncryptedMatrix, f Function, y [][]int64) ([][]*febo.FunctionKey, error) {
	op, ok := f.BasicOp()
	if !ok {
		return nil, fmt.Errorf("%w: %s is not element-wise", ErrFunction, f)
	}
	if !enc.HasElems() {
		return nil, fmt.Errorf("%w: matrix was encrypted without element ciphertexts", ErrShape)
	}
	rows, cols, err := Shape(y)
	if err != nil {
		return nil, err
	}
	if rows != enc.Rows || cols != enc.Cols {
		return nil, fmt.Errorf("%w: Y is %dx%d, encrypted X is %dx%d", ErrShape, rows, cols, enc.Rows, enc.Cols)
	}
	if bks, ok := ks.(BatchKeyService); ok {
		cmts := make([]*big.Int, 0, rows*cols)
		ys := make([]int64, 0, rows*cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				cmts = append(cmts, enc.Elems[i][j].Cmt)
				ys = append(ys, y[i][j])
			}
		}
		flat, err := bks.BOKeyBatch(cmts, op, ys)
		if err != nil {
			return nil, fmt.Errorf("securemat: deriving %s keys in batch: %w", op, err)
		}
		keys := make([][]*febo.FunctionKey, rows)
		for i := 0; i < rows; i++ {
			keys[i] = flat[i*cols : (i+1)*cols : (i+1)*cols]
		}
		return keys, nil
	}
	keys := make([][]*febo.FunctionKey, rows)
	for i := 0; i < rows; i++ {
		keys[i] = make([]*febo.FunctionKey, cols)
		for j := 0; j < cols; j++ {
			fk, err := ks.BOKey(enc.Elems[i][j].Cmt, op, y[i][j])
			if err != nil {
				return nil, fmt.Errorf("securemat: deriving %s key for (%d,%d): %w", op, i, j, err)
			}
			keys[i][j] = fk
		}
	}
	return keys, nil
}

// oneShot builds the throwaway session behind the deprecated stateless
// wrappers: no key cache (preserving the old per-call authority traffic)
// and sequential-by-default parallelism, exactly like the free functions.
func oneShot(ks KeyService, solver *dlog.Solver) (*Engine, error) {
	return NewEngine(ks, EngineOptions{Solver: solver, DotKeyCache: -1})
}

// Encrypt is the stateless pre-process-encryption function.
//
// Deprecated: build an Engine once per session and use Engine.Encrypt; the
// free function constructs a throwaway session per call and cannot reuse
// public keys or scratch pools.
func Encrypt(ks KeyService, x [][]int64, opts EncryptOptions) (*EncryptedMatrix, error) {
	e, err := oneShot(ks, nil)
	if err != nil {
		return nil, err
	}
	return e.Encrypt(x, opts)
}

// DotKeys is the stateless pre-process-key-derivative function for the
// dot-product case.
//
// Deprecated: use Engine.DotKeys, which caches keys per weight matrix.
func DotKeys(ks KeyService, w [][]int64) ([]*feip.FunctionKey, error) {
	if _, _, err := Shape(w); err != nil {
		return nil, err
	}
	return dotKeys(ks, w)
}

// ElementwiseKeys is the stateless pre-process-key-derivative function for
// the element-wise case.
//
// Deprecated: use Engine.ElementwiseKeys.
func ElementwiseKeys(ks KeyService, enc *EncryptedMatrix, f Function, y [][]int64) ([][]*febo.FunctionKey, error) {
	return elementwiseKeys(ks, enc, f, y)
}

// SecureDot is the stateless secure-computation function for
// f = dot-product.
//
// Deprecated: use Engine.SecureDot (or Engine.Dot), which reuses the
// session's public keys and solver.
func SecureDot(ks KeyService, enc *EncryptedMatrix, keys []*feip.FunctionKey, w [][]int64, solver *dlog.Solver, opts ComputeOptions) ([][]int64, error) {
	e, err := oneShot(ks, solver)
	if err != nil {
		return nil, err
	}
	return e.SecureDot(enc, keys, w, opts)
}

// SecureDotRows is the stateless dual-orientation secure dot-product
// (D·Xᵀ, the secure back-propagation gradient).
//
// Deprecated: use Engine.SecureDotRows (or Engine.DotRows).
func SecureDotRows(ks KeyService, enc *EncryptedMatrix, keys []*feip.FunctionKey, d [][]int64, solver *dlog.Solver, opts ComputeOptions) ([][]int64, error) {
	e, err := oneShot(ks, solver)
	if err != nil {
		return nil, err
	}
	return e.SecureDotRows(enc, keys, d, opts)
}

// SecureElementwise is the stateless secure-computation function for
// element-wise f.
//
// Deprecated: use Engine.SecureElementwise (or Engine.Elementwise).
func SecureElementwise(ks KeyService, enc *EncryptedMatrix, keys [][]*febo.FunctionKey, f Function, y [][]int64, solver *dlog.Solver, opts ComputeOptions) ([][]int64, error) {
	e, err := oneShot(ks, solver)
	if err != nil {
		return nil, err
	}
	return e.SecureElementwise(enc, keys, f, y, opts)
}

func newMatrix(rows, cols int) [][]int64 {
	z := make([][]int64, rows)
	buf := make([]int64, rows*cols)
	for i := range z {
		z[i] = buf[i*cols : (i+1)*cols]
	}
	return z
}
