// The secure compute engine: a session object for the three-role protocol.
//
// Algorithm 1's roles are long-lived — a training server decrypts thousands
// of matrices against the same authority, a client encrypts batch after
// batch under the same public keys — but the original package API was
// stateless free functions, so every call re-fetched public keys, re-built
// nothing it could share, and every caller re-threaded the KeyService, the
// dlog solver and the parallelism knobs by hand. Engine owns that state
// once: resolved FEIP/FEBO public keys (one fetch per dimension for the
// lifetime of the session), the shared bounded discrete-log solver, pooled
// per-worker encryption scratch slabs, and a small function-key cache keyed
// by weight matrix so repeated SecureDot calls over the same W (prediction
// serving, benchmark sweeps) stop refetching keys from the authority.

package securemat

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"cryptonn/internal/dlog"
	"cryptonn/internal/febo"
	"cryptonn/internal/feip"
)

// DefaultDotKeyCache is the dot-product function-key cache capacity (in
// weight matrices) selected by EngineOptions.DotKeyCache = 0.
const DefaultDotKeyCache = 8

// ErrNoSolver reports a decryption method called on an Engine built
// without a discrete-log solver (an encrypt-only client session).
var ErrNoSolver = errors.New("securemat: engine has no dlog solver")

// EngineOptions configures a secure compute session.
type EngineOptions struct {
	// Solver is the bounded discrete-log solver shared by every decryption
	// the session performs. Encrypt-only sessions (clients) may leave it
	// nil; the Secure* methods then return ErrNoSolver. WithSolver derives
	// a session with a different bound over the same caches.
	Solver *dlog.Solver
	// Parallelism is the session's default worker count, used whenever a
	// per-call EncryptOptions/ComputeOptions leaves Parallelism at 0:
	// values < 2 select the sequential path, negative values NumCPU.
	Parallelism int
	// DotKeyCache is the capacity (in distinct weight matrices) of the
	// function-key cache behind DotKeys: 0 selects DefaultDotKeyCache,
	// negative disables caching (every call derives fresh keys — used by
	// the key-traffic measurements, which count authority requests).
	DotKeyCache int
	// SparseBuckets, when non-empty, turns on the support-hiding padding
	// policy for sparse key derivation: every coordinate-form key request
	// SparseDotKeys sends is first widened with zero-valued coordinates to
	// the smallest bucket ≥ the column's nnz (or to full width when the
	// support exceeds every bucket), so the authority — and any observer
	// of the key-request wire — sees bucketed support sizes, never exact
	// ones. Zero-valued coordinates leave the derived key numerically
	// unchanged (sk = Σ vals·s[idx] and the pads contribute 0), so
	// decryption is unaffected. Values are normalized (sorted, deduped);
	// non-positive buckets are rejected.
	SparseBuckets []int
}

// Engine is a session handle over a KeyService: it memoizes public keys,
// caches dot-product function keys, pools encryption scratch, and carries
// the solver + parallelism defaults every secure computation needs, so
// callers stop re-threading them through every call.
//
// Engines are safe for concurrent use. Methods hand out pointers into the
// session caches (public keys, cached function keys); callers must treat
// them as read-only, exactly as with values received from a KeyService.
type Engine struct {
	shared *engineShared
	solver *dlog.Solver
	par    int
}

// engineShared is the cache state common to an Engine and every
// WithSolver-derived view of it.
type engineShared struct {
	ks KeyService

	pkMu    sync.Mutex
	feipPKs map[int]*feip.MasterPublicKey
	feboPK  *febo.PublicKey

	keyMu        sync.Mutex
	keyCap       int
	keyCache     map[uint64][]*dotKeyEntry
	keyOrder     []uint64 // insertion order of hashes, for FIFO eviction
	hits, misses uint64

	// sparse holds the sparsity observability counters (sparse.go),
	// shared — like every cache — across WithSolver-derived views.
	sparse sparseCounters

	// buckets is the normalized support-padding size-class ladder
	// (EngineOptions.SparseBuckets); empty disables padding.
	buckets []int

	encPool sync.Pool // *encScratch
}

// dotKeyEntry is one cached (weight matrix → function keys) binding. The
// matrix is a deep copy taken at insertion, so hash collisions are resolved
// by exact comparison and later caller mutations cannot poison the cache.
type dotKeyEntry struct {
	w    [][]int64
	keys []*feip.FunctionKey
}

// NewEngine builds a secure compute session over ks.
func NewEngine(ks KeyService, opts EngineOptions) (*Engine, error) {
	if ks == nil {
		return nil, errors.New("securemat: nil key service")
	}
	cap := opts.DotKeyCache
	if cap == 0 {
		cap = DefaultDotKeyCache
	}
	if cap < 0 {
		cap = 0
	}
	buckets, err := normalizeBuckets(opts.SparseBuckets)
	if err != nil {
		return nil, err
	}
	return &Engine{
		shared: &engineShared{
			ks:       ks,
			feipPKs:  make(map[int]*feip.MasterPublicKey),
			keyCap:   cap,
			keyCache: make(map[uint64][]*dotKeyEntry),
			buckets:  buckets,
		},
		solver: opts.Solver,
		par:    opts.Parallelism,
	}, nil
}

// normalizeBuckets validates and canonicalizes a padding ladder: a copy,
// ascending, duplicate-free. Non-positive bucket sizes are configuration
// errors (a zero bucket can never hold a support).
func normalizeBuckets(buckets []int) ([]int, error) {
	if len(buckets) == 0 {
		return nil, nil
	}
	out := make([]int, 0, len(buckets))
	for _, b := range buckets {
		if b <= 0 {
			return nil, fmt.Errorf("securemat: sparse bucket size must be positive, got %d", b)
		}
		out = append(out, b)
	}
	sort.Ints(out)
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w], nil
}

// Keys returns the session's underlying KeyService, for callers that need
// primitives the matrix layer does not wrap (per-sample IPKey derivation in
// the secure loss, the convolution cell decryptions).
func (e *Engine) Keys() KeyService { return e.shared.ks }

// Solver returns the session's discrete-log solver (nil for encrypt-only
// sessions).
func (e *Engine) Solver() *dlog.Solver { return e.solver }

// WithSolver derives a session view with a different discrete-log bound.
// The view shares every cache (public keys, function keys, scratch pools)
// with the parent — a server can size a solver per workload without
// re-fetching a single key.
func (e *Engine) WithSolver(solver *dlog.Solver) *Engine {
	d := *e
	d.solver = solver
	return &d
}

// workers resolves a per-call Parallelism value against the session
// default: 0 defers to the engine, negative means NumCPU.
func (e *Engine) workers(req int) int {
	if req == 0 {
		req = e.par
	}
	if req < 0 {
		req = DefaultParallelism()
	}
	return req
}

// FEIPPublic returns the session's inner-product public key for dimension
// eta, fetching it from the KeyService on first use.
func (e *Engine) FEIPPublic(eta int) (*feip.MasterPublicKey, error) {
	s := e.shared
	s.pkMu.Lock()
	mpk, ok := s.feipPKs[eta]
	s.pkMu.Unlock()
	if ok {
		return mpk, nil
	}
	mpk, err := s.ks.FEIPPublic(eta)
	if err != nil {
		return nil, fmt.Errorf("securemat: fetching FEIP key: %w", err)
	}
	s.pkMu.Lock()
	if prev, ok := s.feipPKs[eta]; ok {
		mpk = prev // keep the first fetch and its precomputed tables
	} else {
		s.feipPKs[eta] = mpk
	}
	s.pkMu.Unlock()
	return mpk, nil
}

// FEBOPublic returns the session's basic-operation public key, fetching it
// on first use.
func (e *Engine) FEBOPublic() (*febo.PublicKey, error) {
	s := e.shared
	s.pkMu.Lock()
	pk := s.feboPK
	s.pkMu.Unlock()
	if pk != nil {
		return pk, nil
	}
	pk, err := s.ks.FEBOPublic()
	if err != nil {
		return nil, fmt.Errorf("securemat: fetching FEBO key: %w", err)
	}
	s.pkMu.Lock()
	if s.feboPK != nil {
		pk = s.feboPK
	} else {
		s.feboPK = pk
	}
	s.pkMu.Unlock()
	return pk, nil
}

// encScratch is the pooled per-worker state of Engine.Encrypt: the column
// gather buffer plus the feip ciphertext slabs (position/negative
// accumulators, dense-cache staging, inversion prefix) that the stateless
// path allocated per column.
type encScratch struct {
	colBuf []int64
	fe     feip.EncryptScratch
	// Sparse-path buffers: the column's coordinate form and the identity
	// support used for density-promoted columns.
	idxBuf  []int
	valBuf  []int64
	fullIdx []int
}

// support extracts col's coordinate form into the scratch buffers; the
// returned slices are valid until the next call on this scratch (the feip
// layer copies what it keeps).
func (sc *encScratch) support(col []int64) (idx []int, vals []int64) {
	sc.idxBuf = sc.idxBuf[:0]
	sc.valBuf = sc.valBuf[:0]
	for i, v := range col {
		if v != 0 {
			sc.idxBuf = append(sc.idxBuf, i)
			sc.valBuf = append(sc.valBuf, v)
		}
	}
	return sc.idxBuf, sc.valBuf
}

// fullSupport returns the identity support [0, rows), cached per scratch.
func (sc *encScratch) fullSupport(rows int) []int {
	if len(sc.fullIdx) < rows {
		sc.fullIdx = make([]int, rows)
		for i := range sc.fullIdx {
			sc.fullIdx[i] = i
		}
	}
	return sc.fullIdx[:rows]
}

// encScratchSource adapts the engine's scratch pool to forEachChunk's
// per-worker newScratch hook: every worker checks one scratch out, and
// release returns them all once the pipeline has joined.
func (e *Engine) encScratchSource() (newScratch func() *encScratch, release func()) {
	var mu sync.Mutex
	var used []*encScratch
	newScratch = func() *encScratch {
		sc, _ := e.shared.encPool.Get().(*encScratch)
		if sc == nil {
			sc = &encScratch{}
		}
		mu.Lock()
		used = append(used, sc)
		mu.Unlock()
		return sc
	}
	release = func() {
		mu.Lock()
		defer mu.Unlock()
		for _, sc := range used {
			e.shared.encPool.Put(sc)
		}
		used = nil
	}
	return newScratch, release
}

// Encrypt is the pre-process-encryption function of Algorithm 1 (lines
// 14–21) as a session method: every column of X is encrypted under FEIP
// and, unless opted out, every element under FEBO, with public keys served
// from the session cache and the per-column ciphertext slabs drawn from the
// session's scratch pool instead of the heap.
func (e *Engine) Encrypt(x [][]int64, opts EncryptOptions) (*EncryptedMatrix, error) {
	rows, cols, err := Shape(x)
	if err != nil {
		return nil, err
	}
	workers := e.workers(opts.Parallelism)
	colMPK, err := e.FEIPPublic(rows)
	if err != nil {
		return nil, err
	}
	// Build the per-h_i fixed-base tables once, before the workers fan
	// out; every column encryption below then runs on the shared
	// read-only fast path.
	colMPK.Precompute()
	newScratch, release := e.encScratchSource()
	defer release()
	enc := &EncryptedMatrix{Rows: rows, Cols: cols}
	enc.ColCts = make([]*feip.Ciphertext, cols)
	// One column per chunk: a column encryption is η+1 exponentiations,
	// plenty to amortize the chunk hand-off.
	err = forEachChunk(cols, 1, workers, newScratch,
		func(start, end int, sc *encScratch) error {
			if cap(sc.colBuf) < rows {
				sc.colBuf = make([]int64, rows)
			}
			colBuf := sc.colBuf[:rows]
			for j := start; j < end; j++ {
				for i := 0; i < rows; i++ {
					colBuf[i] = x[i][j]
				}
				ct, err := feip.EncryptWithScratch(colMPK, colBuf, nil, &sc.fe)
				if err != nil {
					return fmt.Errorf("securemat: encrypting column %d: %w", j, err)
				}
				enc.ColCts[j] = ct
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	if opts.WithRows {
		rowMPK, err := e.FEIPPublic(cols)
		if err != nil {
			return nil, err
		}
		rowMPK.Precompute()
		enc.RowCts = make([]*feip.Ciphertext, rows)
		err = forEachChunk(rows, 1, workers, newScratch,
			func(start, end int, sc *encScratch) error {
				for i := start; i < end; i++ {
					ct, err := feip.EncryptWithScratch(rowMPK, x[i], nil, &sc.fe)
					if err != nil {
						return fmt.Errorf("securemat: encrypting row %d: %w", i, err)
					}
					enc.RowCts[i] = ct
				}
				return nil
			})
		if err != nil {
			return nil, err
		}
	}
	if !opts.SkipElems {
		boPK, err := e.FEBOPublic()
		if err != nil {
			return nil, err
		}
		boPK.Precompute()
		enc.Elems = make([][]*febo.Ciphertext, rows)
		buf := make([]*febo.Ciphertext, rows*cols)
		for i := range enc.Elems {
			enc.Elems[i] = buf[i*cols : (i+1)*cols : (i+1)*cols]
		}
		// Element encryptions are two exponentiations each — chunk a few
		// together so the pipeline overhead stays negligible.
		err = forEachChunk(rows*cols, 16, workers,
			func() struct{} { return struct{}{} },
			func(start, end int, _ struct{}) error {
				for idx := start; idx < end; idx++ {
					i, j := idx/cols, idx%cols
					ct, err := febo.Encrypt(boPK, x[i][j], nil)
					if err != nil {
						return fmt.Errorf("securemat: encrypting element (%d,%d): %w", i, j, err)
					}
					enc.Elems[i][j] = ct
				}
				return nil
			})
		if err != nil {
			return nil, err
		}
	}
	return enc, nil
}

// DotKeys is the pre-process-key-derivative function for the dot-product
// case (Algorithm 1 lines 24–27), with a session-level cache: the keys for
// a weight matrix already seen (prediction serving answers every request
// with the same trained W) are returned without touching the authority.
// The returned keys are shared with the cache — read-only.
func (e *Engine) DotKeys(w [][]int64) ([]*feip.FunctionKey, error) {
	if _, _, err := Shape(w); err != nil {
		return nil, err
	}
	s := e.shared
	if s.keyCap == 0 {
		return dotKeys(s.ks, w)
	}
	h := hashMatrix(w)
	s.keyMu.Lock()
	for _, ent := range s.keyCache[h] {
		if matricesEqual(ent.w, w) {
			s.hits++
			keys := ent.keys
			s.keyMu.Unlock()
			return keys, nil
		}
	}
	s.misses++
	s.keyMu.Unlock()
	// Derive outside the lock: a concurrent miss on the same W costs one
	// duplicate derivation, never a stall of unrelated cache users.
	keys, err := dotKeys(s.ks, w)
	if err != nil {
		return nil, err
	}
	ent := &dotKeyEntry{w: copyMatrix(w), keys: keys}
	s.keyMu.Lock()
	s.keyCache[h] = append(s.keyCache[h], ent)
	s.keyOrder = append(s.keyOrder, h)
	for len(s.keyOrder) > s.keyCap {
		old := s.keyOrder[0]
		s.keyOrder = s.keyOrder[1:]
		if bucket := s.keyCache[old]; len(bucket) <= 1 {
			delete(s.keyCache, old)
		} else {
			s.keyCache[old] = bucket[1:]
		}
	}
	s.keyMu.Unlock()
	return keys, nil
}

// DotKeysUncached derives the dot-product keys without touching the
// session cache. It is the right call for matrices that are unique by
// construction — the per-batch gradient rows of secure back-propagation —
// where caching would only pay a full-matrix hash and deep copy per call
// and churn reusable entries (a serving model's W) out of the FIFO.
func (e *Engine) DotKeysUncached(w [][]int64) ([]*feip.FunctionKey, error) {
	if _, _, err := Shape(w); err != nil {
		return nil, err
	}
	return dotKeys(e.shared.ks, w)
}

// DotKeyCacheStats reports the hit/miss counters of the dot-product
// function-key cache since the session started.
func (e *Engine) DotKeyCacheStats() (hits, misses uint64) {
	s := e.shared
	s.keyMu.Lock()
	defer s.keyMu.Unlock()
	return s.hits, s.misses
}

// ElementwiseKeys is the pre-process-key-derivative function for the
// element-wise case (Algorithm 1 lines 28–30). FEBO keys are bound to one
// ciphertext commitment each, so — unlike DotKeys — there is nothing to
// cache across matrices.
func (e *Engine) ElementwiseKeys(enc *EncryptedMatrix, f Function, y [][]int64) ([][]*febo.FunctionKey, error) {
	return elementwiseKeys(e.shared.ks, enc, f, y)
}

// SecureDot is the secure-computation function for f = dot-product
// (Algorithm 1 lines 4–8): Z[i][j] = ⟨W_i, X_col_j⟩ recovered from
// ciphertexts only. keys[i] must be the IPKey for row i of w (from
// DotKeys).
func (e *Engine) SecureDot(enc *EncryptedMatrix, keys []*feip.FunctionKey, w [][]int64, opts ComputeOptions) ([][]int64, error) {
	wRows, wCols, err := Shape(w)
	if err != nil {
		return nil, err
	}
	if wCols != enc.Rows {
		return nil, fmt.Errorf("%w: W is %dx%d but encrypted X has %d rows", ErrShape, wRows, wCols, enc.Rows)
	}
	if len(keys) != wRows {
		return nil, fmt.Errorf("%w: %d keys for %d rows of W", ErrShape, len(keys), wRows)
	}
	if e.solver == nil {
		return nil, ErrNoSolver
	}
	mpk, err := e.FEIPPublic(enc.Rows)
	if err != nil {
		return nil, err
	}
	z := newMatrix(wRows, enc.Cols)
	if err := decryptDotBatched(mpk.Params, e.solver, enc.ColCts, keys, w, e.workers(opts.Parallelism), z); err != nil {
		return nil, err
	}
	return z, nil
}

// Dot derives (or cache-hits) the keys for w and computes the secure
// matrix product in one call — the shape of every training-loop and
// prediction use.
func (e *Engine) Dot(enc *EncryptedMatrix, w [][]int64, opts ComputeOptions) ([][]int64, error) {
	keys, err := e.DotKeys(w)
	if err != nil {
		return nil, err
	}
	return e.SecureDot(enc, keys, w, opts)
}

// SecureDotRows computes G[i][k] = ⟨d_i, X_row_k⟩ over the dual
// row-orientation ciphertexts, i.e. the matrix product D·Xᵀ — the
// first-layer weight gradient of secure back-propagation. keys[i] must be
// the IPKey for row i of d (vectors of length enc.Cols).
func (e *Engine) SecureDotRows(enc *EncryptedMatrix, keys []*feip.FunctionKey, d [][]int64, opts ComputeOptions) ([][]int64, error) {
	if !enc.HasRows() {
		return nil, fmt.Errorf("%w: matrix was encrypted without row orientation", ErrShape)
	}
	dRows, dCols, err := Shape(d)
	if err != nil {
		return nil, err
	}
	if dCols != enc.Cols {
		return nil, fmt.Errorf("%w: D is %dx%d but encrypted X has %d cols", ErrShape, dRows, dCols, enc.Cols)
	}
	if len(keys) != dRows {
		return nil, fmt.Errorf("%w: %d keys for %d rows of D", ErrShape, len(keys), dRows)
	}
	if e.solver == nil {
		return nil, ErrNoSolver
	}
	mpk, err := e.FEIPPublic(enc.Cols)
	if err != nil {
		return nil, err
	}
	g := newMatrix(dRows, enc.Rows)
	if err := decryptDotBatched(mpk.Params, e.solver, enc.RowCts, keys, d, e.workers(opts.Parallelism), g); err != nil {
		return nil, err
	}
	return g, nil
}

// DotRows is SecureDotRows with the key derivation folded in (cache-aware,
// like Dot).
func (e *Engine) DotRows(enc *EncryptedMatrix, d [][]int64, opts ComputeOptions) ([][]int64, error) {
	keys, err := e.DotKeys(d)
	if err != nil {
		return nil, err
	}
	return e.SecureDotRows(enc, keys, d, opts)
}

// SecureElementwise is the secure-computation function for element-wise f
// (Algorithm 1 lines 9–12): Z[i][j] = X[i][j] Δ Y[i][j] recovered from
// ciphertexts only, entirely in the Montgomery domain — per-cell numerator
// and denominator come from febo.DecryptPartsMont as raw limb elements,
// each chunk's denominators share one batched inversion, and the quotients
// feed dlog.LookupMont without a big.Int round-trip.
func (e *Engine) SecureElementwise(enc *EncryptedMatrix, keys [][]*febo.FunctionKey, f Function, y [][]int64, opts ComputeOptions) ([][]int64, error) {
	op, ok := f.BasicOp()
	if !ok {
		return nil, fmt.Errorf("%w: %s is not element-wise", ErrFunction, f)
	}
	if !enc.HasElems() {
		return nil, fmt.Errorf("%w: matrix was encrypted without element ciphertexts", ErrShape)
	}
	rows, cols, err := Shape(y)
	if err != nil {
		return nil, err
	}
	if rows != enc.Rows || cols != enc.Cols {
		return nil, fmt.Errorf("%w: Y is %dx%d, encrypted X is %dx%d", ErrShape, rows, cols, enc.Rows, enc.Cols)
	}
	if len(keys) != rows {
		return nil, fmt.Errorf("%w: %d key rows for %d matrix rows", ErrShape, len(keys), rows)
	}
	if e.solver == nil {
		return nil, ErrNoSolver
	}
	pk, err := e.FEBOPublic()
	if err != nil {
		return nil, err
	}
	z := newMatrix(rows, cols)
	err = decryptElemBatched(pk, e.solver, enc, keys, op, y, e.workers(opts.Parallelism), z)
	if err != nil {
		return nil, err
	}
	return z, nil
}

// Elementwise derives the per-commitment keys for (f, y) and computes the
// element-wise result in one call.
func (e *Engine) Elementwise(enc *EncryptedMatrix, f Function, y [][]int64, opts ComputeOptions) ([][]int64, error) {
	keys, err := e.ElementwiseKeys(enc, f, y)
	if err != nil {
		return nil, err
	}
	return e.SecureElementwise(enc, keys, f, y, opts)
}

// hashMatrix is FNV-1a over the dimensions and elements of a weight
// matrix — the dot-key cache's bucket key. Collisions are handled by exact
// comparison, so the hash only needs to spread.
func hashMatrix(w [][]int64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(len(w)))
	mix(uint64(len(w[0])))
	for _, row := range w {
		for _, v := range row {
			mix(uint64(v))
		}
	}
	return h
}

func matricesEqual(a, b [][]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func copyMatrix(m [][]int64) [][]int64 {
	out := make([][]int64, len(m))
	buf := make([]int64, len(m)*len(m[0]))
	for i, row := range m {
		out[i] = buf[i*len(row) : (i+1)*len(row) : (i+1)*len(row)]
		copy(out[i], row)
	}
	return out
}
