package securemat

import (
	"runtime"
	"sync"
)

// DefaultParallelism returns the worker count used when a ComputeOptions
// asks for "auto" parallelism (Parallelism < 0): one worker per CPU.
func DefaultParallelism() int { return runtime.NumCPU() }

// ParallelFor applies fn to every index in [0, n), sequentially when
// workers < 2 and on a bounded worker pool otherwise. The secure
// convolution path in internal/core shares it to parallelize per-window
// decryptions exactly like the matrix paths here.
func ParallelFor(n, workers int, fn func(i int) error) error {
	return forEachCell(1, n, workers, func(_, j int) error { return fn(j) })
}

// forEachChunk partitions [0, total) into contiguous chunks of at most
// chunk indices and drains them on a bounded worker pool (sequentially
// when workers < 2). Each worker builds its scratch once with newScratch
// and reuses it for every chunk it drains — the property the batched
// decryption pipeline needs to keep per-cell allocations out of the steady
// state. The first error cancels remaining chunks; all goroutines are
// joined before returning.
func forEachChunk[S any](total, chunk, workers int, newScratch func() S, fn func(start, end int, sc S) error) error {
	if total <= 0 {
		return nil
	}
	if chunk < 1 {
		chunk = 1
	}
	numChunks := (total + chunk - 1) / chunk
	workers = min(workers, numChunks)
	if workers < 2 {
		sc := newScratch()
		for start := 0; start < total; start += chunk {
			if err := fn(start, min(start+chunk, total), sc); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		done     = make(chan struct{})
		chunks   = make(chan int)
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			close(done)
		})
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := newScratch()
			for start := range chunks {
				if err := fn(start, min(start+chunk, total), sc); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
feed:
	for start := 0; start < total; start += chunk {
		select {
		case chunks <- start:
		case <-done:
			break feed
		}
	}
	close(chunks)
	wg.Wait()
	return firstErr
}

// forEachCell applies fn to every (i, j) cell of a rows×cols grid, either
// sequentially (workers < 2) or on a bounded worker pool. The first error
// cancels remaining work; all goroutines are joined before returning, per
// the no-fire-and-forget rule.
func forEachCell(rows, cols, workers int, fn func(i, j int) error) error {
	if workers < 0 {
		workers = DefaultParallelism()
	}
	total := rows * cols
	if workers < 2 || total < 2 {
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if err := fn(i, j); err != nil {
					return err
				}
			}
		}
		return nil
	}
	workers = min(workers, total)

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		done     = make(chan struct{})
		cells    = make(chan int)
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			close(done)
		})
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range cells {
				if err := fn(idx/cols, idx%cols); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	// Feed indices until done fires or all cells are dispatched.
feed:
	for idx := 0; idx < total; idx++ {
		select {
		case cells <- idx:
		case <-done:
			break feed
		}
	}
	close(cells)
	wg.Wait()
	return firstErr
}
