package securemat

import (
	"errors"
	"sync"
	"testing"
)

// forEachChunk must visit every index exactly once, for any chunk/worker
// geometry including ragged final chunks.
func TestForEachChunkCoversAllIndices(t *testing.T) {
	for _, tc := range []struct{ total, chunk, workers int }{
		{1, 1, 1}, {10, 3, 1}, {10, 3, 4}, {100, 16, 4},
		{97, 16, 8}, {16, 16, 4}, {5, 100, 2}, {64, 1, 3},
	} {
		var mu sync.Mutex
		seen := make([]int, tc.total)
		err := forEachChunk(tc.total, tc.chunk, tc.workers, func() struct{} { return struct{}{} },
			func(start, end int, _ struct{}) error {
				if start < 0 || end > tc.total || start >= end {
					t.Errorf("%+v: bad chunk [%d,%d)", tc, start, end)
				}
				mu.Lock()
				for i := start; i < end; i++ {
					seen[i]++
				}
				mu.Unlock()
				return nil
			})
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		for i, n := range seen {
			if n != 1 {
				t.Fatalf("%+v: index %d visited %d times", tc, i, n)
			}
		}
	}
}

// Scratch is built once per worker, not once per chunk.
func TestForEachChunkScratchPerWorker(t *testing.T) {
	var mu sync.Mutex
	built := 0
	newScratch := func() *int {
		mu.Lock()
		built++
		mu.Unlock()
		return new(int)
	}
	const workers = 3
	if err := forEachChunk(300, 10, workers, newScratch, func(start, end int, sc *int) error {
		*sc++ // worker-local: no race by construction
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if built > workers {
		t.Errorf("newScratch ran %d times for %d workers", built, workers)
	}
}

func TestForEachChunkPropagatesFirstError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		err := forEachChunk(1000, 8, workers, func() struct{} { return struct{}{} },
			func(start, end int, _ struct{}) error {
				if start >= 96 {
					return boom
				}
				return nil
			})
		if !errors.Is(err, boom) {
			t.Errorf("workers=%d: err = %v, want boom", workers, err)
		}
	}
}

func TestForEachChunkEmpty(t *testing.T) {
	if err := forEachChunk(0, 4, 4, func() struct{} { return struct{}{} },
		func(int, int, struct{}) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}
